package p2pquery

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface: simulate,
// persist, reload, characterize, report, and generate a workload.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultSimulation(7, 0.002)
	cfg.Workload.Days = 1
	tr := Simulate(cfg)
	if len(tr.Conns) == 0 || len(tr.Queries) == 0 {
		t.Fatal("empty trace")
	}

	path := filepath.Join(t.TempDir(), "facade.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counts != tr.Counts {
		t.Fatal("reloaded trace differs")
	}

	c := Characterize(back)
	if len(c.Sessions) == 0 {
		t.Fatal("no sessions characterized")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("report missing sections")
	}

	wl := NewWorkload(DefaultWorkload(7, 0.001))
	n := 0
	for s := wl.Next(); s != nil && n < 50; s = wl.Next() {
		if s.Region != NorthAmerica && s.Region != Europe && s.Region != Asia &&
			s.Region.String() == "" {
			t.Fatal("bad region")
		}
		n++
	}
	if n == 0 {
		t.Fatal("workload generated nothing")
	}
}

// TestFacadeFleet drives the multi-vantage entry point: the merged
// trace must carry the node count, characterize end to end, and be
// byte-identical for every simulation worker count.
func TestFacadeFleet(t *testing.T) {
	cfg := DefaultSimulation(7, 0.002)
	cfg.Workload.Days = 1
	tr := SimulateFleet(cfg, 3)
	if tr.Nodes != 3 {
		t.Fatalf("merged trace Nodes = %d, want 3", tr.Nodes)
	}
	if len(tr.Conns) == 0 || len(tr.Queries) == 0 {
		t.Fatal("empty merged trace")
	}
	c := Characterize(tr)
	if len(c.Sessions) == 0 {
		t.Fatal("no sessions characterized from merged trace")
	}
	var want bytes.Buffer
	if err := tr.Write(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		var got bytes.Buffer
		if err := SimulateFleetWorkers(cfg, 3, workers).Write(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("SimulateFleetWorkers(%d) trace differs", workers)
		}
	}
}

func TestFacadeDeterminism(t *testing.T) {
	cfg := DefaultSimulation(11, 0.001)
	cfg.Workload.Days = 1
	a := Simulate(cfg)
	b := Simulate(cfg)
	if a.Counts != b.Counts || len(a.Conns) != len(b.Conns) {
		t.Fatal("same config must produce identical traces")
	}
}
