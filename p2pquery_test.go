package p2pquery

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface: simulate,
// persist, reload, characterize, report, and generate a workload.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultSimulation(7, 0.002)
	cfg.Workload.Days = 1
	tr := Simulate(cfg)
	if len(tr.Conns) == 0 || len(tr.Queries) == 0 {
		t.Fatal("empty trace")
	}

	path := filepath.Join(t.TempDir(), "facade.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counts != tr.Counts {
		t.Fatal("reloaded trace differs")
	}

	c := Characterize(back)
	if len(c.Sessions) == 0 {
		t.Fatal("no sessions characterized")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("report missing sections")
	}

	wl := NewWorkload(DefaultWorkload(7, 0.001))
	n := 0
	for s := wl.Next(); s != nil && n < 50; s = wl.Next() {
		if s.Region != NorthAmerica && s.Region != Europe && s.Region != Asia &&
			s.Region.String() == "" {
			t.Fatal("bad region")
		}
		n++
	}
	if n == 0 {
		t.Fatal("workload generated nothing")
	}
}

// TestFacadeFleet drives the multi-vantage entry point: the merged
// trace must carry the node count, characterize end to end, and be
// byte-identical for every simulation worker count.
func TestFacadeFleet(t *testing.T) {
	cfg := DefaultSimulation(7, 0.002)
	cfg.Workload.Days = 1
	tr := SimulateFleet(cfg, 3)
	if tr.Nodes != 3 {
		t.Fatalf("merged trace Nodes = %d, want 3", tr.Nodes)
	}
	if len(tr.Conns) == 0 || len(tr.Queries) == 0 {
		t.Fatal("empty merged trace")
	}
	c := Characterize(tr)
	if len(c.Sessions) == 0 {
		t.Fatal("no sessions characterized from merged trace")
	}
	var want bytes.Buffer
	if err := tr.Write(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		var got bytes.Buffer
		if err := SimulateFleetWorkers(cfg, 3, workers).Write(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("SimulateFleetWorkers(%d) trace differs", workers)
		}
	}
}

// TestRunEquivalence: the deprecated wrapper trio must be byte-identical
// to the Run(RunConfig) calls that replaced them — the acceptance
// contract that lets callers migrate without re-validating traces.
func TestRunEquivalence(t *testing.T) {
	cfg := DefaultSimulation(7, 0.002)
	cfg.Workload.Days = 1

	traceBytes := func(tr *Trace) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// SimulateFleet ≡ Run{Nodes}.
	res, err := Run(RunConfig{Sim: cfg, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(SimulateFleet(cfg, 3)), traceBytes(res.Trace)) {
		t.Error("SimulateFleet differs from Run")
	}
	if res.Stats.Arrivals == 0 || len(res.ScheduledPerNode) != 3 {
		t.Errorf("Run result accounting empty: %+v", res.Stats)
	}

	// SimulateFleetWorkers ≡ Run{Nodes, Workers}.
	resW, err := Run(RunConfig{Sim: cfg, Nodes: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(SimulateFleetWorkers(cfg, 3, 1)), traceBytes(resW.Trace)) {
		t.Error("SimulateFleetWorkers differs from Run")
	}

	// SimulateFleetStream ≡ Run{Nodes, Stream, Online} — trace and
	// snapshot both.
	trS, snap := SimulateFleetStream(cfg, 3)
	resS, err := Run(RunConfig{Sim: cfg, Nodes: 3, Stream: true, Online: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(trS), traceBytes(resS.Trace)) {
		t.Error("SimulateFleetStream trace differs from Run")
	}
	if resS.Online == nil || resS.Online.Sessions != snap.Sessions || resS.Online.Queries != snap.Queries {
		t.Errorf("online snapshots differ: %+v vs %+v", resS.Online, snap)
	}

	// And the streaming path drains to the batch path's bytes.
	if !bytes.Equal(traceBytes(res.Trace), traceBytes(resS.Trace)) {
		t.Error("streaming trace differs from batch trace")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("zero RunConfig accepted")
	}
	cfg := DefaultSimulation(7, 0.001)
	cfg.Workload.Days = 1
	if _, err := Run(RunConfig{Sim: cfg, Online: true}); err == nil {
		t.Error("Online without Stream accepted")
	}
	if _, err := Run(RunConfig{Sim: cfg, Nodes: -1}); err == nil {
		t.Error("negative Nodes accepted")
	}
	if _, err := Run(RunConfig{Sim: cfg, Lookahead: -1}); err == nil {
		t.Error("negative Lookahead accepted")
	}
}

// TestScenarioFacade: preset loading, scenario runs and check evaluation
// through the public surface only.
func TestScenarioFacade(t *testing.T) {
	c, err := ScenarioPreset("laptop")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test runtime; explicit overrides mimic the CLI path.
	c.Sim.Workload.Scale = 0.002
	c.Sim.Workload.Days = 1
	c.Nodes = 2
	res, err := RunScenario(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Conns) == 0 {
		t.Fatal("scenario run produced an empty trace")
	}
	results, ok := EvaluateScenario(res.Trace, c)
	if !ok || len(results) != 0 {
		t.Errorf("preset without checks must evaluate clean: %v %v", results, ok)
	}

	if _, err := ScenarioPreset("warpdrive"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := LoadScenario("/nonexistent.yaml"); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	cfg := DefaultSimulation(11, 0.001)
	cfg.Workload.Days = 1
	a := Simulate(cfg)
	b := Simulate(cfg)
	if a.Counts != b.Counts || len(a.Conns) != len(b.Conns) {
		t.Fatal("same config must produce identical traces")
	}
}
