package p2pquery

// One benchmark per table and figure of the paper: each regenerates its
// artifact from a shared simulated trace, so `go test -bench .` both
// exercises every analysis code path and reports how long each costs.
// Micro-benchmarks for the protocol substrate and ablation benchmarks for
// the design choices called out in DESIGN.md follow.

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/filter"
	"repro/internal/geo"
	"repro/internal/guid"
	"repro/internal/model"
	"repro/internal/overlay"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// benchTrace is shared by the per-figure benchmarks; simulating it is
// benchmarked separately (BenchmarkSimulateTrace).
var (
	benchOnce     sync.Once
	benchTr       *trace.Trace
	benchFiltered *filter.Result
	benchSessions []analysis.Session
)

func benchSetup(b *testing.B) (*trace.Trace, []analysis.Session) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := capture.DefaultConfig(2004, 0.01)
		cfg.Workload.Days = 4
		benchTr = capture.New(cfg).Run()
		benchFiltered = filter.Apply(benchTr)
		benchSessions = analysis.Enrich(benchFiltered)
	})
	return benchTr, benchSessions
}

// BenchmarkSimulateTrace measures the full measurement simulation (one
// day at 1% scale ≈ 1,100 connections).
func BenchmarkSimulateTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := capture.DefaultConfig(uint64(i), 0.01)
		cfg.Workload.Days = 1
		tr := capture.New(cfg).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Tables ---

func BenchmarkTable1TraceStats(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := analysis.ComputeTable1(tr)
		if t1.Queries == 0 {
			b.Fatal("no queries")
		}
	}
}

func BenchmarkTable2FilterPipeline(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := filter.Apply(tr)
		if res.FinalSessions == 0 {
			b.Fatal("no sessions retained")
		}
	}
}

func BenchmarkTable3QueryClasses(b *testing.B) {
	tr, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qc := analysis.ComputeTable3(sessions, tr.Days)
		if len(qc.Windows) == 0 {
			b.Fatal("no windows")
		}
	}
}

// --- Figures ---

func BenchmarkFigure1GeoDistribution(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analysis.ComputeFigure1(tr)
		if len(g.OneHop) == 0 {
			b.Fatal("no distribution")
		}
	}
}

func BenchmarkFigure2SharedFiles(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := analysis.ComputeFigure2(tr)
		if len(f.OneHop) == 0 {
			b.Fatal("no histogram")
		}
	}
}

func BenchmarkFigure3LoadByTime(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := analysis.ComputeFigure3(sessions)
		if len(l.PerRegion) != 3 {
			b.Fatal("missing regions")
		}
	}
}

func BenchmarkFigure4PassiveFraction(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := analysis.ComputeFigure4(sessions)
		if len(p.PerRegion) != 3 {
			b.Fatal("missing regions")
		}
	}
}

func BenchmarkFigure5PassiveDuration(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := analysis.ComputeFigure5(sessions)
		if d.ByRegion[geo.NorthAmerica].Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure6QueriesPerSession(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := analysis.ComputeFigure6(sessions)
		if q.ByRegion[geo.NorthAmerica].Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure7TimeToFirstQuery(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := analysis.ComputeFigure7(sessions)
		if f.ByRegion[geo.NorthAmerica].Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure8Interarrival(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia := analysis.ComputeFigure8(sessions)
		if ia.ByRegion[geo.NorthAmerica].Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure9TimeAfterLast(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al := analysis.ComputeFigure9(sessions)
		if al.ByRegion[geo.NorthAmerica].Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure10HotSetDrift(b *testing.B) {
	tr, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := analysis.ComputeFigure10(sessions, tr.Days, geo.NorthAmerica)
		if len(d.Survivors[0]) == 0 {
			b.Fatal("no drift data")
		}
	}
}

func BenchmarkFigure11QueryPopularity(b *testing.B) {
	tr, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := analysis.ComputeFigure11(sessions, tr.Days)
		if err != nil && len(pop.Freq) == 0 {
			b.Fatal(err)
		}
	}
}

// --- Appendix fits (Tables A.1–A.5) ---

// fitBench samples a conditioned measure from the shared sessions and
// re-fits its appendix model.
func BenchmarkTableA1FitPassiveDuration(b *testing.B) {
	_, sessions := benchSetup(b)
	var xs []float64
	for i := range sessions {
		s := &sessions[i]
		if s.Region == geo.NorthAmerica && s.Passive() {
			xs = append(xs, s.Conn.Duration().Seconds())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitBimodalLognormal(xs, 64, 120); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableA2FitQueriesPerSession(b *testing.B) {
	_, sessions := benchSetup(b)
	var xs []float64
	for i := range sessions {
		s := &sessions[i]
		if s.Region == geo.NorthAmerica && s.UserQueries > 0 {
			xs = append(xs, float64(s.UserQueries))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitLognormalCounts(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableA3FitTimeToFirstQuery(b *testing.B) {
	_, sessions := benchSetup(b)
	var xs []float64
	for i := range sessions {
		s := &sessions[i]
		if s.Region == geo.NorthAmerica {
			if first, ok := s.FirstQueryTime(); ok && first > 0 {
				xs = append(xs, first.Seconds())
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitWeibullLognormal(xs, 0, 45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableA4FitInterarrival(b *testing.B) {
	_, sessions := benchSetup(b)
	var xs []float64
	for i := range sessions {
		s := &sessions[i]
		if s.Region != geo.NorthAmerica {
			continue
		}
		for _, d := range s.Interarrivals() {
			if d > 0 {
				xs = append(xs, d.Seconds())
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitLognormalPareto(xs, 0, 103); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableA5FitTimeAfterLast(b *testing.B) {
	_, sessions := benchSetup(b)
	var xs []float64
	for i := range sessions {
		s := &sessions[i]
		if s.Region == geo.NorthAmerica {
			if gap, ok := s.LastQueryGap(); ok && gap > 0 {
				xs = append(xs, gap.Seconds())
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitLognormal(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureA1FitOverlays regenerates the fitted-versus-measured
// overlay of Figure A.1 by evaluating the fitted mixture's CCDF against
// the empirical sample.
func BenchmarkFigureA1FitOverlays(b *testing.B) {
	tr, _ := benchSetup(b)
	c := core.Characterize(tr)
	fit := c.Fits.Interarrival[geo.NorthAmerica][core.Peak]
	if !fit.OK {
		b.Skip("not enough data for the overlay fit at bench scale")
	}
	mix := fit.Fit.Mixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for x := 1.0; x < 1e4; x *= 1.2 {
			sum += 1 - mix.CDF(x)
		}
		if sum <= 0 {
			b.Fatal("degenerate overlay")
		}
	}
}

// BenchmarkCharacterizeFull runs the complete pipeline with the default
// (parallel, machine-sized) options.
func BenchmarkCharacterizeFull(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.Characterize(tr)
		if len(c.Sessions) == 0 {
			b.Fatal("no sessions")
		}
	}
}

// BenchmarkCharacterizeFullSequential pins the pipeline to one worker —
// the reference the parallel speedup is measured against.
func BenchmarkCharacterizeFullSequential(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.CharacterizeOpts(tr, core.Options{Workers: 1})
		if len(c.Sessions) == 0 {
			b.Fatal("no sessions")
		}
	}
}

// BenchmarkCharacterizeFullParallel runs the pipeline at GOMAXPROCS
// workers; on a multi-core host the per-figure and per-fit fan-out is the
// speedup source, on a single core it measures the pool's overhead.
func BenchmarkCharacterizeFullParallel(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.CharacterizeOpts(tr, core.Options{Workers: runtime.GOMAXPROCS(0)})
		if len(c.Sessions) == 0 {
			b.Fatal("no sessions")
		}
	}
}

// benchFleetConfig is the fleet deployment the simulate speedup pair
// runs: big enough that per-node event execution dominates the sequential
// partition phase and the merge, small enough for CI's -benchtime=1x.
// Keep it in lockstep with benchCfg in internal/engine/bench_test.go —
// that file measures this same workload's sequential partition share, the
// Amdahl bound ROADMAP cites for the speedup gate's headroom.
func benchFleetConfig() capture.FleetConfig {
	cfg := capture.DefaultConfig(2004, 0.05)
	cfg.Workload.Days = 2
	return capture.FleetConfig{Node: cfg, Nodes: 8}
}

// BenchmarkSimulateFleetSequential runs the 8-node fleet on the
// historical shared-scheduler sequential path — the reference the
// engine's speedup is measured against (and the byte-identity oracle its
// tests pin).
func BenchmarkSimulateFleetSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := capture.NewFleet(benchFleetConfig()).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkSimulateFleetParallel runs the same fleet on the sharded
// engine at GOMAXPROCS workers. On a multi-core host the per-node event
// loops are the speedup source (CI gates ≥ 2× at 4 vCPUs via `make
// speedup-check`); on a single core it measures the engine's overhead:
// the pre-partition pass plus the per-node arrival-chain replay.
func BenchmarkSimulateFleetParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := engine.New(engine.Config{Fleet: benchFleetConfig(), Workers: runtime.GOMAXPROCS(0)}).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkSimulateFleetStream runs the same fleet in full streaming mode
// — bounded-lookahead producer, per-node event emission, online k-way
// merge — producing the byte-identical trace with bounded intermediate
// state. Against BenchmarkSimulateFleetParallel it prices the streaming
// layer; its payoff (the multi-GB simulate-phase RSS cut) only shows at
// full scale, where `make fullscale` records it in the perf line.
func BenchmarkSimulateFleetStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := engine.New(engine.Config{Fleet: benchFleetConfig()}).RunStream(nil)
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkCharacterizeScaleSweep reports ns/op and allocs of the full
// pipeline across trace scales, the perf trajectory future PRs track.
func BenchmarkCharacterizeScaleSweep(b *testing.B) {
	for _, scale := range []float64{0.01, 0.03, 0.10} {
		cfg := capture.DefaultConfig(2004, scale)
		cfg.Workload.Days = 4
		tr := capture.New(cfg).Run()
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := core.Characterize(tr)
				if len(c.Sessions) == 0 {
					b.Fatal("no sessions")
				}
			}
		})
	}
}

// --- Ablations (design choices from DESIGN.md) ---

// BenchmarkAblationUnfilteredPopularity fits the popularity skew without
// the Section 3.3 filter — the paper's headline argument is that this
// inflates α (automated re-queries concentrate on recent user queries).
func BenchmarkAblationUnfilteredPopularity(b *testing.B) {
	tr, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := map[string]int{}
		for j := range tr.Queries {
			key := wire.KeywordKey(tr.Queries[j].Text)
			if key != "" {
				counts[key]++
			}
		}
		freqs := topFreqs(counts, 100)
		if _, err := dist.FitZipf(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAggregatePopularity computes popularity over the whole
// window without per-day ranking — the "flattened head" pitfall the paper
// avoids by ranking per day (Section 4.6).
func BenchmarkAblationAggregatePopularity(b *testing.B) {
	_, sessions := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := map[string]int{}
		for j := range sessions {
			s := &sessions[j]
			for k := range s.Queries {
				if !s.Queries[k].Rule5 {
					counts[s.Queries[k].Key]++
				}
			}
		}
		freqs := topFreqs(counts, 100)
		if _, err := dist.FitZipf(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUnconditionalWorkload generates sessions ignoring the
// region/period conditioning (every session drawn from the NA peak
// model), quantifying the generator cost of the conditional structure.
func BenchmarkAblationUnconditionalWorkload(b *testing.B) {
	params := model.Default()
	rng := rand.New(rand.NewPCG(9, 9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := params.PassiveDuration(geo.NorthAmerica, 0)
		if d.Sample(rng) <= 0 {
			b.Fatal("bad sample")
		}
	}
}

func topFreqs(counts map[string]int, n int) []float64 {
	freqs := make([]float64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, float64(c))
	}
	// partial selection sort for the top n
	for i := 0; i < n && i < len(freqs); i++ {
		maxJ := i
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[maxJ] {
				maxJ = j
			}
		}
		freqs[i], freqs[maxJ] = freqs[maxJ], freqs[i]
	}
	if len(freqs) > n {
		freqs = freqs[:n]
	}
	return freqs
}

// --- Protocol micro-benchmarks ---

func BenchmarkWireEncodeQuery(b *testing.B) {
	g := guid.NewSource(1, 1)
	env := wire.NewEnvelope(g.Next(), 6, &wire.Query{SearchText: "blue mountain song mp3"})
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendEnvelope(buf[:0], env)
	}
	if len(buf) == 0 {
		b.Fatal("no bytes")
	}
}

func BenchmarkWireDecodeQuery(b *testing.B) {
	g := guid.NewSource(1, 1)
	buf := wire.AppendEnvelope(nil, wire.NewEnvelope(g.Next(), 6, &wire.Query{SearchText: "blue mountain song mp3"}))
	var p wire.Parser
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlayQueryRouting(b *testing.B) {
	g := guid.NewSource(2, 2)
	node := overlay.New(overlay.Config{
		Self:  g.Next(),
		Addr:  netip.MustParseAddr("127.0.0.1"),
		Now:   func() time.Duration { return 0 },
		Send:  func(int, wire.Envelope) {},
		GUIDs: g,
	})
	for i := 0; i < 50; i++ {
		node.AddConn(i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := wire.Envelope{
			Header:  wire.Header{GUID: g.Next(), Type: wire.TypeQuery, TTL: 5, Hops: 1},
			Payload: &wire.Query{SearchText: "bench query"},
		}
		node.Receive(i%50, env)
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := workload.DefaultConfig(1, 1)
	gen := workload.NewGenerator(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := gen.SessionAt(0)
		if s == nil {
			b.Fatal("nil session")
		}
	}
}

func BenchmarkKeywordKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if wire.KeywordKey("Blue MOUNTAIN blue song mp3") == "" {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkAblationReplicationStrategies evaluates Cohen & Shenker's
// replication policies under the measured (filtered) query popularity:
// allocation plus the analytic expected-search-size comparison that
// motivates square-root replication.
func BenchmarkAblationReplicationStrategies(b *testing.B) {
	tr, sessions := benchSetup(b)
	pop, err := analysis.ComputeFigure11(sessions, tr.Days)
	if err != nil {
		b.Skip("popularity unavailable at bench scale")
	}
	freqs := pop.Freq[analysis.ClassNAOnly]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []search.ReplicationStrategy{search.Uniform, search.Proportional, search.SquareRoot} {
			copies := search.Allocate(s, freqs, 4000)
			if ess := search.ExpectedSearchSize(freqs, copies, 2000); ess <= 0 {
				b.Fatal("degenerate expected search size")
			}
		}
	}
}
