package p2pquery

import (
	"io"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace is a recorded measurement run; see internal/trace for the record
// layout.
type Trace = trace.Trace

// Characterization is the complete analysis of a trace: every table and
// figure of the paper plus the fitted appendix models.
type Characterization = core.Characterization

// Region identifies a coarse geographic region.
type Region = geo.Region

// The regions the paper characterizes.
const (
	NorthAmerica = geo.NorthAmerica
	Europe       = geo.Europe
	Asia         = geo.Asia
)

// SimulationConfig parameterizes a measurement simulation.
type SimulationConfig = capture.Config

// DefaultSimulation returns the paper-calibrated simulation configuration
// at the given seed and scale (1.0 ≈ the paper's 4.36 M connections over
// 40 days; 0.02–0.05 is comfortable on a laptop).
func DefaultSimulation(seed uint64, scale float64) SimulationConfig {
	return capture.DefaultConfig(seed, scale)
}

// Simulate runs the single-vantage measurement simulation and returns
// the trace.
func Simulate(cfg SimulationConfig) *Trace {
	return capture.New(cfg).Run()
}

// SimulateFleet runs the multi-vantage measurement fabric: nodes
// ultrapeer vantage points sharding one arrival stream, each under the
// paper's per-node methodology, returning the merged full-volume trace.
// With nodes sized so no per-node 200-connection cap binds, the merged
// trace records the entire arrival stream (≈4.36 M connections at scale
// 1.0 over 40 days). The simulation runs on the parallel sharded engine
// sized to the machine; the trace is byte-identical to the sequential
// fleet (see SimulateFleetWorkers).
func SimulateFleet(cfg SimulationConfig, nodes int) *Trace {
	return SimulateFleetWorkers(cfg, nodes, 0)
}

// SimulateFleetWorkers is SimulateFleet with an explicit simulation
// worker-pool bound: each vantage node's event loop runs on its own
// goroutine over a pool of workers goroutines (0 = GOMAXPROCS, 1 =
// sequential). The merged trace is byte-identical for every setting —
// the engine's determinism contract (see internal/engine).
func SimulateFleetWorkers(cfg SimulationConfig, nodes, workers int) *Trace {
	return engine.New(engine.Config{
		Fleet:   capture.FleetConfig{Node: cfg, Nodes: nodes},
		Workers: workers,
	}).Run()
}

// OnlineMetrics is a snapshot of the streaming characterization layer:
// sketch-based top-K keyword ranking, duration/interarrival quantiles and
// sliding-window rates; see internal/stream for the accuracy contracts.
type OnlineMetrics = stream.Snapshot

// SimulateFleetStream runs the multi-vantage simulation in full streaming
// mode: a bounded-lookahead arrival producer feeds per-node event loops,
// each vantage emits records into the streaming k-way merge as they
// finalize, and the online layer characterizes the merged stream as it
// retires. Neither the partitioned session set nor per-node traces are
// ever materialized, which is what bounds the memory of a paper-scale
// run; the returned trace is byte-identical to SimulateFleet's (the
// engine's streaming determinism contract, pinned by test).
func SimulateFleetStream(cfg SimulationConfig, nodes int) (*Trace, OnlineMetrics) {
	online := stream.NewOnline(stream.OnlineConfig{})
	tr := engine.New(engine.Config{
		Fleet: capture.FleetConfig{Node: cfg, Nodes: nodes},
	}).RunStream(online)
	return tr, online.Snapshot(10)
}

// Characterize applies the filter pipeline, all analyses and the appendix
// fits to a trace, parallelized across the machine's cores.
func Characterize(tr *Trace) *Characterization {
	return core.Characterize(tr)
}

// CharacterizeOptions tunes the pipeline's execution; see core.Options.
type CharacterizeOptions = core.Options

// CharacterizeWithOptions is Characterize with an explicit worker-pool
// size. Output is byte-identical for every setting of Workers.
func CharacterizeWithOptions(tr *Trace, opts CharacterizeOptions) *Characterization {
	return core.CharacterizeOpts(tr, opts)
}

// WriteReport renders the full paper-style report for a characterization.
func WriteReport(w io.Writer, c *Characterization) error {
	return report.RenderAll(w, c)
}

// ReadTrace loads a trace written by (*Trace).WriteFile.
func ReadTrace(path string) (*Trace, error) {
	return trace.ReadFile(path)
}

// WorkloadConfig parameterizes the synthetic workload generator.
type WorkloadConfig = workload.Config

// Workload is the Figure 12 synthetic session generator.
type Workload = workload.Generator

// WorkloadSession is one generated peer session.
type WorkloadSession = workload.Session

// DefaultWorkload returns the paper-scale workload configuration.
func DefaultWorkload(seed uint64, scale float64) WorkloadConfig {
	return workload.DefaultConfig(seed, scale)
}

// NewWorkload builds a synthetic workload generator.
func NewWorkload(cfg WorkloadConfig) *Workload {
	return workload.NewGenerator(cfg)
}
