package p2pquery

import (
	"errors"
	"io"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace is a recorded measurement run; see internal/trace for the record
// layout.
type Trace = trace.Trace

// Characterization is the complete analysis of a trace: every table and
// figure of the paper plus the fitted appendix models.
type Characterization = core.Characterization

// Region identifies a coarse geographic region.
type Region = geo.Region

// The regions the paper characterizes.
const (
	NorthAmerica = geo.NorthAmerica
	Europe       = geo.Europe
	Asia         = geo.Asia
)

// SimulationConfig parameterizes a measurement simulation.
type SimulationConfig = capture.Config

// DefaultSimulation returns the paper-calibrated simulation configuration
// at the given seed and scale (1.0 ≈ the paper's 4.36 M connections over
// 40 days; 0.02–0.05 is comfortable on a laptop).
func DefaultSimulation(seed uint64, scale float64) SimulationConfig {
	return capture.DefaultConfig(seed, scale)
}

// Simulate runs the single-vantage measurement simulation and returns
// the trace.
func Simulate(cfg SimulationConfig) *Trace {
	return capture.New(cfg).Run()
}

// FleetStats aggregates a fleet run's arrival accounting and per-node
// peaks; see capture.FleetStats.
type FleetStats = capture.FleetStats

// OnlineMetrics is a snapshot of the streaming characterization layer:
// sketch-based top-K keyword ranking, duration/interarrival quantiles and
// sliding-window rates; see internal/stream for the accuracy contracts.
type OnlineMetrics = stream.Snapshot

// RunConfig is the one description of a fleet simulation run: the
// vantage-node configuration plus every knob that shapes how the fleet
// executes. It replaces the SimulateFleet/SimulateFleetWorkers/
// SimulateFleetStream trio — the zero value of each knob means "the
// default those entry points used".
type RunConfig struct {
	// Sim is the per-vantage measurement configuration (required; start
	// from DefaultSimulation or a compiled scenario).
	Sim SimulationConfig
	// Nodes is the vantage fleet size (0 = 1, the paper's single node).
	Nodes int
	// Workers bounds the engine's worker pool in the eager mode
	// (0 = GOMAXPROCS, 1 = sequential); byte-identical for every value.
	Workers int
	// Stream selects the bounded-memory streaming engine: bounded
	// producer, per-node emission, online k-way merge. The drained trace
	// is byte-identical to the batch path.
	Stream bool
	// Lookahead bounds the streaming producer's in-flight sessions per
	// node (0 = engine default; only meaningful with Stream).
	Lookahead int
	// MergeWindow bounds the streaming merge's emission barrier
	// (0 = engine default; see engine.Config.MergeWindow).
	MergeWindow time.Duration
	// Online attaches the sketch-based online characterization layer to
	// the merged stream (requires Stream).
	Online bool
	// OnlineTopK sizes the online snapshot's keyword ranking (0 = 10).
	OnlineTopK int
	// Obs attaches the observability layer (internal/obs): phase spans on
	// its journal, engine/merge metrics on its registry. nil runs
	// uninstrumented at effectively zero cost; instrumentation never
	// perturbs the trace (byte-identical either way).
	Obs *obs.Observer
}

// Result is everything a fleet run produces: the merged trace, arrival
// accounting, the engine's perf counters, and — when requested — the
// online characterization snapshot.
type Result struct {
	// Trace is the merged full-volume trace.
	Trace *Trace
	// Stats is the fleet's arrival accounting and per-node peaks.
	Stats FleetStats
	// Online is the streaming characterization snapshot; nil unless
	// RunConfig.Online was set.
	Online *OnlineMetrics
	// PeakPending and SpilledSessions are the k-way merge's high-water
	// mark and emission-window outlier count.
	PeakPending     int
	SpilledSessions int
	// DeadInputs and LostSessions are the merge's degradation ledger
	// (always 0 in-process; meaningful under the distributed collector).
	DeadInputs   int
	LostSessions uint64
	// ScheduledPerNode is the engine's per-node scheduled-event counts.
	ScheduledPerNode []uint64
}

// Run executes a fleet simulation described by cfg. It is the single
// entry point every mode routes through: batch (the historical
// SimulateFleet), explicit worker bounds (SimulateFleetWorkers), and
// streaming with online metrics (SimulateFleetStream). The merged trace
// is byte-identical across all of them — the engine's determinism
// contract (see internal/engine).
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Sim.MaxConns == 0 && cfg.Sim.Workload.Scale == 0 {
		return nil, errors.New("p2pquery.Run: zero RunConfig.Sim; build it with DefaultSimulation or LoadScenario")
	}
	if cfg.Online && !cfg.Stream {
		return nil, errors.New("p2pquery.Run: Online requires Stream (online metrics ride the streaming merge)")
	}
	if cfg.Lookahead < 0 {
		return nil, errors.New("p2pquery.Run: negative Lookahead")
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 1
	}
	if nodes < 0 {
		return nil, errors.New("p2pquery.Run: negative Nodes")
	}
	eng := engine.New(engine.Config{
		Fleet:       capture.FleetConfig{Node: cfg.Sim, Nodes: nodes},
		Workers:     cfg.Workers,
		Lookahead:   cfg.Lookahead,
		MergeWindow: cfg.MergeWindow,
		Obs:         cfg.Obs,
	})
	res := &Result{}
	if cfg.Stream {
		var online *stream.Online
		var sink stream.Sink
		if cfg.Online {
			online = stream.NewOnline(stream.OnlineConfig{})
			online.Register(cfg.Obs.Reg())
			sink = online
		}
		res.Trace = eng.RunStream(sink)
		if online != nil {
			k := cfg.OnlineTopK
			if k == 0 {
				k = 10
			}
			snap := online.Snapshot(k)
			res.Online = &snap
		}
	} else {
		res.Trace = eng.Run()
	}
	res.Stats = eng.Stats()
	res.PeakPending = eng.PeakPending()
	res.SpilledSessions = eng.SpilledSessions()
	res.DeadInputs = eng.DeadInputs()
	res.LostSessions = eng.LostSessions()
	res.ScheduledPerNode = eng.ScheduledPerNode()
	return res, nil
}

// SimulateFleet runs the multi-vantage measurement fabric and returns
// the merged full-volume trace.
//
// Deprecated: use Run(RunConfig{Sim: cfg, Nodes: nodes}); this wrapper
// remains for compatibility and is equivalence-tested against Run.
func SimulateFleet(cfg SimulationConfig, nodes int) *Trace {
	return SimulateFleetWorkers(cfg, nodes, 0)
}

// SimulateFleetWorkers is SimulateFleet with an explicit simulation
// worker-pool bound.
//
// Deprecated: use Run(RunConfig{Sim: cfg, Nodes: nodes, Workers:
// workers}); this wrapper remains for compatibility and is
// equivalence-tested against Run.
func SimulateFleetWorkers(cfg SimulationConfig, nodes, workers int) *Trace {
	res, err := Run(RunConfig{Sim: cfg, Nodes: nodes, Workers: workers})
	if err != nil {
		panic(err) // unreachable for configs the old API accepted
	}
	return res.Trace
}

// SimulateFleetStream runs the multi-vantage simulation in full
// streaming mode and returns the drained trace plus the online
// characterization snapshot.
//
// Deprecated: use Run(RunConfig{Sim: cfg, Nodes: nodes, Stream: true,
// Online: true}); this wrapper remains for compatibility and is
// equivalence-tested against Run.
func SimulateFleetStream(cfg SimulationConfig, nodes int) (*Trace, OnlineMetrics) {
	res, err := Run(RunConfig{Sim: cfg, Nodes: nodes, Stream: true, Online: true})
	if err != nil {
		panic(err) // unreachable for configs the old API accepted
	}
	return res.Trace, *res.Online
}

// Scenario is a compiled declarative experiment: the YAML spec subsystem's
// runtime form (see internal/scenario for the schema reference).
type Scenario = scenario.Compiled

// ScenarioCheck is one evaluated headline-metric assertion.
type ScenarioCheck = scenario.CheckResult

// LoadScenario reads, parses and compiles a YAML experiment spec.
func LoadScenario(path string) (*Scenario, error) {
	sp, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	return scenario.Compile(sp)
}

// ScenarioPreset compiles a built-in preset (paper40d, laptop, tenweek).
func ScenarioPreset(name string) (*Scenario, error) {
	sp, err := scenario.Preset(name)
	if err != nil {
		return nil, err
	}
	return scenario.Compile(sp)
}

// RunScenario executes a compiled scenario through Run.
func RunScenario(c *Scenario) (*Result, error) {
	return Run(RunConfig{
		Sim:     c.Sim,
		Nodes:   c.Nodes,
		Workers: c.Workers,
		Stream:  c.Stream,
		Online:  c.Stream,
	})
}

// EvaluateScenario measures the scenario's headline metrics on a trace
// and applies its checks, returning every result and whether all passed.
func EvaluateScenario(tr *Trace, c *Scenario) ([]ScenarioCheck, bool) {
	return scenario.EvaluateChecks(tr, c)
}

// Characterize applies the filter pipeline, all analyses and the appendix
// fits to a trace, parallelized across the machine's cores.
func Characterize(tr *Trace) *Characterization {
	return core.Characterize(tr)
}

// CharacterizeOptions tunes the pipeline's execution; see core.Options.
type CharacterizeOptions = core.Options

// CharacterizeWithOptions is Characterize with an explicit worker-pool
// size. Output is byte-identical for every setting of Workers.
func CharacterizeWithOptions(tr *Trace, opts CharacterizeOptions) *Characterization {
	return core.CharacterizeOpts(tr, opts)
}

// WriteReport renders the full paper-style report for a characterization.
func WriteReport(w io.Writer, c *Characterization) error {
	return report.RenderAll(w, c)
}

// ReadTrace loads a trace written by (*Trace).WriteFile.
func ReadTrace(path string) (*Trace, error) {
	return trace.ReadFile(path)
}

// WorkloadConfig parameterizes the synthetic workload generator.
type WorkloadConfig = workload.Config

// Workload is the Figure 12 synthetic session generator.
type Workload = workload.Generator

// WorkloadSession is one generated peer session.
type WorkloadSession = workload.Session

// DefaultWorkload returns the paper-scale workload configuration.
func DefaultWorkload(seed uint64, scale float64) WorkloadConfig {
	return workload.DefaultConfig(seed, scale)
}

// NewWorkload builds a synthetic workload generator.
func NewWorkload(cfg WorkloadConfig) *Workload {
	return workload.NewGenerator(cfg)
}
