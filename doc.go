// Package p2pquery reproduces Klemm, Lindemann, Vernon and Waldhorst,
// "Characterizing the Query Behavior in Peer-to-Peer File Sharing
// Systems" (IMC 2004), as a complete, runnable system.
//
// The paper measured the Gnutella network for 40 days from a passive
// ultrapeer, filtered out client-software automation, and characterized
// user query behavior as conditional distributions for synthetic workload
// generation. This module rebuilds the entire apparatus:
//
//   - a Gnutella v0.6 protocol stack (wire codec, handshake, overlay
//     routing) that runs both under a discrete-event simulator and over
//     real TCP;
//   - a synthetic peer population driven by the paper's published model
//     (the generative ground truth);
//   - the measurement node with the paper's exact observation rules;
//   - the Section 3.3 filter pipeline and the full Section 4 analysis,
//     regenerating every table and figure;
//   - the Figure 12 synthetic workload generator for evaluating new P2P
//     designs.
//
// The statistical layer underneath all of this lives in internal/dist:
// the appendix distribution families (lognormal, Weibull, Pareto), the
// body/tail composite of Tables A.1–A.4, Zipf and two-segment Zipf rank
// laws for query popularity (Figure 11), maximum-likelihood fitters that
// recover each family from measured samples, and the Kolmogorov–Smirnov
// distance used to score the recovered fits.
//
// # Quickstart
//
// Simulate a scaled-down 40-day measurement, characterize it, and print
// the paper's tables and figures:
//
//	cfg := p2pquery.DefaultSimulation(42, 0.02) // 2% of paper scale
//	tr := p2pquery.Simulate(cfg)
//	c := p2pquery.Characterize(tr)
//	p2pquery.WriteReport(os.Stdout, c)
//
// Generate a synthetic workload (the paper's Figure 12 algorithm) to
// drive a P2P system evaluation:
//
//	gen := p2pquery.NewWorkload(p2pquery.DefaultWorkload(7, 0.1))
//	for s := gen.Next(); s != nil; s = gen.Next() {
//		feed(s) // region, passive/active, query schedule, query strings
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package p2pquery
