// Package p2pquery reproduces Klemm, Lindemann, Vernon and Waldhorst,
// "Characterizing the Query Behavior in Peer-to-Peer File Sharing
// Systems" (IMC 2004), as a complete, runnable system.
//
// The paper measured the Gnutella network for 40 days from a passive
// ultrapeer, filtered out client-software automation, and characterized
// user query behavior as conditional distributions for synthetic workload
// generation. This module rebuilds the entire apparatus:
//
//   - a Gnutella v0.6 protocol stack (wire codec, handshake, overlay
//     routing) that runs both under a discrete-event simulator and over
//     real TCP;
//   - a synthetic peer population driven by the paper's published model
//     (the generative ground truth);
//   - the measurement node with the paper's exact observation rules, and
//     beyond it a multi-vantage measurement fabric: capture.Fleet runs N
//     cooperating ultrapeer nodes on one simulated network, sharding
//     arrivals consistently by session GUID (guid.Shard) so that — with N
//     sized so no per-node 200-connection cap binds — the merged trace
//     (trace.Merge) records the paper's entire ≈4.36 M-connection arrival
//     stream instead of the ≈197 k a single capped vantage admits;
//   - the Section 3.3 filter pipeline and the full Section 4 analysis,
//     regenerating every table and figure;
//   - the Figure 12 synthetic workload generator for evaluating new P2P
//     designs.
//
// The statistical layer underneath all of this lives in internal/dist:
// the appendix distribution families (lognormal, Weibull, Pareto), the
// body/tail composite of Tables A.1–A.4, Zipf and two-segment Zipf rank
// laws for query popularity (Figure 11), maximum-likelihood fitters that
// recover each family from measured samples, and the Kolmogorov–Smirnov
// distance — with asymptotic p-values (dist.KSPValue) that let the report
// auto-reject fits — used to score the recovered fits.
//
// # Concurrency model
//
// The characterization pipeline is parallel by default, end to end. The
// Section 3.3 filter runs data-parallel over connections (filter
// .ApplyOpts chunks the per-connection rule passes over the shared
// internal/par worker pool — at merged full-trace volume this pass
// dominates characterization); session enrichment follows; then every
// per-figure computation and each of the 51 per-(table, region, period,
// bucket) appendix fits runs as an independent task on the same bounded
// pool (core.Options.Workers; 1 forces sequential). Tasks share only the
// immutable trace and enriched-session slice and write to disjoint
// fields, so for a fixed seed the rendered report is byte-identical for
// every worker count — a property pinned by tests, and demonstrated (not
// just promised) by CI's multi-core job, which fails unless the parallel
// pipeline beats sequential by ≥ 2× at 4 vCPUs.
//
// On the generator side, vocab.Vocabulary shards its per-day popularity
// rankings by query class: each (class, day) ranking is built lazily
// exactly once behind its own sync.Once, via top-K partial selection over
// per-(seed, class, day) PCG score streams. Steady-state query draws are
// lock-free map hits, so concurrent workload or capture generators no
// longer serialize behind one vocabulary mutex, and the ranking result is
// independent of which goroutine builds it. Measured on one 2.1 GHz core,
// building a day ranking for all seven classes dropped from 6.1 ms /
// 588 KB to 1.5 ms / 19 KB, and a cold single-class draw from 6.0 ms to
// 0.6 ms; cached draws stay at ~120 ns with zero allocations.
//
// # Quickstart
//
// Simulate a scaled-down 40-day measurement, characterize it, and print
// the paper's tables and figures:
//
//	cfg := p2pquery.DefaultSimulation(42, 0.02) // 2% of paper scale
//	tr := p2pquery.Simulate(cfg)
//	c := p2pquery.Characterize(tr)
//	p2pquery.WriteReport(os.Stdout, c)
//
// Generate a synthetic workload (the paper's Figure 12 algorithm) to
// drive a P2P system evaluation:
//
//	gen := p2pquery.NewWorkload(p2pquery.DefaultWorkload(7, 0.1))
//	for s := gen.Next(); s != nil; s = gen.Next() {
//		feed(s) // region, passive/active, query schedule, query strings
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package p2pquery
