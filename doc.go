// Package p2pquery reproduces Klemm, Lindemann, Vernon and Waldhorst,
// "Characterizing the Query Behavior in Peer-to-Peer File Sharing
// Systems" (IMC 2004), as a complete, runnable system.
//
// The paper measured the Gnutella network for 40 days from a passive
// ultrapeer, filtered out client-software automation, and characterized
// user query behavior as conditional distributions for synthetic workload
// generation. This module rebuilds the entire apparatus:
//
//   - a Gnutella v0.6 protocol stack (wire codec, handshake, overlay
//     routing) that runs both under a discrete-event simulator and over
//     real TCP;
//   - a synthetic peer population driven by the paper's published model
//     (the generative ground truth);
//   - the measurement node with the paper's exact observation rules, and
//     beyond it a multi-vantage measurement fabric: capture.Fleet runs N
//     cooperating ultrapeer nodes on one simulated network, sharding
//     arrivals consistently by session GUID (guid.Shard) so that — with N
//     sized so no per-node 200-connection cap binds — the merged trace
//     (trace.Merge) records the paper's entire ≈4.36 M-connection arrival
//     stream instead of the ≈197 k a single capped vantage admits;
//   - the Section 3.3 filter pipeline and the full Section 4 analysis,
//     regenerating every table and figure;
//   - the Figure 12 synthetic workload generator for evaluating new P2P
//     designs.
//
// The statistical layer underneath all of this lives in internal/dist:
// the appendix distribution families (lognormal, Weibull, Pareto), the
// body/tail composite of Tables A.1–A.4, Zipf and two-segment Zipf rank
// laws for query popularity (Figure 11), maximum-likelihood fitters that
// recover each family from measured samples, and the Kolmogorov–Smirnov
// distance — with asymptotic p-values (dist.KSPValue) that let the report
// auto-reject fits — used to score the recovered fits. Because the
// asymptotic p-values are computed on the fitting sample itself, their
// acceptances are Lilliefors-biased; core.Options.KSBootstrap switches the
// verdicts to parametric-bootstrap p-values (dist.KSPValueBootstrap, fixed
// per-slot seeds) whose acceptances are trustworthy too, and the report
// tags every verdict with its source.
//
// # Parallel simulation engine
//
// internal/engine executes the multi-vantage simulation itself in
// parallel: a sharded discrete-event engine that pre-partitions the
// arrival stream (replaying the arrival process and its GUID stream once,
// sequentially, and splitting sessions by guid.Shard), then runs every
// vantage node's event loop on its own goroutine with its own virtual
// clock, random streams and calendar-queue scheduler, joining the
// per-node traces with trace.Merge.
//
// The determinism contract is exact, not statistical: shard → node →
// goroutine, and the merge is order-independent. Events with equal
// timestamps fire in schedule-FIFO order of the sequential fleet's single
// global sequence; each node replays the whole arrival chain (one trivial
// event per foreign arrival), which preserves the relative schedule order
// of exactly the events that node observes, so every per-node trace — and
// therefore the merged trace — is byte-identical to the sequential
// capture.Fleet for every worker count, with a one-node engine run
// reproducing the historical single-vantage Sim byte for byte (all pinned
// by test, and wired through p2pquery.SimulateFleet and the -simworkers
// flag of cmd/analyze, cmd/tracegen and cmd/repro).
//
// Underneath it, simtime.Scheduler is now an interface with two
// order-equivalent implementations: the original container/heap
// HeapScheduler and a Brown calendar queue (CalendarScheduler) with lazy
// cancellation and deterministic (timestamp, FIFO) tie-breaking —
// property- and fuzz-tested to pop identical sequences, ties,
// cancellations and far-future gaps included. The engine selects the
// calendar queue on benchmark evidence (BenchmarkSchedulerHold at
// 10^4–10^7 pending events; snapshot in BENCH_pr4.json): O(1) amortized
// enqueue/dequeue where the heap pays O(log n) on the full-volume run's
// event counts.
//
// # Streaming pipeline
//
// internal/stream turns the batch reproducer into a system that can
// characterize traffic as it arrives, with bounded state — the mode a
// production deployment serving a live overlay needs, and the mode the
// paper's own 40-day capture actually ran in. Three layers compose:
//
//   - A typed, backpressured event stream: vantage nodes built in
//     streaming-sink mode (capture.NewNodeStream) emit session open /
//     close, query, pong and hit records into bounded channels the moment
//     each record is final, instead of retaining a per-node trace. The
//     engine's bounded-lookahead producer (engine.Config.Lookahead)
//     replaces the eager pre-partition: the arrival chain is published
//     incrementally through a conservative time-window synchronizer and
//     each node's undelivered sessions are capped, so the in-flight
//     session set is nodes × Lookahead instead of the whole measurement
//     period.
//   - A streaming k-way merge (stream.Merger): per-node streams are
//     unioned into the global deduplicated, time-ordered, densely
//     re-identified order incrementally — a completed session retires the
//     moment no still-open or future session can precede it (the emission
//     barrier) — and draining to completion yields a trace byte-identical
//     to batch trace.Merge (pinned by test; stream.MergeTraces is the
//     engine's production merge path, with trace.Merge kept as the
//     reference oracle).
//   - An online characterization layer (stream.Online): Space-Saving
//     top-K keyword ranking (exact while distinct keys fit capacity,
//     ≤ N/m overestimation beyond), Greenwald–Khanna quantile summaries
//     for session duration and query interarrival (rank error ≤ ε·n,
//     default ε = 0.001), sliding-window arrival/query rates, and exact
//     streaming counters (the under-64 s share among them). Because it
//     rides the merge sink, its snapshots are deterministic — a pure
//     function of the merged stream, independent of goroutine
//     interleaving — and pinned against batch-exact oracles by test.
//
// Entry points: engine.RunStream / p2pquery.SimulateFleetStream run the
// whole pipeline (merged trace byte-identical to the batch engine at a
// fraction of the simulate-phase peak RSS); `analyze -simulate -stream`
// prints the online characterization above the standard report and
// `-tracehash` the canonical SHA-256 that proves the two paths equal;
// cmd/gnutellad -metrics serves the live snapshot of wire-ingested
// traffic (Prometheus text at /metrics, the JSON snapshot at
// /metrics.json); examples/livecapture feeds the same layer from
// loopback TCP.
//
// # Declarative scenarios and the run facade
//
// Run(RunConfig) is the one entry point every fleet simulation goes
// through: batch or streaming, sequential or sharded-parallel, with the
// online sketch layer optionally attached — the historical
// SimulateFleet/SimulateFleetWorkers/SimulateFleetStream trio survives
// as thin deprecated wrappers over it, pinned byte-identical by test.
//
// internal/scenario makes whole experiments declarative: a strict,
// versioned YAML spec (parsed by a dependency-free reader that rejects
// unknown fields with line numbers and dotted paths) pins the base
// simulation shape, layers named presets (paper40d, laptop, tenweek),
// declares workload client classes (arrival share, session/query
// scaling, injected query vocabulary — the polluter scenario) and a
// timeline of churn transients (mass disconnect, outage, linear
// recovery surge), and attaches headline-metric checks evaluated
// against the recorded trace. Specs compile into the same
// capture/engine/workload configs the flags produce — the paper40d
// preset compiles to exactly the historical default run, SHA-256-equal
// trace and all — and every simulation command takes -spec/-preset
// through the shared internal/cliflags block with precedence
// spec < preset < explicitly set flag. LoadScenario, ScenarioPreset,
// RunScenario and EvaluateScenario are the library faces of the same
// path; the committed specs under scenarios/ run in CI with their
// checks gating the build (make scenario-suite).
//
// # Concurrency model
//
// The characterization pipeline is parallel by default, end to end. The
// Section 3.3 filter runs data-parallel over connections (filter
// .ApplyOpts chunks the per-connection rule passes over the shared
// internal/par worker pool — at merged full-trace volume this pass
// dominates characterization); session enrichment follows; then every
// per-figure computation and each of the 51 per-(table, region, period,
// bucket) appendix fits runs as an independent task on the same bounded
// pool (core.Options.Workers; 1 forces sequential). Tasks share only the
// immutable trace and enriched-session slice and write to disjoint
// fields, so for a fixed seed the rendered report is byte-identical for
// every worker count — a property pinned by tests, and demonstrated (not
// just promised) by CI's multi-core job, which fails unless the parallel
// pipeline beats sequential by ≥ 2× at 4 vCPUs.
//
// On the generator side, vocab.Vocabulary shards its per-day popularity
// rankings by query class: each (class, day) ranking is built lazily
// exactly once behind its own sync.Once, via top-K partial selection over
// per-(seed, class, day) PCG score streams. Steady-state query draws are
// lock-free map hits, so concurrent workload or capture generators no
// longer serialize behind one vocabulary mutex, and the ranking result is
// independent of which goroutine builds it. Measured on one 2.1 GHz core,
// building a day ranking for all seven classes dropped from 6.1 ms /
// 588 KB to 1.5 ms / 19 KB, and a cold single-class draw from 6.0 ms to
// 0.6 ms; cached draws stay at ~120 ns with zero allocations.
//
// # Observability
//
// internal/obs is the shared, dependency-free observability layer the
// whole pipeline reports through. An obs.Registry holds counters, gauges
// and fixed-bucket histograms with atomic hot paths; every handle is
// nil-receiver safe, so instrumented code pays one nil check when no
// observer is installed — the obs-overhead make target gates that cost
// against the pre-observability benchmark baseline in CI. An
// obs.Observer couples a registry with a JSONL run journal: engine,
// stream and ingest record phase spans (partition, simulate, merge,
// characterize), discrete events (input_stalled, input_evicted,
// scenario_check) and a final metrics snapshot. Journals are
// deterministic by construction — wall-clock-dependent values ride
// exposition-only GaugeFuncs, excluded from snapshots — so two runs of
// the same spec are identical after obs.Canonical strips timestamps
// (pinned by test). The long-running commands share one HTTP surface
// (obs.NewHTTPHandler): Prometheus text exposition at /metrics, any
// legacy JSON payload at /metrics.json, and net/http/pprof behind a
// -pprof flag; `analyze -journal run.jsonl -heartbeat 5s` records a
// batch run's full story to disk.
//
// # Quickstart
//
// Simulate a scaled-down 40-day measurement, characterize it, and print
// the paper's tables and figures:
//
//	cfg := p2pquery.DefaultSimulation(42, 0.02) // 2% of paper scale
//	tr := p2pquery.Simulate(cfg)
//	c := p2pquery.Characterize(tr)
//	p2pquery.WriteReport(os.Stdout, c)
//
// Generate a synthetic workload (the paper's Figure 12 algorithm) to
// drive a P2P system evaluation:
//
//	gen := p2pquery.NewWorkload(p2pquery.DefaultWorkload(7, 0.1))
//	for s := gen.Next(); s != nil; s = gen.Next() {
//		feed(s) // region, passive/active, query schedule, query strings
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package p2pquery
