package wire

import (
	"fmt"
	"io"

	"repro/internal/guid"
)

// Envelope pairs a descriptor header with its decoded payload — the unit
// the overlay routes and the measurement node records.
type Envelope struct {
	Header  Header
	Payload Message
}

// NewEnvelope builds an envelope for a freshly generated message, filling
// the header's type from the payload. PayloadLen is computed at encode
// time.
func NewEnvelope(g guid.GUID, ttl uint8, m Message) Envelope {
	return Envelope{
		Header:  Header{GUID: g, Type: m.Type(), TTL: ttl},
		Payload: m,
	}
}

// Forwarded returns a copy of the envelope with TTL decremented and hops
// incremented, as performed by every relaying servent. It reports false
// when the TTL is exhausted and the message must not be forwarded.
func (e Envelope) Forwarded() (Envelope, bool) {
	if e.Header.TTL <= 1 {
		return e, false
	}
	e.Header.TTL--
	e.Header.Hops++
	return e, true
}

// AppendEnvelope serializes header and payload onto dst, fixing up the
// header's payload-length field, and returns the extended slice.
func AppendEnvelope(dst []byte, e Envelope) []byte {
	start := len(dst)
	dst = AppendHeader(dst, e.Header)
	dst = e.Payload.AppendPayload(dst)
	plen := len(dst) - start - HeaderSize
	// Patch the little-endian length in place.
	dst[start+19] = byte(plen)
	dst[start+20] = byte(plen >> 8)
	dst[start+21] = byte(plen >> 16)
	dst[start+22] = byte(plen >> 24)
	return dst
}

// Parser decodes messages into a reusable set of payload structs, avoiding
// per-message allocation on hot paths (the decoding-layer pattern). The
// decoded Message returned by Parse and ReadMessage aliases the Parser's
// internal structs: it is valid only until the next call. Copy what must
// be retained.
type Parser struct {
	ping     Ping
	pong     Pong
	query    Query
	queryHit QueryHit
	push     Push
	bye      Bye
	buf      []byte
}

// Parse decodes one full message (header + payload) from buf. It returns
// the envelope and the number of bytes consumed. An incomplete buffer
// returns io.ErrShortBuffer with n = 0 so stream callers can wait for more
// data.
func (p *Parser) Parse(buf []byte) (Envelope, int, error) {
	var e Envelope
	if len(buf) < HeaderSize {
		return e, 0, io.ErrShortBuffer
	}
	if err := DecodeHeader(buf, &e.Header); err != nil {
		return e, 0, err
	}
	total := HeaderSize + int(e.Header.PayloadLen)
	if len(buf) < total {
		return e, 0, io.ErrShortBuffer
	}
	payload := buf[HeaderSize:total]
	m, err := p.decode(e.Header.Type, payload)
	if err != nil {
		return e, 0, err
	}
	e.Payload = m
	return e, total, nil
}

func (p *Parser) decode(t Type, payload []byte) (Message, error) {
	var m Message
	switch t {
	case TypePing:
		m = &p.ping
	case TypePong:
		m = &p.pong
	case TypeQuery:
		m = &p.query
	case TypeQueryHit:
		m = &p.queryHit
	case TypePush:
		m = &p.push
	case TypeBye:
		m = &p.bye
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadType, t)
	}
	if err := m.DecodePayload(payload); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessage reads exactly one message from a stream. The returned
// envelope's payload aliases parser state, as with Parse.
func (p *Parser) ReadMessage(r io.Reader) (Envelope, error) {
	var e Envelope
	if cap(p.buf) < HeaderSize {
		p.buf = make([]byte, HeaderSize, 1024)
	}
	hdr := p.buf[:HeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return e, err
	}
	if err := DecodeHeader(hdr, &e.Header); err != nil {
		return e, err
	}
	n := int(e.Header.PayloadLen)
	if cap(p.buf) < n {
		p.buf = make([]byte, n)
	}
	payload := p.buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return e, fmt.Errorf("%w: payload: %w", ErrShortPayload, err)
	}
	m, err := p.decode(e.Header.Type, payload)
	if err != nil {
		return e, err
	}
	e.Payload = m
	return e, nil
}

// WriteTo serializes the envelope to a stream using the given scratch
// buffer (which may be nil) and returns the scratch for reuse.
func WriteTo(w io.Writer, e Envelope, scratch []byte) ([]byte, error) {
	scratch = AppendEnvelope(scratch[:0], e)
	_, err := w.Write(scratch)
	return scratch, err
}

// Clone deep-copies an envelope so it can outlive the parser that decoded
// it.
func Clone(e Envelope) Envelope {
	switch m := e.Payload.(type) {
	case *Ping:
		e.Payload = &Ping{}
	case *Pong:
		cp := *m
		e.Payload = &cp
	case *Query:
		cp := *m
		cp.Extensions = append([]string(nil), m.Extensions...)
		e.Payload = &cp
	case *QueryHit:
		cp := *m
		cp.Results = append([]HitResult(nil), m.Results...)
		e.Payload = &cp
	case *Push:
		cp := *m
		e.Payload = &cp
	case *Bye:
		cp := *m
		e.Payload = &cp
	}
	return e
}
