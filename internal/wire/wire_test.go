package wire

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/guid"
)

var guids = guid.NewSource(1, 2)

func roundTrip(t *testing.T, m Message) Envelope {
	t.Helper()
	e := NewEnvelope(guids.Next(), 5, m)
	buf := AppendEnvelope(nil, e)
	var p Parser
	got, n, err := p.Parse(buf)
	if err != nil {
		t.Fatalf("Parse(%v): %v", m.Type(), err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Header.GUID != e.Header.GUID || got.Header.Type != m.Type() ||
		got.Header.TTL != 5 || got.Header.Hops != 0 {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if int(got.Header.PayloadLen) != len(buf)-HeaderSize {
		t.Fatalf("payload length %d, want %d", got.Header.PayloadLen, len(buf)-HeaderSize)
	}
	return got
}

func TestPingRoundTrip(t *testing.T) {
	e := roundTrip(t, &Ping{})
	if _, ok := e.Payload.(*Ping); !ok {
		t.Fatalf("payload type %T", e.Payload)
	}
}

func TestPongRoundTrip(t *testing.T) {
	want := &Pong{
		Port:        6346,
		Addr:        netip.MustParseAddr("66.1.2.3"),
		SharedFiles: 120,
		SharedKB:    345678,
	}
	e := roundTrip(t, want)
	got := e.Payload.(*Pong)
	if *got != *want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	want := &Query{MinSpeed: 64, SearchText: "blue mountain mp3"}
	e := roundTrip(t, want)
	got := e.Payload.(*Query)
	if got.SearchText != want.SearchText || got.MinSpeed != want.MinSpeed {
		t.Fatalf("got %+v", got)
	}
	if got.HasSHA1() {
		t.Error("plain query should not report SHA1")
	}
}

func TestQueryWithExtensions(t *testing.T) {
	want := &Query{
		MinSpeed:   0,
		SearchText: "",
		Extensions: []string{"urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB", "urn:bitprint:X"},
	}
	e := roundTrip(t, want)
	got := e.Payload.(*Query)
	if len(got.Extensions) != 2 {
		t.Fatalf("extensions = %q", got.Extensions)
	}
	if got.Extensions[0] != want.Extensions[0] || got.Extensions[1] != want.Extensions[1] {
		t.Fatalf("extensions = %q", got.Extensions)
	}
	if !got.HasSHA1() {
		t.Error("sha1 URN not detected")
	}
}

func TestQueryHitRoundTrip(t *testing.T) {
	want := &QueryHit{
		Port:  6346,
		Addr:  netip.MustParseAddr("212.5.6.7"),
		Speed: 256,
		Results: []HitResult{
			{FileIndex: 1, FileSize: 4096, FileName: "song one.mp3"},
			{FileIndex: 9, FileSize: 1 << 20, FileName: "movie.avi"},
		},
		Servent: guids.Next(),
	}
	e := roundTrip(t, want)
	got := e.Payload.(*QueryHit)
	if got.Port != want.Port || got.Addr != want.Addr || got.Speed != want.Speed {
		t.Fatalf("fixed fields: %+v", got)
	}
	if len(got.Results) != 2 || got.Results[0] != want.Results[0] || got.Results[1] != want.Results[1] {
		t.Fatalf("results = %+v", got.Results)
	}
	if got.Servent != want.Servent {
		t.Fatal("servent GUID mismatch")
	}
}

func TestPushRoundTrip(t *testing.T) {
	want := &Push{
		Servent:   guids.Next(),
		FileIndex: 42,
		Addr:      netip.MustParseAddr("80.1.2.3"),
		Port:      6347,
	}
	e := roundTrip(t, want)
	got := e.Payload.(*Push)
	if *got != *want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestByeRoundTrip(t *testing.T) {
	want := &Bye{Code: 200, Reason: "shutting down"}
	e := roundTrip(t, want)
	got := e.Payload.(*Bye)
	if *got != *want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestForwarded(t *testing.T) {
	e := NewEnvelope(guids.Next(), 3, &Ping{})
	f, ok := e.Forwarded()
	if !ok || f.Header.TTL != 2 || f.Header.Hops != 1 {
		t.Fatalf("first hop: %+v ok=%v", f.Header, ok)
	}
	f, ok = f.Forwarded()
	if !ok || f.Header.TTL != 1 || f.Header.Hops != 2 {
		t.Fatalf("second hop: %+v ok=%v", f.Header, ok)
	}
	if _, ok = f.Forwarded(); ok {
		t.Fatal("TTL 1 must not forward")
	}
	// Original envelope must be untouched (value semantics).
	if e.Header.TTL != 3 || e.Header.Hops != 0 {
		t.Fatal("Forwarded mutated the original")
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	var h Header
	if err := DecodeHeader(make([]byte, 10), &h); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short: %v", err)
	}
	buf := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, &Ping{}))
	buf[16] = 0x77 // unknown type
	if err := DecodeHeader(buf, &h); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
	buf[16] = byte(TypePing)
	buf[22] = 0xFF // huge payload length
	if err := DecodeHeader(buf, &h); !errors.Is(err, ErrPayloadTooBig) {
		t.Errorf("big payload: %v", err)
	}
}

func TestParseShortBuffer(t *testing.T) {
	buf := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, &Pong{Addr: netip.MustParseAddr("1.2.3.4")}))
	var p Parser
	for i := 0; i < len(buf); i++ {
		if _, n, err := p.Parse(buf[:i]); err != io.ErrShortBuffer || n != 0 {
			t.Fatalf("Parse(%d bytes) = n=%d err=%v, want short buffer", i, n, err)
		}
	}
}

func TestParseStream(t *testing.T) {
	// Several messages back to back in one buffer.
	var buf []byte
	msgs := []Message{
		&Ping{},
		&Query{SearchText: "abc def"},
		&Pong{Port: 1, Addr: netip.MustParseAddr("5.6.7.8"), SharedFiles: 3},
		&Bye{Code: 1, Reason: "x"},
	}
	for _, m := range msgs {
		buf = AppendEnvelope(buf, NewEnvelope(guids.Next(), 2, m))
	}
	var p Parser
	off := 0
	for i, want := range msgs {
		e, n, err := p.Parse(buf[off:])
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if e.Header.Type != want.Type() {
			t.Fatalf("message %d type = %v, want %v", i, e.Header.Type, want.Type())
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d", off, len(buf))
	}
}

func TestReadWriteStream(t *testing.T) {
	var net bytes.Buffer
	var scratch []byte
	var err error
	q := &Query{SearchText: "hello world"}
	scratch, err = WriteTo(&net, NewEnvelope(guids.Next(), 4, q), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = WriteTo(&net, NewEnvelope(guids.Next(), 4, &Ping{}), scratch); err != nil {
		t.Fatal(err)
	}
	var p Parser
	e1, err := p.ReadMessage(&net)
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.Payload.(*Query).SearchText; got != "hello world" {
		t.Fatalf("query text %q", got)
	}
	e2, err := p.ReadMessage(&net)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Header.Type != TypePing {
		t.Fatalf("second message type %v", e2.Header.Type)
	}
	if _, err := p.ReadMessage(&net); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestReadFromTruncatedPayload(t *testing.T) {
	buf := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, &Query{SearchText: "abc"}))
	var p Parser
	if _, err := p.ReadMessage(bytes.NewReader(buf[:len(buf)-2])); err == nil {
		t.Fatal("truncated payload must fail")
	}
}

func TestParserReuseAndClone(t *testing.T) {
	var p Parser
	buf1 := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, &Query{SearchText: "first"}))
	buf2 := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, &Query{SearchText: "second"}))
	e1, _, err := p.Parse(buf1)
	if err != nil {
		t.Fatal(err)
	}
	kept := Clone(e1)
	if _, _, err := p.Parse(buf2); err != nil {
		t.Fatal(err)
	}
	// The aliased payload now shows the second query; the clone keeps the first.
	if e1.Payload.(*Query).SearchText != "second" {
		t.Fatal("expected parser reuse to overwrite aliased payload")
	}
	if kept.Payload.(*Query).SearchText != "first" {
		t.Fatal("clone did not preserve the payload")
	}
}

func TestKeywordKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Blue Mountain MP3", "blue mountain mp3"},
		{"mp3   blue BLUE mountain", "blue mountain mp3"},
		{"", ""},
		{"   ", ""},
		{"single", "single"},
		{"b a", "a b"},
	}
	for _, c := range cases {
		if got := KeywordKey(c.in); got != c.want {
			t.Errorf("KeywordKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	q := &Query{SearchText: "Zeta alpha"}
	if q.KeywordKey() != "alpha zeta" {
		t.Errorf("Query.KeywordKey = %q", q.KeywordKey())
	}
}

// Property: any query text round-trips (as long as it has no NUL, which the
// wire format cannot carry).
func TestPropertyQueryRoundTrip(t *testing.T) {
	f := func(text string, speed uint16) bool {
		text = strings.ReplaceAll(text, "\x00", "")
		text = strings.ReplaceAll(text, string(rune(extSep)), "")
		in := &Query{MinSpeed: speed, SearchText: text}
		buf := AppendEnvelope(nil, NewEnvelope(guids.Next(), 1, in))
		var p Parser
		e, _, err := p.Parse(buf)
		if err != nil {
			return false
		}
		out := e.Payload.(*Query)
		return out.SearchText == text && out.MinSpeed == speed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: header round-trips for arbitrary valid field values.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(raw [16]byte, ttl, hops uint8) bool {
		h := Header{GUID: guid.GUID(raw), Type: TypeQuery, TTL: ttl, Hops: hops, PayloadLen: 17}
		buf := AppendHeader(nil, h)
		var got Header
		if err := DecodeHeader(buf, &got); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: KeywordKey is idempotent and order-insensitive.
func TestPropertyKeywordKey(t *testing.T) {
	f := func(a, b string) bool {
		k1 := KeywordKey(a + " " + b)
		k2 := KeywordKey(b + " " + a)
		return k1 == k2 && KeywordKey(k1) == k1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
