// Package wire implements the Gnutella v0.6 binary message protocol: the
// 23-byte descriptor header and the PING, PONG, QUERY, QUERYHIT, PUSH and
// BYE payloads, with zero-allocation decode into caller-owned structs (in
// the style of gopacket's DecodingLayerParser) and append-style encoding
// (in the style of gopacket's SerializeBuffer).
//
// Layout, per the Gnutella protocol specification (rfc-gnutella):
//
//	bytes 0–15  message GUID
//	byte  16    payload type (0x00 PING, 0x01 PONG, 0x02 BYE, 0x40 PUSH,
//	            0x80 QUERY, 0x81 QUERYHIT)
//	byte  17    TTL
//	byte  18    hops
//	bytes 19–22 payload length, little-endian
//
// Multi-byte payload fields are little-endian except IPv4 addresses, which
// are in network byte order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/guid"
)

// Type identifies a Gnutella payload type.
type Type uint8

// The five payload types of the v0.6 protocol plus PUSH.
const (
	TypePing     Type = 0x00
	TypePong     Type = 0x01
	TypeBye      Type = 0x02
	TypePush     Type = 0x40
	TypeQuery    Type = 0x80
	TypeQueryHit Type = 0x81
)

func (t Type) String() string {
	switch t {
	case TypePing:
		return "PING"
	case TypePong:
		return "PONG"
	case TypeBye:
		return "BYE"
	case TypePush:
		return "PUSH"
	case TypeQuery:
		return "QUERY"
	case TypeQueryHit:
		return "QUERYHIT"
	default:
		return fmt.Sprintf("Type(0x%02x)", uint8(t))
	}
}

// Valid reports whether t is a known payload type.
func (t Type) Valid() bool {
	switch t {
	case TypePing, TypePong, TypeBye, TypePush, TypeQuery, TypeQueryHit:
		return true
	}
	return false
}

// Protocol limits. MaxTTL follows the specification's guidance that
// TTL + hops must not exceed 7 on sane networks; MaxPayload guards the
// decoder against hostile length fields.
const (
	HeaderSize = 23
	MaxTTL     = 7
	MaxPayload = 64 << 10
)

// Decoding errors.
var (
	ErrShortHeader   = errors.New("wire: short header")
	ErrShortPayload  = errors.New("wire: payload shorter than descriptor")
	ErrBadType       = errors.New("wire: unknown payload type")
	ErrPayloadTooBig = errors.New("wire: payload length exceeds limit")
	ErrTruncated     = errors.New("wire: truncated field")
)

// Header is the 23-byte Gnutella descriptor header.
type Header struct {
	GUID       guid.GUID
	Type       Type
	TTL        uint8
	Hops       uint8
	PayloadLen uint32
}

// AppendHeader serializes h onto dst and returns the extended slice.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, h.GUID[:]...)
	dst = append(dst, byte(h.Type), h.TTL, h.Hops)
	return binary.LittleEndian.AppendUint32(dst, h.PayloadLen)
}

// DecodeHeader parses a descriptor header from src.
func DecodeHeader(src []byte, h *Header) error {
	if len(src) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrShortHeader, len(src))
	}
	copy(h.GUID[:], src[0:16])
	h.Type = Type(src[16])
	h.TTL = src[17]
	h.Hops = src[18]
	h.PayloadLen = binary.LittleEndian.Uint32(src[19:23])
	if !h.Type.Valid() {
		return fmt.Errorf("%w: 0x%02x", ErrBadType, src[16])
	}
	if h.PayloadLen > MaxPayload {
		return fmt.Errorf("%w: %d", ErrPayloadTooBig, h.PayloadLen)
	}
	return nil
}

// Message is a decoded Gnutella payload. Implementations decode in place so
// a Parser can reuse them across messages.
type Message interface {
	// Type returns the payload type the message serializes as.
	Type() Type
	// AppendPayload serializes the payload onto dst and returns the
	// extended slice.
	AppendPayload(dst []byte) []byte
	// DecodePayload parses the payload in place. Implementations must not
	// retain src.
	DecodePayload(src []byte) error
}

// Ping is the empty keep-alive payload.
type Ping struct{}

// Type implements Message.
func (Ping) Type() Type { return TypePing }

// AppendPayload implements Message.
func (Ping) AppendPayload(dst []byte) []byte { return dst }

// DecodePayload implements Message. Modern clients may attach GGEP blocks;
// they carry no information this system uses, so any payload is accepted.
func (*Ping) DecodePayload([]byte) error { return nil }

// Pong describes a reachable servent: its address and its shared library
// size. The shared-files count feeds the paper's Figure 2.
type Pong struct {
	Port        uint16
	Addr        netip.Addr
	SharedFiles uint32
	SharedKB    uint32
}

// Type implements Message.
func (*Pong) Type() Type { return TypePong }

// AppendPayload implements Message.
func (p *Pong) AppendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, p.Port)
	dst = appendAddr4(dst, p.Addr)
	dst = binary.LittleEndian.AppendUint32(dst, p.SharedFiles)
	return binary.LittleEndian.AppendUint32(dst, p.SharedKB)
}

// DecodePayload implements Message.
func (p *Pong) DecodePayload(src []byte) error {
	if len(src) < 14 {
		return fmt.Errorf("%w: pong needs 14 bytes, got %d", ErrTruncated, len(src))
	}
	p.Port = binary.LittleEndian.Uint16(src[0:2])
	p.Addr = netip.AddrFrom4([4]byte(src[2:6]))
	p.SharedFiles = binary.LittleEndian.Uint32(src[6:10])
	p.SharedKB = binary.LittleEndian.Uint32(src[10:14])
	return nil
}

// Query carries a keyword search. Extensions after the terminating NUL
// (HUGE URNs such as "urn:sha1:…", separated by 0x1C) are preserved; rule 1
// of the paper's filter discards queries whose extension block carries a
// SHA1 URN, because those are source-hunting re-queries issued by the
// client software, not the user.
type Query struct {
	MinSpeed   uint16
	SearchText string
	Extensions []string
}

// Type implements Message.
func (*Query) Type() Type { return TypeQuery }

// extSep separates HUGE extension blocks in a query payload.
const extSep = 0x1C

// AppendPayload implements Message.
func (q *Query) AppendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, q.MinSpeed)
	dst = append(dst, q.SearchText...)
	dst = append(dst, 0)
	for i, ext := range q.Extensions {
		if i > 0 {
			dst = append(dst, extSep)
		}
		dst = append(dst, ext...)
	}
	if len(q.Extensions) > 0 {
		dst = append(dst, 0)
	}
	return dst
}

// DecodePayload implements Message.
func (q *Query) DecodePayload(src []byte) error {
	if len(src) < 3 {
		return fmt.Errorf("%w: query needs ≥3 bytes, got %d", ErrTruncated, len(src))
	}
	q.MinSpeed = binary.LittleEndian.Uint16(src[0:2])
	rest := src[2:]
	nul := indexByte(rest, 0)
	if nul < 0 {
		return fmt.Errorf("%w: query text not NUL-terminated", ErrTruncated)
	}
	q.SearchText = string(rest[:nul])
	q.Extensions = q.Extensions[:0]
	ext := rest[nul+1:]
	if len(ext) > 0 && ext[len(ext)-1] == 0 {
		ext = ext[:len(ext)-1]
	}
	for len(ext) > 0 {
		sep := indexByte(ext, extSep)
		if sep < 0 {
			q.Extensions = append(q.Extensions, string(ext))
			break
		}
		q.Extensions = append(q.Extensions, string(ext[:sep]))
		ext = ext[sep+1:]
	}
	return nil
}

// HasSHA1 reports whether any extension block carries a sha1 URN — the
// trigger for filter rule 1.
func (q *Query) HasSHA1() bool {
	for _, e := range q.Extensions {
		if len(e) >= 9 && (e[:9] == "urn:sha1:" || e[:9] == "URN:SHA1:") {
			return true
		}
	}
	return false
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// HitResult is one file entry of a QUERYHIT result set.
type HitResult struct {
	FileIndex uint32
	FileSize  uint32
	FileName  string
}

// QueryHit is the response to a QUERY, routed back along the reverse path.
type QueryHit struct {
	Port    uint16
	Addr    netip.Addr
	Speed   uint32
	Results []HitResult
	Servent guid.GUID
}

// Type implements Message.
func (*QueryHit) Type() Type { return TypeQueryHit }

// AppendPayload implements Message.
func (h *QueryHit) AppendPayload(dst []byte) []byte {
	dst = append(dst, byte(len(h.Results)))
	dst = binary.LittleEndian.AppendUint16(dst, h.Port)
	dst = appendAddr4(dst, h.Addr)
	dst = binary.LittleEndian.AppendUint32(dst, h.Speed)
	for _, r := range h.Results {
		dst = binary.LittleEndian.AppendUint32(dst, r.FileIndex)
		dst = binary.LittleEndian.AppendUint32(dst, r.FileSize)
		dst = append(dst, r.FileName...)
		dst = append(dst, 0, 0) // name terminator + empty extension block
	}
	return append(dst, h.Servent[:]...)
}

// DecodePayload implements Message.
func (h *QueryHit) DecodePayload(src []byte) error {
	if len(src) < 11+guid.Size {
		return fmt.Errorf("%w: queryhit needs ≥27 bytes, got %d", ErrTruncated, len(src))
	}
	n := int(src[0])
	h.Port = binary.LittleEndian.Uint16(src[1:3])
	h.Addr = netip.AddrFrom4([4]byte(src[3:7]))
	h.Speed = binary.LittleEndian.Uint32(src[7:11])
	body := src[11 : len(src)-guid.Size]
	h.Results = h.Results[:0]
	for i := 0; i < n; i++ {
		if len(body) < 8 {
			return fmt.Errorf("%w: queryhit result %d header", ErrTruncated, i)
		}
		var r HitResult
		r.FileIndex = binary.LittleEndian.Uint32(body[0:4])
		r.FileSize = binary.LittleEndian.Uint32(body[4:8])
		body = body[8:]
		nul := indexByte(body, 0)
		if nul < 0 {
			return fmt.Errorf("%w: queryhit result %d name", ErrTruncated, i)
		}
		r.FileName = string(body[:nul])
		body = body[nul+1:]
		// Skip the extension block up to its own NUL.
		nul = indexByte(body, 0)
		if nul < 0 {
			return fmt.Errorf("%w: queryhit result %d extension", ErrTruncated, i)
		}
		body = body[nul+1:]
		h.Results = append(h.Results, r)
	}
	var err error
	h.Servent, err = guid.FromBytes(src[len(src)-guid.Size:])
	return err
}

// Push requests a firewalled peer to open an outbound transfer connection.
type Push struct {
	Servent   guid.GUID
	FileIndex uint32
	Addr      netip.Addr
	Port      uint16
}

// Type implements Message.
func (*Push) Type() Type { return TypePush }

// AppendPayload implements Message.
func (p *Push) AppendPayload(dst []byte) []byte {
	dst = append(dst, p.Servent[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, p.FileIndex)
	dst = appendAddr4(dst, p.Addr)
	return binary.LittleEndian.AppendUint16(dst, p.Port)
}

// DecodePayload implements Message.
func (p *Push) DecodePayload(src []byte) error {
	if len(src) < 26 {
		return fmt.Errorf("%w: push needs 26 bytes, got %d", ErrTruncated, len(src))
	}
	var err error
	p.Servent, err = guid.FromBytes(src[0:16])
	if err != nil {
		return err
	}
	p.FileIndex = binary.LittleEndian.Uint32(src[16:20])
	p.Addr = netip.AddrFrom4([4]byte(src[20:24]))
	p.Port = binary.LittleEndian.Uint16(src[24:26])
	return nil
}

// Bye announces a deliberate disconnect. Most 2004-era clients never sent
// it — the measurement node's idle-timeout policy exists exactly because
// connections usually just go silent.
type Bye struct {
	Code   uint16
	Reason string
}

// Type implements Message.
func (*Bye) Type() Type { return TypeBye }

// AppendPayload implements Message.
func (b *Bye) AppendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, b.Code)
	dst = append(dst, b.Reason...)
	return append(dst, 0)
}

// DecodePayload implements Message.
func (b *Bye) DecodePayload(src []byte) error {
	if len(src) < 3 {
		return fmt.Errorf("%w: bye needs ≥3 bytes, got %d", ErrTruncated, len(src))
	}
	b.Code = binary.LittleEndian.Uint16(src[0:2])
	rest := src[2:]
	if nul := indexByte(rest, 0); nul >= 0 {
		rest = rest[:nul]
	}
	b.Reason = string(rest)
	return nil
}

func appendAddr4(dst []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		return append(dst, b[:]...)
	}
	return append(dst, 0, 0, 0, 0)
}
