package wire

import (
	"bytes"
	"testing"

	"repro/internal/guid"
)

// FuzzParse throws arbitrary bytes at the message parser: it must never
// panic, and whatever it accepts must re-encode to something it accepts
// again (decode/encode/decode equivalence on the header and payload type).
func FuzzParse(f *testing.F) {
	g := guid.NewSource(1, 2)
	seeds := [][]byte{
		AppendEnvelope(nil, NewEnvelope(g.Next(), 7, &Ping{})),
		AppendEnvelope(nil, NewEnvelope(g.Next(), 6, &Query{SearchText: "blue mountain"})),
		AppendEnvelope(nil, NewEnvelope(g.Next(), 5, &Query{
			SearchText: "", Extensions: []string{"urn:sha1:ABCDEF"},
		})),
		AppendEnvelope(nil, NewEnvelope(g.Next(), 4, &Pong{SharedFiles: 9})),
		AppendEnvelope(nil, NewEnvelope(g.Next(), 3, &QueryHit{
			Results: []HitResult{{FileIndex: 1, FileSize: 2, FileName: "x.mp3"}},
			Servent: g.Next(),
		})),
		AppendEnvelope(nil, NewEnvelope(g.Next(), 2, &Bye{Code: 200, Reason: "bye"})),
		{0x00, 0x01, 0x02},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		env, n, err := p.Parse(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Re-encode and re-parse: the header and payload type must agree.
		re := AppendEnvelope(nil, Clone(env))
		var p2 Parser
		env2, _, err := p2.Parse(re)
		if err != nil {
			t.Fatalf("re-parse of re-encoded message failed: %v", err)
		}
		if env2.Header.GUID != env.Header.GUID || env2.Header.Type != env.Header.Type {
			t.Fatalf("header changed across re-encode: %+v vs %+v", env.Header, env2.Header)
		}
	})
}

// FuzzKeywordKey checks the canonicalization invariants on arbitrary
// input: idempotence and insensitivity to leading/trailing whitespace.
func FuzzKeywordKey(f *testing.F) {
	for _, s := range []string{"", "a b", "B a", "  padded  ", "ümlaut ÜMLAUT", "x\ty\nz"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k := KeywordKey(s)
		if KeywordKey(k) != k {
			t.Fatalf("not idempotent: %q → %q → %q", s, k, KeywordKey(k))
		}
		if KeywordKey(" "+s+" ") != k {
			t.Fatalf("whitespace-sensitive: %q", s)
		}
	})
}

// FuzzStreamReader feeds arbitrary byte streams to the framed reader.
func FuzzStreamReader(f *testing.F) {
	g := guid.NewSource(3, 4)
	ok := AppendEnvelope(nil, NewEnvelope(g.Next(), 6, &Query{SearchText: "seed"}))
	f.Add(ok)
	f.Add([]byte("GNUTELLA garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		r := bytes.NewReader(data)
		for i := 0; i < 16; i++ { // bounded: the reader must terminate
			if _, err := p.ReadMessage(r); err != nil {
				return
			}
		}
	})
}
