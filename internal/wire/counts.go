package wire

// MessageCountsByType tallies messages per payload type; the overlay and
// the measurement node both report in this shape.
type MessageCountsByType struct {
	Ping     uint64
	Pong     uint64
	Query    uint64
	QueryHit uint64
	Push     uint64
	Bye      uint64
	Other    uint64
}

// Add counts one message of the given type.
func (c *MessageCountsByType) Add(t Type) {
	switch t {
	case TypePing:
		c.Ping++
	case TypePong:
		c.Pong++
	case TypeQuery:
		c.Query++
	case TypeQueryHit:
		c.QueryHit++
	case TypePush:
		c.Push++
	case TypeBye:
		c.Bye++
	default:
		c.Other++
	}
}

// Total returns the count across all types.
func (c MessageCountsByType) Total() uint64 {
	return c.Ping + c.Pong + c.Query + c.QueryHit + c.Push + c.Bye + c.Other
}
