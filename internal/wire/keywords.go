package wire

import (
	"sort"
	"strings"
)

// KeywordKey canonicalizes a query's search text into its keyword-set
// identity. The Gnutella protocol treats two queries as identical when they
// contain the same set of keywords, regardless of order, case or
// repetition; the paper uses this definition both for filter rule 2
// (duplicate query strings within a session) and for counting distinct
// queries in the popularity analysis.
//
// The key is the sorted, deduplicated, lower-cased keyword set joined by
// single spaces. An empty or whitespace-only search text yields "".
func KeywordKey(searchText string) string {
	fields := strings.Fields(strings.ToLower(searchText))
	if len(fields) == 0 {
		return ""
	}
	sort.Strings(fields)
	out := fields[:1]
	for _, f := range fields[1:] {
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return strings.Join(out, " ")
}

// KeywordKeyOf is a convenience for messages: it returns the canonical
// keyword key of a decoded QUERY payload.
func (q *Query) KeywordKey() string { return KeywordKey(q.SearchText) }
