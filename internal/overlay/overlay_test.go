package overlay

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/guid"
	"repro/internal/wire"
)

// sent captures outgoing envelopes per connection.
type sent struct {
	conn int
	env  wire.Envelope
}

type harness struct {
	node *Node
	out  []sent
	now  time.Duration
	hits []*wire.QueryHit
}

func newHarness(t *testing.T, ultrapeer bool, lib []SharedFile) *harness {
	t.Helper()
	h := &harness{}
	src := guid.NewSource(1, 99)
	h.node = New(Config{
		Self:      src.Next(),
		Ultrapeer: ultrapeer,
		Addr:      netip.MustParseAddr("193.1.1.1"),
		Port:      6346,
		Library:   lib,
		Now:       func() time.Duration { return h.now },
		Send:      func(conn int, env wire.Envelope) { h.out = append(h.out, sent{conn, env}) },
		OnQueryHit: func(env wire.Envelope, qh *wire.QueryHit) {
			cp := *qh
			h.hits = append(h.hits, &cp)
		},
		GUIDs: guid.NewSource(2, 2),
	})
	return h
}

func (h *harness) sentTo(conn int) []wire.Envelope {
	var out []wire.Envelope
	for _, s := range h.out {
		if s.conn == conn {
			out = append(out, s.env)
		}
	}
	return out
}

func (h *harness) reset() { h.out = nil }

var msgGUIDs = guid.NewSource(7, 7)

func query(text string, ttl, hops uint8) wire.Envelope {
	return wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypeQuery, TTL: ttl, Hops: hops},
		Payload: &wire.Query{SearchText: text},
	}
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{Now: func() time.Duration { return 0 }}) },
		func() { New(Config{Send: func(int, wire.Envelope) {}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for missing required config")
				}
			}()
			f()
		}()
	}
}

func TestAddRemoveConn(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, false)
	if h.node.ConnCount() != 2 || !h.node.HasConn(1) {
		t.Fatal("conn bookkeeping")
	}
	h.node.RemoveConn(1)
	if h.node.ConnCount() != 1 || h.node.HasConn(1) {
		t.Fatal("remove failed")
	}
}

func TestQueryFloodsToUltrapeers(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	h.node.AddConn(3, true)
	env := query("some song", 5, 1)
	h.node.Receive(1, env)
	// Forwarded to conns 2 and 3, not back to 1.
	if len(h.sentTo(1)) != 0 {
		t.Error("query echoed to its source")
	}
	for _, c := range []int{2, 3} {
		got := h.sentTo(c)
		if len(got) != 1 {
			t.Fatalf("conn %d got %d messages", c, len(got))
		}
		if got[0].Header.TTL != 4 || got[0].Header.Hops != 2 {
			t.Errorf("conn %d: TTL/hops = %d/%d, want 4/2", c, got[0].Header.TTL, got[0].Header.Hops)
		}
	}
}

func TestQueryLeafForwardingIsSelective(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	for i := 2; i < 102; i++ {
		h.node.AddConn(i, false) // 100 leaves
	}
	for i := 0; i < 50; i++ {
		h.node.Receive(1, query("text", 5, 1))
	}
	// With LeafForwardProb = 0.05, about 250 of 5000 leaf deliveries.
	n := len(h.out)
	if n < 100 || n > 500 {
		t.Errorf("leaf deliveries = %d, want ≈250", n)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	env := query("dup", 5, 1)
	h.node.Receive(1, env)
	first := len(h.out)
	h.node.Receive(2, env) // same GUID from elsewhere
	if len(h.out) != first {
		t.Error("duplicate was forwarded")
	}
	if h.node.Stats().DroppedDup != 1 {
		t.Errorf("dup counter = %d", h.node.Stats().DroppedDup)
	}
}

func TestTTLExhaustedNotForwarded(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	h.node.Receive(1, query("last hop", 1, 6))
	if len(h.sentTo(2)) != 0 {
		t.Error("TTL-1 query forwarded")
	}
	if h.node.Stats().DroppedTTL != 1 {
		t.Errorf("ttl counter = %d", h.node.Stats().DroppedTTL)
	}
}

func TestLibraryMatchProducesHit(t *testing.T) {
	lib := []SharedFile{
		{Index: 1, Name: "Blue Mountain Song.mp3", SizeKB: 4000},
		{Index: 2, Name: "Other Tune.ogg", SizeKB: 3000},
	}
	h := newHarness(t, true, lib)
	h.node.AddConn(1, true)
	env := query("blue song.mp3", 5, 1)
	h.node.Receive(1, env)
	got := h.sentTo(1)
	if len(got) != 1 {
		t.Fatalf("expected 1 hit back, got %d messages", len(got))
	}
	qh := got[0].Payload.(*wire.QueryHit)
	if len(qh.Results) != 1 || qh.Results[0].FileIndex != 1 {
		t.Fatalf("results = %+v", qh.Results)
	}
	if got[0].Header.GUID != env.Header.GUID {
		t.Error("hit must carry the query GUID for reverse routing")
	}
	if h.node.Stats().HitsServed != 1 {
		t.Error("hit counter")
	}
}

func TestNoMatchNoHit(t *testing.T) {
	h := newHarness(t, true, []SharedFile{{Index: 1, Name: "abc def"}})
	h.node.AddConn(1, true)
	h.node.Receive(1, query("abc xyz", 5, 1))
	for _, e := range h.sentTo(1) {
		if e.Header.Type == wire.TypeQueryHit {
			t.Fatal("partial keyword match must not hit")
		}
	}
}

func TestQueryHitReverseRouting(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	env := query("route me", 5, 1)
	h.node.Receive(1, env) // route: GUID → conn 1
	h.reset()
	// A hit for that GUID arrives from conn 2.
	hit := wire.Envelope{
		Header: wire.Header{GUID: env.Header.GUID, Type: wire.TypeQueryHit, TTL: 4, Hops: 2},
		Payload: &wire.QueryHit{
			Addr: netip.MustParseAddr("80.2.2.2"), Port: 6346,
			Results: []wire.HitResult{{FileIndex: 9, FileName: "route me.mp3"}},
			Servent: msgGUIDs.Next(),
		},
	}
	h.node.Receive(2, hit)
	got := h.sentTo(1)
	if len(got) != 1 || got[0].Header.Type != wire.TypeQueryHit {
		t.Fatalf("hit not routed back: %d messages", len(got))
	}
	if got[0].Header.Hops != 3 {
		t.Errorf("hops = %d", got[0].Header.Hops)
	}
	if h.node.Stats().RoutedHit != 1 {
		t.Error("routed-hit counter")
	}
}

func TestQueryHitWithoutRouteDropped(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	hit := wire.Envelope{
		Header: wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypeQueryHit, TTL: 4, Hops: 2},
		Payload: &wire.QueryHit{
			Addr:    netip.MustParseAddr("80.2.2.2"),
			Results: []wire.HitResult{{FileIndex: 1, FileName: "x"}},
			Servent: msgGUIDs.Next(),
		},
	}
	h.node.Receive(1, hit)
	if len(h.out) != 0 {
		t.Error("unroutable hit was sent somewhere")
	}
	if h.node.Stats().DroppedNoRoute != 1 {
		t.Error("no-route counter")
	}
}

func TestRouteExpiry(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	env := query("expiring", 5, 1)
	h.node.Receive(1, env)
	h.reset()
	h.now += 11 * time.Minute // beyond the 10-minute route TTL
	hit := wire.Envelope{
		Header: wire.Header{GUID: env.Header.GUID, Type: wire.TypeQueryHit, TTL: 4, Hops: 2},
		Payload: &wire.QueryHit{
			Addr:    netip.MustParseAddr("80.2.2.2"),
			Results: []wire.HitResult{{FileIndex: 1, FileName: "x"}},
			Servent: msgGUIDs.Next(),
		},
	}
	h.node.Receive(2, hit)
	if len(h.sentTo(1)) != 0 {
		t.Error("expired route still used")
	}
}

func TestPingAnsweredWithPong(t *testing.T) {
	h := newHarness(t, true, []SharedFile{{Index: 1, Name: "a"}, {Index: 2, Name: "b"}})
	h.node.AddConn(1, false)
	ping := wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePing, TTL: 1, Hops: 0},
		Payload: &wire.Ping{},
	}
	h.node.Receive(1, ping)
	got := h.sentTo(1)
	if len(got) < 1 {
		t.Fatal("no pong reply")
	}
	pong := got[0].Payload.(*wire.Pong)
	if pong.SharedFiles != 2 || pong.Addr != netip.MustParseAddr("193.1.1.1") {
		t.Fatalf("pong = %+v", pong)
	}
	if got[0].Header.GUID != ping.Header.GUID {
		t.Error("pong must carry the ping GUID")
	}
}

func TestPongCacheServedOnPing(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	// Seed the cache with remote pongs arriving on conn 2.
	for i := 0; i < 5; i++ {
		h.node.Receive(2, wire.Envelope{
			Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePong, TTL: 3, Hops: 2},
			Payload: &wire.Pong{Addr: netip.AddrFrom4([4]byte{61, 0, 0, byte(i)}), SharedFiles: uint32(i)},
		})
	}
	h.reset()
	h.node.Receive(1, wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePing, TTL: 1, Hops: 0},
		Payload: &wire.Ping{},
	})
	got := h.sentTo(1)
	if len(got) != 4 { // own pong + 3 cached
		t.Fatalf("ping reply = %d messages, want 4", len(got))
	}
}

func TestPongRoutedBackToPingOrigin(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	ping := wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePing, TTL: 3, Hops: 1},
		Payload: &wire.Ping{},
	}
	h.node.Receive(1, ping)
	h.reset()
	pong := wire.Envelope{
		Header:  wire.Header{GUID: ping.Header.GUID, Type: wire.TypePong, TTL: 3, Hops: 1},
		Payload: &wire.Pong{Addr: netip.MustParseAddr("61.1.1.1")},
	}
	h.node.Receive(2, pong)
	if len(h.sentTo(1)) != 1 {
		t.Fatalf("pong not routed to ping origin: %v", len(h.sentTo(1)))
	}
}

func TestOriginateAndHitDelivery(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	g := h.node.Originate(&wire.Query{SearchText: "mine"}, 7)
	if len(h.out) != 2 {
		t.Fatalf("originated query sent to %d conns", len(h.out))
	}
	h.reset()
	hit := wire.Envelope{
		Header: wire.Header{GUID: g, Type: wire.TypeQueryHit, TTL: 6, Hops: 1},
		Payload: &wire.QueryHit{
			Addr:    netip.MustParseAddr("66.3.3.3"),
			Results: []wire.HitResult{{FileIndex: 5, FileName: "mine.mp3"}},
			Servent: msgGUIDs.Next(),
		},
	}
	h.node.Receive(1, hit)
	if len(h.hits) != 1 {
		t.Fatalf("local hit callback fired %d times", len(h.hits))
	}
	if len(h.out) != 0 {
		t.Error("locally delivered hit must not be forwarded")
	}
}

func TestProbeSendsSinglePing(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, false)
	g := h.node.Probe(1)
	got := h.sentTo(1)
	if len(got) != 1 || got[0].Header.Type != wire.TypePing {
		t.Fatalf("probe sent %d messages", len(got))
	}
	if got[0].Header.GUID != g {
		t.Error("probe GUID mismatch")
	}
}

func TestSendToDetachedConnDropped(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	env := query("x", 5, 1)
	h.node.Receive(1, env)
	h.node.RemoveConn(1)
	h.reset()
	// A hit routed toward the removed conn must be dropped, not sent.
	hit := wire.Envelope{
		Header: wire.Header{GUID: env.Header.GUID, Type: wire.TypeQueryHit, TTL: 4, Hops: 2},
		Payload: &wire.QueryHit{
			Addr:    netip.MustParseAddr("80.2.2.2"),
			Results: []wire.HitResult{{FileIndex: 1, FileName: "x"}},
			Servent: msgGUIDs.Next(),
		},
	}
	h.node.AddConn(2, true)
	h.node.Receive(2, hit)
	if len(h.out) != 0 {
		t.Error("message sent to detached connection")
	}
}

func TestStatsCounting(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.Receive(1, query("a", 5, 1))
	h.node.Receive(1, wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePing, TTL: 1, Hops: 0},
		Payload: &wire.Ping{},
	})
	st := h.node.Stats()
	if st.Received.Query != 1 || st.Received.Ping != 1 {
		t.Errorf("received counts = %+v", st.Received)
	}
	if st.Received.Total() != 2 {
		t.Errorf("total = %d", st.Received.Total())
	}
}

func TestRouteSweepBoundsTable(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	for i := 0; i < 1000; i++ {
		h.node.Receive(1, query("q", 2, 1))
		h.now += time.Second
	}
	// 1000 seconds on; entries older than 10 minutes must have been swept.
	if n := h.node.RouteCount(); n > 700 {
		t.Errorf("route table has %d entries; sweep not working", n)
	}
}

func TestOriginateRequiresGUIDs(t *testing.T) {
	n := New(Config{
		Now:  func() time.Duration { return 0 },
		Send: func(int, wire.Envelope) {},
	})
	n.AddConn(1, true)
	for _, f := range []func(){
		func() { n.Originate(&wire.Ping{}, 3) },
		func() { n.Probe(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic without Config.GUIDs")
				}
			}()
			f()
		}()
	}
}

func TestPongToOwnPingNotForwarded(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, false)
	g := h.node.Probe(1)
	h.reset()
	h.node.Receive(1, wire.Envelope{
		Header:  wire.Header{GUID: g, Type: wire.TypePong, TTL: 1, Hops: 1},
		Payload: &wire.Pong{Addr: netip.MustParseAddr("66.1.1.1")},
	})
	if len(h.out) != 0 {
		t.Error("pong answering our own probe must not be forwarded")
	}
}

func TestEmptyQueryTextNoHit(t *testing.T) {
	h := newHarness(t, true, []SharedFile{{Index: 1, Name: "anything"}})
	h.node.AddConn(1, true)
	h.node.Receive(1, query("", 5, 1))
	for _, e := range h.sentTo(1) {
		if e.Header.Type == wire.TypeQueryHit {
			t.Fatal("empty query must not match")
		}
	}
}

func TestByeAndPushCounted(t *testing.T) {
	h := newHarness(t, true, nil)
	h.node.AddConn(1, true)
	h.node.Receive(1, wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypeBye, TTL: 1},
		Payload: &wire.Bye{Code: 200},
	})
	h.node.Receive(1, wire.Envelope{
		Header:  wire.Header{GUID: msgGUIDs.Next(), Type: wire.TypePush, TTL: 1},
		Payload: &wire.Push{Addr: netip.MustParseAddr("66.1.1.1")},
	})
	st := h.node.Stats()
	if st.Received.Bye != 1 || st.Received.Push != 1 {
		t.Errorf("counts = %+v", st.Received)
	}
	if len(h.out) != 0 {
		t.Error("bye/push must not generate traffic in this configuration")
	}
}

func TestDefaultRandDeterministic(t *testing.T) {
	// Without Config.Rand, the node's internal generator drives leaf
	// forwarding deterministically per self GUID.
	build := func() *Node {
		return New(Config{
			Self: guid.NewSource(5, 5).Next(),
			Now:  func() time.Duration { return 0 },
			Send: func(int, wire.Envelope) {},
		})
	}
	a, b := build(), build()
	for i := 0; i < 100; i++ {
		if a.rand() != b.rand() {
			t.Fatal("internal rand must be deterministic per GUID")
		}
	}
}

func TestPassiveModeSkipsForwarding(t *testing.T) {
	h := &harness{}
	src := guid.NewSource(8, 8)
	h.node = New(Config{
		Self:    src.Next(),
		Addr:    netip.MustParseAddr("193.1.1.1"),
		Library: []SharedFile{{Index: 1, Name: "hit me"}},
		Now:     func() time.Duration { return h.now },
		Send:    func(conn int, env wire.Envelope) { h.out = append(h.out, sent{conn, env}) },
		GUIDs:   guid.NewSource(9, 9),
		Passive: true,
	})
	h.node.AddConn(1, true)
	h.node.AddConn(2, true)
	env := query("hit me", 5, 1)
	h.node.Receive(1, env)
	// No forwarding to conn 2, but the local hit still goes back on conn 1.
	if len(h.sentTo(2)) != 0 {
		t.Error("passive node forwarded a query")
	}
	hits := h.sentTo(1)
	if len(hits) != 1 || hits[0].Header.Type != wire.TypeQueryHit {
		t.Fatalf("local hit missing: %d messages", len(hits))
	}
	// Reverse routing still works for responses.
	h.reset()
	h.node.Receive(2, wire.Envelope{
		Header: wire.Header{GUID: env.Header.GUID, Type: wire.TypeQueryHit, TTL: 4, Hops: 2},
		Payload: &wire.QueryHit{
			Addr:    netip.MustParseAddr("80.2.2.2"),
			Results: []wire.HitResult{{FileIndex: 1, FileName: "x"}},
			Servent: msgGUIDs.Next(),
		},
	})
	if len(h.sentTo(1)) != 1 {
		t.Error("passive node must still route responses back")
	}
}
