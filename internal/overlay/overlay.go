// Package overlay implements a Gnutella servent's message-routing engine:
// duplicate suppression and TTL handling for flooded QUERY/PING messages,
// GUID-based reverse routing for QUERYHIT and PONG responses with the
// specification's 10-minute route expiry, pong caching, leaf/ultrapeer
// forwarding rules, and local query matching against a shared-file
// library.
//
// The engine is transport-agnostic and clock-agnostic: the embedder
// supplies a Send callback and a Now function, which lets the same code
// run under the discrete-event simulator (internal/capture), over real
// TCP connections (internal/transport, cmd/gnutellad), and inside the
// search-protocol evaluation example.
package overlay

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/guid"
	"repro/internal/wire"
)

// SharedFile is one entry of a node's shared library.
type SharedFile struct {
	Index  uint32
	Name   string
	SizeKB uint32
}

// Config parameterizes a Node.
type Config struct {
	// Self is the node's servent GUID.
	Self guid.GUID
	// Ultrapeer selects ultrapeer mode (the measurement node runs as one).
	Ultrapeer bool
	// Addr and Port identify the node in generated PONG/QUERYHIT payloads.
	Addr netip.Addr
	Port uint16
	// Library is the node's shared-file list; queries matching it produce
	// QUERYHIT responses.
	Library []SharedFile
	// RouteTTL is how long reverse routes live; the specification
	// suggests 10 minutes, which is the default when zero.
	RouteTTL time.Duration
	// LeafForwardProb approximates query-routing-protocol behavior: the
	// probability that a query is forwarded to a given leaf connection
	// ("only ... to the leaf nodes that have a high probability of
	// responding"). Defaults to 0.05.
	LeafForwardProb float64
	// Passive disables query forwarding entirely. The measurement
	// simulator uses it: its Send callback discards everything anyway,
	// and iterating a few hundred connections per received query turns
	// the simulation quadratic in scale. Reverse routes, duplicate
	// suppression and local hit serving still work.
	Passive bool
	// Now supplies the node's clock (simulated or wall).
	Now func() time.Duration
	// Send delivers an envelope to a connection. Required.
	Send func(conn int, env wire.Envelope)
	// OnMessage, when set, observes every received message before
	// processing (the measurement tap).
	OnMessage func(conn int, env wire.Envelope)
	// OnQueryHit, when set, receives hits for queries this node
	// originated.
	OnQueryHit func(env wire.Envelope, hit *wire.QueryHit)
	// GUIDs generates identifiers for originated messages. Required for
	// Originate and pong generation.
	GUIDs *guid.Source
	// Rand supplies the [0,1) variates used for probabilistic leaf
	// forwarding. Defaults to a small deterministic LCG when nil.
	Rand func() float64
}

// Stats counts the node's routing activity.
type Stats struct {
	Received       wire.MessageCountsByType
	ForwardedPing  uint64
	ForwardedQry   uint64
	RoutedPong     uint64
	RoutedHit      uint64
	DroppedDup     uint64
	DroppedTTL     uint64
	DroppedNoRoute uint64
	HitsServed     uint64
	PongsSent      uint64
}

type connState struct {
	ultrapeer bool
}

type route struct {
	conn int
	at   time.Duration
}

// Node is the routing engine. It is not safe for concurrent use: the
// simulator is single-threaded, and the TCP embedding serializes access.
type Node struct {
	cfg    Config
	conns  map[int]*connState
	routes map[guid.GUID]route
	// origin tracks GUIDs of messages this node originated, so returning
	// responses are delivered locally instead of forwarded.
	origin map[guid.GUID]time.Duration
	// pongCache holds recently seen pongs for ping replies.
	pongCache []wire.Pong
	pongNext  int
	// library index: file index → lower-cased name keywords.
	libKeywords [][]string
	stats       Stats
	lcg         uint64
	lastSweep   time.Duration
}

// New builds a node.
func New(cfg Config) *Node {
	if cfg.Send == nil {
		panic("overlay: Config.Send is required")
	}
	if cfg.Now == nil {
		panic("overlay: Config.Now is required")
	}
	if cfg.RouteTTL == 0 {
		cfg.RouteTTL = 10 * time.Minute
	}
	if cfg.LeafForwardProb == 0 {
		cfg.LeafForwardProb = 0.05
	}
	n := &Node{
		cfg:       cfg,
		conns:     make(map[int]*connState),
		routes:    make(map[guid.GUID]route),
		origin:    make(map[guid.GUID]time.Duration),
		pongCache: make([]wire.Pong, 0, 8),
		lcg:       uint64(cfg.Self[0])<<8 | uint64(cfg.Self[1]) | 0x1,
	}
	for _, f := range cfg.Library {
		n.libKeywords = append(n.libKeywords, strings.Fields(strings.ToLower(f.Name)))
	}
	return n
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// ConnCount returns the number of attached connections.
func (n *Node) ConnCount() int { return len(n.conns) }

// HasConn reports whether the connection is attached.
func (n *Node) HasConn(id int) bool {
	_, ok := n.conns[id]
	return ok
}

// AddConn attaches a connection after its handshake completes.
func (n *Node) AddConn(id int, ultrapeer bool) {
	n.conns[id] = &connState{ultrapeer: ultrapeer}
}

// RemoveConn detaches a closed connection. Routes through it expire
// lazily.
func (n *Node) RemoveConn(id int) {
	delete(n.conns, id)
}

func (n *Node) rand() float64 {
	if n.cfg.Rand != nil {
		return n.cfg.Rand()
	}
	// xorshift64*, deterministic per node.
	x := n.lcg
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	n.lcg = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// Receive processes one message arriving on a connection. The envelope's
// payload may alias a parser; the node copies whatever it retains.
func (n *Node) Receive(conn int, env wire.Envelope) {
	if n.cfg.OnMessage != nil {
		n.cfg.OnMessage(conn, env)
	}
	n.stats.Received.Add(env.Header.Type)
	n.maybeSweep()

	switch m := env.Payload.(type) {
	case *wire.Ping:
		n.handlePing(conn, env)
	case *wire.Pong:
		n.handlePong(conn, env, m)
	case *wire.Query:
		n.handleQuery(conn, env, m)
	case *wire.QueryHit:
		n.handleQueryHit(conn, env, m)
	case *wire.Bye:
		// The peer announced departure; the embedder tears the
		// connection down when the transport closes.
	case *wire.Push:
		// PUSH routing by servent GUID is out of scope for the
		// measurement study; counted and dropped.
	}
}

func (n *Node) handlePing(conn int, env wire.Envelope) {
	// Remember the reverse route so PONGs can flow back.
	n.routes[env.Header.GUID] = route{conn: conn, at: n.cfg.Now()}
	// Reply with our own pong...
	pong := &wire.Pong{
		Port:        n.cfg.Port,
		Addr:        n.cfg.Addr,
		SharedFiles: uint32(len(n.cfg.Library)),
	}
	n.send(conn, wire.Envelope{
		Header:  wire.Header{GUID: env.Header.GUID, Type: wire.TypePong, TTL: env.Header.Hops + 1},
		Payload: pong,
	})
	n.stats.PongsSent++
	// ...plus a few cached pongs, the modern replacement for ping
	// flooding.
	for i := 0; i < len(n.pongCache) && i < 3; i++ {
		p := n.pongCache[i]
		n.send(conn, wire.Envelope{
			Header:  wire.Header{GUID: env.Header.GUID, Type: wire.TypePong, TTL: env.Header.Hops + 1, Hops: 1},
			Payload: &p,
		})
		n.stats.PongsSent++
	}
}

func (n *Node) handlePong(conn int, env wire.Envelope, m *wire.Pong) {
	// Cache for future ping replies.
	cp := *m
	if len(n.pongCache) < cap(n.pongCache) {
		n.pongCache = append(n.pongCache, cp)
	} else {
		n.pongCache[n.pongNext] = cp
		n.pongNext = (n.pongNext + 1) % cap(n.pongCache)
	}
	// Route toward the ping's origin.
	if _, ours := n.origin[env.Header.GUID]; ours {
		return // response to our own ping
	}
	r, ok := n.lookupRoute(env.Header.GUID)
	if !ok || r.conn == conn {
		n.stats.DroppedNoRoute++
		return
	}
	if fwd, ok := env.Forwarded(); ok {
		n.send(r.conn, wire.Clone(fwd))
		n.stats.RoutedPong++
	} else {
		n.stats.DroppedTTL++
	}
}

func (n *Node) handleQuery(conn int, env wire.Envelope, m *wire.Query) {
	// Duplicate suppression by GUID.
	if _, dup := n.routes[env.Header.GUID]; dup {
		n.stats.DroppedDup++
		return
	}
	if _, ours := n.origin[env.Header.GUID]; ours {
		n.stats.DroppedDup++
		return
	}
	n.routes[env.Header.GUID] = route{conn: conn, at: n.cfg.Now()}

	// Serve hits from the local library.
	if hits := n.match(m); len(hits) > 0 {
		qh := &wire.QueryHit{
			Port:    n.cfg.Port,
			Addr:    n.cfg.Addr,
			Speed:   1000,
			Results: hits,
			Servent: n.cfg.Self,
		}
		n.send(conn, wire.Envelope{
			Header:  wire.Header{GUID: env.Header.GUID, Type: wire.TypeQueryHit, TTL: env.Header.Hops + 1},
			Payload: qh,
		})
		n.stats.HitsServed++
	}

	// Flood onward.
	if n.cfg.Passive {
		return
	}
	fwd, ok := env.Forwarded()
	if !ok {
		n.stats.DroppedTTL++
		return
	}
	fwd = wire.Clone(fwd)
	for id, st := range n.conns {
		if id == conn {
			continue
		}
		// Ultrapeers receive every query; leaves only those likely to
		// match (QRP approximation).
		if !st.ultrapeer && n.rand() >= n.cfg.LeafForwardProb {
			continue
		}
		n.send(id, fwd)
		n.stats.ForwardedQry++
	}
}

func (n *Node) handleQueryHit(conn int, env wire.Envelope, m *wire.QueryHit) {
	if _, ours := n.origin[env.Header.GUID]; ours {
		if n.cfg.OnQueryHit != nil {
			cp := wire.Clone(env)
			n.cfg.OnQueryHit(cp, cp.Payload.(*wire.QueryHit))
		}
		return
	}
	r, ok := n.lookupRoute(env.Header.GUID)
	if !ok || r.conn == conn {
		n.stats.DroppedNoRoute++
		return
	}
	if fwd, ok := env.Forwarded(); ok {
		n.send(r.conn, wire.Clone(fwd))
		n.stats.RoutedHit++
	} else {
		n.stats.DroppedTTL++
	}
}

// match returns library entries containing every query keyword.
func (n *Node) match(q *wire.Query) []wire.HitResult {
	if len(n.libKeywords) == 0 || q.SearchText == "" {
		return nil
	}
	want := strings.Fields(strings.ToLower(q.SearchText))
	if len(want) == 0 {
		return nil
	}
	var out []wire.HitResult
	for i, kws := range n.libKeywords {
		if containsAll(kws, want) {
			f := n.cfg.Library[i]
			out = append(out, wire.HitResult{FileIndex: f.Index, FileSize: f.SizeKB, FileName: f.Name})
			if len(out) == 64 {
				break
			}
		}
	}
	return out
}

func containsAll(have, want []string) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Originate floods a message from this node to every connection and
// registers its GUID so responses are delivered to the local callbacks.
// It returns the message GUID.
func (n *Node) Originate(m wire.Message, ttl uint8) guid.GUID {
	if n.cfg.GUIDs == nil {
		panic("overlay: Originate requires Config.GUIDs")
	}
	g := n.cfg.GUIDs.Next()
	n.origin[g] = n.cfg.Now()
	env := wire.Envelope{
		Header:  wire.Header{GUID: g, Type: m.Type(), TTL: ttl, Hops: 1},
		Payload: m,
	}
	for id := range n.conns {
		n.send(id, env)
		if m.Type() == wire.TypeQuery {
			n.stats.ForwardedQry++
		} else if m.Type() == wire.TypePing {
			n.stats.ForwardedPing++
		}
	}
	return g
}

// Probe sends a single PING on one connection — the measurement node's
// idle-liveness check.
func (n *Node) Probe(conn int) guid.GUID {
	if n.cfg.GUIDs == nil {
		panic("overlay: Probe requires Config.GUIDs")
	}
	g := n.cfg.GUIDs.Next()
	n.origin[g] = n.cfg.Now()
	n.send(conn, wire.Envelope{
		Header:  wire.Header{GUID: g, Type: wire.TypePing, TTL: 1, Hops: 0},
		Payload: &wire.Ping{},
	})
	return g
}

func (n *Node) send(conn int, env wire.Envelope) {
	if _, ok := n.conns[conn]; !ok {
		return
	}
	n.cfg.Send(conn, env)
}

func (n *Node) lookupRoute(g guid.GUID) (route, bool) {
	r, ok := n.routes[g]
	if !ok {
		return route{}, false
	}
	if n.cfg.Now()-r.at > n.cfg.RouteTTL {
		delete(n.routes, g)
		return route{}, false
	}
	if _, alive := n.conns[r.conn]; !alive {
		delete(n.routes, g)
		return route{}, false
	}
	return r, true
}

// RouteCount returns the number of live reverse-routing entries
// (post-sweep value may be smaller).
func (n *Node) RouteCount() int { return len(n.routes) }

// maybeSweep expires old routes at most once per RouteTTL/2 of simulated
// time, keeping the table bounded without a timer dependency.
func (n *Node) maybeSweep() {
	now := n.cfg.Now()
	if now-n.lastSweep < n.cfg.RouteTTL/2 {
		return
	}
	n.lastSweep = now
	for g, r := range n.routes {
		if now-r.at > n.cfg.RouteTTL {
			delete(n.routes, g)
		}
	}
	for g, at := range n.origin {
		if now-at > n.cfg.RouteTTL {
			delete(n.origin, g)
		}
	}
}
