// Package stats provides the empirical statistics the analysis pipeline
// computes from traces: empirical CDFs/CCDFs, quantiles, histograms,
// frequency rankings, correlation, and the day-by-hour binning matrices
// behind the paper's diurnal figures.
package stats

import (
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers distributional
// queries. The zero value is ready to use. Adding invalidates the sort
// lazily; queries re-sort only when needed.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample pre-seeded with the given observations.
func NewSample(xs ...float64) *Sample {
	s := &Sample{}
	s.AddAll(xs)
	return s
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Grow ensures capacity for at least n further observations, so bulk
// loaders that know their sample size up front avoid append's repeated
// reallocation.
func (s *Sample) Grow(n int) {
	if n <= 0 || cap(s.xs)-len(s.xs) >= n {
		return
	}
	xs := make([]float64, len(s.xs), len(s.xs)+n)
	copy(xs, s.xs)
	s.xs = xs
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the observations in insertion order. The caller must not
// mutate the returned slice.
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the population standard deviation, or NaN when fewer than two
// observations exist.
func (s *Sample) Std() float64 {
	if len(s.xs) < 2 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.xs)))
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// between order statistics, or NaN for an empty sample.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := p * float64(len(s.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[i]*(1-frac) + s.xs[i+1]*frac
}

// CDF returns the empirical fraction of observations ≤ x.
func (s *Sample) CDF(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return float64(sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))) / float64(len(s.xs))
}

// CCDF returns the empirical fraction of observations > x — the transform
// used in every distribution figure of the paper.
func (s *Sample) CCDF(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return 1 - s.CDF(x)
}

// Point is one (X, Y) pair of a rendered curve.
type Point struct {
	X, Y float64
}

// CCDFSeries evaluates the empirical CCDF on the given grid of x values.
func (s *Sample) CCDFSeries(grid []float64) []Point {
	pts := make([]Point, len(grid))
	for i, x := range grid {
		pts[i] = Point{X: x, Y: s.CCDF(x)}
	}
	return pts
}

// LogSpace returns n points logarithmically spaced over [lo, hi]; lo must be
// positive and n ≥ 2. It is the x-grid for the paper's log-scale CCDF plots.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: LogSpace needs 0 < lo < hi and n ≥ 2")
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Pearson computes the Pearson correlation coefficient between paired
// observations. It returns NaN when lengths differ, fewer than two pairs
// exist, or either side is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts observations into [0, n) integer-indexed bins; values
// outside the range land in the overflow/underflow counters.
type Histogram struct {
	Counts    []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{Counts: make([]int64, n)}
}

// Add counts one observation in bin i.
func (h *Histogram) Add(i int) {
	switch {
	case i < 0:
		h.Underflow++
	case i >= len(h.Counts):
		h.Overflow++
	default:
		h.Counts[i]++
	}
	h.total++
}

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns bin i's share of all observations, or 0 for an empty
// histogram.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Fractions returns all in-range bin shares.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range h.Counts {
		out[i] = h.Fraction(i)
	}
	return out
}
