package stats

import (
	"math"
	"testing"
)

func TestDayBinMatrixBasics(t *testing.T) {
	m := NewDayBinMatrix(24)
	if m.Bins() != 24 || m.Days() != 0 {
		t.Fatal("fresh matrix shape wrong")
	}
	m.Add(0, 3, 2)
	m.Add(0, 3, 1)
	m.Add(2, 3, 9)
	if m.Days() != 3 {
		t.Errorf("days = %d, want 3 (lazily grown through day 2)", m.Days())
	}
	if m.Cell(0, 3) != 3 {
		t.Errorf("cell(0,3) = %v", m.Cell(0, 3))
	}
	if m.Cell(1, 3) != 0 {
		t.Errorf("untouched day cell = %v", m.Cell(1, 3))
	}
	if m.Cell(9, 3) != 0 || m.Cell(0, 99) != 0 {
		t.Error("out-of-range cell should read 0")
	}
}

func TestDayBinMatrixPanics(t *testing.T) {
	m := NewDayBinMatrix(4)
	for _, f := range []func(){
		func() { m.Add(-1, 0, 1) },
		func() { m.Add(0, -1, 1) },
		func() { m.Add(0, 4, 1) },
		func() { NewDayBinMatrix(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMinAvgMax(t *testing.T) {
	m := NewDayBinMatrix(2)
	m.Add(0, 0, 10)
	m.Add(1, 0, 20)
	m.Add(2, 0, 30)
	// bin 1 untouched on all days → min=avg=max=0
	s := m.MinAvgMax()
	if s.Min[0] != 10 || s.Avg[0] != 20 || s.Max[0] != 30 {
		t.Errorf("bin 0 = %v/%v/%v", s.Min[0], s.Avg[0], s.Max[0])
	}
	if s.Min[1] != 0 || s.Avg[1] != 0 || s.Max[1] != 0 {
		t.Errorf("bin 1 = %v/%v/%v", s.Min[1], s.Avg[1], s.Max[1])
	}
}

func TestMinAvgMaxEmpty(t *testing.T) {
	s := NewDayBinMatrix(2).MinAvgMax()
	if !math.IsNaN(s.Avg[0]) {
		t.Error("empty matrix should summarize to NaN")
	}
}

func TestRatioMinAvgMax(t *testing.T) {
	num := NewDayBinMatrix(2)
	den := NewDayBinMatrix(2)
	// Day 0: 8 passive of 10; day 1: 9 of 10; day 2: bin untouched (den 0).
	num.Add(0, 0, 8)
	den.Add(0, 0, 10)
	num.Add(1, 0, 9)
	den.Add(1, 0, 10)
	num.Add(2, 1, 1) // numerator without denominator must be skipped
	s := RatioMinAvgMax(num, den)
	if math.Abs(s.Min[0]-0.8) > 1e-12 || math.Abs(s.Max[0]-0.9) > 1e-12 {
		t.Errorf("bin 0 min/max = %v/%v", s.Min[0], s.Max[0])
	}
	if math.Abs(s.Avg[0]-0.85) > 1e-12 {
		t.Errorf("bin 0 avg = %v", s.Avg[0])
	}
	if !math.IsNaN(s.Avg[1]) {
		t.Errorf("bin 1 avg = %v, want NaN (no valid days)", s.Avg[1])
	}
}

func TestRatioPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RatioMinAvgMax(NewDayBinMatrix(2), NewDayBinMatrix(3))
}

func TestAvgShare(t *testing.T) {
	na := NewDayBinMatrix(2)
	eu := NewDayBinMatrix(2)
	// Hour 0: NA 30, EU 10 over all days → NA share 0.75.
	na.Add(0, 0, 20)
	na.Add(1, 0, 10)
	eu.Add(0, 0, 10)
	shares := AvgShare(na, []*DayBinMatrix{na, eu})
	if math.Abs(shares[0]-0.75) > 1e-12 {
		t.Errorf("share[0] = %v, want 0.75", shares[0])
	}
	if !math.IsNaN(shares[1]) {
		t.Errorf("share[1] = %v, want NaN (no observations)", shares[1])
	}
}
