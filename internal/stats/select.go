package stats

// SelectK partially sorts xs so that xs[k] holds the element of rank k
// (0-based) under less, everything before it ranks no later and
// everything after no earlier — the classic quickselect contract, with
// median-of-three pivots and iterative narrowing, O(n) expected. less
// must be a strict weak ordering; ties among equals leave their relative
// placement unspecified. Callers wanting a deterministic k-prefix must
// therefore make less a total order (break ties explicitly).
func SelectK[T any](xs []T, k int, less func(a, b T) bool) {
	lo, hi := 0, len(xs)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		a, b, c := lo, mid, hi-1
		if less(xs[b], xs[a]) {
			a, b = b, a
		}
		if less(xs[c], xs[b]) {
			b = c
			if less(xs[b], xs[a]) {
				a, b = b, a
			}
		}
		xs[lo], xs[b] = xs[b], xs[lo]
		pivot := xs[lo]
		i, j := lo+1, hi-1
		for i <= j {
			for i <= j && less(xs[i], pivot) {
				i++
			}
			for i <= j && !less(xs[j], pivot) {
				j--
			}
			if i < j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		xs[lo], xs[j] = xs[j], xs[lo]
		switch {
		case j == k:
			return
		case j > k:
			hi = j
		default:
			lo = j + 1
		}
	}
}
