package stats

import "math"

// DayBinMatrix accumulates one value per (trace day, time-of-day bin) cell.
// It backs the paper's diurnal figures: Figure 3 (queries per 30-minute bin,
// min/avg/max over the 40 days), Figure 4 (passive fraction per hour), and
// Figure 1 (peer mix per hour). Days are added lazily as they are touched.
type DayBinMatrix struct {
	bins int
	days [][]float64
}

// NewDayBinMatrix returns a matrix with the given number of time-of-day
// bins (24 for hourly figures, 48 for half-hourly).
func NewDayBinMatrix(bins int) *DayBinMatrix {
	if bins < 1 {
		panic("stats: DayBinMatrix needs at least one bin")
	}
	return &DayBinMatrix{bins: bins}
}

// Bins returns the number of time-of-day bins.
func (m *DayBinMatrix) Bins() int { return m.bins }

// Days returns the number of days touched so far.
func (m *DayBinMatrix) Days() int { return len(m.days) }

func (m *DayBinMatrix) row(day int) []float64 {
	for day >= len(m.days) {
		m.days = append(m.days, make([]float64, m.bins))
	}
	return m.days[day]
}

// Add accumulates v into the (day, bin) cell. Negative indices panic:
// they indicate a broken caller, not bad data.
func (m *DayBinMatrix) Add(day, bin int, v float64) {
	if day < 0 || bin < 0 || bin >= m.bins {
		panic("stats: DayBinMatrix index out of range")
	}
	m.row(day)[bin] += v
}

// Cell returns the accumulated value of (day, bin); untouched days read 0.
func (m *DayBinMatrix) Cell(day, bin int) float64 {
	if day < 0 || day >= len(m.days) || bin < 0 || bin >= m.bins {
		return 0
	}
	return m.days[day][bin]
}

// BinSeries is the min/avg/max summary of one time-of-day bin across days —
// exactly the three curves of Figures 3 and 4.
type BinSeries struct {
	Min, Avg, Max []float64
}

// MinAvgMax summarizes each bin across all touched days.
func (m *DayBinMatrix) MinAvgMax() BinSeries {
	s := BinSeries{
		Min: make([]float64, m.bins),
		Avg: make([]float64, m.bins),
		Max: make([]float64, m.bins),
	}
	if len(m.days) == 0 {
		for i := 0; i < m.bins; i++ {
			s.Min[i], s.Avg[i], s.Max[i] = math.NaN(), math.NaN(), math.NaN()
		}
		return s
	}
	for b := 0; b < m.bins; b++ {
		mn, mx, sum := math.Inf(1), math.Inf(-1), 0.0
		for d := range m.days {
			v := m.days[d][b]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		s.Min[b], s.Avg[b], s.Max[b] = mn, sum/float64(len(m.days)), mx
	}
	return s
}

// RatioMinAvgMax summarizes the per-day ratio num/den for each bin across
// days, skipping (day, bin) cells whose denominator is zero. It backs
// Figure 4, where the passive fraction in an hour bin is defined only for
// days with sessions starting in that hour. Bins with no valid day are NaN.
func RatioMinAvgMax(num, den *DayBinMatrix) BinSeries {
	if num.bins != den.bins {
		panic("stats: ratio matrices must have equal bin counts")
	}
	bins := num.bins
	days := num.Days()
	if den.Days() > days {
		days = den.Days()
	}
	s := BinSeries{
		Min: make([]float64, bins),
		Avg: make([]float64, bins),
		Max: make([]float64, bins),
	}
	for b := 0; b < bins; b++ {
		mn, mx, sum := math.Inf(1), math.Inf(-1), 0.0
		n := 0
		for d := 0; d < days; d++ {
			dv := den.Cell(d, b)
			if dv == 0 {
				continue
			}
			r := num.Cell(d, b) / dv
			if r < mn {
				mn = r
			}
			if r > mx {
				mx = r
			}
			sum += r
			n++
		}
		if n == 0 {
			s.Min[b], s.Avg[b], s.Max[b] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		s.Min[b], s.Avg[b], s.Max[b] = mn, sum/float64(n), mx
	}
	return s
}

// AvgShare returns, for each bin, this matrix's average share of the total
// given by sum of all matrices — e.g. the fraction of peers per region per
// hour in Figure 1. Bins where the total is zero are NaN.
func AvgShare(part *DayBinMatrix, all []*DayBinMatrix) []float64 {
	bins := part.bins
	out := make([]float64, bins)
	for b := 0; b < bins; b++ {
		var p, total float64
		days := 0
		for _, m := range all {
			if m.Days() > days {
				days = m.Days()
			}
		}
		for d := 0; d < days; d++ {
			p += part.Cell(d, b)
			for _, m := range all {
				total += m.Cell(d, b)
			}
		}
		if total == 0 {
			out[b] = math.NaN()
			continue
		}
		out[b] = p / total
	}
	return out
}
