package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample(4, 1, 3, 2, 5)
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std(), want)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := &Sample{}
	for name, v := range map[string]float64{
		"mean": s.Mean(), "std": s.Std(), "min": s.Min(), "max": s.Max(),
		"quantile": s.Quantile(0.5), "cdf": s.CDF(1), "ccdf": s.CCDF(1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty sample = %v, want NaN", name, v)
		}
	}
}

func TestSampleQuantile(t *testing.T) {
	s := NewSample(10, 20, 30, 40, 50)
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.125, 15},
	}
	for _, c := range cases {
		if got := s.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSampleCDFAndCCDF(t *testing.T) {
	s := NewSample(1, 2, 2, 3)
	cases := []struct{ x, cdf float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.cdf)
		}
		if got := s.CCDF(c.x); math.Abs(got-(1-c.cdf)) > 1e-12 {
			t.Errorf("CCDF(%v) = %v, want %v", c.x, got, 1-c.cdf)
		}
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	s := NewSample(5, 1)
	_ = s.Min() // forces sort
	s.Add(0)
	if s.Min() != 0 {
		t.Fatal("Add after query did not re-sort")
	}
}

func TestCCDFSeries(t *testing.T) {
	s := NewSample(1, 10, 100)
	pts := s.CCDFSeries([]float64{0.5, 5, 50, 500})
	wantY := []float64{1, 2.0 / 3, 1.0 / 3, 0}
	for i, p := range pts {
		if math.Abs(p.Y-wantY[i]) > 1e-12 {
			t.Errorf("point %d: y = %v, want %v", i, p.Y, wantY[i])
		}
	}
}

func TestLogSpace(t *testing.T) {
	g := LogSpace(1, 10000, 5)
	want := []float64{1, 10, 100, 1000, 10000}
	for i := range g {
		if math.Abs(g[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("grid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
	for _, f := range []func(){
		func() { LogSpace(0, 10, 5) },
		func() { LogSpace(10, 5, 5) },
		func() { LogSpace(1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("constant side should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(3)
	for _, i := range []int{0, 1, 1, 2, -1, 5} {
		h.Add(i)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("fraction(1) = %v", got)
	}
	fr := h.Fractions()
	if len(fr) != 3 || fr[0] != h.Fraction(0) {
		t.Error("Fractions mismatch")
	}
	if h.Fraction(-1) != 0 || h.Fraction(3) != 0 {
		t.Error("out-of-range fraction should be 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

// Property: CDF is monotone and CCDF = 1 − CDF.
func TestPropertySampleCDF(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(raw...)
		if a > b {
			a, b = b, a
		}
		ca, cb := s.CDF(a), s.CDF(b)
		return ca <= cb && math.Abs(s.CCDF(a)-(1-ca)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestPropertySampleQuantile(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(raw...)
		p1 = math.Abs(math.Mod(p1, 1))
		p2 = math.Abs(math.Mod(p2, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := s.Quantile(p1), s.Quantile(p2)
		return q1 <= q2 && q1 >= s.Min() && q2 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
