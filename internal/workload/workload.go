// Package workload implements the paper's synthetic workload generator —
// the Figure 12 algorithm. It produces peer session specifications (region,
// passive/active, duration or query schedule, query strings) drawn from the
// conditional distributions of internal/model and the query-popularity
// model of internal/vocab.
//
// Two modes cover the two ways the paper's model is used:
//
//   - Arrivals: an open arrival process over simulated trace time, feeding
//     the measurement-node simulation (sessions arrive with an hourly rate
//     modulated like Figure 1/3 and are played against the overlay).
//
//   - SteadyState: the literal Figure 12 setting — N concurrent peers at a
//     fixed time of day, each replaced by a fresh peer when its session
//     ends — for evaluating new P2P system designs (see examples/searchsim).
package workload

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/vocab"
)

// Query is one user query within an active session.
type Query struct {
	// Offset is the time since session start at which the query is issued.
	Offset time.Duration
	// Text is the query string (its keyword set identifies it).
	Text string
	// PreConnect marks a query the user issued before this session was
	// established; the client software re-issues it right after
	// connecting (the behavior filter rules 4–5 catch these re-issues).
	PreConnect bool
}

// Session is a generated peer session specification.
type Session struct {
	// Start is the session's start in simulated trace time.
	Start simtime.Time
	// Region is the peer's geographic region.
	Region geo.Region
	// Addr is the peer's IPv4 address, drawn from the region's space.
	Addr netip.Addr
	// Ultrapeer reports the peer's negotiated mode.
	Ultrapeer bool
	// SharedFiles is the library size the peer reports in PONGs.
	SharedFiles int
	// Passive marks a session that issues no queries.
	Passive bool
	// Duration is the connected-session duration. For active sessions it
	// is composed per Section 4.5: time to first query + interarrivals +
	// time after last query.
	Duration time.Duration
	// Queries holds the user queries of an active session in time order;
	// empty for passive sessions.
	Queries []Query
	// Class names the scenario client class this session was assigned to;
	// empty for the base class (and for every run without a scenario).
	Class string
}

// NumQueries returns the session's user query count.
func (s *Session) NumQueries() int { return len(s.Queries) }

// End returns the session end time.
func (s *Session) End() simtime.Time { return s.Start + s.Duration }

// Config parameterizes a Generator.
type Config struct {
	// Seed makes the generated workload reproducible.
	Seed uint64
	// Scale multiplies the paper's full-scale arrival rate (≈4,544
	// sessions/hour). 1.0 reproduces the full 40-day trace volume.
	Scale float64
	// Days is the trace length in days (the paper measured 40).
	Days int
	// PreConnectQueryFraction is the probability that an active session
	// carries user queries issued before the connection was established
	// (which the client then re-issues automatically; Section 3.3 rules
	// 4–5). Those queries count toward the session's query total and the
	// popularity distribution but have no valid interarrival time.
	PreConnectQueryFraction float64
	// Scenario, when non-nil, attaches a compiled experiment scenario:
	// client-class overrides and churn transients (see Scenario). Nil is
	// contractually a no-op — the generator's output is byte-identical to
	// a scenario-free run.
	Scenario *Scenario
}

// DefaultConfig returns the paper-scale configuration at the given scale
// factor.
func DefaultConfig(seed uint64, scale float64) Config {
	return Config{
		Seed:                    seed,
		Scale:                   scale,
		Days:                    40,
		PreConnectQueryFraction: 0.25,
	}
}

// Generator produces user sessions. It is not safe for concurrent use.
type Generator struct {
	cfg     Config
	params  *model.Params
	vocab   *vocab.Vocabulary
	geoReg  *geo.Registry
	rng     *rand.Rand
	now     simtime.Time
	horizon simtime.Time
	// scenRNG is the dedicated scenario stream (class assignment and
	// overrides); nil without a scenario. Keeping it separate from rng is
	// what makes a scenario perturb only what it claims to: the base
	// draws at every arrival position are untouched.
	scenRNG *rand.Rand
	// maxMult bounds the scenario's arrival-rate multiplier (1 without
	// one), folded into the thinning envelope so recovery surges keep
	// acceptance probabilities ≤ 1.
	maxMult float64
}

// NewGenerator builds a generator over the default model parameters.
func NewGenerator(cfg Config) *Generator {
	if cfg.Days <= 0 {
		cfg.Days = 40
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &Generator{
		cfg:     cfg,
		params:  model.Default(),
		vocab:   vocab.New(cfg.Seed),
		geoReg:  geo.Default(),
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		horizon: simtime.Time(cfg.Days) * simtime.Day,
		maxMult: cfg.Scenario.MaxRateMultiplier(),
	}
	if cfg.Scenario != nil {
		g.scenRNG = newScenarioRNG(cfg.Seed)
	}
	return g
}

// Params exposes the generator's model (shared, immutable).
func (g *Generator) Params() *model.Params { return g.params }

// Vocabulary exposes the generator's query vocabulary.
func (g *Generator) Vocabulary() *vocab.Vocabulary { return g.vocab }

// Horizon returns the end of the generated trace period.
func (g *Generator) Horizon() simtime.Time { return g.horizon }

// arrivalRate returns the expected session arrivals per hour at the given
// instant. The hourly modulation follows the total-connection diurnal
// shape implied by Figure 1 (the region mix shifts; total connection volume
// wobbles ±20% around the mean with the North American evening).
func (g *Generator) arrivalRate(at simtime.Time) float64 {
	hour := simtime.HourOfDay(at)
	// NA dominates volume, so total load tracks the NA share curve,
	// normalized around its daily mean (≈0.69).
	naShare := g.params.RegionShare(geo.NorthAmerica, hour)
	shape := naShare / 0.69
	// The scenario multiplier is exactly 1.0 without churn events, so a
	// scenario-free run's acceptance draws are bit-identical to the
	// historical sampler's (multiplying by 1.0 is exact in IEEE-754).
	return model.SessionsPerHourFullScale * g.cfg.Scale * shape * g.cfg.Scenario.RateMultiplier(at)
}

// Next generates the next arriving session, advancing the generator's
// clock. It returns nil when the trace horizon is reached.
func (g *Generator) Next() *Session {
	// Thinned nonhomogeneous Poisson arrivals: draw at the maximum rate,
	// accept with probability rate(t)/maxRate. The envelope carries the
	// scenario's surge bound (1 without one) so recovery waves stay
	// correctly thinned.
	maxRate := model.SessionsPerHourFullScale * g.cfg.Scale * (0.80 / 0.69) * g.maxMult
	for {
		step := g.rng.ExpFloat64() / maxRate // hours
		g.now += simtime.Time(step * float64(time.Hour))
		if g.now >= g.horizon {
			return nil
		}
		if g.rng.Float64()*maxRate <= g.arrivalRate(g.now) {
			break
		}
	}
	return g.SessionAt(g.now)
}

// SessionAt generates one session starting at the given instant, following
// Figure 12 step by step.
func (g *Generator) SessionAt(start simtime.Time) *Session {
	rng := g.rng
	hour := simtime.HourOfDay(start)

	// (1) Select the geographical region conditioned on time of day.
	region := g.params.PickRegion(rng, hour)

	s := &Session{
		Start:       start,
		Region:      region,
		Addr:        g.geoReg.Sample(region, rng),
		Ultrapeer:   rng.Float64() < model.UltrapeerFraction,
		SharedFiles: g.params.SampleSharedFiles(rng),
	}

	// (2) Passive or active, conditioned on region (and hour).
	period := g.params.PeriodOf(region, hour)
	if rng.Float64() < g.params.PassiveFraction(region, hour) {
		// (3) Passive: connected session length from Table A.1.
		s.Passive = true
		s.Duration = secs(g.params.PassiveDuration(region, period).Sample(rng))
		return g.finishSession(s)
	}

	// (4a) Number of queries from Table A.2.
	n := g.params.SampleNumQueries(rng, region)

	// (4b) Time until first query from Table A.3.
	first := g.params.TimeToFirstQuery(region, period, n).Sample(rng)

	// (4c) Queries: interarrival times from Table A.4; query strings by
	// class and per-day rank (Table 3 + Figure 11).
	s.Queries = make([]Query, 0, n)
	offset := secs(first)
	preConnect := rng.Float64() < g.cfg.PreConnectQueryFraction
	for i := 0; i < n; i++ {
		if i > 0 {
			offset += secs(g.params.Interarrival(region, period, n).Sample(rng))
		}
		day := simtime.DayIndex(start + offset)
		if day >= g.cfg.Days {
			day = g.cfg.Days - 1
		}
		q := Query{
			Offset: offset,
			Text:   g.vocab.Sample(rng, region, day),
		}
		// Pre-connect queries: the user issued them before connecting;
		// their in-session re-issue happens right after connect, so give
		// them tiny offsets. At most the first three queries qualify.
		if preConnect && i < 3 {
			q.PreConnect = true
			q.Offset = time.Duration(i) * 500 * time.Millisecond
		}
		s.Queries = append(s.Queries, q)
	}

	// (4d) Time after last query from Table A.5.
	after := g.params.TimeAfterLastQuery(region, period, n).Sample(rng)
	last := s.Queries[len(s.Queries)-1].Offset
	s.Duration = last + secs(after)
	// User sessions last at least 64 seconds by the model's own
	// classification: everything shorter is a system-initiated quick
	// disconnect (Section 3.3 rule 3), which internal/behavior generates
	// separately. Without this floor, short compositions of first-query
	// time + interarrivals + after-last would be discarded by rule 3,
	// silently depleting the small-gap mass of every conditional measure.
	if min := 64*time.Second + time.Duration(rng.IntN(2000))*time.Millisecond; s.Duration < min {
		s.Duration = min
	}
	return g.finishSession(s)
}

// finishSession applies the scenario's client-class overlay (if any) to a
// fully generated base session. Without a scenario it is the identity —
// not even a random draw happens — preserving byte-identity with
// scenario-free runs.
func (g *Generator) finishSession(s *Session) *Session {
	sc := g.cfg.Scenario
	if sc == nil || len(sc.Classes) == 0 {
		return s
	}
	if cls := sc.pickClass(g.scenRNG); cls != nil {
		g.applyClass(s, cls)
	}
	return s
}

// SteadyState produces the literal Figure 12 evaluation workload: the
// initial population of n concurrent peers for a fixed time of day. The
// caller replaces each finished session by calling SessionAt again (or
// Replace).
func (g *Generator) SteadyState(n int, hour int) []*Session {
	start := simtime.Time(hour) * simtime.Time(time.Hour)
	out := make([]*Session, n)
	for i := range out {
		out[i] = g.SessionAt(start)
	}
	return out
}

// Replace generates the replacement for a finished session, starting the
// moment the previous one ended — the steady-state population rule of
// Figure 12.
func (g *Generator) Replace(prev *Session) *Session {
	return g.SessionAt(prev.End())
}

func secs(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}
