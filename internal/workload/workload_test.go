package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simtime"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultConfig(42, 0.001))
	b := NewGenerator(DefaultConfig(42, 0.001))
	for i := 0; i < 200; i++ {
		sa, sb := a.Next(), b.Next()
		if (sa == nil) != (sb == nil) {
			t.Fatal("stream lengths differ")
		}
		if sa == nil {
			break
		}
		if sa.Start != sb.Start || sa.Region != sb.Region || sa.Passive != sb.Passive ||
			sa.Duration != sb.Duration || len(sa.Queries) != len(sb.Queries) {
			t.Fatalf("session %d differs between identical seeds", i)
		}
	}
}

func TestArrivalsRespectHorizon(t *testing.T) {
	cfg := DefaultConfig(1, 0.0005)
	cfg.Days = 2
	g := NewGenerator(cfg)
	n := 0
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Start >= g.Horizon() {
			t.Fatalf("session starts at %v beyond horizon %v", s.Start, g.Horizon())
		}
		n++
	}
	// 0.05% of ~4544/h over 48h ≈ 109 sessions.
	if n < 50 || n > 200 {
		t.Errorf("generated %d sessions, expected ≈109", n)
	}
}

func TestArrivalVolumeMatchesScale(t *testing.T) {
	cfg := DefaultConfig(7, 0.01)
	cfg.Days = 5
	g := NewGenerator(cfg)
	n := 0
	for s := g.Next(); s != nil; s = g.Next() {
		n++
	}
	want := 4361965.0 * 0.01 * 5 / 40 // scale × days share of the trace
	if math.Abs(float64(n)-want)/want > 0.1 {
		t.Errorf("generated %d sessions, want ≈%.0f", n, want)
	}
}

func TestPassiveFractionInStream(t *testing.T) {
	cfg := DefaultConfig(3, 0.005)
	cfg.Days = 4
	g := NewGenerator(cfg)
	total, passive := 0, 0
	for s := g.Next(); s != nil; s = g.Next() {
		total++
		if s.Passive {
			passive++
			if len(s.Queries) != 0 {
				t.Fatal("passive session carries queries")
			}
		} else if len(s.Queries) == 0 {
			t.Fatal("active session without queries")
		}
	}
	frac := float64(passive) / float64(total)
	if frac < 0.78 || frac < 0.5 || frac > 0.88 {
		t.Errorf("passive fraction = %v over %d sessions, want ≈0.80–0.85", frac, total)
	}
}

func TestSessionInvariants(t *testing.T) {
	cfg := DefaultConfig(5, 0.005)
	cfg.Days = 3
	g := NewGenerator(cfg)
	reg := geo.Default()
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Duration <= 0 {
			t.Fatalf("non-positive duration %v", s.Duration)
		}
		if got := reg.Lookup(s.Addr); got != s.Region {
			t.Fatalf("address %v resolves to %v, want %v", s.Addr, got, s.Region)
		}
		if s.SharedFiles < 0 {
			t.Fatal("negative shared files")
		}
		// Queries are time-ordered and inside the session.
		for i, q := range s.Queries {
			if q.Offset < 0 || q.Offset > s.Duration {
				t.Fatalf("query offset %v outside session duration %v", q.Offset, s.Duration)
			}
			if i > 0 && !s.Queries[i].PreConnect && q.Offset < s.Queries[i-1].Offset {
				t.Fatalf("queries out of order: %v after %v", q.Offset, s.Queries[i-1].Offset)
			}
			if q.Text == "" {
				t.Fatal("empty query text")
			}
		}
	}
}

func TestPassiveDurationsAboveRuleThree(t *testing.T) {
	cfg := DefaultConfig(11, 0.003)
	cfg.Days = 3
	g := NewGenerator(cfg)
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Passive && s.Duration < 64*time.Second {
			t.Fatalf("passive session of %v would be discarded by rule 3", s.Duration)
		}
	}
}

func TestRegionMixInStream(t *testing.T) {
	cfg := DefaultConfig(13, 0.02)
	cfg.Days = 4
	g := NewGenerator(cfg)
	counts := map[geo.Region]int{}
	total := 0
	for s := g.Next(); s != nil; s = g.Next() {
		counts[s.Region]++
		total++
	}
	na := float64(counts[geo.NorthAmerica]) / float64(total)
	eu := float64(counts[geo.Europe]) / float64(total)
	as := float64(counts[geo.Asia]) / float64(total)
	if na < 0.60 || na > 0.82 {
		t.Errorf("NA share %v", na)
	}
	if eu < 0.05 || eu > 0.22 {
		t.Errorf("EU share %v", eu)
	}
	if as < 0.03 || as > 0.16 {
		t.Errorf("AS share %v", as)
	}
}

func TestQueriesPerActiveSessionOrdering(t *testing.T) {
	cfg := DefaultConfig(17, 0.03)
	cfg.Days = 5
	g := NewGenerator(cfg)
	sums := map[geo.Region]float64{}
	ns := map[geo.Region]int{}
	for s := g.Next(); s != nil; s = g.Next() {
		if !s.Passive {
			sums[s.Region] += float64(len(s.Queries))
			ns[s.Region]++
		}
	}
	eu := sums[geo.Europe] / float64(ns[geo.Europe])
	na := sums[geo.NorthAmerica] / float64(ns[geo.NorthAmerica])
	as := sums[geo.Asia] / float64(ns[geo.Asia])
	if !(eu > na && na > as) {
		t.Errorf("mean queries EU %v NA %v AS %v, want EU > NA > AS", eu, na, as)
	}
}

func TestPreConnectQueries(t *testing.T) {
	cfg := DefaultConfig(19, 0.01)
	cfg.Days = 3
	g := NewGenerator(cfg)
	withPre, active := 0, 0
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Passive {
			continue
		}
		active++
		has := false
		for i, q := range s.Queries {
			if q.PreConnect {
				has = true
				if i >= 3 {
					t.Fatal("pre-connect query beyond the first three")
				}
				if q.Offset > time.Second {
					t.Fatalf("pre-connect query at offset %v", q.Offset)
				}
			}
		}
		if has {
			withPre++
		}
	}
	frac := float64(withPre) / float64(active)
	if math.Abs(frac-cfg.PreConnectQueryFraction) > 0.05 {
		t.Errorf("pre-connect fraction = %v, want ≈%v", frac, cfg.PreConnectQueryFraction)
	}
}

func TestSteadyState(t *testing.T) {
	g := NewGenerator(DefaultConfig(23, 1))
	peers := g.SteadyState(50, 12)
	if len(peers) != 50 {
		t.Fatalf("got %d peers", len(peers))
	}
	for _, s := range peers {
		if simtime.HourOfDay(s.Start) != 12 {
			t.Fatalf("steady-state session at hour %d", simtime.HourOfDay(s.Start))
		}
	}
	next := g.Replace(peers[0])
	if next.Start != peers[0].End() {
		t.Errorf("replacement starts at %v, want %v", next.Start, peers[0].End())
	}
}

func TestSessionAccessors(t *testing.T) {
	s := &Session{Start: simtime.At(0, 1, 0, 0), Duration: time.Hour,
		Queries: []Query{{Offset: time.Minute, Text: "x"}}}
	if s.NumQueries() != 1 {
		t.Error("NumQueries")
	}
	if s.End() != simtime.At(0, 2, 0, 0) {
		t.Error("End")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := NewGenerator(Config{Seed: 1})
	if g.cfg.Days != 40 || g.cfg.Scale != 1 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
	if g.Params() == nil || g.Vocabulary() == nil {
		t.Error("accessors return nil")
	}
}
