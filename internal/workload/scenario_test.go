package workload

import (
	"testing"
	"time"
)

// TestScenarioNilAndEmptyAreNoOps: attaching an empty scenario must not
// change a single generated session — the same invariance the paper40d
// preset's byte-identity rests on.
func TestScenarioNilAndEmptyAreNoOps(t *testing.T) {
	base := DefaultConfig(7, 0.01)
	base.Days = 1
	with := base
	with.Scenario = &Scenario{}

	ga, gb := NewGenerator(base), NewGenerator(with)
	n := 0
	for {
		a, b := ga.Next(), gb.Next()
		if (a == nil) != (b == nil) {
			t.Fatalf("session %d: one stream ended early", n)
		}
		if a == nil {
			break
		}
		if a.Start != b.Start || a.Region != b.Region || a.Duration != b.Duration ||
			a.Passive != b.Passive || len(a.Queries) != len(b.Queries) || a.Class != b.Class {
			t.Fatalf("session %d differs with empty scenario: %+v vs %+v", n, a, b)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no sessions generated")
	}
}

// TestScenarioClassAssignment: shares land near their targets, class
// labels are carried, and injection replaces every query text.
func TestScenarioClassAssignment(t *testing.T) {
	inject := []string{"planted content alpha", "planted content beta"}
	cfg := DefaultConfig(11, 0.05)
	cfg.Days = 1
	cfg.Scenario = &Scenario{Classes: []ClientClass{
		{Name: "polluter", Share: 0.2, QueryScale: 3, Inject: inject},
		{Name: "lurker", Share: 0.1, DurationScale: 2},
	}}
	injected := map[string]bool{}
	for _, s := range inject {
		injected[s] = true
	}

	gen := NewGenerator(cfg)
	counts := map[string]int{}
	total := 0
	for s := gen.Next(); s != nil; s = gen.Next() {
		total++
		counts[s.Class]++
		if s.Class == "polluter" {
			for _, q := range s.Queries {
				if !injected[q.Text] {
					t.Fatalf("polluter query text %q not from inject list", q.Text)
				}
			}
		}
	}
	if total < 500 {
		t.Fatalf("only %d sessions; scale too small for share assertions", total)
	}
	for name, want := range map[string]float64{"polluter": 0.2, "lurker": 0.1} {
		got := float64(counts[name]) / float64(total)
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("class %s share = %.3f, want ≈ %.2f", name, got, want)
		}
	}
	if counts[""] == 0 {
		t.Error("no base-class sessions survived")
	}
}

// TestScenarioQueryScale: a query-scaled class carries proportionally more
// queries than the base class, and the stream stays time-ordered.
func TestScenarioQueryScale(t *testing.T) {
	cfg := DefaultConfig(13, 0.05)
	cfg.Days = 1
	cfg.Scenario = &Scenario{Classes: []ClientClass{{Name: "chatty", Share: 0.3, QueryScale: 4}}}
	gen := NewGenerator(cfg)
	var baseQ, baseN, chattyQ, chattyN int
	for s := gen.Next(); s != nil; s = gen.Next() {
		if s.Passive {
			continue
		}
		for i := 1; i < len(s.Queries); i++ {
			if s.Queries[i].Offset < s.Queries[i-1].Offset {
				t.Fatalf("class %q queries out of order", s.Class)
			}
		}
		if s.Class == "chatty" {
			chattyQ += len(s.Queries)
			chattyN++
		} else {
			baseQ += len(s.Queries)
			baseN++
		}
	}
	if baseN == 0 || chattyN == 0 {
		t.Fatal("missing class populations")
	}
	baseMean := float64(baseQ) / float64(baseN)
	chattyMean := float64(chattyQ) / float64(chattyN)
	if chattyMean < 2.5*baseMean {
		t.Errorf("chatty mean %.2f queries/session vs base %.2f; want ≥ 2.5×", chattyMean, baseMean)
	}
}

// TestScenarioChurnRateMultiplier pins the piecewise shape: suppression
// during the outage, a decaying surge through recovery, 1 elsewhere.
func TestScenarioChurnRateMultiplier(t *testing.T) {
	sc := &Scenario{Churn: []ChurnEvent{{
		At:       10 * time.Hour,
		Fraction: 0.6,
		Outage:   time.Hour,
		Recovery: 2 * time.Hour,
	}}}
	approx := func(got, want float64) bool { d := got - want; return d < 1e-9 && d > -1e-9 }
	if m := sc.RateMultiplier(9 * time.Hour); !approx(m, 1) {
		t.Errorf("before churn: %v", m)
	}
	if m := sc.RateMultiplier(10*time.Hour + 30*time.Minute); !approx(m, 0.4) {
		t.Errorf("during outage: %v, want 0.4", m)
	}
	if m := sc.RateMultiplier(11 * time.Hour); !approx(m, 1.6) {
		t.Errorf("at recovery start: %v, want surge 1.6", m)
	}
	if m := sc.RateMultiplier(12 * time.Hour); !approx(m, 1.3) {
		t.Errorf("mid recovery: %v, want 1.3", m)
	}
	if m := sc.RateMultiplier(13*time.Hour + time.Minute); !approx(m, 1) {
		t.Errorf("after recovery: %v", m)
	}
	if m := sc.MaxRateMultiplier(); !approx(m, 1.6) {
		t.Errorf("max multiplier: %v, want 1.6", m)
	}
}

// TestScenarioChurnSuppressesArrivals: the arrival stream itself must
// show the outage dip — this is the observable the churn_outage_drop
// headline metric gates in CI.
func TestScenarioChurnSuppressesArrivals(t *testing.T) {
	cfg := DefaultConfig(17, 0.1)
	cfg.Days = 1
	cfg.Scenario = &Scenario{Churn: []ChurnEvent{{
		At:       8 * time.Hour,
		Fraction: 0.9,
		Outage:   4 * time.Hour,
		Recovery: 2 * time.Hour,
	}}}
	gen := NewGenerator(cfg)
	var pre, during int
	for s := gen.Next(); s != nil; s = gen.Next() {
		switch {
		case s.Start >= 4*time.Hour && s.Start < 8*time.Hour:
			pre++
		case s.Start >= 8*time.Hour && s.Start < 12*time.Hour:
			during++
		}
	}
	if pre < 100 {
		t.Fatalf("pre-churn window too thin (%d arrivals)", pre)
	}
	ratio := float64(during) / float64(pre)
	if ratio > 0.35 {
		t.Errorf("outage arrivals at %.2f of pre-churn rate; want ≤ 0.35 under 0.9 suppression", ratio)
	}
}
