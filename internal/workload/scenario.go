package workload

import (
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/simtime"
)

// Scenario is the compiled runtime form of a declarative experiment spec
// (internal/scenario): per-client-class workload overrides plus a timeline
// of churn transients, attached to Config.Scenario. A nil Scenario — the
// zero configuration, and what every preset-free default run carries — is
// contractually a no-op: the generator consumes exactly the same random
// streams and produces exactly the same sessions as before the field
// existed (the paper40d byte-identity test pins this).
//
// All scenario-specific randomness is drawn from dedicated PCG streams
// (class assignment, churn truncation), never from the base generator's,
// so attaching a scenario perturbs only what it claims to: the base
// session drawn at a given arrival position is the same session the
// unmodified generator would draw there.
type Scenario struct {
	// Classes partitions arrivals into named client classes by share;
	// arrivals beyond the summed shares stay in the unnamed base class.
	Classes []ClientClass
	// Churn is the timeline of mass-disconnect/recovery transients, in
	// event order.
	Churn []ChurnEvent
}

// ClientClass describes one client population's deviation from the
// paper-calibrated base behavior.
type ClientClass struct {
	// Name labels the class; it is carried on Session.Class (and the
	// workloadgen JSONL class column).
	Name string
	// Share is the fraction of arrivals assigned to this class.
	Share float64
	// DurationScale multiplies the session duration (0 means 1.0). For
	// active sessions the duration never shrinks below the last query
	// offset.
	DurationScale float64
	// QueryScale scales an active session's query count (0 means 1.0):
	// above 1 adds uniformly placed extra queries, below 1 thins the
	// stream (always keeping at least one query).
	QueryScale float64
	// Inject, when non-empty, is the class's own query vocabulary — the
	// content-injection ("polluter") knob: every query text, base and
	// extra, is drawn uniformly from this list, so the injected strings'
	// share of recorded traffic is directly measurable downstream.
	Inject []string
}

// scale resolves a multiplicative knob's zero value to 1.
func scaleOr1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// Automated reports whether the class models automated (non-user)
// clients. Content-injection classes are automated by definition: the
// behavior layer exempts them from the user quick-disconnect draw, so a
// polluter session always lives long enough to emit its payload.
func (c *ClientClass) Automated() bool { return len(c.Inject) > 0 }

// ChurnEvent is one intervention transient à la Altman et al.'s "measures
// against P2P networks": at time At a Fraction of the connected population
// is disconnected at once, new arrivals are suppressed for Outage, and the
// disconnected users reconnect as a surge decaying over Recovery.
type ChurnEvent struct {
	// At is the mass-disconnect instant in trace time.
	At simtime.Time
	// Fraction is the share of spanning sessions truncated at At, and the
	// arrival suppression factor during the outage window.
	Fraction float64
	// Outage is how long new arrivals stay suppressed after At.
	Outage simtime.Time
	// Recovery is the reconnection-wave length: the arrival rate starts at
	// the surge multiplier when the outage lifts and decays linearly back
	// to 1 over this window.
	Recovery simtime.Time
	// Surge is the peak arrival-rate multiplier at the start of recovery;
	// 0 means 1 + Fraction (the disconnected population coming back on top
	// of the base rate).
	Surge float64
}

// surge resolves the event's peak recovery multiplier.
func (e *ChurnEvent) surge() float64 {
	if e.Surge > 0 {
		return e.Surge
	}
	return 1 + e.Fraction
}

// RateMultiplier returns the scenario's arrival-rate factor at the given
// instant: 1 outside every churn window, 1−Fraction during an outage, and
// the decaying reconnection surge during recovery. Overlapping events
// compose multiplicatively.
func (sc *Scenario) RateMultiplier(at simtime.Time) float64 {
	if sc == nil {
		return 1
	}
	m := 1.0
	for i := range sc.Churn {
		e := &sc.Churn[i]
		outageEnd := e.At + e.Outage
		switch {
		case at >= e.At && at < outageEnd:
			m *= 1 - e.Fraction
		case at >= outageEnd && e.Recovery > 0 && at < outageEnd+e.Recovery:
			x := float64(at-outageEnd) / float64(e.Recovery)
			m *= e.surge()*(1-x) + x
		}
	}
	return m
}

// MaxRateMultiplier bounds RateMultiplier over all instants — the factor
// the thinned-Poisson arrival sampler's envelope rate must carry so that
// acceptance probabilities stay ≤ 1 through every recovery surge.
func (sc *Scenario) MaxRateMultiplier() float64 {
	if sc == nil {
		return 1
	}
	m := 1.0
	for i := range sc.Churn {
		if s := sc.Churn[i].surge(); s > 1 {
			m *= s
		}
	}
	return m
}

// classRNGSalt salts the scenario's class-assignment stream.
const classRNGSalt = 0x5ce7a7105

// newScenarioRNG builds the dedicated class/override random stream.
func newScenarioRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, classRNGSalt))
}

// pickClass assigns an arrival to a class by cumulative share, or nil for
// the base class. Exactly one draw per call, so the assignment stream is
// positional: arrival k gets the same class in every execution mode.
func (sc *Scenario) pickClass(rng *rand.Rand) *ClientClass {
	u := rng.Float64()
	acc := 0.0
	for i := range sc.Classes {
		acc += sc.Classes[i].Share
		if u < acc {
			return &sc.Classes[i]
		}
	}
	return nil
}

// applyClass rewrites a freshly generated base session according to its
// class: label, query-text injection, query-count scaling, duration
// scaling. All randomness comes from the dedicated scenario stream.
func (g *Generator) applyClass(s *Session, cls *ClientClass) {
	rng := g.scenRNG
	s.Class = cls.Name

	inject := func() string {
		return cls.Inject[rng.IntN(len(cls.Inject))]
	}
	if len(cls.Inject) > 0 {
		for i := range s.Queries {
			s.Queries[i].Text = inject()
		}
	}

	if qs := scaleOr1(cls.QueryScale); qs != 1 && !s.Passive && len(s.Queries) > 0 {
		if qs > 1 {
			extra := int(math.Round((qs - 1) * float64(len(s.Queries))))
			day := simtime.DayIndex(s.Start)
			if day >= g.cfg.Days {
				day = g.cfg.Days - 1
			}
			for i := 0; i < extra; i++ {
				q := Query{Offset: time.Duration(rng.Float64() * float64(s.Duration))}
				if len(cls.Inject) > 0 {
					q.Text = inject()
				} else {
					q.Text = g.vocab.Sample(rng, s.Region, day)
				}
				s.Queries = append(s.Queries, q)
			}
			sortQueriesByOffset(s.Queries)
		} else {
			kept := s.Queries[:0]
			for i := range s.Queries {
				if len(kept) == 0 && i == len(s.Queries)-1 {
					kept = append(kept, s.Queries[i]) // never thin to zero
					continue
				}
				if rng.Float64() < qs {
					kept = append(kept, s.Queries[i])
				}
			}
			s.Queries = kept
		}
	}

	if ds := scaleOr1(cls.DurationScale); ds != 1 {
		s.Duration = time.Duration(float64(s.Duration) * ds)
		if n := len(s.Queries); n > 0 {
			if floor := s.Queries[n-1].Offset + time.Second; s.Duration < floor {
				s.Duration = floor
			}
		}
		if s.Duration < time.Second {
			s.Duration = time.Second
		}
	}
}

// sortQueriesByOffset restores time order after extra-query insertion,
// stably so equal offsets keep generation order (determinism).
func sortQueriesByOffset(qs []Query) {
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Offset < qs[j].Offset })
}

// ClassByName returns the named class, or nil.
func (sc *Scenario) ClassByName(name string) *ClientClass {
	if sc == nil || name == "" {
		return nil
	}
	for i := range sc.Classes {
		if sc.Classes[i].Name == name {
			return &sc.Classes[i]
		}
	}
	return nil
}
