package guid

import (
	"math"
	"testing"
)

func TestShardStable(t *testing.T) {
	src := NewSource(1, 2)
	for i := 0; i < 100; i++ {
		g := src.Next()
		for _, n := range []int{1, 2, 7, 32} {
			a, b := g.Shard(n), g.Shard(n)
			if a != b {
				t.Fatalf("Shard(%d) not deterministic: %d vs %d", n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("Shard(%d) = %d out of range", n, a)
			}
		}
		if g.Shard(0) != 0 || g.Shard(-3) != 0 || g.Shard(1) != 0 {
			t.Fatal("degenerate bucket counts must map to 0")
		}
	}
}

func TestShardBalance(t *testing.T) {
	// The jump hash must spread GUIDs near-uniformly: with 100k keys over
	// 16 buckets each bucket expects 6250 ± a few hundred.
	const keys, buckets = 100000, 16
	src := NewSource(42, 0x600d)
	counts := make([]int, buckets)
	for i := 0; i < keys; i++ {
		counts[src.Next().Shard(buckets)]++
	}
	want := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.10 {
			t.Errorf("bucket %d holds %d keys, want ≈%.0f", b, c, want)
		}
	}
}

func TestShardConsistency(t *testing.T) {
	// Growing the fleet from n to n+1 nodes must move only ≈1/(n+1) of the
	// sessions, and every moved key must land on the new node n.
	const keys = 50000
	for _, n := range []int{1, 4, 9} {
		src := NewSource(7, uint64(n))
		moved := 0
		for i := 0; i < keys; i++ {
			g := src.Next()
			before, after := g.Shard(n), g.Shard(n+1)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("n=%d: key moved %d→%d, not to the new bucket", n, before, after)
				}
			}
		}
		frac := float64(moved) / keys
		want := 1 / float64(n+1)
		if math.Abs(frac-want)/want > 0.15 {
			t.Errorf("n=%d→%d: moved fraction %.4f, want ≈%.4f", n, n+1, frac, want)
		}
	}
}

func TestUint64UsesEntropyBytes(t *testing.T) {
	var a, b GUID
	a[0], b[0] = 1, 2
	if a.Uint64() == b.Uint64() {
		t.Error("byte 0 must affect the fold")
	}
	a, b = GUID{}, GUID{}
	a[9], b[9] = 1, 2
	if a.Uint64() == b.Uint64() {
		t.Error("byte 9 must affect the fold")
	}
	// Marker bytes are constant by convention; the fold ignores them so
	// marked and unmarked forms of the same entropy agree.
	a, b = GUID{}, GUID{}
	a[8], b[8] = 0xFF, 0x00
	a[15], b[15] = 0x00, 0x01
	if a.Uint64() != b.Uint64() {
		t.Error("marker bytes 8 and 15 must not affect the fold")
	}
}
