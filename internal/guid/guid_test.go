package guid

import (
	"testing"
	"testing/quick"
)

func TestNilGUID(t *testing.T) {
	var g GUID
	if !g.IsNil() {
		t.Fatal("zero GUID should be nil")
	}
	if Nil != g {
		t.Fatal("Nil should equal the zero GUID")
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(1, 2)
	b := NewSource(1, 2)
	for i := 0; i < 100; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("iteration %d: %s != %s", i, ga, gb)
		}
	}
}

func TestSourceDistinctSeeds(t *testing.T) {
	a := NewSource(1, 2).Next()
	b := NewSource(3, 4).Next()
	if a == b {
		t.Fatalf("different seeds produced identical GUID %s", a)
	}
}

func TestNextNeverNilAndMarked(t *testing.T) {
	s := NewSource(7, 7)
	for i := 0; i < 1000; i++ {
		g := s.Next()
		if g.IsNil() {
			t.Fatal("Next returned nil GUID")
		}
		if !g.Marker() {
			t.Fatalf("GUID %s missing v0.6 marker bytes", g)
		}
	}
}

func TestUniqueness(t *testing.T) {
	s := NewSource(11, 13)
	seen := make(map[GUID]bool, 10000)
	for i := 0; i < 10000; i++ {
		g := s.Next()
		if seen[g] {
			t.Fatalf("duplicate GUID after %d draws: %s", i, g)
		}
		seen[g] = true
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s := NewSource(5, 9)
	for i := 0; i < 50; i++ {
		g := s.Next()
		got, err := Parse(g.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", g.String(), err)
		}
		if got != g {
			t.Fatalf("round trip mismatch: %s != %s", got, g)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"abc",
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", // bad hex
		"00112233445566778899aabbccddee",   // 30 chars
		"00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff", // 64 chars
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestFromBytes(t *testing.T) {
	b := make([]byte, Size)
	for i := range b {
		b[i] = byte(i)
	}
	g, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if g[i] != byte(i) {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if _, err := FromBytes(b[:10]); err == nil {
		t.Fatal("short slice should fail")
	}
	// FromBytes must copy: mutating the source must not change the GUID.
	b[0] = 0xEE
	if g[0] == 0xEE {
		t.Fatal("FromBytes aliased the input slice")
	}
}

func TestBytesCopies(t *testing.T) {
	g := NewSource(2, 3).Next()
	b := g.Bytes()
	b[0] ^= 0xFF
	if g[0] == b[0] {
		t.Fatal("Bytes must return a copy")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw [Size]byte) bool {
		g := GUID(raw)
		got, err := Parse(g.String())
		return err == nil && got == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFromBytesRoundTrip(t *testing.T) {
	f := func(raw [Size]byte) bool {
		g, err := FromBytes(raw[:])
		return err == nil && g == GUID(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
