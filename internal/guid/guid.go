// Package guid implements the 16-byte globally unique identifiers used by
// the Gnutella protocol to tag messages and servents.
//
// Gnutella GUIDs are not RFC 4122 UUIDs: by convention (GnutellaDevForum,
// "Gnutella 0.6"), byte 8 is 0xFF to mark a "new" GUID and byte 15 is 0x00,
// reserved for future use. The remaining 14 bytes carry entropy. GUIDs are
// comparable and usable as map keys, which the overlay routing tables rely
// on.
package guid

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
)

// Size is the wire size of a GUID in bytes.
const Size = 16

// GUID is a Gnutella global unique identifier. The zero value is the nil
// GUID, which is never produced by a Source and can be used as a sentinel.
type GUID [Size]byte

// Nil is the zero GUID.
var Nil GUID

// ErrBadLength reports a byte slice of the wrong size passed to FromBytes.
var ErrBadLength = errors.New("guid: not 16 bytes")

// ErrBadEncoding reports a malformed hexadecimal string passed to Parse.
var ErrBadEncoding = errors.New("guid: invalid hex encoding")

// IsNil reports whether g is the zero GUID.
func (g GUID) IsNil() bool { return g == Nil }

// String returns the canonical lower-case hexadecimal form, 32 characters
// with no separators, matching what Gnutella developer tools print.
func (g GUID) String() string {
	return hex.EncodeToString(g[:])
}

// Bytes returns a copy of the GUID as a fresh 16-byte slice.
func (g GUID) Bytes() []byte {
	b := make([]byte, Size)
	copy(b, g[:])
	return b
}

// Marker reports whether the GUID carries the modern-servent markers
// (byte 8 == 0xFF, byte 15 == 0x00) described in the v0.6 specification.
func (g GUID) Marker() bool {
	return g[8] == 0xFF && g[15] == 0x00
}

// FromBytes converts a 16-byte slice into a GUID.
func FromBytes(b []byte) (GUID, error) {
	var g GUID
	if len(b) != Size {
		return Nil, fmt.Errorf("%w: got %d", ErrBadLength, len(b))
	}
	copy(g[:], b)
	return g, nil
}

// Parse decodes the 32-character hexadecimal form produced by String.
func Parse(s string) (GUID, error) {
	if len(s) != Size*2 {
		return Nil, fmt.Errorf("%w: got %d characters", ErrBadEncoding, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	return FromBytes(b)
}

// Uint64 folds the GUID's 14 entropy bytes into one word (the marker
// bytes 8 and 15 are constant by convention and carry no entropy). It is
// the hash key of Shard.
func (g GUID) Uint64() uint64 {
	var a, b uint64
	for i := 0; i < 8; i++ {
		a |= uint64(g[i]) << (8 * i)
	}
	for i := 9; i < 15; i++ {
		b |= uint64(g[i]) << (8 * (i - 9))
	}
	// SplitMix64-style finalization so low-entropy GUIDs still spread.
	x := a ^ (b * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shard maps the GUID onto one of n buckets with the jump consistent hash
// (Lamping & Veach, "A Fast, Minimal Memory, Consistent Hash Algorithm").
// The assignment is consistent: growing n from k to k+1 moves only ≈1/(k+1)
// of the keys, so a measurement fleet can add vantage nodes without
// reshuffling which node observes which session. n ≤ 1 always returns 0.
func (g GUID) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	key := g.Uint64()
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Source generates GUIDs from a deterministic random stream. It is not safe
// for concurrent use; give each goroutine its own Source.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded with the two given words. Equal seeds
// yield identical GUID sequences, which the simulator relies on for
// reproducible traces.
func NewSource(seed1, seed2 uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Next returns a fresh GUID with the v0.6 marker bytes set.
func (s *Source) Next() GUID {
	var g GUID
	hi, lo := s.rng.Uint64(), s.rng.Uint64()
	for i := 0; i < 8; i++ {
		g[i] = byte(hi >> (8 * i))
		g[8+i] = byte(lo >> (8 * i))
	}
	g[8] = 0xFF
	g[15] = 0x00
	if g == Nil { // astronomically unlikely, but keep the nil sentinel safe
		g[0] = 1
	}
	return g
}
