// Package model encodes the paper's published workload characterization as
// a generative model: the geographic mix by time of day (Figure 1), the
// passive-peer fractions (Figure 4), the conditional session distributions
// (Tables A.1–A.5), the query-class mix (Table 3), and the per-day query
// popularity models (Figure 11). The simulation generates user behavior
// from this model; the analysis pipeline must then recover it from the
// filtered trace, closing the reproduction loop.
//
// Where the paper publishes parameters only for North America, the
// European and Asian analogues are inferred from the regional anchor
// points quoted in the prose and figures (each inferred constant cites its
// anchor). Where mixture body weights are omitted, they are calibrated so
// that the mixture CDF passes through the quoted anchors; unit tests
// assert those anchors.
package model

import (
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/dist"
	"repro/internal/geo"
)

// Period classifies an hour as peak or off-peak for a region. The paper
// conditions A.1, A.3, A.4 and A.5 on this.
type Period int

// The two day-period classes.
const (
	Peak Period = iota
	OffPeak
)

func (p Period) String() string {
	if p == Peak {
		return "peak"
	}
	return "off-peak"
}

// KeyPeriods are the four one-hour windows (start hour, measurement-node
// time) the paper identifies in Figure 3 and uses throughout Figures 5–9:
// 03:00–04:00 (NA peak / EU sink), 11:00–12:00 (EU peak / NA sink),
// 13:00–14:00 (EU+Asia peak / NA sink), 19:00–20:00 (joint NA+EU peak).
var KeyPeriods = [4]int{3, 11, 13, 19}

// regionMix is the fraction of connected peers per region for each
// measurement-node hour — the curves of Figure 1. Anchors from the paper:
// 75/15/5 at 00:00, 80/5/5 at 03:00, 60/20/15 at 12:00 (NA/EU/Asia); EU
// peaks near 20% from noon to midnight and bottoms near 5–6% in the early
// morning; Asia peaks near 13–15% around 12:00–13:00 and bottoms near 4%
// late evening; the remainder is Other/unknown (5–13%).
var regionMix = [24][4]float64{
	// NA, EU, Asia, Other — rows sum to 1.
	{0.75, 0.15, 0.05, 0.05}, // 00
	{0.77, 0.13, 0.05, 0.05}, // 01
	{0.79, 0.11, 0.05, 0.05}, // 02
	{0.80, 0.05, 0.05, 0.10}, // 03
	{0.78, 0.06, 0.06, 0.10}, // 04
	{0.76, 0.06, 0.07, 0.11}, // 05
	{0.72, 0.06, 0.09, 0.13}, // 06
	{0.68, 0.08, 0.11, 0.13}, // 07
	{0.65, 0.10, 0.12, 0.13}, // 08
	{0.63, 0.12, 0.13, 0.12}, // 09
	{0.62, 0.14, 0.13, 0.11}, // 10
	{0.61, 0.17, 0.13, 0.09}, // 11
	{0.60, 0.20, 0.15, 0.05}, // 12
	{0.60, 0.20, 0.13, 0.07}, // 13
	{0.61, 0.20, 0.12, 0.07}, // 14
	{0.62, 0.20, 0.11, 0.07}, // 15
	{0.64, 0.20, 0.09, 0.07}, // 16
	{0.66, 0.19, 0.08, 0.07}, // 17
	{0.68, 0.19, 0.07, 0.06}, // 18
	{0.70, 0.18, 0.06, 0.06}, // 19
	{0.71, 0.18, 0.05, 0.06}, // 20
	{0.72, 0.17, 0.04, 0.07}, // 21
	{0.73, 0.16, 0.04, 0.07}, // 22
	{0.74, 0.16, 0.04, 0.06}, // 23
}

// peakHours marks, per region, the measurement-node hours in which that
// region's query load is high (Figure 3): North America peaks in its
// evening (19:00–04:59 node time), Europe from late morning to midnight,
// Asia in its evening block (11:00–16:59 node time).
var peakHours = map[geo.Region][24]bool{
	geo.NorthAmerica: hoursIn(19, 20, 21, 22, 23, 0, 1, 2, 3, 4),
	geo.Europe:       hoursIn(11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23),
	geo.Asia:         hoursIn(11, 12, 13, 14, 15, 16),
	geo.Other:        hoursIn(11, 12, 13, 14, 15, 16, 17, 18, 19, 20),
}

func hoursIn(hs ...int) [24]bool {
	var out [24]bool
	for _, h := range hs {
		out[h] = true
	}
	return out
}

// passiveBase is the mean fraction of connected sessions that issue no
// queries, per region (Figure 4): 80–85% NA, 75–80% EU, 80–90% Asia.
var passiveBase = map[geo.Region]float64{
	geo.NorthAmerica: 0.825,
	geo.Europe:       0.775,
	geo.Asia:         0.85,
	geo.Other:        0.82,
}

// QueryBucketA3 classifies a session's query count for the Table A.3
// conditioning: <3, =3, >3.
func QueryBucketA3(n int) int {
	switch {
	case n < 3:
		return 0
	case n == 3:
		return 1
	default:
		return 2
	}
}

// QueryBucketA5 classifies a session's query count for the Table A.5
// conditioning: 1, 2–7, >7.
func QueryBucketA5(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 7:
		return 1
	default:
		return 2
	}
}

// QueryBucketIAT classifies a session's query count for the European
// interarrival conditioning of Figure 8(b): =2, 3–7, >7. (Sessions with a
// single query have no interarrival at all.)
func QueryBucketIAT(n int) int {
	switch {
	case n <= 2:
		return 0
	case n <= 7:
		return 1
	default:
		return 2
	}
}

// Params is the full generative model. Build it once with Default (or a
// variant) and share it: it is immutable and safe for concurrent use.
type Params struct {
	// passiveDuration[region][period]: Table A.1 (+ inferred EU/Asia).
	passiveDuration map[geo.Region][2]dist.Dist
	// numQueries[region]: Table A.2 lognormals over a continuous variate,
	// discretized by SampleNumQueries.
	numQueries map[geo.Region]dist.Lognormal
	// firstQuery[region][period][bucketA3]: Table A.3 (+ inferred).
	firstQuery map[geo.Region][2][3]dist.Dist
	// interarrival[region][period][bucketIAT]: Table A.4; only Europe
	// varies by bucket (Figure 8(b)).
	interarrival map[geo.Region][2][3]dist.Dist
	// afterLast[region][period][bucketA5]: Table A.5 (+ inferred).
	afterLast map[geo.Region][2][3]dist.Dist
	// sharedFiles is the library-size model behind Figure 2.
	sharedFiles dist.Dist
}

// Default returns the paper-parameterized model.
func Default() *Params {
	p := &Params{
		passiveDuration: make(map[geo.Region][2]dist.Dist),
		numQueries:      make(map[geo.Region]dist.Lognormal),
		firstQuery:      make(map[geo.Region][2][3]dist.Dist),
		interarrival:    make(map[geo.Region][2][3]dist.Dist),
		afterLast:       make(map[geo.Region][2][3]dist.Dist),
	}

	// ---- Table A.1: passive connected-session duration (seconds). ----
	// Body window is [64 s, 120 s]: durations below 64 s were filtered by
	// rule 3, and the paper describes the body as the 1–2 minute mode.
	naBody := dist.Lognormal{Sigma: 2.502, Mu: 2.108}
	p.passiveDuration[geo.NorthAmerica] = [2]dist.Dist{
		Peak:    dist.BodyTail(naBody, 64, 120, 0.75, dist.Lognormal{Sigma: 2.749, Mu: 6.397}),
		OffPeak: dist.BodyTail(dist.Lognormal{Sigma: 2.383, Mu: 2.201}, 64, 120, 0.55, dist.Lognormal{Sigma: 2.848, Mu: 6.817}),
	}
	// Europe (inferred): Figure 5(a) — only 55% under 2 minutes, 35%
	// intermediate, 10% beyond 200 minutes; early-morning (off-peak)
	// sessions longer (Figure 5(c)).
	p.passiveDuration[geo.Europe] = [2]dist.Dist{
		Peak:    dist.BodyTail(naBody, 64, 120, 0.55, dist.Lognormal{Sigma: 2.80, Mu: 7.20}),
		OffPeak: dist.BodyTail(naBody, 64, 120, 0.45, dist.Lognormal{Sigma: 2.85, Mu: 7.60}),
	}
	// Asia (inferred): Figure 5(a) — 85% under 2 minutes, 12%
	// intermediate, 3% long.
	p.passiveDuration[geo.Asia] = [2]dist.Dist{
		Peak:    dist.BodyTail(naBody, 64, 120, 0.86, dist.Lognormal{Sigma: 2.70, Mu: 5.80}),
		OffPeak: dist.BodyTail(naBody, 64, 120, 0.80, dist.Lognormal{Sigma: 2.75, Mu: 6.10}),
	}
	p.passiveDuration[geo.Other] = p.passiveDuration[geo.NorthAmerica]

	// ---- Table A.2: queries per active session. ----
	p.numQueries[geo.NorthAmerica] = dist.Lognormal{Sigma: 1.360, Mu: -0.0673}
	p.numQueries[geo.Europe] = dist.Lognormal{Sigma: 1.306, Mu: 0.520}
	p.numQueries[geo.Asia] = dist.Lognormal{Sigma: 1.618, Mu: -1.029}
	p.numQueries[geo.Other] = p.numQueries[geo.NorthAmerica]

	// ---- Table A.3: time until first query (seconds). ----
	// Mixture body weights are not published; they are calibrated so the
	// mixture passes through Figure 7(b)'s anchors (90% of <3-query
	// sessions issue the first query before 200 s; =3 before 1000 s;
	// >3 before 2000 s). See TestFirstQueryAnchors.
	naFQPeak := [3]dist.Dist{
		dist.BodyTail(dist.Weibull{Alpha: 1.477, Lambda: 0.005252}, 0, 45, 0.86,
			dist.Lognormal{Sigma: 2.905, Mu: 5.091}),
		dist.BodyTail(dist.Weibull{Alpha: 1.261, Lambda: 0.01081}, 0, 45, 0.77,
			dist.Lognormal{Sigma: 2.045, Mu: 6.303}),
		dist.BodyTail(dist.Weibull{Alpha: 0.9821, Lambda: 0.02662}, 0, 45, 0.71,
			dist.Lognormal{Sigma: 2.359, Mu: 6.301}),
	}
	// The paper prints the off-peak body range as "64–120 seconds"; we
	// read it as [0, 120] — a first query can arrive within the first
	// minute off-peak too, and the published Weibull scales (56–108 s)
	// put most of their mass below 64 s.
	naFQOff := [3]dist.Dist{
		dist.BodyTail(dist.Weibull{Alpha: 1.159, Lambda: 0.01779}, 0, 120, 0.68,
			dist.Lognormal{Sigma: 3.384, Mu: 5.144}),
		dist.BodyTail(dist.Weibull{Alpha: 1.207, Lambda: 0.01446}, 0, 120, 0.64,
			dist.Lognormal{Sigma: 2.324, Mu: 6.400}),
		dist.BodyTail(dist.Weibull{Alpha: 0.9351, Lambda: 0.03380}, 0, 120, 0.55,
			dist.Lognormal{Sigma: 2.463, Mu: 7.186}),
	}
	p.firstQuery[geo.NorthAmerica] = [2][3]dist.Dist{Peak: naFQPeak, OffPeak: naFQOff}
	// Europe (inferred): same bodies; tails shifted right — Figure 7(a)
	// shows half of EU sessions issue the first query between 30 s and
	// 1000 s (vs 30–90 s for Asia) and Figure 7(c) shows a 10% >10⁴ s
	// off-peak tail.
	p.firstQuery[geo.Europe] = [2][3]dist.Dist{
		Peak: [3]dist.Dist{
			dist.BodyTail(dist.Weibull{Alpha: 1.477, Lambda: 0.005252}, 0, 45, 0.72,
				dist.Lognormal{Sigma: 2.905, Mu: 5.491}),
			dist.BodyTail(dist.Weibull{Alpha: 1.261, Lambda: 0.01081}, 0, 45, 0.68,
				dist.Lognormal{Sigma: 2.045, Mu: 6.703}),
			dist.BodyTail(dist.Weibull{Alpha: 0.9821, Lambda: 0.02662}, 0, 45, 0.60,
				dist.Lognormal{Sigma: 2.359, Mu: 6.701}),
		},
		OffPeak: [3]dist.Dist{
			dist.BodyTail(dist.Weibull{Alpha: 1.159, Lambda: 0.01779}, 0, 120, 0.60,
				dist.Lognormal{Sigma: 3.384, Mu: 5.544}),
			dist.BodyTail(dist.Weibull{Alpha: 1.207, Lambda: 0.01446}, 0, 120, 0.56,
				dist.Lognormal{Sigma: 2.324, Mu: 6.800}),
			dist.BodyTail(dist.Weibull{Alpha: 0.9351, Lambda: 0.03380}, 0, 120, 0.48,
				dist.Lognormal{Sigma: 2.463, Mu: 7.586}),
		},
	}
	// Asia (inferred): Figure 7(a) — ≈10% within 10 s, ≈40% within 30 s
	// (the common anchor across regions), ≈90% within 90 s: a steep body
	// covering nearly all mass, thin tail.
	asFQ := [3]dist.Dist{
		dist.BodyTail(dist.Weibull{Alpha: 1.9, Lambda: 0.027}, 0, 90, 0.90,
			dist.Lognormal{Sigma: 1.6, Mu: 5.0}),
		dist.BodyTail(dist.Weibull{Alpha: 1.85, Lambda: 0.025}, 0, 90, 0.88,
			dist.Lognormal{Sigma: 1.6, Mu: 5.2}),
		dist.BodyTail(dist.Weibull{Alpha: 1.8, Lambda: 0.023}, 0, 90, 0.85,
			dist.Lognormal{Sigma: 1.7, Mu: 5.4}),
	}
	p.firstQuery[geo.Asia] = [2][3]dist.Dist{Peak: asFQ, OffPeak: asFQ}
	p.firstQuery[geo.Other] = p.firstQuery[geo.NorthAmerica]

	// ---- Table A.4: query interarrival time (seconds). ----
	// NA does not vary with session length (Figure 8(b) holds only for
	// Europe), so its three buckets are identical. Body weights calibrated
	// to the Figure 8(a) anchor P(IAT < 100 s) = 0.70 peak (see tests).
	naIATPeak := dist.BodyTail(dist.Lognormal{Sigma: 1.625, Mu: 3.353}, 0, 103, 0.705,
		dist.Pareto{Alpha: 0.9041, Beta: 103})
	naIATOff := dist.BodyTail(dist.Lognormal{Sigma: 1.410, Mu: 2.933}, 0, 103, 0.81,
		dist.Pareto{Alpha: 1.143, Beta: 103})
	p.interarrival[geo.NorthAmerica] = [2][3]dist.Dist{
		Peak:    {naIATPeak, naIATPeak, naIATPeak},
		OffPeak: {naIATOff, naIATOff, naIATOff},
	}
	// Europe (inferred): P(IAT < 100 s) = 0.90 overall; many-query
	// sessions have shorter interarrivals (Figure 8(b)); off-peak shorter
	// still (94% below 100 s between 03:00 and 04:00, Figure 8(c)).
	p.interarrival[geo.Europe] = [2][3]dist.Dist{
		Peak: [3]dist.Dist{
			dist.BodyTail(dist.Lognormal{Sigma: 1.55, Mu: 3.45}, 0, 103, 0.86, dist.Pareto{Alpha: 1.0, Beta: 103}),
			dist.BodyTail(dist.Lognormal{Sigma: 1.50, Mu: 3.15}, 0, 103, 0.90, dist.Pareto{Alpha: 1.05, Beta: 103}),
			dist.BodyTail(dist.Lognormal{Sigma: 1.45, Mu: 2.85}, 0, 103, 0.93, dist.Pareto{Alpha: 1.10, Beta: 103}),
		},
		OffPeak: [3]dist.Dist{
			dist.BodyTail(dist.Lognormal{Sigma: 1.45, Mu: 3.15}, 0, 103, 0.92, dist.Pareto{Alpha: 1.15, Beta: 103}),
			dist.BodyTail(dist.Lognormal{Sigma: 1.40, Mu: 2.90}, 0, 103, 0.94, dist.Pareto{Alpha: 1.20, Beta: 103}),
			dist.BodyTail(dist.Lognormal{Sigma: 1.35, Mu: 2.65}, 0, 103, 0.96, dist.Pareto{Alpha: 1.25, Beta: 103}),
		},
	}
	// Asia (inferred): P(IAT < 100 s) = 0.80, no session-length
	// conditioning reported.
	asIATPeak := dist.BodyTail(dist.Lognormal{Sigma: 1.55, Mu: 3.25}, 0, 103, 0.80, dist.Pareto{Alpha: 1.0, Beta: 103})
	asIATOff := dist.BodyTail(dist.Lognormal{Sigma: 1.45, Mu: 3.0}, 0, 103, 0.87, dist.Pareto{Alpha: 1.15, Beta: 103})
	p.interarrival[geo.Asia] = [2][3]dist.Dist{
		Peak:    {asIATPeak, asIATPeak, asIATPeak},
		OffPeak: {asIATOff, asIATOff, asIATOff},
	}
	p.interarrival[geo.Other] = p.interarrival[geo.NorthAmerica]

	// ---- Table A.5: time after the last query (seconds). ----
	p.afterLast[geo.NorthAmerica] = [2][3]dist.Dist{
		Peak: [3]dist.Dist{
			dist.Lognormal{Sigma: 2.361, Mu: 4.879},
			dist.Lognormal{Sigma: 2.259, Mu: 5.686},
			dist.Lognormal{Sigma: 2.145, Mu: 6.107},
		},
		OffPeak: [3]dist.Dist{
			dist.Lognormal{Sigma: 2.162, Mu: 4.760},
			dist.Lognormal{Sigma: 2.156, Mu: 5.672},
			dist.Lognormal{Sigma: 2.286, Mu: 6.036},
		},
	}
	// Europe (inferred): Figure 9(a) shows EU ≈ NA; Figure 9(c) shows
	// shorter tails off-peak (99% below 10⁴ s between 03:00 and 04:00).
	p.afterLast[geo.Europe] = [2][3]dist.Dist{
		Peak: [3]dist.Dist{
			dist.Lognormal{Sigma: 2.361, Mu: 4.950},
			dist.Lognormal{Sigma: 2.259, Mu: 5.750},
			dist.Lognormal{Sigma: 2.145, Mu: 6.170},
		},
		OffPeak: [3]dist.Dist{
			dist.Lognormal{Sigma: 1.90, Mu: 4.60},
			dist.Lognormal{Sigma: 1.90, Mu: 5.30},
			dist.Lognormal{Sigma: 1.90, Mu: 5.70},
		},
	}
	// Asia (inferred): closes sessions faster — P(>1000 s) ≈ 10% vs 20%
	// (Figure 9(a)).
	p.afterLast[geo.Asia] = [2][3]dist.Dist{
		Peak: [3]dist.Dist{
			dist.Lognormal{Sigma: 2.2, Mu: 4.10},
			dist.Lognormal{Sigma: 2.1, Mu: 4.80},
			dist.Lognormal{Sigma: 2.0, Mu: 5.20},
		},
		OffPeak: [3]dist.Dist{
			dist.Lognormal{Sigma: 2.1, Mu: 4.00},
			dist.Lognormal{Sigma: 2.0, Mu: 4.70},
			dist.Lognormal{Sigma: 2.0, Mu: 5.10},
		},
	}
	p.afterLast[geo.Other] = p.afterLast[geo.NorthAmerica]

	// ---- Figure 2: shared-files model. ----
	// A free-rider spike at zero plus a discretized lognormal library
	// size; Adar & Hubermann's free-rider measurements motivate the spike.
	p.sharedFiles = dist.Lognormal{Sigma: 1.6, Mu: 3.0}

	return p
}

// RegionShare returns the fraction of connected peers from the region
// during the given measurement-node hour (Figure 1).
func (p *Params) RegionShare(r geo.Region, hour int) float64 {
	h := ((hour % 24) + 24) % 24
	switch r {
	case geo.NorthAmerica:
		return regionMix[h][0]
	case geo.Europe:
		return regionMix[h][1]
	case geo.Asia:
		return regionMix[h][2]
	case geo.Other:
		return regionMix[h][3]
	default:
		return 0
	}
}

// PickRegion samples a session's region for a session starting in the
// given hour, following Figure 1's mix.
func (p *Params) PickRegion(rng *rand.Rand, hour int) geo.Region {
	u := rng.Float64()
	for _, r := range geo.Regions {
		s := p.RegionShare(r, hour)
		if u < s {
			return r
		}
		u -= s
	}
	return geo.Other
}

// IsPeak reports whether the hour is a high-load period for the region
// (Figure 3).
func (p *Params) IsPeak(r geo.Region, hour int) bool {
	h := ((hour % 24) + 24) % 24
	hs, ok := peakHours[r]
	if !ok {
		return false
	}
	return hs[h]
}

// PeriodOf converts IsPeak into the Period enum.
func (p *Params) PeriodOf(r geo.Region, hour int) Period {
	if p.IsPeak(r, hour) {
		return Peak
	}
	return OffPeak
}

// PassiveFraction returns the probability that a session starting in the
// given hour issues no queries (Figure 4). The ±2% sinusoidal wobble
// models the paper's "fluctuates only by about 5% over time of day".
func (p *Params) PassiveFraction(r geo.Region, hour int) float64 {
	base, ok := passiveBase[r]
	if !ok {
		base = 0.82
	}
	return base + 0.02*math.Sin(2*math.Pi*float64(hour)/24)
}

// PassiveDuration returns the connected-session-duration model for passive
// peers (Table A.1).
func (p *Params) PassiveDuration(r geo.Region, period Period) dist.Dist {
	return p.passiveDuration[normRegion(r)][period]
}

// NumQueriesDist returns the continuous Table A.2 lognormal for the region.
func (p *Params) NumQueriesDist(r geo.Region) dist.Lognormal {
	return p.numQueries[normRegion(r)]
}

// SampleNumQueries draws the number of queries of an active session:
// the Table A.2 lognormal rounded to the nearest integer, floored at one
// (an active session has at least one query by definition).
func (p *Params) SampleNumQueries(rng *rand.Rand, r geo.Region) int {
	n := int(math.Round(p.numQueries[normRegion(r)].Sample(rng)))
	if n < 1 {
		n = 1
	}
	return n
}

// TimeToFirstQuery returns the Table A.3 model for the session's region,
// period, and query-count bucket.
func (p *Params) TimeToFirstQuery(r geo.Region, period Period, numQueries int) dist.Dist {
	return p.firstQuery[normRegion(r)][period][QueryBucketA3(numQueries)]
}

// Interarrival returns the Table A.4 model. Only Europe conditions on the
// session's query count (Figure 8(b)).
func (p *Params) Interarrival(r geo.Region, period Period, numQueries int) dist.Dist {
	return p.interarrival[normRegion(r)][period][QueryBucketIAT(numQueries)]
}

// TimeAfterLastQuery returns the Table A.5 model.
func (p *Params) TimeAfterLastQuery(r geo.Region, period Period, numQueries int) dist.Dist {
	return p.afterLast[normRegion(r)][period][QueryBucketA5(numQueries)]
}

// FreeRiderFraction is the probability that a peer shares zero files
// (Figure 2's spike at zero; Adar & Hubermann report a similar share).
const FreeRiderFraction = 0.25

// SampleSharedFiles draws a peer's shared-library size.
func (p *Params) SampleSharedFiles(rng *rand.Rand) int {
	if rng.Float64() < FreeRiderFraction {
		return 0
	}
	n := int(p.sharedFiles.Sample(rng))
	if n < 1 {
		n = 1
	}
	if n > 10000 {
		n = 10000
	}
	return n
}

// UltrapeerFraction is the share of connections made by peers running in
// ultrapeer mode (Table 1: ≈40%).
const UltrapeerFraction = 0.40

// Quick-disconnect model (Section 3.3, rule 3): about 70% of connections
// terminate within 64 s for system reasons — 29% within 10 s, another 32%
// during the next 20–25 s, the rest spread up to 64 s. Quick sessions are
// overwhelmingly queryless; the few queries they do carry are what rule 3
// later discards (310 k queries across 3.05 M short sessions ≈ 0.1).
const (
	QuickDisconnectFraction   = 0.70
	quickUnder10Share         = 0.29 / QuickDisconnectFraction
	quickBurst20to25Share     = 0.32 / QuickDisconnectFraction
	QuickSessionQueryFraction = 0.093
)

// SampleQuickDisconnect draws the duration of a system-terminated session,
// always below 64 seconds.
func (p *Params) SampleQuickDisconnect(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	var secs float64
	switch {
	case u < quickUnder10Share:
		secs = 1 + rng.Float64()*9 // 1–10 s
	case u < quickUnder10Share+quickBurst20to25Share:
		secs = 20 + rng.Float64()*5 // 20–25 s
	default:
		secs = 10 + rng.Float64()*54 // remainder spread over 10–64 s
		if secs >= 64 {
			secs = 63.9
		}
	}
	return time.Duration(secs * float64(time.Second))
}

// SessionsPerHourFullScale is the average connection arrival rate of the
// paper's trace: 4,361,965 direct connections over 40 days.
const SessionsPerHourFullScale = 4361965.0 / (40 * 24)

func normRegion(r geo.Region) geo.Region {
	if r > geo.Other {
		return geo.Other
	}
	return r
}
