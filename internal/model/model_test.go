package model

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/geo"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestRegionMixRowsSumToOne(t *testing.T) {
	p := Default()
	for h := 0; h < 24; h++ {
		var sum float64
		for _, r := range geo.Regions {
			sum += p.RegionShare(r, h)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("hour %d: shares sum to %v", h, sum)
		}
	}
}

func TestRegionMixAnchors(t *testing.T) {
	// The paper's quoted mixes: 75/15/5 at 00:00, 80/5/5 at 03:00,
	// 60/20/15 at 12:00.
	p := Default()
	checks := []struct {
		hour float64
		r    geo.Region
		want float64
	}{
		{0, geo.NorthAmerica, 0.75}, {0, geo.Europe, 0.15}, {0, geo.Asia, 0.05},
		{3, geo.NorthAmerica, 0.80}, {3, geo.Europe, 0.05}, {3, geo.Asia, 0.05},
		{12, geo.NorthAmerica, 0.60}, {12, geo.Europe, 0.20}, {12, geo.Asia, 0.15},
	}
	for _, c := range checks {
		if got := p.RegionShare(c.r, int(c.hour)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("share(%v, %02.0f:00) = %v, want %v", c.r, c.hour, got, c.want)
		}
	}
}

func TestRegionMixShape(t *testing.T) {
	p := Default()
	for h := 0; h < 24; h++ {
		na := p.RegionShare(geo.NorthAmerica, h)
		eu := p.RegionShare(geo.Europe, h)
		as := p.RegionShare(geo.Asia, h)
		if na < 0.60 || na > 0.80 {
			t.Errorf("hour %d: NA share %v outside 60–80%%", h, na)
		}
		if eu > 0.20 {
			t.Errorf("hour %d: EU share %v above 20%%", h, eu)
		}
		if as < 0.04 || as > 0.15 {
			t.Errorf("hour %d: Asia share %v outside 4–15%%", h, as)
		}
	}
}

func TestPickRegionFollowsMix(t *testing.T) {
	p := Default()
	rng := newRNG(1)
	const n = 200000
	counts := map[geo.Region]int{}
	for i := 0; i < n; i++ {
		counts[p.PickRegion(rng, 12)]++
	}
	for _, r := range geo.Regions {
		got := float64(counts[r]) / n
		want := p.RegionShare(r, 12)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("PickRegion(%v) freq %v, want %v", r, got, want)
		}
	}
}

func TestPeakPeriods(t *testing.T) {
	p := Default()
	// The four key periods must classify as the paper says.
	if !p.IsPeak(geo.NorthAmerica, 3) {
		t.Error("03:00 must be peak for NA")
	}
	if p.IsPeak(geo.Europe, 3) {
		t.Error("03:00 must be a sink for EU")
	}
	if p.IsPeak(geo.NorthAmerica, 11) || p.IsPeak(geo.NorthAmerica, 13) {
		t.Error("11:00/13:00 must be sinks for NA")
	}
	if !p.IsPeak(geo.Europe, 11) || !p.IsPeak(geo.Europe, 13) {
		t.Error("11:00/13:00 must be peaks for EU")
	}
	if !p.IsPeak(geo.Asia, 13) {
		t.Error("13:00 must be peak for Asia")
	}
	if !p.IsPeak(geo.NorthAmerica, 19) || !p.IsPeak(geo.Europe, 19) {
		t.Error("19:00 must be a joint NA+EU peak")
	}
	if p.PeriodOf(geo.NorthAmerica, 3) != Peak || p.PeriodOf(geo.NorthAmerica, 12) != OffPeak {
		t.Error("PeriodOf mismatch")
	}
}

func TestPassiveFractionBands(t *testing.T) {
	p := Default()
	for h := 0; h < 24; h++ {
		na := p.PassiveFraction(geo.NorthAmerica, h)
		eu := p.PassiveFraction(geo.Europe, h)
		as := p.PassiveFraction(geo.Asia, h)
		if na < 0.80 || na > 0.85 {
			t.Errorf("hour %d: NA passive %v outside 80–85%%", h, na)
		}
		if eu < 0.75 || eu > 0.80 {
			t.Errorf("hour %d: EU passive %v outside 75–80%%", h, eu)
		}
		if as < 0.80 || as > 0.90 {
			t.Errorf("hour %d: Asia passive %v outside 80–90%%", h, as)
		}
	}
}

func TestPassiveDurationOrdering(t *testing.T) {
	// Figure 5(a): fraction of sessions under 2 minutes is 85% Asia,
	// 75% NA, 55% EU.
	p := Default()
	twoMin := 120.0
	as := p.PassiveDuration(geo.Asia, Peak).CDF(twoMin)
	na := p.PassiveDuration(geo.NorthAmerica, Peak).CDF(twoMin)
	eu := p.PassiveDuration(geo.Europe, Peak).CDF(twoMin)
	if math.Abs(as-0.86) > 0.02 || math.Abs(na-0.75) > 0.02 || math.Abs(eu-0.55) > 0.02 {
		t.Errorf("P(<2min) = AS %v NA %v EU %v", as, na, eu)
	}
	// All passive durations are at least 64 s (rule 3 boundary).
	rng := newRNG(2)
	for _, r := range []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia} {
		for i := 0; i < 2000; i++ {
			if d := p.PassiveDuration(r, Peak).Sample(rng); d < 64 {
				t.Fatalf("%v passive duration %v below 64 s", r, d)
			}
		}
	}
	// Off-peak sessions are longer than peak sessions (Figure 5(b,c)).
	for _, r := range []geo.Region{geo.NorthAmerica, geo.Europe} {
		peak := p.PassiveDuration(r, Peak).CDF(90 * 60)
		off := p.PassiveDuration(r, OffPeak).CDF(90 * 60)
		if off >= peak {
			t.Errorf("%v: off-peak CDF(90min)=%v should be < peak %v", r, off, peak)
		}
	}
}

func TestPassiveDurationLongTail(t *testing.T) {
	// ~1% of sessions last 17–50 hours in every region (Figure 5(a)).
	p := Default()
	for _, r := range []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia} {
		d := p.PassiveDuration(r, Peak)
		frac := d.CDF(50*3600) - d.CDF(17*3600)
		if frac < 0.002 || frac > 0.04 {
			t.Errorf("%v: P(17h–50h) = %v, want near 1%%", r, frac)
		}
	}
}

func TestNumQueriesTableA2(t *testing.T) {
	p := Default()
	na := p.NumQueriesDist(geo.NorthAmerica)
	eu := p.NumQueriesDist(geo.Europe)
	as := p.NumQueriesDist(geo.Asia)
	if na.Mu != -0.0673 || na.Sigma != 1.360 {
		t.Errorf("NA = %v", na)
	}
	if eu.Mu != 0.520 || eu.Sigma != 1.306 {
		t.Errorf("EU = %v", eu)
	}
	if as.Mu != -1.029 || as.Sigma != 1.618 {
		t.Errorf("AS = %v", as)
	}
}

func TestSampleNumQueriesOrdering(t *testing.T) {
	// Figure 6(a): EU sessions have more queries than NA, which have more
	// than Asia.
	p := Default()
	rng := newRNG(3)
	mean := func(r geo.Region) float64 {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(p.SampleNumQueries(rng, r))
		}
		return sum / n
	}
	eu, na, as := mean(geo.Europe), mean(geo.NorthAmerica), mean(geo.Asia)
	if !(eu > na && na > as) {
		t.Errorf("mean queries: EU %v, NA %v, AS %v — want EU > NA > AS", eu, na, as)
	}
	// Every sample is at least 1.
	for i := 0; i < 1000; i++ {
		if p.SampleNumQueries(rng, geo.Asia) < 1 {
			t.Fatal("active session with 0 queries")
		}
	}
}

func TestQueryBuckets(t *testing.T) {
	casesA3 := map[int]int{1: 0, 2: 0, 3: 1, 4: 2, 100: 2}
	for n, want := range casesA3 {
		if got := QueryBucketA3(n); got != want {
			t.Errorf("A3(%d) = %d, want %d", n, got, want)
		}
	}
	casesA5 := map[int]int{1: 0, 2: 1, 7: 1, 8: 2, 100: 2}
	for n, want := range casesA5 {
		if got := QueryBucketA5(n); got != want {
			t.Errorf("A5(%d) = %d, want %d", n, got, want)
		}
	}
	casesIAT := map[int]int{2: 0, 3: 1, 7: 1, 8: 2}
	for n, want := range casesIAT {
		if got := QueryBucketIAT(n); got != want {
			t.Errorf("IAT(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFirstQueryAnchors(t *testing.T) {
	// Figure 7(b) anchors for NA peak sessions: 90% of <3-query sessions
	// issue the first query before 200 s, =3 before 1000 s, >3 before
	// 2000 s.
	p := Default()
	anchors := []struct {
		numQueries int
		at         float64
	}{{1, 200}, {3, 1000}, {5, 2000}}
	for _, a := range anchors {
		d := p.TimeToFirstQuery(geo.NorthAmerica, Peak, a.numQueries)
		if got := d.CDF(a.at); math.Abs(got-0.90) > 0.03 {
			t.Errorf("NA peak bucket(%d): CDF(%v) = %v, want ≈0.90", a.numQueries, a.at, got)
		}
	}
	// More queries ⇒ stochastically later first query at the anchor scale.
	lt3 := p.TimeToFirstQuery(geo.NorthAmerica, Peak, 1).CDF(500)
	gt3 := p.TimeToFirstQuery(geo.NorthAmerica, Peak, 9).CDF(500)
	if gt3 >= lt3 {
		t.Errorf("CDF(500): <3 %v should exceed >3 %v", lt3, gt3)
	}
}

func TestFirstQueryAsiaFasterBody(t *testing.T) {
	// Figure 7(a): 90% of Asian first queries within 90 s.
	p := Default()
	d := p.TimeToFirstQuery(geo.Asia, Peak, 1)
	if got := d.CDF(90); math.Abs(got-0.90) > 0.03 {
		t.Errorf("Asia CDF(90s) = %v, want ≈0.90", got)
	}
}

func TestInterarrivalAnchors(t *testing.T) {
	// Figure 8(a): P(IAT < 100 s) ≈ 0.90 EU, 0.80 Asia, 0.70 NA (peak).
	p := Default()
	cases := []struct {
		r    geo.Region
		want float64
	}{
		{geo.Europe, 0.90}, {geo.Asia, 0.80}, {geo.NorthAmerica, 0.70},
	}
	for _, c := range cases {
		// Bucket 1 (3–7 queries) is the representative middle bucket.
		d := p.Interarrival(c.r, Peak, 5)
		if got := d.CDF(100); math.Abs(got-c.want) > 0.04 {
			t.Errorf("%v: P(IAT<100) = %v, want ≈%v", c.r, got, c.want)
		}
	}
}

func TestInterarrivalEUConditioning(t *testing.T) {
	// Figure 8(b): EU many-query sessions have shorter interarrivals;
	// NA does not condition on the count.
	p := Default()
	euFew := p.Interarrival(geo.Europe, Peak, 2).CDF(100)
	euMany := p.Interarrival(geo.Europe, Peak, 20).CDF(100)
	if euMany <= euFew {
		t.Errorf("EU: many-query CDF(100) %v should exceed few-query %v", euMany, euFew)
	}
	naFew := p.Interarrival(geo.NorthAmerica, Peak, 2)
	naMany := p.Interarrival(geo.NorthAmerica, Peak, 20)
	if naFew.CDF(100) != naMany.CDF(100) {
		t.Error("NA interarrival must not depend on query count")
	}
}

func TestInterarrivalPeakSlower(t *testing.T) {
	// Figure 8(c): queries in peak hours have longer interarrival times.
	p := Default()
	for _, r := range []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia} {
		peak := p.Interarrival(r, Peak, 5).CDF(100)
		off := p.Interarrival(r, OffPeak, 5).CDF(100)
		if off <= peak {
			t.Errorf("%v: off-peak CDF(100) %v should exceed peak %v", r, off, peak)
		}
	}
}

func TestAfterLastQueryTableA5(t *testing.T) {
	p := Default()
	// Published NA values.
	got := p.TimeAfterLastQuery(geo.NorthAmerica, Peak, 1).(dist.Lognormal)
	if got.Sigma != 2.361 || got.Mu != 4.879 {
		t.Errorf("NA peak 1 query = %v", got)
	}
	got = p.TimeAfterLastQuery(geo.NorthAmerica, OffPeak, 10).(dist.Lognormal)
	if got.Sigma != 2.286 || got.Mu != 6.036 {
		t.Errorf("NA off-peak >7 = %v", got)
	}
	// µ increases with the query bucket (Figure 9(b)).
	for _, r := range []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia} {
		m1 := p.TimeAfterLastQuery(r, Peak, 1).(dist.Lognormal).Mu
		m2 := p.TimeAfterLastQuery(r, Peak, 5).(dist.Lognormal).Mu
		m3 := p.TimeAfterLastQuery(r, Peak, 9).(dist.Lognormal).Mu
		if !(m1 < m2 && m2 < m3) {
			t.Errorf("%v: µ not increasing: %v %v %v", r, m1, m2, m3)
		}
	}
	// Asia closes faster (Figure 9(a)).
	asP := p.TimeAfterLastQuery(geo.Asia, Peak, 5).CDF(1000)
	naP := p.TimeAfterLastQuery(geo.NorthAmerica, Peak, 5).CDF(1000)
	if asP <= naP {
		t.Errorf("Asia CDF(1000) %v should exceed NA %v", asP, naP)
	}
}

func TestSharedFiles(t *testing.T) {
	p := Default()
	rng := newRNG(4)
	const n = 100000
	zero := 0
	for i := 0; i < n; i++ {
		f := p.SampleSharedFiles(rng)
		if f < 0 || f > 10000 {
			t.Fatalf("shared files %d out of range", f)
		}
		if f == 0 {
			zero++
		}
	}
	if got := float64(zero) / n; math.Abs(got-FreeRiderFraction) > 0.01 {
		t.Errorf("free-rider fraction %v, want %v", got, FreeRiderFraction)
	}
}

func TestQuickDisconnect(t *testing.T) {
	p := Default()
	rng := newRNG(5)
	const n = 100000
	under10, under64 := 0, 0
	burst := 0
	for i := 0; i < n; i++ {
		d := p.SampleQuickDisconnect(rng).Seconds()
		if d <= 0 || d >= 64 {
			t.Fatalf("quick disconnect %vs outside (0, 64)", d)
		}
		if d < 10 {
			under10++
		}
		if d >= 20 && d < 25 {
			burst++
		}
		under64++
	}
	// Section 3.3: 29% of *all* connections < 10 s and 32% in the 20–25 s
	// band; conditioned on being a quick session, divide by 0.70.
	if got := float64(under10) / n; math.Abs(got-0.29/0.70) > 0.02 {
		t.Errorf("P(<10s | quick) = %v, want %v", got, 0.29/0.70)
	}
	if got := float64(burst) / n; got < 0.32/0.70-0.03 {
		t.Errorf("P(20–25s | quick) = %v, want ≥ %v", got, 0.32/0.70)
	}
}

func TestSessionsPerHourFullScale(t *testing.T) {
	// 4,361,965 connections over 40 days.
	if math.Abs(SessionsPerHourFullScale*40*24-4361965) > 1 {
		t.Errorf("full-scale rate = %v", SessionsPerHourFullScale)
	}
}

func TestUnknownRegionFallsBack(t *testing.T) {
	p := Default()
	if p.PassiveDuration(geo.Unknown, Peak) == nil {
		t.Error("unknown region must fall back, not crash")
	}
	if p.RegionShare(geo.Unknown, 0) != 0 {
		t.Error("unknown region share should be 0")
	}
	if p.IsPeak(geo.Unknown, 12) {
		t.Error("unknown region is never peak")
	}
}
