// Package faultnet injects network faults at the net.Conn level from a
// deterministic, seeded schedule: connection drops (torn mid-write, then
// dead), delivery delays, duplication and reordering of whole writes,
// slow readers, and dial-time partition windows. It exists so the
// distributed ingest layer (internal/ingest) can be tested — and CI-gated
// — under the failure modes a real multi-machine capture fleet lives
// with: the byte-identity contract must hold under *any* injected
// schedule, and the seed makes a failing schedule reproducible.
//
// Faults are decided per write from a per-connection PCG stream derived
// from Config.Seed and the connection's accept/dial ordinal, so the fault
// decision sequence is a pure function of (seed, conn index, write
// index). Wall-clock effects (how a delay interleaves with the peer) stay
// OS-scheduled, which is exactly the point: the protocol layer above must
// be correct under every interleaving, and the determinism is for
// reproducing the decisions, not the timing.
//
// Duplication and reordering operate on whole Write calls. Protocols that
// frame each message as a single Write (internal/ingest does) therefore
// see duplicated and swapped frames — the retransmit/dedupe layer's job —
// while torn frames only ever come from drops, which also kill the
// connection, exactly like a mid-segment link failure.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every failure this package fabricates, so tests and
// logs can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Window is a half-open wall-clock interval, offset from the injector's
// creation, during which dials fail (a network partition).
type Window struct {
	From, To time.Duration
}

// Config is the fault schedule. Probabilities are per Write and are
// evaluated as a cascade in the field order below — at most one fault
// applies to any single write. The zero value injects nothing.
type Config struct {
	// Seed derives every connection's fault stream. Two injectors with
	// the same seed make the same decisions in the same conn/write order.
	Seed uint64

	// DropProb kills the connection mid-write: an arbitrary prefix of the
	// write is delivered, the conn is closed, and every later operation
	// fails. The layer above recovers by reconnecting.
	DropProb float64
	// DupProb delivers the write twice, back to back.
	DupProb float64
	// ReorderProb holds the write back and delivers it after the next
	// one, swapping two adjacent writes. Close flushes a held write, so
	// reordering never silently discards the stream's tail.
	ReorderProb float64
	// DelayProb sleeps a uniform duration in (0, DelayMax] before
	// delivering the write (DelayMax defaults to 50 ms).
	DelayProb float64
	DelayMax  time.Duration

	// ReadChunk caps the bytes returned per Read and ReadDelay sleeps
	// before each Read — together they make a slow reader that forces the
	// peer's write path into its deadline handling.
	ReadChunk int
	ReadDelay time.Duration

	// Partitions are dial-time outage windows, relative to New.
	Partitions []Window
}

// Injector hands out fault-wrapped conns, dialers and listeners for one
// schedule.
type Injector struct {
	cfg   Config
	epoch time.Time
	next  atomic.Uint64 // connection ordinal
}

// New builds an injector; partition windows start counting now.
func New(cfg Config) *Injector {
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg, epoch: time.Now()}
}

// DialFunc matches the dialer shape internal/ingest takes.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Dial wraps a dialer: during a partition window the dial itself fails;
// outside one, the resulting conn carries the injector's write/read
// faults.
func (j *Injector) Dial(dial DialFunc) DialFunc {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if w, ok := j.partitioned(); ok {
			return nil, fmt.Errorf("%w: partitioned until %v", ErrInjected, w.To)
		}
		c, err := dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return j.Wrap(c), nil
	}
}

func (j *Injector) partitioned() (Window, bool) {
	elapsed := time.Since(j.epoch)
	for _, w := range j.cfg.Partitions {
		if elapsed >= w.From && elapsed < w.To {
			return w, true
		}
	}
	return Window{}, false
}

// Listener wraps a listener so every accepted conn carries the faults.
func (j *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, j: j}
}

type listener struct {
	net.Listener
	j *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.j.Wrap(c), nil
}

// Wrap returns conn with this injector's fault schedule applied. Each
// wrapped conn draws its own decision stream, derived from the seed and
// the conn's ordinal.
func (j *Injector) Wrap(c net.Conn) net.Conn {
	ord := j.next.Add(1)
	return &conn{
		Conn: c,
		cfg:  &j.cfg,
		rng:  rand.New(rand.NewPCG(j.cfg.Seed, ord)),
	}
}

type conn struct {
	net.Conn
	cfg *Config
	rng *rand.Rand

	mu   sync.Mutex
	held []byte // write held back by a reorder fault
	dead bool
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, fmt.Errorf("%w: conn dropped", ErrInjected)
	}
	if c.held != nil {
		// Complete the pending swap: this write goes first, the held one
		// right after it.
		held := c.held
		c.held = nil
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		if _, err := c.Conn.Write(held); err != nil {
			return len(p), err
		}
		return len(p), nil
	}
	r := c.rng.Float64()
	switch cfg := c.cfg; {
	case r < cfg.DropProb:
		// Torn delivery: a random prefix makes it out, then the conn dies.
		torn := 0
		if len(p) > 1 {
			torn = c.rng.IntN(len(p))
		}
		if torn > 0 {
			_, _ = c.Conn.Write(p[:torn])
		}
		c.dead = true
		_ = c.Conn.Close()
		return torn, fmt.Errorf("%w: conn dropped mid-write", ErrInjected)
	case r < cfg.DropProb+cfg.DupProb:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		_, err := c.Conn.Write(p)
		return len(p), err
	case r < cfg.DropProb+cfg.DupProb+cfg.ReorderProb:
		c.held = append([]byte(nil), p...)
		return len(p), nil
	case r < cfg.DropProb+cfg.DupProb+cfg.ReorderProb+cfg.DelayProb:
		time.Sleep(time.Duration(c.rng.Float64() * float64(cfg.DelayMax)))
	}
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, fmt.Errorf("%w: conn dropped", ErrInjected)
	}
	if c.cfg.ReadDelay > 0 {
		time.Sleep(c.cfg.ReadDelay)
	}
	if c.cfg.ReadChunk > 0 && len(p) > c.cfg.ReadChunk {
		p = p[:c.cfg.ReadChunk]
	}
	return c.Conn.Read(p)
}

// Close flushes a reorder-held write before closing, so the stream tail
// is only ever lost to a drop fault (which the retransmit layer already
// covers), never to the injector's own bookkeeping.
func (c *conn) Close() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	dead := c.dead
	c.dead = true
	c.mu.Unlock()
	if dead {
		return nil
	}
	if held != nil {
		_, _ = c.Conn.Write(held)
	}
	return c.Conn.Close()
}
