package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// recConn records whole Write calls so tests can see exactly what the
// fault layer delivered, in order.
type recConn struct {
	writes [][]byte
	closed bool
}

func (r *recConn) Write(p []byte) (int, error) {
	r.writes = append(r.writes, append([]byte(nil), p...))
	return len(p), nil
}
func (r *recConn) Read(p []byte) (int, error)         { return 0, nil }
func (r *recConn) Close() error                       { r.closed = true; return nil }
func (r *recConn) LocalAddr() net.Addr                { return nil }
func (r *recConn) RemoteAddr() net.Addr               { return nil }
func (r *recConn) SetDeadline(t time.Time) error      { return nil }
func (r *recConn) SetReadDeadline(t time.Time) error  { return nil }
func (r *recConn) SetWriteDeadline(t time.Time) error { return nil }

func TestDupDeliversTwice(t *testing.T) {
	rec := &recConn{}
	c := New(Config{Seed: 7, DupProb: 1}).Wrap(rec)
	if n, err := c.Write([]byte("frame")); err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if len(rec.writes) != 2 || !bytes.Equal(rec.writes[0], rec.writes[1]) {
		t.Fatalf("dup delivered %d writes: %q", len(rec.writes), rec.writes)
	}
}

func TestReorderSwapsAdjacentWrites(t *testing.T) {
	rec := &recConn{}
	// Reorder fires on the first write only; the second completes the swap
	// before its own fault roll.
	inj := New(Config{Seed: 3, ReorderProb: 1})
	c := inj.Wrap(rec)
	if _, err := c.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 0 {
		t.Fatalf("held write leaked early: %q", rec.writes)
	}
	if _, err := c.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 2 || string(rec.writes[0]) != "second" || string(rec.writes[1]) != "first" {
		t.Fatalf("reorder delivered %q, want [second first]", rec.writes)
	}
}

func TestCloseFlushesHeldWrite(t *testing.T) {
	rec := &recConn{}
	c := New(Config{Seed: 3, ReorderProb: 1}).Wrap(rec)
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 1 || string(rec.writes[0]) != "tail" {
		t.Fatalf("close flushed %q, want [tail]", rec.writes)
	}
	if !rec.closed {
		t.Fatal("underlying conn not closed")
	}
}

func TestDropTearsWriteAndKillsConn(t *testing.T) {
	rec := &recConn{}
	c := New(Config{Seed: 11, DropProb: 1}).Wrap(rec)
	payload := bytes.Repeat([]byte("x"), 64)
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("drop returned %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write delivered %d of %d bytes", n, len(payload))
	}
	if !rec.closed {
		t.Fatal("drop must close the underlying conn")
	}
	if _, err := c.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after drop returned %v, want ErrInjected", err)
	}
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after drop returned %v, want ErrInjected", err)
	}
}

// TestDeterministicSchedule: two injectors with the same seed make
// identical fault decisions for the same conn/write sequence — the
// property that makes a failing fault run reproducible from its seed.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		rec := &recConn{}
		inj := New(Config{Seed: 42, DropProb: 0.1, DupProb: 0.2, ReorderProb: 0.2})
		c := inj.Wrap(rec)
		var got []string
		for i := 0; i < 40; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				got = append(got, "drop")
				break
			}
		}
		c.Close()
		for _, w := range rec.writes {
			got = append(got, string(w))
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules diverge: %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestPartitionWindowBlocksDial(t *testing.T) {
	inj := New(Config{Partitions: []Window{{From: 0, To: 50 * time.Millisecond}}})
	dialed := 0
	dial := inj.Dial(func(addr string, timeout time.Duration) (net.Conn, error) {
		dialed++
		return &recConn{}, nil
	})
	if _, err := dial("collector:1", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial inside partition returned %v, want ErrInjected", err)
	}
	if dialed != 0 {
		t.Fatal("partitioned dial must not reach the real dialer")
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := dial("collector:1", time.Second); err != nil {
		t.Fatalf("dial after partition: %v", err)
	}
	if dialed != 1 {
		t.Fatalf("dialed %d times, want 1", dialed)
	}
}

func TestSlowReaderChunks(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	slow := New(Config{ReadChunk: 3}).Wrap(b)
	defer slow.Close()
	go a.Write([]byte("0123456789"))
	buf := make([]byte, 8)
	n, err := slow.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 3 {
		t.Fatalf("slow reader returned %d bytes, want <= 3", n)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := New(Config{Seed: 9, DupProb: 1}).Listener(inner)
	defer l.Close()

	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		total := 0
		for total < 10 {
			n, err := c.Read(buf[total:])
			if err != nil {
				return
			}
			total += n
		}
	}()

	c, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*conn); !ok {
		t.Fatalf("accepted conn is %T, want faultnet wrapper", c)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
}
