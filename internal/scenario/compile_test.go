package scenario

import (
	"reflect"
	"testing"

	"repro/internal/capture"
	"repro/internal/engine"
)

func TestPresetsParseAndCompile(t *testing.T) {
	for _, name := range PresetNames() {
		sp, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		c, err := Compile(sp)
		if err != nil {
			t.Fatalf("Compile(%s): %v", name, err)
		}
		if c.Name != name {
			t.Errorf("preset %s compiled with name %q", name, c.Name)
		}
		if c.Sim.Workload.Scenario != nil {
			t.Errorf("preset %s carries a scenario; presets must be pure base configs", name)
		}
	}
}

// TestPaper40dIsTodaysDefaultConfig: the paper40d preset must compile to
// exactly capture.DefaultConfig — field for field, so any future default
// change breaks here instead of silently forking the preset.
func TestPaper40dIsTodaysDefaultConfig(t *testing.T) {
	sp, err := Preset("paper40d")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := capture.DefaultConfig(2004, 1.0)
	if !reflect.DeepEqual(c.Sim, want) {
		t.Errorf("paper40d.Sim = %+v\nwant default %+v", c.Sim, want)
	}
	if c.Nodes != 48 || !c.Stream {
		t.Errorf("paper40d run shape: nodes=%d stream=%v, want 48/true", c.Nodes, c.Stream)
	}
}

// TestPaper40dTraceHashEqualsFlagPath pins the acceptance criterion at
// test scale: the preset-compiled config, overridden the way explicit
// CLI flags override it, drains to a trace SHA-256 equal to the
// historical flag-driven path.
func TestPaper40dTraceHashEqualsFlagPath(t *testing.T) {
	scale, days, nodes := 0.02, 2, 4

	sp, err := Preset("paper40d")
	if err != nil {
		t.Fatal(err)
	}
	overlay := &Spec{Sim: SimSpec{Scale: &scale, Days: &days, Nodes: &nodes}}
	c, err := Compile(Merge(sp, overlay))
	if err != nil {
		t.Fatal(err)
	}
	specTr := engine.New(engine.Config{
		Fleet: capture.FleetConfig{Node: c.Sim, Nodes: c.Nodes},
	}).Run()
	specHash, err := specTr.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// The flag-driven path, exactly as cmd/analyze -simulate builds it.
	cfg := capture.DefaultConfig(2004, scale)
	cfg.Workload.Days = days
	flagTr := engine.New(engine.Config{
		Fleet: capture.FleetConfig{Node: cfg, Nodes: nodes},
	}).Run()
	flagHash, err := flagTr.Hash()
	if err != nil {
		t.Fatal(err)
	}

	if specHash != flagHash {
		t.Errorf("paper40d spec path sha256 %x != flag path %x", specHash, flagHash)
	}
}

func TestMergePrecedence(t *testing.T) {
	base, err := Preset("laptop")
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.5
	stream := true
	overlay := &Spec{
		Name: "over",
		Sim:  SimSpec{Scale: &scale, Stream: &stream},
		Classes: []ClassSpec{
			{Name: "x", Share: 0.1},
		},
	}
	m := Merge(base, overlay)
	if m.Name != "over" {
		t.Errorf("name: %q", m.Name)
	}
	if m.Sim.Scale == nil || *m.Sim.Scale != 0.5 {
		t.Errorf("overlay scale lost: %v", m.Sim.Scale)
	}
	if m.Sim.Seed == nil || *m.Sim.Seed != 2004 {
		t.Errorf("base seed lost: %v", m.Sim.Seed)
	}
	if m.Sim.Days == nil || *m.Sim.Days != 4 {
		t.Errorf("base days lost: %v", m.Sim.Days)
	}
	if m.Sim.Stream == nil || !*m.Sim.Stream {
		t.Errorf("overlay stream lost: %v", m.Sim.Stream)
	}
	if len(m.Classes) != 1 || m.Classes[0].Name != "x" {
		t.Errorf("overlay classes lost: %+v", m.Classes)
	}
	// Merge must not mutate its inputs.
	if base.Name != "laptop" || base.Classes != nil {
		t.Errorf("base mutated: %+v", base)
	}
}

func TestCompileDefaults(t *testing.T) {
	c, err := Compile(&Spec{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Sim.Workload.Seed != DefaultSeed || c.Sim.Workload.Scale != DefaultScale ||
		c.Sim.Workload.Days != DefaultDays || c.Nodes != DefaultNodes {
		t.Errorf("defaults: %+v nodes=%d", c.Sim.Workload, c.Nodes)
	}
	if c.Stream || c.Workers != 0 || c.MemLimit != 0 {
		t.Errorf("zero-value run shape expected: %+v", c)
	}
}

// TestCompileLowersScenario: classes and events land in the attached
// workload.Scenario 1:1, and a preset-extending spec keeps the preset's
// base shape.
func TestCompileLowersScenario(t *testing.T) {
	sp, err := Parse([]byte(`version: 1
name: churny
preset: laptop
classes:
  - name: polluter
    share: 0.2
    query_scale: 2.0
    inject:
      - "planted"
events:
  - churn:
      at: 1d
      fraction: 0.5
      outage: 1h
      recovery: 3h
`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp)
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Sim.Workload.Scenario
	if sc == nil {
		t.Fatal("no compiled scenario")
	}
	if len(sc.Classes) != 1 || sc.Classes[0].Name != "polluter" || sc.Classes[0].QueryScale != 2 {
		t.Errorf("classes: %+v", sc.Classes)
	}
	if len(sc.Churn) != 1 || sc.Churn[0].Fraction != 0.5 {
		t.Errorf("churn: %+v", sc.Churn)
	}
	// Preset base carried through.
	if c.Sim.Workload.Scale != 0.05 || c.Sim.Workload.Days != 4 || c.Nodes != 4 {
		t.Errorf("laptop base lost: %+v nodes=%d", c.Sim.Workload, c.Nodes)
	}
	if !c.InjectSet()["planted"] {
		t.Error("InjectSet missing injected string")
	}
	if c.FirstChurn() == nil {
		t.Error("FirstChurn nil")
	}
}
