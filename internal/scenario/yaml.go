package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The spec format is a strict, small subset of YAML — the subset every
// committed spec in scenarios/ actually uses — parsed by hand because the
// module carries zero dependencies. Supported: block mappings with
// identifier keys, block sequences ("- item"), scalar values (bare,
// double-quoted with Go escapes, or single-quoted), full-line and
// trailing "#" comments, and blank lines. Not supported (by design, with
// errors that say so): tabs in indentation, flow collections ("[a, b]",
// "{k: v}"), anchors/aliases, multi-document streams, multi-line block
// scalars. Every error carries the 1-based line number and, one layer up
// in decode.go, the dotted field path.

// kind discriminates parsed node types.
type kind int

const (
	scalarNode kind = iota
	mapNode
	seqNode
)

// node is one parsed YAML-subset value.
type node struct {
	line     int
	kind     kind
	scalar   string // scalarNode: raw text, quotes not yet resolved
	keys     []string
	children map[string]*node // mapNode
	items    []*node          // seqNode
}

func (k kind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	default:
		return "list"
	}
}

// srcLine is one significant (non-blank, non-comment) input line.
type srcLine struct {
	no     int
	indent int
	text   string
}

type yamlErr struct {
	line int
	msg  string
}

func (e *yamlErr) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("line %d: %s", e.line, e.msg)
	}
	return e.msg
}

func errAt(line int, format string, args ...any) error {
	return &yamlErr{line: line, msg: fmt.Sprintf(format, args...)}
}

// stripComment removes an unquoted trailing comment: a '#' at the start
// of the content or preceded by whitespace, outside quotes.
func stripComment(s string) string {
	inDouble, inSingle := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case c == '"':
			inDouble = true
		case c == '\'':
			inSingle = true
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// scanLines splits the input into significant lines, rejecting tabs in
// indentation (the classic YAML footgun — refuse instead of guessing).
func scanLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for no, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, errAt(no+1, "tab in indentation; use spaces")
		}
		text := strings.TrimSpace(stripComment(line[indent:]))
		if text == "" {
			continue
		}
		out = append(out, srcLine{no: no + 1, indent: indent, text: text})
	}
	return out, nil
}

type yamlParser struct {
	lines []srcLine
	pos   int
}

// parseYAML parses a spec document into a node tree; the document root
// must be a mapping.
func parseYAML(data []byte) (*node, error) {
	lines, err := scanLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(0, "empty document")
	}
	if lines[0].indent != 0 {
		return nil, errAt(lines[0].no, "document must start at column 0")
	}
	p := &yamlParser{lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, errAt(p.lines[p.pos].no, "unexpected indentation")
	}
	if root.kind != mapNode {
		return nil, errAt(lines[0].no, "document root must be a mapping, got %s", root.kind)
	}
	return root, nil
}

// parseBlock parses the run of lines at exactly the given indent.
func (p *yamlParser) parseBlock(indent int) (*node, error) {
	first := p.lines[p.pos]
	if first.text == "-" || strings.HasPrefix(first.text, "- ") {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

var flowStarters = "[{&*|>%@`"

func looksLikeKey(s string) (key, rest string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", false
	}
	key = s[:i]
	for j := 0; j < len(key); j++ {
		c := key[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return "", "", false
		}
	}
	return key, strings.TrimSpace(s[i+1:]), true
}

func (p *yamlParser) parseMap(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].no, kind: mapNode, children: map[string]*node{}}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, errAt(ln.no, "unexpected indentation (expected %d spaces, got %d)", indent, ln.indent)
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, errAt(ln.no, "list item in a mapping block")
		}
		key, rest, ok := looksLikeKey(ln.text)
		if !ok {
			return nil, errAt(ln.no, "expected \"key: value\" (keys are letters, digits, _ and -; quote scalars containing ':')")
		}
		if _, dup := n.children[key]; dup {
			return nil, errAt(ln.no, "duplicate key %q", key)
		}
		p.pos++
		var child *node
		switch {
		case rest != "":
			if strings.ContainsAny(rest[:1], flowStarters) {
				return nil, errAt(ln.no, "field %s: flow syntax %q is not supported; use block lists/mappings", key, rest[:1])
			}
			child = &node{line: ln.no, kind: scalarNode, scalar: rest}
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			var err error
			if child, err = p.parseBlock(p.lines[p.pos].indent); err != nil {
				return nil, err
			}
		default:
			child = &node{line: ln.no, kind: scalarNode, scalar: ""}
		}
		n.keys = append(n.keys, key)
		n.children[key] = child
	}
	return n, nil
}

func (p *yamlParser) parseSeq(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].no, kind: seqNode}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, errAt(ln.no, "unexpected indentation (expected %d spaces, got %d)", indent, ln.indent)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, errAt(ln.no, "expected \"- item\" in list block")
		}
		rest := strings.TrimSpace(ln.text[1:])
		switch {
		case rest == "":
			// Item body is the nested block on the following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, errAt(ln.no, "empty list item")
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
		default:
			if _, _, isKey := looksLikeKey(rest); isKey && rest[0] != '"' && rest[0] != '\'' {
				// "- key: value": an inline-started mapping. Rewrite the
				// line as if the mapping began at the item body's column
				// and let parseMap consume it plus the continuation lines.
				itemIndent := ln.indent + (len(ln.text) - len(rest))
				p.lines[p.pos] = srcLine{no: ln.no, indent: itemIndent, text: rest}
				item, err := p.parseMap(itemIndent)
				if err != nil {
					return nil, err
				}
				n.items = append(n.items, item)
			} else {
				p.pos++
				n.items = append(n.items, &node{line: ln.no, kind: scalarNode, scalar: rest})
			}
		}
	}
	return n, nil
}

// unquote resolves a scalar's surface form: double quotes take Go escape
// sequences, single quotes are literal with ” as the escaped quote, and
// bare scalars are themselves.
func unquote(line int, s string) (string, error) {
	switch {
	case s == "":
		return "", nil
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return "", errAt(line, "bad double-quoted string %s", s)
		}
		return u, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return "", errAt(line, "unterminated single-quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	default:
		return s, nil
	}
}
