package scenario

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/capture"
	"repro/internal/workload"
)

// Compile-time defaults for Sim fields no spec, preset or flag pinned.
// They match cmd/repro's historical flag defaults: the paper's 40-day
// measurement period at a laptop-friendly scale on a single vantage.
const (
	DefaultSeed  = 2004
	DefaultScale = 0.05
	DefaultDays  = 40
	DefaultNodes = 1
)

// presets are the built-in named experiments, written as spec documents
// so they exercise the same parser and decoder as user files (and the
// golden tests re-parse them forever).
var presets = map[string]string{
	// paper40d is the reproduction's reference configuration: the paper's
	// full 40-day, full-volume measurement on a 48-vantage fleet, run
	// streaming. It must compile to exactly capture.DefaultConfig — the
	// trace SHA-256 equality test against the flag-driven path pins it.
	"paper40d": `version: 1
name: paper40d
description: the paper's 40-day full-scale measurement (trace sha256 4b2f8bcf...efc8c)
sim:
  seed: 2004
  scale: 1.0
  days: 40
  nodes: 48
  stream: true
`,
	// laptop finishes in tens of seconds and is enough for every
	// distributional comparison.
	"laptop": `version: 1
name: laptop
description: laptop-scale smoke configuration
sim:
  seed: 2004
  scale: 0.05
  days: 4
  nodes: 4
`,
	// tenweek stresses the streaming memory contract and sketch drift at
	// 2.5x the paper's measurement period (the eDonkey-study horizon),
	// at reduced scale so it stays runnable.
	"tenweek": `version: 1
name: tenweek
description: ten-week long-run at reduced scale (streaming memory + sketch drift)
sim:
  seed: 2004
  scale: 0.02
  days: 70
  nodes: 4
  stream: true
`,
}

// PresetNames lists the built-in presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named built-in spec.
func Preset(name string) (*Spec, error) {
	src, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q (known: %v)", name, PresetNames())
	}
	sp, err := Parse([]byte(src))
	if err != nil {
		// Presets are compiled-in constants; a parse failure is a bug.
		panic(fmt.Sprintf("scenario: built-in preset %s does not parse: %v", name, err))
	}
	return sp, nil
}

// Load reads and parses a spec file, then resolves its preset base (the
// preset is the base; the file's fields overlay it).
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return resolvePreset(sp)
}

func resolvePreset(sp *Spec) (*Spec, error) {
	if sp.Preset == "" {
		return sp, nil
	}
	base, err := Preset(sp.Preset)
	if err != nil {
		return nil, err
	}
	return Merge(base, sp), nil
}

// Merge overlays one spec on another: the overlay's set Sim fields win
// field by field, and its classes/events/checks replace the base's when
// present. Name and description always come from the overlay when set.
// Neither input is modified.
func Merge(base, overlay *Spec) *Spec {
	out := *base
	out.Preset = overlay.Preset
	if overlay.Name != "" {
		out.Name = overlay.Name
	}
	if overlay.Description != "" {
		out.Description = overlay.Description
	}
	out.Sim = mergeSim(base.Sim, overlay.Sim)
	if overlay.Classes != nil {
		out.Classes = overlay.Classes
	}
	if overlay.Events != nil {
		out.Events = overlay.Events
	}
	if overlay.Checks != nil {
		out.Checks = overlay.Checks
	}
	return &out
}

func mergeSim(base, overlay SimSpec) SimSpec {
	out := base
	if overlay.Seed != nil {
		out.Seed = overlay.Seed
	}
	if overlay.Scale != nil {
		out.Scale = overlay.Scale
	}
	if overlay.Days != nil {
		out.Days = overlay.Days
	}
	if overlay.Nodes != nil {
		out.Nodes = overlay.Nodes
	}
	if overlay.Workers != nil {
		out.Workers = overlay.Workers
	}
	if overlay.Stream != nil {
		out.Stream = overlay.Stream
	}
	if overlay.MemLimit != nil {
		out.MemLimit = overlay.MemLimit
	}
	return out
}

// Compiled is the runtime form of a spec: the exact configs the engine
// stack already takes, plus the run-shape knobs and the checks to
// evaluate afterwards. A spec with no classes and no events compiles
// with Sim.Workload.Scenario == nil — the workload generator's
// byte-identity contract — which is how the paper40d preset reproduces
// the flag-driven trace hash exactly.
type Compiled struct {
	// Name labels the experiment.
	Name string
	// Sim is the vantage-node configuration, scenario attached.
	Sim capture.Config
	// Nodes, Workers, Stream shape the fleet run (see p2pquery.RunConfig).
	Nodes   int
	Workers int
	Stream  bool
	// MemLimit is the soft Go memory limit in bytes; 0 means unset.
	MemLimit int64
	// Checks are the spec's headline-metric assertions.
	Checks []Check
}

// Compile resolves a spec to runnable configuration, applying defaults
// for unpinned Sim fields.
func Compile(sp *Spec) (*Compiled, error) {
	sp, err := resolvePreset(sp)
	if err != nil {
		return nil, err
	}
	seed := uint64(DefaultSeed)
	if sp.Sim.Seed != nil {
		seed = *sp.Sim.Seed
	}
	scale := DefaultScale
	if sp.Sim.Scale != nil {
		scale = *sp.Sim.Scale
	}
	c := &Compiled{
		Name:  sp.Name,
		Sim:   capture.DefaultConfig(seed, scale),
		Nodes: DefaultNodes,
	}
	c.Sim.Workload.Days = DefaultDays
	if sp.Sim.Days != nil {
		c.Sim.Workload.Days = *sp.Sim.Days
	}
	if sp.Sim.Nodes != nil {
		c.Nodes = *sp.Sim.Nodes
	}
	if sp.Sim.Workers != nil {
		c.Workers = *sp.Sim.Workers
	}
	if sp.Sim.Stream != nil {
		c.Stream = *sp.Sim.Stream
	}
	if sp.Sim.MemLimit != nil {
		c.MemLimit = *sp.Sim.MemLimit
	}
	c.Checks = sp.Checks
	sc, err := compileScenario(sp)
	if err != nil {
		return nil, err
	}
	c.Sim.Workload.Scenario = sc
	return c, nil
}

// compileScenario lowers classes and events into the workload package's
// runtime Scenario; nil when the spec declares neither.
func compileScenario(sp *Spec) (*workload.Scenario, error) {
	if len(sp.Classes) == 0 && len(sp.Events) == 0 {
		return nil, nil
	}
	sc := &workload.Scenario{}
	for _, cs := range sp.Classes {
		sc.Classes = append(sc.Classes, workload.ClientClass{
			Name:          cs.Name,
			Share:         cs.Share,
			DurationScale: cs.DurationScale,
			QueryScale:    cs.QueryScale,
			Inject:        cs.Inject,
		})
	}
	for i, ev := range sp.Events {
		if ev.Churn == nil {
			return nil, fmt.Errorf("events[%d]: empty event", i)
		}
		sc.Churn = append(sc.Churn, workload.ChurnEvent{
			At:       ev.Churn.At,
			Fraction: ev.Churn.Fraction,
			Outage:   ev.Churn.Outage,
			Recovery: ev.Churn.Recovery,
			Surge:    ev.Churn.Surge,
		})
	}
	return sc, nil
}

// InjectSet collects every injected query string across the compiled
// scenario's classes — the membership set the polluter_share metric
// counts against.
func (c *Compiled) InjectSet() map[string]bool {
	sc := c.Sim.Workload.Scenario
	if sc == nil {
		return nil
	}
	set := map[string]bool{}
	for _, cls := range sc.Classes {
		for _, q := range cls.Inject {
			set[q] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	return set
}

// FirstChurn returns the compiled scenario's first churn event, or nil —
// the event the churn_* metrics measure.
func (c *Compiled) FirstChurn() *workload.ChurnEvent {
	sc := c.Sim.Workload.Scenario
	if sc == nil || len(sc.Churn) == 0 {
		return nil
	}
	return &sc.Churn[0]
}
