package scenario

import (
	"strings"
	"testing"
	"time"
)

const fullSpec = `# a full-feature spec exercising every schema corner
version: 1
name: kitchen-sink
description: "every field, once"
sim:
  seed: 7
  scale: 0.25
  days: 10
  nodes: 8
  workers: 3
  stream: true
  memlimit: 1073741824
classes:
  - name: polluter
    share: 0.15
    query_scale: 3.0
    inject:
      - "free mp3 download"   # trailing comment
      - 'it''s planted'
  - name: lurker
    share: 0.1
    duration_scale: 2.5
events:
  - churn:
      at: 1d12h
      fraction: 0.6
      outage: 2h
      recovery: 6h
      surge: 1.8
checks:
  - metric: polluter_share
    min: 0.1
    max: 0.6
  - metric: churn_recovery
    min: 0.5
`

func TestParseFullSpec(t *testing.T) {
	sp, err := Parse([]byte(fullSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sp.Name != "kitchen-sink" || sp.Description != "every field, once" {
		t.Errorf("name/description: %q %q", sp.Name, sp.Description)
	}
	if sp.Sim.Seed == nil || *sp.Sim.Seed != 7 {
		t.Errorf("sim.seed: %v", sp.Sim.Seed)
	}
	if sp.Sim.Scale == nil || *sp.Sim.Scale != 0.25 {
		t.Errorf("sim.scale: %v", sp.Sim.Scale)
	}
	if sp.Sim.Days == nil || *sp.Sim.Days != 10 || sp.Sim.Nodes == nil || *sp.Sim.Nodes != 8 {
		t.Errorf("sim.days/nodes: %v %v", sp.Sim.Days, sp.Sim.Nodes)
	}
	if sp.Sim.Workers == nil || *sp.Sim.Workers != 3 || sp.Sim.Stream == nil || !*sp.Sim.Stream {
		t.Errorf("sim.workers/stream: %v %v", sp.Sim.Workers, sp.Sim.Stream)
	}
	if sp.Sim.MemLimit == nil || *sp.Sim.MemLimit != 1<<30 {
		t.Errorf("sim.memlimit: %v", sp.Sim.MemLimit)
	}
	if len(sp.Classes) != 2 {
		t.Fatalf("classes: %d", len(sp.Classes))
	}
	p := sp.Classes[0]
	if p.Name != "polluter" || p.Share != 0.15 || p.QueryScale != 3 {
		t.Errorf("polluter class: %+v", p)
	}
	if len(p.Inject) != 2 || p.Inject[0] != "free mp3 download" || p.Inject[1] != "it's planted" {
		t.Errorf("inject (quoting): %q", p.Inject)
	}
	if sp.Classes[1].DurationScale != 2.5 {
		t.Errorf("lurker duration_scale: %v", sp.Classes[1].DurationScale)
	}
	if len(sp.Events) != 1 || sp.Events[0].Churn == nil {
		t.Fatalf("events: %+v", sp.Events)
	}
	ch := sp.Events[0].Churn
	if ch.At != 36*time.Hour || ch.Fraction != 0.6 || ch.Outage != 2*time.Hour || ch.Recovery != 6*time.Hour || ch.Surge != 1.8 {
		t.Errorf("churn: %+v", ch)
	}
	if len(sp.Checks) != 2 || sp.Checks[0].Metric != "polluter_share" || sp.Checks[1].Min == nil || *sp.Checks[1].Min != 0.5 {
		t.Errorf("checks: %+v", sp.Checks)
	}
}

// TestParseErrorsNameTheField: every rejection must carry the offending
// field path (or at minimum the line), so a broken spec is fixable
// without reading this package's source.
func TestParseErrorsNameTheField(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring the error must contain
	}{
		{"unknown top-level field", "version: 1\nbogus: 1\n", "bogus"},
		{"unknown sim field", "version: 1\nsim:\n  warp: 9\n", "sim.warp"},
		{"missing version", "name: x\n", "version"},
		{"future version", "version: 99\n", "version"},
		{"bad number", "version: 1\nsim:\n  scale: fast\n", "sim.scale"},
		{"bad bool", "version: 1\nsim:\n  stream: yes\n", "sim.stream"},
		{"bad duration", "version: 1\nevents:\n  - churn:\n      at: soon\n      fraction: 0.5\n", "events[0].churn.at"},
		{"negative scale", "version: 1\nsim:\n  scale: -1\n", "sim.scale"},
		{"fraction out of range", "version: 1\nevents:\n  - churn:\n      at: 1h\n      fraction: 1.5\n", "events[0].churn.fraction"},
		{"churn missing at", "version: 1\nevents:\n  - churn:\n      fraction: 0.5\n", "events[0].churn.at"},
		{"class missing name", "version: 1\nclasses:\n  - share: 0.5\n", "classes[0].name"},
		{"class missing share", "version: 1\nclasses:\n  - name: x\n", "classes[0].share"},
		{"shares above one", "version: 1\nclasses:\n  - name: a\n    share: 0.7\n  - name: b\n    share: 0.7\n", "classes"},
		{"unknown metric", "version: 1\nchecks:\n  - metric: vibes\n    min: 0\n", "checks[0].metric"},
		{"check without bounds", "version: 1\nchecks:\n  - metric: conns\n", "checks[0]"},
		{"unknown preset", "version: 1\npreset: warpdrive\n", "preset"},
		{"tab indentation", "version: 1\nsim:\n\tseed: 1\n", "tab"},
		{"duplicate key", "version: 1\nname: a\nname: b\n", "duplicate"},
		{"flow syntax", "version: 1\nclasses: [a, b]\n", "classes"},
		{"scalar root", "just a string\n", "key"},
		{"list where mapping expected", "version: 1\nsim:\n  - seed: 1\n", "sim"},
		{"empty document", "# only comments\n", "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted malformed input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]time.Duration{
		"90s":    90 * time.Second,
		"36h":    36 * time.Hour,
		"10d":    240 * time.Hour,
		"10d12h": 252 * time.Hour,
		"1d30m":  24*time.Hour + 30*time.Minute,
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"d", "-1d", "1dd", "soon", ""} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) accepted", bad)
		}
	}
}
