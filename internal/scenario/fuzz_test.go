package scenario

import (
	"strings"
	"testing"
)

// FuzzParse: Parse must never panic, and whatever it accepts must
// compile without panicking either. Seeds cover the grammar's corners
// plus each malformed shape the strict decoder rejects.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fullSpec,
		"version: 1\n",
		"version: 1\nsim:\n  seed: 2004\n  scale: 1.0\n",
		"version: 1\nclasses:\n  - name: a\n    share: 0.5\n    inject:\n      - \"q\"\n",
		"version: 1\nevents:\n  - churn:\n      at: 1d\n      fraction: 0.5\n",
		"version: 1\nchecks:\n  - metric: conns\n    min: 1\n",
		"version: 1\npreset: laptop\n",
		"",
		"\t",
		"- a\n- b\n",
		"key 'unclosed\n",
		"a: \"unterminated\n",
		"version: [1]\n",
		"version: 1\nname: a\nname: b\n",
		"version: 1\nsim:\n      deep: 1\n  shallow: 2\n",
		"version: 1\nclasses:\n  -\n",
		strings.Repeat("a:\n ", 200),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	for _, p := range presets {
		f.Add([]byte(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if sp == nil {
			t.Fatal("nil spec with nil error")
		}
		// Accepted specs must compile without panicking (either outcome
		// is fine; preset references were validated at parse time, so
		// this cannot hit the filesystem).
		Compile(sp)
	})
}
