package scenario

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// The headline metrics a spec's checks can gate. Each is computed from
// the drained trace plus the compiled scenario (which supplies the
// inject set and the churn timeline the churn_* metrics need).
//
//	conns              total direct connections recorded
//	hop1_queries       total hop-1 QUERY records
//	under64s_share     share of sessions shorter than 64 s (the paper's
//	                   quick-session headline)
//	under64s_drift     second-half under-64s share minus first-half share
//	                   (long-run stability of the quick-session figure)
//	polluter_share     share of hop-1 queries whose text is an injected
//	                   string (0 without content-injection classes)
//	churn_outage_drop  1 - (outage-window arrival rate / pre-churn rate)
//	                   for the first churn event (NaN-free: 0 without one)
//	churn_recovery     post-recovery arrival rate / pre-churn rate for the
//	                   first churn event (1 without one)
var metricNames = []string{
	"conns",
	"hop1_queries",
	"under64s_share",
	"under64s_drift",
	"polluter_share",
	"churn_outage_drop",
	"churn_recovery",
}

// MetricNames lists the headline metrics checks can reference, sorted.
func MetricNames() []string {
	out := append([]string(nil), metricNames...)
	sort.Strings(out)
	return out
}

func knownMetric(name string) bool {
	for _, n := range metricNames {
		if n == name {
			return true
		}
	}
	return false
}

// Metrics holds one run's measured headline values, keyed by metric name.
type Metrics map[string]float64

// ComputeMetrics measures every headline metric on a drained trace.
func ComputeMetrics(tr *trace.Trace, c *Compiled) Metrics {
	m := Metrics{
		"conns":        float64(len(tr.Conns)),
		"hop1_queries": float64(len(tr.Queries)),
	}

	// Under-64s share, overall and per half of the measurement period.
	horizon := time.Duration(tr.Days) * 24 * time.Hour
	var under, total, underA, totalA, underB, totalB float64
	for i := range tr.Conns {
		cn := &tr.Conns[i]
		total++
		quick := cn.Duration() < 64*time.Second
		if quick {
			under++
		}
		if horizon > 0 {
			if cn.Start < horizon/2 {
				totalA++
				if quick {
					underA++
				}
			} else {
				totalB++
				if quick {
					underB++
				}
			}
		}
	}
	m["under64s_share"] = ratio(under, total)
	m["under64s_drift"] = ratio(underB, totalB) - ratio(underA, totalA)

	// Polluter share: membership of recorded query texts in the inject set.
	if inj := c.InjectSet(); inj != nil {
		var hit float64
		for i := range tr.Queries {
			if inj[tr.Queries[i].Text] {
				hit++
			}
		}
		m["polluter_share"] = ratio(hit, float64(len(tr.Queries)))
	} else {
		m["polluter_share"] = 0
	}

	// Churn transient: compare arrival (connection-start) rates in equal
	// windows before the event, during the outage, and after recovery
	// completes. The pre window has the outage's own length, so the two
	// counts divide without normalization.
	m["churn_outage_drop"] = 0
	m["churn_recovery"] = 1
	if ev := c.FirstChurn(); ev != nil && ev.Outage > 0 {
		w := ev.Outage
		preStart := ev.At - w
		if preStart < 0 {
			preStart = 0
			w = ev.At
		}
		if w > 0 {
			outageEnd := ev.At + ev.Outage
			postStart := outageEnd + ev.Recovery
			var pre, during, post float64
			for i := range tr.Conns {
				s := tr.Conns[i].Start
				switch {
				case s >= preStart && s < ev.At:
					pre++
				case s >= ev.At && s < outageEnd:
					during++
				case s >= postStart && s < postStart+w:
					post++
				}
			}
			if pre > 0 {
				// Window lengths: pre is w, outage is ev.Outage, post is w.
				preRate := pre / w.Hours()
				m["churn_outage_drop"] = 1 - (during/ev.Outage.Hours())/preRate
				m["churn_recovery"] = (post / w.Hours()) / preRate
			}
		}
	}
	return m
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// CheckResult is one evaluated assertion.
type CheckResult struct {
	Metric string
	Value  float64
	Min    *float64
	Max    *float64
	OK     bool
}

func (r CheckResult) String() string {
	bound := ""
	if r.Min != nil {
		bound += fmt.Sprintf(" min=%g", *r.Min)
	}
	if r.Max != nil {
		bound += fmt.Sprintf(" max=%g", *r.Max)
	}
	verdict := "ok"
	if !r.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("check %-18s %-4s value=%.6g%s", r.Metric, verdict, r.Value, bound)
}

// EvaluateChecks measures the trace and applies the compiled spec's
// assertions, returning every result and whether all passed.
func EvaluateChecks(tr *trace.Trace, c *Compiled) ([]CheckResult, bool) {
	m := ComputeMetrics(tr, c)
	results := make([]CheckResult, 0, len(c.Checks))
	allOK := true
	for _, ck := range c.Checks {
		r := CheckResult{Metric: ck.Metric, Value: m[ck.Metric], Min: ck.Min, Max: ck.Max, OK: true}
		if ck.Min != nil && r.Value < *ck.Min {
			r.OK = false
		}
		if ck.Max != nil && r.Value > *ck.Max {
			r.OK = false
		}
		if !r.OK {
			allOK = false
		}
		results = append(results, r)
	}
	return results, allOK
}

// RecordChecks publishes evaluated check results on the observability
// layer: each check's measured value and pass/fail as
// scenario_check_value / scenario_check_ok gauges (labeled by metric
// name) and one scenario_check journal event per check. Values are
// deterministic functions of the trace, so they belong in the journal's
// deterministic record. A nil observer no-ops.
func RecordChecks(o *obs.Observer, results []CheckResult) {
	for _, r := range results {
		l := obs.L("metric", r.Metric)
		o.Gauge("scenario_check_value", "measured value of a scenario headline-metric check", l).Set(r.Value)
		ok := 0.0
		if r.OK {
			ok = 1
		}
		o.Gauge("scenario_check_ok", "1 when the scenario check passed its declared bounds", l).Set(ok)
		o.Event("scenario_check", obs.A("metric", r.Metric), obs.A("value", r.Value), obs.A("ok", r.OK))
	}
}

// WriteChecks renders evaluated checks, one per line.
func WriteChecks(w io.Writer, results []CheckResult) error {
	for _, r := range results {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
