package scenario

import (
	"path/filepath"
	"testing"
)

// TestCommittedSpecsParseAndCompile: every spec committed under
// scenarios/ must parse under the strict decoder and compile to a
// runnable config — a broken example in the directory users copy from
// is a doc bug this test turns into a red build. It also pins the
// shape each family relies on: every spec declares checks (the suite
// gates on them), and the three scenario families are all represented.
func TestCommittedSpecsParseAndCompile(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(paths) < 4 {
		t.Fatalf("found %d committed specs, want at least 4 (paper40d + the three scenario families)", len(paths))
	}
	var haveChurn, havePolluter, haveLongrun bool
	for _, path := range paths {
		sp, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		c, err := Compile(sp)
		if err != nil {
			t.Errorf("%s: compile: %v", path, err)
			continue
		}
		if len(c.Checks) == 0 {
			t.Errorf("%s: committed specs must declare checks (the scenario suite gates on them)", path)
		}
		if c.Name == "" {
			t.Errorf("%s: committed specs must be named", path)
		}
		if c.FirstChurn() != nil {
			haveChurn = true
		}
		if len(c.InjectSet()) > 0 {
			havePolluter = true
		}
		if c.Sim.Workload.Days > 40 {
			haveLongrun = true
		}
	}
	if !haveChurn {
		t.Error("no committed spec exercises a churn event")
	}
	if !havePolluter {
		t.Error("no committed spec exercises a polluter class")
	}
	if !haveLongrun {
		t.Error("no committed spec exercises a >40-day long run")
	}
}
