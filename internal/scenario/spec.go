package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SchemaVersion is the spec schema this package reads. Parse rejects any
// other value, so a future incompatible schema can bump it and old
// binaries fail loudly instead of misreading new specs.
const SchemaVersion = 1

// Spec is one declarative experiment description, straight from YAML.
// Scalar knobs under Sim are pointers so a spec states only what it pins;
// unset fields stay nil through Merge and take defaults only at Compile.
type Spec struct {
	// Version must equal SchemaVersion.
	Version int
	// Name labels the experiment (reports, perf lines, errors).
	Name string
	// Description is free-form documentation.
	Description string
	// Preset names a built-in preset this spec extends: the preset's spec
	// is the base and this file's fields overlay it.
	Preset string
	// Sim pins the base simulation shape.
	Sim SimSpec
	// Classes declares scenario client classes (workload overrides).
	Classes []ClassSpec
	// Events is the scenario timeline (churn transients).
	Events []EventSpec
	// Checks lists headline-metric assertions evaluated after a run.
	Checks []Check
}

// SimSpec mirrors the shared simulation flag block (internal/cliflags).
type SimSpec struct {
	Seed     *uint64
	Scale    *float64
	Days     *int
	Nodes    *int
	Workers  *int
	Stream   *bool
	MemLimit *int64
}

// ClassSpec declares one client class; it compiles 1:1 into
// workload.ClientClass.
type ClassSpec struct {
	Name          string
	Share         float64
	DurationScale float64
	QueryScale    float64
	Inject        []string
}

// EventSpec is one timeline entry. Exactly one event type must be set
// (today: churn).
type EventSpec struct {
	Churn *ChurnSpec
}

// ChurnSpec is a mass-disconnect/recovery transient; it compiles 1:1
// into workload.ChurnEvent.
type ChurnSpec struct {
	At       time.Duration
	Fraction float64
	Outage   time.Duration
	Recovery time.Duration
	Surge    float64
}

// Check is one headline-metric assertion: Metric's measured value must
// land in [Min, Max] (either bound optional).
type Check struct {
	Metric string
	Min    *float64
	Max    *float64
}

// Parse reads a spec document. Decoding is strict: unknown keys, type
// mismatches, out-of-range values and an unknown schema version are all
// errors, each naming the offending field and line.
func Parse(data []byte) (*Spec, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	spec := d.spec(root)
	if d.err != nil {
		return nil, d.err
	}
	return spec, nil
}

// decoder walks the node tree, accumulating the first error with its
// dotted field path.
type decoder struct {
	err error
}

func (d *decoder) fail(line int, path, format string, args ...any) {
	if d.err == nil {
		d.err = errAt(line, "field %s: %s", path, fmt.Sprintf(format, args...))
	}
}

// mapping checks the node is a mapping and that every key is known.
func (d *decoder) mapping(n *node, path string, known ...string) bool {
	if d.err != nil {
		return false
	}
	if n.kind != mapNode {
		d.fail(n.line, path, "expected a mapping, got %s", n.kind)
		return false
	}
	for _, k := range n.keys {
		found := false
		for _, want := range known {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			d.fail(n.children[k].line, joinPath(path, k), "unknown field (known: %s)", strings.Join(known, ", "))
			return false
		}
	}
	return true
}

func joinPath(base, key string) string {
	if base == "" {
		return key
	}
	return base + "." + key
}

func (d *decoder) scalar(n *node, path string) (string, int, bool) {
	if d.err != nil {
		return "", 0, false
	}
	if n.kind != scalarNode {
		d.fail(n.line, path, "expected a scalar, got %s", n.kind)
		return "", 0, false
	}
	s, err := unquote(n.line, n.scalar)
	if err != nil {
		d.fail(n.line, path, "%v", err)
		return "", 0, false
	}
	return s, n.line, true
}

func (d *decoder) str(n *node, path string) string {
	s, _, _ := d.scalar(n, path)
	return s
}

func (d *decoder) float(n *node, path string) float64 {
	s, line, ok := d.scalar(n, path)
	if !ok {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail(line, path, "cannot parse %q as a number", s)
		return 0
	}
	return v
}

func (d *decoder) integer(n *node, path string) int64 {
	s, line, ok := d.scalar(n, path)
	if !ok {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.fail(line, path, "cannot parse %q as an integer", s)
		return 0
	}
	return v
}

func (d *decoder) boolean(n *node, path string) bool {
	s, line, ok := d.scalar(n, path)
	if !ok {
		return false
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(line, path, "cannot parse %q as a bool (use true or false)", s)
	return false
}

// duration parses Go duration syntax extended with a leading day count:
// "36h", "90s", "10d", "10d12h".
func (d *decoder) duration(n *node, path string) time.Duration {
	s, line, ok := d.scalar(n, path)
	if !ok {
		return 0
	}
	v, err := parseDuration(s)
	if err != nil {
		d.fail(line, path, "cannot parse %q as a duration (like 90s, 36h, 10d, 10d12h)", s)
		return 0
	}
	return v
}

func parseDuration(s string) (time.Duration, error) {
	if i := strings.IndexByte(s, 'd'); i > 0 {
		days, err := strconv.Atoi(s[:i])
		if err != nil || days < 0 {
			return 0, fmt.Errorf("bad day count %q", s[:i])
		}
		rest := time.Duration(0)
		if i+1 < len(s) {
			var err error
			if rest, err = time.ParseDuration(s[i+1:]); err != nil {
				return 0, err
			}
		}
		return time.Duration(days)*24*time.Hour + rest, nil
	}
	return time.ParseDuration(s)
}

func (d *decoder) fraction(n *node, path string) float64 {
	v := d.float(n, path)
	if d.err == nil && (v < 0 || v > 1) {
		d.fail(n.line, path, "must be in [0, 1], got %v", v)
	}
	return v
}

func (d *decoder) spec(root *node) *Spec {
	if !d.mapping(root, "", "version", "name", "description", "preset", "sim", "classes", "events", "checks") {
		return nil
	}
	sp := &Spec{}
	versionSeen := false
	for _, k := range root.keys {
		n := root.children[k]
		switch k {
		case "version":
			versionSeen = true
			if v := d.integer(n, "version"); d.err == nil && v != SchemaVersion {
				d.fail(n.line, "version", "unsupported schema version %d (this build reads %d)", v, SchemaVersion)
			}
		case "name":
			sp.Name = d.str(n, "name")
		case "description":
			sp.Description = d.str(n, "description")
		case "preset":
			sp.Preset = d.str(n, "preset")
			if d.err == nil {
				if _, err := Preset(sp.Preset); err != nil {
					d.fail(n.line, "preset", "%v", err)
				}
			}
		case "sim":
			sp.Sim = d.sim(n, "sim")
		case "classes":
			sp.Classes = d.classes(n, "classes")
		case "events":
			sp.Events = d.events(n, "events")
		case "checks":
			sp.Checks = d.checks(n, "checks")
		}
	}
	if d.err == nil && !versionSeen {
		d.fail(root.line, "version", "missing (specs must declare \"version: %d\")", SchemaVersion)
	}
	return sp
}

func (d *decoder) sim(n *node, path string) SimSpec {
	var s SimSpec
	if !d.mapping(n, path, "seed", "scale", "days", "nodes", "workers", "stream", "memlimit") {
		return s
	}
	for _, k := range n.keys {
		c := n.children[k]
		p := joinPath(path, k)
		switch k {
		case "seed":
			v := d.integer(c, p)
			if d.err == nil && v < 0 {
				d.fail(c.line, p, "must be ≥ 0")
			}
			u := uint64(v)
			s.Seed = &u
		case "scale":
			v := d.float(c, p)
			if d.err == nil && v <= 0 {
				d.fail(c.line, p, "must be > 0")
			}
			s.Scale = &v
		case "days":
			v := int(d.integer(c, p))
			if d.err == nil && v <= 0 {
				d.fail(c.line, p, "must be ≥ 1")
			}
			s.Days = &v
		case "nodes":
			v := int(d.integer(c, p))
			if d.err == nil && v <= 0 {
				d.fail(c.line, p, "must be ≥ 1")
			}
			s.Nodes = &v
		case "workers":
			v := int(d.integer(c, p))
			if d.err == nil && v < 0 {
				d.fail(c.line, p, "must be ≥ 0 (0 = GOMAXPROCS)")
			}
			s.Workers = &v
		case "stream":
			v := d.boolean(c, p)
			s.Stream = &v
		case "memlimit":
			v := d.integer(c, p)
			if d.err == nil && v < 0 {
				d.fail(c.line, p, "must be ≥ 0")
			}
			s.MemLimit = &v
		}
	}
	return s
}

func (d *decoder) classes(n *node, path string) []ClassSpec {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.line, path, "expected a list, got %s", n.kind)
		return nil
	}
	out := make([]ClassSpec, 0, len(n.items))
	shareSum := 0.0
	for i, item := range n.items {
		p := fmt.Sprintf("%s[%d]", path, i)
		if !d.mapping(item, p, "name", "share", "duration_scale", "query_scale", "inject") {
			return nil
		}
		var cs ClassSpec
		for _, k := range item.keys {
			c := item.children[k]
			kp := joinPath(p, k)
			switch k {
			case "name":
				cs.Name = d.str(c, kp)
			case "share":
				cs.Share = d.fraction(c, kp)
			case "duration_scale":
				cs.DurationScale = d.float(c, kp)
				if d.err == nil && cs.DurationScale <= 0 {
					d.fail(c.line, kp, "must be > 0")
				}
			case "query_scale":
				cs.QueryScale = d.float(c, kp)
				if d.err == nil && cs.QueryScale <= 0 {
					d.fail(c.line, kp, "must be > 0")
				}
			case "inject":
				cs.Inject = d.stringList(c, kp)
			}
		}
		if d.err != nil {
			return nil
		}
		if cs.Name == "" {
			d.fail(item.line, joinPath(p, "name"), "missing (classes must be named)")
			return nil
		}
		if cs.Share <= 0 {
			d.fail(item.line, joinPath(p, "share"), "missing or zero (a class needs a positive arrival share)")
			return nil
		}
		shareSum += cs.Share
		out = append(out, cs)
	}
	if d.err == nil && shareSum > 1 {
		d.fail(n.line, path, "class shares sum to %.3f; must be ≤ 1 (the rest is the base class)", shareSum)
		return nil
	}
	return out
}

func (d *decoder) stringList(n *node, path string) []string {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.line, path, "expected a list of strings, got %s", n.kind)
		return nil
	}
	out := make([]string, 0, len(n.items))
	for i, item := range n.items {
		out = append(out, d.str(item, fmt.Sprintf("%s[%d]", path, i)))
	}
	return out
}

func (d *decoder) events(n *node, path string) []EventSpec {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.line, path, "expected a list, got %s", n.kind)
		return nil
	}
	out := make([]EventSpec, 0, len(n.items))
	for i, item := range n.items {
		p := fmt.Sprintf("%s[%d]", path, i)
		if !d.mapping(item, p, "churn") {
			return nil
		}
		if len(item.keys) != 1 {
			d.fail(item.line, p, "exactly one event type per entry (known: churn)")
			return nil
		}
		ch := d.churn(item.children["churn"], joinPath(p, "churn"))
		if d.err != nil {
			return nil
		}
		out = append(out, EventSpec{Churn: &ch})
	}
	return out
}

func (d *decoder) churn(n *node, path string) ChurnSpec {
	var cs ChurnSpec
	if !d.mapping(n, path, "at", "fraction", "outage", "recovery", "surge") {
		return cs
	}
	atSeen, fracSeen := false, false
	for _, k := range n.keys {
		c := n.children[k]
		p := joinPath(path, k)
		switch k {
		case "at":
			cs.At = d.duration(c, p)
			atSeen = true
		case "fraction":
			cs.Fraction = d.fraction(c, p)
			fracSeen = true
		case "outage":
			cs.Outage = d.duration(c, p)
		case "recovery":
			cs.Recovery = d.duration(c, p)
		case "surge":
			cs.Surge = d.float(c, p)
			if d.err == nil && cs.Surge < 1 {
				d.fail(c.line, p, "must be ≥ 1 (it is the peak recovery rate multiplier)")
			}
		}
	}
	if d.err == nil && !atSeen {
		d.fail(n.line, joinPath(path, "at"), "missing (when does the transient start?)")
	}
	if d.err == nil && !fracSeen {
		d.fail(n.line, joinPath(path, "fraction"), "missing (what share of the population disconnects?)")
	}
	return cs
}

func (d *decoder) checks(n *node, path string) []Check {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.line, path, "expected a list, got %s", n.kind)
		return nil
	}
	out := make([]Check, 0, len(n.items))
	for i, item := range n.items {
		p := fmt.Sprintf("%s[%d]", path, i)
		if !d.mapping(item, p, "metric", "min", "max") {
			return nil
		}
		var ck Check
		for _, k := range item.keys {
			c := item.children[k]
			kp := joinPath(p, k)
			switch k {
			case "metric":
				ck.Metric = d.str(c, kp)
				if d.err == nil && !knownMetric(ck.Metric) {
					d.fail(c.line, kp, "unknown metric %q (known: %s)", ck.Metric, strings.Join(MetricNames(), ", "))
				}
			case "min":
				v := d.float(c, kp)
				ck.Min = &v
			case "max":
				v := d.float(c, kp)
				ck.Max = &v
			}
		}
		if d.err != nil {
			return nil
		}
		if ck.Metric == "" {
			d.fail(item.line, joinPath(p, "metric"), "missing")
			return nil
		}
		if ck.Min == nil && ck.Max == nil {
			d.fail(item.line, p, "at least one of min/max is required")
			return nil
		}
		out = append(out, ck)
	}
	return out
}
