// Package scenario is the declarative experiment layer: a YAML spec
// (strict decode, versioned schema) describes a full measurement run —
// base simulation shape, per-client-class workload overrides, a timeline
// of churn transients, and headline-metric assertions — and compiles into
// the configs the existing stack already takes (capture.Config with a
// workload.Scenario attached), so the engine itself never learns about
// specs. Every binary accepts -spec/-preset; p2pquery.LoadScenario /
// RunScenario expose the same path as a library.
//
// A spec with no classes and no events compiles with a nil
// workload.Scenario, which the generator treats as contractually
// invisible: the paper40d preset's trace is byte-identical (SHA-256
// equal) to the historical flag-driven run.
//
// # Schema reference (version 1)
//
// The format is a strict subset of YAML: block mappings with identifier
// keys, block sequences, scalars (bare, "double-quoted" with Go escapes,
// or 'single-quoted'), and # comments. Flow syntax, anchors, tabs and
// multi-document streams are rejected with errors naming the line;
// unknown fields, type mismatches and out-of-range values are errors
// naming the field path.
//
//	version: 1              # required; must equal scenario.SchemaVersion
//	name: my-experiment     # label for reports and errors
//	description: free text
//	preset: laptop          # optional: extend a built-in preset
//	                        # (preset is the base, this file overlays it)
//
//	sim:                    # all optional; precedence spec < preset <
//	  seed: 2004            #   explicit CLI flag (internal/cliflags)
//	  scale: 0.05           # fraction of the paper's arrival volume
//	  days: 40              # measurement period
//	  nodes: 4              # vantage fleet size
//	  workers: 0            # engine worker pool (0 = GOMAXPROCS)
//	  stream: true          # bounded-memory streaming engine
//	  memlimit: 2147483648  # soft Go memory limit in bytes (0 = unset)
//
//	classes:                # scenario client classes (workload overlay)
//	  - name: polluter      # required; carried on Session.Class
//	    share: 0.15         # required; fraction of arrivals, sum ≤ 1
//	    duration_scale: 2.0 # optional; multiplies session duration
//	    query_scale: 3.0    # optional; scales query count (>1 adds
//	                        #   uniformly placed extras, <1 thins)
//	    inject:             # optional; the class's own query vocabulary
//	      - "free mp3 download"   # (content injection — makes the class
//	      - "movie screener"      #   automated: exempt from the user
//	                              #   quick-disconnect draw)
//
//	events:                 # scenario timeline
//	  - churn:              # mass-disconnect/recovery transient
//	      at: 1d12h         # required; durations take 90s/36h/10d/10d12h
//	      fraction: 0.6     # required; share disconnected + suppression
//	      outage: 2h        # arrival suppression window after "at"
//	      recovery: 6h      # linear-decay reconnection surge window
//	      surge: 1.8        # optional peak multiplier (default
//	                        #   1 + fraction)
//
//	checks:                 # headline-metric assertions (CI gates)
//	  - metric: under64s_share
//	    min: 0.2            # at least one of min/max
//	    max: 0.6
//
// Metrics: conns, hop1_queries, under64s_share, under64s_drift,
// polluter_share, churn_outage_drop, churn_recovery — see metrics.go for
// exact definitions.
//
// # Presets
//
// Three built-ins, themselves written as spec documents (Preset):
//
//   - paper40d — the paper's 40-day full-scale measurement on a
//     48-vantage streaming fleet; compiles to exactly today's default
//     config (pinned by trace-hash equality).
//   - laptop — 4 days at scale 0.05 on 4 nodes; seconds, not minutes.
//   - tenweek — 70 days at scale 0.02, streaming: 2.5× the paper's
//     period, the long-run memory/drift stress.
//
// # Cookbook
//
// Run a committed spec, then gate on its checks (exit 1 on failure):
//
//	analyze -spec scenarios/churn-recovery.yaml -only summary -checks
//
// Run a preset, overriding its scale for a smoke pass (explicit flags
// always win over spec and preset):
//
//	analyze -preset paper40d -scale 0.02 -days 2 -nodes 4 -only summary
//
// Describe a polluter experiment and generate its labelled workload:
//
//	workloadgen -spec scenarios/polluter.yaml | jq -r .class | sort | uniq -c
//
// As a library:
//
//	c, _ := p2pquery.LoadScenario("scenarios/tenweek.yaml")
//	res, _ := p2pquery.RunScenario(c)
//	results, ok := p2pquery.EvaluateScenario(res.Trace, c)
//
// The scenario suite (make scenario-suite) runs every committed spec at
// smoke scale and fails on any unmet check; CI runs it alongside
// distfleet-smoke.
package scenario
