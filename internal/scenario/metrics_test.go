package scenario

import (
	"math"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/trace"
	"repro/internal/workload"
)

// capturedWith is a minimal Compiled.Sim carrying the given scenario.
func capturedWith(sc *workload.Scenario) capture.Config {
	cfg := capture.DefaultConfig(1, 0.01)
	cfg.Workload.Scenario = sc
	return cfg
}

// synthTrace builds a hand-crafted trace: arrivals per hour, durations,
// and query texts fully controlled, so each metric's value is computable
// by inspection.
func synthTrace() *trace.Trace {
	tr := &trace.Trace{Days: 2}
	addConn := func(start, dur time.Duration) {
		tr.Conns = append(tr.Conns, trace.Conn{ID: uint64(len(tr.Conns)), Start: start, End: start + dur})
	}
	// Day 1 (first half): 10 conns/hour for 24h, 30% quick.
	for h := 0; h < 24; h++ {
		for i := 0; i < 10; i++ {
			dur := 10 * time.Minute
			if i < 3 {
				dur = 30 * time.Second
			}
			addConn(time.Duration(h)*time.Hour+time.Duration(i)*time.Minute, dur)
		}
	}
	// Day 2 (second half): same rate, 50% quick.
	for h := 24; h < 48; h++ {
		for i := 0; i < 10; i++ {
			dur := 10 * time.Minute
			if i < 5 {
				dur = 30 * time.Second
			}
			addConn(time.Duration(h)*time.Hour+time.Duration(i)*time.Minute, dur)
		}
	}
	// Queries: 3 planted out of 10.
	for i := 0; i < 10; i++ {
		text := "organic"
		if i < 3 {
			text = "planted"
		}
		tr.Queries = append(tr.Queries, trace.Query{ConnID: 0, At: time.Duration(i) * time.Minute, Text: text})
	}
	return tr
}

func TestComputeMetricsSynthetic(t *testing.T) {
	tr := synthTrace()
	c := &Compiled{Sim: capturedWith(&workload.Scenario{
		Classes: []workload.ClientClass{{Name: "p", Share: 0.1, Inject: []string{"planted"}}},
	})}
	m := ComputeMetrics(tr, c)

	approx := func(name string, want float64) {
		t.Helper()
		if got := m[name]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("conns", 480)
	approx("hop1_queries", 10)
	approx("under64s_share", 0.4)  // (72 + 120) / 480
	approx("under64s_drift", 0.2)  // 0.5 − 0.3
	approx("polluter_share", 0.3)  // 3 / 10
	approx("churn_outage_drop", 0) // no churn event
	approx("churn_recovery", 1)
}

func TestComputeMetricsChurn(t *testing.T) {
	tr := &trace.Trace{Days: 1}
	add := func(start time.Duration) {
		tr.Conns = append(tr.Conns, trace.Conn{ID: uint64(len(tr.Conns)), Start: start, End: start + time.Hour})
	}
	// 60/h before the event, 12/h during the 2h outage (80% drop),
	// 54/h after recovery (90% of the pre rate).
	for m := 0; m < 120; m++ {
		add(8*time.Hour + time.Duration(m)*time.Minute) // pre [8h,10h): 60/h
	}
	for i := 0; i < 24; i++ {
		add(10*time.Hour + time.Duration(i)*5*time.Minute) // outage [10h,12h): 12/h
	}
	for i := 0; i < 108; i++ {
		add(15*time.Hour + time.Duration(float64(i)*66.6)*time.Second) // post [15h,17h): 54/h
	}
	c := &Compiled{Sim: capturedWith(&workload.Scenario{
		Churn: []workload.ChurnEvent{{At: 10 * time.Hour, Fraction: 0.8, Outage: 2 * time.Hour, Recovery: 3 * time.Hour}},
	})}
	m := ComputeMetrics(tr, c)
	if got := m["churn_outage_drop"]; math.Abs(got-0.8) > 0.01 {
		t.Errorf("churn_outage_drop = %v, want ≈ 0.8", got)
	}
	if got := m["churn_recovery"]; math.Abs(got-0.9) > 0.01 {
		t.Errorf("churn_recovery = %v, want ≈ 0.9", got)
	}
}

func TestEvaluateChecks(t *testing.T) {
	tr := synthTrace()
	min1, max1 := 0.3, 0.5
	tooHigh := 0.99
	c := &Compiled{Checks: []Check{
		{Metric: "under64s_share", Min: &min1, Max: &max1}, // 0.4 → ok
		{Metric: "under64s_share", Min: &tooHigh},          // 0.4 < 0.99 → fail
	}}
	c.Sim = capturedWith(nil)
	results, ok := EvaluateChecks(tr, c)
	if ok {
		t.Error("EvaluateChecks reported all-ok with a failing check")
	}
	if len(results) != 2 || !results[0].OK || results[1].OK {
		t.Errorf("results: %+v", results)
	}
}
