package stream

import (
	"time"

	"repro/internal/trace"
)

// RateWindow measures a sliding-window event rate over trace time with a
// ring of fixed-width bucket counters — the "how busy is the stream right
// now" gauge of the live characterization. State is buckets × 8 bytes,
// independent of stream length.
//
// Adds are commutative (counters only), so the measured rates do not
// depend on the order events of equal time windows arrive in; the window
// end only moves forward. Events older than the window at the time they
// arrive still count toward the lifetime total but not the window.
type RateWindow struct {
	width   trace.Time
	counts  []uint64
	cur     int64 // absolute index (at / width) of the newest bucket, -1 before first add
	inWin   uint64
	total   uint64
	peakWin uint64
}

// NewRateWindow builds a window of n buckets of the given width (e.g.
// 60 × 1 minute = a one-hour sliding window at minute resolution).
func NewRateWindow(width trace.Time, n int) *RateWindow {
	if n < 1 {
		n = 1
	}
	if width <= 0 {
		width = time.Minute
	}
	return &RateWindow{width: width, counts: make([]uint64, n), cur: -1}
}

// Add counts one event at the given instant.
func (w *RateWindow) Add(at trace.Time) {
	w.total++
	idx := int64(at / w.width)
	if w.cur < 0 {
		w.cur = idx
	}
	if idx > w.cur {
		w.advance(idx)
	}
	if idx <= w.cur-int64(len(w.counts)) {
		return // older than the window: lifetime total only
	}
	w.counts[int(idx%int64(len(w.counts)))]++
	w.inWin++
	if w.inWin > w.peakWin {
		w.peakWin = w.inWin
	}
}

// advance slides the window forward to make idx the newest bucket,
// retiring buckets that fall out.
func (w *RateWindow) advance(idx int64) {
	n := int64(len(w.counts))
	if idx-w.cur >= n {
		// The whole window scrolled past; reset it.
		for i := range w.counts {
			w.counts[i] = 0
		}
		w.inWin = 0
		w.cur = idx
		return
	}
	for w.cur < idx {
		w.cur++
		slot := int(w.cur % n)
		w.inWin -= w.counts[slot]
		w.counts[slot] = 0
	}
}

// Total returns the lifetime event count.
func (w *RateWindow) Total() uint64 { return w.total }

// InWindow returns the event count within the current window.
func (w *RateWindow) InWindow() uint64 { return w.inWin }

// PeakInWindow returns the highest in-window count ever observed.
func (w *RateWindow) PeakInWindow() uint64 { return w.peakWin }

// Window returns the window span.
func (w *RateWindow) Window() trace.Time {
	return w.width * trace.Time(len(w.counts))
}

// End returns the end of the newest bucket (the window's leading edge),
// or 0 before the first add.
func (w *RateWindow) End() trace.Time {
	if w.cur < 0 {
		return 0
	}
	return trace.Time(w.cur+1) * w.width
}

// PerHour returns the in-window rate in events per hour.
func (w *RateWindow) PerHour() float64 {
	win := w.Window()
	if win <= 0 {
		return 0
	}
	return float64(w.inWin) / win.Hours()
}
