package stream_test

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// onlineOverFleet runs the online layer as a merge sink over a small
// fleet's streams and returns the snapshot plus the drained trace.
func onlineOverFleet(t *testing.T, seed uint64, days, nodes int) (stream.Snapshot, *trace.Trace) {
	t.Helper()
	traces := fleetTraces(t, seed, days, nodes)
	online := stream.NewOnline(stream.OnlineConfig{})
	m := stream.NewMerger(len(traces), online)
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			replayAsStream(tr, stream.NewProducer(i, m.Intake()), trace.Time(days)*24*time.Hour)
		}(i, tr)
	}
	merged := m.Run()
	wg.Wait()
	return online.Snapshot(10), merged
}

// TestOnlineMatchesExact pins the sketch-accuracy contract against the
// batch-exact oracle on the drained trace: totals and the under-64 share
// are exact; the top-K ranking is exact while capacity holds (it does at
// this scale); quantiles agree within the documented ε rank error, which
// this test verifies in rank space.
func TestOnlineMatchesExact(t *testing.T) {
	snap, merged := onlineOverFleet(t, 2004, 2, 3)
	exact := stream.Exact(merged, 10)

	if snap.Sessions != exact.Sessions || snap.Queries != exact.Queries {
		t.Fatalf("totals differ: online (%d, %d) vs exact (%d, %d)",
			snap.Sessions, snap.Queries, exact.Sessions, exact.Queries)
	}
	if math.Abs(snap.Under64Fraction-exact.Under64Fraction) > 1e-12 {
		t.Fatalf("under-64 share differs: %g vs %g", snap.Under64Fraction, exact.Under64Fraction)
	}
	if !snap.TopKExact {
		t.Fatalf("top-K inexact at CI scale (distinct=%d)", snap.DistinctKeys)
	}
	if snap.DistinctKeys != exact.DistinctKeys {
		t.Fatalf("distinct keys: %d vs %d", snap.DistinctKeys, exact.DistinctKeys)
	}
	for i := range exact.TopKeywords {
		if snap.TopKeywords[i] != exact.TopKeywords[i] {
			t.Fatalf("top-K entry %d: %+v vs %+v", i, snap.TopKeywords[i], exact.TopKeywords[i])
		}
	}

	// Quantile agreement is checked in rank space: the online answer's
	// rank among the exact observations must lie within ε·n of the target.
	checkRank := func(name string, xs []float64, phi, got, eps float64) {
		t.Helper()
		n := float64(len(xs))
		lo, hi := 0, 0
		for _, x := range xs {
			if x < got {
				lo++
			}
			if x <= got {
				hi++
			}
		}
		target := phi * n
		slack := eps*n + 1
		if float64(lo) > target+slack || float64(hi) < target-slack {
			t.Errorf("%s phi=%.2f: online %g covers ranks [%d,%d], target %.0f ± %.0f",
				name, phi, got, lo, hi, target, slack)
		}
	}
	var durs, inters []float64
	for i := range merged.Conns {
		durs = append(durs, (merged.Conns[i].End - merged.Conns[i].Start).Seconds())
	}
	for _, qs := range merged.QueriesPerConn() {
		for i := 1; i < len(qs); i++ {
			inters = append(inters, (qs[i].At - qs[i-1].At).Seconds())
		}
	}
	for phi, got := range map[float64]float64{0.50: snap.Duration.P50, 0.90: snap.Duration.P90, 0.99: snap.Duration.P99} {
		checkRank("duration", durs, phi, got, snap.Duration.Epsilon)
	}
	for phi, got := range map[float64]float64{0.50: snap.Interarrival.P50, 0.90: snap.Interarrival.P90, 0.99: snap.Interarrival.P99} {
		checkRank("interarrival", inters, phi, got, snap.Interarrival.Epsilon)
	}
	if snap.Duration.Max != exact.Duration.Max {
		t.Errorf("duration max: %g vs %g (tracked exactly)", snap.Duration.Max, exact.Duration.Max)
	}
}

// TestOnlineDeterministicAcrossRuns: the snapshot is a pure function of
// the merged stream, whatever the producer interleaving.
func TestOnlineDeterministicAcrossRuns(t *testing.T) {
	a, _ := onlineOverFleet(t, 7, 1, 3)
	b, _ := onlineOverFleet(t, 7, 1, 3)
	// Rates depend only on trace-time windows, so they are reproducible
	// too; compare the whole snapshot minus nothing.
	if a.Sessions != b.Sessions || a.Queries != b.Queries ||
		a.Duration != b.Duration || a.Interarrival != b.Interarrival ||
		a.ArrivalsPerHour != b.ArrivalsPerHour || a.QueriesPerHour != b.QueriesPerHour {
		t.Fatalf("snapshots differ across identical runs:\n%+v\n%+v", a, b)
	}
	for i := range a.TopKeywords {
		if a.TopKeywords[i] != b.TopKeywords[i] {
			t.Fatalf("top-K differs at %d", i)
		}
	}
}

// TestOnlineDirectObservation covers the live-daemon path: wire-level
// query observations without session framing.
func TestOnlineDirectObservation(t *testing.T) {
	o := stream.NewOnline(stream.OnlineConfig{})
	o.ObserveQuery(10*time.Second, "metallica one", false)
	o.ObserveQuery(20*time.Second, "one metallica", false)
	o.ObserveQuery(30*time.Second, "zeppelin", false)
	o.ObserveQuery(40*time.Second, "", true) // SHA1 hunt: no keywords
	s := o.Snapshot(5)
	if s.Queries != 4 {
		t.Fatalf("queries = %d, want 4", s.Queries)
	}
	if s.DistinctKeys != 2 {
		t.Fatalf("distinct keys = %d, want 2 (keyword sets canonicalize)", s.DistinctKeys)
	}
	if s.TopKeywords[0].Count != 2 {
		t.Fatalf("top entry count = %d, want 2", s.TopKeywords[0].Count)
	}
	if s.QueriesPerHour == 0 {
		t.Fatal("query rate window did not register")
	}
}

// TestSnapshotWriteText smoke-tests the report block.
func TestSnapshotWriteText(t *testing.T) {
	snap, _ := onlineOverFleet(t, 3, 1, 2)
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Online characterization", "under-64s session share", "top keyword sets"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text block missing %q:\n%s", want, buf.String())
		}
	}
}
