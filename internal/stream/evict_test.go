package stream_test

import (
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// sessRec builds a query-less session record for barrier tests.
func sessRec(start, end trace.Time) *stream.SessionRecord {
	return &stream.SessionRecord{Conn: trace.Conn{Start: start, End: end}}
}

// TestMergerEvictionResumesStalledBarrier is the liveness contract: an
// input whose watermark stops advancing stalls the emission barrier at
// its last watermark; evicting it releases the barrier, the merge drains,
// and the loss is accounted exactly — its closed sessions stay in the
// trace, its still-open sessions are counted in LostSessions, and the
// input itself in DeadInputs.
func TestMergerEvictionResumesStalledBarrier(t *testing.T) {
	var order []trace.Time
	sink := sinkFunc(func(c *trace.Conn, _ []trace.Query) { order = append(order, c.Start) })
	m := stream.NewMerger(2, sink)
	done := make(chan *trace.Trace)
	go func() { done <- m.Run() }()

	// Input 0 is healthy: two sessions, trailer at the horizon.
	p0 := stream.NewProducer(0, m.Intake())
	p0.Open(1, 1*time.Second)
	p0.Close(1, 2*time.Second, sessRec(1*time.Second, 2*time.Second))
	p0.Open(2, 3*time.Second)
	p0.Close(2, 4*time.Second, sessRec(3*time.Second, 4*time.Second))
	p0.Done(10*time.Second, &stream.End{Days: 1, Nodes: 1})

	// Input 1 opens two sessions, closes one, then goes silent forever —
	// without eviction the barrier would hold at its watermark and Run
	// would never return.
	p1 := stream.NewProducer(1, m.Intake())
	p1.Open(7, 500*time.Millisecond)
	p1.Open(8, 6*time.Second)
	p1.Close(8, 7*time.Second, sessRec(6*time.Second, 7*time.Second))
	p1.Flush()

	// The liveness layer declares input 1 dead, with a partial trailer
	// synthesized from what was actually applied.
	m.Intake() <- stream.Batch{Input: 1, Events: []stream.Event{{
		Kind: stream.EvEvict,
		Done: &stream.End{Nodes: 1},
	}}}

	tr := <-done
	if len(tr.Conns) != 3 {
		t.Fatalf("merged %d conns, want 3 (two healthy + one closed before death)", len(tr.Conns))
	}
	if m.DeadInputs() != 1 {
		t.Fatalf("DeadInputs = %d, want 1", m.DeadInputs())
	}
	if m.LostSessions() != 1 {
		t.Fatalf("LostSessions = %d, want 1 (session 7 was open at eviction)", m.LostSessions())
	}
	if tr.Nodes != 2 {
		t.Fatalf("Nodes = %d, want 2 (the dead vantage still existed)", tr.Nodes)
	}
	// The drained order is still the merged total order over what arrived.
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("post-eviction emission out of order: %v", order)
		}
	}
}

// TestMergerEvictAfterDoneIgnored: an eviction racing a completed input
// must be a no-op — remain must not go negative, nothing is counted lost.
func TestMergerEvictAfterDoneIgnored(t *testing.T) {
	m := stream.NewMerger(2, nil)
	done := make(chan *trace.Trace)
	go func() { done <- m.Run() }()

	p1 := stream.NewProducer(1, m.Intake())
	p1.Open(1, 1*time.Second)
	p1.Close(1, 2*time.Second, sessRec(1*time.Second, 2*time.Second))
	p1.Done(5*time.Second, &stream.End{Days: 1, Nodes: 1})

	// Late eviction for the already-finished input: dropped on the floor.
	m.Intake() <- stream.Batch{Input: 1, Events: []stream.Event{{Kind: stream.EvEvict}}}

	p0 := stream.NewProducer(0, m.Intake())
	p0.Open(1, 1*time.Second)
	p0.Close(1, 3*time.Second, sessRec(1*time.Second, 3*time.Second))
	p0.Done(5*time.Second, &stream.End{Days: 1, Nodes: 1})

	tr := <-done
	if m.DeadInputs() != 0 || m.LostSessions() != 0 {
		t.Fatalf("eviction after EvDone counted: dead=%d lost=%d", m.DeadInputs(), m.LostSessions())
	}
	if len(tr.Conns) != 2 || tr.Nodes != 2 {
		t.Fatalf("merged %d conns / %d nodes, want 2 / 2", len(tr.Conns), tr.Nodes)
	}
}

// TestMergeTracesStatsNoDeadInputs: the in-process merge can never lose
// an input, so its stats must report a clean ledger.
func TestMergeTracesStatsNoDeadInputs(t *testing.T) {
	traces := fleetTraces(t, 17, 1, 2)
	_, ms := stream.MergeTracesStats(traces...)
	if ms.DeadInputs != 0 || ms.LostSessions != 0 {
		t.Fatalf("in-process merge reported losses: %+v", ms)
	}
}
