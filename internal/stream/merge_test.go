package stream_test

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/stream"
	"repro/internal/trace"
)

func fleetTraces(t *testing.T, seed uint64, days, nodes int) []*trace.Trace {
	t.Helper()
	cfg := capture.DefaultConfig(seed, 0.01)
	cfg.Workload.Days = days
	f := capture.NewFleet(capture.FleetConfig{Node: cfg, Nodes: nodes})
	f.Run()
	return f.NodeTraces()
}

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeTracesMatchesBatchMerge is the subsystem's core identity pin:
// feeding per-node traces through the streaming k-way merge must
// reproduce batch trace.Merge byte for byte.
func TestMergeTracesMatchesBatchMerge(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		traces := fleetTraces(t, 2004, 2, nodes)
		want := traceBytes(t, trace.Merge(traces...))
		got := traceBytes(t, stream.MergeTraces(traces...))
		if !bytes.Equal(want, got) {
			t.Fatalf("nodes=%d: streaming merge differs from batch trace.Merge", nodes)
		}
	}
}

// TestMergeTracesOrderIndependent mirrors the batch merge's
// order-independence contract on the streaming path.
func TestMergeTracesOrderIndependent(t *testing.T) {
	traces := fleetTraces(t, 7, 2, 3)
	want := traceBytes(t, stream.MergeTraces(traces[0], traces[1], traces[2]))
	got := traceBytes(t, stream.MergeTraces(traces[2], traces[0], traces[1]))
	if !bytes.Equal(want, got) {
		t.Fatal("streaming merge depends on input order")
	}
}

// TestMergeTracesDedup: the same trace presented twice collapses to one
// copy with the per-session query records deducted, exactly as batch
// Merge does.
func TestMergeTracesDedup(t *testing.T) {
	traces := fleetTraces(t, 11, 1, 2)
	want := traceBytes(t, trace.Merge(traces[0], traces[0], traces[1]))
	got := traceBytes(t, stream.MergeTraces(traces[0], traces[0], traces[1]))
	if !bytes.Equal(want, got) {
		t.Fatal("duplicate handling differs from batch merge")
	}
	m := stream.MergeTraces(traces[0], traces[0])
	if uint64(len(m.Queries)) != m.Counts.QueryHop1 {
		t.Fatalf("len(Queries)=%d != Counts.QueryHop1=%d after dedup", len(m.Queries), m.Counts.QueryHop1)
	}
	if len(m.Conns) != len(traces[0].Conns) {
		t.Fatalf("dedup kept %d conns, want %d", len(m.Conns), len(traces[0].Conns))
	}
}

// TestMergeTracesUnequalSpans: one empty input and one short-span input
// alongside a long one — exhausted inputs must release the barrier (their
// trailers are fed the moment their sessions run out), and the output
// must still equal the batch merge.
func TestMergeTracesUnequalSpans(t *testing.T) {
	long := fleetTraces(t, 3, 2, 1)[0]
	short := fleetTraces(t, 5, 1, 1)[0]
	empty := &trace.Trace{Days: 1, Nodes: 1, PongSampleRate: 0.1, HitSampleRate: 0.1}
	want := traceBytes(t, trace.Merge(long, short, empty))
	got := traceBytes(t, stream.MergeTraces(long, short, empty))
	if !bytes.Equal(want, got) {
		t.Fatal("unequal-span merge differs from batch trace.Merge")
	}
}

// TestMergeTracesEmpty matches the batch merge's empty-input behavior.
func TestMergeTracesEmpty(t *testing.T) {
	if got := stream.MergeTraces(); got.Nodes != 0 || len(got.Conns) != 0 {
		t.Fatalf("empty merge: %+v", got)
	}
}

// replayAsStream plays a trace's sessions through a producer the way a
// live vantage would: opens at Start in arrival order, closes at End in
// end order — with closes genuinely out of arrival order — plus pongs,
// hits and the trailer.
func replayAsStream(tr *trace.Trace, p *stream.Producer, horizon trace.Time) {
	byConn := tr.QueriesPerConn()
	type ev struct {
		at   trace.Time
		open bool
		idx  int
	}
	var evs []ev
	for i := range tr.Conns {
		evs = append(evs, ev{at: tr.Conns[i].Start, open: true, idx: i})
		evs = append(evs, ev{at: tr.Conns[i].End, idx: i})
	}
	// Sort by time, opens before closes at equal times so an open always
	// precedes its own close; stable keeps equal-start opens in arrival
	// order, matching a live vantage.
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		return evs[a].open && !evs[b].open
	})
	for _, e := range evs {
		c := tr.Conns[e.idx]
		if e.open {
			p.Open(c.ID, c.Start)
			continue
		}
		rec := &stream.SessionRecord{Conn: c}
		for _, q := range byConn[e.idx] {
			rec.Queries = append(rec.Queries, *q)
		}
		p.Close(c.ID, c.End, rec)
	}
	for _, pg := range tr.Pongs {
		p.Pong(pg)
	}
	for _, h := range tr.Hits {
		p.Hit(h)
	}
	p.Done(horizon, &stream.End{
		Counts: tr.Counts, Seed: tr.Seed, Scale: tr.Scale, Days: tr.Days,
		Nodes: tr.Nodes, PongSampleRate: tr.PongSampleRate, HitSampleRate: tr.HitSampleRate,
	})
}

// TestMergerLiveStreamsMatchBatch drives the merger the way the engine
// does — concurrent producer goroutines emitting opens and out-of-order
// closes into the shared intake — and requires the drained trace to equal
// batch trace.Merge.
func TestMergerLiveStreamsMatchBatch(t *testing.T) {
	traces := fleetTraces(t, 5, 2, 3)
	want := traceBytes(t, trace.Merge(traces...))
	horizon := 2 * 24 * time.Hour

	m := stream.NewMerger(len(traces), nil)
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			replayAsStream(tr, stream.NewProducer(i, m.Intake()), horizon)
		}(i, tr)
	}
	got := traceBytes(t, m.Run())
	wg.Wait()
	if !bytes.Equal(want, got) {
		t.Fatal("live-stream merge differs from batch trace.Merge")
	}
	if m.Emitted() != uint64(len(trace.Merge(traces...).Conns)) {
		t.Fatalf("Emitted() = %d, want %d", m.Emitted(), len(trace.Merge(traces...).Conns))
	}
}

// TestMergerIncrementalEmission: with one long-lived session holding the
// barrier, later-starting completed sessions must wait; once it closes
// they retire. This pins the barrier logic the memory contract depends
// on (sessions retire as soon as legal, not at end of stream).
func TestMergerIncrementalEmission(t *testing.T) {
	var order []uint64
	sink := sinkFunc(func(c *trace.Conn, _ []trace.Query) { order = append(order, uint64(c.Start/time.Second)) })
	m := stream.NewMerger(1, sink)
	p := stream.NewProducer(0, m.Intake())

	done := make(chan *trace.Trace)
	go func() { done <- m.Run() }()

	mk := func(start, end trace.Time) *stream.SessionRecord {
		return &stream.SessionRecord{Conn: trace.Conn{Start: start, End: end}}
	}
	// Session A opens at 1s and stays open; B (5s..10s) and C (7s..12s)
	// close — but may not retire while A is open.
	p.Open(1, 1*time.Second)
	p.Open(2, 5*time.Second)
	p.Open(3, 7*time.Second)
	p.Close(2, 10*time.Second, mk(5*time.Second, 10*time.Second))
	p.Close(3, 12*time.Second, mk(7*time.Second, 12*time.Second))
	p.Flush()
	// Nothing can be asserted synchronously about the merger goroutine's
	// progress except through the deterministic final order; emitting A's
	// close unblocks everything in (A, B, C) start order.
	p.Close(1, 20*time.Second, mk(1*time.Second, 20*time.Second))
	p.Done(21*time.Second, &stream.End{Days: 1})
	tr := <-done

	if len(tr.Conns) != 3 {
		t.Fatalf("merged %d conns, want 3", len(tr.Conns))
	}
	wantOrder := []uint64{1, 5, 7}
	for i, w := range wantOrder {
		if order[i] != w {
			t.Fatalf("emission order %v, want %v", order, wantOrder)
		}
	}
	if m.PeakPending() < 2 {
		t.Fatalf("PeakPending = %d, want ≥ 2 (B and C held behind A)", m.PeakPending())
	}
}

type sinkFunc func(c *trace.Conn, qs []trace.Query)

func (f sinkFunc) MergedSession(c *trace.Conn, qs []trace.Query) { f(c, qs) }

// TestMergerSinkSeesMergedOrder: the sink must observe sessions in
// exactly the merged trace's connection order with final IDs.
func TestMergerSinkSeesMergedOrder(t *testing.T) {
	traces := fleetTraces(t, 13, 1, 2)
	var ids []uint64
	var starts []trace.Time
	sink := sinkFunc(func(c *trace.Conn, _ []trace.Query) {
		ids = append(ids, c.ID)
		starts = append(starts, c.Start)
	})
	m := stream.NewMerger(len(traces), sink)
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			replayAsStream(tr, stream.NewProducer(i, m.Intake()), 24*time.Hour)
		}(i, tr)
	}
	merged := m.Run()
	wg.Wait()
	if len(ids) != len(merged.Conns) {
		t.Fatalf("sink saw %d sessions, merged trace has %d", len(ids), len(merged.Conns))
	}
	for i := range ids {
		if ids[i] != uint64(i) {
			t.Fatalf("sink id %d at position %d", ids[i], i)
		}
		if starts[i] != merged.Conns[i].Start {
			t.Fatalf("sink start %v at %d, trace has %v", starts[i], i, merged.Conns[i].Start)
		}
	}
}

// FuzzMergeAgainstBatch cross-checks the streaming merge against batch
// trace.Merge on tiny synthetic traces with adversarial overlap: equal
// starts, duplicate sessions, interleaved queries.
func FuzzMergeAgainstBatch(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(8))
	f.Add(uint64(42), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, conns uint8) {
		k := int(nodes)%4 + 1
		n := int(conns) % 16
		rng := rand.New(rand.NewPCG(seed, 99))
		traces := make([]*trace.Trace, k)
		for i := range traces {
			tr := &trace.Trace{Days: 1, Nodes: 1, PongSampleRate: 1, HitSampleRate: 1}
			for c := 0; c < n; c++ {
				start := trace.Time(rng.IntN(10)) * time.Second
				end := start + trace.Time(rng.IntN(10)+1)*time.Second
				id := uint64(len(tr.Conns))
				tr.Conns = append(tr.Conns, trace.Conn{ID: id, Start: start, End: end})
				for q := 0; q < rng.IntN(3); q++ {
					tr.Queries = append(tr.Queries, trace.Query{
						ConnID: id,
						At:     start + trace.Time(rng.IntN(5))*time.Second,
						Text:   string(rune('a' + rng.IntN(3))),
						Hops:   1,
					})
					tr.Counts.Query++
					tr.Counts.QueryHop1++
				}
			}
			traces[i] = tr
		}
		want := traceBytes(t, trace.Merge(traces...))
		got := traceBytes(t, stream.MergeTraces(traces...))
		if !bytes.Equal(want, got) {
			t.Fatal("streaming merge differs from batch merge")
		}
	})
}

// windowTestTrace builds the window regression workload: one trace-long
// session opening at the epoch and closing just before the horizon, with
// queries, plus shortCount one-second sessions marching across the span.
func windowTestTrace(shortCount int) *trace.Trace {
	tr := &trace.Trace{Days: 1, Nodes: 1, PongSampleRate: 1, HitSampleRate: 1}
	long := trace.Conn{ID: 0, Start: 0, End: trace.Time(shortCount+500) * time.Second}
	tr.Conns = append(tr.Conns, long)
	tr.Queries = append(tr.Queries, trace.Query{ConnID: 0, At: 30 * time.Second, Text: "warez", Hops: 1})
	tr.Counts.Query++
	tr.Counts.QueryHop1++
	for i := 1; i <= shortCount; i++ {
		id := uint64(i)
		start := trace.Time(i) * time.Second
		tr.Conns = append(tr.Conns, trace.Conn{ID: id, Start: start, End: start + time.Second})
		if i%7 == 0 {
			tr.Queries = append(tr.Queries, trace.Query{ConnID: id, At: start, Text: "mp3", Hops: 1})
			tr.Counts.Query++
			tr.Counts.QueryHop1++
		}
	}
	return tr
}

// TestMergerWindowBoundsPending is the satellite regression for the
// unbounded-pending hole: one trace-long session used to hold every
// later-starting completed session behind the barrier for the whole run.
// With an emission window the merger classifies the long session an
// outlier, keeps the barrier moving, and still drains byte-identical to
// batch trace.Merge.
func TestMergerWindowBoundsPending(t *testing.T) {
	const shorts = 500
	tr := windowTestTrace(shorts)
	horizon := trace.Time(shorts+501) * time.Second
	want := traceBytes(t, trace.Merge(tr))

	run := func(window trace.Time) *stream.Merger {
		m := stream.NewMerger(1, nil)
		m.SetWindow(window)
		done := make(chan *trace.Trace)
		go func() { done <- m.Run() }()
		replayAsStream(tr, stream.NewProducer(0, m.Intake()), horizon)
		got := <-done
		if !bytes.Equal(want, traceBytes(t, got)) {
			t.Fatalf("window=%v: drained trace differs from batch trace.Merge", window)
		}
		return m
	}

	unbounded := run(0)
	if unbounded.PeakPending() < shorts*4/5 {
		t.Fatalf("unwindowed PeakPending = %d — the long session no longer holds the barrier, test premise broken", unbounded.PeakPending())
	}
	if unbounded.Spilled() != 0 {
		t.Fatalf("unwindowed merge spilled %d sessions", unbounded.Spilled())
	}

	// The bound is the producer's batch granularity (256 events ≈ 128
	// sessions land between barrier recomputations) plus the ~10 sessions
	// a 10 s window legitimately holds — independent of the trace length,
	// unlike the unwindowed run whose peak grows with every short session.
	windowed := run(10 * time.Second)
	if windowed.PeakPending() > 200 {
		t.Fatalf("windowed PeakPending = %d, want bounded (≤ 200) — emission window not holding", windowed.PeakPending())
	}
	if windowed.Spilled() != 1 {
		t.Fatalf("windowed merge spilled %d sessions, want exactly the trace-long one", windowed.Spilled())
	}
}

// TestMergerTinyWindowMatchesBatch forces the spill path hard: a window
// shorter than most real sessions diverts a large share of the fleet's
// sessions to the outlier fold, which must still reproduce batch
// trace.Merge byte for byte under concurrent producers.
func TestMergerTinyWindowMatchesBatch(t *testing.T) {
	traces := fleetTraces(t, 17, 1, 3)
	want := traceBytes(t, trace.Merge(traces...))
	m := stream.NewMerger(len(traces), nil)
	m.SetWindow(time.Second)
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			replayAsStream(tr, stream.NewProducer(i, m.Intake()), 24*time.Hour)
		}(i, tr)
	}
	got := traceBytes(t, m.Run())
	wg.Wait()
	if !bytes.Equal(want, got) {
		t.Fatal("tiny-window merge differs from batch trace.Merge")
	}
	if m.Spilled() == 0 {
		t.Fatal("1s window spilled nothing — spill path not exercised")
	}
}
