package stream_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/stream"
	"repro/internal/trace"
)

// benchTraces simulates one 4-node fleet per benchmark binary.
var (
	benchOnce   sync.Once
	benchTraces []*trace.Trace
)

func benchFleetTraces(b *testing.B) []*trace.Trace {
	b.Helper()
	benchOnce.Do(func() {
		cfg := capture.DefaultConfig(2004, 0.02)
		cfg.Workload.Days = 2
		benchTraces = capture.NewFleet(capture.FleetConfig{Node: cfg, Nodes: 4}).NodeTraces()
	})
	return benchTraces
}

// BenchmarkStreamMergeTraces measures the streaming k-way merge on the
// same workload BenchmarkTraceMerge (internal/capture) feeds the batch
// merge — the pair quantifies what the engine's production merge path
// costs relative to the sort-based reference.
func BenchmarkStreamMergeTraces(b *testing.B) {
	nodes := benchFleetTraces(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := stream.MergeTraces(nodes...)
		if len(m.Conns) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkTopKAdd measures the Space-Saving hot path at full eviction
// pressure (distinct keys ≫ capacity).
func BenchmarkTopKAdd(b *testing.B) {
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("keyword set %d", i)
	}
	tk := stream.NewTopK(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(keys[i%len(keys)])
	}
}

// BenchmarkQuantileAdd measures GK ingestion (amortized over the sorted
// buffer merges).
func BenchmarkQuantileAdd(b *testing.B) {
	q := stream.NewQuantile(0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Add(float64(i%100000) * 0.37)
	}
}

// BenchmarkOnlineSession measures the whole per-session online cost:
// duration sketch, interarrival sketch, top-K and both rate windows.
func BenchmarkOnlineSession(b *testing.B) {
	o := stream.NewOnline(stream.OnlineConfig{})
	qs := []trace.Query{
		{At: 10 * time.Second, Text: "metallica one"},
		{At: 70 * time.Second, Text: "zeppelin four"},
		{At: 400 * time.Second, Text: "metallica one"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Duration(i) * time.Second
		c := trace.Conn{Start: start, End: start + 500*time.Second}
		o.MergedSession(&c, qs)
	}
}
