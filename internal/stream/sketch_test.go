package stream

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestTopKExactWithinCapacity: while distinct keys fit the capacity the
// sketch is a plain exact counter.
func TestTopKExactWithinCapacity(t *testing.T) {
	tk := NewTopK(64)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", rng.IntN(50))
		tk.Add(k)
		truth[k]++
	}
	if !tk.Exact() {
		t.Fatal("sketch with spare capacity reports inexact")
	}
	if tk.ErrBound() != 0 {
		t.Fatalf("ErrBound = %d, want 0", tk.ErrBound())
	}
	for _, e := range tk.Top(50) {
		if truth[e.Key] != e.Count {
			t.Fatalf("key %s: count %d, want %d", e.Key, e.Count, truth[e.Key])
		}
	}
}

// TestTopKHeavyHittersBeyondCapacity: with a skewed stream overflowing
// the capacity, every true heavy hitter must be present and each reported
// count must bracket the truth within Err (the Space-Saving guarantee).
func TestTopKHeavyHittersBeyondCapacity(t *testing.T) {
	const capacity = 32
	tk := NewTopK(capacity)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewPCG(7, 9))
	// Zipf-ish skew over 1000 distinct keys.
	zipf := rand.NewZipf(rng, 1.3, 1, 999)
	var n uint64
	for i := 0; i < 200000; i++ {
		k := fmt.Sprintf("key-%d", zipf.Uint64())
		tk.Add(k)
		truth[k]++
		n++
	}
	if tk.Exact() {
		t.Fatal("overflowed sketch claims exactness")
	}
	if b := tk.ErrBound(); b > n/capacity {
		t.Fatalf("ErrBound %d exceeds N/m = %d", b, n/capacity)
	}
	// Every key with true count > N/m must be present.
	reported := map[string]TopKEntry{}
	for _, e := range tk.Top(capacity) {
		reported[e.Key] = e
	}
	for k, c := range truth {
		if c > n/capacity {
			e, ok := reported[k]
			if !ok {
				t.Fatalf("heavy hitter %s (count %d > %d) missing", k, c, n/capacity)
			}
			if e.Count < c || e.Count-e.Err > c {
				t.Fatalf("key %s: reported %d (err %d) does not bracket true %d", k, e.Count, e.Err, c)
			}
		}
	}
}

// TestTopKDeterministic: same stream, same ranking.
func TestTopKDeterministic(t *testing.T) {
	build := func() []TopKEntry {
		tk := NewTopK(16)
		rng := rand.New(rand.NewPCG(3, 4))
		for i := 0; i < 50000; i++ {
			tk.Add(fmt.Sprintf("key-%d", rng.IntN(200)))
		}
		return tk.Top(16)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("rankings differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// rankOf returns the number of sorted values ≤ v.
func rankOf(sorted []float64, v float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
}

// TestQuantileRankGuarantee pins the GK contract on several input shapes:
// the returned value's rank must be within ε·n (+1 for boundary effects)
// of the target rank.
func TestQuantileRankGuarantee(t *testing.T) {
	const n = 200000
	shapes := map[string]func(r *rand.Rand, i int) float64{
		"uniform":   func(r *rand.Rand, _ int) float64 { return r.Float64() },
		"lognormal": func(r *rand.Rand, _ int) float64 { return math.Exp(2 + 1.5*r.NormFloat64()) },
		"sorted":    func(_ *rand.Rand, i int) float64 { return float64(i) },
		"reversed":  func(_ *rand.Rand, i int) float64 { return float64(n - i) },
		"constant":  func(_ *rand.Rand, _ int) float64 { return 42 },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			const eps = 0.005
			q := NewQuantile(eps)
			rng := rand.New(rand.NewPCG(11, 13))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(rng, i)
				q.Add(xs[i])
			}
			sort.Float64s(xs)
			for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				got := q.Query(phi)
				r := rankOf(xs, got)
				lo := rankOf(xs, math.Nextafter(got, math.Inf(-1)))
				target := phi * n
				slack := eps*n + 1
				// The value covers ranks (lo, r]; the guarantee holds if
				// that band comes within slack of the target.
				if float64(lo) > target+slack || float64(r) < target-slack {
					t.Errorf("phi=%.2f: value %g covers ranks (%d,%d], target %.0f ± %.0f",
						phi, got, lo, r, target, slack)
				}
			}
			if q.Min() != xs[0] || q.Max() != xs[n-1] {
				t.Errorf("extremes: got (%g,%g), want (%g,%g)", q.Min(), q.Max(), xs[0], xs[n-1])
			}
		})
	}
}

// TestQuantileBoundedSize: the summary must stay orders of magnitude
// below the stream length.
func TestQuantileBoundedSize(t *testing.T) {
	q := NewQuantile(0.001)
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 500000
	for i := 0; i < n; i++ {
		q.Add(rng.ExpFloat64())
	}
	if s := q.Size(); s > n/20 {
		t.Fatalf("summary holds %d tuples for %d observations — not bounded", s, n)
	}
}

// TestQuantileEmptyAndSmall covers the degenerate cases.
func TestQuantileEmptyAndSmall(t *testing.T) {
	q := NewQuantile(0.01)
	if !math.IsNaN(q.Query(0.5)) {
		t.Fatal("empty summary should answer NaN")
	}
	q.Add(3)
	if got := q.Query(0.5); got != 3 {
		t.Fatalf("single-value median = %g, want 3", got)
	}
	q.Add(1)
	q.Add(2)
	if got := q.Query(0); got != 1 {
		t.Fatalf("phi=0 = %g, want exact min 1", got)
	}
	if got := q.Query(1); got != 3 {
		t.Fatalf("phi=1 = %g, want exact max 3", got)
	}
}

// TestRateWindow: counts slide out of the window as the leading edge
// advances, and the lifetime total survives.
func TestRateWindow(t *testing.T) {
	w := NewRateWindow(time.Minute, 10) // 10-minute window
	for i := 0; i < 60; i++ {
		w.Add(time.Duration(i) * 30 * time.Second) // one every 30 s for 30 min
	}
	if w.Total() != 60 {
		t.Fatalf("Total = %d, want 60", w.Total())
	}
	if got := w.InWindow(); got != 20 {
		t.Fatalf("InWindow = %d, want 20 (2/min × 10 min)", got)
	}
	if got := w.PerHour(); math.Abs(got-120) > 1e-9 {
		t.Fatalf("PerHour = %g, want 120", got)
	}
	// A far jump resets the window but not the total.
	w.Add(5 * time.Hour)
	if w.InWindow() != 1 || w.Total() != 61 {
		t.Fatalf("after jump: InWindow=%d Total=%d, want 1, 61", w.InWindow(), w.Total())
	}
	// An event older than the window counts toward the total only.
	w.Add(time.Hour)
	if w.InWindow() != 1 || w.Total() != 62 {
		t.Fatalf("stale add: InWindow=%d Total=%d, want 1, 62", w.InWindow(), w.Total())
	}
	if w.PeakInWindow() < 20 {
		t.Fatalf("PeakInWindow = %d, want ≥ 20", w.PeakInWindow())
	}
}
