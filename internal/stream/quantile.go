package stream

import (
	"math"
	"sort"
)

// DefaultQuantileEpsilon is the rank-error bound of the online quantile
// summaries: a query for the φ-quantile returns a value whose rank is
// within ε·n of φ·n. At the full-scale run's 4.36 M sessions that is a
// rank window of ±4.4 k observations — far below the resolution of any
// figure in the paper.
const DefaultQuantileEpsilon = 0.001

// Quantile is a Greenwald–Khanna ε-approximate quantile summary
// (GK 2001): a bounded-size ordered list of (value, g, Δ) tuples whose
// size grows with O((1/ε)·log(εn)), not with n. Inserts are buffered and
// merged in sorted batches — one linear merge-and-compress pass per
// buffer — which keeps full-scale ingestion cheap without weakening the
// deterministic ε·n rank guarantee (pinned by test against exact
// order statistics).
//
// The zero value is not ready; use NewQuantile. Not safe for concurrent
// use.
type Quantile struct {
	eps float64
	n   uint64
	sum []gkTuple // sorted by v
	buf []float64
	// min/max are tracked exactly: the stream's extremes are free.
	min, max float64
}

// gkTuple covers a band of ranks: g is the rank gap to the previous
// tuple's minimum rank, Δ the extra rank uncertainty.
type gkTuple struct {
	v   float64
	g   uint64
	del uint64
}

// NewQuantile builds a summary with rank error ε (0 < ε < 1); ε ≤ 0
// selects DefaultQuantileEpsilon.
func NewQuantile(eps float64) *Quantile {
	if eps <= 0 || eps >= 1 {
		eps = DefaultQuantileEpsilon
	}
	bufCap := int(1 / (2 * eps))
	if bufCap < 64 {
		bufCap = 64
	}
	return &Quantile{
		eps: eps,
		buf: make([]float64, 0, bufCap),
		min: math.Inf(1),
		max: math.Inf(-1),
	}
}

// Add inserts one observation.
func (q *Quantile) Add(v float64) {
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	q.buf = append(q.buf, v)
	if len(q.buf) == cap(q.buf) {
		q.flush()
	}
}

// N returns the number of observations.
func (q *Quantile) N() uint64 { return q.n + uint64(len(q.buf)) }

// Epsilon returns the summary's rank-error bound.
func (q *Quantile) Epsilon() float64 { return q.eps }

// Size returns the number of summary tuples currently held (the bounded
// state the memory contract is about).
func (q *Quantile) Size() int {
	q.flush()
	return len(q.sum)
}

// Min and Max return the exact extremes (NaN when empty).
func (q *Quantile) Min() float64 {
	if q.N() == 0 {
		return math.NaN()
	}
	return q.min
}

// Max returns the exact maximum.
func (q *Quantile) Max() float64 {
	if q.N() == 0 {
		return math.NaN()
	}
	return q.max
}

// Query returns a value whose rank is within ε·n of φ·n (NaN when
// empty). φ outside [0,1] is clamped.
func (q *Quantile) Query(phi float64) float64 {
	q.flush()
	if q.n == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return q.min
	}
	if phi >= 1 {
		return q.max
	}
	target := phi * float64(q.n)
	slack := q.eps * float64(q.n)
	var acc uint64
	for i := range q.sum {
		acc += q.sum[i].g
		if float64(acc)+float64(q.sum[i].del) > target+slack {
			if i == 0 {
				return q.sum[0].v
			}
			return q.sum[i-1].v
		}
	}
	return q.sum[len(q.sum)-1].v
}

// flush merges the sorted buffer into the summary in one linear pass and
// compresses against the invariant g + Δ ≤ 2εn.
func (q *Quantile) flush() {
	if len(q.buf) == 0 {
		return
	}
	sort.Float64s(q.buf)
	q.n += uint64(len(q.buf))
	threshold := uint64(2 * q.eps * float64(q.n))
	if threshold < 1 {
		threshold = 1
	}

	merged := make([]gkTuple, 0, len(q.sum)+len(q.buf))
	i, j := 0, 0
	for i < len(q.sum) || j < len(q.buf) {
		if j >= len(q.buf) || (i < len(q.sum) && q.sum[i].v <= q.buf[j]) {
			merged = append(merged, q.sum[i])
			i++
			continue
		}
		// New observation: at the extremes its rank is known exactly
		// (Δ = 0); in the interior it may sit anywhere within the
		// enclosing band (Δ = threshold-1, the GK insertion rule).
		var del uint64
		if i > 0 && i < len(q.sum) && threshold > 0 {
			del = threshold - 1
		}
		merged = append(merged, gkTuple{v: q.buf[j], g: 1, del: del})
		j++
	}
	q.buf = q.buf[:0]

	// Compress: fold a tuple into its successor whenever the combined
	// band still fits the invariant. The first and last tuples always
	// survive, so the summary's end values remain the global extremes —
	// which is what lets a batch value sorting before (after) the whole
	// summary be inserted with Δ = 0 as a new exact minimum (maximum).
	out := merged[:0]
	for k := 0; k < len(merged); k++ {
		t := merged[k]
		if k > 0 {
			for k+1 < len(merged) && t.g+merged[k+1].g+merged[k+1].del < threshold {
				next := merged[k+1]
				next.g += t.g
				t = next
				k++
			}
		}
		out = append(out, t)
	}
	q.sum = out
}
