// Package stream is the streaming counterpart of the batch measurement
// pipeline: a typed, backpressured event stream that vantage nodes emit
// into as they simulate (or as a live daemon ingests wire traffic), a
// k-way online merge that unions per-node streams into the global
// time-ordered deduplicated order incrementally, and an online
// characterization layer of bounded-memory sketches — Space-Saving top-K
// keyword ranking, Greenwald–Khanna quantile summaries, sliding-window
// arrival and query rates.
//
// # Why a stream layer
//
// The batch path materializes every per-node trace plus the merged trace
// in RAM before characterization starts; at paper scale that is the
// simulate phase's multi-gigabyte peak. The paper itself, and the
// continuous-capture systems in the related literature (distributed
// eDonkey honeypots, the ten-week eDonkey server capture), observe a live
// query stream and must characterize it as it arrives with bounded state.
// This package is that mode: producers emit session open / close, query,
// pong and hit records into bounded channels; the merge consumes them
// incrementally and retires each session record into its final merged
// position the moment no earlier-keyed record can still appear; the
// online layer answers "what does the stream look like right now" from
// sketches whose size does not grow with the stream.
//
// # Contracts
//
//   - Merge order: draining a Merger to completion yields a trace
//     byte-identical to trace.Merge over the same per-node traces (pinned
//     by test). The emission order of sessions — and therefore everything
//     an Online sink computes — is deterministic, independent of how the
//     producer goroutines interleave.
//   - Bounded memory: a producer blocked on a full channel stops
//     simulating (backpressure); the merger holds only in-flight sessions,
//     plus completed sessions not yet past the emission barrier.
//   - Sketch accuracy: TopK is exact while the distinct-key count fits its
//     capacity and ε-bounded beyond it (ErrBound reports the bound);
//     Quantile answers every query within rank error ε·n (default
//     ε = 0.001). Both bounds are pinned by test.
package stream

import (
	"repro/internal/trace"
)

// Kind discriminates stream events.
type Kind uint8

// Event kinds.
const (
	// EvOpen announces a session arrival: ID is the producer-local
	// connection id, Time the handshake completion (= trace.Conn.Start).
	// The merge needs opens to bound emission: a completed session may
	// retire only once no still-open or future session can precede it.
	EvOpen Kind = iota
	// EvClose carries the completed session record (connection plus its
	// full hop-1 query list); Time is the observed session end.
	EvClose
	// EvPong carries one shared-library report.
	EvPong
	// EvHit carries one QUERYHIT observation.
	EvHit
	// EvDone is the producer's final event: aggregate message counts and
	// trace metadata. Exactly one per input, after which the input's
	// channel closes.
	EvDone
	// EvEvict declares the input dead without a trailer: a liveness layer
	// (internal/ingest's collector) injects it when an input's watermark
	// has stopped advancing for longer than its timeout, so the merge
	// degrades gracefully instead of stalling the emission barrier
	// forever. The merger removes the input from the barrier, counts its
	// still-open sessions as lost (LostSessions), counts the input dead
	// (DeadInputs), and folds the event's optional partial trailer —
	// everything already closed stays in the merged trace. After an
	// eviction the drained trace is exactly the merge of what was
	// received; what is missing is reported, never silently absorbed.
	EvEvict
)

// SessionRecord is one completed connection with its query stream, the
// unit of the merge's total order. Conn.ID and the queries' ConnID are
// producer-local and ignored by the merge, which assigns fresh dense IDs
// in merged order (exactly as trace.Merge does).
type SessionRecord struct {
	Conn    trace.Conn
	Queries []trace.Query
}

// End carries a producer's stream trailer: the aggregate counters and
// trace metadata the merged trace needs (the per-input equivalents of
// what trace.Merge reads off whole traces).
type End struct {
	Counts trace.MessageCounts
	Seed   uint64
	Scale  float64
	Days   int
	// Nodes is how many vantage points this input itself represents: 1
	// (or 0, which means 1) for a per-node stream, N when a whole merged
	// trace is replayed as one input.
	Nodes          int
	PongSampleRate float64
	HitSampleRate  float64
}

// Event is one element of a producer's stream.
type Event struct {
	Kind Kind
	// ID is the producer-local connection id (EvOpen/EvClose).
	ID uint64
	// Time is the event instant, and doubles as the input's watermark:
	// producers emit in nondecreasing Time order, so after seeing Time = t
	// the merge knows input arrivals before t are complete.
	Time trace.Time
	// Sess is the completed record (EvClose).
	Sess *SessionRecord
	// Pong and Hit are record payloads for their kinds.
	Pong trace.Pong
	Hit  trace.Hit
	// Done is the stream trailer (EvDone).
	Done *End
}

// Batch is a run of events from one input, in emission order. Events
// travel in batches to amortize channel synchronization across the
// millions of records of a full-scale run.
type Batch struct {
	Input  int
	Events []Event
}

// batchSize is the producer-side slab length. 256 events ≈ 30 KB per
// slab: large enough that channel operations vanish from profiles, small
// enough that per-input buffering stays in cache.
const batchSize = 256

// Producer accumulates one input's events and ships them to the merger's
// shared intake in slabs. Not safe for concurrent use: each producer
// belongs to exactly one goroutine (one vantage node's event loop).
type Producer struct {
	input int
	out   chan<- Batch
	buf   []Event
}

// NewProducer builds the producer for input (one of the merger's k
// declared inputs). All producers of one merger share its intake channel;
// per-producer order is preserved because each producer is single-
// threaded and channel sends are FIFO per sender.
func NewProducer(input int, out chan<- Batch) *Producer {
	return &Producer{input: input, out: out, buf: make([]Event, 0, batchSize)}
}

// Emit appends one event, flushing the batch when full. A full intake
// channel blocks here — that is the backpressure that bounds how far a
// fast producer can run ahead of the merge.
func (p *Producer) Emit(ev Event) {
	p.buf = append(p.buf, ev)
	if len(p.buf) == batchSize {
		p.Flush()
	}
}

// Open emits a session-arrival announcement.
func (p *Producer) Open(id uint64, at trace.Time) {
	p.Emit(Event{Kind: EvOpen, ID: id, Time: at})
}

// Close emits a completed session record.
func (p *Producer) Close(id uint64, at trace.Time, rec *SessionRecord) {
	p.Emit(Event{Kind: EvClose, ID: id, Time: at, Sess: rec})
}

// Pong emits a shared-library report.
func (p *Producer) Pong(rec trace.Pong) {
	p.Emit(Event{Kind: EvPong, ID: 0, Time: rec.At, Pong: rec})
}

// Hit emits a QUERYHIT observation.
func (p *Producer) Hit(rec trace.Hit) {
	p.Emit(Event{Kind: EvHit, ID: 0, Time: rec.At, Hit: rec})
}

// Done emits the stream trailer and flushes. The producer must not be
// used afterwards.
func (p *Producer) Done(at trace.Time, end *End) {
	p.Emit(Event{Kind: EvDone, Time: at, Done: end})
	p.Flush()
}

// Flush ships the buffered events.
func (p *Producer) Flush() {
	if len(p.buf) == 0 {
		return
	}
	p.out <- Batch{Input: p.input, Events: p.buf}
	p.buf = make([]Event, 0, batchSize)
}
