package stream_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// TestOnlineConcurrentScrapes hammers one Online from three directions at
// once — merged-session ingestion, direct wire-level query observation,
// and metrics scrapes — the exact concurrency shape of a gnutellad or
// ingest collector serving /metrics while traffic arrives. Run under
// -race in CI; the final counters must also be exact.
func TestOnlineConcurrentScrapes(t *testing.T) {
	o := stream.NewOnline(stream.OnlineConfig{})
	const (
		writers  = 4
		sessions = 200
		scrapers = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < sessions; i++ {
				at := time.Duration(w*sessions+i) * time.Second
				o.MergedSession(&trace.Conn{Start: at, End: at + 30*time.Second}, []trace.Query{
					{At: at, Text: "concurrent scrape"},
					{At: at + time.Second, Text: "concurrent scrape"},
				})
				o.ObserveQuery(at, "live wire query", false)
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := o.Snapshot(5)
				if snap.Queries < snap.Sessions {
					t.Error("snapshot saw fewer queries than sessions")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	final := o.Snapshot(5)
	if final.Sessions != writers*sessions {
		t.Fatalf("Sessions = %d, want %d", final.Sessions, writers*sessions)
	}
	if want := uint64(writers * sessions * 3); final.Queries != want {
		t.Fatalf("Queries = %d, want %d", final.Queries, want)
	}
	if final.Under64Fraction != 1 {
		t.Fatalf("Under64Fraction = %v, want 1 (every session lasted 30s)", final.Under64Fraction)
	}
}
