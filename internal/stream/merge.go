package stream

import (
	"container/heap"
	"sort"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Sink observes the merged stream as it retires: one call per merged
// session, in the final merged order, with the final dense connection ID
// already assigned. The online characterization layer implements Sink; a
// nil sink is allowed. Calls happen on the merger's goroutine.
//
// When an emission window is set (SetWindow), sessions whose duration
// exceeds the window are folded in at finish instead of inline: the sink
// observes them last, after every windowed session, rather than at their
// merged position. The drained trace is unaffected — the fold inserts
// them at their exact merged positions.
type Sink interface {
	MergedSession(c *trace.Conn, qs []trace.Query)
}

// Merger is the streaming k-way merge: it consumes the event streams of k
// producers and incrementally produces the union in the global
// deduplicated, time-ordered, densely re-identified order — the same
// total order batch trace.Merge sorts into, but emitted online. A session
// retires the moment the emission barrier passes it: no still-open
// session and no future arrival on any input can precede it in the merged
// order, because per-input arrivals come in start order (the watermark
// contract) and open sessions are announced before they complete.
//
// Draining a Merger to completion yields a trace byte-identical to
// trace.Merge over the same per-node traces (pinned by test), and the
// emission order — hence everything a Sink computes — is deterministic,
// independent of producer goroutine interleaving: ordering decisions are
// made by record keys and barriers, never by arrival timing.
type Merger struct {
	intake chan Batch
	inputs []inputState
	sink   Sink

	pending sessHeap
	last    *SessionRecord // previous emission, for adjacent-duplicate collapse

	// window, when > 0, bounds how long one open session may hold the
	// emission barrier: each input's barrier contribution is clamped to
	// at least watermark − window, and sessions whose duration exceeds
	// the window ("outliers") are diverted to spill instead of pending.
	// Any future non-outlier close has start ≥ its input's watermark −
	// window, so windowed emission stays in merged order; the outliers
	// are folded back into their exact merged positions at finish. 0
	// means unbounded (the barrier waits for the oldest open session,
	// however long it lives).
	window  trace.Time
	spill   []*SessionRecord
	spilled int

	out     *trace.Trace
	remain  int // inputs that have not sent EvDone yet
	emitted uint64
	// peakPending tracks the high-water mark of sessions completed but
	// held behind the barrier — the merge's own memory diagnostic.
	peakPending int
	// deadInputs and lostSessions are the degradation ledger: inputs
	// evicted by EvEvict, and the sessions those inputs had announced
	// (EvOpen) but never closed — known data loss, reported rather than
	// deadlocked on.
	deadInputs   int
	lostSessions uint64

	// om holds the merge's metric handles. Each is nil until SetObserver
	// installs a registry, and every method on a nil handle no-ops, so
	// the uninstrumented merge pays one nil check per update site.
	om mergerMetrics
}

// mergerMetrics is the merge's metric surface on the obs registry. The
// gauges are live (scrapable mid-run over the observability HTTP
// surface); the counters and the duration histogram accumulate over the
// whole merge.
type mergerMetrics struct {
	pending  *obs.Gauge     // merge_pending_sessions: completed, held behind the barrier
	peak     *obs.Gauge     // merge_peak_pending: high-water mark of pending
	barrier  *obs.Gauge     // merge_barrier_seconds: emission-barrier watermark (stream time)
	emitted  *obs.Counter   // merge_emitted_total
	spilled  *obs.Counter   // merge_spilled_total: outliers diverted past the window
	dead     *obs.Gauge     // merge_dead_inputs: evicted inputs
	lost     *obs.Gauge     // merge_lost_sessions: sessions lost with them
	duration *obs.Histogram // merge_session_duration_seconds
}

// SetObserver attaches metric handles from o's registry. Call before
// Run; a nil observer (or registry) leaves the merge uninstrumented.
func (m *Merger) SetObserver(o *obs.Observer) {
	reg := o.Reg()
	if reg == nil {
		return
	}
	m.om = mergerMetrics{
		pending:  reg.Gauge("merge_pending_sessions", "completed sessions held behind the emission barrier"),
		peak:     reg.Gauge("merge_peak_pending", "high-water mark of the pending buffer"),
		barrier:  reg.Gauge("merge_barrier_seconds", "emission-barrier watermark in stream time"),
		emitted:  reg.Counter("merge_emitted_total", "sessions retired in merged order"),
		spilled:  reg.Counter("merge_spilled_total", "outlier sessions diverted to the spill path"),
		dead:     reg.Gauge("merge_dead_inputs", "inputs evicted dead instead of completing"),
		lost:     reg.Gauge("merge_lost_sessions", "sessions opened by evicted inputs and never closed"),
		duration: reg.Histogram("merge_session_duration_seconds", "merged session durations", obs.ExpBuckets(1, 4, 10)),
	}
}

type inputState struct {
	watermark trace.Time
	done      bool
	end       *End
	// open maps producer-local ids of open sessions to their start; fifo
	// holds (id, start) in arrival order with lazy removal, so the
	// earliest open start is the first fifo entry still present in open.
	open map[uint64]trace.Time
	fifo []openRef
}

type openRef struct {
	id    uint64
	start trace.Time
}

// NewMerger builds a merger over k input streams.
func NewMerger(k int, sink Sink) *Merger {
	m := &Merger{
		intake: make(chan Batch, 4*k),
		sink:   sink,
		out:    &trace.Trace{},
		remain: k,
	}
	m.inputs = make([]inputState, k)
	for i := range m.inputs {
		m.inputs[i].open = make(map[uint64]trace.Time)
	}
	return m
}

// Intake returns the shared channel all of this merger's producers send
// their batches to.
func (m *Merger) Intake() chan<- Batch { return m.intake }

// SetWindow bounds the emission barrier: no single open session may hold
// back retirement by more than w of stream time. Sessions longer than w
// take the spill path — buffered whole and folded into their exact merged
// positions at finish (the sink sees them last; the drained trace is
// byte-identical either way, pinned by test). Without a window, one
// session spanning the whole trace degrades the merge to full buffering;
// with it, PeakPending is bounded by the sessions completing within a
// w-wide window plus the (rare, duration-tail) spill set. Set before any
// events are fed; w ≤ 0 means unbounded.
func (m *Merger) SetWindow(w trace.Time) { m.window = w }

// Spilled reports how many sessions exceeded the emission window and took
// the spill path.
func (m *Merger) Spilled() int { return m.spilled }

// Run consumes batches until every input has delivered its EvDone
// trailer, then drains the pending buffer and returns the merged trace.
// It must run on its own goroutine while producers emit (the intake
// channel is bounded — that bound is the backpressure window).
func (m *Merger) Run() *trace.Trace {
	for m.remain > 0 {
		b := <-m.intake
		st := &m.inputs[b.Input]
		for i := range b.Events {
			m.apply(b.Input, st, &b.Events[i])
		}
		m.advance()
	}
	m.finish()
	return m.out
}

// Emitted returns how many merged sessions have retired so far.
func (m *Merger) Emitted() uint64 { return m.emitted }

// PeakPending returns the high-water mark of completed sessions held
// behind the emission barrier — how much the oldest open session cost.
func (m *Merger) PeakPending() int { return m.peakPending }

// DeadInputs returns how many inputs were evicted (EvEvict) instead of
// completing with a trailer. Read after Run returns.
func (m *Merger) DeadInputs() int { return m.deadInputs }

// LostSessions returns how many sessions evicted inputs had opened but
// never closed — the sessions known to be lost to input death. Sessions an
// evicted input never even announced cannot be counted here; only the
// emitter knew about those. Read after Run returns.
func (m *Merger) LostSessions() uint64 { return m.lostSessions }

func (m *Merger) apply(input int, st *inputState, ev *Event) {
	if st.done {
		// A dead or completed input delivers nothing further: late frames
		// racing an eviction are dropped here so remain cannot go negative
		// and the barrier stays monotone.
		return
	}
	if ev.Time > st.watermark {
		st.watermark = ev.Time
	}
	switch ev.Kind {
	case EvOpen:
		st.open[ev.ID] = ev.Time
		st.fifo = append(st.fifo, openRef{id: ev.ID, start: ev.Time})
	case EvClose:
		delete(st.open, ev.ID)
		// Trim retired heads so earliest-open lookup stays O(1) amortized.
		for len(st.fifo) > 0 {
			if _, ok := st.open[st.fifo[0].id]; ok {
				break
			}
			st.fifo = st.fifo[1:]
		}
		// Outliers — sessions longer than the emission window — go to the
		// spill set. The windowed barrier may already have passed their
		// start, so they cannot be emitted inline; and the classification
		// depends only on the record itself, so the inline emission order
		// (everything a Sink observes before finish) stays deterministic.
		if m.window > 0 && ev.Sess.Conn.End-ev.Sess.Conn.Start > m.window {
			m.spill = append(m.spill, ev.Sess)
			m.spilled++
			m.om.spilled.Inc()
			break
		}
		heap.Push(&m.pending, ev.Sess)
		if len(m.pending) > m.peakPending {
			m.peakPending = len(m.pending)
			m.om.peak.SetInt(int64(m.peakPending))
		}
	case EvPong:
		m.out.Pongs = append(m.out.Pongs, ev.Pong)
	case EvHit:
		m.out.Hits = append(m.out.Hits, ev.Hit)
	case EvDone:
		st.done = true
		st.end = ev.Done
		m.remain--
		m.fold(input, ev.Done)
	case EvEvict:
		st.done = true
		m.remain--
		m.deadInputs++
		m.lostSessions += uint64(len(st.open))
		m.om.dead.SetInt(int64(m.deadInputs))
		m.om.lost.SetInt(int64(m.lostSessions))
		// The input leaves the barrier entirely: its watermark no longer
		// pins retirement (done) and its open sessions are written off —
		// they can never close, so waiting on them would deadlock the
		// merge.
		st.open = nil
		st.fifo = nil
		if ev.Done != nil {
			// A liveness layer may synthesize a partial trailer from the
			// events it applied, keeping the merged counters consistent
			// with the records actually present; the emitter's aggregate
			// counters (unrecorded wider-network traffic) are lost with it.
			m.fold(input, ev.Done)
		}
	}
}

// fold accumulates one input's trailer into the merged trace's metadata
// and counters, mirroring what trace.Merge reads off whole input traces.
func (m *Merger) fold(input int, end *End) {
	if input == 0 {
		m.out.Seed = end.Seed
		m.out.Scale = end.Scale
		m.out.PongSampleRate = end.PongSampleRate
		m.out.HitSampleRate = end.HitSampleRate
	}
	if end.Days > m.out.Days {
		m.out.Days = end.Days
	}
	if end.Nodes > 0 {
		m.out.Nodes += end.Nodes
	} else {
		m.out.Nodes++
	}
	m.out.Counts.Add(end.Counts)
}

// barrier returns the instant before which no new inline session record
// can appear: the minimum over inputs of the earliest still-open start
// and, for inputs still producing, the watermark (future arrivals start
// at or after it). Inputs that are done with nothing open contribute
// nothing.
//
// With an emission window, an open session bounds the barrier by at most
// window: its contribution is clamped to ≥ watermark − window. That stays
// safe for inline (non-spilled) emission because any future close with
// duration ≤ window arrives at some instant c ≥ watermark and so has
// start ≥ c − window ≥ watermark − window; closes with larger durations
// are outliers and never enter the pending heap.
func (m *Merger) barrier() (trace.Time, bool) {
	var b trace.Time
	bounded := false
	take := func(t trace.Time) {
		if !bounded || t < b {
			b, bounded = t, true
		}
	}
	for i := range m.inputs {
		st := &m.inputs[i]
		if len(st.fifo) > 0 {
			hold := st.fifo[0].start
			if m.window > 0 && st.watermark-m.window > hold {
				hold = st.watermark - m.window
			}
			take(hold)
		}
		if !st.done {
			take(st.watermark)
		}
	}
	return b, bounded
}

// advance retires every pending session strictly before the barrier, in
// the merged total order, collapsing adjacent duplicates exactly as
// trace.Merge does.
func (m *Merger) advance() {
	b, bounded := m.barrier()
	if bounded {
		m.om.barrier.Set(b.Seconds())
	}
	defer func() { m.om.pending.SetInt(int64(len(m.pending))) }()
	for len(m.pending) > 0 {
		if bounded && m.pending[0].Conn.Start >= b {
			return
		}
		m.emit(heap.Pop(&m.pending).(*SessionRecord))
	}
}

func (m *Merger) emit(r *SessionRecord) {
	if m.last != nil && compareRecords(m.last, r) == 0 {
		// Exact duplicate observation of the same session (two vantages
		// recorded identical records): drop it and deduct its per-session
		// query records from the aggregates, keeping len(Queries) ==
		// Counts.QueryHop1.
		m.out.Counts.Query -= uint64(len(r.Queries))
		m.out.Counts.QueryHop1 -= uint64(len(r.Queries))
		return
	}
	m.last = r
	id := uint64(len(m.out.Conns))
	c := r.Conn
	c.ID = id
	m.out.Conns = append(m.out.Conns, c)
	for i := range r.Queries {
		q := r.Queries[i]
		q.ConnID = id
		m.out.Queries = append(m.out.Queries, q)
	}
	if m.sink != nil {
		m.sink.MergedSession(&m.out.Conns[id], r.Queries)
	}
	m.emitted++
	m.om.emitted.Inc()
	m.om.duration.Observe((r.Conn.End - r.Conn.Start).Seconds())
}

// finish drains everything past the final (absent) barrier, folds any
// spilled outliers into their merged positions, and puts the global
// record sections into their canonical orders — the same final sorts the
// batch merge runs, over exactly the records the batch merge would hold.
func (m *Merger) finish() {
	m.advance()
	if len(m.spill) > 0 {
		m.foldSpill()
	}
	qs := m.out.Queries
	sort.Slice(qs, func(i, j int) bool { return trace.CompareQuery(&qs[i], &qs[j]) < 0 })
	ps := m.out.Pongs
	sort.Slice(ps, func(i, j int) bool { return trace.ComparePong(&ps[i], &ps[j]) < 0 })
	hs := m.out.Hits
	sort.Slice(hs, func(i, j int) bool { return trace.CompareHit(&hs[i], &hs[j]) < 0 })
}

// foldSpill merges the spilled outlier sessions into the inline-emitted
// trace at their exact merged positions, rebuilding the dense connection
// IDs and collapsing duplicates exactly as inline emission does, so the
// drained trace is byte-identical to an unwindowed merge. A spilled
// record can never equal an inline one (equal records have equal
// durations, and outlier-ness is a pure function of duration), so
// duplicate collapse is only needed inside the spill set. The sink
// observes the folded sessions here, after every inline one.
func (m *Merger) foldSpill() {
	sp := m.spill
	m.spill = nil
	sort.Slice(sp, func(i, j int) bool { return compareRecords(sp[i], sp[j]) < 0 })

	oldConns, oldQueries := m.out.Conns, m.out.Queries
	conns := make([]trace.Conn, 0, len(oldConns)+len(sp))
	queries := make([]trace.Query, 0, len(oldQueries))
	si, qi := 0, 0

	place := func(c trace.Conn, qs []trace.Query) {
		id := uint64(len(conns))
		c.ID = id
		conns = append(conns, c)
		for i := range qs {
			q := qs[i]
			q.ConnID = id
			queries = append(queries, q)
		}
	}
	takeSpill := func() {
		r := sp[si]
		si++
		// Adjacent duplicates inside the spill set collapse with the same
		// counter deduction inline emission applies.
		for si < len(sp) && compareRecords(sp[si], r) == 0 {
			m.out.Counts.Query -= uint64(len(sp[si].Queries))
			m.out.Counts.QueryHop1 -= uint64(len(sp[si].Queries))
			si++
		}
		place(r.Conn, r.Queries)
		if m.sink != nil {
			m.sink.MergedSession(&conns[len(conns)-1], r.Queries)
		}
		m.emitted++
		m.om.emitted.Inc()
		m.om.duration.Observe((r.Conn.End - r.Conn.Start).Seconds())
	}

	for ci := range oldConns {
		// The inline queries are grouped contiguously by old dense ID.
		qj := qi
		for qj < len(oldQueries) && oldQueries[qj].ConnID == oldConns[ci].ID {
			qj++
		}
		rec := SessionRecord{Conn: oldConns[ci], Queries: oldQueries[qi:qj]}
		for si < len(sp) && compareRecords(sp[si], &rec) < 0 {
			takeSpill()
		}
		place(oldConns[ci], oldQueries[qi:qj])
		qi = qj
	}
	for si < len(sp) {
		takeSpill()
	}
	m.out.Conns, m.out.Queries = conns, queries
}

// compareRecords is the merge's total order: the connection comparator
// followed by the query-list comparator, both blind to producer-local
// IDs — the exact order batch trace.Merge sorts by, shared via the
// exported trace comparators so session identity has one definition.
func compareRecords(a, b *SessionRecord) int {
	if c := trace.CompareConn(&a.Conn, &b.Conn); c != 0 {
		return c
	}
	return trace.CompareQueryValueLists(a.Queries, b.Queries)
}

// sessHeap pops session records in the merged total order.
type sessHeap []*SessionRecord

func (h sessHeap) Len() int           { return len(h) }
func (h sessHeap) Less(i, j int) bool { return compareRecords(h[i], h[j]) < 0 }
func (h sessHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sessHeap) Push(x any)        { *h = append(*h, x.(*SessionRecord)) }
func (h *sessHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// MergeTraces runs already-materialized per-node traces through the
// streaming merge and returns the merged trace — the drop-in replacement
// for batch trace.Merge (byte-identical output, pinned by test), and the
// engine's production merge path for the batch engine. trace.Merge
// remains as the independent reference oracle the equivalence tests
// compare against.
//
// The inputs are fed interleaved in global start order (each input still
// sees its own records in its own start order, satisfying the watermark
// contract), so sessions retire — and their transient record copies are
// released — progressively as the feed advances, instead of every record
// pending until the last input has been consumed.
func MergeTraces(traces ...*trace.Trace) *trace.Trace {
	t, _ := MergeTracesStats(traces...)
	return t
}

// MergeStats reports a completed merge's memory diagnostics — the pending
// buffer's high-water mark and how many sessions took the spill path —
// plus its degradation ledger: inputs evicted dead and the open sessions
// lost with them (always zero for in-process merges, which cannot lose an
// input; the distributed ingest path is where these go nonzero).
type MergeStats struct {
	PeakPending  int
	Spilled      int
	DeadInputs   int
	LostSessions uint64
}

// MergeTracesStats is MergeTraces plus the merge's own diagnostics, so
// callers running the streaming merge over materialized traces report
// the same PeakPending accounting as the live streaming path.
func MergeTracesStats(traces ...*trace.Trace) (*trace.Trace, MergeStats) {
	return MergeTracesObs(nil, traces...)
}

// MergeTracesObs is MergeTracesStats with the merge's metric handles
// attached to o's registry (merge_pending_sessions, merge_peak_pending,
// merge_emitted_total, …). A nil observer merges uninstrumented.
func MergeTracesObs(o *obs.Observer, traces ...*trace.Trace) (*trace.Trace, MergeStats) {
	if len(traces) == 0 {
		return &trace.Trace{Nodes: 0}, MergeStats{}
	}
	m := NewMerger(len(traces), nil)
	m.SetObserver(o)

	type cursor struct {
		t      *trace.Trace
		byConn [][]*trace.Query
		order  []int // conn indices in start order
		pos    int
	}
	curs := make([]*cursor, len(traces))
	for i, t := range traces {
		c := &cursor{t: t, byConn: t.QueriesPerConn(), order: make([]int, len(t.Conns))}
		for j := range c.order {
			c.order[j] = j
		}
		// Simulated traces are already in arrival order; imported traces
		// with arbitrary record order are sorted into it here.
		sort.SliceStable(c.order, func(a, b int) bool {
			return t.Conns[c.order[a]].Start < t.Conns[c.order[b]].Start
		})
		curs[i] = c
	}

	// finishInput feeds an input's non-session records and its trailer the
	// moment its sessions are exhausted, so its watermark leaves the
	// barrier immediately — an empty or short-span input must not freeze
	// retirement for the inputs still feeding.
	finishInput := func(i int) {
		t := traces[i]
		st := &m.inputs[i]
		feed := func(ev Event) { m.apply(i, st, &ev) }
		for _, p := range t.Pongs {
			feed(Event{Kind: EvPong, Pong: p})
		}
		for _, h := range t.Hits {
			feed(Event{Kind: EvHit, Hit: h})
		}
		feed(Event{Kind: EvDone, Done: &End{
			Counts:         t.Counts,
			Seed:           t.Seed,
			Scale:          t.Scale,
			Days:           t.Days,
			Nodes:          t.Nodes,
			PongSampleRate: t.PongSampleRate,
			HitSampleRate:  t.HitSampleRate,
		}})
	}
	for i, c := range curs {
		if len(c.order) == 0 {
			finishInput(i)
		}
	}

	fed := 0
	for {
		// Pick the input whose next session starts earliest (linear scan:
		// the input count is the fleet size, not the record count).
		next := -1
		var nextStart trace.Time
		for i, c := range curs {
			if c.pos >= len(c.order) {
				continue
			}
			s := c.t.Conns[c.order[c.pos]].Start
			if next < 0 || s < nextStart {
				next, nextStart = i, s
			}
		}
		if next < 0 {
			break
		}
		c := curs[next]
		j := c.order[c.pos]
		c.pos++
		conn := c.t.Conns[j]
		rec := &SessionRecord{Conn: conn}
		if qs := c.byConn[j]; len(qs) > 0 {
			rec.Queries = make([]trace.Query, len(qs))
			for k, q := range qs {
				rec.Queries[k] = *q
			}
		}
		st := &m.inputs[next]
		m.apply(next, st, &Event{Kind: EvOpen, ID: conn.ID, Time: conn.Start})
		m.apply(next, st, &Event{Kind: EvClose, ID: conn.ID, Time: conn.Start, Sess: rec})
		if c.pos == len(c.order) {
			finishInput(next)
		}
		if fed++; fed%1024 == 0 {
			m.advance()
		}
	}
	m.finish()
	return m.out, MergeStats{
		PeakPending:  m.peakPending,
		Spilled:      m.spilled,
		DeadInputs:   m.deadInputs,
		LostSessions: m.lostSessions,
	}
}
