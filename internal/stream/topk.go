package stream

import "sort"

// TopK is a Space-Saving heavy-hitters sketch (Metwally, Agrawal, El
// Abbadi 2005): m counters answer "what are the most frequent keys" over
// an unbounded stream. While the number of distinct keys fits within m
// the counts are exact; beyond that, each reported count overestimates
// the true count by at most the counter's Err, and every key with true
// count > N/m is guaranteed to be present — the bound the online
// vocabulary ranking is specified against.
//
// Determinism: for a fixed input order the sketch state is a pure
// function of the stream (eviction picks the minimum-count entry with the
// smallest key among ties), so the merged stream's deterministic emission
// order yields a deterministic ranking.
type TopK struct {
	cap     int
	entries map[string]*tkEntry
	heap    []*tkEntry // min-heap by (count, key)
	n       uint64     // stream length
}

type tkEntry struct {
	key   string
	count uint64
	err   uint64 // max overestimation inherited at takeover
	pos   int    // heap index
}

// TopKEntry is one reported counter.
type TopKEntry struct {
	Key string
	// Count is the estimated frequency; the true frequency lies in
	// [Count-Err, Count].
	Count uint64
	Err   uint64
}

// NewTopK builds a sketch with capacity m counters (m ≥ 1).
func NewTopK(m int) *TopK {
	if m < 1 {
		m = 1
	}
	return &TopK{cap: m, entries: make(map[string]*tkEntry, m)}
}

// Add counts one occurrence of key.
func (t *TopK) Add(key string) { t.AddN(key, 1) }

// AddN counts n occurrences of key.
func (t *TopK) AddN(key string, n uint64) {
	t.n += n
	if e, ok := t.entries[key]; ok {
		e.count += n
		t.down(e.pos)
		return
	}
	if len(t.heap) < t.cap {
		e := &tkEntry{key: key, count: n, pos: len(t.heap)}
		t.entries[key] = e
		t.heap = append(t.heap, e)
		t.up(e.pos)
		return
	}
	// Take over the minimum counter: the new key inherits its count as
	// the overestimation bound (the Space-Saving step).
	min := t.heap[0]
	delete(t.entries, min.key)
	min.key = key
	min.err = min.count
	min.count += n
	t.entries[key] = min
	t.down(0)
}

// N returns the stream length observed so far.
func (t *TopK) N() uint64 { return t.n }

// Distinct returns the number of live counters (= distinct keys while the
// sketch is exact).
func (t *TopK) Distinct() int { return len(t.heap) }

// Exact reports whether every count is exact: no counter has ever been
// taken over.
func (t *TopK) Exact() bool {
	for _, e := range t.heap {
		if e.err > 0 {
			return false
		}
	}
	return true
}

// ErrBound returns the largest possible overestimation across reported
// counters (0 while the sketch is exact; always ≤ N/m).
func (t *TopK) ErrBound() uint64 {
	var b uint64
	for _, e := range t.heap {
		if e.err > b {
			b = e.err
		}
	}
	return b
}

// Top returns the k highest counters, ordered by descending count with
// ascending key among ties (a total order, so the report is
// deterministic).
func (t *TopK) Top(k int) []TopKEntry {
	out := make([]TopKEntry, 0, len(t.heap))
	for _, e := range t.heap {
		out = append(out, TopKEntry{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// less orders the eviction heap by (count, key): the minimum count is
// evicted first, with the lexicographically smallest key among equals so
// eviction is deterministic.
func (t *TopK) less(i, j int) bool {
	a, b := t.heap[i], t.heap[j]
	if a.count != b.count {
		return a.count < b.count
	}
	return a.key < b.key
}

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.heap[i].pos = i
	t.heap[j].pos = j
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.less(l, smallest) {
			smallest = l
		}
		if r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}
