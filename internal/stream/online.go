package stream

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// OnlineConfig parameterizes the online characterization layer.
type OnlineConfig struct {
	// TopKCapacity is the Space-Saving counter budget for the keyword
	// ranking (0 = DefaultTopKCapacity). The ranking is exact while the
	// distinct keyword-set count fits the capacity.
	TopKCapacity int
	// QuantileEpsilon is the rank-error bound of the duration and
	// interarrival summaries (0 = DefaultQuantileEpsilon).
	QuantileEpsilon float64
	// RateBucket and RateBuckets shape the sliding rate windows
	// (defaults: 60 × 1 minute = a one-hour window).
	RateBucket  trace.Time
	RateBuckets int
}

// DefaultTopKCapacity holds the full keyword working set of a paper-scale
// day with room to spare, so the CI-scale rankings are exact and the
// full-scale ranking is exact for every key above N/capacity.
const DefaultTopKCapacity = 8192

// Online characterizes a query stream as it arrives, with state that
// does not grow with the stream: a Space-Saving top-K over keyword sets,
// Greenwald–Khanna quantile summaries for session duration and query
// interarrival, sliding-window arrival and query rates, and a handful of
// exact counters (the under-64 s session share among them — the paper's
// headline quick-session figure is an exact streaming statistic).
//
// It implements Sink, so it can ride a Merger and observe the merged
// global order (deterministic snapshots, pinned against batch-exact
// values by test), and it also accepts direct wire-level observations
// (ObserveQuery), which is how cmd/gnutellad serves live metrics for
// socket-ingested traffic. Safe for concurrent use.
type Online struct {
	mu sync.Mutex

	sessions uint64
	queries  uint64
	under64  uint64

	dur   *Quantile // session duration, seconds
	inter *Quantile // within-session query interarrival, seconds

	keywords *TopK

	arrivals *RateWindow
	qrate    *RateWindow

	// lastWall is the wall-clock instant of the most recent observation,
	// exposed as a snapshot-age gauge (how stale the live metrics are).
	lastWall time.Time
}

// NewOnline builds the online layer.
func NewOnline(cfg OnlineConfig) *Online {
	if cfg.TopKCapacity <= 0 {
		cfg.TopKCapacity = DefaultTopKCapacity
	}
	if cfg.RateBucket <= 0 {
		cfg.RateBucket = time.Minute
	}
	if cfg.RateBuckets <= 0 {
		cfg.RateBuckets = 60
	}
	return &Online{
		dur:      NewQuantile(cfg.QuantileEpsilon),
		inter:    NewQuantile(cfg.QuantileEpsilon),
		keywords: NewTopK(cfg.TopKCapacity),
		arrivals: NewRateWindow(cfg.RateBucket, cfg.RateBuckets),
		qrate:    NewRateWindow(cfg.RateBucket, cfg.RateBuckets),
	}
}

// MergedSession implements Sink: observe one retired session of the
// merged stream.
func (o *Online) MergedSession(c *trace.Conn, qs []trace.Query) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.lastWall = time.Now()
	o.sessions++
	o.arrivals.Add(c.Start)
	d := c.End - c.Start
	if d < 64*time.Second {
		o.under64++
	}
	o.dur.Add(d.Seconds())
	for i := range qs {
		o.observeQueryLocked(qs[i].At, qs[i].Text, qs[i].SHA1)
		if i > 0 {
			o.inter.Add((qs[i].At - qs[i-1].At).Seconds())
		}
	}
}

// ObserveQuery observes one hop-1 query outside any session framing —
// the live-daemon ingestion path.
func (o *Online) ObserveQuery(at trace.Time, text string, sha1 bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.observeQueryLocked(at, text, sha1)
}

func (o *Online) observeQueryLocked(at trace.Time, text string, sha1 bool) {
	o.lastWall = time.Now()
	o.queries++
	o.qrate.Add(at)
	if sha1 {
		return // source hunts carry no keywords
	}
	if key := wire.KeywordKey(text); key != "" {
		o.keywords.Add(key)
	}
}

// Register exposes the online layer's live state on an obs registry as
// scrape-time gauges (GaugeFuncs — exposition-only, never journaled):
// exact counters, headline sketch figures, window rates, and the
// snapshot age (seconds since the last observation, the staleness of
// everything else). Each func takes o's mutex, so scrapes see a
// consistent value. A nil registry no-ops.
func (o *Online) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("online_sessions", "merged sessions observed by the online layer",
		locked(func() float64 { return float64(o.sessions) }))
	reg.GaugeFunc("online_queries", "hop-1 queries observed by the online layer",
		locked(func() float64 { return float64(o.queries) }))
	reg.GaugeFunc("online_under64_share", "exact share of sessions shorter than 64s",
		locked(func() float64 {
			if o.sessions == 0 {
				return 0
			}
			return float64(o.under64) / float64(o.sessions)
		}))
	reg.GaugeFunc("online_duration_p50_seconds", "GK median session duration",
		locked(func() float64 {
			if o.dur.N() == 0 {
				return 0
			}
			return o.dur.Query(0.50)
		}))
	reg.GaugeFunc("online_distinct_keywords", "distinct keyword sets tracked by Space-Saving",
		locked(func() float64 { return float64(o.keywords.Distinct()) }))
	reg.GaugeFunc("online_arrivals_per_hour", "sliding-window arrival rate",
		locked(func() float64 { return o.arrivals.PerHour() }))
	reg.GaugeFunc("online_queries_per_hour", "sliding-window query rate",
		locked(func() float64 { return o.qrate.PerHour() }))
	reg.GaugeFunc("online_snapshot_age_seconds", "wall seconds since the last observation",
		locked(func() float64 {
			if o.lastWall.IsZero() {
				return 0
			}
			return time.Since(o.lastWall).Seconds()
		}))
}

// QuantileSnapshot reports one summary's headline quantiles in seconds.
type QuantileSnapshot struct {
	N       uint64  `json:"n"`
	P50     float64 `json:"p50_sec"`
	P90     float64 `json:"p90_sec"`
	P99     float64 `json:"p99_sec"`
	Max     float64 `json:"max_sec"`
	Epsilon float64 `json:"epsilon"`
	// Tuples is the summary's current size — the bounded state.
	Tuples int `json:"tuples,omitempty"`
}

// Snapshot is one consistent view of the online characterization,
// JSON-encodable for the live metrics endpoint.
type Snapshot struct {
	Sessions        uint64  `json:"sessions"`
	Queries         uint64  `json:"queries"`
	Under64Fraction float64 `json:"under_64s_fraction"`

	Duration     QuantileSnapshot `json:"session_duration"`
	Interarrival QuantileSnapshot `json:"query_interarrival"`

	TopKeywords []TopKEntry `json:"top_keywords"`
	// TopKExact reports whether every keyword count is exact; when false,
	// TopKErrBound bounds the per-counter overestimation.
	TopKExact    bool   `json:"topk_exact"`
	TopKErrBound uint64 `json:"topk_err_bound"`
	DistinctKeys int    `json:"distinct_keys"`

	// Rates are sliding-window figures at the stream's leading edge.
	ArrivalsPerHour float64 `json:"arrivals_per_hour"`
	QueriesPerHour  float64 `json:"queries_per_hour"`
	PeakArrivalsWin uint64  `json:"peak_arrivals_per_window"`
	PeakQueriesWin  uint64  `json:"peak_queries_per_window"`
	WindowSec       float64 `json:"rate_window_sec"`
}

// Snapshot captures the current state; k bounds the reported keyword
// ranking length.
func (o *Online) Snapshot(k int) Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	if k <= 0 {
		k = 10
	}
	snap := func(q *Quantile) QuantileSnapshot {
		// An empty summary answers NaN, which JSON cannot carry: report
		// zeros with N = 0 saying why.
		if q.N() == 0 {
			return QuantileSnapshot{Epsilon: q.Epsilon()}
		}
		return QuantileSnapshot{
			N:       q.N(),
			P50:     q.Query(0.50),
			P90:     q.Query(0.90),
			P99:     q.Query(0.99),
			Max:     q.Max(),
			Epsilon: q.Epsilon(),
			Tuples:  q.Size(),
		}
	}
	s := Snapshot{
		Sessions:        o.sessions,
		Queries:         o.queries,
		Duration:        snap(o.dur),
		Interarrival:    snap(o.inter),
		TopKeywords:     o.keywords.Top(k),
		TopKExact:       o.keywords.Exact(),
		TopKErrBound:    o.keywords.ErrBound(),
		DistinctKeys:    o.keywords.Distinct(),
		ArrivalsPerHour: o.arrivals.PerHour(),
		QueriesPerHour:  o.qrate.PerHour(),
		PeakArrivalsWin: o.arrivals.PeakInWindow(),
		PeakQueriesWin:  o.qrate.PeakInWindow(),
		WindowSec:       o.arrivals.Window().Seconds(),
	}
	if o.sessions > 0 {
		s.Under64Fraction = float64(o.under64) / float64(o.sessions)
	}
	return s
}

// WriteText renders the snapshot as the report-style text block `analyze
// -stream` prints.
func (s *Snapshot) WriteText(w io.Writer) error {
	exact := "exact"
	if !s.TopKExact {
		exact = fmt.Sprintf("±%d (Space-Saving bound)", s.TopKErrBound)
	}
	if _, err := fmt.Fprintf(w, `Online characterization (streaming sketches)
  sessions: %d   hop-1 queries: %d
  under-64s session share: %.1f%% (exact)
  session duration  p50/p90/p99: %.1f / %.1f / %.1f s  (GK eps=%g, %d tuples)
  query interarrival p50/p90/p99: %.1f / %.1f / %.1f s  (GK eps=%g, %d tuples)
  rates (last %.0f min window): %.0f arrivals/h, %.0f queries/h
  distinct keyword sets: %d   counts %s
  top keyword sets:
`,
		s.Sessions, s.Queries,
		100*s.Under64Fraction,
		s.Duration.P50, s.Duration.P90, s.Duration.P99, s.Duration.Epsilon, s.Duration.Tuples,
		s.Interarrival.P50, s.Interarrival.P90, s.Interarrival.P99, s.Interarrival.Epsilon, s.Interarrival.Tuples,
		s.WindowSec/60, s.ArrivalsPerHour, s.QueriesPerHour,
		s.DistinctKeys, exact,
	); err != nil {
		return err
	}
	for i, e := range s.TopKeywords {
		if _, err := fmt.Fprintf(w, "    %2d. %-30q %8d\n", i+1, e.Key, e.Count); err != nil {
			return err
		}
	}
	return nil
}

// Exact computes the same metrics as Online exactly, from a materialized
// trace — the oracle the sketch tolerances are pinned against, and what
// `analyze -stream` prints next to the online estimates when the drained
// trace is at hand. Rates are omitted (they are defined on the stream's
// leading edge, which a batch trace does not have).
func Exact(tr *trace.Trace, k int) Snapshot {
	if k <= 0 {
		k = 10
	}
	s := Snapshot{
		Sessions:  uint64(len(tr.Conns)),
		Queries:   uint64(len(tr.Queries)),
		TopKExact: true,
	}
	durs := make([]float64, 0, len(tr.Conns))
	for i := range tr.Conns {
		c := &tr.Conns[i]
		d := c.End - c.Start
		if d < 64*time.Second {
			s.Under64Fraction++
		}
		durs = append(durs, d.Seconds())
	}
	if len(tr.Conns) > 0 {
		s.Under64Fraction /= float64(len(tr.Conns))
	}
	var inters []float64
	counts := make(map[string]uint64)
	for _, qs := range tr.QueriesPerConn() {
		for i, q := range qs {
			if i > 0 {
				inters = append(inters, (q.At - qs[i-1].At).Seconds())
			}
			if q.SHA1 {
				continue
			}
			if key := wire.KeywordKey(q.Text); key != "" {
				counts[key]++
			}
		}
	}
	s.Duration = exactQuantiles(durs)
	s.Interarrival = exactQuantiles(inters)
	s.DistinctKeys = len(counts)
	for key, n := range counts {
		s.TopKeywords = append(s.TopKeywords, TopKEntry{Key: key, Count: n})
	}
	sort.Slice(s.TopKeywords, func(i, j int) bool {
		if s.TopKeywords[i].Count != s.TopKeywords[j].Count {
			return s.TopKeywords[i].Count > s.TopKeywords[j].Count
		}
		return s.TopKeywords[i].Key < s.TopKeywords[j].Key
	})
	if k < len(s.TopKeywords) {
		s.TopKeywords = s.TopKeywords[:k]
	}
	return s
}

func exactQuantiles(xs []float64) QuantileSnapshot {
	qs := QuantileSnapshot{N: uint64(len(xs))}
	if len(xs) == 0 {
		return qs
	}
	sort.Float64s(xs)
	at := func(p float64) float64 {
		i := int(p * float64(len(xs)-1))
		return xs[i]
	}
	qs.P50, qs.P90, qs.P99 = at(0.50), at(0.90), at(0.99)
	qs.Max = xs[len(xs)-1]
	return qs
}
