package engine

// The full-chain-replay engine — the determinism mechanism this package
// used before the keyed tie-break — lives on here as the independent test
// oracle: every node replays the whole global arrival chain, one trivial
// event per foreign arrival, relying on nothing but the schedulers'
// implicit FIFO order. The keyed engine must reproduce its traces byte
// for byte at every node count (grid tests, a 256-node case, and a fuzz
// target below), while scheduling O(global arrivals) fewer events per
// node — which TestScheduledPerNodeScaling pins.

import (
	"bytes"
	"testing"

	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// replayPart is the chain-replay oracle's partition: every arrival
// instant, each arrival's owner, and the sessions split per node.
type replayPart struct {
	starts  []simtime.Time
	owner   []uint32
	perNode [][]*behavior.Session
}

func replayPartition(cfg capture.FleetConfig) (*replayPart, *capture.SharedModel) {
	gen := behavior.NewGenerator(cfg.Node.Workload)
	shared := capture.NewSharedModel(gen)
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	p := &replayPart{perNode: make([][]*behavior.Session, cfg.Nodes)}
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		n := g.Shard(cfg.Nodes)
		p.starts = append(p.starts, sess.Start)
		p.owner = append(p.owner, uint32(n))
		p.perNode[n] = append(p.perNode[n], sess)
	}
	return p, shared
}

// replayRun is the oracle's event loop: schedule the next chain event
// first, then dispatch the arrival if it is ours — the exact statement
// order of the fleet's dispatcher, which the implicit FIFO tie-break
// makes observable.
type replayRun struct {
	sched  simtime.Scheduler
	node   *capture.Node
	part   *replayPart
	idx    uint32
	k      int
	cursor int
}

func (r *replayRun) Fire(now simtime.Time) {
	k := r.k
	r.k++
	if r.k < len(r.part.starts) {
		r.sched.Schedule(r.part.starts[r.k], r)
	}
	if r.part.owner[k] == r.idx {
		sess := r.part.perNode[r.idx][r.cursor]
		r.cursor++
		r.node.Arrive(now, sess)
	}
}

// replayNodeTraces runs the chain-replay oracle over every node and
// returns the per-node traces plus each node's scheduled-event count.
func replayNodeTraces(cfg capture.FleetConfig, newSched func() simtime.Scheduler) ([]*trace.Trace, []uint64) {
	part, shared := replayPartition(cfg)
	horizon := simtime.Time(cfg.Node.Workload.Days) * simtime.Day
	traces := make([]*trace.Trace, cfg.Nodes)
	scheduled := make([]uint64, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		sched := newSched()
		node := capture.NewNode(cfg.Node, i, sched, shared)
		r := &replayRun{sched: sched, node: node, part: part, idx: uint32(i)}
		if len(part.starts) > 0 {
			sched.Schedule(part.starts[0], r)
		}
		sched.RunUntil(horizon)
		node.FinalizeOpen(horizon)
		traces[i] = node.Trace()
		scheduled[i] = sched.Scheduled()
	}
	return traces, scheduled
}

// TestKeyedMatchesChainReplayOracle pins the tentpole equivalence: at
// several node counts the keyed engine's per-node traces equal the
// chain-replay oracle's byte for byte, under both scheduler
// implementations.
func TestKeyedMatchesChainReplayOracle(t *testing.T) {
	scheds := map[string]func() simtime.Scheduler{
		"heap":     func() simtime.Scheduler { return simtime.NewScheduler() },
		"calendar": func() simtime.Scheduler { return simtime.NewCalendarScheduler() },
	}
	for name, newSched := range scheds {
		for _, nodes := range []int{1, 3, 4, 48} {
			cfg := testCfg(2004, 2, nodes)
			want, _ := replayNodeTraces(cfg, newSched)
			e := New(Config{Fleet: cfg, Workers: 4})
			e.newSched = newSched
			e.Run()
			got := e.NodeTraces()
			for i := range want {
				if !bytes.Equal(traceBytes(t, want[i]), traceBytes(t, got[i])) {
					t.Fatalf("%s nodes=%d: node %d trace differs from chain-replay oracle", name, nodes, i)
				}
			}
		}
	}
}

// TestKeyed256NodesMatchesOracle pushes the equivalence far beyond the
// grid tests' node counts: at 256 nodes (most nodes own a handful of
// sessions, so foreign-arrival ordering dominates) the keyed engine's
// merged trace must still hash equal to the oracle's merge.
func TestKeyed256NodesMatchesOracle(t *testing.T) {
	cfg := testCfg(2004, 1, 256)
	oracle, _ := replayNodeTraces(cfg, func() simtime.Scheduler { return simtime.NewCalendarScheduler() })
	want, err := trace.Merge(oracle...).Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, lookahead := range []int{0, 64} {
		e := New(Config{Fleet: cfg, Lookahead: lookahead})
		got, err := e.Run().Hash()
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("lookahead=%d: 256-node keyed merge hash differs from chain-replay oracle", lookahead)
		}
	}
}

// TestScheduledPerNodeScaling pins the scaling win the keyed tie-break
// buys, exactly: the traces being byte-identical means both engines run
// the same internal (probe/query/close) events, so the only difference
// per node is the arrival bookkeeping — one event per *global* arrival
// under chain replay versus one per *own* arrival under keys. At 48
// nodes each keyed node must therefore schedule exactly
// (arrivals − ownArrivals) fewer events than the oracle's same node.
func TestScheduledPerNodeScaling(t *testing.T) {
	cfg := testCfg(2004, 2, 48)
	part, _ := replayPartition(cfg)
	arrivals := uint64(len(part.starts))
	_, oracle := replayNodeTraces(cfg, func() simtime.Scheduler { return simtime.NewCalendarScheduler() })

	e := New(Config{Fleet: cfg})
	per := e.ScheduledPerNode()
	if len(per) != 48 {
		t.Fatalf("ScheduledPerNode rows = %d, want 48", len(per))
	}
	for i, n := range per {
		if n == 0 {
			t.Fatalf("node %d scheduled no events", i)
		}
		own := uint64(len(part.perNode[i]))
		if want := oracle[i] - (arrivals - own); n != want {
			t.Fatalf("node %d scheduled %d events, want %d (oracle %d − %d foreign arrivals)",
				i, n, want, oracle[i], arrivals-own)
		}
		// The absolute point of the refactor, stated directly: no node pays
		// for the full global chain anymore.
		if n >= oracle[i] {
			t.Fatalf("node %d scheduled %d events ≥ oracle's %d — chain replay cost is back", i, n, oracle[i])
		}
	}
}

// FuzzKeyedReplayEquivalence fuzzes the keyed engine against the
// chain-replay oracle the way FuzzCalendarHeapEquivalence pins the two
// scheduler implementations: whatever the seed and fleet size, the merged
// traces must hash equal.
func FuzzKeyedReplayEquivalence(f *testing.F) {
	f.Add(uint64(2004), uint8(4), false)
	f.Add(uint64(1), uint8(1), true)
	f.Add(uint64(7), uint8(17), false)
	f.Add(uint64(42), uint8(64), true)
	f.Fuzz(func(t *testing.T, seed uint64, nodes uint8, bounded bool) {
		n := int(nodes%64) + 1
		cfg := capture.DefaultConfig(seed, 0.005)
		cfg.Workload.Days = 1
		fleet := capture.FleetConfig{Node: cfg, Nodes: n}
		oracle, _ := replayNodeTraces(fleet, func() simtime.Scheduler { return simtime.NewCalendarScheduler() })
		want, err := trace.Merge(oracle...).Hash()
		if err != nil {
			t.Fatal(err)
		}
		ecfg := Config{Fleet: fleet}
		if bounded {
			ecfg.Lookahead = 32
		}
		got, err := New(ecfg).Run().Hash()
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("seed=%d nodes=%d bounded=%v: keyed merge hash differs from chain-replay oracle", seed, n, bounded)
		}
	})
}
