package engine

import (
	"fmt"
	"sync"

	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/simtime"
	"repro/internal/stream"
)

// NodeStream runs exactly one vantage of the configured fleet in
// streaming mode, emitting its event stream — opens, session records,
// pongs, hits, trailer — into sink. This is the emitter-process
// entrypoint of the distributed ingest pipeline (cmd/vantage): the
// arrival process is deterministic in the seed, so each vantage process
// regenerates the full global arrival chain locally, keeps only the
// sessions guid.Shard assigns to idx, and produces a per-input event
// stream bit-equal to what RunStream's node idx produces in-process.
// N such processes feeding a collector therefore drain to a trace
// byte-identical to RunStream's — the acceptance the ingest tests pin.
// It also makes emitter restart cheap: a fresh process replays the same
// stream from the start and the ingest resume protocol discards the
// already-delivered prefix.
//
// The bounded producer (Config.Lookahead, same default as RunStream)
// paces regeneration, so a vantage process holds only its lookahead
// window of sessions no matter how large the fleet-wide arrival volume
// is. Foreign sessions are discarded at the shard check and cost only
// their generation.
func NodeStream(cfg Config, idx int, sink *stream.Producer) (capture.NodeStats, error) {
	if cfg.Fleet.Nodes < 1 {
		cfg.Fleet.Nodes = 1
	}
	if idx < 0 || idx >= cfg.Fleet.Nodes {
		return capture.NodeStats{}, fmt.Errorf("engine: vantage %d out of range [0,%d)", idx, cfg.Fleet.Nodes)
	}
	nodeCfg := cfg.Fleet.Node
	gen := behavior.NewGenerator(nodeCfg.Workload)
	shared := capture.NewSharedModel(gen)
	horizon := simtime.Time(nodeCfg.Workload.Days) * simtime.Day

	la := cfg.Lookahead
	if la <= 0 {
		la = DefaultLookahead
	}
	ch := newChain()
	queue := make(chan ownedSession, la)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		produceArrivalsOwn(cfg.Fleet, gen, ch, idx, queue)
	}()

	arrivals := cfg.Obs.Counter("engine_arrivals_total", "arrival events fired by this vantage")
	node := runNodeBounded(nodeCfg, idx, simtime.NewCalendarScheduler(), shared, ch, queue, horizon, sink, arrivals)
	wg.Wait()
	return node.Stats(), nil
}

// produceArrivalsOwn is produceArrivals for a single vantage: the
// generator and GUID stream are consumed in exactly the fleet's order
// (mandatory — any divergence would shift every tie-break key), the full
// chain is published for the node's conservative cursor, but only
// sessions sharded to own are queued; the rest are dropped on the floor.
func produceArrivalsOwn(cfg capture.FleetConfig, gen *behavior.Generator, ch *chain, own int, queue chan<- ownedSession) uint64 {
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	const batch = 512
	starts := make([]simtime.Time, 0, batch)
	owned := make([]ownedSession, 0, batch)
	var total uint64
	flush := func() {
		if len(starts) == 0 {
			return
		}
		ch.publish(starts)
		for _, os := range owned {
			queue <- os
		}
		starts, owned = starts[:0], owned[:0]
	}
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		if g.Shard(cfg.Nodes) == own {
			owned = append(owned, ownedSession{sess: sess, gidx: total})
		}
		starts = append(starts, sess.Start)
		total++
		if len(starts) == batch {
			flush()
		}
	}
	flush()
	ch.finish()
	close(queue)
	return total
}
