package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
)

// DefaultLookahead is the bounded producer's per-node session window: how
// many undelivered sessions one vantage's queue may hold before the
// producer blocks. 48 nodes × 1024 sessions bounds the in-flight session
// set to ≈50 k objects at any instant — versus the 4.36 M the eager
// pre-partition holds at paper scale.
const DefaultLookahead = 1024

// chainChunk is one slab of the published arrival instants. Chunked
// storage lets readers index concurrently while the producer appends: a
// slab is never reallocated, and the chunk directory is replaced
// copy-on-write.
const chainChunkSize = 8192

type chainChunk struct {
	start [chainChunkSize]simtime.Time
}

// chain is the incrementally published arrival-instant sequence — the
// conservative synchronizer of the bounded producer. Under the keyed
// tie-break, nodes no longer consume foreign chain entries as events;
// they only need the conservative time window: before an implicit event
// at instant t fires, the node's chain cursor must know exactly how many
// global arrivals precede it, which requires the published prefix to
// extend past t (or the chain to be complete). countThrough blocks —
// conservatively, in the Chandy–Misra sense: a node's clock never
// advances past what the published prefix can order exactly — until the
// producer has published that far. The fast path is two atomic loads; the
// mutex is only taken to sleep and to publish.
type chain struct {
	mu     sync.Mutex
	cond   *sync.Cond
	dir    atomic.Pointer[[]*chainChunk]
	n      atomic.Int64
	closed atomic.Bool
}

func newChain() *chain {
	c := &chain{}
	c.cond = sync.NewCond(&c.mu)
	empty := []*chainChunk{}
	c.dir.Store(&empty)
	return c
}

// countThrough is the bounded-mode chain cursor: the first chain position
// ≥ from that does not fire before an implicit event with key (at, epoch,
// pos ≥ 1), blocking until the published prefix suffices to answer
// exactly. Same order predicate and galloping search as the eager
// chainCount; the only difference is that the array grows underneath it.
func (c *chain) countThrough(from uint64, at simtime.Time, epoch uint64) uint64 {
	for {
		n := uint64(c.n.Load())
		dir := *c.dir.Load()
		fires := func(j uint64) bool {
			st := dir[j/chainChunkSize].start[j%chainChunkSize]
			return st < at || (st == at && j <= epoch)
		}
		if from < n {
			if p := chainBoundary(n, from, fires); p < n {
				return p
			}
			from = n
		}
		// Every published entry fires before the event; only more
		// publications (or completion) can pin the count down.
		c.mu.Lock()
		for uint64(c.n.Load()) == n && !c.closed.Load() {
			c.cond.Wait()
		}
		c.mu.Unlock()
		if c.closed.Load() && uint64(c.n.Load()) == n {
			return n
		}
	}
}

// publish appends a batch of arrival instants and wakes waiting readers.
// Only the producer goroutine calls it.
func (c *chain) publish(starts []simtime.Time) {
	n := c.n.Load()
	dir := *c.dir.Load()
	for i := range starts {
		k := n + int64(i)
		if int(k/chainChunkSize) == len(dir) {
			grown := make([]*chainChunk, len(dir), len(dir)+1)
			copy(grown, dir)
			grown = append(grown, &chainChunk{})
			dir = grown
			c.dir.Store(&dir)
		}
		dir[k/chainChunkSize].start[k%chainChunkSize] = starts[i]
	}
	c.mu.Lock()
	c.n.Store(n + int64(len(starts)))
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish marks the chain complete and wakes all readers.
func (c *chain) finish() {
	c.mu.Lock()
	c.closed.Store(true)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// produceArrivals is the bounded producer: it replays the arrival process
// in the exact order the sequential fleet draws it — generator and
// session-GUID streams consumed identically, so the sharding is bit-equal
// to the eager partition — but publishes the arrival instants
// incrementally and hands each session (with its global chain position,
// the Epoch of its tie-break key) to its owner's bounded queue, blocking
// when that queue is full. Publication order is chain-before-session: by
// the time a node can fire arrival k, the chain prefix through k is
// published, and sessions arrive on each queue in exactly the order the
// node consumes them.
//
// Deadlock freedom: the producer blocks only on the slowest node's full
// queue; that node always has a queue's worth of sessions whose chain
// prefix is fully published (publish precedes enqueue, and arrivals are
// start-ordered), so its cursor can always resolve and it drains; every
// other node either progresses on published entries or sleeps in
// countThrough / its queue read, holding no resource the producer needs.
func produceArrivals(cfg capture.FleetConfig, gen *behavior.Generator, ch *chain, queues []chan ownedSession) uint64 {
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	const batch = 512
	starts := make([]simtime.Time, 0, batch)
	owners := make([]uint32, 0, batch)
	sessions := make([]*behavior.Session, 0, batch)
	var total uint64
	flush := func() {
		if len(starts) == 0 {
			return
		}
		ch.publish(starts)
		base := total - uint64(len(starts))
		for i, s := range sessions {
			queues[owners[i]] <- ownedSession{sess: s, gidx: base + uint64(i)}
		}
		starts, owners, sessions = starts[:0], owners[:0], sessions[:0]
	}
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		n := g.Shard(cfg.Nodes)
		starts = append(starts, sess.Start)
		owners = append(owners, uint32(n))
		sessions = append(sessions, sess)
		total++
		if len(starts) == batch {
			flush()
		}
	}
	flush()
	ch.finish()
	for _, q := range queues {
		close(q)
	}
	return total
}

// keyedBoundedRun is one vantage's event loop against the incrementally
// published chain: the bounded-mode counterpart of keyedRun, firing the
// identical event sequence with the shared starts array replaced by the
// published chain (cursor searches may block until the producer catches
// up) and the partitioned session list replaced by a Lookahead-deep
// queue.
type keyedBoundedRun struct {
	sched    simtime.Scheduler
	node     *capture.Node
	ch       *chain
	queue    <-chan ownedSession
	cur      ownedSession // the session this scheduled arrival delivers
	chainPos uint64
	// arrivals is the fleet-wide throughput counter (atomic; nil when no
	// registry is installed — the Inc is then a nil-check no-op).
	arrivals *obs.Counter
}

// beforeFire mirrors keyedRun.beforeFire; countThrough blocks this node's
// goroutine until the published prefix can order the event exactly.
func (r *keyedBoundedRun) beforeFire(at simtime.Time, key simtime.SeqKey) {
	if key.Pos == 0 {
		r.chainPos = key.Epoch + 1
		r.sched.Reseed(simtime.SeqKey{Epoch: r.chainPos, Pos: 1})
		return
	}
	if p := r.ch.countThrough(r.chainPos, at, key.Epoch); p > r.chainPos {
		r.chainPos = p
		r.sched.Reseed(simtime.SeqKey{Epoch: p, Pos: 1})
	}
}

// Fire dispatches the node's next own session, first pulling the
// following one off the queue (which may block until the producer
// delivers it) and scheduling it at its precomputed key.
func (r *keyedBoundedRun) Fire(now simtime.Time) {
	sess := r.cur.sess
	if next, ok := <-r.queue; ok {
		r.cur = next
		r.sched.ScheduleKeyed(next.sess.Start, simtime.SeqKey{Epoch: next.gidx}, r)
	}
	r.arrivals.Inc()
	r.node.Arrive(now, sess)
}

// runNodeBounded simulates one vantage to the horizon against the
// bounded producer, in retained mode (sink nil) or streaming-sink mode.
func runNodeBounded(cfg capture.Config, idx int, sched simtime.Scheduler, shared *capture.SharedModel,
	ch *chain, queue <-chan ownedSession, horizon simtime.Time, sink *stream.Producer, arrivals *obs.Counter) *capture.Node {
	sched.Reseed(simtime.SeqKey{Epoch: 0, Pos: 1})
	var node *capture.Node
	if sink != nil {
		node = capture.NewNodeStream(cfg, idx, sched, shared, sink)
	} else {
		node = capture.NewNode(cfg, idx, sched, shared)
	}
	r := &keyedBoundedRun{sched: sched, node: node, ch: ch, queue: queue, arrivals: arrivals}
	sched.SetFireHook(r.beforeFire)
	if first, ok := <-queue; ok {
		r.cur = first
		sched.ScheduleKeyed(first.sess.Start, simtime.SeqKey{Epoch: first.gidx}, r)
	}
	sched.RunUntil(horizon)
	node.FinalizeOpen(horizon)
	if sink != nil {
		node.FinishStream(horizon)
	}
	return node
}

// runBounded executes the whole fleet against the bounded producer. Every
// node runs on its own goroutine regardless of Workers — a blocked node
// parks its goroutine, so concurrency is throttled by the window, not by
// a task pool — and the producer runs on one more. In streaming mode
// (sink != nil) each node emits into its own stream.Producer over the
// merger's intake and per-node traces are never materialized.
func (e *Engine) runBounded(intake chan<- stream.Batch) {
	nodeCfg := e.cfg.Fleet.Node
	gen := behavior.NewGenerator(nodeCfg.Workload)
	shared := capture.NewSharedModel(gen)
	horizon := simtime.Time(nodeCfg.Workload.Days) * simtime.Day

	nodes := e.cfg.Fleet.Nodes
	la := e.cfg.Lookahead
	if la <= 0 {
		la = DefaultLookahead
	}
	ch := newChain()
	queues := make([]chan ownedSession, nodes)
	for i := range queues {
		queues[i] = make(chan ownedSession, la)
	}
	// Schedulers are built on the caller's goroutine (a panicking
	// constructor must surface where the memo guard applies, not on a
	// node goroutine).
	scheds := make([]simtime.Scheduler, nodes)
	for i := range scheds {
		scheds[i] = e.newSched()
	}

	var arrivals uint64
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		arrivals = produceArrivals(e.cfg.Fleet, gen, ch, queues)
	}()

	arrCounter := e.cfg.Obs.Counter("engine_arrivals_total", "arrival events fired across all vantage nodes")
	e.nodeTraces = make([]*trace.Trace, nodes)
	e.schedPerNode = make([]uint64, nodes)
	perNode := make([]capture.NodeStats, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sink *stream.Producer
			if intake != nil {
				sink = stream.NewProducer(i, intake)
			}
			node := runNodeBounded(nodeCfg, i, scheds[i], shared, ch, queues[i], horizon, sink, arrCounter)
			e.nodeTraces[i] = node.Trace()
			perNode[i] = node.Stats()
			e.schedPerNode[i] = scheds[i].Scheduled()
		}(i)
	}
	wg.Wait()
	prodWG.Wait()

	e.stats = capture.FleetStats{Arrivals: arrivals, PerNode: perNode}
	for i := range perNode {
		e.stats.Rejected += perNode[i].Rejected
		e.stats.DroppedQueryEvents += perNode[i].DroppedQueryEvents
	}
}

// RunStream executes the simulation in full streaming mode and returns
// the drained merged trace: the bounded producer feeds per-node event
// loops, each vantage emits records into the streaming k-way merge as
// they finalize, and sink (which may be nil) observes every merged
// session in the global merged order as it retires — except sessions
// longer than the merge window, which the sink observes last (see
// Config.MergeWindow). Per-node traces and the partitioned session set
// are never materialized — at paper scale this is what cuts the
// simulate-phase peak RSS — and the returned trace is byte-identical to
// Run()'s (pinned by test, verified at full volume by equal trace
// hashes). Subsequent calls return the memoized trace.
func (e *Engine) RunStream(sink stream.Sink) *trace.Trace {
	if e.ran {
		return e.merged
	}
	// One span covers the overlapped simulate+merge pipeline, emitted
	// from this goroutine only so journal line order stays deterministic
	// (per-node goroutines touch atomic metric handles, never the
	// journal).
	sp := e.cfg.Obs.Begin("simulate",
		obs.A("mode", "stream"), obs.A("nodes", e.cfg.Fleet.Nodes))
	merger := stream.NewMerger(e.cfg.Fleet.Nodes, sink)
	merger.SetObserver(e.cfg.Obs)
	merger.SetWindow(e.mergeWindow())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.runBounded(merger.Intake())
	}()
	e.merged = merger.Run()
	wg.Wait()
	e.nodeTraces = nil // streaming nodes hold no records
	e.peakPending = merger.PeakPending()
	e.spilled = merger.Spilled()
	e.deadInputs = merger.DeadInputs()
	e.lostSessions = merger.LostSessions()
	sp.End(obs.A("arrivals", e.stats.Arrivals), obs.A("conns", len(e.merged.Conns)),
		obs.A("peak_pending", e.peakPending), obs.A("spilled", e.spilled))
	e.publishRunMetrics()
	// As in run(): the memo marks success only, so a panic recovered by
	// the caller leaves the engine retryable instead of poisoned.
	e.ran = true
	return e.merged
}
