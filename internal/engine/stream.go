package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
)

// DefaultLookahead is the bounded producer's per-node session window: how
// many undelivered sessions one vantage's queue may hold before the
// producer blocks. 48 nodes × 1024 sessions bounds the in-flight session
// set to ≈50 k objects at any instant — versus the 4.36 M the eager
// pre-partition holds at paper scale.
const DefaultLookahead = 1024

// chainChunk is one slab of the published arrival chain. Chunked storage
// lets readers index concurrently while the producer appends: a slab is
// never reallocated, and the chunk directory is replaced copy-on-write.
const chainChunkSize = 8192

type chainChunk struct {
	start [chainChunkSize]simtime.Time
	owner [chainChunkSize]uint32
}

// chain is the incrementally published arrival chain — the conservative
// synchronizer of the bounded producer. The producer appends (start,
// owner) pairs and advances the published length; node event loops read
// entry k+1 before firing chain position k, blocking (conservatively,
// in the Chandy–Misra sense: a node's clock never advances past the last
// published arrival instant) until the producer has published it or
// declared the chain complete. The fast path is two atomic loads; the
// mutex is only taken to sleep and to publish.
type chain struct {
	mu     sync.Mutex
	cond   *sync.Cond
	dir    atomic.Pointer[[]*chainChunk]
	n      atomic.Int64
	closed atomic.Bool
}

func newChain() *chain {
	c := &chain{}
	c.cond = sync.NewCond(&c.mu)
	empty := []*chainChunk{}
	c.dir.Store(&empty)
	return c
}

// at reads a published entry. The caller must know k < published length.
func (c *chain) at(k int64) (simtime.Time, uint32) {
	ch := (*c.dir.Load())[k/chainChunkSize]
	i := k % chainChunkSize
	return ch.start[i], ch.owner[i]
}

// get blocks until entry k is published or the chain ends before it; ok
// reports whether the entry exists.
func (c *chain) get(k int64) (simtime.Time, uint32, bool) {
	if k < c.n.Load() {
		st, ow := c.at(k)
		return st, ow, true
	}
	c.mu.Lock()
	for k >= c.n.Load() && !c.closed.Load() {
		c.cond.Wait()
	}
	c.mu.Unlock()
	if k >= c.n.Load() {
		return 0, 0, false
	}
	st, ow := c.at(k)
	return st, ow, true
}

// publish appends a batch of entries and wakes waiting readers. Only the
// producer goroutine calls it.
func (c *chain) publish(starts []simtime.Time, owners []uint32) {
	n := c.n.Load()
	dir := *c.dir.Load()
	for i := range starts {
		k := n + int64(i)
		if int(k/chainChunkSize) == len(dir) {
			grown := make([]*chainChunk, len(dir), len(dir)+1)
			copy(grown, dir)
			grown = append(grown, &chainChunk{})
			dir = grown
			c.dir.Store(&dir)
		}
		ch := dir[k/chainChunkSize]
		ch.start[k%chainChunkSize] = starts[i]
		ch.owner[k%chainChunkSize] = owners[i]
	}
	c.mu.Lock()
	c.n.Store(n + int64(len(starts)))
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish marks the chain complete and wakes all readers.
func (c *chain) finish() {
	c.mu.Lock()
	c.closed.Store(true)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// produceArrivals is the bounded producer: it replays the arrival process
// in the exact order the sequential fleet draws it — generator and
// session-GUID streams consumed identically, so the sharding is bit-equal
// to the eager partition — but publishes the chain incrementally and
// hands each session to its owner's bounded queue, blocking when that
// queue is full. Publication order is chain-before-session: by the time a
// node can fire chain position k, session k is already in (or on its way
// into) its owner's queue, and sessions arrive on each queue in exactly
// the order the node consumes them.
//
// Deadlock freedom: the producer blocks only on the slowest node's full
// queue; that node always has a queue's worth of sessions whose chain
// prefix is fully published, so it drains; every other node either
// progresses on published entries or sleeps in chain.get, holding no
// resource the producer needs.
func produceArrivals(cfg capture.FleetConfig, gen *behavior.Generator, ch *chain, queues []chan *behavior.Session) uint64 {
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	const batch = 512
	starts := make([]simtime.Time, 0, batch)
	owners := make([]uint32, 0, batch)
	sessions := make([]*behavior.Session, 0, batch)
	var total uint64
	flush := func() {
		if len(starts) == 0 {
			return
		}
		ch.publish(starts, owners)
		for i, s := range sessions {
			queues[owners[i]] <- s
		}
		starts, owners, sessions = starts[:0], owners[:0], sessions[:0]
	}
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		n := g.Shard(cfg.Nodes)
		starts = append(starts, sess.Start)
		owners = append(owners, uint32(n))
		sessions = append(sessions, sess)
		total++
		if len(starts) == batch {
			flush()
		}
	}
	flush()
	ch.finish()
	for _, q := range queues {
		close(q)
	}
	return total
}

// boundedRun is one vantage's event loop against the incrementally
// published chain: the bounded-mode counterpart of nodeRun, firing the
// identical event sequence (schedule-next-then-dispatch, same FIFO
// tie-break) with the full session set replaced by a Lookahead-deep
// queue.
type boundedRun struct {
	sched simtime.Scheduler
	node  *capture.Node
	ch    *chain
	queue <-chan *behavior.Session
	idx   uint32
	k     int64
}

// Fire advances the arrival chain exactly as nodeRun.Fire does; the only
// difference is where the next instant and the owned session come from
// (the published chain and the bounded queue, both of which may block
// this node's goroutine until the producer catches up).
func (r *boundedRun) Fire(now simtime.Time) {
	k := r.k
	r.k++
	if next, _, ok := r.ch.get(r.k); ok {
		r.sched.Schedule(next, r)
	}
	if _, owner := r.ch.at(k); owner == r.idx {
		r.node.Arrive(now, <-r.queue)
	}
}

// runNodeBounded simulates one vantage to the horizon against the
// bounded producer, in retained mode (tr non-nil) or streaming-sink mode.
func runNodeBounded(cfg capture.Config, idx int, sched simtime.Scheduler, shared *capture.SharedModel,
	ch *chain, queue <-chan *behavior.Session, horizon simtime.Time, sink *stream.Producer) *capture.Node {
	var node *capture.Node
	if sink != nil {
		node = capture.NewNodeStream(cfg, idx, sched, shared, sink)
	} else {
		node = capture.NewNode(cfg, idx, sched, shared)
	}
	r := &boundedRun{sched: sched, node: node, ch: ch, queue: queue, idx: uint32(idx)}
	if first, _, ok := ch.get(0); ok {
		sched.Schedule(first, r)
	}
	sched.RunUntil(horizon)
	node.FinalizeOpen(horizon)
	if sink != nil {
		node.FinishStream(horizon)
	}
	return node
}

// runBounded executes the whole fleet against the bounded producer. Every
// node runs on its own goroutine regardless of Workers — a blocked node
// parks its goroutine, so concurrency is throttled by the window, not by
// a task pool — and the producer runs on one more. In streaming mode
// (sink != nil) each node emits into its own stream.Producer over the
// merger's intake and per-node traces are never materialized.
func (e *Engine) runBounded(intake chan<- stream.Batch) {
	nodeCfg := e.cfg.Fleet.Node
	gen := behavior.NewGenerator(nodeCfg.Workload)
	shared := capture.NewSharedModel(gen)
	horizon := simtime.Time(nodeCfg.Workload.Days) * simtime.Day

	nodes := e.cfg.Fleet.Nodes
	la := e.cfg.Lookahead
	if la <= 0 {
		la = DefaultLookahead
	}
	ch := newChain()
	queues := make([]chan *behavior.Session, nodes)
	for i := range queues {
		queues[i] = make(chan *behavior.Session, la)
	}

	var arrivals uint64
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		arrivals = produceArrivals(e.cfg.Fleet, gen, ch, queues)
	}()

	e.nodeTraces = make([]*trace.Trace, nodes)
	perNode := make([]capture.NodeStats, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sink *stream.Producer
			if intake != nil {
				sink = stream.NewProducer(i, intake)
			}
			node := runNodeBounded(nodeCfg, i, e.newSched(), shared, ch, queues[i], horizon, sink)
			e.nodeTraces[i] = node.Trace()
			perNode[i] = node.Stats()
		}(i)
	}
	wg.Wait()
	prodWG.Wait()

	e.stats = capture.FleetStats{Arrivals: arrivals, PerNode: perNode}
	for i := range perNode {
		e.stats.Rejected += perNode[i].Rejected
		e.stats.DroppedQueryEvents += perNode[i].DroppedQueryEvents
	}
}

// RunStream executes the simulation in full streaming mode and returns
// the drained merged trace: the bounded producer feeds per-node event
// loops, each vantage emits records into the streaming k-way merge as
// they finalize, and sink (which may be nil) observes every merged
// session in the global merged order as it retires. Per-node traces and
// the partitioned session set are never materialized — at paper scale
// this is what cuts the simulate-phase peak RSS — and the returned trace
// is byte-identical to Run()'s (pinned by test, verified at full volume
// by equal trace hashes). Subsequent calls return the memoized trace.
func (e *Engine) RunStream(sink stream.Sink) *trace.Trace {
	if e.ran {
		return e.merged
	}
	e.ran = true
	merger := stream.NewMerger(e.cfg.Fleet.Nodes, sink)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.runBounded(merger.Intake())
	}()
	e.merged = merger.Run()
	wg.Wait()
	e.nodeTraces = nil // streaming nodes hold no records
	e.peakPending = merger.PeakPending()
	return e.merged
}
