package engine

import (
	"runtime"
	"testing"

	"repro/internal/capture"
)

// benchCfg must stay in lockstep with benchFleetConfig in the root
// package's bench_test.go: the root pair is the CI speedup gate, and the
// benchmarks here measure that same workload's sequential partition share
// (the Amdahl bound for the gate's headroom).
func benchCfg() capture.FleetConfig {
	cfg := capture.DefaultConfig(2004, 0.05)
	cfg.Workload.Days = 2
	return capture.FleetConfig{Node: cfg, Nodes: 8}
}

// BenchmarkPartitionArrivals isolates the engine's sequential phase — the
// arrival replay that generates, GUID-tags and shards every session. Its
// share of BenchmarkEngineRun bounds the parallel speedup by Amdahl's law,
// which is why the phase stays a single tight pass.
func BenchmarkPartitionArrivals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _ := partitionArrivals(benchCfg())
		if len(p.starts) == 0 {
			b.Fatal("no arrivals")
		}
	}
}

// BenchmarkEngineRun measures the full parallel simulation at machine
// size: partition, per-node event loops, merge.
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(Config{Fleet: benchCfg(), Workers: runtime.GOMAXPROCS(0)}).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkEngineHighNodeCount runs the keyed engine at a node count far
// beyond the paper's 48-vantage fleet, the regime the keyed tie-break
// exists for: under chain replay every node re-fired the whole global
// arrival chain, so the fleet's total scheduled events had a hard floor
// of nodes × arrivals and this benchmark would have been quadratic-ish
// in the fleet size. The asserted bound is that floor; the reported
// sched-events/node metric is the busiest node's lifetime
// scheduled-event count — O(own sessions + own per-session events), it
// *falls* as nodes grow instead of staying pinned at the arrival count.
func BenchmarkEngineHighNodeCount(b *testing.B) {
	cfg := capture.DefaultConfig(2004, 0.02)
	cfg.Workload.Days = 1
	fleet := capture.FleetConfig{Node: cfg, Nodes: 128}
	b.ReportAllocs()
	var maxSched uint64
	for i := 0; i < b.N; i++ {
		e := New(Config{Fleet: fleet, Workers: runtime.GOMAXPROCS(0)})
		tr := e.Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
		maxSched = 0
		var total uint64
		for _, n := range e.ScheduledPerNode() {
			if n > maxSched {
				maxSched = n
			}
			total += n
		}
		if floor := e.Stats().Arrivals * uint64(fleet.Nodes); total >= floor {
			b.Fatalf("fleet scheduled %d events ≥ the %d chain-replay floor (nodes × arrivals) — replay cost is back", total, floor)
		}
	}
	b.ReportMetric(float64(maxSched), "sched-events/node")
}
