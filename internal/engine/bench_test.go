package engine

import (
	"runtime"
	"testing"

	"repro/internal/capture"
)

// benchCfg must stay in lockstep with benchFleetConfig in the root
// package's bench_test.go: the root pair is the CI speedup gate, and the
// benchmarks here measure that same workload's sequential partition share
// (the Amdahl bound for the gate's headroom).
func benchCfg() capture.FleetConfig {
	cfg := capture.DefaultConfig(2004, 0.05)
	cfg.Workload.Days = 2
	return capture.FleetConfig{Node: cfg, Nodes: 8}
}

// BenchmarkPartitionArrivals isolates the engine's sequential phase — the
// arrival replay that generates, GUID-tags and shards every session. Its
// share of BenchmarkEngineRun bounds the parallel speedup by Amdahl's law,
// which is why the phase stays a single tight pass.
func BenchmarkPartitionArrivals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _ := partitionArrivals(benchCfg())
		if len(p.starts) == 0 {
			b.Fatal("no arrivals")
		}
	}
}

// BenchmarkEngineRun measures the full parallel simulation at machine
// size: partition, per-node event loops, merge.
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(Config{Fleet: benchCfg(), Workers: runtime.GOMAXPROCS(0)}).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}
