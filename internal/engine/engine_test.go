package engine

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func testCfg(seed uint64, days int, nodes int) capture.FleetConfig {
	cfg := capture.DefaultConfig(seed, 0.01)
	cfg.Workload.Days = days
	return capture.FleetConfig{Node: cfg, Nodes: nodes}
}

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineMatchesFleetByteForByte is the subsystem's acceptance pin: for
// several node counts, the engine's merged trace must equal the sequential
// capture.Fleet's merged trace byte for byte, at every worker count.
func TestEngineMatchesFleetByteForByte(t *testing.T) {
	for _, nodes := range []int{1, 3, 4} {
		fleet := capture.NewFleet(testCfg(2004, 2, nodes))
		want := traceBytes(t, fleet.Run())
		for _, workers := range []int{1, 2, 4, 8} {
			e := New(Config{Fleet: testCfg(2004, 2, nodes), Workers: workers})
			got := traceBytes(t, e.Run())
			if !bytes.Equal(want, got) {
				t.Fatalf("nodes=%d workers=%d: engine trace differs from sequential fleet", nodes, workers)
			}
		}
	}
}

// TestEngineOneNodeMatchesHistoricalSim pins the engine against the
// paper's literal deployment: a one-node engine run must reproduce the
// historical single-vantage Sim trace byte for byte.
func TestEngineOneNodeMatchesHistoricalSim(t *testing.T) {
	cfg := capture.DefaultConfig(21, 0.01)
	cfg.Workload.Days = 1
	want := traceBytes(t, capture.New(cfg).Run())
	e := New(Config{Fleet: capture.FleetConfig{Node: cfg, Nodes: 1}, Workers: 4})
	got := traceBytes(t, e.Run())
	if !bytes.Equal(want, got) {
		t.Fatal("one-node engine differs from historical Sim")
	}
}

// TestEnginePerNodeTracesMatchFleet checks the stronger claim behind the
// merge identity: each node's own trace — not just the merged union — is
// byte-identical to the sequential fleet's, which is what the chain-replay
// tie-break argument guarantees.
func TestEnginePerNodeTracesMatchFleet(t *testing.T) {
	fleet := capture.NewFleet(testCfg(7, 2, 4))
	fleet.Run()
	e := New(Config{Fleet: testCfg(7, 2, 4), Workers: 4})
	e.Run()
	ft, et := fleet.NodeTraces(), e.NodeTraces()
	if len(ft) != len(et) {
		t.Fatalf("node counts differ: %d vs %d", len(ft), len(et))
	}
	for i := range ft {
		if !bytes.Equal(traceBytes(t, ft[i]), traceBytes(t, et[i])) {
			t.Fatalf("node %d trace differs between fleet and engine", i)
		}
	}
}

// TestEngineStatsMatchFleet pins the accounting: total arrivals, per-node
// connection counts, rejections, peaks and drop counters must all equal
// the sequential fleet's.
func TestEngineStatsMatchFleet(t *testing.T) {
	fleet := capture.NewFleet(testCfg(11, 2, 3))
	fleet.Run()
	e := New(Config{Fleet: testCfg(11, 2, 3), Workers: 2})
	e.Run()
	fs, es := fleet.Stats(), e.Stats()
	if fs.Arrivals != es.Arrivals || fs.Rejected != es.Rejected || fs.DroppedQueryEvents != es.DroppedQueryEvents {
		t.Fatalf("aggregate stats differ: fleet %+v engine %+v", fs, es)
	}
	if len(fs.PerNode) != len(es.PerNode) {
		t.Fatalf("per-node rows differ: %d vs %d", len(fs.PerNode), len(es.PerNode))
	}
	for i := range fs.PerNode {
		if fs.PerNode[i] != es.PerNode[i] {
			t.Fatalf("node %d stats differ: fleet %+v engine %+v", i, fs.PerNode[i], es.PerNode[i])
		}
	}
	var accepted, rejected uint64
	for _, ns := range es.PerNode {
		accepted += uint64(ns.Conns)
		rejected += ns.Rejected
	}
	if accepted+rejected != es.Arrivals {
		t.Fatalf("accounting identity broken: %d + %d != %d", accepted, rejected, es.Arrivals)
	}
}

// TestEngineSchedulerImplementationIrrelevant swaps the per-node calendar
// queue for the binary heap: the engine's output must not depend on which
// order-equivalent scheduler implementation runs the loops.
func TestEngineSchedulerImplementationIrrelevant(t *testing.T) {
	cal := New(Config{Fleet: testCfg(5, 1, 3), Workers: 2})
	heap := New(Config{Fleet: testCfg(5, 1, 3), Workers: 2})
	heap.newSched = func() simtime.Scheduler { return simtime.NewScheduler() }
	if !bytes.Equal(traceBytes(t, cal.Run()), traceBytes(t, heap.Run())) {
		t.Fatal("engine output depends on the scheduler implementation")
	}
}

// TestEngineDeterminism: two identical engine runs at machine-sized
// workers produce identical bytes.
func TestEngineDeterminism(t *testing.T) {
	a := New(Config{Fleet: testCfg(13, 1, 3)})
	b := New(Config{Fleet: testCfg(13, 1, 3)})
	if !bytes.Equal(traceBytes(t, a.Run()), traceBytes(t, b.Run())) {
		t.Fatal("two identical engine runs differ")
	}
}

// TestEngineRunMemoized: Run twice returns the same trace object.
func TestEngineRunMemoized(t *testing.T) {
	e := New(Config{Fleet: testCfg(3, 1, 2), Workers: 2})
	if e.Run() != e.Run() {
		t.Fatal("second Run did not return the memoized trace")
	}
}

// TestEngineMatchesFleetAtScale is the opt-in heavyweight version of the
// byte-identity pin, for verifying the contract near paper volume rather
// than at test scale. Enable with e.g.
//
//	ENGINE_EQUIV_SCALE=0.25 ENGINE_EQUIV_DAYS=40 go test -run AtScale -timeout 2h ./internal/engine
//
// (≈ minutes per run; the regular suite pins the same property at small
// scale on every CI run.)
func TestEngineMatchesFleetAtScale(t *testing.T) {
	scaleStr := os.Getenv("ENGINE_EQUIV_SCALE")
	if scaleStr == "" {
		t.Skip("set ENGINE_EQUIV_SCALE (and optionally ENGINE_EQUIV_DAYS, ENGINE_EQUIV_NODES) to run")
	}
	scale, err := strconv.ParseFloat(scaleStr, 64)
	if err != nil {
		t.Fatalf("bad ENGINE_EQUIV_SCALE: %v", err)
	}
	days := 40
	if d := os.Getenv("ENGINE_EQUIV_DAYS"); d != "" {
		if days, err = strconv.Atoi(d); err != nil {
			t.Fatalf("bad ENGINE_EQUIV_DAYS: %v", err)
		}
	}
	nodes := 48
	if n := os.Getenv("ENGINE_EQUIV_NODES"); n != "" {
		if nodes, err = strconv.Atoi(n); err != nil {
			t.Fatalf("bad ENGINE_EQUIV_NODES: %v", err)
		}
	}
	cfg := capture.DefaultConfig(2004, scale)
	cfg.Workload.Days = days
	fc := capture.FleetConfig{Node: cfg, Nodes: nodes}
	t.Logf("sequential fleet: scale=%g days=%d nodes=%d", scale, days, nodes)
	want := traceBytes(t, capture.NewFleet(fc).Run())
	t.Logf("engine (machine workers)")
	got := traceBytes(t, New(Config{Fleet: fc}).Run())
	if !bytes.Equal(want, got) {
		t.Fatal("engine trace differs from sequential fleet at scale")
	}
	t.Logf("identical: %d trace bytes", len(want))
}

// TestEngineRunRetryableAfterPanic pins the memo fix: a run that panics
// (here via a failing scheduler constructor) must leave the engine
// retryable — before the fix, run() set ran=true up front, so a caller
// that recovered the panic got a poisoned engine returning a nil trace
// and zero stats forever.
func TestEngineRunRetryableAfterPanic(t *testing.T) {
	for _, lookahead := range []int{0, 16} {
		e := New(Config{Fleet: testCfg(13, 1, 3), Lookahead: lookahead})
		real := e.newSched
		e.newSched = func() simtime.Scheduler { panic("scheduler construction failed") }
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("lookahead=%d: expected Run to panic", lookahead)
				}
			}()
			e.Run()
		}()
		e.newSched = real
		tr := e.Run()
		if tr == nil {
			t.Fatalf("lookahead=%d: engine poisoned — retry after recovered panic returned nil trace", lookahead)
		}
		want := New(Config{Fleet: testCfg(13, 1, 3), Lookahead: lookahead}).Run()
		if !bytes.Equal(traceBytes(t, want), traceBytes(t, tr)) {
			t.Fatalf("lookahead=%d: retried run trace differs from a fresh engine's", lookahead)
		}
		if e.Stats().Arrivals == 0 {
			t.Fatalf("lookahead=%d: retried run reported zero arrivals", lookahead)
		}
	}
}

// TestPeakPendingReportedEveryMode pins the accounting contract: every
// mode that produces the merged trace drives the streaming merge, so
// PeakPending is nonzero after eager Run, bounded Run, and RunStream
// alike — the analyze -perf line no longer reports a misleading zero for
// the batch paths.
func TestPeakPendingReportedEveryMode(t *testing.T) {
	modes := []struct {
		name string
		run  func(e *Engine)
	}{
		{"eager", func(e *Engine) { e.Run() }},
		{"bounded", func(e *Engine) { e.Run() }},
		{"stream", func(e *Engine) { e.RunStream(nil) }},
	}
	for _, m := range modes {
		cfg := Config{Fleet: testCfg(7, 1, 4)}
		if m.name == "bounded" {
			cfg.Lookahead = 16
		}
		e := New(cfg)
		m.run(e)
		if e.PeakPending() <= 0 {
			t.Fatalf("%s: PeakPending = %d, want > 0", m.name, e.PeakPending())
		}
	}
}
