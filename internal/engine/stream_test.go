package engine

import (
	"bytes"
	"testing"

	"repro/internal/capture"
	"repro/internal/stream"
	"repro/internal/trace"
)

// TestBoundedLookaheadMatchesEager pins satellite byte-identity: the
// bounded producer (conservative time-window synchronizer, per-node
// session queues) must reproduce the eager pre-partition's merged trace
// byte for byte, across node counts and aggressively small windows (a
// 1-session window maximizes synchronizer round trips).
func TestBoundedLookaheadMatchesEager(t *testing.T) {
	for _, nodes := range []int{1, 3, 4} {
		want := traceBytes(t, New(Config{Fleet: testCfg(2004, 2, nodes), Workers: 4}).Run())
		for _, la := range []int{1, 7, 1024} {
			e := New(Config{Fleet: testCfg(2004, 2, nodes), Lookahead: la})
			got := traceBytes(t, e.Run())
			if !bytes.Equal(want, got) {
				t.Fatalf("nodes=%d lookahead=%d: bounded trace differs from eager", nodes, la)
			}
		}
	}
}

// TestBoundedMatchesSequentialFleet closes the loop to the original
// reference: bounded engine vs the sequential capture.Fleet.
func TestBoundedMatchesSequentialFleet(t *testing.T) {
	fleet := capture.NewFleet(testCfg(7, 2, 3))
	want := traceBytes(t, fleet.Run())
	got := traceBytes(t, New(Config{Fleet: testCfg(7, 2, 3), Lookahead: 64}).Run())
	if !bytes.Equal(want, got) {
		t.Fatal("bounded engine differs from sequential fleet")
	}
}

// TestBoundedStatsMatchEager: the accounting identity must survive the
// bounded producer.
func TestBoundedStatsMatchEager(t *testing.T) {
	eager := New(Config{Fleet: testCfg(11, 2, 3), Workers: 2})
	eager.Run()
	bounded := New(Config{Fleet: testCfg(11, 2, 3), Lookahead: 16})
	bounded.Run()
	es, bs := eager.Stats(), bounded.Stats()
	if es.Arrivals != bs.Arrivals || es.Rejected != bs.Rejected || es.DroppedQueryEvents != bs.DroppedQueryEvents {
		t.Fatalf("aggregate stats differ: eager %+v bounded %+v", es, bs)
	}
	for i := range es.PerNode {
		if es.PerNode[i] != bs.PerNode[i] {
			t.Fatalf("node %d stats differ: eager %+v bounded %+v", i, es.PerNode[i], bs.PerNode[i])
		}
	}
}

// TestRunStreamMatchesBatch is the streaming tentpole's acceptance pin:
// the drained merged trace of a full streaming run — bounded producer,
// per-node event emission, k-way online merge — must be byte-identical to
// the batch engine's merged trace, across node counts.
func TestRunStreamMatchesBatch(t *testing.T) {
	for _, nodes := range []int{1, 3, 4} {
		want := traceBytes(t, New(Config{Fleet: testCfg(2004, 2, nodes), Workers: 4}).Run())
		e := New(Config{Fleet: testCfg(2004, 2, nodes)})
		got := traceBytes(t, e.RunStream(nil))
		if !bytes.Equal(want, got) {
			t.Fatalf("nodes=%d: streaming run differs from batch engine", nodes)
		}
		if e.NodeTraces() != nil {
			t.Fatal("streaming run retained per-node traces")
		}
	}
}

// TestRunStreamHashMatchesBatch: the canonical trace hash — what the
// full-scale run compares — agrees between the two paths.
func TestRunStreamHashMatchesBatch(t *testing.T) {
	batch := New(Config{Fleet: testCfg(3, 1, 3), Workers: 2}).Run()
	streamed := New(Config{Fleet: testCfg(3, 1, 3)}).RunStream(nil)
	hb, err := batch.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := streamed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hb != hs {
		t.Fatalf("trace hashes differ: batch %x stream %x", hb, hs)
	}
}

// TestRunStreamStats: streaming accounting equals the batch engine's.
func TestRunStreamStats(t *testing.T) {
	batch := New(Config{Fleet: testCfg(5, 1, 3), Workers: 2})
	batch.Run()
	str := New(Config{Fleet: testCfg(5, 1, 3)})
	str.RunStream(nil)
	bs, ss := batch.Stats(), str.Stats()
	if bs.Arrivals != ss.Arrivals || bs.Rejected != ss.Rejected {
		t.Fatalf("stats differ: batch %+v stream %+v", bs, ss)
	}
	for i := range bs.PerNode {
		if bs.PerNode[i] != ss.PerNode[i] {
			t.Fatalf("node %d stats differ: batch %+v stream %+v", i, bs.PerNode[i], ss.PerNode[i])
		}
	}
	if str.PeakPending() == 0 {
		t.Fatal("streaming run reported no pending high-water mark")
	}
}

// TestRunStreamOnlineDeterministic: the online layer riding the merge
// sink must produce identical snapshots across runs (the emission order
// is deterministic regardless of goroutine interleaving), and its exact
// counters must match the drained trace.
func TestRunStreamOnlineDeterministic(t *testing.T) {
	run := func() (stream.Snapshot, *trace.Trace) {
		online := stream.NewOnline(stream.OnlineConfig{})
		e := New(Config{Fleet: testCfg(13, 2, 3)})
		tr := e.RunStream(online)
		return online.Snapshot(10), tr
	}
	a, tr := run()
	b, _ := run()
	if a.Sessions != b.Sessions || a.Queries != b.Queries || a.Duration != b.Duration ||
		a.Interarrival != b.Interarrival || a.ArrivalsPerHour != b.ArrivalsPerHour ||
		a.QueriesPerHour != b.QueriesPerHour || a.Under64Fraction != b.Under64Fraction {
		t.Fatalf("online snapshots differ across runs:\n%+v\n%+v", a, b)
	}
	if len(a.TopKeywords) != len(b.TopKeywords) {
		t.Fatal("top-K lengths differ across runs")
	}
	for i := range a.TopKeywords {
		if a.TopKeywords[i] != b.TopKeywords[i] {
			t.Fatalf("top-K differs at %d: %+v vs %+v", i, a.TopKeywords[i], b.TopKeywords[i])
		}
	}
	if a.Sessions != uint64(len(tr.Conns)) {
		t.Fatalf("online sessions %d != drained conns %d", a.Sessions, len(tr.Conns))
	}
	if a.Queries != uint64(len(tr.Queries)) {
		t.Fatalf("online queries %d != drained queries %d", a.Queries, len(tr.Queries))
	}
	exact := stream.Exact(tr, 10)
	if a.Under64Fraction != exact.Under64Fraction {
		t.Fatalf("under-64 share differs from exact: %g vs %g", a.Under64Fraction, exact.Under64Fraction)
	}
}
