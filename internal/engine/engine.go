// Package engine is the parallel execution layer of the measurement
// simulation: a sharded discrete-event engine that runs every vantage node
// of a capture fleet on its own goroutine — its own virtual clock, its own
// calendar-queue event scheduler, its own random streams — and joins the
// per-node traces with trace.Merge into a result byte-identical to the
// sequential capture.Fleet at every worker count.
//
// # Why this is possible
//
// The fleet's vantage nodes are independent given the arrival shard: a
// node's event stream is generated entirely by its own arrivals and its
// own per-node random streams, and the only cross-node state — the arrival
// process, the session-GUID stream that shards it, and the read-only
// SharedModel — is consumed in arrival order regardless of sharding. The
// engine therefore runs in two phases:
//
//  1. Partition (sequential): replay the arrival process once, drawing the
//     session GUIDs in the exact order the sequential fleet draws them,
//     split the sessions by guid.Shard into per-node lists, and record
//     each arrival's (timestamp, global chain position) — the precomputed
//     tie-break key that makes phase 2 independent of foreign arrivals.
//  2. Execute (parallel): each node simulates on its own scheduler,
//     scheduling only its own sessions. Per-node cost is O(own sessions ×
//     events per session); the global arrival count appears only through
//     O(log) amortized reads of the shared, immutable starts array.
//
// # Determinism contract (keyed tie-break, merge order-independent)
//
// In the sequential fleet, events with equal timestamps fire in schedule
// (FIFO) order of one global sequence counter. That counter is equivalent
// to a lexicographic tag (P, c): P = how many arrivals have been
// dispatched when the event is scheduled, c = the schedule call's rank
// within that interval — arrival k itself always carrying exactly (k, 0),
// because the fleet's dispatcher schedules arrival k as the first call
// while dispatching arrival k-1. The engine reproduces those tags without
// replaying foreign arrivals:
//
//   - Each own arrival k is scheduled with the explicit simtime.SeqKey
//     {Epoch: k, Pos: 0} at its precomputed timestamp — exactly the tag it
//     has in the sequential order.
//   - A pre-fire hook (simtime.Scheduler.SetFireHook) maintains the
//     node's virtual chain cursor: before an implicit event with key
//     (t, E, p≥1) fires, the hook counts — by a forward-only galloping
//     search over the shared starts array — how many global arrivals
//     precede it in the total order (start < t, or start == t with index
//     ≤ E), and reseeds the scheduler's implicit key to (count, 1) when
//     the count advanced. Every event the node schedules therefore gets
//     the same (P, c) tag it would get in the sequential fleet, Pos 0 of
//     each epoch staying reserved for the arrival itself.
//
// The restriction of the global fire order to one node's events then
// equals the node's solo fire order — equal-timestamp ties included, which
// do occur at full volume — so each per-node trace is byte-identical to
// its sequential counterpart. trace.Merge is order-independent by total
// order, so the merged trace is byte-identical too, for every Workers
// value and for Workers == 1, and a one-node engine run reproduces the
// historical single-vantage Sim byte for byte. All of this is pinned by
// test against the sequential fleet and against a full-chain-replay
// oracle (the engine's previous mechanism, kept in the test suite), at
// node counts up to 256 and by fuzzing.
//
// The engine holds the full partitioned session set in memory (the
// sequential fleet generates lazily); at paper scale this is a few GB on
// top of the trace itself, released progressively as nodes consume their
// shards.
package engine

import (
	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes a parallel fleet simulation.
type Config struct {
	// Fleet is the deployment exactly as capture.NewFleet takes it.
	Fleet capture.FleetConfig
	// Workers bounds the goroutines executing node event loops in the
	// eager mode, following the shared par.Workers convention: 0 means
	// GOMAXPROCS, values below 1 mean 1. The trace is byte-identical for
	// every setting. In bounded mode (Lookahead > 0, and always under
	// RunStream) every node runs its own goroutine and throttling comes
	// from the producer window instead — a blocked node parks, so the OS
	// scheduler sizes the effective parallelism.
	Workers int
	// Lookahead > 0 replaces the eager pre-partition with the bounded
	// producer: the arrival chain is published incrementally through a
	// conservative time-window synchronizer and each node's undelivered
	// sessions are capped at Lookahead, so the in-flight session set is
	// nodes × Lookahead instead of the whole measurement period (the few
	// GB the eager partition holds at paper scale). 0 keeps the eager
	// path. The trace is byte-identical either way (pinned by test).
	Lookahead int
	// MergeWindow bounds how long one open session may hold the streaming
	// merge's emission barrier in RunStream: sessions longer than the
	// window take the merge's spill-to-final-sort path instead of freezing
	// retirement (see stream.Merger.SetWindow — the drained trace is
	// byte-identical either way). 0 means DefaultMergeWindow; negative
	// disables the window (the pending buffer is then bounded only by the
	// oldest open session, the pre-window behavior).
	MergeWindow simtime.Time
	// Obs attaches the observability layer: phase spans
	// (partition/simulate/merge) on the journal, the arrival-throughput
	// counter and post-run scheduler/merge gauges on the registry.
	// Instrumentation never touches RNG streams or scheduling order — the
	// merged trace is byte-identical with or without it — and a nil
	// observer runs at the uninstrumented cost (nil-handle no-ops).
	Obs *obs.Observer
}

// DefaultMergeWindow is the emission window RunStream uses when
// Config.MergeWindow is 0: a generous max-duration quantile of the
// paper's session-duration model. The duration fits are seconds-to-hours
// scale — sessions outlasting a full day are deep in the Pareto tail —
// so the window virtually never spills while capping the pending buffer
// at one day's worth of completed sessions even when a session spans the
// whole trace.
const DefaultMergeWindow = simtime.Day

// mergeWindow resolves Config.MergeWindow to the effective window.
func (e *Engine) mergeWindow() simtime.Time {
	switch {
	case e.cfg.MergeWindow > 0:
		return e.cfg.MergeWindow
	case e.cfg.MergeWindow < 0:
		return 0
	default:
		return DefaultMergeWindow
	}
}

// Engine is a parallel sharded fleet simulation. Create with New, execute
// with Run; like capture.Fleet, a second Run returns the memoized trace.
type Engine struct {
	cfg Config
	// newSched builds each node's scheduler. The calendar queue is the
	// production choice — at the full-volume run's pending-event counts it
	// beats the binary heap (see simtime's BenchmarkSchedulerHold and the
	// committed BENCH_pr4.json) — while tests swap in the heap to pin that
	// the engine's output does not depend on the implementation.
	newSched func() simtime.Scheduler

	ran        bool
	merged     *trace.Trace
	stats      capture.FleetStats
	nodeTraces []*trace.Trace
	// peakPending is the streaming merge's high-water mark of completed
	// sessions held behind the emission barrier; every mode sets it (Run
	// feeds the materialized traces through the same streaming merge).
	peakPending int
	// spilled is the merge's outlier count: sessions longer than the
	// emission window, folded in at finish instead of held pending.
	spilled int
	// deadInputs and lostSessions mirror the merge's degradation ledger
	// (stream.Merger): always zero for in-process runs, where no input
	// can die — populated so the perf accounting row is uniform with the
	// distributed collector's, whose inputs can.
	deadInputs   int
	lostSessions uint64
	// schedPerNode is each node's lifetime scheduled-event count — the
	// O(own sessions) scaling metric the keyed tie-break buys, versus the
	// O(global arrivals) every node paid under chain replay.
	schedPerNode []uint64
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Fleet.Nodes < 1 {
		cfg.Fleet.Nodes = 1
	}
	return &Engine{
		cfg:      cfg,
		newSched: func() simtime.Scheduler { return simtime.NewCalendarScheduler() },
	}
}

// NodeCount returns the number of vantage points.
func (e *Engine) NodeCount() int { return e.cfg.Fleet.Nodes }

// Run executes the full measurement period once and returns the merged
// trace; subsequent calls return the same trace.
func (e *Engine) Run() *trace.Trace {
	e.run()
	return e.merged
}

// Stats reports the fleet accounting, running the simulation first if
// needed. The same identity as capture.FleetStats holds: Arrivals ==
// Σ Conns + Σ Rejected over the per-node rows.
func (e *Engine) Stats() capture.FleetStats {
	e.run()
	return e.stats
}

// NodeTraces returns each vantage's own trace in node order, running the
// simulation first if needed. The slices alias the engine's records; treat
// them as read-only.
func (e *Engine) NodeTraces() []*trace.Trace {
	e.run()
	return e.nodeTraces
}

func (e *Engine) run() {
	if e.ran {
		return
	}

	if e.cfg.Lookahead > 0 {
		sp := e.cfg.Obs.Begin("simulate",
			obs.A("mode", "bounded"), obs.A("nodes", e.cfg.Fleet.Nodes), obs.A("lookahead", e.cfg.Lookahead))
		e.runBounded(nil)
		sp.End(obs.A("arrivals", e.stats.Arrivals))
	} else {
		e.runEager()
	}
	// The production merge is the streaming k-way merge (fed the
	// materialized per-node traces here); batch trace.Merge remains the
	// reference oracle the equivalence tests compare against.
	msp := e.cfg.Obs.Begin("merge", obs.A("inputs", len(e.nodeTraces)))
	var ms stream.MergeStats
	e.merged, ms = stream.MergeTracesObs(e.cfg.Obs, e.nodeTraces...)
	e.peakPending = ms.PeakPending
	e.spilled = ms.Spilled
	e.deadInputs = ms.DeadInputs
	e.lostSessions = ms.LostSessions
	msp.End(obs.A("conns", len(e.merged.Conns)), obs.A("peak_pending", ms.PeakPending), obs.A("spilled", ms.Spilled))
	e.publishRunMetrics()
	// Mark the memo only after the run completed: a panic recovered by
	// the caller must leave the engine retryable, not poisoned into
	// returning a nil trace and zero stats forever.
	e.ran = true
}

// publishRunMetrics writes the engine's post-run summary gauges from its
// authoritative fields, so a registry scrape (or the final journal
// metrics snapshot) reports exactly the values the Stats/accessor API
// returns. No-op without a registry.
func (e *Engine) publishRunMetrics() {
	reg := e.cfg.Obs.Reg()
	if reg == nil {
		return
	}
	var total, maxNode uint64
	for _, n := range e.schedPerNode {
		total += n
		if n > maxNode {
			maxNode = n
		}
	}
	maxPeak := 0
	for i := range e.stats.PerNode {
		if p := e.stats.PerNode[i].PeakConns; p > maxPeak {
			maxPeak = p
		}
	}
	reg.Gauge("engine_sched_events_total", "scheduler events fired across all nodes").SetInt(int64(total))
	reg.Gauge("engine_sched_events_max_node", "busiest node's scheduled-event count").SetInt(int64(maxNode))
	reg.Gauge("engine_rejected_arrivals", "arrivals rejected by per-node connection caps").SetInt(int64(e.stats.Rejected))
	reg.Gauge("engine_max_peak_conns", "largest per-node concurrent-connection peak").SetInt(int64(maxPeak))
	reg.Gauge("engine_nodes", "vantage nodes in the fleet").SetInt(int64(e.cfg.Fleet.Nodes))
}

func (e *Engine) runEager() {
	nodeCfg := e.cfg.Fleet.Node
	nodes := e.cfg.Fleet.Nodes
	psp := e.cfg.Obs.Begin("partition", obs.A("nodes", nodes))
	part, shared := partitionArrivals(e.cfg.Fleet)
	psp.End(obs.A("arrivals", len(part.starts)))
	horizon := simtime.Time(nodeCfg.Workload.Days) * simtime.Day

	e.nodeTraces = make([]*trace.Trace, nodes)
	e.schedPerNode = make([]uint64, nodes)
	perNode := make([]capture.NodeStats, nodes)
	// Schedulers are built on the caller's goroutine (a panicking
	// constructor must surface here, where run()'s memo guard applies,
	// not on a pool worker).
	scheds := make([]simtime.Scheduler, nodes)
	for i := range scheds {
		scheds[i] = e.newSched()
	}
	arrivals := e.cfg.Obs.Counter("engine_arrivals_total", "arrival events fired across all vantage nodes")
	ssp := e.cfg.Obs.Begin("simulate",
		obs.A("mode", "eager"), obs.A("nodes", nodes), obs.A("workers", par.Workers(e.Workers())))
	tasks := make([]func(), nodes)
	for i := range tasks {
		i := i
		tasks[i] = func() {
			e.nodeTraces[i], perNode[i] = runNode(nodeCfg, i, scheds[i], shared, part, horizon, arrivals)
			e.schedPerNode[i] = scheds[i].Scheduled()
		}
	}
	par.Run(par.Workers(e.Workers()), tasks)
	ssp.End(obs.A("arrivals", len(part.starts)))

	e.stats = capture.FleetStats{
		Arrivals: uint64(len(part.starts)),
		PerNode:  perNode,
	}
	for i := range perNode {
		e.stats.Rejected += perNode[i].Rejected
		e.stats.DroppedQueryEvents += perNode[i].DroppedQueryEvents
	}
}

// PeakPending reports the streaming merge's high-water mark of completed
// sessions held behind the emission barrier. Every execution mode drives
// the streaming merge — RunStream over live producers, Run over the
// materialized per-node traces — so the diagnostic is populated (after
// the run) in every mode.
func (e *Engine) PeakPending() int { return e.peakPending }

// SpilledSessions reports how many merged sessions exceeded the emission
// window and took the merge's spill-to-final-sort path (see
// Config.MergeWindow); 0 when the window never bound.
func (e *Engine) SpilledSessions() int { return e.spilled }

// DeadInputs reports how many merge inputs were evicted instead of
// delivering their trailer. Always 0 for in-process runs (no input can
// die); the accessor exists so the perf accounting row carries the same
// degradation ledger the distributed ingest collector reports.
func (e *Engine) DeadInputs() int { return e.deadInputs }

// LostSessions reports how many sessions evicted inputs left open —
// sessions known lost to input death. Always 0 in-process.
func (e *Engine) LostSessions() uint64 { return e.lostSessions }

// ScheduledPerNode returns each node's lifetime scheduled-event count in
// node order, running the simulation first if needed. With the keyed
// tie-break this is O(own sessions × events per session) per node; under
// the old chain replay every node also paid one event per *global*
// arrival, which is the superlinearity the high-node-count benchmark
// guards against.
func (e *Engine) ScheduledPerNode() []uint64 {
	e.run()
	return e.schedPerNode
}

// Workers returns the configured worker bound (unresolved; 0 means
// machine-sized).
func (e *Engine) Workers() int { return e.cfg.Workers }

// ownedSession is one node-owned arrival: the session object plus its
// global chain position, which is the Epoch of its precomputed tie-break
// key.
type ownedSession struct {
	sess *behavior.Session
	gidx uint64
}

// partition is the pre-sharded arrival stream: every arrival instant in
// chain order (shared, read-only — the keyed runs' chain cursors search
// it), and the session objects split per node in the same chain order
// with their global positions, so a node consumes its list front to back.
type partition struct {
	starts  []simtime.Time
	perNode [][]ownedSession
}

// partitionArrivals replays the arrival process to the horizon. The
// generator and the session-GUID source are consumed in exactly the order
// the sequential fleet consumes them — the fleet draws both inside the
// arrival-chain events, which fire in generation order — so the sharding
// is bit-equal to the fleet's.
func partitionArrivals(cfg capture.FleetConfig) (*partition, *capture.SharedModel) {
	gen := behavior.NewGenerator(cfg.Node.Workload)
	shared := capture.NewSharedModel(gen)
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	p := &partition{perNode: make([][]ownedSession, cfg.Nodes)}
	var k uint64
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		n := g.Shard(cfg.Nodes)
		p.starts = append(p.starts, sess.Start)
		p.perNode[n] = append(p.perNode[n], ownedSession{sess: sess, gidx: k})
		k++
	}
	return p, shared
}

// chainCount returns the first chain position ≥ from that does NOT fire
// before an implicit event with key (at, epoch, pos ≥ 1) — equivalently,
// how many global arrivals precede that event in the total order. A chain
// entry j (key (starts[j], j, 0)) precedes the event iff starts[j] < at,
// or starts[j] == at and j ≤ epoch. The predicate is monotone in j
// (starts are nondecreasing) and fired keys are nondecreasing, so callers
// pass a forward-only cursor as from; galloping plus binary search makes
// the amortized cost O(log jump) per fired event, independent of the
// global arrival count.
func chainCount(starts []simtime.Time, from uint64, at simtime.Time, epoch uint64) uint64 {
	return chainBoundary(uint64(len(starts)), from, func(j uint64) bool {
		return starts[j] < at || (starts[j] == at && j <= epoch)
	})
}

// chainBoundary returns the first position in [from, n] at which the
// monotone predicate fires turns false (n if it never does), by galloping
// then binary search — O(log jump) evaluations, which is what keeps the
// cursor's amortized cost independent of the global arrival count.
func chainBoundary(n, from uint64, fires func(uint64) bool) uint64 {
	if from >= n || !fires(from) {
		return from
	}
	// fires(from) holds; gallop for an upper bound. Monotonicity makes
	// the skipped indices safe: fires(hi) implies fires of everything
	// below hi.
	lo, hi := from+1, from+1
	for step := uint64(1); hi < n && fires(hi); step *= 2 {
		lo = hi + 1
		hi += step
	}
	if hi > n {
		hi = n
	}
	// The boundary is in [lo, hi].
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fires(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// keyedRun is one vantage's event loop under the keyed tie-break: it
// schedules only the node's own arrivals (each with its precomputed
// explicit key) and, as the scheduler's pre-fire hook, maintains the
// virtual chain cursor that keeps every implicit key bit-equal to the
// sequential fleet's FIFO counter. One reusable object serves as the
// arrival event for every own session, so arrivals cost no per-event
// closure allocations.
type keyedRun struct {
	sched    simtime.Scheduler
	node     *capture.Node
	starts   []simtime.Time
	mine     []ownedSession
	cursor   int    // next own session
	chainPos uint64 // global arrivals counted as dispatched so far
	// arrivals is the fleet-wide throughput counter (atomic; nil when no
	// registry is installed — the Inc is then a nil-check no-op).
	arrivals *obs.Counter
}

// beforeFire is the scheduler's pre-fire hook. Own arrivals carry Pos 0
// (Pos ≥ 1 is reserved for implicit keys by the Reseed below), so the
// Epoch is the arrival's own chain position and the cursor jumps past it
// directly. For implicit events the cursor advances by searching the
// shared starts array; when it moved, the implicit key is reseeded to
// (cursor, 1) — Pos 0 of the new epoch stays reserved for the arrival
// holding that chain position, exactly as the sequential fleet's
// dispatcher orders it.
func (r *keyedRun) beforeFire(at simtime.Time, key simtime.SeqKey) {
	if key.Pos == 0 {
		r.chainPos = key.Epoch + 1
		r.sched.Reseed(simtime.SeqKey{Epoch: r.chainPos, Pos: 1})
		return
	}
	if p := chainCount(r.starts, r.chainPos, at, key.Epoch); p > r.chainPos {
		r.chainPos = p
		r.sched.Reseed(simtime.SeqKey{Epoch: p, Pos: 1})
	}
}

// Fire dispatches the node's next own session: schedule the following own
// arrival at its precomputed key, then deliver this one — mirroring the
// fleet dispatcher's schedule-next-then-dispatch order.
func (r *keyedRun) Fire(now simtime.Time) {
	i := r.cursor
	r.cursor++
	if r.cursor < len(r.mine) {
		next := r.mine[r.cursor]
		r.sched.ScheduleKeyed(next.sess.Start, simtime.SeqKey{Epoch: next.gidx}, r)
	}
	sess := r.mine[i].sess
	// Release consumed sessions as the run progresses; at full volume
	// the partitioned session set is the engine's main memory cost.
	r.mine[i].sess = nil
	r.arrivals.Inc()
	r.node.Arrive(now, sess)
}

// runNode simulates one vantage to the horizon on its own scheduler and
// returns its trace and accounting row.
func runNode(cfg capture.Config, idx int, sched simtime.Scheduler, shared *capture.SharedModel, part *partition, horizon simtime.Time, arrivals *obs.Counter) (*trace.Trace, capture.NodeStats) {
	// Reserve Pos 0 of epoch 0 for the virtual chain head before anything
	// is scheduled, keeping the epoch/Pos split an invariant from the
	// first event on.
	sched.Reseed(simtime.SeqKey{Epoch: 0, Pos: 1})
	node := capture.NewNode(cfg, idx, sched, shared)
	r := &keyedRun{sched: sched, node: node, starts: part.starts, mine: part.perNode[idx], arrivals: arrivals}
	sched.SetFireHook(r.beforeFire)
	if len(r.mine) > 0 {
		sched.ScheduleKeyed(r.mine[0].sess.Start, simtime.SeqKey{Epoch: r.mine[0].gidx}, r)
	}
	sched.RunUntil(horizon)
	node.FinalizeOpen(horizon)
	return node.Trace(), node.Stats()
}
