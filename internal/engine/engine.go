// Package engine is the parallel execution layer of the measurement
// simulation: a sharded discrete-event engine that runs every vantage node
// of a capture fleet on its own goroutine — its own virtual clock, its own
// calendar-queue event scheduler, its own random streams — and joins the
// per-node traces with trace.Merge into a result byte-identical to the
// sequential capture.Fleet at every worker count.
//
// # Why this is possible
//
// The fleet's vantage nodes are independent given the arrival shard: a
// node's event stream is generated entirely by its own arrivals and its
// own per-node random streams, and the only cross-node state — the arrival
// process, the session-GUID stream that shards it, and the read-only
// SharedModel — is consumed in arrival order regardless of sharding. The
// engine therefore runs in two phases:
//
//  1. Partition (sequential): replay the arrival process once, drawing the
//     session GUIDs in the exact order the sequential fleet draws them,
//     and split the sessions by guid.Shard into per-node lists.
//  2. Execute (parallel): each node simulates on its own scheduler. To
//     reproduce the shared scheduler's FIFO tie-break exactly, every node
//     replays the *whole* arrival chain — one chain event per global
//     arrival, each scheduling the next and dispatching only the node's
//     own sessions. Foreign arrivals cost one trivial event each, which
//     buys the determinism contract below; the real per-node work (tens
//     of events per accepted session) dwarfs it.
//
// # Determinism contract (shard → node → goroutine, merge order-independent)
//
// In the sequential fleet, events with equal timestamps fire in schedule
// (FIFO) order of one global sequence counter. A vantage's events are
// scheduled only while (a) one of its own events fires or (b) an arrival-
// chain event fires. Replaying the full chain on every node preserves the
// relative schedule order of exactly that event subset, so the restriction
// of the global fire order to one node's events equals the node's solo
// fire order — ties included — and each per-node trace is byte-identical
// to its sequential counterpart. trace.Merge is order-independent by total
// order, so the merged trace is byte-identical too, for every Workers
// value and for Workers == 1, and a one-node engine run reproduces the
// historical single-vantage Sim byte for byte (all pinned by test).
//
// The engine holds the full partitioned session set in memory (the
// sequential fleet generates lazily); at paper scale this is a few GB on
// top of the trace itself, released progressively as nodes consume their
// shards.
package engine

import (
	"repro/internal/behavior"
	"repro/internal/capture"
	"repro/internal/guid"
	"repro/internal/par"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes a parallel fleet simulation.
type Config struct {
	// Fleet is the deployment exactly as capture.NewFleet takes it.
	Fleet capture.FleetConfig
	// Workers bounds the goroutines executing node event loops in the
	// eager mode, following the shared par.Workers convention: 0 means
	// GOMAXPROCS, values below 1 mean 1. The trace is byte-identical for
	// every setting. In bounded mode (Lookahead > 0, and always under
	// RunStream) every node runs its own goroutine and throttling comes
	// from the producer window instead — a blocked node parks, so the OS
	// scheduler sizes the effective parallelism.
	Workers int
	// Lookahead > 0 replaces the eager pre-partition with the bounded
	// producer: the arrival chain is published incrementally through a
	// conservative time-window synchronizer and each node's undelivered
	// sessions are capped at Lookahead, so the in-flight session set is
	// nodes × Lookahead instead of the whole measurement period (the few
	// GB the eager partition holds at paper scale). 0 keeps the eager
	// path. The trace is byte-identical either way (pinned by test).
	Lookahead int
}

// Engine is a parallel sharded fleet simulation. Create with New, execute
// with Run; like capture.Fleet, a second Run returns the memoized trace.
type Engine struct {
	cfg Config
	// newSched builds each node's scheduler. The calendar queue is the
	// production choice — at the full-volume run's pending-event counts it
	// beats the binary heap (see simtime's BenchmarkSchedulerHold and the
	// committed BENCH_pr4.json) — while tests swap in the heap to pin that
	// the engine's output does not depend on the implementation.
	newSched func() simtime.Scheduler

	ran        bool
	merged     *trace.Trace
	stats      capture.FleetStats
	nodeTraces []*trace.Trace
	// peakPending is the streaming merge's high-water mark of completed
	// sessions held behind the emission barrier (RunStream only).
	peakPending int
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Fleet.Nodes < 1 {
		cfg.Fleet.Nodes = 1
	}
	return &Engine{
		cfg:      cfg,
		newSched: func() simtime.Scheduler { return simtime.NewCalendarScheduler() },
	}
}

// NodeCount returns the number of vantage points.
func (e *Engine) NodeCount() int { return e.cfg.Fleet.Nodes }

// Run executes the full measurement period once and returns the merged
// trace; subsequent calls return the same trace.
func (e *Engine) Run() *trace.Trace {
	e.run()
	return e.merged
}

// Stats reports the fleet accounting, running the simulation first if
// needed. The same identity as capture.FleetStats holds: Arrivals ==
// Σ Conns + Σ Rejected over the per-node rows.
func (e *Engine) Stats() capture.FleetStats {
	e.run()
	return e.stats
}

// NodeTraces returns each vantage's own trace in node order, running the
// simulation first if needed. The slices alias the engine's records; treat
// them as read-only.
func (e *Engine) NodeTraces() []*trace.Trace {
	e.run()
	return e.nodeTraces
}

func (e *Engine) run() {
	if e.ran {
		return
	}
	e.ran = true

	if e.cfg.Lookahead > 0 {
		e.runBounded(nil)
	} else {
		e.runEager()
	}
	// The production merge is the streaming k-way merge (fed the
	// materialized per-node traces here); batch trace.Merge remains the
	// reference oracle the equivalence tests compare against.
	e.merged = stream.MergeTraces(e.nodeTraces...)
}

func (e *Engine) runEager() {
	nodeCfg := e.cfg.Fleet.Node
	part, shared := partitionArrivals(e.cfg.Fleet)
	horizon := simtime.Time(nodeCfg.Workload.Days) * simtime.Day

	nodes := e.cfg.Fleet.Nodes
	e.nodeTraces = make([]*trace.Trace, nodes)
	perNode := make([]capture.NodeStats, nodes)
	tasks := make([]func(), nodes)
	for i := range tasks {
		i := i
		tasks[i] = func() {
			e.nodeTraces[i], perNode[i] = runNode(nodeCfg, i, e.newSched(), shared, part, horizon)
		}
	}
	par.Run(par.Workers(e.Workers()), tasks)

	e.stats = capture.FleetStats{
		Arrivals: uint64(len(part.starts)),
		PerNode:  perNode,
	}
	for i := range perNode {
		e.stats.Rejected += perNode[i].Rejected
		e.stats.DroppedQueryEvents += perNode[i].DroppedQueryEvents
	}
}

// PeakPending reports the streaming merge's high-water mark of completed
// sessions held behind the emission barrier; 0 unless RunStream ran.
func (e *Engine) PeakPending() int { return e.peakPending }

// Workers returns the configured worker bound (unresolved; 0 means
// machine-sized).
func (e *Engine) Workers() int { return e.cfg.Workers }

// partition is the pre-sharded arrival stream: every arrival instant in
// chain order, each arrival's owning node, and the session objects split
// per node (in the same chain order, so a node consumes its list front to
// back).
type partition struct {
	starts  []simtime.Time
	owner   []uint32
	perNode [][]*behavior.Session
}

// partitionArrivals replays the arrival process to the horizon. The
// generator and the session-GUID source are consumed in exactly the order
// the sequential fleet consumes them — the fleet draws both inside the
// arrival-chain events, which fire in generation order — so the sharding
// is bit-equal to the fleet's.
func partitionArrivals(cfg capture.FleetConfig) (*partition, *capture.SharedModel) {
	gen := behavior.NewGenerator(cfg.Node.Workload)
	shared := capture.NewSharedModel(gen)
	guids := guid.NewSource(cfg.Node.Workload.Seed, capture.SessionGUIDSalt)
	p := &partition{perNode: make([][]*behavior.Session, cfg.Nodes)}
	for sess := gen.Next(); sess != nil; sess = gen.Next() {
		g := guids.Next()
		n := g.Shard(cfg.Nodes)
		p.starts = append(p.starts, sess.Start)
		p.owner = append(p.owner, uint32(n))
		p.perNode[n] = append(p.perNode[n], sess)
	}
	return p, shared
}

// nodeRun is one vantage's event loop: the chain replay cursor plus the
// node itself. It implements simtime.Event as the arrival-chain event —
// one reusable object rescheduled for each chain position, so the chain
// costs no per-event closure allocations.
type nodeRun struct {
	sched  simtime.Scheduler
	node   *capture.Node
	part   *partition
	idx    uint32
	k      int // next chain position
	cursor int // next owned session
}

// Fire advances the arrival chain: schedule the next chain event first,
// then dispatch the arrival if it is ours — the exact statement order of
// the fleet's dispatcher, which the FIFO tie-break makes observable.
func (r *nodeRun) Fire(now simtime.Time) {
	k := r.k
	r.k++
	if r.k < len(r.part.starts) {
		r.sched.Schedule(r.part.starts[r.k], r)
	}
	if r.part.owner[k] == r.idx {
		mine := r.part.perNode[r.idx]
		sess := mine[r.cursor]
		// Release consumed sessions as the run progresses; at full volume
		// the partitioned session set is the engine's main memory cost.
		mine[r.cursor] = nil
		r.cursor++
		r.node.Arrive(now, sess)
	}
}

// runNode simulates one vantage to the horizon on its own scheduler and
// returns its trace and accounting row.
func runNode(cfg capture.Config, idx int, sched simtime.Scheduler, shared *capture.SharedModel, part *partition, horizon simtime.Time) (*trace.Trace, capture.NodeStats) {
	node := capture.NewNode(cfg, idx, sched, shared)
	r := &nodeRun{sched: sched, node: node, part: part, idx: uint32(idx)}
	if len(part.starts) > 0 {
		sched.Schedule(part.starts[0], r)
	}
	sched.RunUntil(horizon)
	node.FinalizeOpen(horizon)
	return node.Trace(), node.Stats()
}
