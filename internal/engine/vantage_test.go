package engine

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/stream"
	"repro/internal/trace"
)

// TestNodeStreamMatchesRunStream is the distributed-vantage pin: N
// independent NodeStream runs — each regenerating the arrival process
// alone, exactly as N separate emitter processes would — merged through
// one streaming merger, must reproduce RunStream's trace byte for byte.
func TestNodeStreamMatchesRunStream(t *testing.T) {
	for _, nodes := range []int{1, 3, 4} {
		want := traceBytes(t, New(Config{Fleet: testCfg(2004, 2, nodes)}).RunStream(nil))

		m := stream.NewMerger(nodes, nil)
		m.SetWindow(DefaultMergeWindow)
		done := make(chan *trace.Trace)
		go func() { done <- m.Run() }()
		var wg sync.WaitGroup
		for i := 0; i < nodes; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := NodeStream(Config{Fleet: testCfg(2004, 2, nodes)}, i, stream.NewProducer(i, m.Intake())); err != nil {
					t.Errorf("vantage %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		got := traceBytes(t, <-done)
		if !bytes.Equal(traceBytes(t, New(Config{Fleet: testCfg(2004, 2, nodes)}).Run()), want) {
			t.Fatalf("nodes=%d: RunStream differs from Run (precondition)", nodes)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("nodes=%d: merged NodeStream vantages differ from RunStream", nodes)
		}
	}
}

// TestNodeStreamStatsMatchFleet: the per-vantage accounting rows of
// independent NodeStream runs must equal the engine's fleet rows.
func TestNodeStreamStatsMatchFleet(t *testing.T) {
	const nodes = 3
	e := New(Config{Fleet: testCfg(7, 1, nodes)})
	e.Run()
	fleetStats := e.Stats()
	for i := 0; i < nodes; i++ {
		m := stream.NewMerger(1, nil)
		go m.Run()
		st, err := NodeStream(Config{Fleet: testCfg(7, 1, nodes)}, i, stream.NewProducer(0, m.Intake()))
		if err != nil {
			t.Fatal(err)
		}
		if st != fleetStats.PerNode[i] {
			t.Fatalf("vantage %d stats = %+v, want %+v", i, st, fleetStats.PerNode[i])
		}
	}
}

// TestNodeStreamRejectsBadIndex: out-of-range vantage indices error
// instead of silently simulating the wrong shard.
func TestNodeStreamRejectsBadIndex(t *testing.T) {
	for _, idx := range []int{-1, 3} {
		if _, err := NodeStream(Config{Fleet: testCfg(1, 1, 3)}, idx, nil); err == nil {
			t.Fatalf("idx %d accepted", idx)
		}
	}
}

// TestEngineLossAccessorsZeroInProcess: in-process runs can never lose
// an input; both execution modes must report a clean ledger.
func TestEngineLossAccessorsZeroInProcess(t *testing.T) {
	e := New(Config{Fleet: testCfg(5, 1, 2)})
	e.Run()
	if e.DeadInputs() != 0 || e.LostSessions() != 0 {
		t.Fatalf("batch run reported losses: dead=%d lost=%d", e.DeadInputs(), e.LostSessions())
	}
	es := New(Config{Fleet: testCfg(5, 1, 2)})
	es.RunStream(nil)
	if es.DeadInputs() != 0 || es.LostSessions() != 0 {
		t.Fatalf("stream run reported losses: dead=%d lost=%d", es.DeadInputs(), es.LostSessions())
	}
}
