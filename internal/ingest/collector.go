package ingest

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
)

// InputState is one input's liveness state as Health reports it.
type InputState string

// Liveness states: an input is waiting until its emitter first connects,
// live while progress arrives, stalled after StallAfter of silence (the
// merge barrier is being held), dead once evicted, done after its
// trailer.
const (
	StateWaiting InputState = "waiting"
	StateLive    InputState = "live"
	StateStalled InputState = "stalled"
	StateDead    InputState = "dead"
	StateDone    InputState = "done"
)

// InputHealth is one input's row in Health.
type InputHealth struct {
	Input      int        `json:"input"`
	State      InputState `json:"state"`
	AppliedSeq uint64     `json:"applied_seq"`
	JournalSeq uint64     `json:"journal_seq"`
	Conns      int        `json:"conns"`
	SilentMS   int64      `json:"silent_ms"`
	Reordered  int        `json:"reordered"`
}

// Health is the collector's live status, served as JSON at /metrics.json.
type Health struct {
	Inputs     []InputHealth `json:"inputs"`
	Live       int           `json:"live"`
	Done       int           `json:"done"`
	DeadInputs int           `json:"dead_inputs"`
}

// CollectorConfig configures the central collector.
type CollectorConfig struct {
	// Inputs is how many merger inputs (vantages) feed this collector.
	Inputs int
	// Addr to listen on when Listener is nil (default 127.0.0.1:0).
	Addr string
	// Listener, when set, is used instead of listening on Addr — the
	// hook for fault-injected listeners.
	Listener net.Listener

	// Sink observes merged sessions in final order (may be nil).
	Sink stream.Sink
	// Window bounds the merge's emission barrier (stream.Merger.SetWindow);
	// 0 leaves it unbounded.
	Window trace.Time

	// StallAfter is how long an input may be silent before Health calls
	// it stalled (default 2 s). Informational: the merge is unaffected,
	// but the transition is recorded as an input_stalled journal event
	// (and input_recovered when frames resume).
	StallAfter time.Duration
	// EvictAfter is how long an input may be silent before it is declared
	// dead and evicted from the merge (default 30 s). Negative disables
	// eviction — the barrier then stalls forever on a dead input, which
	// is only safe when the emitters are trusted to finish.
	EvictAfter time.Duration
	// Tick is the liveness check period (default EvictAfter/4, capped to
	// [10 ms, 1 s]).
	Tick time.Duration

	// ReadTimeout bounds each frame read on a connection (default 2×
	// EvictAfter): a connection that goes silent longer is reaped, which
	// also bounds how long serve goroutines outlive their emitters.
	ReadTimeout time.Duration
	// WriteTimeout bounds welcome/ack writes (default 10 s).
	WriteTimeout time.Duration
	// MaxReorder bounds the per-input reorder buffer in events (default
	// 1<<15). A connection that overflows it is dropped, forcing an
	// in-order retransmit.
	MaxReorder int

	// Obs attaches the observability layer: per-input liveness
	// transitions (input_stalled / input_recovered / input_evicted /
	// input_done) as journal events, stall/eviction counters and
	// per-input applied-seq gauges on the registry. nil disables both.
	Obs *obs.Observer
	// Pprof mounts net/http/pprof on MetricsHandler's mux.
	Pprof bool
}

func (c *CollectorConfig) defaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 2 * time.Second
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 30 * time.Second
	}
	if c.Tick <= 0 {
		c.Tick = c.EvictAfter / 4
		if c.Tick < 10*time.Millisecond {
			c.Tick = 10 * time.Millisecond
		}
		if c.Tick > time.Second {
			c.Tick = time.Second
		}
	}
	if c.ReadTimeout <= 0 {
		if c.EvictAfter > 0 {
			c.ReadTimeout = 2 * c.EvictAfter
		} else {
			c.ReadTimeout = time.Minute
		}
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxReorder <= 0 {
		c.MaxReorder = 1 << 15
	}
}

// inputTrack is the collector's per-input state. Lock order: sendMu
// before mu; mu alone for state reads (Health); sendMu serializes every
// forward into the merger so per-input event order is preserved across
// connection changes and eviction.
type inputTrack struct {
	input  int
	sendMu sync.Mutex
	mu     sync.Mutex

	applied      uint64
	pending      map[uint64]stream.Event
	reordered    int
	lastProgress time.Time
	done         bool
	evicted      bool
	// stalled marks that an input_stalled event was emitted for the
	// current silence; cleared (with input_recovered) when frames resume.
	stalled bool
	active  net.Conn
	conns   int

	// Journal shipping: the exactly-once layer for the sidecar journal
	// sequence space, mirroring applied/pending, plus the lane name and
	// the clock offset (collector journal ms minus emitter journal ms;
	// the minimum over handshake samples, which is the sample with the
	// least network delay baked in). jShip marks that this input's
	// emitter ships a journal; jDone that its end-of-journal sentinel
	// has been applied — what Run's post-merge linger waits for.
	source    string
	jApplied  uint64
	jPending  map[uint64][]byte
	offset    float64
	offsetSet bool
	jShip     bool
	jDone     bool
}

// Collector accepts emitter connections, reassembles each input's exact
// event stream, feeds the streaming merge, and evicts inputs that die.
// Create with NewCollector, drive with Run.
type Collector struct {
	cfg    CollectorConfig
	l      net.Listener
	merger *stream.Merger
	tracks []*inputTrack

	obs           *obs.Observer
	reg           *obs.Registry
	mStalls       *obs.Counter
	mEvictions    *obs.Counter
	mJournalLines *obs.Counter
	hEncode       *obs.Histogram
	hDecode       *obs.Histogram

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCollector builds a collector and starts listening (but not
// accepting — Run does that).
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	cfg.defaults()
	if cfg.Inputs <= 0 {
		return nil, fmt.Errorf("ingest: collector needs at least one input, got %d", cfg.Inputs)
	}
	l := cfg.Listener
	if l == nil {
		var err error
		l, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	m := stream.NewMerger(cfg.Inputs, cfg.Sink)
	if cfg.Window > 0 {
		m.SetWindow(cfg.Window)
	}
	c := &Collector{
		cfg:    cfg,
		l:      l,
		merger: m,
		tracks: make([]*inputTrack, cfg.Inputs),
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
	now := time.Now()
	for i := range c.tracks {
		c.tracks[i] = &inputTrack{
			input:        i,
			pending:      make(map[uint64]stream.Event),
			jPending:     make(map[uint64][]byte),
			source:       "input" + strconv.Itoa(i),
			lastProgress: now, // a vantage that never connects still gets evicted
		}
	}
	c.obs = cfg.Obs
	m.SetObserver(cfg.Obs)
	c.registerMetrics()
	return c, nil
}

// registerMetrics publishes the collector's ingest_* metric families.
// The registry is always populated — when no observer was configured a
// private one backs MetricsHandler so /metrics still works — but journal
// events only flow when CollectorConfig.Obs carried a journal.
func (c *Collector) registerMetrics() {
	c.reg = c.obs.Reg()
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	c.mStalls = c.reg.Counter("ingest_stalls_total", "input_stalled transitions observed by the liveness loop")
	c.mEvictions = c.reg.Counter("ingest_evictions_total", "inputs evicted from the merge after EvictAfter of silence")
	c.mJournalLines = c.reg.Counter("ingest_journal_lines_total", "shipped journal lines applied into the fleet journal")
	c.hEncode = c.reg.WallHistogram("ingest_frame_encode_seconds", "gob encode time per outbound frame", latencyBuckets())
	c.hDecode = c.reg.WallHistogram("ingest_frame_decode_seconds", "gob decode time per inbound frame", latencyBuckets())
	for _, t := range c.tracks {
		t := t
		l := obs.L("input", strconv.Itoa(t.input))
		c.reg.GaugeFunc("ingest_applied_seq", "cumulative ack watermark: events applied in order for this input", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.applied)
		}, l)
		c.reg.GaugeFunc("ingest_reordered_events", "events that arrived ahead of the contiguous run for this input", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.reordered)
		}, l)
		c.reg.GaugeFunc("ingest_input_conns", "connections this input's emitter has made so far", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.conns)
		}, l)
	}
	health := func(pick func(Health) int) func() float64 {
		return func() float64 { return float64(pick(c.Health())) }
	}
	c.reg.GaugeFunc("ingest_inputs_live", "inputs currently delivering frames", health(func(h Health) int { return h.Live }))
	c.reg.GaugeFunc("ingest_inputs_done", "inputs whose trailer has arrived", health(func(h Health) int { return h.Done }))
	c.reg.GaugeFunc("ingest_inputs_dead", "inputs evicted from the merge", health(func(h Health) int { return h.DeadInputs }))
	c.reg.GaugeFunc("ingest_inputs_stalled", "inputs silent past StallAfter but not yet evicted", health(func(h Health) int {
		n := 0
		for _, in := range h.Inputs {
			if in.State == StateStalled {
				n++
			}
		}
		return n
	}))
	c.reg.GaugeFunc("ingest_inputs_waiting", "inputs whose emitter has never connected", health(func(h Health) int {
		n := 0
		for _, in := range h.Inputs {
			if in.State == StateWaiting {
				n++
			}
		}
		return n
	}))
}

// Addr is the listen address emitters should dial.
func (c *Collector) Addr() string { return c.l.Addr().String() }

// Run serves until every input has delivered its trailer or been
// evicted, then lingers (bounded by EvictAfter) until every shipping
// input's journal is fully delivered before returning the drained merged
// trace. The accept loop paces transient listener errors and exits on
// permanent ones, exactly like the daemon's (transport.AcceptBackoff).
func (c *Collector) Run() (*trace.Trace, error) {
	sp := c.obs.Begin("collect", obs.A("inputs", c.cfg.Inputs))
	merged := make(chan *trace.Trace, 1)
	go func() { merged <- c.merger.Run() }()

	c.wg.Add(2)
	go c.acceptLoop()
	go c.liveness()

	tr := <-merged
	c.drainJournals()
	c.shutdown()
	c.wg.Wait()
	sp.End(
		obs.A("dead_inputs", c.merger.DeadInputs()),
		obs.A("lost_sessions", c.merger.LostSessions()))
	return tr, nil
}

// DeadInputs reports how many inputs were evicted. Valid after Run.
func (c *Collector) DeadInputs() int { return c.merger.DeadInputs() }

// LostSessions reports how many sessions evicted inputs left open.
// Valid after Run.
func (c *Collector) LostSessions() uint64 { return c.merger.LostSessions() }

// drainJournals lingers after the merge completes so shipping emitters
// can deliver their trailing journal lines — a process's final
// metrics/latency snapshots are written after its last event ack, so
// they are necessarily still in flight when the merge finishes. The
// listener stays open (an emitter cut mid-ship reconnects and
// retransmits) until every shipping, non-evicted input has applied its
// end-of-journal sentinel, bounded by EvictAfter (30 s when eviction is
// disabled) against an emitter that never closes its ship.
func (c *Collector) drainJournals() {
	bound := c.cfg.EvictAfter
	if bound <= 0 {
		bound = 30 * time.Second
	}
	deadline := time.Now().Add(bound)
	for {
		waiting := false
		for _, t := range c.tracks {
			t.mu.Lock()
			if t.jShip && !t.jDone && !t.evicted {
				waiting = true
			}
			t.mu.Unlock()
		}
		if !waiting || time.Now().After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Collector) shutdown() {
	close(c.stop)
	c.l.Close()
	c.mu.Lock()
	c.closed = true
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	var backoff transport.AcceptBackoff
	for {
		conn, err := c.l.Accept()
		if err != nil {
			delay, retry := backoff.Next(err)
			if !retry {
				return
			}
			select {
			case <-time.After(delay):
			case <-c.stop:
				return
			}
			continue
		}
		backoff.Reset()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serve(conn)
	}
}

// serve handles one emitter connection: hello, welcome-with-resume, then
// data frames acked as applied. Any protocol or I/O error just drops the
// connection — the emitter's reconnect-and-retransmit makes that safe.
func (c *Collector) serve(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()

	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	f, err := readFrame(conn, c.hDecode)
	if err != nil || f.Kind != frameHello || f.Hello == nil {
		return
	}
	h := f.Hello
	if h.Proto < protoVersionMin || h.Proto > protoVersion || h.Input < 0 || h.Input >= len(c.tracks) {
		return
	}
	t := c.tracks[h.Input]

	// The offset sample: collector journal clock minus the emitter's
	// clock as stamped into the hello. Both ends pay the network delay
	// between hello write and here, inflating the sample — so across
	// reconnects the minimum (least-delay) sample wins.
	var offSample float64
	// A version-1 hello has no JournalTMs field; gob leaves it zero, which
	// must not read as "shipping with clock 0".
	haveOff := h.Proto >= 2 && h.JournalTMs >= 0
	if haveOff {
		offSample = c.obs.Log().Now() - h.JournalTMs
	}

	t.mu.Lock()
	if t.active != nil && t.active != conn {
		// The emitter reconnected; the old connection is superseded. Its
		// handler exits on the closed conn, and seq dedupe makes any
		// frame it already read harmless.
		t.active.Close()
	}
	t.active = conn
	t.conns++
	if h.Source != "" {
		t.source = h.Source
	}
	if haveOff {
		t.jShip = true
		if !t.offsetSet || offSample < t.offset {
			t.offset = offSample
			t.offsetSet = true
		}
	}
	evicted := t.evicted
	if !evicted {
		t.lastProgress = time.Now()
	}
	welcome := &welcomeFrame{Resume: t.applied, JournalResume: t.jApplied, Evicted: evicted}
	t.mu.Unlock()

	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if err := writeFrame(conn, &frame{Kind: frameWelcome, Welcome: welcome}, c.hEncode); err != nil || evicted {
		return
	}

	for {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		f, err := readFrame(conn, c.hDecode)
		if err != nil {
			return
		}
		var ackf *frame
		switch {
		case f.Kind == frameData && f.Data != nil:
			ack, ok := c.apply(t, f.Data)
			if !ok {
				return
			}
			ackf = &frame{Kind: frameAck, Ack: &ackFrame{Seq: ack}}
		case f.Kind == frameJournal && f.Journal != nil:
			ack, ok := c.applyJournal(t, f.Journal)
			if !ok {
				return
			}
			ackf = &frame{Kind: frameJournalAck, JAck: &ackFrame{Seq: ack}}
		default:
			continue // stray duplicated hello or unknown frame: ignore
		}
		_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		if err := writeFrame(conn, ackf, c.hEncode); err != nil {
			return
		}
	}
}

// apply runs one data frame through the exactly-once layer: drop
// duplicates, hold reordered events, forward the contiguous run to the
// merge, and return the cumulative ack. ok is false when the connection
// should drop (input evicted, or reorder buffer overflow).
func (c *Collector) apply(t *inputTrack, df *dataFrame) (ack uint64, ok bool) {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()

	t.mu.Lock()
	if t.evicted {
		t.mu.Unlock()
		return 0, false
	}
	var fwd []stream.Event
	for i := range df.Events {
		seq := df.FirstSeq + uint64(i)
		if seq <= t.applied {
			continue // duplicate of an applied event
		}
		if seq != t.applied+1 {
			if len(t.pending) >= c.cfg.MaxReorder {
				t.mu.Unlock()
				return 0, false
			}
			t.pending[seq] = df.Events[i]
			t.reordered++
			continue
		}
		t.applied++
		fwd = append(fwd, df.Events[i])
		for {
			next, held := t.pending[t.applied+1]
			if !held {
				break
			}
			delete(t.pending, t.applied+1)
			t.applied++
			fwd = append(fwd, next)
		}
	}
	// Any valid frame is a liveness signal, progress or not: an emitter
	// retransmitting into a lossy link is alive, not dead.
	t.lastProgress = time.Now()
	recovered := t.stalled
	t.stalled = false
	doneNow := false
	for i := range fwd {
		if fwd[i].Kind == stream.EvDone && !t.done {
			t.done = true
			doneNow = true
		}
	}
	ack = t.applied
	src := t.source
	t.mu.Unlock()

	// Liveness transitions are journaled into the input's own collector
	// lane ("collector/<source>") rather than the collector's default
	// lane: each lane's sequence then depends on that one input alone,
	// which keeps the fleet journal's canonical form stable when inputs'
	// events race each other across lanes.
	if recovered {
		c.obs.EventSrc("collector/"+src, "input_recovered", obs.A("input", t.input), obs.A("applied_seq", ack))
	}
	if doneNow {
		c.obs.EventSrc("collector/"+src, "input_done", obs.A("input", t.input), obs.A("applied_seq", ack))
	}

	if len(fwd) > 0 {
		select {
		case c.merger.Intake() <- stream.Batch{Input: t.input, Events: fwd}:
		case <-c.stop:
			return 0, false
		}
	}
	return ack, true
}

// applyJournal is the journal sidecar's exactly-once layer, the exact
// shape of apply in the journal sequence space: drop duplicates, hold
// reordered lines, fold the contiguous run into the fleet journal with
// the input's lane and clock offset, and return the cumulative journal
// ack. Journal frames count as liveness exactly like data frames — an
// emitter with nothing to merge but a flowing journal is alive.
func (c *Collector) applyJournal(t *inputTrack, jf *journalFrame) (ack uint64, ok bool) {
	t.mu.Lock()
	if t.evicted {
		t.mu.Unlock()
		return 0, false
	}
	var fwd [][]byte
	for i := range jf.Lines {
		seq := jf.FirstSeq + uint64(i)
		if seq <= t.jApplied {
			continue // duplicate of an applied line
		}
		if seq != t.jApplied+1 {
			if len(t.jPending) >= c.cfg.MaxReorder {
				t.mu.Unlock()
				return 0, false
			}
			t.jPending[seq] = jf.Lines[i]
			t.reordered++
			continue
		}
		t.jApplied++
		fwd = append(fwd, jf.Lines[i])
		for {
			next, held := t.jPending[t.jApplied+1]
			if !held {
				break
			}
			delete(t.jPending, t.jApplied+1)
			t.jApplied++
			fwd = append(fwd, next)
		}
	}
	t.lastProgress = time.Now()
	recovered := t.stalled
	t.stalled = false
	for _, line := range fwd {
		if len(line) == 0 {
			// The emitter's end-of-journal sentinel: this lane is
			// complete, nothing more ships in this process life.
			t.jDone = true
		}
	}
	ack = t.jApplied
	src := t.source
	offset := t.offset
	t.mu.Unlock()

	if recovered {
		c.obs.EventSrc("collector/"+src, "input_recovered", obs.A("input", t.input), obs.A("applied_seq", ack))
	}
	for _, line := range fwd {
		if len(line) == 0 {
			continue // sentinel, not a journal line
		}
		// A malformed line is the shipper's bug, not a connection fault:
		// skip it rather than tearing the connection into a retransmit
		// loop of the same bad line.
		if err := c.obs.Log().IngestLine(line, src, offset); err == nil {
			c.mJournalLines.Inc()
		}
	}
	return ack, true
}

// liveness evicts inputs whose silence outlives EvictAfter, injecting
// the EvEvict that releases the merge barrier and accounts the loss. It
// also records the earlier StallAfter transition — an input_stalled
// journal event always precedes that input's input_evicted.
func (c *Collector) liveness() {
	defer c.wg.Done()
	if c.cfg.EvictAfter < 0 {
		return
	}
	tick := time.NewTicker(c.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, t := range c.tracks {
			t.sendMu.Lock()
			t.mu.Lock()
			idle := time.Since(t.lastProgress)
			if !t.done && !t.evicted && !t.stalled && t.conns > 0 && idle >= c.cfg.StallAfter {
				t.stalled = true
				c.mStalls.Inc()
				c.obs.EventSrc("collector/"+t.source, "input_stalled",
					obs.A("input", t.input),
					obs.A("silent_ms", idle.Milliseconds()))
			}
			if t.done || t.evicted || idle < c.cfg.EvictAfter {
				t.mu.Unlock()
				t.sendMu.Unlock()
				continue
			}
			t.evicted = true
			applied := t.applied
			src := t.source
			if t.active != nil {
				t.active.Close()
			}
			t.mu.Unlock()
			c.mEvictions.Inc()
			c.obs.EventSrc("collector/"+src, "input_evicted",
				obs.A("input", t.input),
				obs.A("applied_seq", applied),
				obs.A("silent_ms", idle.Milliseconds()))
			// The merge counts the still-open sessions as lost; Nodes 1
			// records that the vantage existed even though its trailer
			// never arrived.
			batch := stream.Batch{Input: t.input, Events: []stream.Event{{
				Kind: stream.EvEvict,
				Done: &stream.End{Nodes: 1},
			}}}
			select {
			case c.merger.Intake() <- batch:
			case <-c.stop:
				t.sendMu.Unlock()
				return
			}
			t.sendMu.Unlock()
		}
	}
}

// Health snapshots every input's liveness. Safe to call concurrently
// with Run — this is what /metrics.json serves.
func (c *Collector) Health() Health {
	h := Health{Inputs: make([]InputHealth, len(c.tracks))}
	now := time.Now()
	for i, t := range c.tracks {
		t.mu.Lock()
		ih := InputHealth{
			Input:      i,
			AppliedSeq: t.applied,
			JournalSeq: t.jApplied,
			Conns:      t.conns,
			SilentMS:   now.Sub(t.lastProgress).Milliseconds(),
			Reordered:  t.reordered,
		}
		switch {
		case t.done:
			ih.State = StateDone
			h.Done++
		case t.evicted:
			ih.State = StateDead
			h.DeadInputs++
		case t.conns == 0:
			ih.State = StateWaiting
		case now.Sub(t.lastProgress) > c.cfg.StallAfter:
			ih.State = StateStalled
		default:
			ih.State = StateLive
			h.Live++
		}
		t.mu.Unlock()
		h.Inputs[i] = ih
	}
	return h
}

// MetricsHandler serves the collector's observability surface: the
// ingest_* registry as Prometheus text at /metrics, the legacy Health
// JSON at /metrics.json, and (when CollectorConfig.Pprof is set)
// net/http/pprof under /debug/pprof/.
func (c *Collector) MetricsHandler() http.Handler {
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Health()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return obs.NewHTTPHandler(obs.HTTPConfig{
		Registry:   c.reg,
		LegacyJSON: legacy,
		Pprof:      c.cfg.Pprof,
	})
}
