// Package ingest is the fault-tolerant distributed collection layer: it
// carries the typed event streams of internal/stream across process and
// machine boundaries, from per-vantage emitter processes to a central
// collector, and guarantees that the collector's drained merged trace is
// byte-identical to an in-process engine.RunStream over the same
// configuration — under connection drops, delays, duplicated and
// reordered frames, slow readers, partitions, and emitter crashes with
// restart. When an emitter dies and never comes back, the collector
// degrades instead of deadlocking: the input is evicted from the merge
// barrier after a configurable silence and the loss is reported
// explicitly (DeadInputs, LostSessions), never silently absorbed.
//
// # Wire protocol
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by a gob-encoded frame struct, written with a single Write call and
// decoded by a fresh decoder per frame. One-frame-per-Write is what makes
// the protocol survive write-granular duplication and reordering (a
// duplicated or swapped frame is still a well-formed frame — the seq
// layer below discards it); a fresh gob stream per frame means no decoder
// state can be corrupted by an out-of-order type descriptor. Torn frames
// only arise from a dying connection, which ends the gob stream too.
//
// The exchange, per connection:
//
//	emitter → collector   hello   {proto, input}
//	collector → emitter   welcome {resume, evicted}
//	emitter → collector   data    {firstSeq, events[]}   (repeated)
//	collector → emitter   ack     {seq}                  (after each data frame)
//
// # Sequencing and resume
//
// The emitter assigns every event a per-input sequence number, starting
// at 1, and keeps each event buffered until the collector's cumulative
// ack covers it. The collector applies events in seq order exactly once —
// duplicates (seq ≤ applied) are dropped, gaps are held in a bounded
// reorder buffer — and acknowledges the highest contiguous seq applied.
// On reconnect the welcome's resume field carries that same watermark, so
// the emitter drops the acked prefix of its buffer and retransmits the
// rest. A *restarted* emitter (fresh process, seq counter back at 1)
// regenerates its deterministic event stream from the start and discards
// events whose seq is ≤ resume at assignment time, converging to the
// exact suffix the collector is missing. Both paths make retransmission
// idempotent: the merged stream sees every event exactly once, in order.
//
// # Liveness and degradation
//
// The collector tracks per-input progress wall-clock time. An input that
// stops sending stalls the merge barrier (that is the merge's
// correctness doing its job — nothing may retire past a watermark that
// could still move); Health reports it stalled after StallAfter. If the
// silence reaches EvictAfter, the collector evicts the input: it injects
// an EvEvict into the merge (internal/stream), which removes the input
// from the barrier, counts it in DeadInputs, counts its never-closed
// sessions in LostSessions, and lets the merge drain. The drained trace
// is exactly the merge of what arrived; what is missing is reported.
// Ingest applies the End-of-run accounting to analyze -perf and the
// collector's observability surface (internal/obs): stall, recovery and
// eviction transitions land as journal events and ingest_* counters, the
// MetricsHandler serves the registry as Prometheus text at /metrics, and
// the legacy Health JSON lives on at /metrics.json.
package ingest
