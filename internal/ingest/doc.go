// Package ingest is the fault-tolerant distributed collection layer: it
// carries the typed event streams of internal/stream across process and
// machine boundaries, from per-vantage emitter processes to a central
// collector, and guarantees that the collector's drained merged trace is
// byte-identical to an in-process engine.RunStream over the same
// configuration — under connection drops, delays, duplicated and
// reordered frames, slow readers, partitions, and emitter crashes with
// restart. When an emitter dies and never comes back, the collector
// degrades instead of deadlocking: the input is evicted from the merge
// barrier after a configurable silence and the loss is reported
// explicitly (DeadInputs, LostSessions), never silently absorbed.
//
// # Wire protocol
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by a gob-encoded frame struct, written with a single Write call and
// decoded by a fresh decoder per frame. One-frame-per-Write is what makes
// the protocol survive write-granular duplication and reordering (a
// duplicated or swapped frame is still a well-formed frame — the seq
// layer below discards it); a fresh gob stream per frame means no decoder
// state can be corrupted by an out-of-order type descriptor. Torn frames
// only arise from a dying connection, which ends the gob stream too.
//
// The exchange, per connection:
//
//	emitter → collector   hello       {proto, input, source, journalTMs}
//	collector → emitter   welcome     {resume, journalResume, evicted}
//	emitter → collector   data        {firstSeq, events[]}   (repeated)
//	collector → emitter   ack         {seq}                  (after each data frame)
//	emitter → collector   journal     {firstSeq, lines[][]}  (interleaved with data)
//	collector → emitter   journalAck  {seq}                  (after each journal frame)
//
// # Sequencing and resume
//
// The emitter assigns every event a per-input sequence number, starting
// at 1, and keeps each event buffered until the collector's cumulative
// ack covers it. The collector applies events in seq order exactly once —
// duplicates (seq ≤ applied) are dropped, gaps are held in a bounded
// reorder buffer — and acknowledges the highest contiguous seq applied.
// On reconnect the welcome's resume field carries that same watermark, so
// the emitter drops the acked prefix of its buffer and retransmits the
// rest. A *restarted* emitter (fresh process, seq counter back at 1)
// regenerates its deterministic event stream from the start and discards
// events whose seq is ≤ resume at assignment time, converging to the
// exact suffix the collector is missing. Both paths make retransmission
// idempotent: the merged stream sees every event exactly once, in order.
//
// # Liveness and degradation
//
// The collector tracks per-input progress wall-clock time. An input that
// stops sending stalls the merge barrier (that is the merge's
// correctness doing its job — nothing may retire past a watermark that
// could still move); Health reports it stalled after StallAfter. If the
// silence reaches EvictAfter, the collector evicts the input: it injects
// an EvEvict into the merge (internal/stream), which removes the input
// from the barrier, counts it in DeadInputs, counts its never-closed
// sessions in LostSessions, and lets the merge drain. The drained trace
// is exactly the merge of what arrived; what is missing is reported.
// Ingest applies the End-of-run accounting to analyze -perf and the
// collector's observability surface (internal/obs): stall, recovery and
// eviction transitions land as journal events and ingest_* counters, the
// MetricsHandler serves the registry as Prometheus text at /metrics, and
// the legacy Health JSON lives on at /metrics.json.
//
// # Journal sidecar: fleet-wide observability in-band
//
// An emitter given a JournalShip ships its own obs run journal to the
// collector on the same connection as the event stream, as a sidecar
// that inherits all of the machinery above. Journal lines are
// sequence-numbered in their own per-input seq space (independent of
// event seqs), carried in journal frames interleaved with data frames,
// cumulatively acked by journalAck frames, buffered until acked,
// retransmitted on reconnect and deduped/reordered at the collector —
// so every line lands in the collector's fleet journal exactly once, in
// emission order, across any number of connection losses. A restarted
// emitter resumes numbering from the welcome's journalResume watermark.
//
// The collector merges shipped lines into one fleet journal via
// obs.Journal.IngestLine, rebasing each line's t_ms onto its own clock:
// the hello carries the emitter's journal clock reading (journalTMs)
// at connect time, the collector computes offset = now − journalTMs at
// receipt, and keeps the minimum offset across reconnects — the sample
// with the least network delay. Each emitter's lines land in a lane
// named by the hello's source ("vantage0", …); the collector's own
// spans and per-input liveness events interleave in collector time.
//
// Shutdown is handshaked end to end: when the emitter's JournalShip is
// closed, the sidecar appends a zero-length sentinel line occupying the
// next journal seq (JournalShip never emits an empty line, so it is
// unambiguous); the collector marks the input's journal complete when
// the sentinel applies and — after the event merge finishes — lingers
// with the listener open until every shipping input's sentinel has
// arrived or its eviction bound elapses. That linger is what lets the
// trailing lines every emitter writes after its events drain (final
// metrics/latency snapshots) survive a connection cut at exactly the
// wrong moment. Trace byte-identity is untouched: the sidecar rides the
// wire but never enters the merge.
//
// Wire latency is measured per frame on both ends: gob encode/decode
// time (ingest_frame_encode_seconds / ingest_frame_decode_seconds) and
// the emitter's data-send → covering-ack round trip
// (ingest_ack_rtt_seconds), as wall histograms — Prometheus exposition
// plus a final journal "latency" snapshot, excluded from deterministic
// metrics snapshots (see internal/obs).
package ingest
