package ingest

import (
	"bytes"
	"sync"
)

// JournalShip is the bridge between a process's obs.Journal and its
// Emitter: an io.Writer the journal writes JSONL lines into, and a
// queue the emitter drains to ship those lines to the collector as
// journal frames. Point the journal at it directly (or via
// io.MultiWriter alongside a local file), hand it to
// EmitterConfig.Ship, and every span, event, heartbeat and snapshot the
// process records flows into the collector's fleet journal with the
// same at-least-once-send / exactly-once-apply contract as event data.
//
// The queue is unbounded: journal volume is a trickle (heartbeats,
// phase spans) next to event data, and dropping lines would tear the
// lane's sequence contract. Write never blocks and never fails, so the
// journal's error latch stays clear no matter what the network does.
type JournalShip struct {
	mu     sync.Mutex
	part   []byte   // trailing partial line, awaiting its '\n'
	lines  [][]byte // complete lines awaiting Take
	closed bool
	ready  chan struct{}
}

// NewJournalShip returns an empty ship.
func NewJournalShip() *JournalShip {
	return &JournalShip{ready: make(chan struct{}, 1)}
}

// Write queues complete newline-terminated lines and buffers any
// trailing partial line. Always succeeds (the ship never applies
// backpressure to the journal).
func (s *JournalShip) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return len(p), nil
	}
	s.part = append(s.part, p...)
	queued := false
	for {
		i := bytes.IndexByte(s.part, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, i)
		copy(line, s.part[:i])
		s.part = s.part[i+1:]
		if len(line) > 0 {
			s.lines = append(s.lines, line)
			queued = true
		}
	}
	s.mu.Unlock()
	if queued {
		s.signal()
	}
	return len(p), nil
}

// Close marks the stream complete: the emitter drains whatever is
// queued, waits for the collector's acks, and then lets Run return.
// Writes after Close are dropped. Idempotent, never fails.
func (s *JournalShip) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
	return nil
}

// Ready returns the channel the emitter selects on: it is signaled
// (capacity-1, coalescing) whenever lines become available or the ship
// closes.
func (s *JournalShip) Ready() <-chan struct{} { return s.ready }

// Take removes and returns every queued complete line, and whether the
// ship has been closed.
func (s *JournalShip) Take() (lines [][]byte, closed bool) {
	s.mu.Lock()
	lines, s.lines = s.lines, nil
	closed = s.closed
	s.mu.Unlock()
	return lines, closed
}

func (s *JournalShip) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}
