package ingest_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
)

// normLines parses a JSONL journal and returns its lines with t_ms (and
// src, when filtering by lane) stripped and keys re-marshaled in sorted
// order, preserving file order. src == "" with filter false returns
// every line; filter true keeps only lines in that lane. Every kept line
// must carry a nonnegative t_ms — shipped lines are rebased onto the
// collector's clock, so a negative instant means the offset math broke.
func normLines(t *testing.T, data []byte, src string, filter bool) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		if filter {
			if s, _ := m["src"].(string); s != src {
				continue
			}
		}
		if tm, ok := m["t_ms"].(float64); !ok || tm < 0 {
			t.Fatalf("journal line has missing or negative t_ms: %s", sc.Text())
		}
		delete(m, "t_ms")
		delete(m, "src")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func laneLines(t *testing.T, data []byte, src string) []string {
	t.Helper()
	return normLines(t, data, src, true)
}

// runShippedFleet runs a collector whose fleet journal collects into a
// buffer, plus one journal-shipping emitter per stream. Each emitter
// process has its own registry and journal, teed into a local buffer
// (the ground truth for what its lane must contain) and its
// JournalShip. The per-process lifecycle mirrors cmd/vantage: a
// "simulate" span around the feed, intake closed, EventsDrained awaited,
// final metrics + latency snapshots, ship closed. Returns the merged
// trace, the fleet journal bytes, and each emitter's local journal copy.
func runShippedFleet(t *testing.T, streams [][]stream.Event, colMod func(*ingest.CollectorConfig), emMod func(int, *ingest.EmitterConfig)) (*trace.Trace, []byte, [][]byte) {
	t.Helper()
	fleet := &bytes.Buffer{}
	fj := obs.NewJournal(fleet)
	fj.SetSource("collector")
	ccfg := ingest.CollectorConfig{
		Inputs: len(streams),
		Obs:    &obs.Observer{Metrics: obs.NewRegistry(), Journal: fj},
	}
	if colMod != nil {
		colMod(&ccfg)
	}
	col, err := ingest.NewCollector(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	locals := make([]*bytes.Buffer, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, evs := range streams {
		local := &bytes.Buffer{}
		locals[i] = local
		ship := ingest.NewJournalShip()
		j := obs.NewJournal(io.MultiWriter(local, ship))
		o := &obs.Observer{Metrics: obs.NewRegistry(), Journal: j}
		cfg := ingest.EmitterConfig{
			Addr:    col.Addr(),
			Input:   i,
			Obs:     o,
			Ship:    ship,
			Source:  fmt.Sprintf("vantage%d", i),
			Journal: j,
		}
		if emMod != nil {
			emMod(i, &cfg)
		}
		em := ingest.NewEmitter(cfg)
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			errs[i] = em.Run()
		}(i)
		go func(i int, evs []stream.Event) {
			defer wg.Done()
			sp := j.Begin("simulate", obs.A("node", i))
			feedBatches(em.Intake(), i, evs)
			sp.End(obs.A("events", len(evs)))
			close(em.Intake())
			<-em.EventsDrained()
			o.SnapshotMetrics()
			o.SnapshotLatency()
			ship.Close()
		}(i, evs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("emitter %d: %v", i, err)
		}
	}
	tr := <-trCh
	if err := fj.Err(); err != nil {
		t.Fatalf("fleet journal: %v", err)
	}
	lb := make([][]byte, len(locals))
	for i, b := range locals {
		lb[i] = b.Bytes()
	}
	return tr, fleet.Bytes(), lb
}

// TestJournalShipCleanFleet is the tentpole contract on a clean network:
// three shipping emitters plus the collector produce one fleet journal
// where every process's lane is byte-equivalent (modulo the clock
// rebase) to that process's own journal, the collector's lanes record
// the run, the merged trace is still byte-identical to the in-process
// merge, and two runs of the same spec are obs.Canonical-identical.
func TestJournalShipCleanFleet(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 60), genStream(1, 60), genStream(2, 60)}
	want := hashOf(t, directMerge(streams))

	run := func() []byte {
		tr, fleet, locals := runShippedFleet(t, streams, nil, nil)
		if hashOf(t, tr) != want {
			t.Fatal("shipped-fleet trace differs from in-process merge")
		}
		// Every emitter's lane in the fleet journal is exactly its own
		// journal: same lines, same order, nothing dropped or duplicated.
		for i, local := range locals {
			src := fmt.Sprintf("vantage%d", i)
			got := laneLines(t, fleet, src)
			wantLane := normLines(t, local, "", false)
			if !reflect.DeepEqual(got, wantLane) {
				t.Fatalf("lane %s diverges from emitter's own journal:\n got %v\nwant %v", src, got, wantLane)
			}
			// The lane carries the full vantage lifecycle: simulate span,
			// final metrics snapshot, latency rollup.
			joined := fmt.Sprint(got)
			for _, frag := range []string{`"span_start"`, `"simulate"`, `"span_end"`, `"metrics"`, `"latency"`, "emitter_acked_seq"} {
				if !bytes.Contains([]byte(joined), []byte(frag)) {
					t.Fatalf("lane %s missing %s:\n%v", src, frag, got)
				}
			}
			// Per-input liveness lands in the collector/<source> lane.
			live := fmt.Sprint(laneLines(t, fleet, "collector/"+src))
			if !bytes.Contains([]byte(live), []byte(`"input_done"`)) {
				t.Fatalf("lane collector/%s missing input_done: %v", src, live)
			}
		}
		own := fmt.Sprint(laneLines(t, fleet, "collector"))
		if !bytes.Contains([]byte(own), []byte(`"collect"`)) {
			t.Fatalf("collector lane missing collect span: %v", own)
		}
		return fleet
	}

	a, err := obs.Canonical(bytes.NewReader(run()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := obs.Canonical(bytes.NewReader(run()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("canonical fleet journal is empty")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two same-spec fleet journals differ canonically:\nrun1 %d lines\nrun2 %d lines", len(a), len(b))
	}
}

// TestJournalShipUnderFaults reruns lane integrity under the seeded
// fault schedule: dropped, duplicated and reordered frames on both
// directions. Journal frames ride the same retransmit/dedupe machinery
// as event data, so every lane must still equal its emitter's own
// journal exactly — and the trace identity must survive with shipping
// enabled.
func TestJournalShipUnderFaults(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 50), genStream(1, 50), genStream(2, 50)}
	want := hashOf(t, directMerge(streams))

	inj := faultnet.New(faultnet.Config{
		Seed:        2004,
		DropProb:    0.02,
		DupProb:     0.05,
		ReorderProb: 0.05,
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dial := inj.Dial(func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	tr, fleet, locals := runShippedFleet(t, streams,
		func(cfg *ingest.CollectorConfig) {
			cfg.Listener = inj.Listener(inner)
			cfg.EvictAfter = 30 * time.Second
			cfg.ReadTimeout = 2 * time.Second
		},
		func(i int, cfg *ingest.EmitterConfig) {
			cfg.Dial = dial
			cfg.Retry = transport.Retry{Max: 500, Base: time.Millisecond, Cap: 10 * time.Millisecond, Seed: uint64(i + 1)}
			cfg.AckTimeout = 400 * time.Millisecond
			cfg.WelcomeTimeout = 300 * time.Millisecond
			cfg.WriteTimeout = time.Second
		})
	if hashOf(t, tr) != want {
		t.Fatal("trace under faults differs from in-process merge")
	}
	for i, local := range locals {
		src := fmt.Sprintf("vantage%d", i)
		got := laneLines(t, fleet, src)
		wantLane := normLines(t, local, "", false)
		if !reflect.DeepEqual(got, wantLane) {
			t.Fatalf("lane %s under faults diverges from emitter's own journal:\n got %v\nwant %v", src, got, wantLane)
		}
	}
}

// TestJournalShipRestartResumesLane kills a shipping emitter after its
// first journal lines are applied and brings up a replacement process
// with a fresh journal. The welcome's JournalResume makes the new
// process number its lines after the dead one's acked watermark, so the
// lane continues — first life's lines, then second life's, no
// duplicates, no overwrite.
func TestJournalShipRestartResumesLane(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 60)}
	want := hashOf(t, directMerge(streams))

	fleet := &bytes.Buffer{}
	fj := obs.NewJournal(fleet)
	fj.SetSource("collector")
	col, err := ingest.NewCollector(ingest.CollectorConfig{
		Inputs:     1,
		EvictAfter: 30 * time.Second,
		Obs:        &obs.Observer{Journal: fj},
	})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	// First life: three journal events and half the stream, then death
	// with no flush.
	ship1 := ingest.NewJournalShip()
	j1 := obs.NewJournal(ship1)
	e1 := ingest.NewEmitter(ingest.EmitterConfig{
		Addr: col.Addr(), Input: 0, Ship: ship1, Source: "vantage0", Journal: j1,
	})
	e1done := make(chan error, 1)
	go func() { e1done <- e1.Run() }()
	for i := 0; i < 3; i++ {
		j1.Event("life1", obs.A("n", i))
	}
	feedBatches(e1.Intake(), 0, streams[0][:30])
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := col.Health()
		if h.Inputs[0].JournalSeq >= 3 && h.Inputs[0].AppliedSeq > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector never applied first life's journal; health = %+v", col.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	e1.Stop()
	if err := <-e1done; err != nil {
		t.Fatalf("first life: %v", err)
	}

	// Second life: fresh journal, regenerated stream. Its two events
	// must land after the first life's three in the same lane.
	ship2 := ingest.NewJournalShip()
	j2 := obs.NewJournal(ship2)
	e2 := ingest.NewEmitter(ingest.EmitterConfig{
		Addr: col.Addr(), Input: 0, Ship: ship2, Source: "vantage0", Journal: j2,
	})
	e2done := make(chan error, 1)
	go func() { e2done <- e2.Run() }()
	j2.Event("life2", obs.A("n", 0))
	j2.Event("life2", obs.A("n", 1))
	feedBatches(e2.Intake(), 0, streams[0])
	close(e2.Intake())
	<-e2.EventsDrained()
	ship2.Close()
	if err := <-e2done; err != nil {
		t.Fatalf("second life: %v", err)
	}

	tr := <-trCh
	if hashOf(t, tr) != want {
		t.Fatal("trace after restart differs from in-process merge")
	}
	lane := laneLines(t, fleet.Bytes(), "vantage0")
	var names []string
	for _, l := range lane {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatal(err)
		}
		names = append(names, m["name"].(string))
	}
	wantNames := []string{"life1", "life1", "life1", "life2", "life2"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("lane after restart = %v, want %v", names, wantNames)
	}
}

// TestJournalShipWriteSemantics pins the io.Writer bridge: partial
// lines buffer until their newline, complete lines queue and signal
// Ready, Take drains, Close is terminal and drops later writes.
func TestJournalShipWriteSemantics(t *testing.T) {
	s := ingest.NewJournalShip()
	if _, err := s.Write([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Ready():
		t.Fatal("Ready fired with only a partial line queued")
	default:
	}
	if _, err := s.Write([]byte("\n{\"b\":2}\n{\"c\"")); err != nil {
		t.Fatal(err)
	}
	<-s.Ready()
	lines, closed := s.Take()
	if closed {
		t.Fatal("closed before Close")
	}
	if len(lines) != 2 || string(lines[0]) != `{"a":1}` || string(lines[1]) != `{"b":2}` {
		t.Fatalf("Take = %q", lines)
	}
	if _, err := s.Write([]byte(":3}\n\n")); err != nil { // blank line is skipped
		t.Fatal(err)
	}
	<-s.Ready()
	lines, _ = s.Take()
	if len(lines) != 1 || string(lines[0]) != `{"c":3}` {
		t.Fatalf("Take after completion = %q", lines)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("{\"late\":1}\n")); err != nil {
		t.Fatal(err)
	}
	<-s.Ready()
	lines, closed = s.Take()
	if len(lines) != 0 || !closed {
		t.Fatalf("after Close: lines=%q closed=%v, want none and closed", lines, closed)
	}
}
