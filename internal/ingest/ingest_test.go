package ingest_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
)

// genStream builds input's deterministic synthetic event stream:
// overlapping sessions with nondecreasing event times, one query each,
// and the EvDone trailer. The same input index always yields the same
// stream — the property a restarted emitter relies on.
func genStream(input, n int) []stream.Event {
	type timed struct {
		t  trace.Time
		ev stream.Event
	}
	var items []timed
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		start := time.Duration(i)*50*time.Millisecond + time.Duration(input)*7*time.Millisecond
		end := start + time.Duration((i%9)+1)*130*time.Millisecond
		rec := &stream.SessionRecord{
			Conn: trace.Conn{Start: start, End: end, UserAgent: fmt.Sprintf("V%d/1.0", input)},
			Queries: []trace.Query{
				{At: start + time.Millisecond, Text: fmt.Sprintf("q %d %d", input, i), TTL: 7, Hops: 1},
			},
		}
		items = append(items, timed{start, stream.Event{Kind: stream.EvOpen, ID: id, Time: start}})
		items = append(items, timed{end, stream.Event{Kind: stream.EvClose, ID: id, Time: end, Sess: rec}})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].t < items[b].t })
	evs := make([]stream.Event, 0, len(items)+1)
	for _, it := range items {
		evs = append(evs, it.ev)
	}
	horizon := items[len(items)-1].t + time.Second
	end := &stream.End{Nodes: 1, Counts: trace.MessageCounts{Query: uint64(n), QueryHop1: uint64(n)}}
	if input == 0 {
		end.Seed = 42
		end.Scale = 0.5
		end.Days = 1
	}
	evs = append(evs, stream.Event{Kind: stream.EvDone, Time: horizon, Done: end})
	return evs
}

// directMerge is the in-process reference: the same streams through a
// stream.Merger with no network in between.
func directMerge(streams [][]stream.Event) *trace.Trace {
	m := stream.NewMerger(len(streams), nil)
	done := make(chan *trace.Trace)
	go func() { done <- m.Run() }()
	var wg sync.WaitGroup
	for i, evs := range streams {
		wg.Add(1)
		go func(i int, evs []stream.Event) {
			defer wg.Done()
			feedBatches(m.Intake(), i, evs)
		}(i, evs)
	}
	wg.Wait()
	return <-done
}

func feedBatches(ch chan<- stream.Batch, input int, evs []stream.Event) {
	for len(evs) > 0 {
		n := len(evs)
		if n > 64 {
			n = 64
		}
		ch <- stream.Batch{Input: input, Events: evs[:n:n]}
		evs = evs[n:]
	}
}

func hashOf(t *testing.T, tr *trace.Trace) [32]byte {
	t.Helper()
	h, err := tr.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	return h
}

// runEmitters ships each stream through its own emitter and returns once
// all emitter Runs finished, failing the test on any emitter error.
func runEmitters(t *testing.T, addr string, streams [][]stream.Event, mod func(int, *ingest.EmitterConfig)) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(streams))
	for i, evs := range streams {
		cfg := ingest.EmitterConfig{Addr: addr, Input: i}
		if mod != nil {
			mod(i, &cfg)
		}
		em := ingest.NewEmitter(cfg)
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			errs[i] = em.Run()
		}(i)
		go func(i int, evs []stream.Event) {
			defer wg.Done()
			feedBatches(em.Intake(), i, evs)
			close(em.Intake())
		}(i, evs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("emitter %d: %v", i, err)
		}
	}
}

// TestIngestLoopbackByteIdentical is the tentpole contract on a clean
// network: three emitter connections into a collector produce exactly
// the trace the in-process merge produces.
func TestIngestLoopbackByteIdentical(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 120), genStream(1, 120), genStream(2, 120)}
	want := hashOf(t, directMerge(streams))

	col, err := ingest.NewCollector(ingest.CollectorConfig{Inputs: 3})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	runEmitters(t, col.Addr(), streams, nil)
	got := <-trCh
	if hashOf(t, got) != want {
		t.Fatal("collector trace differs from in-process merge")
	}
	if col.DeadInputs() != 0 || col.LostSessions() != 0 {
		t.Fatalf("clean run reported losses: dead=%d lost=%d", col.DeadInputs(), col.LostSessions())
	}
	if got.Nodes != 3 {
		t.Fatalf("Nodes = %d, want 3", got.Nodes)
	}
}

// TestIngestByteIdenticalUnderFaults reruns the identity under a seeded
// fault schedule on both directions: dropped, duplicated and reordered
// frames on the data path and the ack path alike. The emitters survive
// by reconnecting, resuming from the acked watermark and retransmitting;
// the collector dedupes; the drained trace must still be byte-identical.
func TestIngestByteIdenticalUnderFaults(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 90), genStream(1, 90), genStream(2, 90)}
	want := hashOf(t, directMerge(streams))

	inj := faultnet.New(faultnet.Config{
		Seed:        2004,
		DropProb:    0.02,
		DupProb:     0.05,
		ReorderProb: 0.05,
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col, err := ingest.NewCollector(ingest.CollectorConfig{
		Inputs:      3,
		Listener:    inj.Listener(inner),
		EvictAfter:  30 * time.Second, // faults, not death: nothing may be evicted
		ReadTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	dial := inj.Dial(func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	runEmitters(t, col.Addr(), streams, func(i int, cfg *ingest.EmitterConfig) {
		cfg.Dial = dial
		cfg.Retry = transport.Retry{Max: 500, Base: time.Millisecond, Cap: 10 * time.Millisecond, Seed: uint64(i + 1)}
		cfg.AckTimeout = 400 * time.Millisecond
		cfg.WelcomeTimeout = 300 * time.Millisecond
		cfg.WriteTimeout = time.Second
	})
	got := <-trCh
	if hashOf(t, got) != want {
		t.Fatal("trace under faults differs from in-process merge")
	}
	if col.DeadInputs() != 0 || col.LostSessions() != 0 {
		t.Fatalf("faulty-but-alive run reported losses: dead=%d lost=%d", col.DeadInputs(), col.LostSessions())
	}
}

// TestIngestEmitterRestartResume kills an emitter mid-stream (Stop — no
// flush, exactly like SIGKILL) and replaces it with a fresh process-like
// emitter that regenerates the stream from seq 1. The welcome's resume
// watermark makes the replacement skip everything already applied, and
// the final trace is still byte-identical.
func TestIngestEmitterRestartResume(t *testing.T) {
	streams := [][]stream.Event{genStream(0, 100), genStream(1, 100)}
	want := hashOf(t, directMerge(streams))

	col, err := ingest.NewCollector(ingest.CollectorConfig{Inputs: 2, EvictAfter: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	// Input 1's first life: sends roughly half its events, then dies.
	half := len(streams[1]) / 2
	e1 := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 1})
	e1done := make(chan error, 1)
	go func() { e1done <- e1.Run() }()
	feedBatches(e1.Intake(), 1, streams[1][:half])
	// Wait until the collector has applied some of it, so the restart
	// genuinely resumes rather than starting from zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := col.Health(); h.Inputs[1].AppliedSeq > uint64(half/2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never applied input 1's first life")
		}
		time.Sleep(5 * time.Millisecond)
	}
	e1.Stop()
	if err := <-e1done; err != nil {
		t.Fatalf("first life: %v", err)
	}

	// Input 0 runs normally; input 1's second life regenerates the whole
	// stream and resumes from the ack watermark.
	runEmitters(t, col.Addr(), [][]stream.Event{streams[0]}, nil)
	e2 := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 1})
	e2done := make(chan error, 1)
	go func() { e2done <- e2.Run() }()
	feedBatches(e2.Intake(), 1, streams[1])
	close(e2.Intake())
	if err := <-e2done; err != nil {
		t.Fatalf("second life: %v", err)
	}

	got := <-trCh
	if hashOf(t, got) != want {
		t.Fatal("trace after restart+resume differs from in-process merge")
	}
	if col.DeadInputs() != 0 {
		t.Fatalf("restarted input counted dead: %d", col.DeadInputs())
	}
}

// TestIngestDeadInputEvictedNoDeadlock is the degradation contract: a
// vantage that dies and never returns must not deadlock the collector.
// After EvictAfter of silence the input is evicted, the merge drains,
// and the loss is accounted exactly. A late replacement emitter for the
// dead input is turned away with ErrEvicted.
func TestIngestDeadInputEvictedNoDeadlock(t *testing.T) {
	col, err := ingest.NewCollector(ingest.CollectorConfig{
		Inputs:     3,
		StallAfter: 50 * time.Millisecond,
		EvictAfter: 300 * time.Millisecond,
		Tick:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	// Input 0 completes immediately.
	runEmitters(t, col.Addr(), [][]stream.Event{genStream(0, 20)}, nil)

	// Input 1 opens two sessions, closes one, then its process dies.
	e1 := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 1})
	e1done := make(chan error, 1)
	go func() { e1done <- e1.Run() }()
	e1.Intake() <- stream.Batch{Events: []stream.Event{
		{Kind: stream.EvOpen, ID: 1, Time: time.Second},
		{Kind: stream.EvOpen, ID: 2, Time: 2 * time.Second},
		{Kind: stream.EvClose, ID: 1, Time: 3 * time.Second, Sess: &stream.SessionRecord{
			Conn: trace.Conn{Start: time.Second, End: 3 * time.Second},
		}},
	}}
	// Let the batch reach the collector before the crash.
	deadline := time.Now().Add(5 * time.Second)
	for col.Health().Inputs[1].AppliedSeq < 3 {
		if time.Now().After(deadline) {
			t.Fatal("collector never applied input 1's events")
		}
		time.Sleep(5 * time.Millisecond)
	}
	e1.Stop()
	<-e1done

	// Input 2 stays alive (sending its stream except the trailer) until
	// input 1 has been declared dead, so the eviction demonstrably
	// happens while the merge is still running.
	s2 := genStream(2, 20)
	e2 := ingest.NewEmitter(ingest.EmitterConfig{
		Addr: col.Addr(), Input: 2,
		KeepAlive: 50 * time.Millisecond, // stay visibly alive while idle
	})
	e2done := make(chan error, 1)
	go func() { e2done <- e2.Run() }()
	feedBatches(e2.Intake(), 2, s2[:len(s2)-1])

	deadline = time.Now().Add(10 * time.Second)
	for col.Health().Inputs[1].State != ingest.StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("input 1 never evicted; health = %+v", col.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A replacement emitter for the evicted input is refused for good.
	late := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 1})
	lateDone := make(chan error, 1)
	go func() { lateDone <- late.Run() }()
	late.Intake() <- stream.Batch{Events: []stream.Event{{Kind: stream.EvOpen, ID: 9, Time: 4 * time.Second}}}
	if err := <-lateDone; !errors.Is(err, ingest.ErrEvicted) {
		t.Fatalf("late emitter returned %v, want ErrEvicted", err)
	}

	// Release input 2's trailer; the run must now complete.
	e2.Intake() <- stream.Batch{Events: s2[len(s2)-1:]}
	close(e2.Intake())
	if err := <-e2done; err != nil {
		t.Fatalf("input 2: %v", err)
	}

	got := <-trCh
	if col.DeadInputs() != 1 {
		t.Fatalf("DeadInputs = %d, want 1", col.DeadInputs())
	}
	if col.LostSessions() != 1 {
		t.Fatalf("LostSessions = %d, want 1 (session 2 was open at death)", col.LostSessions())
	}
	// 20 sessions from input 0, 20 from input 2, 1 closed before death.
	if len(got.Conns) != 41 {
		t.Fatalf("merged %d conns, want 41", len(got.Conns))
	}
	if got.Nodes != 3 {
		t.Fatalf("Nodes = %d, want 3 (the dead vantage still existed)", got.Nodes)
	}
}

// TestCollectorMetricsHandler scrapes the observability surface mid-run:
// /metrics serves Prometheus text with the ingest_* families, and the
// legacy Health JSON lives on at /metrics.json.
func TestCollectorMetricsHandler(t *testing.T) {
	col, err := ingest.NewCollector(ingest.CollectorConfig{Inputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, _ := col.Run()
		trCh <- tr
	}()
	srv := httptest.NewServer(col.MetricsHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ingest_inputs_waiting gauge",
		`ingest_applied_seq{input="0"} 0`,
		"ingest_inputs_waiting 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var h ingest.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.Inputs) != 1 || h.Inputs[0].State != ingest.StateWaiting {
		t.Fatalf("health = %+v, want one waiting input", h)
	}

	runEmitters(t, col.Addr(), [][]stream.Event{genStream(0, 5)}, nil)
	<-trCh
}
