package ingest_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
)

// TestCollectorJournalStallEvictOrder pins the liveness narrative the
// journal tells for a vantage that dies mid-run: input_stalled (at
// StallAfter) strictly before input_evicted (at EvictAfter), both
// carrying the input index, with the stall/eviction counters agreeing.
func TestCollectorJournalStallEvictOrder(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	o := &obs.Observer{Metrics: reg, Journal: obs.NewJournal(&buf)}

	col, err := ingest.NewCollector(ingest.CollectorConfig{
		Inputs:     2,
		StallAfter: 50 * time.Millisecond,
		EvictAfter: 400 * time.Millisecond,
		Tick:       20 * time.Millisecond,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	trCh := make(chan *trace.Trace, 1)
	go func() {
		tr, err := col.Run()
		if err != nil {
			t.Errorf("collector: %v", err)
		}
		trCh <- tr
	}()

	// Input 1 completes cleanly.
	e1 := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 1, Obs: o})
	e1done := make(chan error, 1)
	go func() { e1done <- e1.Run() }()
	feedBatches(e1.Intake(), 1, genStream(1, 10))
	close(e1.Intake())
	if err := <-e1done; err != nil {
		t.Fatalf("emitter 1: %v", err)
	}

	// Input 0 connects, delivers one open, then its process dies and
	// never returns.
	e0 := ingest.NewEmitter(ingest.EmitterConfig{Addr: col.Addr(), Input: 0, Obs: o})
	e0done := make(chan error, 1)
	go func() { e0done <- e0.Run() }()
	e0.Intake() <- stream.Batch{Events: []stream.Event{{Kind: stream.EvOpen, ID: 1, Time: time.Second}}}
	deadline := time.Now().Add(5 * time.Second)
	for col.Health().Inputs[0].AppliedSeq < 1 {
		if time.Now().After(deadline) {
			t.Fatal("collector never applied input 0's open")
		}
		time.Sleep(5 * time.Millisecond)
	}
	e0.Stop()
	<-e0done

	<-trCh
	if col.DeadInputs() != 1 {
		t.Fatalf("DeadInputs = %d, want 1", col.DeadInputs())
	}

	stalled, evicted := -1, -1
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for i := 0; dec.More(); i++ {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("journal line %d: %v", i, err)
		}
		if rec["kind"] != "event" {
			continue
		}
		attrs, _ := rec["attrs"].(map[string]any)
		if in, ok := attrs["input"].(float64); !ok || int(in) != 0 {
			continue
		}
		switch rec["name"] {
		case "input_stalled":
			if stalled < 0 {
				stalled = i
			}
		case "input_evicted":
			if evicted < 0 {
				evicted = i
			}
		}
	}
	if stalled < 0 || evicted < 0 {
		t.Fatalf("journal missing transitions: stalled line %d, evicted line %d\n%s", stalled, evicted, buf.String())
	}
	if stalled >= evicted {
		t.Fatalf("input_stalled (line %d) must precede input_evicted (line %d)", stalled, evicted)
	}
	if v := reg.Value("ingest_stalls_total", -1); v < 1 {
		t.Fatalf("ingest_stalls_total = %v, want >= 1", v)
	}
	if v := reg.Value("ingest_evictions_total", -1); v != 1 {
		t.Fatalf("ingest_evictions_total = %v, want 1", v)
	}
}
