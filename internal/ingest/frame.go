package ingest

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
)

// protoVersion is the ingest wire protocol version; the collector
// rejects hellos it does not speak. Version 2 added journal shipping
// (the frameJournal/frameJournalAck sidecar and the hello's
// Source/JournalTMs fields); version-1 hellos are still accepted — they
// simply never ship journal lines.
const protoVersion = 2

// protoVersionMin is the oldest hello the collector still serves.
const protoVersionMin = 1

// maxFrameLen bounds one frame's payload: a data frame carries at most
// maxFrameEvents session records, far under this; anything larger is a
// corrupt or hostile length prefix.
const maxFrameLen = 32 << 20

// maxFrameEvents caps events per data frame, mirroring the stream
// package's producer batch size so one frame is one Write of bounded
// size.
const maxFrameEvents = 256

type frameKind uint8

const (
	frameHello frameKind = iota + 1
	frameWelcome
	frameData
	frameAck
	frameJournal
	frameJournalAck
)

// helloFrame opens a connection: which merger input this emitter feeds.
// Source names the emitter's lane in the fleet journal ("" lets the
// collector default to input<N>). JournalTMs is the emitter's own
// journal clock (obs.Journal.Now, milliseconds) sampled when the hello
// was written — the collector subtracts it from its own clock on
// receipt to estimate the per-input offset that rebases shipped journal
// lines onto the collector's time axis. Negative means the emitter has
// no journal to ship.
type helloFrame struct {
	Proto      int
	Input      int
	Source     string
	JournalTMs float64
}

// welcomeFrame answers a hello. Resume is the highest contiguous event
// seq the collector has applied for this input — the emitter retransmits
// everything after it and nothing at or before it. JournalResume is the
// same watermark for shipped journal lines; a fresh emitter process
// numbers its first line JournalResume+1, so a restarted vantage's lane
// continues where the dead process's last acked line left off. Evicted
// tells a late-returning emitter its input is already dead; there is no
// way back into the merge, so the emitter should stop.
type welcomeFrame struct {
	Resume        uint64
	JournalResume uint64
	Evicted       bool
}

// dataFrame carries a contiguous run of events: event i has sequence
// number FirstSeq+i.
type dataFrame struct {
	FirstSeq uint64
	Events   []stream.Event
}

// ackFrame acknowledges the highest contiguous seq applied. Cumulative:
// any ack covers every earlier seq, so lost or reordered acks are
// harmless. The same shape serves both event acks (frameAck) and
// journal-line acks (frameJournalAck) — the two sequence spaces are
// independent.
type ackFrame struct {
	Seq uint64
}

// journalFrame is the journal-shipping sidecar: a contiguous run of raw
// JSONL journal lines, line i carrying sequence number FirstSeq+i in
// the input's journal sequence space. Journal lines ride the same
// connection as event data and inherit the same fault-tolerance
// contract — sequence-numbered, cumulatively acked, retransmitted on
// reconnect, deduplicated and reordered at the collector.
type journalFrame struct {
	FirstSeq uint64
	Lines    [][]byte
}

// frame is the wire unit; exactly one pointer field is set, matching
// Kind. Gob omits the nil ones.
type frame struct {
	Kind    frameKind
	Hello   *helloFrame
	Welcome *welcomeFrame
	Data    *dataFrame
	Ack     *ackFrame
	Journal *journalFrame
	JAck    *ackFrame
}

// encodeFrame renders f as one wire unit: 4-byte big-endian length
// prefix followed by the gob payload.
func encodeFrame(f *frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("ingest: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// decodeFrame decodes one payload with a fresh gob stream, so no
// decoder state survives between frames.
func decodeFrame(payload []byte) (*frame, error) {
	f := new(frame)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, fmt.Errorf("ingest: decode frame: %w", err)
	}
	return f, nil
}

// writeFrame encodes f and delivers it with a single Write: length
// prefix and payload together, so a write-granular fault (drop, dup,
// reorder) acts on whole frames and never tears one except by killing
// the connection. enc, when non-nil, observes the encode time in
// seconds (the gob work alone, not the network write).
func writeFrame(w io.Writer, f *frame, enc *obs.Histogram) error {
	var start time.Time
	if enc != nil {
		start = time.Now()
	}
	b, err := encodeFrame(f)
	if enc != nil {
		enc.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame and decodes it. dec, when
// non-nil, observes the decode time in seconds (the gob work alone, not
// the blocking network read).
func readFrame(r io.Reader, dec *obs.Histogram) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameLen {
		return nil, fmt.Errorf("ingest: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var start time.Time
	if dec != nil {
		start = time.Now()
	}
	f, err := decodeFrame(payload)
	if dec != nil {
		dec.Observe(time.Since(start).Seconds())
	}
	return f, err
}

// latencyBuckets is the shared bucket schema for the per-frame wall
// histograms: 10 µs to ~2.6 s, exponential.
func latencyBuckets() []float64 { return obs.ExpBuckets(1e-5, 4, 10) }
