package ingest

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/stream"
)

// protoVersion is the ingest wire protocol version; the collector
// rejects hellos it does not speak.
const protoVersion = 1

// maxFrameLen bounds one frame's payload: a data frame carries at most
// maxFrameEvents session records, far under this; anything larger is a
// corrupt or hostile length prefix.
const maxFrameLen = 32 << 20

// maxFrameEvents caps events per data frame, mirroring the stream
// package's producer batch size so one frame is one Write of bounded
// size.
const maxFrameEvents = 256

type frameKind uint8

const (
	frameHello frameKind = iota + 1
	frameWelcome
	frameData
	frameAck
)

// helloFrame opens a connection: which merger input this emitter feeds.
type helloFrame struct {
	Proto int
	Input int
}

// welcomeFrame answers a hello. Resume is the highest contiguous event
// seq the collector has applied for this input — the emitter retransmits
// everything after it and nothing at or before it. Evicted tells a
// late-returning emitter its input is already dead; there is no way back
// into the merge, so the emitter should stop.
type welcomeFrame struct {
	Resume  uint64
	Evicted bool
}

// dataFrame carries a contiguous run of events: event i has sequence
// number FirstSeq+i.
type dataFrame struct {
	FirstSeq uint64
	Events   []stream.Event
}

// ackFrame acknowledges the highest contiguous seq applied. Cumulative:
// any ack covers every earlier seq, so lost or reordered acks are
// harmless.
type ackFrame struct {
	Seq uint64
}

// frame is the wire unit; exactly one pointer field is set, matching
// Kind. Gob omits the nil ones.
type frame struct {
	Kind    frameKind
	Hello   *helloFrame
	Welcome *welcomeFrame
	Data    *dataFrame
	Ack     *ackFrame
}

// writeFrame encodes f and delivers it with a single Write: length
// prefix and payload together, so a write-granular fault (drop, dup,
// reorder) acts on whole frames and never tears one except by killing
// the connection.
func writeFrame(w io.Writer, f *frame) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("ingest: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame and decodes it with a fresh
// gob stream, so no decoder state survives between frames.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameLen {
		return nil, fmt.Errorf("ingest: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	f := new(frame)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, fmt.Errorf("ingest: decode frame: %w", err)
	}
	return f, nil
}
