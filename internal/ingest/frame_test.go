package ingest

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

func roundTrip(t *testing.T, f *frame) *frame {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, f, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	rec := &stream.SessionRecord{
		Conn: trace.Conn{
			Start: time.Second, End: time.Minute,
			Addr: netip.MustParseAddr("10.1.2.3"), Ultrapeer: true, UserAgent: "LimeWire/4.0",
		},
		Queries: []trace.Query{{At: 2 * time.Second, Text: "free mp3", TTL: 7, Hops: 1, Hits: 3}},
	}
	frames := []*frame{
		{Kind: frameHello, Hello: &helloFrame{Proto: protoVersion, Input: 2, Source: "vantage2", JournalTMs: 123.5}},
		{Kind: frameHello, Hello: &helloFrame{Proto: protoVersion, Input: 0, JournalTMs: -1}},
		{Kind: frameWelcome, Welcome: &welcomeFrame{Resume: 77, JournalResume: 12, Evicted: true}},
		{Kind: frameJournal, Journal: &journalFrame{FirstSeq: 13, Lines: [][]byte{
			[]byte(`{"kind":"event","t_ms":1,"name":"x"}`),
			[]byte(`{"kind":"heartbeat","t_ms":2}`),
		}}},
		{Kind: frameJournalAck, JAck: &ackFrame{Seq: 14}},
		{Kind: frameData, Data: &dataFrame{FirstSeq: 9, Events: []stream.Event{
			{Kind: stream.EvOpen, ID: 4, Time: time.Second},
			{Kind: stream.EvClose, ID: 4, Time: time.Minute, Sess: rec},
			{Kind: stream.EvPong, Time: 3 * time.Second, Pong: trace.Pong{At: 3 * time.Second, SharedFiles: 120}},
			{Kind: stream.EvDone, Time: time.Hour, Done: &stream.End{Seed: 1, Scale: 0.5, Days: 2, Nodes: 1}},
		}}},
		{Kind: frameAck, Ack: &ackFrame{Seq: 1 << 40}},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("kind %d round trip:\n got %+v\nwant %+v", f.Kind, got, f)
		}
	}
}

// TestFrameSingleWrite pins the one-frame-per-Write property that makes
// whole-write fault injection (dup, reorder) safe: swapping or doubling
// Write calls can never tear a frame.
func TestFrameSingleWrite(t *testing.T) {
	var w countingWriter
	if err := writeFrame(&w, &frame{Kind: frameAck, Ack: &ackFrame{Seq: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("frame used %d Write calls, want exactly 1", w.calls)
	}
}

type countingWriter struct {
	calls int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.calls++
	return len(p), nil
}

func TestFrameRejectsBadLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrameLen+1)
	if _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("oversized length accepted")
	}
	binary.BigEndian.PutUint32(hdr[:], 0)
	if _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestFrameTornPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{Kind: frameAck, Ack: &ackFrame{Seq: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := readFrame(bytes.NewReader(torn), nil); err == nil {
		t.Fatal("torn frame accepted")
	}
}
