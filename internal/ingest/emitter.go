package ingest

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/transport"
)

// ErrEvicted is returned by Emitter.Run when the collector reports the
// input already evicted: the merge has moved on without this vantage and
// re-admission is impossible, so the emitter must stop rather than retry.
var ErrEvicted = errors.New("ingest: input evicted by collector")

// errStopped aborts connect's backoff sleep when Stop is called.
var errStopped = errors.New("ingest: emitter stopped")

// EmitterConfig configures one vantage's emitter.
type EmitterConfig struct {
	// Addr is the collector's address.
	Addr string
	// Input is this vantage's merger input index.
	Input int

	// Dial overrides the dialer (fault injection, tests). Default is
	// net.DialTimeout over TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds one connect attempt (default 5 s).
	DialTimeout time.Duration
	// Retry paces reconnects: Max attempts per outage on the
	// exponential-backoff-with-full-jitter schedule (default Max 10,
	// transport defaults for Base/Cap). Run fails when one outage
	// outlives the budget.
	Retry transport.Retry

	// WriteTimeout bounds every frame write (default 10 s) — a peer
	// reading slowly cannot wedge the emitter, it gets a torn connection
	// and a retransmit instead.
	WriteTimeout time.Duration
	// WelcomeTimeout bounds the hello/welcome exchange (default 10 s).
	WelcomeTimeout time.Duration
	// AckTimeout declares the connection wedged when events are
	// outstanding and no ack progress arrives for this long (default
	// 15 s); the emitter reconnects and retransmits. This is what
	// recovers from faults that swallow frames without killing the
	// connection.
	AckTimeout time.Duration
	// MaxUnacked bounds the retransmit buffer in events (default 1<<16).
	// At the bound the emitter stops draining its intake — backpressure
	// propagates to the producer, exactly like a full merger intake does
	// in-process.
	MaxUnacked int
	// KeepAlive is how often an idle emitter sends an empty data frame
	// (default 2 s). The collector counts any valid frame as liveness, so
	// the keepalive is what distinguishes a healthy vantage with nothing
	// to say from a dead one. Keep it well under the collector's
	// EvictAfter.
	KeepAlive time.Duration

	// Obs attaches the observability layer: reconnect counts, the acked
	// watermark and the retransmit-buffer depth, all labeled by input,
	// plus the wall-clock latency histograms (frame encode/decode time,
	// ack round-trip). nil runs uninstrumented.
	Obs *obs.Observer

	// Ship, when set, streams this process's journal lines to the
	// collector as sequence-acked journal frames on the same connection
	// as event data (point the process's obs.Journal at the ship). Run
	// then returns only after both the event stream and the shipped
	// journal are fully acknowledged — close the ship (after the final
	// journal line) the way the intake channel is closed.
	Ship *JournalShip
	// Source names this emitter's lane in the collector's fleet journal
	// (e.g. "vantage0"). Empty lets the collector default to input<N>.
	Source string
	// Journal is the process's own journal; its clock (Journal.Now) is
	// sampled into every hello so the collector can estimate this
	// input's clock offset and rebase shipped lines onto its own time
	// axis. nil (with Ship set) ships lines without offset normalization.
	Journal *obs.Journal
}

func (c *EmitterConfig) defaults() {
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Retry.Max == 0 {
		c.Retry.Max = 10
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WelcomeTimeout <= 0 {
		c.WelcomeTimeout = 10 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 15 * time.Second
	}
	if c.MaxUnacked <= 0 {
		c.MaxUnacked = 1 << 16
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 2 * time.Second
	}
}

// Emitter ships one input's event stream to the collector, exactly once
// in order from the collector's point of view, across any number of
// connection losses. Feed it through Intake (a stream.Producer pointed at
// that channel works unchanged), close the channel after the trailer, and
// Run returns once everything fed has been acknowledged.
type Emitter struct {
	cfg       EmitterConfig
	intake    chan stream.Batch
	stop      chan struct{}
	stopOnce  sync.Once
	drained   chan struct{}
	drainOnce sync.Once

	// jAckedPub mirrors the journal ack watermark for the GaugeFunc
	// below. Exposition-only (like all GaugeFuncs) because its value at
	// snapshot time depends on how many wall-clock-driven lines
	// (heartbeats) happened to be acked — it must stay out of the
	// deterministic metrics snapshot.
	jAckedPub atomic.Uint64

	mReconnects *obs.Counter
	mUnacked    *obs.Gauge
	mAcked      *obs.Gauge
	hEncode     *obs.Histogram
	hDecode     *obs.Histogram
	hAckRTT     *obs.Histogram
}

// NewEmitter builds an emitter; Run does the work.
func NewEmitter(cfg EmitterConfig) *Emitter {
	cfg.defaults()
	e := &Emitter{cfg: cfg, intake: make(chan stream.Batch, 4), stop: make(chan struct{}), drained: make(chan struct{})}
	l := obs.L("input", strconv.Itoa(cfg.Input))
	e.mReconnects = cfg.Obs.Counter("emitter_reconnects_total", "successful collector connections beyond the first", l)
	e.mUnacked = cfg.Obs.Gauge("emitter_unacked_events", "events in the retransmit buffer awaiting a cumulative ack", l)
	e.mAcked = cfg.Obs.Gauge("emitter_acked_seq", "highest cumulative ack received from the collector", l)
	if cfg.Ship != nil {
		cfg.Obs.GaugeFunc("emitter_journal_acked_seq", "highest cumulative journal-line ack received from the collector", func() float64 {
			return float64(e.jAckedPub.Load())
		}, l)
	}
	// Wall-clock histograms: exposition-only (excluded from journal
	// metrics snapshots — see obs.Registry.WallHistogram), surfaced in
	// Prometheus text and the journal's latency line.
	e.hEncode = cfg.Obs.Reg().WallHistogram("ingest_frame_encode_seconds", "gob encode time per outbound frame", latencyBuckets(), l)
	e.hDecode = cfg.Obs.Reg().WallHistogram("ingest_frame_decode_seconds", "gob decode time per inbound frame", latencyBuckets(), l)
	e.hAckRTT = cfg.Obs.Reg().WallHistogram("ingest_ack_rtt_seconds", "data-frame send to covering cumulative ack", latencyBuckets(), l)
	return e
}

// EventsDrained returns a channel closed once the intake has been
// closed and every fed event acknowledged by the collector. With
// journal shipping this is the deterministic point to write the final
// journal lines (metrics snapshot, latency rollup) before closing the
// ship: the emitter's own acked/unacked gauges have reached their final
// values, and Run is still pumping so the trailing lines ship too.
func (e *Emitter) EventsDrained() <-chan struct{} { return e.drained }

// Stop aborts Run immediately — nothing is flushed, exactly like the
// process dying. Unacked events stay unacked; a restarted emitter (or
// the collector's eviction) picks up from there. Idempotent.
func (e *Emitter) Stop() { e.stopOnce.Do(func() { close(e.stop) }) }

// Intake is the channel to feed events into, shaped exactly like a
// merger intake so stream.NewProducer(0, e.Intake()) plugs in directly
// (the batch's Input field is ignored — the hello frame binds the input).
// Close it when the stream is complete; Run returns after the final ack.
func (e *Emitter) Intake() chan<- stream.Batch { return e.intake }

// pendingEv is one unacknowledged event awaiting its cumulative ack.
type pendingEv struct {
	seq uint64
	ev  stream.Event
}

// pendingLine is one unacknowledged shipped journal line.
type pendingLine struct {
	seq  uint64
	line []byte
}

// rttMark remembers when the data frame ending at seq was written, so
// the covering cumulative ack can be timed.
type rttMark struct {
	seq uint64
	at  time.Time
}

// ackMsg is what the per-connection reader goroutine reports: an ack seq
// (journal marks the journal sequence space) or the read error that
// ended the connection.
type ackMsg struct {
	seq     uint64
	journal bool
	err     error
}

// Run pumps the intake (and, with a Ship, the process's journal lines)
// to the collector until everything is acked or the retry budget dies.
// Safe to call exactly once.
func (e *Emitter) Run() error {
	var (
		conn     net.Conn
		acks     chan ackMsg
		connDone chan struct{}

		unacked  []pendingEv
		nextSeq  uint64 = 1
		ackedSeq uint64
		inflight []rttMark

		// Journal shipping state. Lines from the ship queue un-numbered
		// in jQueued until the first welcome reveals JournalResume —
		// that is where this process's numbering starts, so a restarted
		// emitter's lane continues after its previous life's acked
		// prefix instead of colliding with it.
		jQueued    [][]byte
		jUnacked   []pendingLine
		jNext      uint64
		jNumbered  bool
		jAcked     uint64
		shipClosed bool

		intakeCh     = e.intake
		intakeClosed bool
		lastProgress time.Time
		lastSend     time.Time
		connects     int
	)
	var shipCh <-chan struct{}
	if e.cfg.Ship != nil {
		shipCh = e.cfg.Ship.Ready()
	}
	// finished reports whether Run may return: events drained (closing
	// the EventsDrained latch on the way) and, when shipping, the
	// journal drained too. The EventsDrained signal is what lets the
	// process write its final journal lines between the last event ack
	// and the ship's close.
	finished := func() bool {
		if !intakeClosed || len(unacked) != 0 {
			return false
		}
		e.drainOnce.Do(func() { close(e.drained) })
		if e.cfg.Ship == nil {
			return true
		}
		return shipClosed && len(jQueued) == 0 && len(jUnacked) == 0
	}
	// flushQueued numbers queued journal lines and sends them. Only
	// callable once numbered (first welcome seen).
	flushQueued := func(c net.Conn) error {
		if !jNumbered || len(jQueued) == 0 {
			return nil
		}
		start := len(jUnacked)
		for _, line := range jQueued {
			jUnacked = append(jUnacked, pendingLine{seq: jNext, line: line})
			jNext++
		}
		jQueued = nil
		return e.sendJournal(c, jUnacked[start:])
	}
	tick := e.cfg.AckTimeout / 4
	if k := e.cfg.KeepAlive / 2; k < tick {
		tick = k
	}
	if tick <= 0 {
		tick = time.Second
	}
	var rng *rand.Rand
	if e.cfg.Retry.Seed != 0 {
		rng = rand.New(rand.NewPCG(e.cfg.Retry.Seed, 0x1d9e57))
	}
	teardown := func() {
		if conn != nil {
			close(connDone)
			conn.Close()
			conn = nil
			inflight = nil // retransmits restart the RTT clock
		}
	}
	defer teardown()
	// Once Run has returned nobody drains the intake, so a producer still
	// mid-stream would block forever on a dead emitter. Discarding is
	// correct on every exit path: clean return means the channel is
	// already closed and empty, and on error or Stop the events have
	// nowhere to go anyway.
	defer func() {
		go func() {
			for range e.intake {
			}
		}()
	}()

	for {
		if finished() {
			return nil
		}
		if conn == nil {
			c, welcome, err := e.connect(rng)
			if errors.Is(err, errStopped) {
				return nil
			}
			if err != nil {
				return err
			}
			connects++
			if connects > 1 {
				e.mReconnects.Inc()
			}
			if welcome.Resume > ackedSeq {
				ackedSeq = welcome.Resume
				unacked = dropAcked(unacked, ackedSeq)
				e.mAcked.SetInt(int64(ackedSeq))
				e.mUnacked.SetInt(int64(len(unacked)))
			}
			if e.cfg.Ship != nil {
				if !jNumbered {
					jNext = welcome.JournalResume + 1
					jNumbered = true
				}
				if welcome.JournalResume > jAcked {
					jAcked = welcome.JournalResume
					jUnacked = dropAckedLines(jUnacked, jAcked)
					e.jAckedPub.Store(jAcked)
				}
			}
			if finished() {
				c.Close()
				return nil
			}
			if err := e.send(c, unacked); err != nil {
				c.Close()
				continue
			}
			if err := e.sendJournal(c, jUnacked); err != nil {
				c.Close()
				continue
			}
			if err := flushQueued(c); err != nil {
				c.Close()
				continue
			}
			acks = make(chan ackMsg, 64)
			connDone = make(chan struct{})
			go readAcks(c, acks, connDone, e.hDecode)
			conn = c
			lastProgress = time.Now()
			lastSend = time.Now()
		}

		in := intakeCh
		if len(unacked) >= e.cfg.MaxUnacked {
			in = nil // backpressure: stall the producer until acks drain
		}
		select {
		case <-e.stop:
			return nil
		case b, ok := <-in:
			if !ok {
				intakeClosed = true
				intakeCh = nil
				continue
			}
			fresh := unacked[len(unacked):]
			for _, ev := range b.Events {
				seq := nextSeq
				nextSeq++
				if seq <= ackedSeq {
					// Restart resume: the collector already applied this
					// regenerated event in a previous life.
					continue
				}
				fresh = append(fresh, pendingEv{seq: seq, ev: ev})
			}
			unacked = append(unacked, fresh...)
			e.mUnacked.SetInt(int64(len(unacked)))
			if len(fresh) > 0 {
				if err := e.send(conn, fresh); err != nil {
					teardown()
				} else {
					inflight = append(inflight, rttMark{seq: fresh[len(fresh)-1].seq, at: time.Now()})
					lastSend = time.Now()
				}
			}
		case <-shipCh:
			lines, closed := e.cfg.Ship.Take()
			jQueued = append(jQueued, lines...)
			if closed && !shipClosed {
				shipClosed = true
				// End-of-journal sentinel: a zero-length line occupying
				// the next seq, so "this lane is complete" rides the same
				// at-least-once-send / exactly-once-apply machinery as the
				// lines themselves. The collector lingers after the merge
				// until every shipping input's sentinel has been applied
				// (JournalShip never emits an empty line, so the sentinel
				// is unambiguous).
				jQueued = append(jQueued, []byte{})
			}
			if conn != nil {
				if err := flushQueued(conn); err != nil {
					teardown()
				} else if jNumbered {
					lastSend = time.Now()
				}
			}
		case a := <-acks:
			if a.err != nil {
				teardown()
				continue
			}
			if a.journal {
				if a.seq > jAcked {
					jAcked = a.seq
					jUnacked = dropAckedLines(jUnacked, jAcked)
					lastProgress = time.Now()
					e.jAckedPub.Store(jAcked)
				}
				continue
			}
			if a.seq > ackedSeq {
				ackedSeq = a.seq
				unacked = dropAcked(unacked, ackedSeq)
				lastProgress = time.Now()
				for len(inflight) > 0 && inflight[0].seq <= a.seq {
					e.hAckRTT.Observe(time.Since(inflight[0].at).Seconds())
					inflight = inflight[1:]
				}
				e.mAcked.SetInt(int64(ackedSeq))
				e.mUnacked.SetInt(int64(len(unacked)))
			}
		case <-time.After(tick):
			if (len(unacked) > 0 || len(jUnacked) > 0) && time.Since(lastProgress) > e.cfg.AckTimeout {
				// Outstanding events or journal lines, no ack progress:
				// the connection is wedged (or a fault ate the frames).
				// Start over.
				teardown()
				continue
			}
			if conn != nil && time.Since(lastSend) > e.cfg.KeepAlive {
				// Idle keepalive: an empty data frame, so the collector's
				// liveness layer can tell quiet from dead.
				_ = conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
				ka := &frame{Kind: frameData, Data: &dataFrame{FirstSeq: nextSeq}}
				if err := writeFrame(conn, ka, e.hEncode); err != nil {
					teardown()
				} else {
					_ = conn.SetWriteDeadline(time.Time{})
					lastSend = time.Now()
				}
			}
		}
	}
}

// connect dials and handshakes on the Retry schedule, returning the
// established connection and its welcome.
func (e *Emitter) connect(rng *rand.Rand) (net.Conn, *welcomeFrame, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var c net.Conn
		c, err = e.cfg.Dial(e.cfg.Addr, e.cfg.DialTimeout)
		if err == nil {
			var w *welcomeFrame
			w, err = e.handshake(c)
			if err == nil {
				return c, w, nil
			}
			c.Close()
			if errors.Is(err, ErrEvicted) {
				return nil, nil, err
			}
		}
		if attempt >= e.cfg.Retry.Max {
			return nil, nil, fmt.Errorf("ingest: connect %s: %w", e.cfg.Addr, err)
		}
		select {
		case <-time.After(e.cfg.Retry.Backoff(attempt, rng)):
		case <-e.stop:
			return nil, nil, errStopped
		}
	}
}

func (e *Emitter) handshake(c net.Conn) (*welcomeFrame, error) {
	_ = c.SetDeadline(time.Now().Add(e.cfg.WelcomeTimeout))
	defer c.SetDeadline(time.Time{})
	// JournalTMs carries the emitter's journal clock at hello time — the
	// collector's half of the clock-offset estimate. Negative = not
	// shipping.
	jtms := -1.0
	if e.cfg.Ship != nil {
		jtms = e.cfg.Journal.Now()
	}
	hello := &frame{Kind: frameHello, Hello: &helloFrame{
		Proto:      protoVersion,
		Input:      e.cfg.Input,
		Source:     e.cfg.Source,
		JournalTMs: jtms,
	}}
	if err := writeFrame(c, hello, e.hEncode); err != nil {
		return nil, err
	}
	f, err := readFrame(c, e.hDecode)
	if err != nil {
		return nil, err
	}
	if f.Kind != frameWelcome || f.Welcome == nil {
		return nil, fmt.Errorf("ingest: expected welcome, got frame kind %d", f.Kind)
	}
	if f.Welcome.Evicted {
		return nil, ErrEvicted
	}
	return f.Welcome, nil
}

// send writes events as data frames of at most maxFrameEvents, each a
// single deadline-bounded Write. Events must be seq-contiguous, which
// every caller's slice is: seqs are assigned consecutively and only an
// already-acked prefix is ever removed.
func (e *Emitter) send(c net.Conn, evs []pendingEv) error {
	for len(evs) > 0 {
		n := len(evs)
		if n > maxFrameEvents {
			n = maxFrameEvents
		}
		chunk := evs[:n]
		evs = evs[n:]
		df := &dataFrame{FirstSeq: chunk[0].seq, Events: make([]stream.Event, n)}
		for i, pe := range chunk {
			df.Events[i] = pe.ev
		}
		_ = c.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		if err := writeFrame(c, &frame{Kind: frameData, Data: df}, e.hEncode); err != nil {
			return err
		}
	}
	_ = c.SetWriteDeadline(time.Time{})
	return nil
}

// sendJournal writes journal lines as journal frames of at most
// maxFrameEvents lines each, mirroring send's contiguity contract in
// the journal sequence space.
func (e *Emitter) sendJournal(c net.Conn, pls []pendingLine) error {
	for len(pls) > 0 {
		n := len(pls)
		if n > maxFrameEvents {
			n = maxFrameEvents
		}
		chunk := pls[:n]
		pls = pls[n:]
		jf := &journalFrame{FirstSeq: chunk[0].seq, Lines: make([][]byte, n)}
		for i, pl := range chunk {
			jf.Lines[i] = pl.line
		}
		_ = c.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		if err := writeFrame(c, &frame{Kind: frameJournal, Journal: jf}, e.hEncode); err != nil {
			return err
		}
	}
	_ = c.SetWriteDeadline(time.Time{})
	return nil
}

// readAcks is the per-connection reader: it forwards event and journal
// ack seqs until the connection dies, then reports the error and exits.
// connDone unblocks it when the main loop has already moved on to a new
// connection.
func readAcks(c net.Conn, out chan<- ackMsg, connDone <-chan struct{}, dec *obs.Histogram) {
	for {
		f, err := readFrame(c, dec)
		var msg ackMsg
		switch {
		case err != nil:
			msg = ackMsg{err: err}
		case f.Kind == frameAck && f.Ack != nil:
			msg = ackMsg{seq: f.Ack.Seq}
		case f.Kind == frameJournalAck && f.JAck != nil:
			msg = ackMsg{seq: f.JAck.Seq, journal: true}
		default:
			// A duplicated welcome or other stray frame: ignore.
			continue
		}
		select {
		case out <- msg:
		case <-connDone:
			return
		}
		if msg.err != nil {
			return
		}
	}
}

// dropAcked removes the acknowledged prefix.
func dropAcked(unacked []pendingEv, acked uint64) []pendingEv {
	i := 0
	for i < len(unacked) && unacked[i].seq <= acked {
		i++
	}
	if i == 0 {
		return unacked
	}
	return append(unacked[:0:0], unacked[i:]...)
}

// dropAckedLines removes the acknowledged journal-line prefix.
func dropAckedLines(unacked []pendingLine, acked uint64) []pendingLine {
	i := 0
	for i < len(unacked) && unacked[i].seq <= acked {
		i++
	}
	if i == 0 {
		return unacked
	}
	return append(unacked[:0:0], unacked[i:]...)
}
