package ingest

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/transport"
)

// ErrEvicted is returned by Emitter.Run when the collector reports the
// input already evicted: the merge has moved on without this vantage and
// re-admission is impossible, so the emitter must stop rather than retry.
var ErrEvicted = errors.New("ingest: input evicted by collector")

// errStopped aborts connect's backoff sleep when Stop is called.
var errStopped = errors.New("ingest: emitter stopped")

// EmitterConfig configures one vantage's emitter.
type EmitterConfig struct {
	// Addr is the collector's address.
	Addr string
	// Input is this vantage's merger input index.
	Input int

	// Dial overrides the dialer (fault injection, tests). Default is
	// net.DialTimeout over TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds one connect attempt (default 5 s).
	DialTimeout time.Duration
	// Retry paces reconnects: Max attempts per outage on the
	// exponential-backoff-with-full-jitter schedule (default Max 10,
	// transport defaults for Base/Cap). Run fails when one outage
	// outlives the budget.
	Retry transport.Retry

	// WriteTimeout bounds every frame write (default 10 s) — a peer
	// reading slowly cannot wedge the emitter, it gets a torn connection
	// and a retransmit instead.
	WriteTimeout time.Duration
	// WelcomeTimeout bounds the hello/welcome exchange (default 10 s).
	WelcomeTimeout time.Duration
	// AckTimeout declares the connection wedged when events are
	// outstanding and no ack progress arrives for this long (default
	// 15 s); the emitter reconnects and retransmits. This is what
	// recovers from faults that swallow frames without killing the
	// connection.
	AckTimeout time.Duration
	// MaxUnacked bounds the retransmit buffer in events (default 1<<16).
	// At the bound the emitter stops draining its intake — backpressure
	// propagates to the producer, exactly like a full merger intake does
	// in-process.
	MaxUnacked int
	// KeepAlive is how often an idle emitter sends an empty data frame
	// (default 2 s). The collector counts any valid frame as liveness, so
	// the keepalive is what distinguishes a healthy vantage with nothing
	// to say from a dead one. Keep it well under the collector's
	// EvictAfter.
	KeepAlive time.Duration

	// Obs attaches the observability layer: reconnect counts, the acked
	// watermark and the retransmit-buffer depth, all labeled by input.
	// nil runs uninstrumented.
	Obs *obs.Observer
}

func (c *EmitterConfig) defaults() {
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Retry.Max == 0 {
		c.Retry.Max = 10
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WelcomeTimeout <= 0 {
		c.WelcomeTimeout = 10 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 15 * time.Second
	}
	if c.MaxUnacked <= 0 {
		c.MaxUnacked = 1 << 16
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 2 * time.Second
	}
}

// Emitter ships one input's event stream to the collector, exactly once
// in order from the collector's point of view, across any number of
// connection losses. Feed it through Intake (a stream.Producer pointed at
// that channel works unchanged), close the channel after the trailer, and
// Run returns once everything fed has been acknowledged.
type Emitter struct {
	cfg      EmitterConfig
	intake   chan stream.Batch
	stop     chan struct{}
	stopOnce sync.Once

	mReconnects *obs.Counter
	mUnacked    *obs.Gauge
	mAcked      *obs.Gauge
}

// NewEmitter builds an emitter; Run does the work.
func NewEmitter(cfg EmitterConfig) *Emitter {
	cfg.defaults()
	e := &Emitter{cfg: cfg, intake: make(chan stream.Batch, 4), stop: make(chan struct{})}
	l := obs.L("input", strconv.Itoa(cfg.Input))
	e.mReconnects = cfg.Obs.Counter("emitter_reconnects_total", "successful collector connections beyond the first", l)
	e.mUnacked = cfg.Obs.Gauge("emitter_unacked_events", "events in the retransmit buffer awaiting a cumulative ack", l)
	e.mAcked = cfg.Obs.Gauge("emitter_acked_seq", "highest cumulative ack received from the collector", l)
	return e
}

// Stop aborts Run immediately — nothing is flushed, exactly like the
// process dying. Unacked events stay unacked; a restarted emitter (or
// the collector's eviction) picks up from there. Idempotent.
func (e *Emitter) Stop() { e.stopOnce.Do(func() { close(e.stop) }) }

// Intake is the channel to feed events into, shaped exactly like a
// merger intake so stream.NewProducer(0, e.Intake()) plugs in directly
// (the batch's Input field is ignored — the hello frame binds the input).
// Close it when the stream is complete; Run returns after the final ack.
func (e *Emitter) Intake() chan<- stream.Batch { return e.intake }

// pendingEv is one unacknowledged event awaiting its cumulative ack.
type pendingEv struct {
	seq uint64
	ev  stream.Event
}

// ackMsg is what the per-connection reader goroutine reports: an ack seq
// or the read error that ended the connection.
type ackMsg struct {
	seq uint64
	err error
}

// Run pumps the intake to the collector until everything is acked or the
// retry budget dies. Safe to call exactly once.
func (e *Emitter) Run() error {
	var (
		conn     net.Conn
		acks     chan ackMsg
		connDone chan struct{}

		unacked  []pendingEv
		nextSeq  uint64 = 1
		ackedSeq uint64

		intakeCh     = e.intake
		intakeClosed bool
		lastProgress time.Time
		lastSend     time.Time
		connects     int
	)
	tick := e.cfg.AckTimeout / 4
	if k := e.cfg.KeepAlive / 2; k < tick {
		tick = k
	}
	if tick <= 0 {
		tick = time.Second
	}
	var rng *rand.Rand
	if e.cfg.Retry.Seed != 0 {
		rng = rand.New(rand.NewPCG(e.cfg.Retry.Seed, 0x1d9e57))
	}
	teardown := func() {
		if conn != nil {
			close(connDone)
			conn.Close()
			conn = nil
		}
	}
	defer teardown()
	// Once Run has returned nobody drains the intake, so a producer still
	// mid-stream would block forever on a dead emitter. Discarding is
	// correct on every exit path: clean return means the channel is
	// already closed and empty, and on error or Stop the events have
	// nowhere to go anyway.
	defer func() {
		go func() {
			for range e.intake {
			}
		}()
	}()

	for {
		if intakeClosed && len(unacked) == 0 {
			return nil
		}
		if conn == nil {
			c, welcome, err := e.connect(rng)
			if errors.Is(err, errStopped) {
				return nil
			}
			if err != nil {
				return err
			}
			connects++
			if connects > 1 {
				e.mReconnects.Inc()
			}
			if welcome.Resume > ackedSeq {
				ackedSeq = welcome.Resume
				unacked = dropAcked(unacked, ackedSeq)
				e.mAcked.SetInt(int64(ackedSeq))
				e.mUnacked.SetInt(int64(len(unacked)))
			}
			if intakeClosed && len(unacked) == 0 {
				c.Close()
				return nil
			}
			if err := e.send(c, unacked); err != nil {
				c.Close()
				continue
			}
			acks = make(chan ackMsg, 64)
			connDone = make(chan struct{})
			go readAcks(c, acks, connDone)
			conn = c
			lastProgress = time.Now()
			lastSend = time.Now()
		}

		in := intakeCh
		if len(unacked) >= e.cfg.MaxUnacked {
			in = nil // backpressure: stall the producer until acks drain
		}
		select {
		case <-e.stop:
			return nil
		case b, ok := <-in:
			if !ok {
				intakeClosed = true
				intakeCh = nil
				continue
			}
			fresh := unacked[len(unacked):]
			for _, ev := range b.Events {
				seq := nextSeq
				nextSeq++
				if seq <= ackedSeq {
					// Restart resume: the collector already applied this
					// regenerated event in a previous life.
					continue
				}
				fresh = append(fresh, pendingEv{seq: seq, ev: ev})
			}
			unacked = append(unacked, fresh...)
			e.mUnacked.SetInt(int64(len(unacked)))
			if len(fresh) > 0 {
				if err := e.send(conn, fresh); err != nil {
					teardown()
				} else {
					lastSend = time.Now()
				}
			}
		case a := <-acks:
			if a.err != nil {
				teardown()
				continue
			}
			if a.seq > ackedSeq {
				ackedSeq = a.seq
				unacked = dropAcked(unacked, ackedSeq)
				lastProgress = time.Now()
				e.mAcked.SetInt(int64(ackedSeq))
				e.mUnacked.SetInt(int64(len(unacked)))
			}
		case <-time.After(tick):
			if len(unacked) > 0 && time.Since(lastProgress) > e.cfg.AckTimeout {
				// Outstanding events, no ack progress: the connection is
				// wedged (or a fault ate the frames). Start over.
				teardown()
				continue
			}
			if conn != nil && time.Since(lastSend) > e.cfg.KeepAlive {
				// Idle keepalive: an empty data frame, so the collector's
				// liveness layer can tell quiet from dead.
				_ = conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
				ka := &frame{Kind: frameData, Data: &dataFrame{FirstSeq: nextSeq}}
				if err := writeFrame(conn, ka); err != nil {
					teardown()
				} else {
					_ = conn.SetWriteDeadline(time.Time{})
					lastSend = time.Now()
				}
			}
		}
	}
}

// connect dials and handshakes on the Retry schedule, returning the
// established connection and its welcome.
func (e *Emitter) connect(rng *rand.Rand) (net.Conn, *welcomeFrame, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var c net.Conn
		c, err = e.cfg.Dial(e.cfg.Addr, e.cfg.DialTimeout)
		if err == nil {
			var w *welcomeFrame
			w, err = e.handshake(c)
			if err == nil {
				return c, w, nil
			}
			c.Close()
			if errors.Is(err, ErrEvicted) {
				return nil, nil, err
			}
		}
		if attempt >= e.cfg.Retry.Max {
			return nil, nil, fmt.Errorf("ingest: connect %s: %w", e.cfg.Addr, err)
		}
		select {
		case <-time.After(e.cfg.Retry.Backoff(attempt, rng)):
		case <-e.stop:
			return nil, nil, errStopped
		}
	}
}

func (e *Emitter) handshake(c net.Conn) (*welcomeFrame, error) {
	_ = c.SetDeadline(time.Now().Add(e.cfg.WelcomeTimeout))
	defer c.SetDeadline(time.Time{})
	hello := &frame{Kind: frameHello, Hello: &helloFrame{Proto: protoVersion, Input: e.cfg.Input}}
	if err := writeFrame(c, hello); err != nil {
		return nil, err
	}
	f, err := readFrame(c)
	if err != nil {
		return nil, err
	}
	if f.Kind != frameWelcome || f.Welcome == nil {
		return nil, fmt.Errorf("ingest: expected welcome, got frame kind %d", f.Kind)
	}
	if f.Welcome.Evicted {
		return nil, ErrEvicted
	}
	return f.Welcome, nil
}

// send writes events as data frames of at most maxFrameEvents, each a
// single deadline-bounded Write. Events must be seq-contiguous, which
// every caller's slice is: seqs are assigned consecutively and only an
// already-acked prefix is ever removed.
func (e *Emitter) send(c net.Conn, evs []pendingEv) error {
	for len(evs) > 0 {
		n := len(evs)
		if n > maxFrameEvents {
			n = maxFrameEvents
		}
		chunk := evs[:n]
		evs = evs[n:]
		df := &dataFrame{FirstSeq: chunk[0].seq, Events: make([]stream.Event, n)}
		for i, pe := range chunk {
			df.Events[i] = pe.ev
		}
		_ = c.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		if err := writeFrame(c, &frame{Kind: frameData, Data: df}); err != nil {
			return err
		}
	}
	_ = c.SetWriteDeadline(time.Time{})
	return nil
}

// readAcks is the per-connection reader: it forwards ack seqs until the
// connection dies, then reports the error and exits. connDone unblocks it
// when the main loop has already moved on to a new connection.
func readAcks(c net.Conn, out chan<- ackMsg, connDone <-chan struct{}) {
	for {
		f, err := readFrame(c)
		var msg ackMsg
		switch {
		case err != nil:
			msg = ackMsg{err: err}
		case f.Kind == frameAck && f.Ack != nil:
			msg = ackMsg{seq: f.Ack.Seq}
		default:
			// A duplicated welcome or other stray frame: ignore.
			continue
		}
		select {
		case out <- msg:
		case <-connDone:
			return
		}
		if msg.err != nil {
			return
		}
	}
}

// dropAcked removes the acknowledged prefix.
func dropAcked(unacked []pendingEv, acked uint64) []pendingEv {
	i := 0
	for i < len(unacked) && unacked[i].seq <= acked {
		i++
	}
	if i == 0 {
		return unacked
	}
	return append(unacked[:0:0], unacked[i:]...)
}
