package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/guid"
	"repro/internal/wire"
)

var guids = guid.NewSource(3, 4)

// pair establishes a connected client/server peer pair over loopback TCP.
func pair(t *testing.T) (client, server *Peer) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", Options{UserAgent: "Server/1.0", Ultrapeer: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	var wg sync.WaitGroup
	var srv *Peer
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = l.Accept()
	}()
	cli, err := Dial(l.Addr().String(), Options{UserAgent: "Client/2.0"})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func TestHandshakeInfoExchanged(t *testing.T) {
	cli, srv := pair(t)
	if cli.Info().UserAgent != "Server/1.0" || !cli.Info().Ultrapeer {
		t.Errorf("client sees %+v", cli.Info())
	}
	if srv.Info().UserAgent != "Client/2.0" || srv.Info().Ultrapeer {
		t.Errorf("server sees %+v", srv.Info())
	}
}

func TestMessagesFlowBothWays(t *testing.T) {
	cli, srv := pair(t)
	q := &wire.Query{SearchText: "over tcp"}
	if err := cli.Send(wire.NewEnvelope(guids.Next(), 5, q)); err != nil {
		t.Fatal(err)
	}
	env, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := env.Payload.(*wire.Query)
	if got.SearchText != "over tcp" {
		t.Fatalf("query text %q", got.SearchText)
	}
	// Reply with a pong.
	pong := &wire.Pong{Port: 6346, SharedFiles: 7}
	if err := srv.Send(wire.NewEnvelope(env.Header.GUID, 5, pong)); err != nil {
		t.Fatal(err)
	}
	back, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if back.Payload.(*wire.Pong).SharedFiles != 7 {
		t.Fatal("pong payload mismatch")
	}
}

func TestManyMessagesPipelined(t *testing.T) {
	cli, srv := pair(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "pipelined"}))
		}
	}()
	for i := 0; i < n; i++ {
		env, err := srv.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if env.Header.Type != wire.TypeQuery {
			t.Fatalf("message %d type %v", i, env.Header.Type)
		}
	}
}

func TestRecvAfterClose(t *testing.T) {
	cli, srv := pair(t)
	cli.Close()
	if _, err := srv.Recv(); err == nil {
		t.Fatal("expected error after peer close")
	}
}

func TestRecvDeadline(t *testing.T) {
	_, srv := pair(t)
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, err := srv.Recv()
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestEnvelopeSurvivesParserReuse(t *testing.T) {
	cli, srv := pair(t)
	cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "first"}))
	cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "second"}))
	a, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if a.Payload.(*wire.Query).SearchText != "first" ||
		b.Payload.(*wire.Query).SearchText != "second" {
		t.Fatal("Recv must deep-copy envelopes")
	}
}

func TestDialRefusedAddress(t *testing.T) {
	// A listener that closes immediately: dial should fail cleanly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		conn, err := l.Accept()
		if err == nil {
			conn.Close()
		}
		l.Close()
	}()
	if _, err := Dial(addr, Options{HandshakeTimeout: time.Second}); err == nil {
		t.Fatal("expected handshake failure")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(conn, "GET / HTTP/1.1\r\n\r\n")
	conn.Close()
	if err := <-done; err == nil {
		t.Fatal("expected handshake rejection")
	}
}

// TestDialRetryFlakyListener: a listener that kills the first k
// connections before the handshake completes. A plain Dial fails; a Dial
// with a Retry budget ≥ k rides out the flakiness and lands a working
// peer.
func TestDialRetryFlakyListener(t *testing.T) {
	const flaky = 3
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	attempts := make(chan int, 16)
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			attempts <- i
			if i < flaky {
				conn.Close()
				continue
			}
			go func() {
				srv, err := Server(conn, Options{UserAgent: "Flaky/1.0", Ultrapeer: true})
				if err == nil {
					defer srv.Close()
					// Hold the conn until the client is done with it.
					_, _ = srv.Recv()
				}
			}()
		}
	}()

	if _, err := Dial(l.Addr().String(), Options{UserAgent: "C/1"}); err == nil {
		t.Fatal("retry-less Dial succeeded against a flaky first attempt")
	}
	peer, err := Dial(l.Addr().String(), Options{
		UserAgent: "C/1",
		Retry:     Retry{Max: flaky + 1, Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatalf("Dial with retries: %v", err)
	}
	defer peer.Close()
	if got := peer.Info().UserAgent; got != "Flaky/1.0" {
		t.Fatalf("handshake with %q, want the flaky server", got)
	}
}

// TestRetryBackoffSchedule pins the schedule's shape: jittered in
// (0, base·2^k], capped, deterministic under a fixed seed, and safe far
// past shift overflow.
func TestRetryBackoffSchedule(t *testing.T) {
	r := Retry{Max: 10, Base: 100 * time.Millisecond, Cap: time.Second, Seed: 7}
	rng := r.rng()
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 80; attempt++ {
		d := r.Backoff(attempt, rng)
		ceil := r.Base << uint(attempt)
		if ceil <= 0 || ceil > r.Cap {
			ceil = r.Cap
		}
		if d < 0 || d > ceil {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("attempt %d: ceiling shrank", attempt)
		}
		prevCeil = ceil
	}
	// Same seed, same schedule.
	a := Retry{Seed: 42}
	b := Retry{Seed: 42}
	for i := 0; i < 5; i++ {
		if x, y := a.Backoff(i, a.rng()), b.Backoff(i, b.rng()); x != y {
			t.Fatalf("seeded schedules diverge at %d: %v vs %v", i, x, y)
		}
	}
}

// TestAcceptBackoffClassification pins the accept loop's error taxonomy:
// per-peer handshake failures retry immediately, temporary listener
// errors back off with a capped doubling delay, and permanent errors
// (closed listener) stop the loop.
func TestAcceptBackoffClassification(t *testing.T) {
	var b AcceptBackoff
	if d, retry := b.Next(errPeerRejectedWrapped()); !retry || d != 0 {
		t.Fatalf("peer rejection: delay=%v retry=%v, want immediate retry", d, retry)
	}
	if _, retry := b.Next(net.ErrClosed); retry {
		t.Fatal("closed listener classified as retryable")
	}
	if _, retry := b.Next(errors.New("unknown listener failure")); retry {
		t.Fatal("unknown error classified as retryable")
	}
	prev := time.Duration(0)
	for i := 0; i < 12; i++ {
		d, retry := b.Next(timeoutErr{})
		if !retry {
			t.Fatal("timeout classified as permanent")
		}
		if d < prev {
			t.Fatalf("backoff shrank: %v after %v", d, prev)
		}
		if d > time.Second {
			t.Fatalf("backoff exceeded cap: %v", d)
		}
		prev = d
	}
	b.Reset()
	if d, _ := b.Next(timeoutErr{}); d > 10*time.Millisecond {
		t.Fatalf("Reset did not clear the delay: next backoff %v", d)
	}
}

func errPeerRejectedWrapped() error {
	return &net.OpError{Op: "accept", Err: ErrPeerRejected}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
