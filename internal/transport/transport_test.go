package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/guid"
	"repro/internal/wire"
)

var guids = guid.NewSource(3, 4)

// pair establishes a connected client/server peer pair over loopback TCP.
func pair(t *testing.T) (client, server *Peer) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", Options{UserAgent: "Server/1.0", Ultrapeer: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	var wg sync.WaitGroup
	var srv *Peer
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = l.Accept()
	}()
	cli, err := Dial(l.Addr().String(), Options{UserAgent: "Client/2.0"})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func TestHandshakeInfoExchanged(t *testing.T) {
	cli, srv := pair(t)
	if cli.Info().UserAgent != "Server/1.0" || !cli.Info().Ultrapeer {
		t.Errorf("client sees %+v", cli.Info())
	}
	if srv.Info().UserAgent != "Client/2.0" || srv.Info().Ultrapeer {
		t.Errorf("server sees %+v", srv.Info())
	}
}

func TestMessagesFlowBothWays(t *testing.T) {
	cli, srv := pair(t)
	q := &wire.Query{SearchText: "over tcp"}
	if err := cli.Send(wire.NewEnvelope(guids.Next(), 5, q)); err != nil {
		t.Fatal(err)
	}
	env, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := env.Payload.(*wire.Query)
	if got.SearchText != "over tcp" {
		t.Fatalf("query text %q", got.SearchText)
	}
	// Reply with a pong.
	pong := &wire.Pong{Port: 6346, SharedFiles: 7}
	if err := srv.Send(wire.NewEnvelope(env.Header.GUID, 5, pong)); err != nil {
		t.Fatal(err)
	}
	back, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if back.Payload.(*wire.Pong).SharedFiles != 7 {
		t.Fatal("pong payload mismatch")
	}
}

func TestManyMessagesPipelined(t *testing.T) {
	cli, srv := pair(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "pipelined"}))
		}
	}()
	for i := 0; i < n; i++ {
		env, err := srv.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if env.Header.Type != wire.TypeQuery {
			t.Fatalf("message %d type %v", i, env.Header.Type)
		}
	}
}

func TestRecvAfterClose(t *testing.T) {
	cli, srv := pair(t)
	cli.Close()
	if _, err := srv.Recv(); err == nil {
		t.Fatal("expected error after peer close")
	}
}

func TestRecvDeadline(t *testing.T) {
	_, srv := pair(t)
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, err := srv.Recv()
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestEnvelopeSurvivesParserReuse(t *testing.T) {
	cli, srv := pair(t)
	cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "first"}))
	cli.Send(wire.NewEnvelope(guids.Next(), 3, &wire.Query{SearchText: "second"}))
	a, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if a.Payload.(*wire.Query).SearchText != "first" ||
		b.Payload.(*wire.Query).SearchText != "second" {
		t.Fatal("Recv must deep-copy envelopes")
	}
}

func TestDialRefusedAddress(t *testing.T) {
	// A listener that closes immediately: dial should fail cleanly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		conn, err := l.Accept()
		if err == nil {
			conn.Close()
		}
		l.Close()
	}()
	if _, err := Dial(addr, Options{HandshakeTimeout: time.Second}); err == nil {
		t.Fatal("expected handshake failure")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(conn, "GET / HTTP/1.1\r\n\r\n")
	conn.Close()
	if err := <-done; err == nil {
		t.Fatal("expected handshake rejection")
	}
}
