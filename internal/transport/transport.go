// Package transport carries Gnutella messages over real network
// connections: the v0.6 handshake followed by framed binary messages.
// It backs the live measurement mode (cmd/gnutellad and the livecapture
// example), complementing the in-process simulation of internal/capture —
// the same overlay engine runs on both substrates.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/handshake"
	"repro/internal/wire"
)

// Peer is one established Gnutella connection. Send and Recv are safe for
// one writer and one reader goroutine respectively.
type Peer struct {
	conn net.Conn
	br   *bufio.Reader
	info handshake.Info

	sendMu  sync.Mutex
	scratch []byte
	parser  wire.Parser
}

// Info returns the remote's negotiated handshake information.
func (p *Peer) Info() handshake.Info { return p.info }

// RemoteAddr returns the remote network address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// Close tears down the connection.
func (p *Peer) Close() error { return p.conn.Close() }

// Send writes one message.
func (p *Peer) Send(env wire.Envelope) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	var err error
	p.scratch, err = wire.WriteTo(p.conn, env, p.scratch)
	return err
}

// Recv reads the next message. The returned envelope is deep-copied and
// safe to retain.
func (p *Peer) Recv() (wire.Envelope, error) {
	env, err := p.parser.ReadMessage(p.br)
	if err != nil {
		return env, err
	}
	return wire.Clone(env), nil
}

// SetReadDeadline bounds the next Recv.
func (p *Peer) SetReadDeadline(t time.Time) error { return p.conn.SetReadDeadline(t) }

// Options configure the local end of a connection.
type Options struct {
	// UserAgent identifies this client in the handshake.
	UserAgent string
	// Ultrapeer advertises ultrapeer mode.
	Ultrapeer bool
	// HandshakeTimeout bounds the handshake exchange (default 10 s).
	HandshakeTimeout time.Duration
	// Retry, when Max > 0, makes Dial retry failed attempts (TCP connect
	// or handshake) with exponential backoff and full jitter. The zero
	// value keeps the historical single-attempt behavior.
	Retry Retry
}

// Retry is an exponential-backoff-with-full-jitter schedule: attempt k
// sleeps a uniform random duration in (0, min(Cap, Base·2^k)] before
// retrying. Full jitter (the AWS architecture-blog formulation) is what
// keeps a fleet of emitters reconnecting after a collector restart from
// hammering it in lockstep.
type Retry struct {
	// Max is how many retries follow the first failed attempt; 0 disables
	// retrying entirely.
	Max int
	// Base is the first attempt's backoff ceiling (default 100 ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 5 s).
	Cap time.Duration
	// Seed fixes the jitter stream for deterministic tests; 0 draws from
	// the global generator.
	Seed uint64
}

// Backoff returns the sleep before retry attempt (0-based), jittered.
func (r Retry) Backoff(attempt int, rng *rand.Rand) time.Duration {
	base := r.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	ceil := r.Cap
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > ceil { // <<-overflow lands negative or zero
		d = ceil
	}
	var f float64
	if rng != nil {
		f = rng.Float64()
	} else {
		f = rand.Float64()
	}
	return time.Duration(f * float64(d))
}

// rng returns the jitter stream: seeded and private when Seed is set (so
// tests and emulation runs reproduce their schedules), nil for the global
// generator otherwise.
func (r Retry) rng() *rand.Rand {
	if r.Seed == 0 {
		return nil
	}
	return rand.New(rand.NewPCG(r.Seed, 0x9e3779b97f4a7c15))
}

func (o Options) headers() *handshake.Headers {
	h := handshake.NewHeaders()
	ua := o.UserAgent
	if ua == "" {
		ua = "repro-p2pquery/1.0"
	}
	h.Set(handshake.HeaderUserAgent, ua)
	if o.Ultrapeer {
		h.Set(handshake.HeaderUltrapeer, "True")
	} else {
		h.Set(handshake.HeaderUltrapeer, "False")
	}
	return h
}

func (o Options) timeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 10 * time.Second
}

// Dial connects to a Gnutella node and performs the initiator handshake.
// With Options.Retry.Max > 0, failed attempts — refused connects and
// failed handshakes alike — are retried on the Retry schedule; the last
// attempt's error is returned when the budget runs out.
func Dial(addr string, opts Options) (*Peer, error) {
	rng := opts.Retry.rng()
	var err error
	for attempt := 0; ; attempt++ {
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", addr, opts.timeout())
		if err == nil {
			var peer *Peer
			peer, err = Client(conn, opts)
			if err == nil {
				return peer, nil
			}
		}
		if attempt >= opts.Retry.Max {
			return nil, err
		}
		time.Sleep(opts.Retry.Backoff(attempt, rng))
	}
}

// Client performs the initiator handshake over an existing connection.
func Client(conn net.Conn, opts Options) (*Peer, error) {
	deadline := time.Now().Add(opts.timeout())
	_ = conn.SetDeadline(deadline)
	// Initiate buffers its own reads, but no post-handshake bytes can be
	// lost: the acceptor must not send messages until it has read our
	// stage-three acknowledgement, and we only write that after Initiate's
	// final read.
	info, err := handshake.Initiate(conn, opts.headers())
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return &Peer{conn: conn, br: bufio.NewReaderSize(conn, 64<<10), info: info}, nil
}

// Server performs the acceptor handshake over an accepted connection.
func Server(conn net.Conn, opts Options) (*Peer, error) {
	deadline := time.Now().Add(opts.timeout())
	_ = conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	info, err := handshake.Accept(br, conn, opts.headers())
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return &Peer{conn: conn, br: br, info: info}, nil
}

// Listener accepts Gnutella connections.
type Listener struct {
	l    net.Listener
	opts Options
}

// Listen starts a Gnutella listener on the address.
func Listen(addr string, opts Options) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l, opts: opts}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// ErrPeerRejected wraps errors scoped to one accepted connection (a
// failed or malformed handshake): the listener itself is healthy and the
// accept loop should simply move on to the next peer — neither backing
// off nor exiting. Test with errors.Is.
var ErrPeerRejected = errors.New("transport: peer rejected")

// Accept waits for the next peer and completes its handshake. Handshake
// failures are wrapped in ErrPeerRejected; any other error came from the
// listener itself (classify with AcceptBackoff).
func (l *Listener) Accept() (*Peer, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	peer, err := Server(conn, l.opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrPeerRejected, err)
	}
	return peer, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// AcceptBackoff classifies accept-loop errors and paces the retries, the
// pattern net/http.Server uses: transient resource exhaustion (EMFILE,
// ENFILE, ENOBUFS, ENOMEM, ECONNABORTED, timeouts) is retried with a
// doubling delay capped at one second, anything else — a closed listener
// above all — is permanent and the loop must exit instead of spinning on
// the same error forever. The zero value is ready to use; call Reset
// after every successful accept.
type AcceptBackoff struct {
	delay time.Duration
}

// Next reports whether the accept loop should retry after err, and the
// delay to sleep first. Per-connection errors (ErrPeerRejected) retry
// immediately; temporary listener errors back off; permanent ones return
// retry == false.
func (b *AcceptBackoff) Next(err error) (delay time.Duration, retry bool) {
	if errors.Is(err, ErrPeerRejected) {
		return 0, true
	}
	if !temporaryAcceptErr(err) {
		return 0, false
	}
	if b.delay == 0 {
		b.delay = 5 * time.Millisecond
	} else if b.delay *= 2; b.delay > time.Second {
		b.delay = time.Second
	}
	return b.delay, true
}

// Reset clears the backoff after a successful accept.
func (b *AcceptBackoff) Reset() { b.delay = 0 }

func temporaryAcceptErr(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM, syscall.ECONNABORTED, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
