// Package transport carries Gnutella messages over real network
// connections: the v0.6 handshake followed by framed binary messages.
// It backs the live measurement mode (cmd/gnutellad and the livecapture
// example), complementing the in-process simulation of internal/capture —
// the same overlay engine runs on both substrates.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/handshake"
	"repro/internal/wire"
)

// Peer is one established Gnutella connection. Send and Recv are safe for
// one writer and one reader goroutine respectively.
type Peer struct {
	conn net.Conn
	br   *bufio.Reader
	info handshake.Info

	sendMu  sync.Mutex
	scratch []byte
	parser  wire.Parser
}

// Info returns the remote's negotiated handshake information.
func (p *Peer) Info() handshake.Info { return p.info }

// RemoteAddr returns the remote network address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// Close tears down the connection.
func (p *Peer) Close() error { return p.conn.Close() }

// Send writes one message.
func (p *Peer) Send(env wire.Envelope) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	var err error
	p.scratch, err = wire.WriteTo(p.conn, env, p.scratch)
	return err
}

// Recv reads the next message. The returned envelope is deep-copied and
// safe to retain.
func (p *Peer) Recv() (wire.Envelope, error) {
	env, err := p.parser.ReadMessage(p.br)
	if err != nil {
		return env, err
	}
	return wire.Clone(env), nil
}

// SetReadDeadline bounds the next Recv.
func (p *Peer) SetReadDeadline(t time.Time) error { return p.conn.SetReadDeadline(t) }

// Options configure the local end of a connection.
type Options struct {
	// UserAgent identifies this client in the handshake.
	UserAgent string
	// Ultrapeer advertises ultrapeer mode.
	Ultrapeer bool
	// HandshakeTimeout bounds the handshake exchange (default 10 s).
	HandshakeTimeout time.Duration
}

func (o Options) headers() *handshake.Headers {
	h := handshake.NewHeaders()
	ua := o.UserAgent
	if ua == "" {
		ua = "repro-p2pquery/1.0"
	}
	h.Set(handshake.HeaderUserAgent, ua)
	if o.Ultrapeer {
		h.Set(handshake.HeaderUltrapeer, "True")
	} else {
		h.Set(handshake.HeaderUltrapeer, "False")
	}
	return h
}

func (o Options) timeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 10 * time.Second
}

// Dial connects to a Gnutella node and performs the initiator handshake.
func Dial(addr string, opts Options) (*Peer, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.timeout())
	if err != nil {
		return nil, err
	}
	return Client(conn, opts)
}

// Client performs the initiator handshake over an existing connection.
func Client(conn net.Conn, opts Options) (*Peer, error) {
	deadline := time.Now().Add(opts.timeout())
	_ = conn.SetDeadline(deadline)
	// Initiate buffers its own reads, but no post-handshake bytes can be
	// lost: the acceptor must not send messages until it has read our
	// stage-three acknowledgement, and we only write that after Initiate's
	// final read.
	info, err := handshake.Initiate(conn, opts.headers())
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return &Peer{conn: conn, br: bufio.NewReaderSize(conn, 64<<10), info: info}, nil
}

// Server performs the acceptor handshake over an accepted connection.
func Server(conn net.Conn, opts Options) (*Peer, error) {
	deadline := time.Now().Add(opts.timeout())
	_ = conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	info, err := handshake.Accept(br, conn, opts.headers())
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return &Peer{conn: conn, br: br, info: info}, nil
}

// Listener accepts Gnutella connections.
type Listener struct {
	l    net.Listener
	opts Options
}

// Listen starts a Gnutella listener on the address.
func Listen(addr string, opts Options) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l, opts: opts}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// Accept waits for the next peer and completes its handshake.
func (l *Listener) Accept() (*Peer, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return Server(conn, l.opts)
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
