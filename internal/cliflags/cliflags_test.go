package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var testDefaults = Defaults{Seed: 2004, Scale: 0.01, Days: 4, Nodes: 1, MemLimit: -1}

func resolve(t *testing.T, specFile string, args ...string) (*Flags, *scenarioCompiled) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Bind(fs, testDefaults)
	if specFile != "" {
		args = append([]string{"-spec", specFile}, args...)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	c, err := f.Resolve()
	if err != nil {
		t.Fatalf("resolve %v: %v", args, err)
	}
	return f, &scenarioCompiled{c.Sim.Workload.Seed, c.Sim.Workload.Scale, c.Sim.Workload.Days, c.Nodes, c.Workers, c.Stream, c.MemLimit}
}

// scenarioCompiled flattens the resolved knobs for terse comparisons.
type scenarioCompiled struct {
	seed     uint64
	scale    float64
	days     int
	nodes    int
	workers  int
	stream   bool
	memlimit int64
}

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.yaml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPrecedenceOrder pins the contract: defaults < spec < preset <
// explicitly set flag, field by field.
func TestPrecedenceOrder(t *testing.T) {
	spec := writeSpec(t, `version: 1
name: from-spec
sim:
  scale: 0.3
  days: 9
  nodes: 2
`)

	// Defaults alone: the binary's historical behavior.
	if _, got := resolve(t, ""); *got != (scenarioCompiled{2004, 0.01, 4, 1, 0, false, -1}) {
		t.Errorf("defaults: %+v", got)
	}

	// Spec beats defaults, untouched fields keep defaults.
	if _, got := resolve(t, spec); *got != (scenarioCompiled{2004, 0.3, 9, 2, 0, false, -1}) {
		t.Errorf("spec over defaults: %+v", got)
	}

	// Preset beats spec (laptop pins scale 0.05, days 4, nodes 4).
	if _, got := resolve(t, spec, "-preset", "laptop"); *got != (scenarioCompiled{2004, 0.05, 4, 4, 0, false, -1}) {
		t.Errorf("preset over spec: %+v", got)
	}

	// Explicit flags beat everything; unset flags still lose to the spec.
	if _, got := resolve(t, spec, "-preset", "laptop", "-scale", "0.9", "-seed", "7"); *got != (scenarioCompiled{7, 0.9, 4, 4, 0, false, -1}) {
		t.Errorf("flags over preset: %+v", got)
	}

	// A flag set to its default value still counts as explicit.
	if _, got := resolve(t, spec, "-days", "4"); *got != (scenarioCompiled{2004, 0.3, 4, 2, 0, false, -1}) {
		t.Errorf("explicit default-valued flag: %+v", got)
	}
}

func TestResolveScenarioAndChecksSurvive(t *testing.T) {
	spec := writeSpec(t, `version: 1
name: churny
preset: laptop
events:
  - churn:
      at: 1d
      fraction: 0.5
      outage: 1h
checks:
  - metric: conns
    min: 1
`)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Bind(fs, testDefaults)
	if err := fs.Parse([]string{"-spec", spec, "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
	c, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Declarative() {
		t.Error("Declarative() false with -spec")
	}
	if c.Name != "churny" {
		t.Errorf("name: %q", c.Name)
	}
	sc := c.Sim.Workload.Scenario
	if sc == nil || len(sc.Churn) != 1 {
		t.Fatalf("scenario lost in resolve: %+v", sc)
	}
	if len(c.Checks) != 1 || c.Checks[0].Metric != "conns" {
		t.Errorf("checks lost: %+v", c.Checks)
	}
	// Explicit -scale overrode the spec's preset base.
	if c.Sim.Workload.Scale != 0.02 {
		t.Errorf("scale: %v", c.Sim.Workload.Scale)
	}
	// The file's preset base (laptop) supplied nodes.
	if c.Nodes != 4 {
		t.Errorf("nodes: %d", c.Nodes)
	}
}

func TestResolveErrors(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Bind(fs, testDefaults)
	if err := fs.Parse([]string{"-preset", "warpdrive"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Resolve(); err == nil {
		t.Error("unknown preset accepted")
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	f = Bind(fs, testDefaults)
	if err := fs.Parse([]string{"-spec", "/nonexistent/x.yaml"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Resolve(); err == nil {
		t.Error("missing spec file accepted")
	}
}
