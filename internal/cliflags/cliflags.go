// Package cliflags is the one definition of the simulation flag block
// every binary used to duplicate (-seed -scale -days -nodes -simworkers
// -stream -memlimit) plus the declarative pair (-spec -preset), and the
// one implementation of their precedence:
//
//	binary defaults  <  -spec file  <  -preset  <  explicitly set flag
//
// Bind registers the flags on a FlagSet with the binary's historical
// defaults; after flag.Parse, Resolve folds spec, preset and explicitly
// set flags into one scenario.Compiled. A run with neither -spec nor
// -preset resolves to exactly the flag values — byte-identical behavior
// to the pre-spec binaries.
package cliflags

import (
	"flag"
	"os"
	"runtime/debug"

	"repro/internal/scenario"
)

// Defaults carries a binary's historical flag defaults.
type Defaults struct {
	Seed     uint64
	Scale    float64
	Days     int
	Nodes    int
	Workers  int
	Stream   bool
	MemLimit int64
}

// Flags holds the bound flag values; read them only after flag.Parse.
type Flags struct {
	Spec     string
	Preset   string
	Seed     uint64
	Scale    float64
	Days     int
	Nodes    int
	Workers  int
	Stream   bool
	MemLimit int64

	fs *flag.FlagSet
	d  Defaults
}

// Bind registers the shared simulation flag block on fs with the given
// defaults and returns the value holder for Resolve.
func Bind(fs *flag.FlagSet, d Defaults) *Flags {
	f := &Flags{fs: fs, d: d}
	fs.StringVar(&f.Spec, "spec", "", "YAML experiment spec (see internal/scenario); explicit flags override it")
	fs.StringVar(&f.Preset, "preset", "", "built-in experiment preset (paper40d, laptop, tenweek); overrides -spec, explicit flags override it")
	fs.Uint64Var(&f.Seed, "seed", d.Seed, "simulation seed (same seed ⇒ identical trace)")
	fs.Float64Var(&f.Scale, "scale", d.Scale, "fraction of the paper's arrival volume; 1.0 = full scale")
	fs.IntVar(&f.Days, "days", d.Days, "measurement period in days; the paper measured 40")
	fs.IntVar(&f.Nodes, "nodes", d.Nodes, "ultrapeer vantage points; >1 shards arrivals across a measurement fleet")
	fs.IntVar(&f.Workers, "simworkers", d.Workers, "simulation engine worker pool size (0 = GOMAXPROCS, 1 = sequential); the trace is byte-identical for every value")
	fs.BoolVar(&f.Stream, "stream", d.Stream, "run the bounded-memory streaming engine")
	fs.Int64Var(&f.MemLimit, "memlimit", d.MemLimit, "soft Go memory limit in bytes (-1 = auto: 2 GiB in stream mode; 0 = runtime default)")
	return f
}

// Resolve folds defaults, spec file, preset and explicitly set flags —
// in that precedence order — into one compiled run configuration.
func (f *Flags) Resolve() (*scenario.Compiled, error) {
	merged := f.defaultsSpec()
	if f.Spec != "" {
		sp, err := scenario.Load(f.Spec)
		if err != nil {
			return nil, err
		}
		merged = scenario.Merge(merged, sp)
	}
	if f.Preset != "" {
		sp, err := scenario.Preset(f.Preset)
		if err != nil {
			return nil, err
		}
		merged = scenario.Merge(merged, sp)
	}
	merged = scenario.Merge(merged, f.explicitSpec())
	return scenario.Compile(merged)
}

// Declarative reports whether the invocation named a spec or preset —
// what -simulate-style mode switches key off.
func (f *Flags) Declarative() bool { return f.Spec != "" || f.Preset != "" }

// defaultsSpec pins every Sim field to the binary's registered default,
// so a flag the user did not set still means what it always meant.
func (f *Flags) defaultsSpec() *scenario.Spec {
	d := f.d
	return &scenario.Spec{
		Version: scenario.SchemaVersion,
		Sim: scenario.SimSpec{
			Seed:     &d.Seed,
			Scale:    &d.Scale,
			Days:     &d.Days,
			Nodes:    &d.Nodes,
			Workers:  &d.Workers,
			Stream:   &d.Stream,
			MemLimit: &d.MemLimit,
		},
	}
}

// explicitSpec lifts exactly the flags the user set on the command line
// into a spec overlay — the top of the precedence order.
func (f *Flags) explicitSpec() *scenario.Spec {
	sp := &scenario.Spec{Version: scenario.SchemaVersion}
	f.fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "seed":
			v := f.Seed
			sp.Sim.Seed = &v
		case "scale":
			v := f.Scale
			sp.Sim.Scale = &v
		case "days":
			v := f.Days
			sp.Sim.Days = &v
		case "nodes":
			v := f.Nodes
			sp.Sim.Nodes = &v
		case "simworkers":
			v := f.Workers
			sp.Sim.Workers = &v
		case "stream":
			v := f.Stream
			sp.Sim.Stream = &v
		case "memlimit":
			v := f.MemLimit
			sp.Sim.MemLimit = &v
		}
	})
	return sp
}

// ApplyMemLimit enforces the resolved soft memory limit (moved here from
// cmd/analyze): positive sets it, -1 auto-sets 2 GiB in stream mode
// unless GOMEMLIMIT is already set, 0 leaves the runtime default. The
// streaming engine's live state is bounded by design; the limit stops
// the collector's 2x headroom from inflating peak RSS over it. It never
// OOMs — a too-low soft limit degrades to extra GC.
func ApplyMemLimit(limit int64, stream bool) {
	switch {
	case limit > 0:
		debug.SetMemoryLimit(limit)
	case limit < 0 && stream && os.Getenv("GOMEMLIMIT") == "":
		// 2 GiB holds the paper-scale streaming run (live peak ≈ 1.9 GB)
		// with ≈250 MB of GC headroom; see cmd/analyze's docs.
		debug.SetMemoryLimit(2 << 30)
	}
}
