package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Journal records a machine-readable run timeline as JSONL: one line per
// span start/end, discrete event, heartbeat, or metrics snapshot. Times
// are monotonic-clock milliseconds since the journal was created (t_ms),
// so journals from different hosts and runs line up structurally; the
// Canonical helper strips them for determinism comparisons. All methods
// are safe for concurrent use and no-ops on a nil *Journal.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	ids   uint64
	err   error
}

// NewJournal starts a journal writing JSONL lines to w. Lines are written
// unbuffered (one Write per line) so a crash loses at most the line being
// written.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, start: time.Now()}
}

// Err reports the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Attr is one key/value attribute attached to a journal line.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// record is the wire shape of one journal line. encoding/json emits
// struct fields in declaration order and sorts map keys, so identical
// logical lines render byte-identically.
type record struct {
	Kind    string             `json:"kind"`
	TMs     float64            `json:"t_ms"`
	ID      uint64             `json:"id,omitempty"`
	Parent  uint64             `json:"parent,omitempty"`
	Name    string             `json:"name,omitempty"`
	DurMs   float64            `json:"dur_ms,omitempty"`
	Attrs   map[string]any     `json:"attrs,omitempty"`
	Samples map[string]float64 `json:"samples,omitempty"`
}

func (j *Journal) write(rec record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

func (j *Journal) since() float64 {
	return float64(time.Since(j.start).Microseconds()) / 1000
}

func (j *Journal) nextID() uint64 {
	j.mu.Lock()
	j.ids++
	id := j.ids
	j.mu.Unlock()
	return id
}

// Span is one traced phase: a named interval with a parent, attributes at
// start and end, and a recorded duration. Obtain via Journal.Begin or
// Span.Child; a nil *Span (from a nil journal) no-ops.
type Span struct {
	j     *Journal
	id    uint64
	name  string
	start time.Time
}

// Begin opens a top-level span and writes its span_start line.
func (j *Journal) Begin(name string, attrs ...Attr) *Span {
	return j.span(0, name, attrs)
}

func (j *Journal) span(parent uint64, name string, attrs []Attr) *Span {
	if j == nil {
		return nil
	}
	s := &Span{j: j, id: j.nextID(), name: name, start: time.Now()}
	j.write(record{Kind: "span_start", TMs: j.since(), ID: s.id, Parent: parent, Name: name, Attrs: attrMap(attrs)})
	return s
}

// Child opens a sub-span whose parent is s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.j.span(s.id, name, attrs)
}

// End closes the span, writing its span_end line with the measured
// duration and any final attributes.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	dur := float64(time.Since(s.start).Microseconds()) / 1000
	s.j.write(record{Kind: "span_end", TMs: s.j.since(), ID: s.id, Name: s.name, DurMs: dur, Attrs: attrMap(attrs)})
}

// Event writes a discrete (instant) event line.
func (j *Journal) Event(name string, attrs ...Attr) {
	if j == nil {
		return
	}
	j.write(record{Kind: "event", TMs: j.since(), Name: name, Attrs: attrMap(attrs)})
}

// Heartbeat writes a periodic progress line.
func (j *Journal) Heartbeat(attrs ...Attr) {
	if j == nil {
		return
	}
	j.write(record{Kind: "heartbeat", TMs: j.since(), Attrs: attrMap(attrs)})
}

// Metrics snapshots the deterministic metric state of r (counters,
// gauges, histogram sums/counts — GaugeFuncs excluded) as one metrics
// line.
func (j *Journal) Metrics(r *Registry) {
	if j == nil || r == nil {
		return
	}
	samples := r.Samples()
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name] = s.Value
	}
	j.write(record{Kind: "metrics", TMs: j.since(), Samples: m})
}

// StartHeartbeat emits a heartbeat line (and calls fn for its attributes)
// every interval until the returned stop function is called. A nil
// journal or non-positive interval yields a no-op stop. fn may be nil.
func StartHeartbeat(j *Journal, interval time.Duration, fn func() []Attr) (stop func()) {
	if j == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				var attrs []Attr
				if fn != nil {
					attrs = fn()
				}
				j.Heartbeat(attrs...)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Canonical reads a JSONL journal and returns its lines normalized for
// determinism comparison: heartbeat lines (wall-clock driven, count
// varies run to run) are dropped, and the t_ms / dur_ms timestamps are
// stripped from the rest. Span structure, ordering, ids, names,
// attributes and metric snapshot values all survive, so two Canonical
// journals of the same deterministic run compare equal line for line.
func Canonical(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []string
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", ln, err)
		}
		if m["kind"] == "heartbeat" {
			continue
		}
		delete(m, "t_ms")
		delete(m, "dur_ms")
		b, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
