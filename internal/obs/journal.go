package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Journal records a machine-readable run timeline as JSONL: one line per
// span start/end, discrete event, heartbeat, or metrics snapshot. Times
// are monotonic-clock milliseconds since the journal was created (t_ms),
// so journals from different hosts and runs line up structurally; the
// Canonical helper strips them for determinism comparisons. All methods
// are safe for concurrent use and no-ops on a nil *Journal.
//
// A journal that aggregates lines from several processes (the fleet
// journal the ingest collector writes) distinguishes them by the src
// field: SetSource stamps the journal's own lines, EventSrc writes a
// single event into an explicit lane, and IngestLine folds a line
// shipped from another process in — with its t_ms rebased onto this
// journal's clock — so one file carries every process's timeline on one
// time axis.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	ids   uint64
	src   string
	err   error
}

// NewJournal starts a journal writing JSONL lines to w. Lines are written
// unbuffered (one Write per line) so a crash loses at most the line being
// written.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, start: time.Now()}
}

// Err reports the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// SetSource sets the src lane stamped on every subsequent line. A
// single-process journal leaves it empty (the field is omitted); a
// journal that also ingests shipped lines from other processes names its
// own lane — "collector" — so the fleet journal keeps every process's
// lines attributable.
func (j *Journal) SetSource(src string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.src = src
	j.mu.Unlock()
}

// Now returns the journal's monotonic clock: milliseconds since the
// journal was created, the same value stamped as t_ms on its lines. The
// ingest handshake samples it on both ends to compute the per-input
// clock offset that rebases shipped lines onto the collector's axis.
func (j *Journal) Now() float64 {
	if j == nil {
		return 0
	}
	return j.since()
}

// Attr is one key/value attribute attached to a journal line.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// record is the wire shape of one journal line. encoding/json emits
// struct fields in declaration order and sorts map keys, so identical
// logical lines render byte-identically.
type record struct {
	Kind    string             `json:"kind"`
	TMs     float64            `json:"t_ms"`
	Src     string             `json:"src,omitempty"`
	ID      uint64             `json:"id,omitempty"`
	Parent  uint64             `json:"parent,omitempty"`
	Name    string             `json:"name,omitempty"`
	DurMs   float64            `json:"dur_ms,omitempty"`
	Attrs   map[string]any     `json:"attrs,omitempty"`
	Samples map[string]float64 `json:"samples,omitempty"`
}

func (j *Journal) write(rec record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Src == "" {
		rec.Src = j.src
	}
	j.writeLocked(rec)
}

func (j *Journal) writeLocked(rec record) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	n, err := j.w.Write(b)
	if err == nil && n < len(b) {
		// A short write without an error violates the io.Writer contract;
		// latch it anyway — a truncated line would corrupt the JSONL
		// stream, so the journal must stop rather than keep appending
		// after a torn record.
		err = io.ErrShortWrite
	}
	if err != nil {
		j.err = err
	}
}

func (j *Journal) since() float64 {
	return float64(time.Since(j.start).Microseconds()) / 1000
}

func (j *Journal) nextID() uint64 {
	j.mu.Lock()
	j.ids++
	id := j.ids
	j.mu.Unlock()
	return id
}

// Span is one traced phase: a named interval with a parent, attributes at
// start and end, and a recorded duration. Obtain via Journal.Begin or
// Span.Child; a nil *Span (from a nil journal) no-ops.
type Span struct {
	j     *Journal
	id    uint64
	name  string
	start time.Time
}

// Begin opens a top-level span and writes its span_start line.
func (j *Journal) Begin(name string, attrs ...Attr) *Span {
	return j.span(0, name, attrs)
}

func (j *Journal) span(parent uint64, name string, attrs []Attr) *Span {
	if j == nil {
		return nil
	}
	s := &Span{j: j, id: j.nextID(), name: name, start: time.Now()}
	j.write(record{Kind: "span_start", TMs: j.since(), ID: s.id, Parent: parent, Name: name, Attrs: attrMap(attrs)})
	return s
}

// Child opens a sub-span whose parent is s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.j.span(s.id, name, attrs)
}

// End closes the span, writing its span_end line with the measured
// duration and any final attributes.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	dur := float64(time.Since(s.start).Microseconds()) / 1000
	s.j.write(record{Kind: "span_end", TMs: s.j.since(), ID: s.id, Name: s.name, DurMs: dur, Attrs: attrMap(attrs)})
}

// Event writes a discrete (instant) event line.
func (j *Journal) Event(name string, attrs ...Attr) {
	if j == nil {
		return
	}
	j.write(record{Kind: "event", TMs: j.since(), Name: name, Attrs: attrMap(attrs)})
}

// EventSrc writes a discrete event into an explicit src lane, overriding
// the journal's default source. The ingest collector uses it to file
// per-input liveness transitions (input_stalled, input_evicted, …) under
// a per-input lane — "collector/<source>" — so each lane's line sequence
// stays a deterministic function of that one input's run, which is what
// makes the fleet journal's canonical form comparable across runs.
func (j *Journal) EventSrc(src, name string, attrs ...Attr) {
	if j == nil {
		return
	}
	j.write(record{Kind: "event", TMs: j.since(), Src: src, Name: name, Attrs: attrMap(attrs)})
}

// IngestLine folds one JSONL line shipped from another process's journal
// into this one: the line's t_ms (and nothing else time-like — dur_ms is
// a duration, not an instant) is rebased by offsetMs onto this journal's
// clock, its src is set to the shipper's lane, and the result is
// appended under the same mutex as local lines. The rebased line
// round-trips through a map, so its keys render in sorted order; the
// Canonical and timeline readers normalize the same way, making the two
// layouts compare equal.
func (j *Journal) IngestLine(line []byte, src string, offsetMs float64) error {
	if j == nil {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		return fmt.Errorf("obs: ingest journal line: %w", err)
	}
	if t, ok := m["t_ms"].(float64); ok {
		m["t_ms"] = t + offsetMs
	}
	m["src"] = src
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	n, err := j.w.Write(b)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		j.err = err
	}
	return err
}

// Heartbeat writes a periodic progress line.
func (j *Journal) Heartbeat(attrs ...Attr) {
	if j == nil {
		return
	}
	j.write(record{Kind: "heartbeat", TMs: j.since(), Attrs: attrMap(attrs)})
}

// Metrics snapshots the deterministic metric state of r (counters,
// gauges, histogram sums/counts — GaugeFuncs excluded) as one metrics
// line.
func (j *Journal) Metrics(r *Registry) {
	if j == nil || r == nil {
		return
	}
	samples := r.Samples()
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name] = s.Value
	}
	j.write(record{Kind: "metrics", TMs: j.since(), Samples: m})
}

// Latency snapshots the wall-clock histogram state of r (the families
// registered via Registry.WallHistogram: per-frame encode/decode time,
// ack round-trips) as one latency line. Wall histograms measure real
// elapsed time, so their values differ run to run; keeping them on a
// dedicated line kind — dropped by Canonical alongside heartbeats —
// lets the deterministic metrics snapshot stay byte-comparable while
// the journal still carries the measured latency distribution.
func (j *Journal) Latency(r *Registry) {
	if j == nil || r == nil {
		return
	}
	samples := r.WallSamples()
	if len(samples) == 0 {
		return
	}
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name] = s.Value
	}
	j.write(record{Kind: "latency", TMs: j.since(), Samples: m})
}

// StartHeartbeat emits a heartbeat line (and calls fn for its attributes)
// every interval until the returned stop function is called. A nil
// journal or non-positive interval yields a no-op stop. fn may be nil.
func StartHeartbeat(j *Journal, interval time.Duration, fn func() []Attr) (stop func()) {
	if j == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				var attrs []Attr
				if fn != nil {
					attrs = fn()
				}
				j.Heartbeat(attrs...)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Canonical reads a JSONL journal and returns its lines normalized for
// determinism comparison: heartbeat and latency lines (wall-clock
// driven, their count and values vary run to run) are dropped, and the
// t_ms / dur_ms timestamps are stripped from the rest. For a fleet
// journal — lines carrying src lanes — the surviving lines are then
// stable-sorted by lane: within one lane the order is the producing
// process's own deterministic sequence, but the interleaving *across*
// lanes depends on wall-clock arrival, so per-lane grouping is the
// strongest canonical form a multi-process journal supports. A
// single-source journal (every src empty) is untouched by the sort.
// Span structure, per-lane ordering, ids, names, attributes and metric
// snapshot values all survive, so two Canonical journals of the same
// deterministic run compare equal line for line.
func Canonical(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	type laneLine struct {
		src  string
		line string
	}
	var lines []laneLine
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", ln, err)
		}
		if m["kind"] == "heartbeat" || m["kind"] == "latency" {
			continue
		}
		delete(m, "t_ms")
		delete(m, "dur_ms")
		src, _ := m["src"].(string)
		b, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		lines = append(lines, laneLine{src: src, line: string(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(lines, func(i, k int) bool { return lines[i].src < lines[k].src })
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.line
	}
	return out, nil
}
