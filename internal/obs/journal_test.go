package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJournalSpanStructure(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	sp := j.Begin("simulate", A("nodes", 4))
	sub := sp.Child("partition")
	sub.End(A("arrivals", 100))
	sp.End()
	j.Event("input_evicted", A("input", 2))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	type line struct {
		Kind   string         `json:"kind"`
		TMs    float64        `json:"t_ms"`
		ID     uint64         `json:"id"`
		Parent uint64         `json:"parent"`
		Name   string         `json:"name"`
		Attrs  map[string]any `json:"attrs"`
	}
	var lines []line
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("unparseable journal line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	if lines[0].Kind != "span_start" || lines[0].Name != "simulate" || lines[0].ID != 1 || lines[0].Parent != 0 {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[0].Attrs["nodes"] != float64(4) {
		t.Fatalf("start attrs = %v", lines[0].Attrs)
	}
	if lines[1].Kind != "span_start" || lines[1].Name != "partition" || lines[1].Parent != 1 {
		t.Fatalf("child start = %+v", lines[1])
	}
	if lines[2].Kind != "span_end" || lines[2].ID != lines[1].ID || lines[2].Attrs["arrivals"] != float64(100) {
		t.Fatalf("child end = %+v", lines[2])
	}
	if lines[3].Kind != "span_end" || lines[3].ID != 1 {
		t.Fatalf("outer end = %+v", lines[3])
	}
	if lines[4].Kind != "event" || lines[4].Name != "input_evicted" {
		t.Fatalf("event = %+v", lines[4])
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].TMs < lines[i-1].TMs {
			t.Fatalf("t_ms not monotone at line %d: %v < %v", i, lines[i].TMs, lines[i-1].TMs)
		}
	}
}

func TestJournalMetricsLine(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	r := NewRegistry()
	r.Counter("arrivals_total", "").Add(7)
	r.GaugeFunc("rss", "", func() float64 { return 123 })
	j.Metrics(r)
	var m struct {
		Kind    string             `json:"kind"`
		Samples map[string]float64 `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Kind != "metrics" || m.Samples["arrivals_total"] != 7 {
		t.Fatalf("metrics line = %+v", m)
	}
	if _, ok := m.Samples["rss"]; ok {
		t.Fatal("GaugeFunc leaked into journal metrics snapshot")
	}
}

func TestCanonicalStripsTimestampsAndHeartbeats(t *testing.T) {
	mk := func(pause time.Duration) []string {
		var buf bytes.Buffer
		j := NewJournal(&buf)
		sp := j.Begin("phase", A("n", 1))
		time.Sleep(pause)
		j.Heartbeat(A("rss", int(pause)))
		sp.End(A("ok", true))
		lines, err := Canonical(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}
	a, b := mk(0), mk(3*time.Millisecond)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("canonical lengths %d, %d (heartbeat not dropped?)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical mismatch at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	if strings.Contains(a[0], "t_ms") || strings.Contains(a[1], "dur_ms") {
		t.Fatalf("timestamps survived canonicalization: %v", a)
	}
}

func TestStartHeartbeatEmitsAndStops(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	stop := StartHeartbeat(j, time.Millisecond, func() []Attr {
		return []Attr{A("live", 3)}
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		j.mu.Lock()
		n := buf.Len()
		j.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	j.mu.Lock()
	out := buf.String()
	j.mu.Unlock()
	if !strings.Contains(out, `"kind":"heartbeat"`) || !strings.Contains(out, `"live":3`) {
		t.Fatalf("no heartbeat emitted: %q", out)
	}
}
