package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestJournalSourceLane(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.SetSource("collector")
	j.Event("started")
	j.EventSrc("collector/vantage1", "input_stalled", A("input", "vantage1"))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"src":"collector"`) {
		t.Fatalf("default src not stamped: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"src":"collector/vantage1"`) {
		t.Fatalf("explicit src lane not stamped: %s", lines[1])
	}
}

func TestJournalIngestLineRebasesClock(t *testing.T) {
	// An emitter-side journal produces lines on its own clock; the
	// collector folds them in with an offset and a lane.
	var ebuf bytes.Buffer
	em := NewJournal(&ebuf)
	sp := em.Begin("simulate", A("node", 3))
	sp.End()

	var fbuf bytes.Buffer
	fleet := NewJournal(&fbuf)
	fleet.SetSource("collector")
	for _, line := range strings.Split(strings.TrimSpace(ebuf.String()), "\n") {
		if err := fleet.IngestLine([]byte(line), "vantage3", 250); err != nil {
			t.Fatal(err)
		}
	}
	var got []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(fbuf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad fleet line %q: %v", line, err)
		}
		got = append(got, m)
	}
	if len(got) != 2 {
		t.Fatalf("got %d fleet lines, want 2", len(got))
	}
	for i, m := range got {
		if m["src"] != "vantage3" {
			t.Fatalf("line %d src = %v", i, m["src"])
		}
		if tms := m["t_ms"].(float64); tms < 250 {
			t.Fatalf("line %d t_ms = %v, want >= offset 250", i, tms)
		}
	}
	if got[0]["kind"] != "span_start" || got[0]["name"] != "simulate" {
		t.Fatalf("span_start lost in shipping: %v", got[0])
	}
	if attrs := got[0]["attrs"].(map[string]any); attrs["node"] != float64(3) {
		t.Fatalf("attrs lost in shipping: %v", got[0])
	}
	if _, ok := got[1]["dur_ms"]; !ok {
		t.Fatalf("span_end dur_ms lost in shipping: %v", got[1])
	}
	if err := fleet.IngestLine([]byte("{not json"), "vantage3", 0); err == nil {
		t.Fatal("malformed shipped line accepted")
	}
}

func TestCanonicalGroupsLanes(t *testing.T) {
	// Two fleet journals whose lanes interleave differently (wall-clock
	// arrival order) but whose per-lane sequences match must be
	// Canonical-identical.
	mk := func(interleave bool) []string {
		var buf bytes.Buffer
		j := NewJournal(&buf)
		j.SetSource("collector")
		j.Event("a")
		if interleave {
			j.IngestLine([]byte(`{"kind":"event","t_ms":1,"name":"x"}`), "v0", 10)
			j.Event("b")
		} else {
			j.Event("b")
			j.IngestLine([]byte(`{"kind":"event","t_ms":1,"name":"x"}`), "v0", 99)
		}
		j.Heartbeat()
		lines, err := Canonical(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}
	a, b := mk(true), mk(false)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("canonical lengths %d, %d, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lane-grouped canonical mismatch at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	// Lanes sort by src: collector lines before v0.
	if !strings.Contains(a[0], `"src":"collector"`) || !strings.Contains(a[2], `"src":"v0"`) {
		t.Fatalf("lane ordering wrong: %v", a)
	}
}

func TestCanonicalDropsLatencyLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	r := NewRegistry()
	r.WallHistogram("ingest_ack_rtt_seconds", "", ExpBuckets(1e-4, 4, 6)).Observe(0.01)
	j.Event("ok")
	j.Latency(r)
	lines, err := Canonical(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], `"name":"ok"`) {
		t.Fatalf("latency line survived Canonical: %v", lines)
	}
}

func TestLatencyLineCarriesWallSamples(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	r := NewRegistry()
	r.WallHistogram("ingest_ack_rtt_seconds", "", ExpBuckets(1e-4, 4, 6)).Observe(0.25)
	r.Counter("engine_arrivals_total", "").Inc()
	j.Latency(r)
	var m struct {
		Kind    string             `json:"kind"`
		Samples map[string]float64 `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Kind != "latency" {
		t.Fatalf("kind = %q", m.Kind)
	}
	if m.Samples["ingest_ack_rtt_seconds_count"] != 1 || m.Samples["ingest_ack_rtt_seconds_sum"] != 0.25 {
		t.Fatalf("latency samples = %v", m.Samples)
	}
	if _, ok := m.Samples["engine_arrivals_total"]; ok {
		t.Fatal("deterministic counter leaked into latency line")
	}

	// No wall histograms registered → no latency line at all.
	var buf2 bytes.Buffer
	NewJournal(&buf2).Latency(NewRegistry())
	if buf2.Len() != 0 {
		t.Fatalf("empty latency snapshot wrote a line: %q", buf2.String())
	}
}

func TestWallHistogramExcludedFromSamples(t *testing.T) {
	r := NewRegistry()
	h := r.WallHistogram("frame_encode_seconds", "", ExpBuckets(1e-5, 10, 4))
	h.Observe(0.001)
	r.Counter("c_total", "").Inc()
	for _, s := range r.Samples() {
		if strings.HasPrefix(s.Name, "frame_encode_seconds") {
			t.Fatalf("wall histogram leaked into Samples: %v", s)
		}
	}
	ws := r.WallSamples()
	if len(ws) != 2 || ws[0].Name != "frame_encode_seconds_count" && ws[1].Name != "frame_encode_seconds_count" {
		t.Fatalf("WallSamples = %v", ws)
	}
	// Still present in the Prometheus exposition.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "frame_encode_seconds_bucket") {
		t.Fatalf("wall histogram missing from exposition:\n%s", buf.String())
	}
	// Re-finding the family returns the same handle.
	if r.WallHistogram("frame_encode_seconds", "", nil).Count() != 1 {
		t.Fatal("WallHistogram re-lookup returned a fresh handle")
	}
}

func TestFamilyNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.Gauge("a_gauge", "")
	r.WallHistogram("c_seconds", "", ExpBuckets(1e-4, 4, 3))
	got := r.FamilyNames()
	want := []string{"a_gauge", "b_total", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("FamilyNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FamilyNames = %v, want %v", got, want)
		}
	}
	var nilReg *Registry
	if nilReg.FamilyNames() != nil {
		t.Fatal("nil registry FamilyNames not nil")
	}
}

// shortWriter writes at most one byte less than asked, returning nil
// error — an io.Writer contract violation the journal must latch.
type shortWriter struct{ n int }

func (w *shortWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	w.n += len(p) - 1
	return len(p) - 1, nil
}

type failWriter struct{ err error }

func (w *failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestJournalShortWriteLatched(t *testing.T) {
	j := NewJournal(&shortWriter{})
	j.Event("x")
	if !errors.Is(j.Err(), io.ErrShortWrite) {
		t.Fatalf("Err() = %v, want io.ErrShortWrite", j.Err())
	}
	// Latched: later writes are suppressed, error sticks.
	j.Event("y")
	if !errors.Is(j.Err(), io.ErrShortWrite) {
		t.Fatalf("latched error replaced: %v", j.Err())
	}
	if err := j.IngestLine([]byte(`{"kind":"event"}`), "v", 0); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("IngestLine after latched error = %v", err)
	}
}

func TestJournalClosedWriterLatched(t *testing.T) {
	werr := errors.New("file already closed")
	j := NewJournal(&failWriter{err: werr})
	sp := j.Begin("phase")
	sp.End()
	if !errors.Is(j.Err(), werr) {
		t.Fatalf("Err() = %v, want %v", j.Err(), werr)
	}
	if err := j.IngestLine([]byte(`{"kind":"event","t_ms":1}`), "v", 0); !errors.Is(err, werr) {
		t.Fatalf("IngestLine = %v, want %v", err, werr)
	}
	// Short write on IngestLine's own path latches too.
	j2 := NewJournal(&shortWriter{})
	if err := j2.IngestLine([]byte(`{"kind":"event","t_ms":1}`), "v", 0); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("IngestLine short write = %v", err)
	}
}

func TestStartHeartbeatStopCeases(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	stop := StartHeartbeat(j, time.Millisecond, nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		j.mu.Lock()
		n := buf.Len()
		j.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	j.mu.Lock()
	n := buf.Len()
	j.mu.Unlock()
	if n == 0 {
		t.Fatal("no heartbeat before stop")
	}
	// After stop returns, the goroutine may complete at most one
	// already-fired tick; wait it out, then require silence.
	time.Sleep(20 * time.Millisecond)
	j.mu.Lock()
	n = buf.Len()
	j.mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	j.mu.Lock()
	after := buf.Len()
	j.mu.Unlock()
	if after != n {
		t.Fatalf("heartbeats kept flowing after stop: %d -> %d bytes", n, after)
	}
	stop() // idempotent
	if got := StartHeartbeat(nil, time.Millisecond, nil); got == nil {
		t.Fatal("nil journal StartHeartbeat returned nil stop")
	}
	if got := StartHeartbeat(j, 0, nil); got == nil {
		t.Fatal("non-positive interval StartHeartbeat returned nil stop")
	}
}

func TestTimeOrder(t *testing.T) {
	in := strings.Join([]string{
		`{"kind":"event","t_ms":5,"name":"late","src":"collector"}`,
		`{"kind":"event","t_ms":2,"name":"early","src":"v0"}`,
		`{"kind":"event","t_ms":5,"name":"tie","src":"v1"}`,
	}, "\n")
	got, err := TimeOrder(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d lines", len(got))
	}
	if !strings.Contains(got[0], "early") {
		t.Fatalf("not time-ordered: %v", got)
	}
	// Stable: equal t_ms keeps file order.
	if !strings.Contains(got[1], "late") || !strings.Contains(got[2], "tie") {
		t.Fatalf("tie order not stable: %v", got)
	}
}

func TestWriteTimeline(t *testing.T) {
	var ebuf bytes.Buffer
	em := NewJournal(&ebuf)
	sp := em.Begin("simulate", A("node", 0))
	em.Heartbeat()
	em.Heartbeat()
	sp.End()
	r := NewRegistry()
	r.Counter("engine_arrivals_total", "").Add(42)
	em.Metrics(r)

	var fbuf bytes.Buffer
	fleet := NewJournal(&fbuf)
	fleet.SetSource("collector")
	cs := fleet.Begin("collect")
	for _, line := range strings.Split(strings.TrimSpace(ebuf.String()), "\n") {
		if err := fleet.IngestLine([]byte(line), "vantage0", 1.5); err != nil {
			t.Fatal(err)
		}
	}
	fleet.EventSrc("collector/vantage0", "input_stalled", A("input", "vantage0"))
	cs.End()

	var out bytes.Buffer
	if err := WriteTimeline(&out, bytes.NewReader(fbuf.Bytes()), TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"3 lanes",
		"lane collector:",
		"lane collector/vantage0:",
		"lane vantage0:",
		"> simulate node=0",
		"< simulate dur=",
		"! input_stalled",
		"2 heartbeats",
		"metrics rollup:",
		"engine_arrivals_total = 42",
		"> collect",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("timeline missing %q:\n%s", want, s)
		}
	}

	var empty bytes.Buffer
	if err := WriteTimeline(&empty, strings.NewReader(""), TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "empty journal") {
		t.Fatalf("empty journal render: %q", empty.String())
	}
}

func TestWriteTimelineGapAnnotation(t *testing.T) {
	in := strings.Join([]string{
		`{"kind":"event","t_ms":0,"name":"a"}`,
		`{"kind":"event","t_ms":5000,"name":"b"}`,
	}, "\n")
	var out bytes.Buffer
	if err := WriteTimeline(&out, strings.NewReader(in), TimelineOptions{GapMs: 1000}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "~ gap 5.00s") {
		t.Fatalf("gap annotation missing:\n%s", out.String())
	}
	out.Reset()
	if err := WriteTimeline(&out, strings.NewReader(in), TimelineOptions{GapMs: -1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "~ gap") {
		t.Fatalf("gap annotation printed with annotations disabled:\n%s", out.String())
	}
}
