// Package obs is the repository's dependency-free observability layer:
// a concurrency-safe metrics registry, phase/span tracing with a JSONL
// run journal, Prometheus text exposition, and the shared HTTP surface
// (with optional net/http/pprof) every long-running command mounts.
//
// # Handles and the overhead contract
//
// All instrumentation flows through one *Observer handle threaded into
// configs (engine.Config.Obs, p2pquery.RunConfig.Obs,
// ingest.CollectorConfig.Obs, …). Every method on Observer, Registry,
// Journal, Span, Counter, Gauge and Histogram is nil-receiver safe, so
// production code is instrumented unconditionally and the disabled path
// costs a nil check per call site — no branches on "is observability
// on", no interface dispatch, no allocation. The enabled hot path is one
// atomic op per counter/gauge update (histograms: two atomics plus a CAS
// accumulate). `make obs-overhead` gates this contract in CI: the
// engine/stream benchmarks run instrumented-but-disabled and must land
// within benchmark noise of the pre-obs baseline, and the merged-trace
// byte-identity (full-scale SHA-256) is untouched because
// instrumentation never perturbs RNG streams or scheduling order.
//
// # Metric naming conventions
//
// Names are snake_case with a subsystem prefix matching the package that
// owns the value: engine_* (arrival/scheduler facts), merge_* (the
// streaming k-way merge), ingest_* (collector) / emitter_* (vantage
// emitters), online_* (stream.Online sketches), gnutellad_* (daemon),
// scenario_check_* (declarative-spec check results) and process_*
// (RSS/heap/goroutines). Counters end in _total; gauges are bare nouns;
// histograms carry a unit suffix (_seconds). Per-entity breakdowns use
// labels (input="3", metric="under64_share"), never name splicing.
//
// Scrape-time values that depend on the wall clock or the host — RSS,
// snapshot ages, liveness states — are GaugeFuncs: they appear in the
// Prometheus exposition but are excluded from Registry.Samples and
// therefore from journal metric snapshots, which keeps the journal a
// deterministic function of the run. Wall-clock histograms (per-frame
// codec time, ack RTTs — Registry.WallHistogram) get the same split:
// exposition and the journal's "latency" snapshot carry them, the
// deterministic metrics snapshot does not.
//
// dashboards/p2pquery.json charts every family across these
// subsystems; dashboard_test.go at the repo root pins its panel exprs
// against a live registry's FamilyNames in both directions, so a
// rename or an uncharted new family fails `go test .`.
//
// # Journal schema
//
// A Journal is JSONL, one self-contained object per line, ordered by
// emission under one mutex. Common fields: "kind", "t_ms"
// (monotonic-clock milliseconds since the journal opened) and an
// optional "src" lane (see below). Kinds:
//
//	span_start  {kind,t_ms,src?,id,parent?,name,attrs?}
//	span_end    {kind,t_ms,src?,id,name,dur_ms,attrs?}
//	event       {kind,t_ms,src?,name,attrs?}        discrete transitions
//	                                                (input_stalled, input_evicted,
//	                                                input_recovered, scenario_check…)
//	heartbeat   {kind,t_ms,src?,attrs?}             periodic progress
//	metrics     {kind,t_ms,src?,samples{name:val}}  registry snapshot
//	latency     {kind,t_ms,src?,samples{name:val}}  wall-histogram snapshot
//
// Span ids are sequential and parent links give the phase tree
// (partition → simulate → merge → characterize on the batch path).
// Canonical(r) normalizes a journal for determinism comparison: it
// drops heartbeat and latency lines, strips t_ms/dur_ms, and
// stable-sorts the survivors by src lane, leaving span structure,
// per-lane ordering, attributes and metric values — two runs of the
// same spec must compare equal (pinned by TestJournalDeterminism… at
// paper40d smoke scale, and fleet-wide by `make distfleet-smoke`).
//
// # Fleet journals and lanes
//
// One journal can hold many processes' records. SetSource stamps every
// locally written line with a lane name; IngestLine appends a line
// produced by another process's journal, stamping its lane and
// rebasing its t_ms by a clock offset the caller derived (internal/
// ingest does this for shipped emitter journals, offset-sampled from
// the connection handshake). The result is a single time-ordered fleet
// journal where the collector's "collector" lane, its per-input
// "collector/<source>" liveness lanes, and each emitter's own
// "vantage<N>" lane interleave on one clock. Render it with
//
//	go run ./cmd/analyze -timeline fleet.jsonl
//
// which prints per-lane span/event timelines with durations, heartbeat
// compression, gap markers and final metric/latency rollups.
//
// # HTTP surface
//
// NewHTTPHandler serves Prometheus text at /metrics (Content-Type
// version=0.0.4), each daemon's pre-existing JSON payload at
// /metrics.json, and — behind a -pprof flag — net/http/pprof under
// /debug/pprof/ for profiling the hot paths the ROADMAP targets.
package obs
