package obs

// Observer bundles the two observability surfaces — the metrics registry
// and the run journal — into the single handle instrumented code is
// handed. Either half may be nil independently, and a nil *Observer is
// fully inert: every method (and every handle it returns) no-ops, so
// production paths carry instrumentation unconditionally and pay only a
// nil check when observability is not installed.
type Observer struct {
	Metrics *Registry
	Journal *Journal
}

// Reg returns the registry (nil-safe).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Log returns the journal (nil-safe).
func (o *Observer) Log() *Journal {
	if o == nil {
		return nil
	}
	return o.Journal
}

// Counter registers a counter on the observer's registry.
func (o *Observer) Counter(name, help string, labels ...Label) *Counter {
	return o.Reg().Counter(name, help, labels...)
}

// Gauge registers a gauge on the observer's registry.
func (o *Observer) Gauge(name, help string, labels ...Label) *Gauge {
	return o.Reg().Gauge(name, help, labels...)
}

// Histogram registers a histogram on the observer's registry.
func (o *Observer) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return o.Reg().Histogram(name, help, buckets, labels...)
}

// WallHistogram registers an exposition-only wall-clock histogram on
// the observer's registry (see Registry.WallHistogram).
func (o *Observer) WallHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return o.Reg().WallHistogram(name, help, buckets, labels...)
}

// GaugeFunc registers a scrape-time gauge on the observer's registry.
func (o *Observer) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	o.Reg().GaugeFunc(name, help, fn, labels...)
}

// Begin opens a top-level span on the observer's journal.
func (o *Observer) Begin(name string, attrs ...Attr) *Span {
	return o.Log().Begin(name, attrs...)
}

// Event writes a discrete event to the observer's journal.
func (o *Observer) Event(name string, attrs ...Attr) {
	o.Log().Event(name, attrs...)
}

// EventSrc writes a discrete event into an explicit src lane on the
// observer's journal (see Journal.EventSrc).
func (o *Observer) EventSrc(src, name string, attrs ...Attr) {
	o.Log().EventSrc(src, name, attrs...)
}

// SnapshotMetrics writes the registry's deterministic state as one
// journal metrics line.
func (o *Observer) SnapshotMetrics() {
	if o == nil {
		return
	}
	o.Journal.Metrics(o.Metrics)
}

// SnapshotLatency writes the registry's wall-clock histogram state as
// one journal latency line (see Journal.Latency).
func (o *Observer) SnapshotLatency() {
	if o == nil {
		return
	}
	o.Journal.Latency(o.Metrics)
}
