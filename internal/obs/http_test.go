package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPHandlerPrometheusAndLegacy(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "served requests").Add(3)
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"requests": 3})
	})
	h := NewHTTPHandler(HTTPConfig{Registry: reg, LegacyJSON: legacy, Pprof: true})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != ContentTypePrometheus {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "# TYPE requests_total counter\n") ||
		!strings.Contains(body, "requests_total 3\n") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
	var legacyBody map[string]int
	if err := json.Unmarshal(rr.Body.Bytes(), &legacyBody); err != nil {
		t.Fatalf("legacy payload not JSON: %v", err)
	}
	if legacyBody["requests"] != 3 {
		t.Fatalf("legacy payload = %v", legacyBody)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rr.Code)
	}
}

func TestHTTPHandlerPprofDisabledByDefault(t *testing.T) {
	h := NewHTTPHandler(HTTPConfig{Registry: NewRegistry()})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("pprof served without flag: status %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics.json", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("legacy endpoint without handler: status %d", rr.Code)
	}
}
