package obs

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size from
// /proc/self/status (VmHWM), or 0 where the proc filesystem is
// unavailable — callers then simply report no memory figure.
func PeakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// RegisterProcessMetrics exposes the standard process-level scrape-time
// gauges on reg: peak RSS, live heap bytes, and goroutine count. All are
// GaugeFuncs, so they appear in /metrics but never in journal metric
// snapshots (they are wall-clock/host-dependent, not run facts).
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("process_peak_rss_bytes",
		"peak resident set size (VmHWM) of this process",
		func() float64 { return float64(PeakRSSBytes()) })
	reg.GaugeFunc("process_heap_live_bytes",
		"live heap bytes (runtime.MemStats.HeapAlloc)",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("process_goroutines",
		"current goroutine count",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
