package obs

import (
	"net/http"
	"net/http/pprof"
)

// ContentTypePrometheus is the Content-Type of the Prometheus text
// exposition format served at /metrics.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// HTTPConfig configures the shared observability HTTP surface.
type HTTPConfig struct {
	// Registry backs /metrics (Prometheus text). nil serves an empty
	// (still valid) exposition.
	Registry *Registry
	// LegacyJSON, when non-nil, is mounted at /metrics.json — the
	// pre-Prometheus JSON payload each daemon used to serve at /metrics,
	// preserved for compatibility.
	LegacyJSON http.Handler
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHTTPHandler builds the shared observability mux: Prometheus text at
// /metrics, the daemon's legacy JSON at /metrics.json, and (behind the
// Pprof flag) the standard profiling endpoints under /debug/pprof/.
func NewHTTPHandler(cfg HTTPConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		_ = cfg.Registry.WritePrometheus(w)
	})
	if cfg.LegacyJSON != nil {
		mux.Handle("/metrics.json", cfg.LegacyJSON)
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
