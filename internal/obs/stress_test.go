package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestRegistryConcurrentStress hammers one registry from writer
// goroutines (counters, gauges, histograms — the engine/merge hot-path
// shape), Prometheus scrapers, journal metric flushes, and concurrent
// re-registrations, all at once. Run under -race by CI's race-stress
// step; correctness check: counters must not lose increments.
func TestRegistryConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(io.Discard)
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: Prometheus exposition while writes are in flight.
	for range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = reg.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	// Journal flushers: metric snapshots while writes are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				j.Metrics(reg)
			}
		}
	}()

	var writersWG sync.WaitGroup
	for g := range writers {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			// Re-register handles mid-flight, as per-node goroutines do.
			c := reg.Counter("stress_arrivals_total", "")
			gg := reg.Gauge("stress_pending", "")
			h := reg.Histogram("stress_dur_seconds", "", ExpBuckets(1, 4, 6))
			lc := reg.Counter("stress_node_total", "", L("node", strconv.Itoa(g)))
			for i := range perG {
				c.Inc()
				lc.Inc()
				gg.Set(float64(i))
				gg.Add(1)
				h.Observe(float64(i % 100))
				if i%512 == 0 {
					c = reg.Counter("stress_arrivals_total", "")
				}
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	if got := reg.Counter("stress_arrivals_total", "").Value(); got != writers*perG {
		t.Fatalf("lost counter increments: %d, want %d", got, writers*perG)
	}
	if got := reg.Histogram("stress_dur_seconds", "", nil).Count(); got != writers*perG {
		t.Fatalf("lost histogram observations: %d, want %d", got, writers*perG)
	}
	for g := range writers {
		if got := reg.Counter("stress_node_total", "", L("node", strconv.Itoa(g))).Value(); got != perG {
			t.Fatalf("node %d counter = %d, want %d", g, got, perG)
		}
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalConcurrentWriters checks every journal line stays a
// self-contained parseable JSON object when spans, events and metric
// snapshots race from many goroutines.
func TestJournalConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	reg := NewRegistry()
	reg.Counter("c_total", "").Inc()
	var wg sync.WaitGroup
	for g := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 200 {
				sp := j.Begin("phase", A("g", g), A("i", i))
				sp.Child("sub").End()
				sp.End()
				j.Event("tick", A("g", g))
				j.Metrics(reg)
			}
		}()
	}
	wg.Wait()
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines, err := Canonical(&buf)
	if err != nil {
		t.Fatalf("interleaved journal corrupt: %v", err)
	}
	// 8 goroutines × 200 iterations × (2 starts + 2 ends + 1 event + 1 metrics).
	if want := 8 * 200 * 6; len(lines) != want {
		t.Fatalf("got %d journal lines, want %d", len(lines), want)
	}
}
