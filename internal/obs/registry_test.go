package obs

import (
	"strings"
	"testing"
)

func TestNilHandlesAreInert(t *testing.T) {
	var r *Registry
	var o *Observer
	var j *Journal

	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
	h := r.Histogram("x_seconds", "", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not inert")
	}
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if got := r.Samples(); got != nil {
		t.Fatalf("nil registry samples = %v", got)
	}
	if v := r.Value("x", 42); v != 42 {
		t.Fatalf("nil registry Value fallback = %v", v)
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}

	o.Counter("x_total", "").Inc()
	o.Gauge("x", "").Set(1)
	o.Event("e")
	o.SnapshotMetrics()
	sp := o.Begin("phase")
	sp.Child("sub").End()
	sp.End()

	j.Event("e")
	j.Heartbeat()
	j.Metrics(nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	StartHeartbeat(nil, 0, nil)()
}

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("arrivals_total", "help", L("node", "1"))
	b := r.Counter("arrivals_total", "other help", L("node", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counter handles")
	}
	c := r.Counter("arrivals_total", "", L("node", "2"))
	if a == c {
		t.Fatal("distinct label sets shared a handle")
	}
	if g1, g2 := r.Gauge("pending", ""), r.Gauge("pending", ""); g1 != g2 {
		t.Fatal("gauge handles not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("arrivals_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "session durations", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 0.9, 2, 10, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 113.4 {
		t.Fatalf("sum = %v", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dur_seconds session durations",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="1"} 2`,
		`dur_seconds_bucket{le="4"} 3`,
		`dur_seconds_bucket{le="16"} 4`,
		`dur_seconds_bucket{le="+Inf"} 5`,
		"dur_seconds_sum 113.4",
		"dur_seconds_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Gauge("z_last", "").Set(1)
		r.Counter("a_first_total", "", L("b", "2"), L("a", "1")).Inc()
		r.Counter("a_first_total", "", L("a", "1"), L("b", "1")).Add(2)
		r.GaugeFunc("m_func", "", func() float64 { return 7 })
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("exposition not deterministic:\n%s\n--vs--\n%s", a, b)
	}
	// Families sorted by name, series sorted by rendered (key-sorted) labels.
	wantOrder := []string{
		`a_first_total{a="1",b="1"} 2`,
		`a_first_total{a="1",b="2"} 1`,
		`m_func 7`,
		`z_last 1`,
	}
	last := -1
	for _, w := range wantOrder {
		i := strings.Index(a, w)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", w, a)
		}
		if i < last {
			t.Fatalf("out of order: %q in:\n%s", w, a)
		}
		last = i
	}
}

func TestSamplesExcludeGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(2)
	r.GaugeFunc("volatile_rss", "", func() float64 { return 1e9 })
	got := map[string]float64{}
	for _, s := range r.Samples() {
		got[s.Name] = s.Value
	}
	want := map[string]float64{"c_total": 3, "g": 1.5, "h_seconds_sum": 2, "h_seconds_count": 1}
	if len(got) != len(want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("sample %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestRegistryValueFallback(t *testing.T) {
	r := NewRegistry()
	r.Gauge("present", "").Set(9)
	if v := r.Value("present", -1); v != 9 {
		t.Fatalf("Value(present) = %v", v)
	}
	if v := r.Value("absent", -1); v != -1 {
		t.Fatalf("Value(absent) = %v", v)
	}
	// Labeled-only family has no unlabeled series: fallback applies.
	r.Counter("labeled_total", "", L("k", "v")).Inc()
	if v := r.Value("labeled_total", -1); v != -1 {
		t.Fatalf("Value(labeled_total) = %v", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "", L("k", "a\"b\\c\nd")).Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}
