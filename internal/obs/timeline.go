package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// tlLine is one parsed journal line plus its original file position,
// kept so sorts can stay stable with respect to write order.
type tlLine struct {
	kind    string
	src     string
	name    string
	t       float64
	dur     float64
	id      uint64
	attrs   map[string]any
	samples map[string]float64
	raw     string
	pos     int
}

func parseJournal(r io.Reader) ([]tlLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []tlLine
	ln := 0
	for sc.Scan() {
		ln++
		raw := sc.Text()
		if strings.TrimSpace(raw) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", ln, err)
		}
		l := tlLine{raw: raw, pos: len(out)}
		l.kind, _ = m["kind"].(string)
		l.src, _ = m["src"].(string)
		l.name, _ = m["name"].(string)
		l.t, _ = m["t_ms"].(float64)
		l.dur, _ = m["dur_ms"].(float64)
		if id, ok := m["id"].(float64); ok {
			l.id = uint64(id)
		}
		if a, ok := m["attrs"].(map[string]any); ok {
			l.attrs = a
		}
		if s, ok := m["samples"].(map[string]any); ok {
			l.samples = make(map[string]float64, len(s))
			for k, v := range s {
				if f, ok := v.(float64); ok {
					l.samples[k] = f
				}
			}
		}
		out = append(out, l)
	}
	return out, sc.Err()
}

// TimeOrder reads a JSONL journal and returns its raw lines stable-sorted
// by t_ms. The collector's fleet journal is written in arrival order
// (crash-safe append of whatever lands next), so shipped lines from a
// slow input can appear after later local ones; TimeOrder restores the
// collector-normalized time axis, producing the single time-ordered
// stream the fleet-journal artifact and the timeline renderer consume.
func TimeOrder(r io.Reader) ([]string, error) {
	lines, err := parseJournal(r)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(lines, func(i, k int) bool { return lines[i].t < lines[k].t })
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.raw
	}
	return out, nil
}

// TimelineOptions tunes WriteTimeline rendering.
type TimelineOptions struct {
	// GapMs is the intra-lane silence (milliseconds between consecutive
	// lines) above which a gap annotation is printed. Zero means the
	// default of 1000 ms; negative disables gap annotations.
	GapMs float64
}

// WriteTimeline reads a (single-process or fleet) JSONL journal and
// renders a human-readable account of the run: one lane per src, lines
// in time order, span open/close markers with measured durations,
// stall/evict events flagged, runs of heartbeats collapsed to one line,
// intra-lane silences above opts.GapMs annotated, and each lane's final
// metrics / latency snapshots rolled up at the bottom of the lane.
func WriteTimeline(w io.Writer, r io.Reader, opts TimelineOptions) error {
	gap := opts.GapMs
	if gap == 0 {
		gap = 1000
	}
	lines, err := parseJournal(r)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		_, err := fmt.Fprintln(w, "empty journal")
		return err
	}
	lanes := make(map[string][]tlLine)
	var order []string
	minT, maxT := lines[0].t, lines[0].t
	for _, l := range lines {
		if _, ok := lanes[l.src]; !ok {
			order = append(order, l.src)
		}
		lanes[l.src] = append(lanes[l.src], l)
		if l.t < minT {
			minT = l.t
		}
		if l.t > maxT {
			maxT = l.t
		}
	}
	sort.Strings(order)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "fleet timeline: %d lanes, %d lines, %s – %s\n",
		len(order), len(lines), fmtMs(minT), fmtMs(maxT))
	for _, src := range order {
		ll := lanes[src]
		sort.SliceStable(ll, func(i, k int) bool { return ll[i].t < ll[k].t })
		label := src
		if label == "" {
			label = "(main)"
		}
		fmt.Fprintf(bw, "\nlane %s: %d lines\n", label, len(ll))
		writeLane(bw, ll, gap)
	}
	return bw.Flush()
}

func writeLane(w io.Writer, ll []tlLine, gap float64) {
	var lastMetrics, lastLatency map[string]float64
	prevT := ll[0].t
	hb := 0 // pending collapsed heartbeats
	var hbFirst, hbLast float64
	flushHB := func() {
		if hb == 0 {
			return
		}
		fmt.Fprintf(w, "  %10s  * %d heartbeats through %s\n", fmtMs(hbFirst), hb, fmtMs(hbLast))
		hb = 0
	}
	for _, l := range ll {
		if gap > 0 && l.t-prevT > gap {
			flushHB()
			fmt.Fprintf(w, "  %10s  ~ gap %s\n", fmtMs(prevT), fmtMs(l.t-prevT))
		}
		prevT = l.t
		if l.kind == "heartbeat" {
			if hb == 0 {
				hbFirst = l.t
			}
			hbLast = l.t
			hb++
			continue
		}
		flushHB()
		switch l.kind {
		case "span_start":
			fmt.Fprintf(w, "  %10s  > %s%s\n", fmtMs(l.t), l.name, fmtAttrs(l.attrs))
		case "span_end":
			fmt.Fprintf(w, "  %10s  < %s dur=%s%s\n", fmtMs(l.t), l.name, fmtMs(l.dur), fmtAttrs(l.attrs))
		case "event":
			mark := "."
			switch l.name {
			case "input_stalled", "input_evicted":
				mark = "!"
			case "input_recovered", "input_done":
				mark = "+"
			}
			fmt.Fprintf(w, "  %10s  %s %s%s\n", fmtMs(l.t), mark, l.name, fmtAttrs(l.attrs))
		case "metrics":
			lastMetrics = l.samples
			fmt.Fprintf(w, "  %10s  = metrics snapshot (%d samples)\n", fmtMs(l.t), len(l.samples))
		case "latency":
			lastLatency = l.samples
			fmt.Fprintf(w, "  %10s  = latency snapshot (%d samples)\n", fmtMs(l.t), len(l.samples))
		default:
			fmt.Fprintf(w, "  %10s  ? %s\n", fmtMs(l.t), l.kind)
		}
	}
	flushHB()
	writeRollup(w, "metrics", lastMetrics)
	writeRollup(w, "latency", lastLatency)
}

func writeRollup(w io.Writer, what string, samples map[string]float64) {
	if len(samples) == 0 {
		return
	}
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  %s rollup:\n", what)
	for _, n := range names {
		fmt.Fprintf(w, "    %s = %s\n", n, formatFloat(samples[n]))
	}
}

func fmtAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%v", k, attrs[k])
	}
	return sb.String()
}

func fmtMs(ms float64) string {
	switch {
	case ms >= 60_000:
		return fmt.Sprintf("%.1fm", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	default:
		return fmt.Sprintf("%.1fms", ms)
	}
}
