package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Values are free-form; keys follow the
// Prometheus label grammar ([a-zA-Z_][a-zA-Z0-9_]*).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero receiver (a nil
// *Counter, handed out by a nil *Registry) is a no-op on every method, so
// instrumented code never branches on "is observability installed".
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Stored as float64 bits in an
// atomic word; Add is a CAS loop. Nil receivers are no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// `le`-semantics: bucket i counts observations ≤ upper[i], with a final
// +Inf bucket). All hot-path operations are atomic; nil receivers no-op.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := sort.SearchFloat64s(h.upper, v); i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor, for Registry.Histogram.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type series struct {
	labelStr string // rendered `k="v",…` with keys sorted; "" when unlabeled
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	fn       func() float64
}

type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	wall    bool // wall-clock histogram: exposition-only, see WallHistogram
	series  map[string]*series
}

// Registry is a concurrency-safe metric registry. Registration (the
// Counter/Gauge/Histogram/GaugeFunc lookups) takes a mutex and is
// idempotent — the same name + label set returns the same handle — while
// the handles themselves are lock-free atomics, so the instrumented hot
// path pays one atomic op per update. A nil *Registry hands out nil
// handles whose methods no-op, making disabled observability near-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labelStr: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{upper: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets))
			s.hist = h
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or re-finds) a counter. Nil registries return nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge registers (or re-finds) a gauge. Nil registries return nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// Histogram registers (or re-finds) a fixed-bucket histogram. The bucket
// schema is set by the first registration of the family; later lookups
// ignore their buckets argument. Nil registries return nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	sort.Float64s(up)
	return r.lookup(name, help, kindHistogram, up, labels).hist
}

// WallHistogram registers (or re-finds) a histogram whose observations
// are wall-clock measurements — per-frame encode/decode time, ack
// round-trips, anything timed with a real clock. Like GaugeFuncs, wall
// histograms are exposition-only: they appear in WritePrometheus but
// are excluded from Samples (and therefore from journal metric
// snapshots), because their sums and counts differ run to run and
// would break the journal's canonical determinism. Journal.Latency
// snapshots them onto a dedicated latency line instead (itself dropped
// by Canonical). The wall/deterministic split is fixed by the first
// registration of the family. Nil registries return nil.
func (r *Registry) WallHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	sort.Float64s(up)
	r.mu.Lock()
	if f := r.families[name]; f == nil {
		f = &family{name: name, help: help, kind: kindHistogram, buckets: up, wall: true, series: make(map[string]*series)}
		r.families[name] = f
	}
	r.mu.Unlock()
	return r.lookup(name, help, kindHistogram, up, labels).hist
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Funcs are exposition-only: they appear in WritePrometheus but are
// excluded from Samples (and therefore from journal metric snapshots),
// which keeps wall-clock-dependent values — RSS, ages, live health — out
// of the deterministic run record. Nil registries no-op.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Sample is one flattened metric value for journal snapshots.
type Sample struct {
	Name  string
	Value float64
}

// famView / seriesView are a point-in-time copy of the registry's
// *structure* — family metadata, sorted series, handle pointers and
// GaugeFunc callbacks — taken in one critical section so scrapes never
// iterate a series map that concurrent registration is growing. The
// handles themselves stay lock-free atomics; their values are read (and
// fns called) after the lock is released.
type famView struct {
	name   string
	help   string
	kind   metricKind
	wall   bool
	series []seriesView
}

type seriesView struct {
	labelStr string
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	fn       func() float64
}

func (r *Registry) view() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := sortedFamilies(r.families)
	out := make([]famView, len(fams))
	for i, f := range fams {
		ss := sortedSeries(f.series)
		sv := make([]seriesView, len(ss))
		for j, s := range ss {
			sv[j] = seriesView{labelStr: s.labelStr, counter: s.counter, gauge: s.gauge, hist: s.hist, fn: s.fn}
		}
		out[i] = famView{name: f.name, help: f.help, kind: f.kind, wall: f.wall, series: sv}
	}
	return out
}

// Samples flattens the deterministic metric state — counters, gauges and
// histograms (as name_sum / name_count), not GaugeFuncs and not wall
// histograms — sorted by name then label set. Labeled series render as
// name{k="v"}.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.view() {
		if f.wall {
			continue
		}
		for _, s := range f.series {
			full := f.name
			if s.labelStr != "" {
				full += "{" + s.labelStr + "}"
			}
			switch f.kind {
			case kindCounter:
				out = append(out, Sample{full, float64(s.counter.Value())})
			case kindGauge:
				out = append(out, Sample{full, s.gauge.Value()})
			case kindHistogram:
				sumName, cntName := f.name+"_sum", f.name+"_count"
				if s.labelStr != "" {
					sumName += "{" + s.labelStr + "}"
					cntName += "{" + s.labelStr + "}"
				}
				out = append(out,
					Sample{sumName, s.hist.Sum()},
					Sample{cntName, float64(s.hist.Count())})
			}
		}
	}
	return out
}

// WallSamples flattens the wall-clock histogram families (registered
// via WallHistogram) as name_sum / name_count pairs, sorted by name
// then label set — the complement of Samples. Journal.Latency snapshots
// these onto the journal's latency line.
func (r *Registry) WallSamples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.view() {
		if !f.wall {
			continue
		}
		for _, s := range f.series {
			sumName, cntName := f.name+"_sum", f.name+"_count"
			if s.labelStr != "" {
				sumName += "{" + s.labelStr + "}"
				cntName += "{" + s.labelStr + "}"
			}
			out = append(out,
				Sample{sumName, s.hist.Sum()},
				Sample{cntName, float64(s.hist.Count())})
		}
	}
	return out
}

// FamilyNames returns every registered family name, sorted. Dashboards
// pin their panel queries against this set so a metric rename cannot
// silently orphan a panel.
func (r *Registry) FamilyNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Value returns the current value of the (unlabeled) series of the named
// family, or fallback when the family or series was never registered.
// Histogram families return their observation count.
func (r *Registry) Value(name string, fallback float64) float64 {
	if r == nil {
		return fallback
	}
	r.mu.Lock()
	var sv seriesView
	if f := r.families[name]; f != nil {
		if s := f.series[""]; s != nil {
			sv = seriesView{counter: s.counter, gauge: s.gauge, hist: s.hist, fn: s.fn}
		}
	}
	r.mu.Unlock()
	switch {
	case sv.counter != nil:
		return float64(sv.counter.Value())
	case sv.gauge != nil:
		return sv.gauge.Value()
	case sv.hist != nil:
		return float64(sv.hist.Count())
	case sv.fn != nil:
		return sv.fn()
	}
	return fallback
}

func sortedFamilies(m map[string]*family) []*family {
	fams := make([]*family, 0, len(m))
	for _, f := range m {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func sortedSeries(m map[string]*series) []*series {
	ss := make([]*series, 0, len(m))
	for _, s := range m {
		ss = append(ss, s)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].labelStr < ss[j].labelStr })
	return ss
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, families and series in
// deterministic sorted order, histograms as cumulative _bucket{le=…}
// series plus _sum and _count. A nil registry writes nothing (a valid,
// empty exposition).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.view() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func writeSeries(w io.Writer, f famView, s seriesView) error {
	name := func(suffix, extraLabels string) string {
		var sb strings.Builder
		sb.WriteString(f.name)
		sb.WriteString(suffix)
		if s.labelStr != "" || extraLabels != "" {
			sb.WriteByte('{')
			sb.WriteString(s.labelStr)
			if s.labelStr != "" && extraLabels != "" {
				sb.WriteByte(',')
			}
			sb.WriteString(extraLabels)
			sb.WriteByte('}')
		}
		return sb.String()
	}
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", name("", ""), s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", name("", ""), formatFloat(s.gauge.Value()))
		return err
	case kindGaugeFunc:
		v := 0.0
		if s.fn != nil {
			v = s.fn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", name("", ""), formatFloat(v))
		return err
	case kindHistogram:
		h := s.hist
		var cum uint64
		for i, up := range h.upper {
			cum += h.counts[i].Load()
			le := fmt.Sprintf(`le="%s"`, formatFloat(up))
			if _, err := fmt.Fprintf(w, "%s %d\n", name("_bucket", le), cum); err != nil {
				return err
			}
		}
		cum += h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", name("_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name("_sum", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", name("_count", ""), h.Count())
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
