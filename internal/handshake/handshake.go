// Package handshake implements the Gnutella v0.6 connection handshake: a
// three-way, HTTP-header-styled exchange
//
//	client:  GNUTELLA CONNECT/0.6\r\n<headers>\r\n
//	server:  GNUTELLA/0.6 200 OK\r\n<headers>\r\n
//	client:  GNUTELLA/0.6 200 OK\r\n<headers>\r\n
//
// The measurement study depends on one handshake header in particular:
// User-Agent, which identifies the client implementation and lets the
// filter attribute automated re-query behavior to specific software
// (Section 3.3 of the paper). X-Ultrapeer communicates peer mode, which
// Table 1 summarizes (≈40% ultrapeers, 60% leaves).
package handshake

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Protocol constants.
const (
	ConnectLine = "GNUTELLA CONNECT/0.6"
	okLine      = "GNUTELLA/0.6 200 OK"
	refuseLine  = "GNUTELLA/0.6 503 Service Unavailable"
)

// Well-known header names (canonical form).
const (
	HeaderUserAgent = "User-Agent"
	HeaderUltrapeer = "X-Ultrapeer"
	HeaderRemoteIP  = "Remote-IP"
	HeaderListenIP  = "Listen-IP"
)

// Errors returned by the handshake reader.
var (
	ErrBadRequest  = errors.New("handshake: malformed request line")
	ErrBadHeader   = errors.New("handshake: malformed header line")
	ErrRefused     = errors.New("handshake: remote refused connection")
	ErrHeadersSize = errors.New("handshake: headers exceed size limit")
)

// maxHeaderBytes bounds a header block; real clients send well under 1 KiB.
const maxHeaderBytes = 16 << 10

// Headers is an ordered, case-insensitive header collection. Order is
// preserved for faithful serialization; lookups canonicalize names.
type Headers struct {
	names  []string
	values map[string]string
}

// NewHeaders returns an empty header set.
func NewHeaders() *Headers {
	return &Headers{values: make(map[string]string)}
}

func canonical(name string) string {
	// HTTP-style canonicalization (Xxx-Yyy), applied to ASCII letters only:
	// header names are ASCII tokens on the wire, and byte-wise mapping keeps
	// the function idempotent even for garbage input.
	parts := strings.Split(strings.TrimSpace(name), "-")
	for i, p := range parts {
		b := []byte(p)
		for j := range b {
			if b[j] >= 'A' && b[j] <= 'Z' {
				b[j] += 'a' - 'A'
			}
		}
		if len(b) > 0 && b[0] >= 'a' && b[0] <= 'z' {
			b[0] -= 'a' - 'A'
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, "-")
}

// Set stores a header, replacing any prior value.
func (h *Headers) Set(name, value string) {
	c := canonical(name)
	if _, exists := h.values[c]; !exists {
		h.names = append(h.names, c)
	}
	h.values[c] = strings.TrimSpace(value)
}

// Get returns the header value, or "" when absent.
func (h *Headers) Get(name string) string {
	if h == nil || h.values == nil {
		return ""
	}
	return h.values[canonical(name)]
}

// Has reports whether the header is present.
func (h *Headers) Has(name string) bool {
	if h == nil || h.values == nil {
		return false
	}
	_, ok := h.values[canonical(name)]
	return ok
}

// Len returns the number of distinct headers.
func (h *Headers) Len() int { return len(h.names) }

// Names returns the header names in insertion order.
func (h *Headers) Names() []string {
	out := make([]string, len(h.names))
	copy(out, h.names)
	return out
}

// String renders the header block (without the trailing blank line), with
// headers in insertion order; useful in logs and tests.
func (h *Headers) String() string {
	var b strings.Builder
	for _, n := range h.names {
		fmt.Fprintf(&b, "%s: %s\r\n", n, h.values[n])
	}
	return b.String()
}

// sortedClone is used by tests that need deterministic comparison.
func (h *Headers) sortedClone() []string {
	out := make([]string, 0, len(h.names))
	for _, n := range h.names {
		out = append(out, n+": "+h.values[n])
	}
	sort.Strings(out)
	return out
}

// Request is the initiator's opening of the handshake.
type Request struct {
	Headers *Headers
}

// Response is either stage-two (acceptor) or stage-three (initiator ack).
type Response struct {
	Accept  bool
	Headers *Headers
}

// WriteRequest emits "GNUTELLA CONNECT/0.6" plus headers.
func WriteRequest(w io.Writer, req Request) error {
	return writeBlock(w, ConnectLine, req.Headers)
}

// WriteResponse emits the 200/503 status line plus headers.
func WriteResponse(w io.Writer, resp Response) error {
	line := okLine
	if !resp.Accept {
		line = refuseLine
	}
	return writeBlock(w, line, resp.Headers)
}

func writeBlock(w io.Writer, firstLine string, h *Headers) error {
	var b strings.Builder
	b.WriteString(firstLine)
	b.WriteString("\r\n")
	if h != nil {
		b.WriteString(h.String())
	}
	b.WriteString("\r\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadRequest parses the initiator's connect block.
func ReadRequest(r *bufio.Reader) (Request, error) {
	line, err := readLine(r)
	if err != nil {
		return Request{}, err
	}
	if line != ConnectLine {
		return Request{}, fmt.Errorf("%w: %q", ErrBadRequest, line)
	}
	h, err := readHeaders(r)
	if err != nil {
		return Request{}, err
	}
	return Request{Headers: h}, nil
}

// ReadResponse parses a status block from either handshake stage.
func ReadResponse(r *bufio.Reader) (Response, error) {
	line, err := readLine(r)
	if err != nil {
		return Response{}, err
	}
	var accept bool
	switch {
	case strings.HasPrefix(line, "GNUTELLA/0.6 200"):
		accept = true
	case strings.HasPrefix(line, "GNUTELLA/0.6 "):
		accept = false
	default:
		return Response{}, fmt.Errorf("%w: %q", ErrBadRequest, line)
	}
	h, err := readHeaders(r)
	if err != nil {
		return Response{}, err
	}
	return Response{Accept: accept, Headers: h}, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(r *bufio.Reader) (*Headers, error) {
	h := NewHeaders()
	total := 0
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > maxHeaderBytes {
			return nil, ErrHeadersSize
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadHeader, line)
		}
		h.Set(line[:colon], line[colon+1:])
	}
}

// Info is the negotiated result of a completed handshake.
type Info struct {
	UserAgent string
	Ultrapeer bool
}

// infoFrom extracts the fields this system records from a header set.
func infoFrom(h *Headers) Info {
	return Info{
		UserAgent: h.Get(HeaderUserAgent),
		Ultrapeer: strings.EqualFold(h.Get(HeaderUltrapeer), "true"),
	}
}

// Initiate performs the initiator's side of the three-way handshake over
// rw: send CONNECT, read the acceptor's response, acknowledge. It returns
// the acceptor's negotiated info.
func Initiate(rw io.ReadWriter, local *Headers) (Info, error) {
	if err := WriteRequest(rw, Request{Headers: local}); err != nil {
		return Info{}, err
	}
	br := bufio.NewReader(rw)
	resp, err := ReadResponse(br)
	if err != nil {
		return Info{}, err
	}
	if !resp.Accept {
		return Info{}, ErrRefused
	}
	if err := WriteResponse(rw, Response{Accept: true, Headers: NewHeaders()}); err != nil {
		return Info{}, err
	}
	return infoFrom(resp.Headers), nil
}

// Accept performs the acceptor's side over an established buffered reader
// and writer: read CONNECT, respond with local headers, read the ack. It
// returns the initiator's negotiated info. The caller supplies the
// bufio.Reader so that bytes buffered beyond the handshake (pipelined
// Gnutella messages) are not lost.
func Accept(br *bufio.Reader, w io.Writer, local *Headers) (Info, error) {
	req, err := ReadRequest(br)
	if err != nil {
		return Info{}, err
	}
	if err := WriteResponse(w, Response{Accept: true, Headers: local}); err != nil {
		return Info{}, err
	}
	ack, err := ReadResponse(br)
	if err != nil {
		return Info{}, err
	}
	if !ack.Accept {
		return Info{}, ErrRefused
	}
	// Stage-three headers may refine stage-one; merge with stage-three
	// winning, matching deployed client behavior.
	merged := NewHeaders()
	for _, n := range req.Headers.names {
		merged.Set(n, req.Headers.values[n])
	}
	for _, n := range ack.Headers.names {
		merged.Set(n, ack.Headers.values[n])
	}
	return infoFrom(merged), nil
}

// Refuse rejects an incoming handshake with 503 after reading the request.
func Refuse(br *bufio.Reader, w io.Writer) error {
	if _, err := ReadRequest(br); err != nil {
		return err
	}
	return WriteResponse(w, Response{Accept: false, Headers: NewHeaders()})
}
