package handshake

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadRequest throws arbitrary text at the handshake reader; it must
// never panic, and anything it accepts must serialize back to a form it
// accepts again.
func FuzzReadRequest(f *testing.F) {
	f.Add(ConnectLine + "\r\nUser-Agent: LimeWire/3.8.10\r\nX-Ultrapeer: True\r\n\r\n")
	f.Add(ConnectLine + "\r\n\r\n")
	f.Add("GET / HTTP/1.1\r\n\r\n")
	f.Add(ConnectLine + "\r\nBroken\r\n\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteRequest(&b, req); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String())))
		if err != nil {
			t.Fatalf("re-read of serialized request failed: %v", err)
		}
		if again.Headers.Len() != req.Headers.Len() {
			t.Fatalf("header count changed: %d vs %d", req.Headers.Len(), again.Headers.Len())
		}
	})
}
