package handshake

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestHeadersSetGet(t *testing.T) {
	h := NewHeaders()
	h.Set("user-agent", "Mutella/0.4.5")
	h.Set("X-ULTRAPEER", "True")
	if got := h.Get("User-Agent"); got != "Mutella/0.4.5" {
		t.Errorf("Get = %q", got)
	}
	if got := h.Get("x-ultrapeer"); got != "True" {
		t.Errorf("case-insensitive get = %q", got)
	}
	if !h.Has("USER-AGENT") || h.Has("Missing") {
		t.Error("Has misbehaves")
	}
	h.Set("User-Agent", "LimeWire/3.8.10")
	if h.Len() != 2 {
		t.Errorf("len = %d after overwrite", h.Len())
	}
	if got := h.Get("User-Agent"); got != "LimeWire/3.8.10" {
		t.Errorf("overwrite failed: %q", got)
	}
}

func TestHeadersCanonicalization(t *testing.T) {
	h := NewHeaders()
	h.Set("x-try-ultrapeers", "1.2.3.4:6346")
	names := h.Names()
	if len(names) != 1 || names[0] != "X-Try-Ultrapeers" {
		t.Errorf("names = %v", names)
	}
}

func TestHeadersNilSafe(t *testing.T) {
	var h *Headers
	if h.Get("User-Agent") != "" || h.Has("User-Agent") {
		t.Error("nil Headers should read as empty")
	}
}

func TestWriteReadRequest(t *testing.T) {
	h := NewHeaders()
	h.Set("User-Agent", "BearShare/4.2.5")
	h.Set("X-Ultrapeer", "False")
	var buf bytes.Buffer
	if err := WriteRequest(&buf, Request{Headers: h}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), ConnectLine+"\r\n") {
		t.Fatalf("wire form: %q", buf.String())
	}
	req, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if req.Headers.Get("User-Agent") != "BearShare/4.2.5" {
		t.Errorf("headers = %v", req.Headers.String())
	}
}

func TestReadRequestRejectsGarbage(t *testing.T) {
	_, err := ReadRequest(bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\n\r\n")))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadResponseStatuses(t *testing.T) {
	ok, err := ReadResponse(bufio.NewReader(strings.NewReader("GNUTELLA/0.6 200 OK\r\n\r\n")))
	if err != nil || !ok.Accept {
		t.Fatalf("200: %v %v", ok, err)
	}
	no, err := ReadResponse(bufio.NewReader(strings.NewReader("GNUTELLA/0.6 503 Busy\r\n\r\n")))
	if err != nil || no.Accept {
		t.Fatalf("503: %v %v", no, err)
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader("HTTP/1.1 200\r\n\r\n"))); err == nil {
		t.Fatal("non-gnutella status accepted")
	}
}

func TestMalformedHeaderLine(t *testing.T) {
	in := ConnectLine + "\r\nNoColonHere\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeaderSizeLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString(ConnectLine + "\r\n")
	for i := 0; i < 1000; i++ {
		b.WriteString("X-Filler: " + strings.Repeat("a", 100) + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); !errors.Is(err, ErrHeadersSize) {
		t.Fatalf("err = %v", err)
	}
}

// TestFullHandshake drives both sides over an in-memory duplex pipe.
func TestFullHandshake(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	serverInfo := make(chan Info, 1)
	serverErr := make(chan error, 1)
	go func() {
		local := NewHeaders()
		local.Set(HeaderUserAgent, "Mutella/0.4.5")
		local.Set(HeaderUltrapeer, "True")
		info, err := Accept(bufio.NewReader(sConn), sConn, local)
		serverInfo <- info
		serverErr <- err
	}()

	local := NewHeaders()
	local.Set(HeaderUserAgent, "LimeWire/3.8.10")
	local.Set(HeaderUltrapeer, "False")
	gotServer, err := Initiate(cConn, local)
	if err != nil {
		t.Fatalf("initiate: %v", err)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("accept: %v", err)
	}
	gotClient := <-serverInfo

	if gotServer.UserAgent != "Mutella/0.4.5" || !gotServer.Ultrapeer {
		t.Errorf("initiator saw %+v", gotServer)
	}
	if gotClient.UserAgent != "LimeWire/3.8.10" || gotClient.Ultrapeer {
		t.Errorf("acceptor saw %+v", gotClient)
	}
}

func TestRefuse(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	done := make(chan error, 1)
	go func() {
		done <- Refuse(bufio.NewReader(sConn), sConn)
	}()
	_, err := Initiate(cConn, NewHeaders())
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("initiator err = %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("refuse: %v", err)
	}
}

// TestPipelinedBytesSurvive ensures the acceptor's bufio.Reader retains
// bytes sent immediately after the handshake ack (message pipelining).
func TestPipelinedBytesSurvive(t *testing.T) {
	var wire bytes.Buffer
	WriteRequest(&wire, Request{Headers: NewHeaders()})
	// Acceptor's responses go elsewhere; we only feed its reader.
	ackAndData := "GNUTELLA/0.6 200 OK\r\n\r\nPAYLOAD-BYTES"
	wire.WriteString(ackAndData)

	br := bufio.NewReader(&wire)
	var out bytes.Buffer
	if _, err := Accept(br, &out, NewHeaders()); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "PAYLOAD-BYTES" {
		t.Fatalf("pipelined bytes = %q", rest)
	}
}

// Property: any header name/value without CR, LF or colon round-trips
// (up to canonicalization, which is idempotent).
func TestPropertyHeaderRoundTrip(t *testing.T) {
	clean := func(s string, extra ...rune) string {
		drop := append([]rune{'\r', '\n', ':'}, extra...)
		return strings.Map(func(r rune) rune {
			for _, d := range drop {
				if r == d {
					return -1
				}
			}
			return r
		}, s)
	}
	f := func(name, value string) bool {
		name = clean(name)
		value = clean(value)
		if strings.TrimSpace(name) == "" {
			return true
		}
		h := NewHeaders()
		h.Set(name, value)
		var buf bytes.Buffer
		if err := WriteRequest(&buf, Request{Headers: h}); err != nil {
			return false
		}
		req, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return req.Headers.Get(name) == strings.TrimSpace(value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedClone(t *testing.T) {
	h := NewHeaders()
	h.Set("B", "2")
	h.Set("A", "1")
	got := h.sortedClone()
	if len(got) != 2 || got[0] != "A: 1" || got[1] != "B: 2" {
		t.Fatalf("sortedClone = %v", got)
	}
}
