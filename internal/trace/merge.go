package trace

import (
	"sort"
	"strings"
)

// Merge unions per-vantage traces into one deduplicated, time-ordered
// trace — the collection step of a distributed measurement deployment,
// where N cooperating ultrapeers each record a shard of the overlay and
// the shards are merged into the full-volume view.
//
// The merged trace is independent of the order in which the inputs are
// given: connections are re-identified by a total order over their
// observable record (start, address, end, user agent, mode, close kind,
// and the full query list), assigned fresh dense IDs in that order, and
// their queries re-sorted into one global receive-time order. Two
// connection records that compare equal in *every* observable — the same
// session captured by two vantages with identical query streams — are
// duplicates and collapse to one, with their per-session query records
// deducted from the aggregate QUERY counters so len(Queries) stays equal
// to Counts.QueryHop1. Aggregate counters for the unattributed firehose
// (PING/PONG/QUERYHIT totals, sampled pong/hit records) are summed
// as-observed: each vantage genuinely received those messages, and
// per-session deduction is only possible for per-session records.
//
// Seed, Scale and the sampling rates are taken from the inputs, which a
// fleet produces identically; Days is the maximum over inputs and Nodes
// the sum (inputs with Nodes == 0 count as single-vantage traces).
func Merge(traces ...*Trace) *Trace {
	if len(traces) == 0 {
		return &Trace{Nodes: 0}
	}
	out := &Trace{
		Seed:           traces[0].Seed,
		Scale:          traces[0].Scale,
		PongSampleRate: traces[0].PongSampleRate,
		HitSampleRate:  traces[0].HitSampleRate,
	}
	total := 0
	for _, t := range traces {
		if t.Days > out.Days {
			out.Days = t.Days
		}
		if t.Nodes > 0 {
			out.Nodes += t.Nodes
		} else {
			out.Nodes++
		}
		out.Counts.Add(t.Counts)
		total += len(t.Conns)
	}

	// One record per input connection, carrying its query list in the
	// input's (receive-order) sequence.
	type rec struct {
		c  *Conn
		qs []*Query
	}
	recs := make([]rec, 0, total)
	nq := 0
	for _, t := range traces {
		byConn := t.QueriesPerConn()
		for i := range t.Conns {
			recs = append(recs, rec{c: &t.Conns[i], qs: byConn[i]})
		}
		nq += len(t.Queries)
	}

	cmp := func(a, b *rec) int {
		if c := CompareConn(a.c, b.c); c != 0 {
			return c
		}
		return CompareQueryLists(a.qs, b.qs)
	}
	sort.Slice(recs, func(i, j int) bool { return cmp(&recs[i], &recs[j]) < 0 })

	out.Conns = make([]Conn, 0, total)
	out.Queries = make([]Query, 0, nq)
	for i := range recs {
		r := &recs[i]
		if i > 0 && cmp(&recs[i-1], r) == 0 {
			// Exact duplicate observation of the same session: drop it and
			// deduct its per-session query records from the aggregates.
			out.Counts.Query -= uint64(len(r.qs))
			out.Counts.QueryHop1 -= uint64(len(r.qs))
			continue
		}
		id := uint64(len(out.Conns))
		c := *r.c
		c.ID = id
		out.Conns = append(out.Conns, c)
		for _, q := range r.qs {
			nq := *q
			nq.ConnID = id
			out.Queries = append(out.Queries, nq)
		}
	}
	sort.Slice(out.Queries, func(i, j int) bool {
		return CompareQuery(&out.Queries[i], &out.Queries[j]) < 0
	})

	for _, t := range traces {
		out.Pongs = append(out.Pongs, t.Pongs...)
		out.Hits = append(out.Hits, t.Hits...)
	}
	sort.Slice(out.Pongs, func(i, j int) bool { return ComparePong(&out.Pongs[i], &out.Pongs[j]) < 0 })
	sort.Slice(out.Hits, func(i, j int) bool { return CompareHit(&out.Hits[i], &out.Hits[j]) < 0 })
	return out
}

func cmpInt[T int | int64 | uint64 | uint32 | uint8](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// CompareConn is a total order over connection records that never reads
// the (input-dependent) ID field.
func CompareConn(a, b *Conn) int {
	if c := cmpInt(int64(a.Start), int64(b.Start)); c != 0 {
		return c
	}
	if c := a.Addr.Compare(b.Addr); c != 0 {
		return c
	}
	if c := cmpInt(int64(a.End), int64(b.End)); c != 0 {
		return c
	}
	if c := strings.Compare(a.UserAgent, b.UserAgent); c != 0 {
		return c
	}
	if c := cmpInt(boolInt(a.Ultrapeer), boolInt(b.Ultrapeer)); c != 0 {
		return c
	}
	return cmpInt(boolInt(a.SilentClose), boolInt(b.SilentClose))
}

// CompareQuery orders queries by receive time with full-record
// tie-breaking, so the merged global stream is a total order.
func CompareQuery(a, b *Query) int {
	if c := cmpInt(int64(a.At), int64(b.At)); c != 0 {
		return c
	}
	if c := cmpInt(a.ConnID, b.ConnID); c != 0 {
		return c
	}
	if c := strings.Compare(a.Text, b.Text); c != 0 {
		return c
	}
	if c := cmpInt(boolInt(a.SHA1), boolInt(b.SHA1)); c != 0 {
		return c
	}
	if c := cmpInt(a.TTL, b.TTL); c != 0 {
		return c
	}
	if c := cmpInt(a.Hops, b.Hops); c != 0 {
		return c
	}
	return cmpInt(a.Hits, b.Hits)
}

// CompareQueryLists orders two same-connection query lists element-wise in
// their recorded order (never re-sorting: the within-session sequence is
// part of the session's identity).
func CompareQueryLists(a, b []*Query) int {
	if c := cmpInt(int64(len(a)), int64(len(b))); c != 0 {
		return c
	}
	for i := range a {
		if c := compareQueryIdentity(*a[i], *b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareQueryValueLists is CompareQueryLists over value slices — the
// form the streaming merge's session records carry. Both share one
// definition of per-query session identity.
func CompareQueryValueLists(a, b []Query) int {
	if c := cmpInt(int64(len(a)), int64(len(b))); c != 0 {
		return c
	}
	for i := range a {
		if c := compareQueryIdentity(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// compareQueryIdentity compares two queries as session-identity
// components: the full record order, blind to input-dependent IDs.
func compareQueryIdentity(qa, qb Query) int {
	qa.ConnID, qb.ConnID = 0, 0
	return CompareQuery(&qa, &qb)
}

func ComparePong(a, b *Pong) int {
	if c := cmpInt(int64(a.At), int64(b.At)); c != 0 {
		return c
	}
	if c := a.Addr.Compare(b.Addr); c != 0 {
		return c
	}
	if c := cmpInt(a.SharedFiles, b.SharedFiles); c != 0 {
		return c
	}
	return cmpInt(a.Hops, b.Hops)
}

func CompareHit(a, b *Hit) int {
	if c := cmpInt(int64(a.At), int64(b.At)); c != 0 {
		return c
	}
	if c := a.Addr.Compare(b.Addr); c != 0 {
		return c
	}
	return cmpInt(a.Hops, b.Hops)
}
