package trace

import (
	"bytes"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Seed:  42,
		Scale: 0.05,
		Days:  40,
		Counts: MessageCounts{
			Ping: 100, Pong: 60, Query: 200, QueryHit: 5, Bye: 1, QueryHop1: 30,
		},
		Conns: []Conn{
			{ID: 0, Start: 0, End: 90 * time.Second, Addr: netip.MustParseAddr("66.1.2.3"),
				Ultrapeer: true, UserAgent: "LimeWire/3.8.10"},
			{ID: 1, Start: 5 * time.Second, End: 20 * time.Second, Addr: netip.MustParseAddr("80.1.1.1"),
				UserAgent: "Mutella/0.4.5", SilentClose: true},
		},
		Queries: []Query{
			{ConnID: 0, At: 10 * time.Second, Text: "blue song", TTL: 6, Hops: 1},
			{ConnID: 0, At: 30 * time.Second, SHA1: true, TTL: 6, Hops: 1},
		},
		Pongs: []Pong{
			{At: time.Second, Addr: netip.MustParseAddr("66.1.2.3"), SharedFiles: 12, Hops: 1},
			{At: 2 * time.Second, Addr: netip.MustParseAddr("220.1.2.3"), SharedFiles: 0, Hops: 4},
		},
		PongSampleRate: 1,
		Hits: []Hit{
			{At: 3 * time.Second, Addr: netip.MustParseAddr("212.9.9.9"), Hops: 3},
		},
		HitSampleRate: 0.5,
	}
}

func TestRoundTripBuffer(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", tr, got)
	}
}

func TestRoundTripFile(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	_, err := Read(strings.NewReader("not a trace\nmore bytes"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
	_, err = Read(strings.NewReader(""))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestMessageCountsTotal(t *testing.T) {
	m := MessageCounts{Ping: 1, Pong: 2, Query: 3, QueryHit: 4, Push: 5, Bye: 6}
	if m.Total() != 21 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestConnDuration(t *testing.T) {
	c := Conn{Start: 10 * time.Second, End: 75 * time.Second}
	if c.Duration() != 65*time.Second {
		t.Fatalf("duration = %v", c.Duration())
	}
}

func TestQueriesPerConn(t *testing.T) {
	tr := sampleTrace()
	idx := tr.QueriesPerConn()
	if len(idx) != len(tr.Conns) {
		t.Fatalf("index has %d slots, want %d", len(idx), len(tr.Conns))
	}
	qs := idx[0]
	if len(qs) != 2 || qs[0].Text != "blue song" || !qs[1].SHA1 {
		t.Fatalf("conn 0 queries = %+v", qs)
	}
	if len(idx[1]) != 0 {
		t.Fatal("queryless connection should have no queries")
	}
}

func TestQueriesPerConnSparseIDs(t *testing.T) {
	// Imported traces may use arbitrary connection IDs; the positional
	// index must fall back to ID mapping, keep receive order, and drop
	// queries that reference no known connection.
	tr := &Trace{
		Conns: []Conn{{ID: 100}, {ID: 7}},
		Queries: []Query{
			{ConnID: 7, At: 1 * time.Second, Text: "a"},
			{ConnID: 100, At: 2 * time.Second, Text: "b"},
			{ConnID: 7, At: 3 * time.Second, Text: "c"},
			{ConnID: 999, At: 4 * time.Second, Text: "orphan"},
		},
	}
	idx := tr.QueriesPerConn()
	if len(idx[0]) != 1 || idx[0][0].Text != "b" {
		t.Fatalf("conn at position 0 (ID 100) queries = %+v", idx[0])
	}
	if len(idx[1]) != 2 || idx[1][0].Text != "a" || idx[1][1].Text != "c" {
		t.Fatalf("conn at position 1 (ID 7) queries = %+v", idx[1])
	}
}

func TestExportJSONL(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Conns)+len(tr.Queries) {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"conn"`) || !strings.Contains(lines[0], `"66.1.2.3"`) {
		t.Errorf("first line = %s", lines[0])
	}
	if !strings.Contains(lines[2], `"kind":"query"`) || !strings.Contains(lines[2], `"blue song"`) {
		t.Errorf("third line = %s", lines[2])
	}
}

func TestLargeTraceRoundTrip(t *testing.T) {
	tr := &Trace{Seed: 1, Scale: 1, Days: 1, PongSampleRate: 1, HitSampleRate: 1}
	for i := 0; i < 20000; i++ {
		tr.Conns = append(tr.Conns, Conn{
			ID:    uint64(i),
			Start: time.Duration(i) * time.Second,
			End:   time.Duration(i+90) * time.Second,
			Addr:  netip.AddrFrom4([4]byte{66, byte(i >> 8), byte(i), 1}),
		})
		if i%3 == 0 {
			tr.Queries = append(tr.Queries, Query{ConnID: uint64(i), At: time.Duration(i) * time.Second, Text: "q", Hops: 1})
		}
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Conns) != 20000 || len(got.Queries) != len(tr.Queries) {
		t.Fatalf("sizes: %d conns, %d queries", len(got.Conns), len(got.Queries))
	}
	if got.Conns[19999] != tr.Conns[19999] {
		t.Fatal("last conn mismatch")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Conns) != len(tr.Conns) || len(got.Queries) != len(tr.Queries) {
		t.Fatalf("sizes: %d conns %d queries", len(got.Conns), len(got.Queries))
	}
	for i := range tr.Conns {
		want, have := tr.Conns[i], got.Conns[i]
		if want.ID != have.ID || want.Addr != have.Addr || want.UserAgent != have.UserAgent ||
			want.Ultrapeer != have.Ultrapeer || want.SilentClose != have.SilentClose {
			t.Fatalf("conn %d differs: %+v vs %+v", i, want, have)
		}
		// Times survive to sub-millisecond precision through float seconds.
		if d := want.Start - have.Start; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("conn %d start drift %v", i, d)
		}
	}
	for i := range tr.Queries {
		if tr.Queries[i].Text != got.Queries[i].Text || tr.Queries[i].SHA1 != got.Queries[i].SHA1 {
			t.Fatalf("query %d differs", i)
		}
	}
	if got.Counts.QueryHop1 != uint64(len(tr.Queries)) {
		t.Fatalf("reconstructed hop-1 count = %d", got.Counts.QueryHop1)
	}
}

func TestImportJSONLErrors(t *testing.T) {
	if _, err := ImportJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ImportJSONL(strings.NewReader(`{"kind":"conn","addr":"bad"}` + "\n")); err == nil {
		t.Error("bad address should fail")
	}
	// Unknown kinds and empty lines are skipped.
	tr, err := ImportJSONL(strings.NewReader("\n" + `{"kind":"future-record"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Conns) != 0 || len(tr.Queries) != 0 {
		t.Error("unknown kinds must be ignored")
	}
}

func TestImportedTraceFiltersCleanly(t *testing.T) {
	// An imported external trace must flow through the filter pipeline.
	var buf bytes.Buffer
	sampleTrace().ExportJSONL(&buf)
	tr, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Days == 0 {
		t.Error("days not inferred from records")
	}
}
