// Package trace defines the measurement trace: what the passive
// measurement ultrapeer records over its 40-day run. The design mirrors
// what the paper's modified mutella client logged — per-connection
// handshake metadata and session boundaries, full records for hop-1 QUERY
// messages (the only queries attributable to a specific peer), shared-file
// reports from PONG messages, and aggregate counters for the firehose of
// forwarded wider-network traffic (Table 1).
//
// Traces serialize to a gob-based binary format (WriteFile/ReadFile) and
// export to JSONL for external tooling.
package trace

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"
)

// Time is simulated trace time (offset from the trace epoch); an alias of
// time.Duration, matching internal/simtime.
type Time = time.Duration

// MessageCounts aggregates every message the node received, by type —
// the raw material of Table 1.
type MessageCounts struct {
	Ping     uint64
	Pong     uint64
	Query    uint64 // all hops, including hop-1
	QueryHit uint64
	Push     uint64
	Bye      uint64
	// QueryHop1 counts QUERY messages with hop count 1 — the subset that
	// is individually recorded and analyzed.
	QueryHop1 uint64
}

// Total returns the total message count.
func (m MessageCounts) Total() uint64 {
	return m.Ping + m.Pong + m.Query + m.QueryHit + m.Push + m.Bye
}

// Add accumulates another vantage's counters — the one place the
// per-field summation lives, shared by the batch and streaming merges so
// a new counter field cannot diverge between them.
func (m *MessageCounts) Add(d MessageCounts) {
	m.Ping += d.Ping
	m.Pong += d.Pong
	m.Query += d.Query
	m.QueryHit += d.QueryHit
	m.Push += d.Push
	m.Bye += d.Bye
	m.QueryHop1 += d.QueryHop1
}

// Conn is one direct overlay connection (one peer session).
type Conn struct {
	// ID is the connection's dense index; query records refer to it.
	ID uint64
	// Start is when the Gnutella handshake completed.
	Start Time
	// End is when the node observed the connection end. For silently
	// abandoned sessions this overestimates the true end by the probe
	// timeout (≈30 s), exactly as in the paper's methodology.
	End Time
	// Addr is the peer's IPv4 address.
	Addr netip.Addr
	// Ultrapeer reports the peer's negotiated mode.
	Ultrapeer bool
	// UserAgent is the handshake User-Agent header.
	UserAgent string
	// SilentClose marks sessions that ended by probe timeout rather than
	// an observed TCP close.
	SilentClose bool
}

// Duration returns the recorded session duration.
func (c *Conn) Duration() time.Duration { return c.End - c.Start }

// Query is one hop-1 QUERY message, attributed to its connection.
type Query struct {
	// ConnID links to the Conn that sent the query.
	ConnID uint64
	// At is the receive time.
	At Time
	// Text is the raw search text (empty for SHA1 source hunts).
	Text string
	// SHA1 reports a urn:sha1 extension (filter rule 1).
	SHA1 bool
	// TTL and Hops are the descriptor header fields at receipt.
	TTL  uint8
	Hops uint8
	// Hits counts the QUERYHIT responses the node observed for this
	// query's GUID — the raw material of the hit-rate extension (the
	// paper's stated future work).
	Hits uint32
}

// Pong is a shared-library report. Hops==1 pongs come from direct peers
// (Figure 2's "1-hop peers" series); larger hop counts are remote peers
// observed through the overlay (the "all peers" series, and Figure 1's
// all-peer geographic mix).
type Pong struct {
	At          Time
	Addr        netip.Addr
	SharedFiles uint32
	Hops        uint8
}

// Hit is a QUERYHIT observation; remote hit sources contribute to the
// all-peer geographic mix of Figure 1.
type Hit struct {
	At   Time
	Addr netip.Addr
	Hops uint8
}

// Trace is a complete measurement run.
type Trace struct {
	// Seed and Scale document how the trace was produced; Days is the
	// measurement period length.
	Seed  uint64
	Scale float64
	Days  int
	// Nodes is the number of vantage points that contributed: 1 for a
	// single-ultrapeer capture, N for a merged multi-vantage fleet trace
	// (see Merge). Zero in traces written before the field existed and
	// means 1.
	Nodes int
	// Counts aggregates all received messages (Table 1).
	Counts MessageCounts
	// Conns holds every direct connection.
	Conns []Conn
	// Queries holds every hop-1 QUERY.
	Queries []Query
	// Pongs holds 1-hop pongs plus a sampled subset of remote pongs;
	// PongSampleRate is the sampling probability applied to remote pongs.
	Pongs          []Pong
	PongSampleRate float64
	// Hits holds a sampled subset of QUERYHIT observations with
	// HitSampleRate the sampling probability.
	Hits          []Hit
	HitSampleRate float64
}

// QueriesPerConn indexes the trace's queries by connection position: the
// i-th element holds Conns[i]'s queries in receive order (possibly nil).
// Simulated and merged traces use the dense ID convention (Conn.ID ==
// index), for which the index is built with direct addressing; imported
// traces with arbitrary IDs fall back to a map. Queries referencing no
// known connection are dropped. The hot consumers (filter, merge) use
// this positional form rather than a map keyed by connection ID: it
// allocates one slice header per connection instead of a hash table over
// millions of entries.
func (t *Trace) QueriesPerConn() [][]*Query {
	out := make([][]*Query, len(t.Conns))
	// Pre-size each connection's slice with a counting pass so the index
	// costs exactly two scans and no reallocation.
	counts := make([]uint32, len(t.Conns))
	dense := true
	for i := range t.Conns {
		if t.Conns[i].ID != uint64(i) {
			dense = false
			break
		}
	}
	pos := func(id uint64) (int, bool) {
		if id < uint64(len(out)) {
			return int(id), true
		}
		return 0, false
	}
	if !dense {
		m := make(map[uint64]int, len(t.Conns))
		for i := range t.Conns {
			m[t.Conns[i].ID] = i
		}
		pos = func(id uint64) (int, bool) { p, ok := m[id]; return p, ok }
	}
	for i := range t.Queries {
		if p, ok := pos(t.Queries[i].ConnID); ok {
			counts[p]++
		}
	}
	for i, c := range counts {
		if c > 0 {
			out[i] = make([]*Query, 0, c)
		}
	}
	for i := range t.Queries {
		q := &t.Queries[i]
		if p, ok := pos(q.ConnID); ok {
			out[p] = append(out[p], q)
		}
	}
	return out
}

const magic = "p2pquery-trace/1"

// Hash returns the SHA-256 of the trace's canonical serialization (the
// Write format, which is deterministic: gob field order is fixed and the
// gzip layer uses fixed settings). Two traces hash equal iff Write would
// produce identical bytes — the cheap way to compare a streamed full-scale
// merge against the batch path without holding both in memory.
func (t *Trace) Hash() ([32]byte, error) {
	h := sha256.New()
	if err := t.Write(h); err != nil {
		return [32]byte{}, err
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// WriteFile stores the trace in the gzip-compressed gob format.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Write streams the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := io.WriteString(bw, magic+"\n"); err != nil {
		return err
	}
	zw := gzip.NewWriter(bw)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(wireTrace(t)); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFile loads a trace written by WriteFile.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ErrBadFormat reports a stream that is not a trace file.
var ErrBadFormat = errors.New("trace: not a trace file")

// Read parses a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if line != magic+"\n" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, line)
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	defer zr.Close()
	var wt traceWire
	if err := gob.NewDecoder(zr).Decode(&wt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return unwireTrace(&wt), nil
}

// traceWire is the gob schema. netip.Addr is carried as 4 raw bytes to
// keep the format compact and stable.
type traceWire struct {
	Seed           uint64
	Scale          float64
	Days           int
	Nodes          int
	Counts         MessageCounts
	Conns          []connWire
	Queries        []Query
	Pongs          []pongWire
	PongSampleRate float64
	Hits           []hitWire
	HitSampleRate  float64
}

type connWire struct {
	ID          uint64
	Start, End  Time
	Addr        [4]byte
	Ultrapeer   bool
	UserAgent   string
	SilentClose bool
}

type pongWire struct {
	At          Time
	Addr        [4]byte
	SharedFiles uint32
	Hops        uint8
}

type hitWire struct {
	At   Time
	Addr [4]byte
	Hops uint8
}

func addr4(a netip.Addr) [4]byte {
	if a.Is4() {
		return a.As4()
	}
	return [4]byte{}
}

func wireTrace(t *Trace) *traceWire {
	wt := &traceWire{
		Seed: t.Seed, Scale: t.Scale, Days: t.Days, Nodes: t.Nodes, Counts: t.Counts,
		Queries:        t.Queries,
		PongSampleRate: t.PongSampleRate,
		HitSampleRate:  t.HitSampleRate,
	}
	wt.Conns = make([]connWire, len(t.Conns))
	for i, c := range t.Conns {
		wt.Conns[i] = connWire{
			ID: c.ID, Start: c.Start, End: c.End, Addr: addr4(c.Addr),
			Ultrapeer: c.Ultrapeer, UserAgent: c.UserAgent, SilentClose: c.SilentClose,
		}
	}
	wt.Pongs = make([]pongWire, len(t.Pongs))
	for i, p := range t.Pongs {
		wt.Pongs[i] = pongWire{At: p.At, Addr: addr4(p.Addr), SharedFiles: p.SharedFiles, Hops: p.Hops}
	}
	wt.Hits = make([]hitWire, len(t.Hits))
	for i, h := range t.Hits {
		wt.Hits[i] = hitWire{At: h.At, Addr: addr4(h.Addr), Hops: h.Hops}
	}
	return wt
}

func unwireTrace(wt *traceWire) *Trace {
	t := &Trace{
		Seed: wt.Seed, Scale: wt.Scale, Days: wt.Days, Nodes: wt.Nodes, Counts: wt.Counts,
		Queries:        wt.Queries,
		PongSampleRate: wt.PongSampleRate,
		HitSampleRate:  wt.HitSampleRate,
	}
	t.Conns = make([]Conn, len(wt.Conns))
	for i, c := range wt.Conns {
		t.Conns[i] = Conn{
			ID: c.ID, Start: c.Start, End: c.End, Addr: netip.AddrFrom4(c.Addr),
			Ultrapeer: c.Ultrapeer, UserAgent: c.UserAgent, SilentClose: c.SilentClose,
		}
	}
	t.Pongs = make([]Pong, len(wt.Pongs))
	for i, p := range wt.Pongs {
		t.Pongs[i] = Pong{At: p.At, Addr: netip.AddrFrom4(p.Addr), SharedFiles: p.SharedFiles, Hops: p.Hops}
	}
	t.Hits = make([]Hit, len(wt.Hits))
	for i, h := range wt.Hits {
		t.Hits[i] = Hit{At: h.At, Addr: netip.AddrFrom4(h.Addr), Hops: h.Hops}
	}
	return t
}

// jsonConn mirrors Conn for JSONL export with string addresses.
type jsonConn struct {
	Kind        string  `json:"kind"`
	ID          uint64  `json:"id"`
	StartSec    float64 `json:"start_sec"`
	EndSec      float64 `json:"end_sec"`
	Addr        string  `json:"addr"`
	Ultrapeer   bool    `json:"ultrapeer"`
	UserAgent   string  `json:"user_agent"`
	SilentClose bool    `json:"silent_close"`
}

type jsonQuery struct {
	Kind   string  `json:"kind"`
	ConnID uint64  `json:"conn_id"`
	AtSec  float64 `json:"at_sec"`
	Text   string  `json:"text"`
	SHA1   bool    `json:"sha1"`
	TTL    uint8   `json:"ttl"`
	Hops   uint8   `json:"hops"`
}

// ExportJSONL writes the trace's connections and hop-1 queries as JSON
// lines: one object per record, kind-discriminated.
func (t *Trace) ExportJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range t.Conns {
		c := &t.Conns[i]
		rec := jsonConn{
			Kind: "conn", ID: c.ID,
			StartSec: c.Start.Seconds(), EndSec: c.End.Seconds(),
			Addr: c.Addr.String(), Ultrapeer: c.Ultrapeer,
			UserAgent: c.UserAgent, SilentClose: c.SilentClose,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for i := range t.Queries {
		q := &t.Queries[i]
		rec := jsonQuery{
			Kind: "query", ConnID: q.ConnID, AtSec: q.At.Seconds(),
			Text: q.Text, SHA1: q.SHA1, TTL: q.TTL, Hops: q.Hops,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportJSONL reads a trace from the JSONL form produced by ExportJSONL
// (and by external tooling): one JSON object per line, kind-discriminated
// ("conn" or "query"). Lines of unknown kind are ignored so that richer
// streams can embed extra record types. Counts are reconstructed from the
// imported queries (hop-1 only); message totals beyond that are not part
// of the JSONL form.
func ImportJSONL(r io.Reader) (*Trace, error) {
	type probe struct {
		Kind string `json:"kind"`
	}
	tr := &Trace{PongSampleRate: 1, HitSampleRate: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	maxDay := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p probe
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		switch p.Kind {
		case "conn":
			var c jsonConn
			if err := json.Unmarshal(raw, &c); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
			}
			addr, err := netip.ParseAddr(c.Addr)
			if err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: addr: %w", line, err)
			}
			tr.Conns = append(tr.Conns, Conn{
				ID:          c.ID,
				Start:       secsDur(c.StartSec),
				End:         secsDur(c.EndSec),
				Addr:        addr,
				Ultrapeer:   c.Ultrapeer,
				UserAgent:   c.UserAgent,
				SilentClose: c.SilentClose,
			})
			if d := int(secsDur(c.EndSec) / (24 * time.Hour)); d+1 > maxDay {
				maxDay = d + 1
			}
		case "query":
			var q jsonQuery
			if err := json.Unmarshal(raw, &q); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
			}
			tr.Queries = append(tr.Queries, Query{
				ConnID: q.ConnID,
				At:     secsDur(q.AtSec),
				Text:   q.Text,
				SHA1:   q.SHA1,
				TTL:    q.TTL,
				Hops:   q.Hops,
			})
			tr.Counts.Query++
			if q.Hops == 1 {
				tr.Counts.QueryHop1++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.Days = maxDay
	return tr, nil
}

func secsDur(s float64) Time { return Time(s * float64(time.Second)) }
