package trace

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func mkConn(id uint64, start, end Time, addr string, agent string) Conn {
	return Conn{
		ID: id, Start: start, End: end,
		Addr: netip.MustParseAddr(addr), UserAgent: agent,
	}
}

// twoNodeTraces builds a small synthetic two-vantage capture with
// interleaved session starts, one equal-start collision across nodes, and
// queries on both sides.
func twoNodeTraces() (*Trace, *Trace) {
	a := &Trace{
		Seed: 7, Scale: 0.5, Days: 2, Nodes: 1,
		PongSampleRate: 0.1, HitSampleRate: 0.1,
		Conns: []Conn{
			mkConn(0, 10*time.Second, 100*time.Second, "24.0.0.1", "LimeWire/3.8.10"),
			mkConn(1, 30*time.Second, 400*time.Second, "24.0.0.2", "BearShare/4.3.1"),
			mkConn(2, 50*time.Second, 55*time.Second, "82.0.0.1", "Shareaza/1.8.8.0"),
		},
		Queries: []Query{
			{ConnID: 0, At: 20 * time.Second, Text: "madonna", TTL: 6, Hops: 1},
			{ConnID: 1, At: 40 * time.Second, Text: "radiohead", TTL: 6, Hops: 1},
			{ConnID: 1, At: 90 * time.Second, Text: "coldplay", TTL: 6, Hops: 1},
		},
		Pongs: []Pong{{At: 15 * time.Second, Addr: netip.MustParseAddr("24.0.0.1"), SharedFiles: 12, Hops: 1}},
		Hits:  []Hit{{At: 70 * time.Second, Addr: netip.MustParseAddr("61.0.0.9"), Hops: 4}},
	}
	a.Counts = MessageCounts{Ping: 5, Pong: 4, Query: 30, QueryHit: 1, QueryHop1: 3}
	b := &Trace{
		Seed: 7, Scale: 0.5, Days: 2, Nodes: 1,
		PongSampleRate: 0.1, HitSampleRate: 0.1,
		Conns: []Conn{
			mkConn(0, 20*time.Second, 300*time.Second, "24.0.0.3", "Morpheus/3.0.3"),
			// Same start instant as a's conn 1: the address tie-break keeps
			// the order total.
			mkConn(1, 30*time.Second, 90*time.Second, "24.0.0.4", "LimeWire/3.8.10"),
		},
		Queries: []Query{
			{ConnID: 0, At: 25 * time.Second, Text: "u2", TTL: 6, Hops: 1},
			{ConnID: 1, At: 40 * time.Second, Text: "nirvana", TTL: 6, Hops: 1},
		},
		Pongs: []Pong{{At: 22 * time.Second, Addr: netip.MustParseAddr("24.0.0.3"), SharedFiles: 7, Hops: 1}},
	}
	b.Counts = MessageCounts{Ping: 3, Pong: 2, Query: 20, QueryHit: 0, QueryHop1: 2}
	return a, b
}

func serialize(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeOrderIndependent(t *testing.T) {
	a, b := twoNodeTraces()
	ab := serialize(t, Merge(a, b))
	ba := serialize(t, Merge(b, a))
	if !bytes.Equal(ab, ba) {
		t.Fatal("merge depends on input order")
	}
}

func TestMergeTimeOrderAndDenseIDs(t *testing.T) {
	a, b := twoNodeTraces()
	m := Merge(a, b)
	if len(m.Conns) != 5 {
		t.Fatalf("merged %d conns, want 5", len(m.Conns))
	}
	for i := range m.Conns {
		if m.Conns[i].ID != uint64(i) {
			t.Fatalf("conn %d has ID %d, want dense", i, m.Conns[i].ID)
		}
		if i > 0 && m.Conns[i].Start < m.Conns[i-1].Start {
			t.Fatalf("conns not time-ordered at %d", i)
		}
	}
	for i := range m.Queries {
		q := &m.Queries[i]
		if i > 0 && q.At < m.Queries[i-1].At {
			t.Fatalf("queries not time-ordered at %d", i)
		}
		c := &m.Conns[q.ConnID]
		if q.At < c.Start || q.At > c.End {
			t.Fatalf("query %d at %v outside its remapped session [%v,%v]", i, q.At, c.Start, c.End)
		}
	}
	if len(m.Queries) != 5 {
		t.Fatalf("merged %d queries, want 5", len(m.Queries))
	}
}

func TestMergeMetadataAndCounts(t *testing.T) {
	a, b := twoNodeTraces()
	m := Merge(a, b)
	if m.Nodes != 2 {
		t.Errorf("Nodes = %d, want 2", m.Nodes)
	}
	if m.Seed != 7 || m.Scale != 0.5 || m.Days != 2 {
		t.Errorf("metadata not carried: %+v", m)
	}
	want := MessageCounts{Ping: 8, Pong: 6, Query: 50, QueryHit: 1, QueryHop1: 5}
	if m.Counts != want {
		t.Errorf("counts = %+v, want %+v", m.Counts, want)
	}
	if len(m.Pongs) != 2 || len(m.Hits) != 1 {
		t.Errorf("pongs/hits not unioned: %d/%d", len(m.Pongs), len(m.Hits))
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a, _ := twoNodeTraces()
	// A second vantage that observed the exact same sessions (identical
	// records and query streams, different IDs): the union must collapse
	// them and deduct the duplicate per-session query records.
	dup := &Trace{
		Seed: 7, Scale: 0.5, Days: 2, Nodes: 1,
		PongSampleRate: 0.1, HitSampleRate: 0.1,
		Conns: []Conn{
			mkConn(0, 30*time.Second, 400*time.Second, "24.0.0.2", "BearShare/4.3.1"),
		},
		Queries: []Query{
			{ConnID: 0, At: 40 * time.Second, Text: "radiohead", TTL: 6, Hops: 1},
			{ConnID: 0, At: 90 * time.Second, Text: "coldplay", TTL: 6, Hops: 1},
		},
	}
	dup.Counts = MessageCounts{Query: 2, QueryHop1: 2}
	m := Merge(a, dup)
	if len(m.Conns) != 3 {
		t.Fatalf("merged %d conns, want 3 (duplicate collapsed)", len(m.Conns))
	}
	if len(m.Queries) != 3 {
		t.Fatalf("merged %d queries, want 3", len(m.Queries))
	}
	if m.Counts.QueryHop1 != uint64(len(m.Queries)) {
		t.Fatalf("QueryHop1 %d != recorded queries %d after dedup", m.Counts.QueryHop1, len(m.Queries))
	}
	// Near-duplicate (different end time) must NOT collapse.
	dup.Conns[0].End = 401 * time.Second
	m = Merge(a, dup)
	if len(m.Conns) != 4 {
		t.Fatalf("near-duplicate collapsed: %d conns, want 4", len(m.Conns))
	}
}

func TestMergeSingleIsIdentityForSimulatedShape(t *testing.T) {
	// A trace already in dense-ID, time-ordered form (what a vantage
	// emits) must pass through Merge unchanged.
	a, _ := twoNodeTraces()
	m := Merge(a)
	ab, mb := serialize(t, a), serialize(t, m)
	if !bytes.Equal(ab, mb) {
		t.Fatal("merge of one well-formed trace is not the identity")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if len(m.Conns) != 0 || len(m.Queries) != 0 || m.Nodes != 0 {
		t.Fatalf("empty merge produced %+v", m)
	}
	one := Merge(&Trace{})
	if one.Nodes != 1 {
		t.Fatalf("merge of one zero-nodes trace: Nodes = %d, want 1", one.Nodes)
	}
}
