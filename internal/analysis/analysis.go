// Package analysis computes every table and figure of the paper's
// evaluation from a measurement trace: the overall trace statistics
// (Table 1), the geographic and shared-file representativeness checks
// (Figures 1–2), the diurnal load and passive-peer series (Figures 3–4),
// the conditional session distributions (Figures 5–9), the hot-set drift
// and query-popularity analyses (Figures 10–11, Table 3).
//
// All analyzers consume the raw trace and/or the filtered session view of
// internal/filter; none of them sees generator ground truth, so the
// pipeline measures exactly what the paper's post-processing could
// measure.
//
// Popularity-analysis note: rule-4 flagged queries (pre-connection user
// queries re-issued at connect) are included in the popularity and class
// measures, as Section 3.3 of the paper prescribes; rule-5 flagged
// queries (fixed-interval machine automation) are excluded — including
// them would inflate the per-day distinct-query counts far beyond the
// paper's Table 3, which is how we reconcile Table 3 with Figure 6(c)'s
// hundred-query automation sessions.
package analysis

import (
	"time"

	"repro/internal/filter"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Session is a filtered session enriched with the derived attributes every
// analyzer needs.
type Session struct {
	*filter.Session
	// Region is resolved from the connection's address.
	Region geo.Region
	// StartHour and StartDay locate the session start in measurement-node
	// time.
	StartHour int
	StartDay  int
	// Peak reports whether the session started in its region's high-load
	// period.
	Peak bool
	// UserQueries caches NumUserQueries.
	UserQueries int
}

// Enrich resolves regions and periods for every retained session with a
// machine-sized worker pool. The returned slice preserves the filter's
// ordering.
func Enrich(res *filter.Result) []Session {
	return EnrichWorkers(res, 0)
}

// EnrichWorkers is Enrich on a bounded worker pool (0 = GOMAXPROCS, 1 =
// sequential). Each session's enrichment reads only immutable lookup
// tables and writes its own slot, so the result is identical for every
// worker count; at merged full-trace volume (millions of retained
// sessions) this keeps the enrichment step off the characterization
// pipeline's serial path.
func EnrichWorkers(res *filter.Result, workers int) []Session {
	workers = par.Workers(workers)
	reg := geo.Default()
	params := model.Default()
	out := make([]Session, len(res.Sessions))
	var tasks []func()
	par.Chunks(len(res.Sessions), workers*4, func(_, lo, hi int) {
		tasks = append(tasks, func() {
			for i := lo; i < hi; i++ {
				fs := &res.Sessions[i]
				r := reg.Lookup(fs.Conn.Addr)
				hour := simtime.HourOfDay(fs.Conn.Start)
				out[i] = Session{
					Session:     fs,
					Region:      r,
					StartHour:   hour,
					StartDay:    simtime.DayIndex(fs.Conn.Start),
					Peak:        params.IsPeak(r, hour),
					UserQueries: fs.NumUserQueries(),
				}
			}
		})
	})
	par.Run(workers, tasks)
	return out
}

// Table1 is the overall trace characteristics (the paper's Table 1).
type Table1 struct {
	TracePeriodDays   int
	Queries           uint64
	QueryHits         uint64
	Pings             uint64
	Pongs             uint64
	DirectConnections uint64
	QueriesHop1       uint64
	UltrapeerFraction float64
}

// ComputeTable1 summarizes the raw trace.
func ComputeTable1(tr *trace.Trace) Table1 {
	up := 0
	for i := range tr.Conns {
		if tr.Conns[i].Ultrapeer {
			up++
		}
	}
	frac := 0.0
	if len(tr.Conns) > 0 {
		frac = float64(up) / float64(len(tr.Conns))
	}
	return Table1{
		TracePeriodDays:   tr.Days,
		Queries:           tr.Counts.Query,
		QueryHits:         tr.Counts.QueryHit,
		Pings:             tr.Counts.Ping,
		Pongs:             tr.Counts.Pong,
		DirectConnections: uint64(len(tr.Conns)),
		QueriesHop1:       tr.Counts.QueryHop1,
		UltrapeerFraction: frac,
	}
}

// KeyPeriods re-exports the model's four key one-hour windows for
// conditioned analyses.
var KeyPeriods = model.KeyPeriods

// continental is the region set every per-region analyzer iterates.
var continental = []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia}

// Continental returns the three regions the paper characterizes.
func Continental() []geo.Region { return continental }

// secondsOf converts a duration to float seconds, the unit of the
// appendix models.
func secondsOf(d time.Duration) float64 { return d.Seconds() }
