package analysis

import (
	"time"

	"repro/internal/geo"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// GeoDistribution is Figure 1: the hourly geographic mix of one-hop peers
// (direct connections) versus all peers (addresses observed in remote
// PONG and QUERYHIT traffic).
type GeoDistribution struct {
	// OneHop[region][hour] and AllPeers[region][hour] are average shares.
	OneHop   map[geo.Region][]float64
	AllPeers map[geo.Region][]float64
}

// ComputeFigure1 measures the geographic mix from the raw trace.
func ComputeFigure1(tr *trace.Trace) GeoDistribution {
	reg := geo.Default()
	regionsAll := []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia, geo.Other, geo.Unknown}
	oneHop := make(map[geo.Region]*stats.DayBinMatrix)
	all := make(map[geo.Region]*stats.DayBinMatrix)
	for _, r := range regionsAll {
		oneHop[r] = stats.NewDayBinMatrix(24)
		all[r] = stats.NewDayBinMatrix(24)
	}
	for i := range tr.Conns {
		c := &tr.Conns[i]
		oneHop[reg.Lookup(c.Addr)].Add(simtime.DayIndex(c.Start), simtime.HourOfDay(c.Start), 1)
	}
	for i := range tr.Pongs {
		p := &tr.Pongs[i]
		if p.Hops == 1 {
			continue // direct peers are the one-hop series
		}
		all[reg.Lookup(p.Addr)].Add(simtime.DayIndex(p.At), simtime.HourOfDay(p.At), 1)
	}
	for i := range tr.Hits {
		h := &tr.Hits[i]
		if h.Hops == 1 {
			continue
		}
		all[reg.Lookup(h.Addr)].Add(simtime.DayIndex(h.At), simtime.HourOfDay(h.At), 1)
	}
	out := GeoDistribution{
		OneHop:   make(map[geo.Region][]float64),
		AllPeers: make(map[geo.Region][]float64),
	}
	oneHopAll := []*stats.DayBinMatrix{}
	allAll := []*stats.DayBinMatrix{}
	for _, r := range regionsAll {
		oneHopAll = append(oneHopAll, oneHop[r])
		allAll = append(allAll, all[r])
	}
	for _, r := range regionsAll {
		out.OneHop[r] = stats.AvgShare(oneHop[r], oneHopAll)
		out.AllPeers[r] = stats.AvgShare(all[r], allAll)
	}
	return out
}

// SharedFiles is Figure 2: the distribution of reported shared-library
// sizes for one-hop peers versus all peers, over 0..MaxFiles files.
type SharedFiles struct {
	MaxFiles int
	OneHop   []float64
	All      []float64
}

// ComputeFigure2 measures shared-file distributions from PONG reports.
func ComputeFigure2(tr *trace.Trace) SharedFiles {
	const maxFiles = 100
	oneHop := stats.NewHistogram(maxFiles + 1)
	all := stats.NewHistogram(maxFiles + 1)
	for i := range tr.Pongs {
		p := &tr.Pongs[i]
		if p.Hops == 1 {
			oneHop.Add(int(p.SharedFiles))
		} else {
			all.Add(int(p.SharedFiles))
		}
	}
	return SharedFiles{
		MaxFiles: maxFiles,
		OneHop:   oneHop.Fractions(),
		All:      all.Fractions(),
	}
}

// LoadByTime is Figure 3: user queries received per 30-minute bin, per
// region, summarized min/avg/max across trace days.
type LoadByTime struct {
	PerRegion map[geo.Region]stats.BinSeries
}

// ComputeFigure3 bins the retained user queries by receive time.
func ComputeFigure3(sessions []Session) LoadByTime {
	mats := map[geo.Region]*stats.DayBinMatrix{}
	for _, r := range continental {
		mats[r] = stats.NewDayBinMatrix(48)
	}
	for i := range sessions {
		s := &sessions[i]
		m, ok := mats[s.Region]
		if !ok {
			continue
		}
		for j := range s.Queries {
			q := &s.Queries[j]
			if q.Rule5 {
				continue
			}
			m.Add(simtime.DayIndex(q.At), simtime.HalfHourOfDay(q.At), 1)
		}
	}
	out := LoadByTime{PerRegion: make(map[geo.Region]stats.BinSeries)}
	for _, r := range continental {
		out.PerRegion[r] = mats[r].MinAvgMax()
	}
	return out
}

// PassiveFraction is Figure 4: the fraction of sessions starting in each
// hour that issue no queries, per region, min/avg/max across days.
type PassiveFraction struct {
	PerRegion map[geo.Region]stats.BinSeries
}

// ComputeFigure4 measures the passive share by session start hour.
func ComputeFigure4(sessions []Session) PassiveFraction {
	passive := map[geo.Region]*stats.DayBinMatrix{}
	total := map[geo.Region]*stats.DayBinMatrix{}
	for _, r := range continental {
		passive[r] = stats.NewDayBinMatrix(24)
		total[r] = stats.NewDayBinMatrix(24)
	}
	for i := range sessions {
		s := &sessions[i]
		if _, ok := passive[s.Region]; !ok {
			continue
		}
		total[s.Region].Add(s.StartDay, s.StartHour, 1)
		if s.Passive() {
			passive[s.Region].Add(s.StartDay, s.StartHour, 1)
		}
	}
	out := PassiveFraction{PerRegion: make(map[geo.Region]stats.BinSeries)}
	for _, r := range continental {
		out.PerRegion[r] = stats.RatioMinAvgMax(passive[r], total[r])
	}
	return out
}

// PassiveDurations is Figure 5: connected-session durations of passive
// peers, in seconds, by region and (per region) by key start period.
type PassiveDurations struct {
	ByRegion map[geo.Region]*stats.Sample
	// ByPeriod[region][startHour] holds durations of sessions starting in
	// each key one-hour window.
	ByPeriod map[geo.Region]map[int]*stats.Sample
}

// ComputeFigure5 collects passive session durations.
func ComputeFigure5(sessions []Session) PassiveDurations {
	out := PassiveDurations{
		ByRegion: map[geo.Region]*stats.Sample{},
		ByPeriod: map[geo.Region]map[int]*stats.Sample{},
	}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
		out.ByPeriod[r] = map[int]*stats.Sample{}
		for _, h := range KeyPeriods {
			out.ByPeriod[r][h] = &stats.Sample{}
		}
	}
	// Pre-size the per-region samples: passive sessions are ~80% of the
	// total, so letting append double its way up wastes both copies and
	// peak memory at full trace scale.
	counts := map[geo.Region]int{}
	for i := range sessions {
		if sessions[i].Passive() {
			counts[sessions[i].Region]++
		}
	}
	for _, r := range continental {
		out.ByRegion[r].Grow(counts[r])
	}
	for i := range sessions {
		s := &sessions[i]
		if !s.Passive() {
			continue
		}
		sample, ok := out.ByRegion[s.Region]
		if !ok {
			continue
		}
		d := secondsOf(s.Conn.Duration())
		sample.Add(d)
		if ps, ok := out.ByPeriod[s.Region][s.StartHour]; ok {
			ps.Add(d)
		}
	}
	return out
}

// QueriesPerSession is Figure 6: the number of queries per active
// session — with rules 4–5 applied (ByRegion, ByPeriodEU) and without
// (Unfiltered).
type QueriesPerSession struct {
	ByRegion   map[geo.Region]*stats.Sample
	ByPeriodEU map[int]*stats.Sample
	Unfiltered map[geo.Region]*stats.Sample
}

// ComputeFigure6 collects per-session query counts.
func ComputeFigure6(sessions []Session) QueriesPerSession {
	out := QueriesPerSession{
		ByRegion:   map[geo.Region]*stats.Sample{},
		ByPeriodEU: map[int]*stats.Sample{},
		Unfiltered: map[geo.Region]*stats.Sample{},
	}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
		out.Unfiltered[r] = &stats.Sample{}
	}
	for _, h := range KeyPeriods {
		out.ByPeriodEU[h] = &stats.Sample{}
	}
	for i := range sessions {
		s := &sessions[i]
		if s.NumAllQueries() == 0 {
			continue
		}
		if _, ok := out.ByRegion[s.Region]; !ok {
			continue
		}
		if s.UserQueries > 0 {
			out.ByRegion[s.Region].Add(float64(s.UserQueries))
			if s.Region == geo.Europe {
				if ps, ok := out.ByPeriodEU[s.StartHour]; ok {
					ps.Add(float64(s.UserQueries))
				}
			}
		}
		out.Unfiltered[s.Region].Add(float64(s.NumAllQueries()))
	}
	return out
}

// FirstQueryTimes is Figure 7: seconds from session start to the first
// user query, by region, by session query-count bucket (North America),
// and by key start period (Europe).
type FirstQueryTimes struct {
	ByRegion map[geo.Region]*stats.Sample
	// ByBucketNA is keyed by the Table A.3 bucket: 0 (<3), 1 (=3), 2 (>3).
	ByBucketNA map[int]*stats.Sample
	ByPeriodEU map[int]*stats.Sample
}

// ComputeFigure7 collects time-to-first-query samples.
func ComputeFigure7(sessions []Session) FirstQueryTimes {
	out := FirstQueryTimes{
		ByRegion:   map[geo.Region]*stats.Sample{},
		ByBucketNA: map[int]*stats.Sample{},
		ByPeriodEU: map[int]*stats.Sample{},
	}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
	}
	for b := 0; b < 3; b++ {
		out.ByBucketNA[b] = &stats.Sample{}
	}
	for _, h := range KeyPeriods {
		out.ByPeriodEU[h] = &stats.Sample{}
	}
	for i := range sessions {
		s := &sessions[i]
		first, ok := s.FirstQueryTime()
		if !ok {
			continue
		}
		v := secondsOf(first)
		if sample, ok := out.ByRegion[s.Region]; ok {
			sample.Add(v)
		}
		if s.Region == geo.NorthAmerica {
			out.ByBucketNA[bucketA3(s.UserQueries)].Add(v)
		}
		if s.Region == geo.Europe {
			if ps, ok := out.ByPeriodEU[s.StartHour]; ok {
				ps.Add(v)
			}
		}
	}
	return out
}

// Interarrivals is Figure 8: query interarrival times in seconds, by
// region, by query-count bucket (Europe), and by key period (Europe).
type Interarrivals struct {
	ByRegion map[geo.Region]*stats.Sample
	// ByBucketEU keys: 0 (=2 queries), 1 (3–7), 2 (>7).
	ByBucketEU map[int]*stats.Sample
	ByPeriodEU map[int]*stats.Sample
}

// ComputeFigure8 collects the valid interarrival times.
func ComputeFigure8(sessions []Session) Interarrivals {
	out := Interarrivals{
		ByRegion:   map[geo.Region]*stats.Sample{},
		ByBucketEU: map[int]*stats.Sample{},
		ByPeriodEU: map[int]*stats.Sample{},
	}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
	}
	for b := 0; b < 3; b++ {
		out.ByBucketEU[b] = &stats.Sample{}
	}
	for _, h := range KeyPeriods {
		out.ByPeriodEU[h] = &stats.Sample{}
	}
	var scratch []time.Duration
	for i := range sessions {
		s := &sessions[i]
		sample, ok := out.ByRegion[s.Region]
		if !ok {
			continue
		}
		iats := s.AppendInterarrivals(scratch[:0])
		scratch = iats
		for _, iat := range iats {
			v := secondsOf(iat)
			sample.Add(v)
			if s.Region == geo.Europe {
				out.ByBucketEU[bucketIAT(s.UserQueries)].Add(v)
				if ps, ok := out.ByPeriodEU[s.StartHour]; ok {
					ps.Add(v)
				}
			}
		}
	}
	return out
}

// AfterLastTimes is Figure 9: seconds from the last user query to the
// session end, by region, by Table A.5 bucket (North America), and by the
// hour of the last query (Europe).
type AfterLastTimes struct {
	ByRegion map[geo.Region]*stats.Sample
	// ByBucketNA keys: 0 (1 query), 1 (2–7), 2 (>7).
	ByBucketNA map[int]*stats.Sample
	ByPeriodEU map[int]*stats.Sample
}

// ComputeFigure9 collects time-after-last-query samples.
func ComputeFigure9(sessions []Session) AfterLastTimes {
	out := AfterLastTimes{
		ByRegion:   map[geo.Region]*stats.Sample{},
		ByBucketNA: map[int]*stats.Sample{},
		ByPeriodEU: map[int]*stats.Sample{},
	}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
	}
	for b := 0; b < 3; b++ {
		out.ByBucketNA[b] = &stats.Sample{}
	}
	for _, h := range KeyPeriods {
		out.ByPeriodEU[h] = &stats.Sample{}
	}
	for i := range sessions {
		s := &sessions[i]
		gap, ok := s.LastQueryGap()
		if !ok {
			continue
		}
		v := secondsOf(gap)
		if sample, ok := out.ByRegion[s.Region]; ok {
			sample.Add(v)
		}
		if s.Region == geo.NorthAmerica {
			out.ByBucketNA[bucketA5(s.UserQueries)].Add(v)
		}
		if s.Region == geo.Europe {
			lastHour := lastQueryHour(s)
			if ps, ok := out.ByPeriodEU[lastHour]; ok {
				ps.Add(v)
			}
		}
	}
	return out
}

func lastQueryHour(s *Session) int {
	for i := len(s.Queries) - 1; i >= 0; i-- {
		if !s.Queries[i].Rule5 {
			return simtime.HourOfDay(s.Queries[i].At)
		}
	}
	return -1
}

// bucketA3 mirrors model.QueryBucketA3 without importing ground truth
// into measurement code paths.
func bucketA3(n int) int {
	switch {
	case n < 3:
		return 0
	case n == 3:
		return 1
	default:
		return 2
	}
}

func bucketA5(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 7:
		return 1
	default:
		return 2
	}
}

func bucketIAT(n int) int {
	switch {
	case n <= 2:
		return 0
	case n <= 7:
		return 1
	default:
		return 2
	}
}
