package analysis

import (
	"sort"

	"repro/internal/dist"
	"repro/internal/geo"
	"repro/internal/simtime"
)

// popularity measures use the session's user-intent queries: rule-4
// flagged queries are included (the user issued them before connecting),
// rule-5 automation is excluded (see the package comment).

// dayRegionQueries indexes, per day, each query key's issuing regions and
// per-region frequency.
type dayRegionQueries struct {
	// freq[key] counts per region.
	freq map[string]*regionFreq
}

type regionFreq struct {
	counts [3]int // NA, EU, AS
}

func regionIndex(r geo.Region) int {
	switch r {
	case geo.NorthAmerica:
		return 0
	case geo.Europe:
		return 1
	case geo.Asia:
		return 2
	default:
		return -1
	}
}

// indexDays builds the per-day query index for the three continents.
func indexDays(sessions []Session, days int) []dayRegionQueries {
	idx := make([]dayRegionQueries, days)
	for d := range idx {
		idx[d].freq = make(map[string]*regionFreq)
	}
	for i := range sessions {
		s := &sessions[i]
		ri := regionIndex(s.Region)
		if ri < 0 {
			continue
		}
		for j := range s.Queries {
			q := &s.Queries[j]
			if q.Rule5 {
				continue
			}
			d := simtime.DayIndex(q.At)
			if d < 0 || d >= days {
				continue
			}
			rf := idx[d].freq[q.Key]
			if rf == nil {
				rf = &regionFreq{}
				idx[d].freq[q.Key] = rf
			}
			rf.counts[ri]++
		}
	}
	return idx
}

// ClassCounts is one row set of Table 3: distinct query counts per region
// and per intersection over a window of days.
type ClassCounts struct {
	NA, EU, AS       float64
	NAEU, NAAS, EUAS float64
	All              float64
}

// QueryClasses is Table 3 for the requested window lengths, averaged over
// all aligned windows in the trace.
type QueryClasses struct {
	// Windows maps window length in days to average counts.
	Windows map[int]ClassCounts
}

// ComputeTable3 computes distinct-query set sizes and intersections for
// 1-, 2- and 4-day windows.
func ComputeTable3(sessions []Session, days int) QueryClasses {
	idx := indexDays(sessions, days)
	out := QueryClasses{Windows: make(map[int]ClassCounts)}
	for _, k := range []int{1, 2, 4} {
		if days < k {
			continue
		}
		var acc ClassCounts
		n := 0
		for start := 0; start+k <= days; start += k {
			sets := [3]map[string]bool{{}, {}, {}}
			for d := start; d < start+k; d++ {
				for key, rf := range idx[d].freq {
					for ri := 0; ri < 3; ri++ {
						if rf.counts[ri] > 0 {
							sets[ri][key] = true
						}
					}
				}
			}
			cc := ClassCounts{
				NA: float64(len(sets[0])),
				EU: float64(len(sets[1])),
				AS: float64(len(sets[2])),
			}
			for key := range sets[0] {
				inEU := sets[1][key]
				inAS := sets[2][key]
				if inEU {
					cc.NAEU++
				}
				if inAS {
					cc.NAAS++
				}
				if inEU && inAS {
					cc.All++
				}
			}
			for key := range sets[1] {
				if sets[2][key] {
					cc.EUAS++
				}
			}
			acc.NA += cc.NA
			acc.EU += cc.EU
			acc.AS += cc.AS
			acc.NAEU += cc.NAEU
			acc.NAAS += cc.NAAS
			acc.EUAS += cc.EUAS
			acc.All += cc.All
			n++
		}
		if n > 0 {
			out.Windows[k] = ClassCounts{
				NA: acc.NA / float64(n), EU: acc.EU / float64(n), AS: acc.AS / float64(n),
				NAEU: acc.NAEU / float64(n), NAAS: acc.NAAS / float64(n),
				EUAS: acc.EUAS / float64(n), All: acc.All / float64(n),
			}
		}
	}
	return out
}

// HotSetDrift is Figure 10: for each rank band of day n (top 10, ranks
// 11–20, ranks 21–100), the distribution of how many of its queries
// reappear in day n+1's top N.
type HotSetDrift struct {
	// Survivors[band][N] is the per-day-pair list of overlap counts, for
	// N ∈ {10, 20, 100}. Band indexes: 0 = top-10, 1 = 11–20, 2 = 21–100.
	Survivors [3]map[int][]int
}

// Bands and targets of Figure 10.
var (
	driftBands   = [3][2]int{{1, 10}, {11, 20}, {21, 100}}
	driftTargets = []int{10, 20, 100}
)

// BandName names a drift band index.
func BandName(b int) string {
	switch b {
	case 0:
		return "top 10"
	case 1:
		return "rank 11-20"
	default:
		return "rank 21-100"
	}
}

// ComputeFigure10 measures day-to-day hot-set drift for one region's
// queries (the paper uses North America).
func ComputeFigure10(sessions []Session, days int, region geo.Region) HotSetDrift {
	ri := regionIndex(region)
	idx := indexDays(sessions, days)
	// Rank each day's queries for the region.
	ranked := make([][]string, days)
	for d := 0; d < days; d++ {
		type kf struct {
			key string
			n   int
		}
		var list []kf
		for key, rf := range idx[d].freq {
			if rf.counts[ri] > 0 {
				list = append(list, kf{key, rf.counts[ri]})
			}
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].n != list[b].n {
				return list[a].n > list[b].n
			}
			return list[a].key < list[b].key
		})
		keys := make([]string, len(list))
		for i, e := range list {
			keys[i] = e.key
		}
		ranked[d] = keys
	}
	var out HotSetDrift
	for b := range out.Survivors {
		out.Survivors[b] = make(map[int][]int)
	}
	for d := 0; d+1 < days; d++ {
		today, tomorrow := ranked[d], ranked[d+1]
		for _, n := range driftTargets {
			top := make(map[string]bool, n)
			for i := 0; i < n && i < len(tomorrow); i++ {
				top[tomorrow[i]] = true
			}
			for b, band := range driftBands {
				lo, hi := band[0], band[1]
				count := 0
				for r := lo; r <= hi && r <= len(today); r++ {
					if top[today[r-1]] {
						count++
					}
				}
				out.Survivors[b][n] = append(out.Survivors[b][n], count)
			}
		}
	}
	return out
}

// FractionWithMoreThan returns, for a band and target N, the fraction of
// day pairs with more than x survivors — the y-axis of Figure 10.
func (h *HotSetDrift) FractionWithMoreThan(band, n, x int) float64 {
	counts := h.Survivors[band][n]
	if len(counts) == 0 {
		return 0
	}
	more := 0
	for _, c := range counts {
		if c > x {
			more++
		}
	}
	return float64(more) / float64(len(counts))
}

// PopularityClass identifies the Figure 11 query classes.
type PopularityClass int

// The three classes Figure 11 plots.
const (
	ClassNAOnly PopularityClass = iota
	ClassEUOnly
	ClassNAEU
)

func (c PopularityClass) String() string {
	switch c {
	case ClassNAOnly:
		return "NA-only"
	case ClassEUOnly:
		return "EU-only"
	default:
		return "NA∩EU"
	}
}

// Popularity is Figure 11: per-day query popularity by rank for each
// class, averaged across days, with Zipf fits.
type Popularity struct {
	// Freq[class][r] is the average frequency of the rank-(r+1) query.
	Freq map[PopularityClass][]float64
	// Fit holds the single-segment Zipf fit per class.
	Fit map[PopularityClass]dist.ZipfFit
	// BodyFit and TailFit are the two-segment fit of the intersection
	// class (ranks 1–45 and 46–100).
	BodyFit dist.ZipfFit
	TailFit dist.ZipfFit
}

// popularityRanks is the rank horizon of Figure 11.
const popularityRanks = 100

// ComputeFigure11 ranks queries per day within each geographic class and
// averages the frequency at each rank over all days, preserving hot-set
// drift exactly as the paper prescribes.
func ComputeFigure11(sessions []Session, days int) (Popularity, error) {
	idx := indexDays(sessions, days)
	sums := map[PopularityClass][]float64{
		ClassNAOnly: make([]float64, popularityRanks),
		ClassEUOnly: make([]float64, popularityRanks),
		ClassNAEU:   make([]float64, popularityRanks),
	}
	daysCounted := map[PopularityClass]int{}
	for d := 0; d < days; d++ {
		// Partition the day's queries into the three classes.
		classTotals := map[PopularityClass]int{}
		classFreqs := map[PopularityClass][]int{}
		for _, rf := range idx[d].freq {
			na, eu := rf.counts[0], rf.counts[1]
			as := rf.counts[2]
			total := na + eu + as
			var c PopularityClass
			switch {
			case na > 0 && eu > 0:
				c = ClassNAEU
			case na > 0 && as == 0:
				c = ClassNAOnly
			case eu > 0 && as == 0:
				c = ClassEUOnly
			default:
				continue
			}
			classFreqs[c] = append(classFreqs[c], total)
			classTotals[c] += total
		}
		for c, freqs := range classFreqs {
			if classTotals[c] == 0 {
				continue
			}
			sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
			for r := 0; r < popularityRanks && r < len(freqs); r++ {
				sums[c][r] += float64(freqs[r]) / float64(classTotals[c])
			}
			daysCounted[c]++
		}
	}
	out := Popularity{
		Freq: make(map[PopularityClass][]float64),
		Fit:  make(map[PopularityClass]dist.ZipfFit),
	}
	for c, sum := range sums {
		n := daysCounted[c]
		freq := make([]float64, popularityRanks)
		if n > 0 {
			for r := range sum {
				freq[r] = sum[r] / float64(n)
			}
		}
		out.Freq[c] = freq
		if fit, err := dist.FitZipf(freq); err == nil {
			out.Fit[c] = fit
		}
	}
	var err error
	if body, e := dist.FitZipfRange(out.Freq[ClassNAEU], 1, 45); e == nil {
		out.BodyFit = body
	} else {
		err = e
	}
	if tail, e := dist.FitZipfRange(out.Freq[ClassNAEU], 46, popularityRanks); e == nil {
		out.TailFit = tail
	}
	return out, err
}
