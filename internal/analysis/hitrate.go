package analysis

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// HitRates is the query hit-rate characterization — the paper's stated
// future work ("characterizing the query hit rate of the peers, including
// the correlation of hit rate with other measures"). It measures, for
// every keyword query from a direct peer, how many QUERYHIT responses the
// node observed, and correlates the hit rate with query popularity and
// geography.
type HitRates struct {
	// ByRegion samples hits-per-query for each region.
	ByRegion map[geo.Region]*stats.Sample
	// AnsweredFraction is the per-region share of queries with ≥1 hit.
	AnsweredFraction map[geo.Region]float64
	// Buckets relate same-day query popularity to hit counts.
	Buckets []HitBucket
	// PopularityCorrelation is the Pearson correlation between a query's
	// same-day repetition count and its hit count.
	PopularityCorrelation float64
}

// HitBucket aggregates queries whose keyword set had been seen
// [MinCount, MaxCount] times that day.
type HitBucket struct {
	MinCount, MaxCount int
	N                  int
	MeanHits           float64
	AnsweredFraction   float64
}

// hitBucketBounds defines the popularity buckets.
var hitBucketBounds = [][2]int{{1, 1}, {2, 3}, {4, 7}, {8, 15}, {16, 1 << 30}}

// ComputeHitRates measures the hit-rate extension from the raw trace.
func ComputeHitRates(tr *trace.Trace) HitRates {
	reg := geo.Default()
	out := HitRates{
		ByRegion:         map[geo.Region]*stats.Sample{},
		AnsweredFraction: map[geo.Region]float64{},
	}
	answered := map[geo.Region]int{}
	totals := map[geo.Region]int{}
	for _, r := range continental {
		out.ByRegion[r] = &stats.Sample{}
	}

	// First pass: per-day repetition count of each keyword set, assigning
	// each query its own occurrence index (popularity seen so far).
	type obs struct {
		hits  int
		count int // same-day occurrence index of its keyword set, 1-based
	}
	dayCounts := map[int]map[string]int{}
	var observations []obs
	for i := range tr.Queries {
		q := &tr.Queries[i]
		if q.SHA1 {
			continue
		}
		key := wire.KeywordKey(q.Text)
		if key == "" {
			continue
		}
		day := simtime.DayIndex(q.At)
		dc := dayCounts[day]
		if dc == nil {
			dc = map[string]int{}
			dayCounts[day] = dc
		}
		dc[key]++
		observations = append(observations, obs{hits: int(q.Hits), count: dc[key]})

		r := reg.Lookup(tr.Conns[q.ConnID].Addr)
		if sample, ok := out.ByRegion[r]; ok {
			sample.Add(float64(q.Hits))
			totals[r]++
			if q.Hits > 0 {
				answered[r]++
			}
		}
	}
	for _, r := range continental {
		if totals[r] > 0 {
			out.AnsweredFraction[r] = float64(answered[r]) / float64(totals[r])
		}
	}

	// Popularity buckets and correlation.
	var xs, ys []float64
	bucketAgg := make([]struct {
		n, answered int
		hits        float64
	}, len(hitBucketBounds))
	for _, o := range observations {
		xs = append(xs, float64(o.count))
		ys = append(ys, float64(o.hits))
		idx := sort.Search(len(hitBucketBounds), func(i int) bool {
			return hitBucketBounds[i][1] >= o.count
		})
		if idx == len(hitBucketBounds) {
			idx--
		}
		bucketAgg[idx].n++
		bucketAgg[idx].hits += float64(o.hits)
		if o.hits > 0 {
			bucketAgg[idx].answered++
		}
	}
	for i, agg := range bucketAgg {
		b := HitBucket{MinCount: hitBucketBounds[i][0], MaxCount: hitBucketBounds[i][1], N: agg.n}
		if agg.n > 0 {
			b.MeanHits = agg.hits / float64(agg.n)
			b.AnsweredFraction = float64(agg.answered) / float64(agg.n)
		}
		out.Buckets = append(out.Buckets, b)
	}
	out.PopularityCorrelation = stats.Pearson(xs, ys)
	return out
}
