package analysis

import (
	"fmt"
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/geo"
	"repro/internal/trace"
)

// addresses per region for synthetic traces.
var testAddrs = map[geo.Region]string{
	geo.NorthAmerica: "66.10.0.%d",
	geo.Europe:       "80.10.0.%d",
	geo.Asia:         "61.10.0.%d",
}

type traceBuilder struct {
	tr     *trace.Trace
	nextIP map[geo.Region]int
}

func newBuilder(days int) *traceBuilder {
	return &traceBuilder{
		tr:     &trace.Trace{Days: days, PongSampleRate: 1, HitSampleRate: 1},
		nextIP: map[geo.Region]int{},
	}
}

func (b *traceBuilder) addr(r geo.Region) netip.Addr {
	b.nextIP[r]++
	return netip.MustParseAddr(fmt.Sprintf(testAddrs[r], b.nextIP[r]%250+1))
}

// session adds a connection with the given queries (offsets from start).
func (b *traceBuilder) session(r geo.Region, start, dur time.Duration, queryOffsets []time.Duration, texts []string) uint64 {
	id := uint64(len(b.tr.Conns))
	b.tr.Conns = append(b.tr.Conns, trace.Conn{
		ID: id, Start: start, End: start + dur, Addr: b.addr(r),
	})
	for i, off := range queryOffsets {
		text := "query"
		if texts != nil {
			text = texts[i]
		}
		b.tr.Queries = append(b.tr.Queries, trace.Query{
			ConnID: id, At: start + off, Text: text, Hops: 1,
		})
	}
	return id
}

func enrich(t *testing.T, tr *trace.Trace) []Session {
	t.Helper()
	return Enrich(filter.Apply(tr))
}

func TestEnrichResolvesRegions(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.NorthAmerica, at(0, 3), 2*time.Minute, nil, nil)
	b.session(geo.Europe, at(0, 12), 2*time.Minute, nil, nil)
	ss := enrich(t, b.tr)
	if len(ss) != 2 {
		t.Fatalf("%d sessions", len(ss))
	}
	if ss[0].Region != geo.NorthAmerica || ss[0].StartHour != 3 || !ss[0].Peak {
		t.Errorf("session 0: %+v", ss[0])
	}
	if ss[1].Region != geo.Europe || ss[1].StartHour != 12 || !ss[1].Peak {
		t.Errorf("session 1: %+v", ss[1])
	}
}

func at(day, hour int) time.Duration {
	return time.Duration(day)*24*time.Hour + time.Duration(hour)*time.Hour
}

func TestComputeTable1(t *testing.T) {
	tr := &trace.Trace{
		Days: 40,
		Counts: trace.MessageCounts{
			Query: 1000, QueryHit: 50, Ping: 700, Pong: 400, QueryHop1: 60,
		},
		Conns: []trace.Conn{
			{ID: 0, Ultrapeer: true, Addr: netip.MustParseAddr("66.0.0.1"), End: time.Minute},
			{ID: 1, Addr: netip.MustParseAddr("66.0.0.2"), End: time.Minute},
		},
	}
	t1 := ComputeTable1(tr)
	if t1.Queries != 1000 || t1.DirectConnections != 2 || t1.QueriesHop1 != 60 {
		t.Errorf("table1 = %+v", t1)
	}
	if t1.UltrapeerFraction != 0.5 {
		t.Errorf("up fraction = %v", t1.UltrapeerFraction)
	}
	if empty := ComputeTable1(&trace.Trace{}); empty.UltrapeerFraction != 0 {
		t.Error("empty trace fraction should be 0")
	}
}

func TestComputeFigure1(t *testing.T) {
	b := newBuilder(2)
	// Day 0, hour 3: three NA one-hop conns, one EU.
	for i := 0; i < 3; i++ {
		b.session(geo.NorthAmerica, at(0, 3)+time.Duration(i)*time.Minute, 2*time.Minute, nil, nil)
	}
	b.session(geo.Europe, at(0, 3), 2*time.Minute, nil, nil)
	// Remote pongs at hour 3: 1 NA, 1 Asia.
	b.tr.Pongs = append(b.tr.Pongs,
		trace.Pong{At: at(0, 3), Addr: netip.MustParseAddr("66.99.0.1"), Hops: 4},
		trace.Pong{At: at(0, 3), Addr: netip.MustParseAddr("61.99.0.1"), Hops: 5},
	)
	g := ComputeFigure1(b.tr)
	if got := g.OneHop[geo.NorthAmerica][3]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("one-hop NA share at hour 3 = %v, want 0.75", got)
	}
	if got := g.AllPeers[geo.Asia][3]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("all-peer Asia share = %v, want 0.5", got)
	}
	if !math.IsNaN(g.OneHop[geo.NorthAmerica][10]) {
		t.Error("hours without observations should be NaN")
	}
}

func TestComputeFigure2(t *testing.T) {
	tr := &trace.Trace{}
	tr.Pongs = []trace.Pong{
		{SharedFiles: 0, Hops: 1},
		{SharedFiles: 0, Hops: 1},
		{SharedFiles: 10, Hops: 1},
		{SharedFiles: 0, Hops: 4},
		{SharedFiles: 500, Hops: 4}, // overflow bucket
	}
	f := ComputeFigure2(tr)
	if math.Abs(f.OneHop[0]-2.0/3) > 1e-9 {
		t.Errorf("one-hop P(0 files) = %v", f.OneHop[0])
	}
	if math.Abs(f.All[0]-0.5) > 1e-9 {
		t.Errorf("all P(0 files) = %v", f.All[0])
	}
}

func TestComputeFigure3(t *testing.T) {
	b := newBuilder(2)
	// NA session at hour 3 day 0 with 2 queries; another on day 1 with 4.
	b.session(geo.NorthAmerica, at(0, 3), 10*time.Minute,
		[]time.Duration{time.Minute, 2 * time.Minute}, []string{"a", "b"})
	b.session(geo.NorthAmerica, at(1, 3), 10*time.Minute,
		[]time.Duration{1 * time.Minute, 150 * time.Second, 250 * time.Second, 470 * time.Second},
		[]string{"a", "b", "c", "d"})
	load := ComputeFigure3(enrich(t, b.tr))
	series := load.PerRegion[geo.NorthAmerica]
	bin := 6 // hour 3, first half hour
	if series.Min[bin] != 2 || series.Max[bin] != 4 || series.Avg[bin] != 3 {
		t.Errorf("bin %d = %v/%v/%v, want 2/3/4", bin, series.Min[bin], series.Avg[bin], series.Max[bin])
	}
}

func TestComputeFigure4(t *testing.T) {
	b := newBuilder(1)
	// Hour 5: 3 passive + 1 active NA session.
	for i := 0; i < 3; i++ {
		b.session(geo.NorthAmerica, at(0, 5)+time.Duration(i)*time.Minute, 2*time.Minute, nil, nil)
	}
	b.session(geo.NorthAmerica, at(0, 5), 10*time.Minute, []time.Duration{time.Minute}, nil)
	pf := ComputeFigure4(enrich(t, b.tr))
	if got := pf.PerRegion[geo.NorthAmerica].Avg[5]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("passive fraction = %v, want 0.75", got)
	}
}

func TestComputeFigure5(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.Asia, at(0, 13), 90*time.Second, nil, nil)
	b.session(geo.Asia, at(0, 13), 10*time.Minute, nil, nil)
	b.session(geo.Europe, at(0, 3), 5*time.Hour, nil, nil)
	pd := ComputeFigure5(enrich(t, b.tr))
	if pd.ByRegion[geo.Asia].Len() != 2 {
		t.Fatalf("Asia samples = %d", pd.ByRegion[geo.Asia].Len())
	}
	if got := pd.ByRegion[geo.Asia].CCDF(120); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Asia CCDF(2min) = %v", got)
	}
	// EU session started at key period 03:00.
	if pd.ByPeriod[geo.Europe][3].Len() != 1 {
		t.Errorf("EU period-3 samples = %d", pd.ByPeriod[geo.Europe][3].Len())
	}
}

func TestComputeFigure6(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.Europe, at(0, 11), 30*time.Minute,
		[]time.Duration{time.Minute, 150 * time.Second, 310 * time.Second},
		[]string{"a", "b", "c"})
	// Session with an interval run: 1 user query + 4 automated.
	b.session(geo.Asia, at(0, 13), 30*time.Minute,
		[]time.Duration{time.Minute,
			10 * time.Minute, 10*time.Minute + 10*time.Second,
			10*time.Minute + 20*time.Second, 10*time.Minute + 30*time.Second},
		[]string{"user q", "m1", "m2", "m3", "m4"})
	q := ComputeFigure6(enrich(t, b.tr))
	if q.ByRegion[geo.Europe].Len() != 1 || q.ByRegion[geo.Europe].Max() != 3 {
		t.Errorf("EU queries: %+v", q.ByRegion[geo.Europe].Values())
	}
	// Asia session: user count 1, unfiltered count 5.
	if got := q.ByRegion[geo.Asia].Max(); got != 1 {
		t.Errorf("Asia filtered count = %v, want 1", got)
	}
	if got := q.Unfiltered[geo.Asia].Max(); got != 5 {
		t.Errorf("Asia unfiltered count = %v, want 5", got)
	}
	if q.ByPeriodEU[11].Len() != 1 {
		t.Errorf("EU period-11 sessions = %d", q.ByPeriodEU[11].Len())
	}
}

func TestComputeFigure7(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.NorthAmerica, at(0, 3), 30*time.Minute,
		[]time.Duration{45 * time.Second}, []string{"solo"})
	b.session(geo.NorthAmerica, at(0, 3), 30*time.Minute,
		[]time.Duration{90 * time.Second, 200 * time.Second, 330 * time.Second, 510 * time.Second},
		[]string{"a", "b", "c", "d"})
	f := ComputeFigure7(enrich(t, b.tr))
	if f.ByRegion[geo.NorthAmerica].Len() != 2 {
		t.Fatalf("NA samples = %d", f.ByRegion[geo.NorthAmerica].Len())
	}
	// Bucket 0 (<3 queries) has the 45 s sample; bucket 2 (>3) the 90 s one.
	if got := f.ByBucketNA[0].Max(); got != 45 {
		t.Errorf("bucket <3 = %v", got)
	}
	if got := f.ByBucketNA[2].Max(); got != 90 {
		t.Errorf("bucket >3 = %v", got)
	}
}

func TestComputeFigure8(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.Europe, at(0, 11), 30*time.Minute,
		[]time.Duration{time.Minute, 2 * time.Minute}, []string{"a", "b"})
	ia := ComputeFigure8(enrich(t, b.tr))
	if ia.ByRegion[geo.Europe].Len() != 1 || ia.ByRegion[geo.Europe].Max() != 60 {
		t.Errorf("EU IATs: %+v", ia.ByRegion[geo.Europe].Values())
	}
	// Two-query session lands in IAT bucket 0.
	if ia.ByBucketEU[0].Len() != 1 {
		t.Errorf("bucket =2 count = %d", ia.ByBucketEU[0].Len())
	}
	if ia.ByPeriodEU[11].Len() != 1 {
		t.Errorf("period 11 count = %d", ia.ByPeriodEU[11].Len())
	}
}

func TestComputeFigure9(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.NorthAmerica, at(0, 19), 10*time.Minute,
		[]time.Duration{2 * time.Minute}, []string{"one"})
	al := ComputeFigure9(enrich(t, b.tr))
	if al.ByRegion[geo.NorthAmerica].Len() != 1 {
		t.Fatalf("NA samples = %d", al.ByRegion[geo.NorthAmerica].Len())
	}
	if got := al.ByRegion[geo.NorthAmerica].Max(); got != 480 {
		t.Errorf("after-last = %v s, want 480", got)
	}
	if al.ByBucketNA[0].Len() != 1 {
		t.Errorf("bucket-1 count = %d", al.ByBucketNA[0].Len())
	}
}

func TestComputeTable3(t *testing.T) {
	b := newBuilder(2)
	// Day 0: NA issues {x, shared}; EU issues {y, shared}; AS issues {z}.
	b.session(geo.NorthAmerica, at(0, 3), 10*time.Minute,
		[]time.Duration{time.Minute, 2 * time.Minute}, []string{"x", "shared"})
	b.session(geo.Europe, at(0, 12), 10*time.Minute,
		[]time.Duration{time.Minute, 2 * time.Minute}, []string{"y", "shared"})
	b.session(geo.Asia, at(0, 13), 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"z"})
	// Day 1: NA issues {x2}.
	b.session(geo.NorthAmerica, at(1, 3), 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"x2"})
	qc := ComputeTable3(enrich(t, b.tr), 2)
	d1 := qc.Windows[1]
	// Average over two 1-day windows: NA (2+1)/2, EU (2+0)/2, AS (1+0)/2.
	if math.Abs(d1.NA-1.5) > 1e-9 || math.Abs(d1.EU-1) > 1e-9 || math.Abs(d1.AS-0.5) > 1e-9 {
		t.Errorf("1-day counts = %+v", d1)
	}
	if math.Abs(d1.NAEU-0.5) > 1e-9 || d1.All != 0 {
		t.Errorf("intersections = %+v", d1)
	}
	d2 := qc.Windows[2]
	if d2.NA != 3 || d2.EU != 2 || d2.NAEU != 1 {
		t.Errorf("2-day counts = %+v", d2)
	}
}

func TestComputeFigure10(t *testing.T) {
	b := newBuilder(2)
	// Day 0: NA queries a,b,c with frequencies 3,2,1.
	offs := []time.Duration{}
	texts := []string{}
	day0 := []struct {
		text string
		n    int
	}{{"a", 3}, {"b", 2}, {"c", 1}}
	k := 0
	for _, e := range day0 {
		for i := 0; i < e.n; i++ {
			// Different sessions so rule 2 does not dedupe.
			b.session(geo.NorthAmerica, at(0, 3)+time.Duration(k)*time.Minute,
				10*time.Minute, []time.Duration{time.Minute}, []string{e.text})
			k++
		}
	}
	_ = offs
	_ = texts
	// Day 1: only "a" survives; new queries d, e.
	for _, text := range []string{"a", "d", "e"} {
		b.session(geo.NorthAmerica, at(1, 3)+time.Duration(k)*time.Minute,
			10*time.Minute, []time.Duration{time.Minute}, []string{text})
		k++
	}
	drift := ComputeFigure10(enrich(t, b.tr), 2, geo.NorthAmerica)
	counts := drift.Survivors[0][10] // top-10 day 0 found in top-10 day 1
	if len(counts) != 1 || counts[0] != 1 {
		t.Errorf("survivors = %v, want [1]", counts)
	}
	if got := drift.FractionWithMoreThan(0, 10, 0); got != 1 {
		t.Errorf("P(>0) = %v", got)
	}
	if got := drift.FractionWithMoreThan(0, 10, 1); got != 0 {
		t.Errorf("P(>1) = %v", got)
	}
}

func TestComputeFigure11(t *testing.T) {
	b := newBuilder(1)
	// NA-only queries with a steep frequency profile, one shared NA∩EU
	// query.
	day0 := []struct {
		text string
		n    int
	}{{"na1", 8}, {"na2", 4}, {"na3", 2}, {"na4", 1}}
	k := 0
	for _, e := range day0 {
		for i := 0; i < e.n; i++ {
			b.session(geo.NorthAmerica, at(0, 2)+time.Duration(k)*time.Minute,
				10*time.Minute, []time.Duration{time.Minute}, []string{e.text})
			k++
		}
	}
	b.session(geo.NorthAmerica, at(0, 2)+time.Duration(k)*time.Minute, 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"both"})
	k++
	b.session(geo.Europe, at(0, 12)+time.Duration(k)*time.Minute, 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"both"})
	pop, _ := ComputeFigure11(enrich(t, b.tr), 1)
	naFreq := pop.Freq[ClassNAOnly]
	if naFreq[0] < naFreq[1] || naFreq[1] < naFreq[2] {
		t.Errorf("NA-only frequencies not ranked: %v", naFreq[:4])
	}
	// The shared query forms the intersection class.
	if pop.Freq[ClassNAEU][0] == 0 {
		t.Error("intersection class empty")
	}
	if _, ok := pop.Fit[ClassNAOnly]; !ok {
		t.Error("missing NA-only fit")
	}
}

func TestBandName(t *testing.T) {
	if BandName(0) != "top 10" || BandName(1) != "rank 11-20" || BandName(2) != "rank 21-100" {
		t.Error("band names")
	}
}

func TestComputeHitRates(t *testing.T) {
	b := newBuilder(1)
	id := b.session(geo.NorthAmerica, at(0, 3), 10*time.Minute,
		[]time.Duration{time.Minute, 200 * time.Second}, []string{"popular", "rare"})
	_ = id
	// Another session repeats "popular" the same day.
	b.session(geo.NorthAmerica, at(0, 4), 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"popular"})
	// Assign hits: popular queries answered, rare not.
	b.tr.Queries[0].Hits = 4
	b.tr.Queries[1].Hits = 0
	b.tr.Queries[2].Hits = 6
	hr := ComputeHitRates(b.tr)
	na := hr.ByRegion[geo.NorthAmerica]
	if na.Len() != 3 {
		t.Fatalf("NA samples = %d", na.Len())
	}
	if math.Abs(hr.AnsweredFraction[geo.NorthAmerica]-2.0/3) > 1e-9 {
		t.Errorf("answered = %v", hr.AnsweredFraction[geo.NorthAmerica])
	}
	// Bucket 1 (first occurrence) holds "popular"(first), "rare"; bucket
	// 2-3 holds the repeat.
	if hr.Buckets[0].N != 2 || hr.Buckets[1].N != 1 {
		t.Fatalf("bucket sizes: %+v", hr.Buckets[:2])
	}
	if hr.Buckets[1].MeanHits != 6 {
		t.Errorf("repeat bucket mean = %v", hr.Buckets[1].MeanHits)
	}
	if hr.PopularityCorrelation <= 0 {
		t.Errorf("popularity correlation = %v, want positive", hr.PopularityCorrelation)
	}
}

func TestComputeHitRatesSkipsSHA1(t *testing.T) {
	b := newBuilder(1)
	b.session(geo.Europe, at(0, 12), 10*time.Minute,
		[]time.Duration{time.Minute}, []string{"kw"})
	b.tr.Queries = append(b.tr.Queries, trace.Query{
		ConnID: 0, At: at(0, 12) + 2*time.Minute, SHA1: true, Hops: 1, Hits: 9,
	})
	hr := ComputeHitRates(b.tr)
	if hr.ByRegion[geo.Europe].Len() != 1 {
		t.Fatalf("EU samples = %d (SHA1 must be excluded)", hr.ByRegion[geo.Europe].Len())
	}
}
