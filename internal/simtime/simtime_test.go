package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpoch(t *testing.T) {
	if Epoch.Year() != 2004 || Epoch.Month() != time.March || Epoch.Day() != 15 {
		t.Fatalf("epoch = %v, want 2004-03-15", Epoch)
	}
}

func TestHourBins(t *testing.T) {
	cases := []struct {
		t        Time
		hour     int
		halfHour int
		day      int
	}{
		{0, 0, 0, 0},
		{59 * time.Minute, 0, 1, 0},
		{time.Hour, 1, 2, 0},
		{23*time.Hour + 59*time.Minute, 23, 47, 0},
		{Day, 0, 0, 1},
		{40*Day - time.Second, 23, 47, 39},
		{At(3, 13, 30, 0), 13, 27, 3},
	}
	for _, c := range cases {
		if got := HourOfDay(c.t); got != c.hour {
			t.Errorf("HourOfDay(%v) = %d, want %d", c.t, got, c.hour)
		}
		if got := HalfHourOfDay(c.t); got != c.halfHour {
			t.Errorf("HalfHourOfDay(%v) = %d, want %d", c.t, got, c.halfHour)
		}
		if got := DayIndex(c.t); got != c.day {
			t.Errorf("DayIndex(%v) = %d, want %d", c.t, got, c.day)
		}
	}
}

func TestAt(t *testing.T) {
	got := At(2, 3, 4, 5)
	want := 2*Day + 3*time.Hour + 4*time.Minute + 5*time.Second
	if got != want {
		t.Fatalf("At = %v, want %v", got, want)
	}
}

func TestAbsolute(t *testing.T) {
	a := Absolute(At(1, 12, 0, 0))
	if a.Day() != 16 || a.Hour() != 12 {
		t.Fatalf("Absolute = %v, want March 16 12:00", a)
	}
}

// eachScheduler runs a subtest against every Scheduler implementation; the
// API contract is one contract, so every behavioral test runs on both.
func eachScheduler(t *testing.T, f func(t *testing.T, s Scheduler)) {
	t.Helper()
	t.Run("heap", func(t *testing.T) { f(t, NewScheduler()) })
	t.Run("calendar", func(t *testing.T) { f(t, NewCalendarScheduler()) })
}

func TestSchedulerOrdering(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		var order []int
		s.Schedule(3*time.Second, EventFunc(func(Time) { order = append(order, 3) }))
		s.Schedule(1*time.Second, EventFunc(func(Time) { order = append(order, 1) }))
		s.Schedule(2*time.Second, EventFunc(func(Time) { order = append(order, 2) }))
		s.Run()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("fire order = %v", order)
		}
		if s.Now() != 3*time.Second {
			t.Fatalf("clock = %v, want 3s", s.Now())
		}
		if s.Fired() != 3 {
			t.Fatalf("fired = %d, want 3", s.Fired())
		}
	})
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.Schedule(time.Second, EventFunc(func(Time) { order = append(order, i) }))
		}
		s.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("equal-timestamp events fired out of order: %v", order)
			}
		}
	})
}

func TestSchedulerCancel(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		fired := false
		h := s.Schedule(time.Second, EventFunc(func(Time) { fired = true }))
		if h.Cancelled() {
			t.Fatal("handle cancelled before firing")
		}
		s.Cancel(h)
		if !h.Cancelled() {
			t.Fatal("handle should report cancelled")
		}
		if s.Pending() != 0 {
			t.Fatalf("pending = %d after cancel, want 0", s.Pending())
		}
		s.Run()
		if fired {
			t.Fatal("cancelled event fired")
		}
		s.Cancel(h) // double cancel is a no-op
	})
}

func TestSchedulerCancelMiddle(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		var order []int
		s.Schedule(1*time.Second, EventFunc(func(Time) { order = append(order, 1) }))
		h := s.Schedule(2*time.Second, EventFunc(func(Time) { order = append(order, 2) }))
		s.Schedule(3*time.Second, EventFunc(func(Time) { order = append(order, 3) }))
		s.Cancel(h)
		s.Run()
		if len(order) != 2 || order[0] != 1 || order[1] != 3 {
			t.Fatalf("order = %v, want [1 3]", order)
		}
	})
}

func TestScheduleInPastFiresNow(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		s.Schedule(10*time.Second, EventFunc(func(now Time) {
			s.Schedule(5*time.Second, EventFunc(func(now2 Time) {
				if now2 != 10*time.Second {
					t.Errorf("past event fired at %v, want clamped to 10s", now2)
				}
			}))
		}))
		s.Run()
		if s.Now() != 10*time.Second {
			t.Fatalf("clock = %v", s.Now())
		}
	})
}

func TestRunUntil(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		var fired []Time
		for i := 1; i <= 5; i++ {
			at := Time(i) * time.Second
			s.Schedule(at, EventFunc(func(now Time) { fired = append(fired, now) }))
		}
		s.RunUntil(3 * time.Second)
		if len(fired) != 3 {
			t.Fatalf("fired %d events, want 3", len(fired))
		}
		if s.Now() != 3*time.Second {
			t.Fatalf("clock = %v, want 3s", s.Now())
		}
		if s.Pending() != 2 {
			t.Fatalf("pending = %d, want 2", s.Pending())
		}
		// Horizon beyond all events advances the clock to the horizon.
		s.RunUntil(time.Minute)
		if s.Now() != time.Minute {
			t.Fatalf("clock = %v, want 1m", s.Now())
		}
	})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	eachScheduler(t, func(t *testing.T, s Scheduler) {
		count := 0
		var chain func(now Time)
		chain = func(now Time) {
			count++
			if count < 100 {
				s.After(time.Second, EventFunc(chain))
			}
		}
		s.Schedule(0, EventFunc(chain))
		s.Run()
		if count != 100 {
			t.Fatalf("chain fired %d times, want 100", count)
		}
		if s.Now() != 99*time.Second {
			t.Fatalf("clock = %v, want 99s", s.Now())
		}
	})
}

// Property: for any set of non-negative delays, events fire in sorted order
// on both implementations.
func TestPropertyFireOrderSorted(t *testing.T) {
	eachSched := []func() Scheduler{
		func() Scheduler { return NewScheduler() },
		func() Scheduler { return NewCalendarScheduler() },
	}
	for _, mk := range eachSched {
		f := func(delays []uint16) bool {
			s := mk()
			var fired []Time
			for _, d := range delays {
				s.Schedule(Time(d)*time.Millisecond, EventFunc(func(now Time) {
					fired = append(fired, now)
				}))
			}
			s.Run()
			for i := 1; i < len(fired); i++ {
				if fired[i] < fired[i-1] {
					return false
				}
			}
			return len(fired) == len(delays)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: hour and half-hour bins agree (halfHour/2 == hour) for any time.
func TestPropertyBinsConsistent(t *testing.T) {
	f := func(secs uint32) bool {
		tt := Time(secs) * time.Second
		return HalfHourOfDay(tt)/2 == HourOfDay(tt) && DayIndex(tt) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
