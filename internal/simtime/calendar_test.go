package simtime

import (
	"math/rand/v2"
	"testing"
	"time"
)

// popTrace drives a scheduler through a scripted operation sequence and
// records the exact pop order as (at, tag) pairs. The script is replayed
// identically on every implementation, so equal traces mean equal order —
// ties, cancellations and reentrant scheduling included.
type popRecord struct {
	at  Time
	tag int
}

// opScript is a deterministic random operation mix: schedules (with
// deliberately colliding timestamps), cancellations of random live
// handles, events that schedule more events when they fire, and
// far-future outliers that force the calendar across empty years.
type opScript struct {
	seed   uint64
	n      int
	spanNS int64
	// tieEvery forces every k-th timestamp onto a small grid so exact
	// collisions are common, not astronomically rare.
	tieEvery int
	// farEvery schedules every k-th event years past the rest.
	farEvery int
	// cancelFrac cancels roughly this fraction of scheduled events.
	cancelFrac float64
	// chainFrac makes roughly this fraction of events schedule a child
	// when they fire (reentrant scheduling, like the probe machinery).
	chainFrac float64
}

func (sc opScript) run(s Scheduler) []popRecord {
	rng := rand.New(rand.NewPCG(sc.seed, 0xca1e4da5))
	var trace []popRecord
	var handles []Handle
	tag := 0
	schedule := func(at Time) {
		myTag := tag
		tag++
		var ev Event
		ev = EventFunc(func(now Time) {
			trace = append(trace, popRecord{at: now, tag: myTag})
			if rng.Float64() < sc.chainFrac {
				childTag := tag
				tag++
				child := now + Time(rng.Int64N(sc.spanNS/4+1))
				s.Schedule(child, EventFunc(func(n2 Time) {
					trace = append(trace, popRecord{at: n2, tag: childTag})
				}))
			}
			if len(handles) > 0 && rng.Float64() < sc.cancelFrac {
				s.Cancel(handles[rng.IntN(len(handles))])
			}
		})
		handles = append(handles, s.Schedule(at, ev))
	}
	for i := 0; i < sc.n; i++ {
		var at Time
		switch {
		case sc.farEvery > 0 && i%sc.farEvery == sc.farEvery-1:
			// Far past everything else: exercises the direct-search jump.
			// The factor keeps the largest product well inside int64.
			at = Time(sc.spanNS) * 50 * Time(1+rng.Int64N(4))
		case sc.tieEvery > 0 && i%sc.tieEvery == 0:
			at = Time(rng.Int64N(8)) * Time(sc.spanNS/8+1)
		default:
			at = Time(rng.Int64N(sc.spanNS))
		}
		schedule(at)
		if rng.Float64() < sc.cancelFrac/2 {
			s.Cancel(handles[rng.IntN(len(handles))])
		}
	}
	s.Run()
	return trace
}

// TestCalendarHeapEquivalence is the order-equivalence pin: across many
// scripted workloads the calendar queue must pop the exact sequence the
// heap pops — same timestamps, same FIFO tie resolution, same surviving
// set after cancellations.
func TestCalendarHeapEquivalence(t *testing.T) {
	scripts := []opScript{
		{seed: 1, n: 500, spanNS: int64(time.Hour), tieEvery: 3, cancelFrac: 0.2, chainFrac: 0.3},
		{seed: 2, n: 2000, spanNS: int64(time.Second), tieEvery: 2, cancelFrac: 0.4, chainFrac: 0.1},
		{seed: 3, n: 1000, spanNS: int64(40 * 24 * time.Hour), farEvery: 7, cancelFrac: 0.1, chainFrac: 0.2},
		{seed: 4, n: 50, spanNS: 10, tieEvery: 1, cancelFrac: 0.3, chainFrac: 0.5}, // almost everything ties
		{seed: 5, n: 3000, spanNS: int64(time.Millisecond), cancelFrac: 0.6, chainFrac: 0.05},
		{seed: 6, n: 200, spanNS: int64(365 * 24 * time.Hour), farEvery: 2, chainFrac: 0.4}, // sparse, far-future heavy
	}
	for _, sc := range scripts {
		heapTrace := sc.run(NewScheduler())
		calTrace := sc.run(NewCalendarScheduler())
		if len(heapTrace) != len(calTrace) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", sc.seed, len(heapTrace), len(calTrace))
		}
		for i := range heapTrace {
			if heapTrace[i] != calTrace[i] {
				t.Fatalf("seed %d: pop %d differs: heap %v calendar %v", sc.seed, i, heapTrace[i], calTrace[i])
			}
		}
		if len(heapTrace) == 0 {
			t.Fatalf("seed %d: empty trace proves nothing", sc.seed)
		}
	}
}

// TestCalendarStepEquivalence drives both implementations one Step at a
// time, checking clock, fired count and pending count after every pop —
// the finer-grained version of the whole-trace comparison.
func TestCalendarStepEquivalence(t *testing.T) {
	mk := func(s Scheduler) []Handle {
		rng := rand.New(rand.NewPCG(99, 42))
		hs := make([]Handle, 0, 400)
		for i := 0; i < 400; i++ {
			at := Time(rng.Int64N(int64(time.Minute)))
			if i%5 == 0 {
				at = Time(rng.Int64N(4)) * 10 * Time(time.Second) // ties
			}
			hs = append(hs, s.Schedule(at, EventFunc(func(Time) {})))
		}
		for i := 0; i < len(hs); i += 3 {
			s.Cancel(hs[i])
		}
		return hs
	}
	h, c := NewScheduler(), NewCalendarScheduler()
	mk(h)
	mk(c)
	for {
		if h.Pending() != c.Pending() {
			t.Fatalf("pending: heap %d calendar %d", h.Pending(), c.Pending())
		}
		hOK, cOK := h.Step(), c.Step()
		if hOK != cOK {
			t.Fatalf("step: heap %v calendar %v", hOK, cOK)
		}
		if !hOK {
			break
		}
		if h.Now() != c.Now() {
			t.Fatalf("clock: heap %v calendar %v", h.Now(), c.Now())
		}
		if h.Fired() != c.Fired() {
			t.Fatalf("fired: heap %d calendar %d", h.Fired(), c.Fired())
		}
	}
}

// TestCalendarFarFutureGap pins the direct-search escape: one near event
// and one forty simulated years out must both fire, in order, without the
// scan spinning bucket by bucket across the gap (the test would time out
// if it did — the gap is ~10^9 default bucket widths).
func TestCalendarFarFutureGap(t *testing.T) {
	s := NewCalendarScheduler()
	var order []int
	s.Schedule(time.Second, EventFunc(func(Time) { order = append(order, 1) }))
	s.Schedule(40*365*24*time.Hour, EventFunc(func(Time) { order = append(order, 2) }))
	s.Schedule(80*365*24*time.Hour, EventFunc(func(Time) { order = append(order, 3) }))
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 80*365*24*time.Hour {
		t.Fatalf("clock = %v", s.Now())
	}
}

// TestCalendarScheduleBehindScan pins the winStart pull-back: after the
// scan has jumped ahead to reach a far-future event, an event scheduled at
// the (much earlier) current time must still fire before later ones.
func TestCalendarScheduleBehindScan(t *testing.T) {
	s := NewCalendarScheduler()
	var order []int
	s.Schedule(time.Second, EventFunc(func(now Time) {
		order = append(order, 1)
		// The next pending event is a year out; the scan will jump to it.
		// This event, scheduled "now", must preempt it.
		s.Schedule(now+time.Second, EventFunc(func(Time) { order = append(order, 2) }))
	}))
	s.Schedule(365*24*time.Hour, EventFunc(func(Time) { order = append(order, 3) }))
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

// TestCalendarCancelCompaction checks that a cancellation-heavy workload
// (the probe re-arm pattern: schedule, cancel, schedule, cancel …) does
// not accumulate dead items without bound.
func TestCalendarCancelCompaction(t *testing.T) {
	s := NewCalendarScheduler()
	var h Handle
	for i := 0; i < 100000; i++ {
		s.Cancel(h)
		h = s.Schedule(Time(i)*time.Millisecond+15*time.Second, EventFunc(func(Time) {}))
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	if s.dead > 10*calendarMinBuckets {
		t.Fatalf("dead items not compacted: %d linger", s.dead)
	}
	s.Run()
	if s.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", s.Fired())
	}
}

// TestCalendarResizeKeepsOrder grows the queue far past the initial bucket
// count and shrinks it back down, checking order across the resizes.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	s := NewCalendarScheduler()
	rng := rand.New(rand.NewPCG(7, 7))
	n := 20000
	for i := 0; i < n; i++ {
		s.Schedule(Time(rng.Int64N(int64(time.Hour))), EventFunc(func(Time) {}))
	}
	last := Time(-1)
	fired := 0
	for s.Pending() > 0 {
		before := s.Now()
		if !s.Step() {
			break
		}
		fired++
		if s.Now() < before || s.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
	}
	if fired != n {
		t.Fatalf("fired %d of %d", fired, n)
	}
}

// FuzzCalendarHeapEquivalence feeds arbitrary byte strings as operation
// scripts to both implementations: each byte pair becomes a schedule (with
// a coarse timestamp grid, so ties are dense) or a cancel, and the two pop
// traces must match exactly.
func FuzzCalendarHeapEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 254, 7, 7, 7, 9})
	f.Add([]byte{10, 0, 10, 0, 10, 0, 200, 200})
	f.Add([]byte{})
	run := func(data []byte, s Scheduler) []popRecord {
		var trace []popRecord
		var handles []Handle
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0, 1: // schedule on a coarse grid: ties are the point
				at := Time(arg%32) * Time(time.Second)
				tag := i
				handles = append(handles, s.Schedule(at, EventFunc(func(now Time) {
					trace = append(trace, popRecord{at: now, tag: tag})
				})))
			case 2: // far-future schedule (bounded to stay inside int64)
				at := Time(arg) * 1000 * Time(time.Hour)
				tag := i
				handles = append(handles, s.Schedule(at, EventFunc(func(now Time) {
					trace = append(trace, popRecord{at: now, tag: tag})
				})))
			case 3: // cancel an arbitrary earlier handle
				if len(handles) > 0 {
					s.Cancel(handles[int(arg)%len(handles)])
				}
			}
		}
		s.Run()
		return trace
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ht := run(data, NewScheduler())
		ct := run(data, NewCalendarScheduler())
		if len(ht) != len(ct) {
			t.Fatalf("heap fired %d, calendar %d", len(ht), len(ct))
		}
		for i := range ht {
			if ht[i] != ct[i] {
				t.Fatalf("pop %d: heap %v calendar %v", i, ht[i], ct[i])
			}
		}
	})
}
