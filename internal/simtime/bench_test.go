package simtime

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

// The scheduler benchmarks compare the binary heap against the calendar
// queue across the pending-event counts the simulation actually sees:
// 10^4 (a small fleet node) up to 10^7 (the full-volume run's order of
// magnitude). Two access patterns matter:
//
//   - Hold (classic calendar-queue benchmark): pop the earliest event and
//     schedule a replacement an exponential increment later, at steady
//     queue size n. This is the simulator's steady state.
//   - Churn: schedule then cancel, the probe re-arm pattern.
//
// The committed BENCH_pr4.json snapshot records the measured crossover;
// internal/engine selects the calendar queue for its per-node loops on
// that evidence (the heap stays the default for small ad-hoc schedulers).

type nopEvent struct{}

func (nopEvent) Fire(Time) {}

func benchHold(b *testing.B, mk func() Scheduler, n int) {
	s := mk()
	rng := rand.New(rand.NewPCG(uint64(n), 0xbe_c4))
	// Mean inter-event spacing mirrors the capture workload: tens of
	// seconds between a connection's events.
	mean := float64(30 * time.Second)
	for i := 0; i < n; i++ {
		s.Schedule(Time(rng.ExpFloat64()*mean), nopEvent{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("queue drained")
		}
		s.Schedule(s.Now()+Time(rng.ExpFloat64()*mean), nopEvent{})
	}
}

func benchChurn(b *testing.B, mk func() Scheduler, n int) {
	s := mk()
	rng := rand.New(rand.NewPCG(uint64(n), 0xc4_be))
	mean := float64(30 * time.Second)
	for i := 0; i < n; i++ {
		s.Schedule(Time(rng.ExpFloat64()*mean), nopEvent{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.Schedule(s.Now()+Time(rng.ExpFloat64()*mean), nopEvent{})
		s.Cancel(h)
	}
}

func schedulerSizes(b *testing.B) []int {
	if testing.Short() {
		return []int{1e4}
	}
	return []int{1e4, 1e5, 1e6, 1e7}
}

func BenchmarkSchedulerHold(b *testing.B) {
	impls := []struct {
		name string
		mk   func() Scheduler
	}{
		{"heap", func() Scheduler { return NewScheduler() }},
		{"calendar", func() Scheduler { return NewCalendarScheduler() }},
	}
	for _, n := range schedulerSizes(b) {
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/n=%.0e", impl.name, float64(n)), func(b *testing.B) {
				benchHold(b, impl.mk, n)
			})
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	impls := []struct {
		name string
		mk   func() Scheduler
	}{
		{"heap", func() Scheduler { return NewScheduler() }},
		{"calendar", func() Scheduler { return NewCalendarScheduler() }},
	}
	for _, n := range schedulerSizes(b) {
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/n=%.0e", impl.name, float64(n)), func(b *testing.B) {
				benchChurn(b, impl.mk, n)
			})
		}
	}
}
