package simtime

import (
	"sort"
	"time"
)

// CalendarScheduler is a calendar-queue Scheduler (R. Brown, "Calendar
// Queues: A Fast O(1) Priority Queue Implementation for the Simulation
// Event Set Problem", CACM 1988): pending events hash by timestamp into an
// array of day buckets whose combined span is one "year"; dequeue scans the
// current day for the earliest event of the current year and only falls
// back to a direct search when a whole year of days is empty. With the
// bucket count and width adapted to the live event count and spacing,
// enqueue and dequeue are O(1) amortized where a binary heap pays O(log n)
// — the difference that matters at the simulation's tens of millions of
// pending events (see BenchmarkSchedulerHold for the measured crossover).
//
// Ordering is identical to HeapScheduler by contract: events fire in
// (timestamp, sequence-key, insertion) order — plain schedule-FIFO when
// the caller never touches keys — which the equivalence property and
// fuzz tests pin operation for operation, cancellations and ties included.
// Cancellation is lazy: a cancelled item stays in its bucket (marked by
// the shared index == -1 sentinel) until a scan sweeps it out, so Cancel
// is O(1) and Pending counts live events only. Not safe for concurrent
// use.
type CalendarScheduler struct {
	now       Time
	cur       SeqKey // implicit key of the next Schedule call
	seq       uint64 // unique insertion counter
	scheduled uint64
	fired     uint64
	hook      FireHook

	buckets [][]*item
	mask    int  // len(buckets) - 1; bucket count is a power of two
	width   Time // bucket span; one year is width × len(buckets)
	live    int  // queued, non-cancelled items
	dead    int  // queued, cancelled items awaiting sweep

	// winStart is the absolute start of the day currently being scanned.
	// All live timestamps are ≥ now, and now is never behind winStart, so
	// the scan position only ever needs to move backward when an event is
	// scheduled into an earlier day than the scan has reached (possible
	// after a direct-search jump across empty years).
	winStart Time

	// cached is the item the last findMin located, so peek-then-pop
	// (RunUntil's loop) pays one scan, not two. It is dropped whenever an
	// operation could invalidate it: a Schedule before its timestamp, its
	// own cancellation (detected via the index sentinel), or a resize.
	cached *item
}

const (
	// calendarMinBuckets keeps the calendar from thrashing at small sizes,
	// where the heap wins anyway.
	calendarMinBuckets = 64
	// calendarDefaultWidth spaces an empty calendar's buckets before any
	// spacing statistics exist.
	calendarDefaultWidth = Time(time.Millisecond)
	// calendarSampleCap bounds the spacing sample a resize sorts.
	calendarSampleCap = 64
)

// NewCalendarScheduler returns a calendar scheduler positioned at the
// trace epoch.
func NewCalendarScheduler() *CalendarScheduler {
	s := &CalendarScheduler{
		buckets: make([][]*item, calendarMinBuckets),
		mask:    calendarMinBuckets - 1,
		width:   calendarDefaultWidth,
	}
	return s
}

// Now returns the current simulated time.
func (s *CalendarScheduler) Now() Time { return s.now }

// Fired returns how many events have been executed.
func (s *CalendarScheduler) Fired() uint64 { return s.fired }

// Scheduled returns how many events have been queued over the scheduler's
// lifetime.
func (s *CalendarScheduler) Scheduled() uint64 { return s.scheduled }

// Pending returns the number of scheduled events not yet fired or
// cancelled.
func (s *CalendarScheduler) Pending() int { return s.live }

// bucketOf maps an absolute timestamp to its bucket index.
func (s *CalendarScheduler) bucketOf(at Time) int {
	return int(uint64(at/s.width) & uint64(s.mask))
}

// Schedule queues an event at an absolute simulated instant with the
// implicit (FIFO-advancing) tie-break key. Scheduling in the past (before
// Now) fires the event at the current time rather than rewinding the
// clock.
func (s *CalendarScheduler) Schedule(at Time, e Event) Handle {
	key := s.cur
	s.cur.Pos++
	return s.ScheduleKeyed(at, key, e)
}

// ScheduleKeyed queues an event with an explicit tie-break key, leaving
// the implicit key untouched.
func (s *CalendarScheduler) ScheduleKeyed(at Time, key SeqKey, e Event) Handle {
	if at < s.now {
		at = s.now
	}
	if s.live+1 > 2*len(s.buckets) {
		s.resize(len(s.buckets) * 2)
	}
	it := &item{at: at, key: key, seq: s.seq, event: e}
	s.seq++
	s.scheduled++
	i := s.bucketOf(at)
	s.buckets[i] = append(s.buckets[i], it)
	s.live++
	// An item can land in a day the scan already walked past (the scan
	// runs ahead of the clock across empty stretches); pull the scan
	// position back so the next findMin sees it.
	if day := at - at%s.width; day < s.winStart {
		s.winStart = day
	}
	// The new item preempts the cached minimum when it fires first —
	// which an explicit key can achieve even at an equal timestamp, so
	// the comparison must be the full fire order, not just the instant.
	if s.cached != nil && it.before(s.cached) {
		s.cached = nil
	}
	return Handle{it: it}
}

// Reseed repositions the implicit key.
func (s *CalendarScheduler) Reseed(key SeqKey) { s.cur = key }

// SetFireHook installs the pre-fire callback.
func (s *CalendarScheduler) SetFireHook(h FireHook) { s.hook = h }

// After queues an event delay after the current instant.
func (s *CalendarScheduler) After(delay time.Duration, e Event) Handle {
	return s.Schedule(s.now+delay, e)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. The item itself is swept out of its
// bucket by a later scan or resize.
func (s *CalendarScheduler) Cancel(h Handle) {
	if h.it == nil || h.it.index == -1 {
		return
	}
	h.it.index = -1
	h.it.event = nil
	s.live--
	s.dead++
	if s.cached == h.it {
		s.cached = nil
	}
	// A cancellation-heavy phase (every delivered message re-arms a probe
	// timer) must not let dead items dominate the scans: compact once they
	// outnumber the live set.
	if s.dead > s.live+4*len(s.buckets) {
		s.resize(len(s.buckets))
	}
}

// sweep removes cancelled items from bucket i, preserving order is not
// required (buckets are unordered); swap-deletion keeps it O(dead).
func (s *CalendarScheduler) sweep(i int) {
	b := s.buckets[i]
	for j := 0; j < len(b); {
		if b[j].index == -1 {
			b[j] = b[len(b)-1]
			b[len(b)-1] = nil
			b = b[:len(b)-1]
			s.dead--
			continue
		}
		j++
	}
	s.buckets[i] = b
}

// findMin locates the earliest (at, key, seq) live item, advancing the
// day scan as far as needed, and caches it. It returns nil when no live
// items remain.
func (s *CalendarScheduler) findMin() *item {
	if s.cached != nil && s.cached.index != -1 {
		return s.cached
	}
	s.cached = nil
	if s.live == 0 {
		return nil
	}
	n := len(s.buckets)
	for scanned := 0; ; scanned++ {
		if scanned >= n {
			// A whole year of days is empty: jump straight to the global
			// minimum's day instead of spinning across the gap.
			m := s.directMin()
			s.winStart = m.at - m.at%s.width
			s.cached = m
			return m
		}
		i := s.bucketOf(s.winStart)
		s.sweep(i)
		var best *item
		top := s.winStart + s.width
		for _, it := range s.buckets[i] {
			// Only items of the current year's window belong to this day;
			// later years wait for their wrap-around.
			if it.at >= s.winStart && it.at < top {
				if best == nil || it.before(best) {
					best = it
				}
			}
		}
		if best != nil {
			s.cached = best
			return best
		}
		s.winStart += s.width
	}
}

// directMin scans every bucket for the global minimum — the escape hatch
// for years with no events at all. Only called when live > 0.
func (s *CalendarScheduler) directMin() *item {
	var best *item
	for i := range s.buckets {
		s.sweep(i)
		for _, it := range s.buckets[i] {
			if best == nil || it.before(best) {
				best = it
			}
		}
	}
	return best
}

// remove deletes a (live) item from its bucket.
func (s *CalendarScheduler) remove(it *item) {
	i := s.bucketOf(it.at)
	b := s.buckets[i]
	for j := range b {
		if b[j] == it {
			b[j] = b[len(b)-1]
			b[len(b)-1] = nil
			s.buckets[i] = b[:len(b)-1]
			s.live--
			it.index = -1
			return
		}
	}
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (s *CalendarScheduler) Step() bool {
	it := s.findMin()
	if it == nil {
		return false
	}
	s.cached = nil
	s.remove(it)
	if s.live < len(s.buckets)/2 && len(s.buckets) > calendarMinBuckets {
		s.resize(len(s.buckets) / 2)
	}
	s.now = it.at
	s.fired++
	if s.hook != nil {
		s.hook(it.at, it.key)
	}
	it.event.Fire(s.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next
// event lies strictly after the horizon. The clock finishes at the horizon
// (or at the last event, whichever is later).
func (s *CalendarScheduler) RunUntil(horizon Time) {
	for {
		it := s.findMin()
		if it == nil || it.at > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run drains the event queue completely.
func (s *CalendarScheduler) Run() {
	for s.Step() {
	}
}

// resize rebuilds the bucket array at the given size (a power of two),
// recomputing the bucket width from the live items' spacing and discarding
// cancelled items. Also used at constant size as a compaction pass.
func (s *CalendarScheduler) resize(size int) {
	if size < calendarMinBuckets {
		size = calendarMinBuckets
	}
	items := make([]*item, 0, s.live)
	for _, b := range s.buckets {
		for _, it := range b {
			if it.index != -1 {
				items = append(items, it)
			}
		}
	}
	s.width = calendarWidth(items)
	s.buckets = make([][]*item, size)
	s.mask = size - 1
	s.dead = 0
	for _, it := range items {
		i := s.bucketOf(it.at)
		s.buckets[i] = append(s.buckets[i], it)
	}
	// All live timestamps are ≥ now, so scanning from now's day is always
	// safe after a rebuild.
	s.winStart = s.now - s.now%s.width
	s.cached = nil
}

// calendarWidth estimates a bucket width from the live items' spacing,
// Brown's rule of thumb: about three times the average separation between
// *adjacent* events, so a day holds a handful of events. A sorted sample
// gives the span of the interquartile timestamp range; that range covers
// about half the live items, so the average adjacent separation inside it
// is span ÷ (live/2) — dividing by the sample's own gap count instead
// would overestimate the width by a factor of live/sampleSize and pile
// thousands of events into each day (the scan cost then grows linearly,
// which is precisely the failure mode BenchmarkSchedulerHold guards).
// Using the middle of the distribution keeps a few far-future outliers
// (heavy-tailed session ends) from inflating the width. The estimate is
// deterministic: the sample is taken at a fixed stride.
func calendarWidth(items []*item) Time {
	if len(items) < 2 {
		return calendarDefaultWidth
	}
	stride := len(items)/calendarSampleCap + 1
	sample := make([]int64, 0, calendarSampleCap)
	for i := 0; i < len(items); i += stride {
		sample = append(sample, int64(items[i].at))
	}
	if len(sample) < 2 {
		return calendarDefaultWidth
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	lo, hi := len(sample)/4, (3*len(sample))/4
	if hi <= lo+1 {
		lo, hi = 0, len(sample)
	}
	span := sample[hi-1] - sample[lo]
	// The [lo, hi) quantile range of the sample covers roughly the same
	// fraction of the full live set.
	covered := int64(len(items)) * int64(hi-lo) / int64(len(sample))
	if span <= 0 || covered <= 1 {
		return calendarDefaultWidth
	}
	w := Time(3 * span / covered)
	if w < 1 {
		w = 1
	}
	return w
}
