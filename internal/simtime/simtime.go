// Package simtime provides the virtual clock and discrete-event scheduler
// that drive the measurement simulation.
//
// Simulated time is a time.Duration measured from the trace epoch. The
// paper's trace began 2004-03-15 at the measurement node in Dortmund; Epoch
// pins that instant so absolute timestamps and day/hour bins are
// well-defined. Nothing in the simulator reads the wall clock, which makes
// runs byte-for-byte reproducible.
package simtime

import (
	"container/heap"
	"time"
)

// Epoch is the instant at which the trace starts: 2004-03-15 00:00 local
// time at the measurement node (CET, UTC+1 in mid-March 2004).
var Epoch = time.Date(2004, time.March, 15, 0, 0, 0, 0, time.FixedZone("CET", 3600))

// Time is an instant of simulated time, expressed as the offset from Epoch.
type Time = time.Duration

// Day and related constants express the diurnal structure of the paper's
// analysis bins.
const (
	Day      = 24 * time.Hour
	HalfHour = 30 * time.Minute
)

// Absolute converts a simulated instant to an absolute wall-clock time.
func Absolute(t Time) time.Time { return Epoch.Add(t) }

// HourOfDay returns the hour bin [0,24) of the instant, in measurement-node
// local time — the x-axis of every diurnal figure in the paper.
func HourOfDay(t Time) int {
	return int((t % Day) / time.Hour)
}

// HalfHourOfDay returns the 30-minute bin [0,48) of the instant, used by
// Figure 3.
func HalfHourOfDay(t Time) int {
	return int((t % Day) / HalfHour)
}

// DayIndex returns the zero-based trace day containing the instant.
func DayIndex(t Time) int { return int(t / Day) }

// At builds a simulated instant from a day index and a time of day.
func At(day int, hour, min, sec int) Time {
	return Time(day)*Day + Time(hour)*time.Hour + Time(min)*time.Minute + Time(sec)*time.Second
}

// Event is a scheduled callback. Fire runs at the scheduled instant with the
// scheduler's current time.
type Event interface {
	Fire(now Time)
}

// EventFunc adapts a function to the Event interface.
type EventFunc func(now Time)

// Fire implements Event.
func (f EventFunc) Fire(now Time) { f(now) }

// SeqKey is an event's equal-timestamp tie-break rank: among events with
// the same timestamp, smaller keys fire first (lexicographically by
// Epoch, then Pos; insertion order breaks exact key collisions). The
// zero scheduler assigns implicit keys {0, 0}, {0, 1}, {0, 2}, … in
// Schedule-call order, which is plain FIFO — callers that never touch
// keys see exactly the historical (timestamp, FIFO) contract. Two
// extensions exist for callers that need a fire order agreed on across
// schedulers (the sharded engine's determinism contract): ScheduleKeyed
// plants an event at an explicit rank, and Reseed repositions the
// implicit counter so subsequent Schedule calls rank relative to a
// caller-chosen point.
type SeqKey struct {
	Epoch uint64
	Pos   uint64
}

// Less reports whether k ranks strictly before o.
func (k SeqKey) Less(o SeqKey) bool {
	if k.Epoch != o.Epoch {
		return k.Epoch < o.Epoch
	}
	return k.Pos < o.Pos
}

// FireHook observes each event just before it fires, with the clock
// already advanced to the event's timestamp and the event's tie-break
// key. See Scheduler.SetFireHook.
type FireHook func(at Time, key SeqKey)

// Scheduler is the discrete-event scheduler API: a virtual clock plus a
// pending-event queue ordered by (timestamp, sequence key). Two
// implementations exist — HeapScheduler (container/heap binary heap) and
// CalendarScheduler (Brown's calendar queue, O(1) amortized at large
// pending counts) — and they are contractually order-equivalent: for the
// same sequence of operations both fire the same events in the same order,
// ties included (pinned by property and fuzz tests). No implementation is
// safe for concurrent use; the simulation gives each event loop its own
// scheduler so a given seed always produces an identical event order.
type Scheduler interface {
	// Now returns the current simulated time.
	Now() Time
	// Fired returns how many events have been executed.
	Fired() uint64
	// Scheduled returns how many events have been queued over the
	// scheduler's lifetime (fired, pending and cancelled alike) — the
	// per-node work metric the engine's scaling contract is stated in.
	Scheduled() uint64
	// Pending returns the number of scheduled events not yet fired or
	// cancelled.
	Pending() int
	// Schedule queues an event at an absolute simulated instant.
	// Scheduling in the past (before Now) fires the event at the current
	// time rather than rewinding the clock. The event's tie-break key is
	// the current implicit key, which then advances by one Pos — absent
	// Reseed/ScheduleKeyed, events with equal timestamps fire in Schedule
	// order (FIFO), which keeps runs deterministic.
	Schedule(at Time, e Event) Handle
	// ScheduleKeyed queues an event with an explicit tie-break key,
	// leaving the implicit key untouched. Equal (timestamp, key) pairs
	// fall back to insertion order.
	ScheduleKeyed(at Time, key SeqKey, e Event) Handle
	// Reseed repositions the implicit key: the next Schedule call uses
	// exactly key, the one after key with Pos+1, and so on.
	Reseed(key SeqKey)
	// SetFireHook installs a callback invoked immediately before every
	// event's Fire, after the clock has advanced to the event's
	// timestamp. The hook may call Reseed (the engine's keyed tie-break
	// cursor lives there); it must not schedule or cancel events. A nil
	// hook removes it.
	SetFireHook(h FireHook)
	// After queues an event delay after the current instant.
	After(delay time.Duration, e Event) Handle
	// Cancel removes a scheduled event. Cancelling an already-fired or
	// already-cancelled event is a no-op.
	Cancel(h Handle)
	// Step fires the earliest pending event, advancing the clock to its
	// timestamp. It reports false when no events remain.
	Step() bool
	// RunUntil fires events in order until the queue is empty or the next
	// event lies strictly after the horizon. The clock finishes at the
	// horizon (or at the last event, whichever is later).
	RunUntil(horizon Time)
	// Run drains the event queue completely.
	Run()
}

type item struct {
	at  Time
	key SeqKey // tie-break rank among equal timestamps
	// seq is the unique insertion counter, the final tie-break: it keeps
	// the order total (and both implementations identical) even when a
	// caller plants two events on the same (at, key).
	seq   uint64
	event Event
	// index is -1 once the item has fired or been cancelled. While queued,
	// the heap implementation stores the item's heap position here; the
	// calendar implementation only uses the -1 sentinel (cancellation is
	// lazy there — dead items are swept out when their bucket is scanned).
	index int
}

// before is the full fire order: timestamp, then key, then insertion.
func (a *item) before(b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key.Less(b.key)
	}
	return a.seq < b.seq
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancelled reports whether the handle's event has been cancelled or
// already fired.
func (h Handle) Cancelled() bool { return h.it == nil || h.it.index == -1 }

type eventHeap []*item

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// HeapScheduler is the binary-heap Scheduler implementation — the
// reference the calendar queue is order-equivalence-tested against. It is
// not safe for concurrent use.
type HeapScheduler struct {
	now       Time
	cur       SeqKey // implicit key of the next Schedule call
	seq       uint64 // unique insertion counter
	scheduled uint64
	events    eventHeap
	fired     uint64
	hook      FireHook
}

// NewScheduler returns a heap scheduler positioned at the trace epoch.
func NewScheduler() *HeapScheduler {
	return &HeapScheduler{}
}

// Now returns the current simulated time.
func (s *HeapScheduler) Now() Time { return s.now }

// Fired returns how many events have been executed, a cheap progress and
// complexity metric for benchmarks.
func (s *HeapScheduler) Fired() uint64 { return s.fired }

// Scheduled returns how many events have been queued over the scheduler's
// lifetime.
func (s *HeapScheduler) Scheduled() uint64 { return s.scheduled }

// Pending returns the number of scheduled events not yet fired or cancelled.
func (s *HeapScheduler) Pending() int { return len(s.events) }

// Schedule queues an event at an absolute simulated instant with the
// implicit (FIFO-advancing) tie-break key. Scheduling in the past (before
// Now) fires the event at the current time rather than rewinding the
// clock.
func (s *HeapScheduler) Schedule(at Time, e Event) Handle {
	key := s.cur
	s.cur.Pos++
	return s.ScheduleKeyed(at, key, e)
}

// ScheduleKeyed queues an event with an explicit tie-break key, leaving
// the implicit key untouched.
func (s *HeapScheduler) ScheduleKeyed(at Time, key SeqKey, e Event) Handle {
	if at < s.now {
		at = s.now
	}
	it := &item{at: at, key: key, seq: s.seq, event: e}
	s.seq++
	s.scheduled++
	heap.Push(&s.events, it)
	return Handle{it: it}
}

// Reseed repositions the implicit key.
func (s *HeapScheduler) Reseed(key SeqKey) { s.cur = key }

// SetFireHook installs the pre-fire callback.
func (s *HeapScheduler) SetFireHook(h FireHook) { s.hook = h }

// After queues an event delay after the current instant.
func (s *HeapScheduler) After(delay time.Duration, e Event) Handle {
	return s.Schedule(s.now+delay, e)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *HeapScheduler) Cancel(h Handle) {
	if h.it == nil || h.it.index == -1 {
		return
	}
	heap.Remove(&s.events, h.it.index)
	h.it.index = -1
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (s *HeapScheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	it := heap.Pop(&s.events).(*item)
	s.now = it.at
	s.fired++
	if s.hook != nil {
		s.hook(it.at, it.key)
	}
	it.event.Fire(s.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// lies strictly after the horizon. The clock finishes at the horizon (or at
// the last event, whichever is later — the clock never exceeds events that
// fired).
func (s *HeapScheduler) RunUntil(horizon Time) {
	for len(s.events) > 0 && s.events[0].at <= horizon {
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run drains the event queue completely.
func (s *HeapScheduler) Run() {
	for s.Step() {
	}
}
