package capture

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallTrace runs a short, small-scale capture once per test binary.
func smallTrace(t *testing.T, seed uint64, scale float64, days int) *trace.Trace {
	t.Helper()
	cfg := DefaultConfig(seed, scale)
	cfg.Workload.Days = days
	return New(cfg).Run()
}

func TestDeterminism(t *testing.T) {
	a := smallTrace(t, 42, 0.002, 1)
	b := smallTrace(t, 42, 0.002, 1)
	if len(a.Conns) != len(b.Conns) || len(a.Queries) != len(b.Queries) {
		t.Fatalf("sizes differ: %d/%d conns, %d/%d queries",
			len(a.Conns), len(b.Conns), len(a.Queries), len(b.Queries))
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts differ: %+v vs %+v", a.Counts, b.Counts)
	}
	for i := range a.Conns {
		if a.Conns[i] != b.Conns[i] {
			t.Fatalf("conn %d differs", i)
		}
	}
}

func TestConnectionVolume(t *testing.T) {
	tr := smallTrace(t, 1, 0.005, 2)
	want := 4361965.0 * 0.005 * 2 / 40
	got := float64(len(tr.Conns))
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("connections = %v, want ≈%v", got, want)
	}
}

func TestAllConnectionsClosed(t *testing.T) {
	tr := smallTrace(t, 2, 0.003, 1)
	for i := range tr.Conns {
		c := &tr.Conns[i]
		if c.End <= c.Start {
			t.Fatalf("conn %d: end %v ≤ start %v", c.ID, c.End, c.Start)
		}
	}
}

func TestQuickDisconnectShare(t *testing.T) {
	// ~70% of recorded sessions must be under 64 s (rule 3's motivation).
	tr := smallTrace(t, 3, 0.005, 2)
	short := 0
	for i := range tr.Conns {
		if tr.Conns[i].Duration() < 64*time.Second {
			short++
		}
	}
	frac := float64(short) / float64(len(tr.Conns))
	// Silent quick closes get the +30 s overestimate and escape the 64 s
	// bucket, but those are only ~5% of quick sessions.
	if frac < 0.60 || frac > 0.75 {
		t.Errorf("short-session fraction = %v, want ≈0.66–0.70", frac)
	}
}

func TestSilentCloseOverestimate(t *testing.T) {
	// Silently closed sessions end after their last message by up to the
	// probe cadence plus the probe timeout.
	tr := smallTrace(t, 4, 0.003, 1)
	nSilent := 0
	for i := range tr.Conns {
		if tr.Conns[i].SilentClose {
			nSilent++
		}
	}
	if nSilent == 0 {
		t.Fatal("no silent closes observed")
	}
	// 5% of sessions are silent (crashes, NAT timeouts, network drops;
	// a BYE-less client exit still produces an observable TCP FIN).
	frac := float64(nSilent) / float64(len(tr.Conns))
	if frac < 0.02 || frac > 0.09 {
		t.Errorf("silent-close fraction = %v", frac)
	}
}

func TestUltrapeerShare(t *testing.T) {
	tr := smallTrace(t, 5, 0.005, 2)
	up := 0
	for i := range tr.Conns {
		if tr.Conns[i].Ultrapeer {
			up++
		}
	}
	frac := float64(up) / float64(len(tr.Conns))
	if math.Abs(frac-model.UltrapeerFraction) > 0.03 {
		t.Errorf("ultrapeer share = %v, want ≈0.40", frac)
	}
}

func TestTable1Shape(t *testing.T) {
	// The message-count ordering of Table 1: QUERY > PING > PONG ≫
	// QUERYHIT, and hop-1 queries a small share of all queries.
	tr := smallTrace(t, 6, 0.01, 2)
	c := tr.Counts
	// Paper ratios: QUERY:PING:PONG:HIT ≈ 25.7:20.3:13.3:1. Automation
	// burstiness and the pre-steady-state background (the heavy-tailed
	// session durations need days to fill the slot pool) give this short
	// run ≈±30% ratio noise, so the band checks ordering and rough
	// magnitude only; cmd/repro at 40 days reproduces the composition.
	if !(c.Query > c.Ping && c.Ping > c.Pong && c.Pong > 3*c.QueryHit) {
		t.Errorf("count ordering violated: %+v", c)
	}
	hop1Share := float64(c.QueryHop1) / float64(c.Query)
	if hop1Share < 0.01 || hop1Share > 0.25 {
		t.Errorf("hop-1 query share = %v, want small (paper: ≈5%%)", hop1Share)
	}
	if uint64(len(tr.Queries)) != c.QueryHop1 {
		t.Errorf("recorded queries %d != hop-1 count %d", len(tr.Queries), c.QueryHop1)
	}
}

func TestQueriesAttributable(t *testing.T) {
	tr := smallTrace(t, 7, 0.005, 1)
	if len(tr.Queries) == 0 {
		t.Fatal("no hop-1 queries recorded")
	}
	for i := range tr.Queries {
		q := &tr.Queries[i]
		if q.Hops != 1 {
			t.Fatalf("recorded query with hops %d", q.Hops)
		}
		if q.ConnID >= uint64(len(tr.Conns)) {
			t.Fatalf("query references unknown conn %d", q.ConnID)
		}
		c := &tr.Conns[q.ConnID]
		if q.At < c.Start || q.At > c.End {
			t.Fatalf("query at %v outside its session [%v, %v]", q.At, c.Start, c.End)
		}
	}
}

func TestPongRecords(t *testing.T) {
	tr := smallTrace(t, 8, 0.005, 1)
	var hop1, remote int
	reg := geo.Default()
	for i := range tr.Pongs {
		p := &tr.Pongs[i]
		if p.Hops == 1 {
			hop1++
		} else {
			remote++
		}
		if reg.Lookup(p.Addr) == geo.Unknown {
			t.Fatalf("pong from unassigned address %v", p.Addr)
		}
	}
	if hop1 == 0 || remote == 0 {
		t.Fatalf("pongs: hop1=%d remote=%d, want both present", hop1, remote)
	}
	// At most one hop-1 pong per connection.
	if hop1 > len(tr.Conns) {
		t.Errorf("hop-1 pongs %d exceed connections %d", hop1, len(tr.Conns))
	}
}

func TestHitsSampled(t *testing.T) {
	tr := smallTrace(t, 9, 0.005, 1)
	if tr.Counts.QueryHit == 0 {
		t.Fatal("no query hits observed")
	}
	// Sampled records should be roughly SampleRate × count.
	want := float64(tr.Counts.QueryHit) * tr.HitSampleRate
	got := float64(len(tr.Hits))
	if want > 20 && math.Abs(got-want)/want > 0.5 {
		t.Errorf("sampled hits = %v, want ≈%v", got, want)
	}
}

func TestRegionMixOfConnections(t *testing.T) {
	tr := smallTrace(t, 10, 0.01, 2)
	reg := geo.Default()
	counts := map[geo.Region]int{}
	for i := range tr.Conns {
		counts[reg.Lookup(tr.Conns[i].Addr)]++
	}
	na := float64(counts[geo.NorthAmerica]) / float64(len(tr.Conns))
	if na < 0.55 || na > 0.85 {
		t.Errorf("NA share of connections = %v", na)
	}
	if counts[geo.Unknown] > 0 {
		t.Error("connections from unassigned address space")
	}
}

func TestMaxConnsRespected(t *testing.T) {
	cfg := DefaultConfig(11, 0.02)
	cfg.Workload.Days = 1
	cfg.MaxConns = 5 // tiny cap forces rejections
	sim := New(cfg)
	tr := sim.Run()
	if sim.Rejected == 0 {
		t.Error("expected rejections with a 5-connection cap")
	}
	// Verify concurrency never exceeded the cap: count overlaps.
	type ev struct {
		at    simtime.Time
		delta int
	}
	var evs []ev
	for i := range tr.Conns {
		evs = append(evs, ev{tr.Conns[i].Start, 1}, ev{tr.Conns[i].End, -1})
	}
	// Sort by time, closes before opens at equal instants.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].at < evs[j-1].at ||
			(evs[j].at == evs[j-1].at && evs[j].delta < evs[j-1].delta)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	if peak > cfg.MaxConns {
		t.Errorf("peak concurrency %d exceeds cap %d", peak, cfg.MaxConns)
	}
}

func TestUserAgentsRecorded(t *testing.T) {
	tr := smallTrace(t, 12, 0.003, 1)
	agents := map[string]int{}
	for i := range tr.Conns {
		if tr.Conns[i].UserAgent == "" {
			t.Fatal("connection without user agent")
		}
		agents[tr.Conns[i].UserAgent]++
	}
	if len(agents) < 4 {
		t.Errorf("only %d user agents", len(agents))
	}
}

func TestSHA1QueriesPresent(t *testing.T) {
	tr := smallTrace(t, 13, 0.01, 2)
	sha1 := 0
	for i := range tr.Queries {
		if tr.Queries[i].SHA1 {
			sha1++
		}
	}
	frac := float64(sha1) / float64(len(tr.Queries))
	// Table 2: rule 1 removes ≈24% of hop-1 queries.
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("SHA1 share of hop-1 queries = %v, want ≈0.2–0.3", frac)
	}
}

func TestTraceSerializationSurvives(t *testing.T) {
	tr := smallTrace(t, 14, 0.002, 1)
	cfgDir := t.TempDir()
	path := cfgDir + "/x.trace"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counts != tr.Counts || len(back.Conns) != len(tr.Conns) {
		t.Fatal("round trip mismatch")
	}
}

func TestScaledWorkloadConfig(t *testing.T) {
	cfg := DefaultConfig(1, 0.5)
	if cfg.Workload.Scale != 0.5 || cfg.MaxConns != 200 {
		t.Errorf("config defaults wrong: %+v", cfg)
	}
	if cfg.ProbeIdle != 15*time.Second || cfg.ProbeTimeout != 15*time.Second {
		t.Error("probe timings must match the paper")
	}
	_ = workload.DefaultConfig(1, 1)
}
