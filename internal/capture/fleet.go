package capture

import (
	"repro/internal/behavior"
	"repro/internal/guid"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// FleetConfig parameterizes a multi-vantage measurement deployment.
type FleetConfig struct {
	// Node is the per-vantage configuration; every node runs the paper's
	// methodology (200-connection cap, probe liveness rule) against its
	// shard of the arrival stream.
	Node Config
	// Nodes is the number of cooperating ultrapeer vantage points. Values
	// below 1 mean 1. Sized so the per-node caps don't bind, the fleet
	// records the entire arrival stream — ≈4.36 M connections over the
	// paper's 40 days at scale 1.0 — where the single node's cap limits
	// it to ≈197 k.
	Nodes int
}

// NodeStats summarizes one vantage node's run.
type NodeStats struct {
	// Node is the vantage index.
	Node int
	// Conns is the number of arrivals the node accepted and recorded.
	Conns int
	// Rejected counts arrivals assigned to this node that found all
	// MaxConns slots busy.
	Rejected uint64
	// PeakConns is the maximum simultaneous connection count — the
	// cap-sizing diagnostic: a fleet records the full arrival stream iff
	// every node's peak stays below MaxConns.
	PeakConns int
	// DroppedQueryEvents counts client query events that found their
	// connection already closed (diagnostic).
	DroppedQueryEvents uint64
}

// FleetStats aggregates a fleet run. The accounting identity
// Arrivals == Σ Conns + Σ Rejected over the per-node rows is pinned by
// test: every generated arrival is either recorded by exactly one vantage
// or rejected by exactly one vantage.
type FleetStats struct {
	// Arrivals is the total number of session arrivals the workload
	// generated over the measurement period.
	Arrivals uint64
	// Rejected sums the per-node rejections.
	Rejected uint64
	// DroppedQueryEvents sums the per-node diagnostic counters.
	DroppedQueryEvents uint64
	// PerNode holds one row per vantage, in node order.
	PerNode []NodeStats
}

// Fleet is a multi-vantage measurement simulation: N ultrapeer nodes
// observing one simulated Gnutella network. All nodes share the discrete-
// event clock and the arrival stream; each arriving session is assigned a
// GUID and consistently sharded onto one vantage (guid.Shard), which
// accepts it subject to its own MaxConns cap and records it in its own
// trace. Run returns the merged full-volume trace (trace.Merge).
//
// Determinism: the arrival stream, the GUID sharding and every per-node
// random stream are seeded functions of the configuration, so a fleet run
// is byte-for-byte reproducible, and the merged trace is independent of
// the order in which per-node traces are merged (pinned by test).
type Fleet struct {
	cfg       FleetConfig
	sched     simtime.Scheduler
	gen       *behavior.Generator
	shared    *SharedModel
	sessGUIDs *guid.Source
	nodes     []*vantage
	arrivals  uint64
	ran       bool
	merged    *trace.Trace
}

// NewFleet builds a fleet.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	gen := behavior.NewGenerator(cfg.Node.Workload)
	f := &Fleet{
		cfg:    cfg,
		sched:  simtime.NewScheduler(),
		gen:    gen,
		shared: NewSharedModel(gen),
		// The session-GUID stream is its own source so that sharding
		// never perturbs the per-node streams: a one-node fleet draws
		// exactly the historical single-node trace.
		sessGUIDs: guid.NewSource(cfg.Node.Workload.Seed, SessionGUIDSalt),
	}
	f.nodes = make([]*vantage, cfg.Nodes)
	for i := range f.nodes {
		f.nodes[i] = newVantage(cfg.Node, i, f.sched, f.shared)
	}
	return f
}

// NodeCount returns the number of vantage points.
func (f *Fleet) NodeCount() int { return len(f.nodes) }

// Run executes the full measurement period once and returns the merged
// trace; subsequent calls return the same trace. The measurement stops at
// the configured horizon: sessions still connected are right-censored
// there on every node, exactly as a real trace collection ends with
// connections still open.
func (f *Fleet) Run() *trace.Trace {
	f.run()
	return f.merged
}

func (f *Fleet) run() {
	if f.ran {
		return
	}
	f.ran = true
	horizon := simtime.Time(f.cfg.Node.Workload.Days) * simtime.Day
	// Prime the arrival chain.
	if first := f.gen.Next(); first != nil {
		f.sched.Schedule(first.Start, simtime.EventFunc(func(now simtime.Time) {
			f.arrive(now, first)
		}))
	}
	f.sched.RunUntil(horizon)
	for _, n := range f.nodes {
		for _, c := range n.conns {
			if !c.closed {
				n.finalize(c, horizon, false)
			}
		}
	}
	f.merged = trace.Merge(f.NodeTraces()...)
}

// arrive dispatches one session arrival to its vantage and schedules the
// next. The session is tagged with a GUID — the measurement fabric's
// session identity — and the GUID's consistent hash picks the node, so
// growing the fleet moves only ≈1/(N+1) of the sessions (guid.Shard).
func (f *Fleet) arrive(now simtime.Time, sess *behavior.Session) {
	if next := f.gen.Next(); next != nil {
		f.sched.Schedule(next.Start, simtime.EventFunc(func(at simtime.Time) {
			f.arrive(at, next)
		}))
	}
	f.arrivals++
	g := f.sessGUIDs.Next()
	f.nodes[g.Shard(len(f.nodes))].arrive(now, sess)
}

// NodeTraces returns each vantage's own trace, in node order, running the
// simulation first if needed. The slices alias the fleet's records; treat
// them as read-only.
func (f *Fleet) NodeTraces() []*trace.Trace {
	if !f.ran {
		f.run()
	}
	out := make([]*trace.Trace, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.out
	}
	return out
}

// Stats reports the fleet's accounting, running the simulation first if
// needed.
func (f *Fleet) Stats() FleetStats {
	if !f.ran {
		f.run()
	}
	st := FleetStats{Arrivals: f.arrivals, PerNode: make([]NodeStats, len(f.nodes))}
	for i, n := range f.nodes {
		st.PerNode[i] = NodeStats{
			Node:               i,
			Conns:              n.nextID,
			Rejected:           n.rejected,
			PeakConns:          n.peak,
			DroppedQueryEvents: n.droppedQueryEvents,
		}
		st.Rejected += n.rejected
		st.DroppedQueryEvents += n.droppedQueryEvents
	}
	return st
}
