package capture

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// benchNodeTraces simulates one 4-node fleet per benchmark binary; the
// merge benchmark re-merges its per-node traces each iteration.
var (
	benchFleetOnce sync.Once
	benchNodes     []*trace.Trace
)

func benchFleet(b *testing.B) []*trace.Trace {
	b.Helper()
	benchFleetOnce.Do(func() {
		cfg := DefaultConfig(2004, 0.02)
		cfg.Workload.Days = 2
		benchNodes = NewFleet(FleetConfig{Node: cfg, Nodes: 4}).NodeTraces()
	})
	return benchNodes
}

// BenchmarkFleetSimulate measures the multi-vantage simulation end to end
// (one day at 1% scale across 4 nodes, merge included).
func BenchmarkFleetSimulate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(uint64(i), 0.01)
		cfg.Workload.Days = 1
		tr := NewFleet(FleetConfig{Node: cfg, Nodes: 4}).Run()
		if len(tr.Conns) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceMerge isolates the union step: deduplicate, totally
// order, and re-identify a 4-node fleet's traces.
func BenchmarkTraceMerge(b *testing.B) {
	nodes := benchFleet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trace.Merge(nodes...)
		if len(m.Conns) == 0 {
			b.Fatal("empty merge")
		}
	}
}
