package capture

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
)

// testFleet runs one shared 4-node fleet per test binary; the per-node
// traces and stats feed the accounting and determinism tests.
var (
	fleetOnce  sync.Once
	testF      *Fleet
	testMerged *trace.Trace
)

func sharedFleet(t *testing.T) (*Fleet, *trace.Trace) {
	t.Helper()
	fleetOnce.Do(func() {
		cfg := DefaultConfig(2004, 0.02)
		cfg.Workload.Days = 2
		testF = NewFleet(FleetConfig{Node: cfg, Nodes: 4})
		testMerged = testF.Run()
	})
	return testF, testMerged
}

func TestFleetAccountingSums(t *testing.T) {
	f, merged := sharedFleet(t)
	st := f.Stats()
	if st.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	var accepted, rejected uint64
	for _, ns := range st.PerNode {
		accepted += uint64(ns.Conns)
		rejected += ns.Rejected
		if ns.PeakConns > f.cfg.Node.MaxConns {
			t.Errorf("node %d peaked at %d conns, above the %d cap", ns.Node, ns.PeakConns, f.cfg.Node.MaxConns)
		}
	}
	if accepted+rejected != st.Arrivals {
		t.Errorf("per-node accounting: %d accepted + %d rejected != %d arrivals",
			accepted, rejected, st.Arrivals)
	}
	if rejected != st.Rejected {
		t.Errorf("Rejected sum %d != per-node sum %d", st.Rejected, rejected)
	}
	if uint64(len(merged.Conns)) != accepted {
		t.Errorf("merged trace has %d conns, per-node totals say %d", len(merged.Conns), accepted)
	}
	if merged.Nodes != 4 {
		t.Errorf("merged.Nodes = %d, want 4", merged.Nodes)
	}
}

func TestFleetRecordsAllArrivalsWhenCapsDontBind(t *testing.T) {
	// At 2% scale the per-node load sits far below the 200-slot cap, so a
	// 4-node fleet must record the entire arrival stream — the miniature
	// of the full-volume acceptance run.
	f, merged := sharedFleet(t)
	st := f.Stats()
	if st.Rejected != 0 {
		t.Fatalf("caps bound at small scale: %d rejections", st.Rejected)
	}
	if uint64(len(merged.Conns)) != st.Arrivals {
		t.Fatalf("recorded %d of %d arrivals", len(merged.Conns), st.Arrivals)
	}
}

func TestFleetCountsSumIntoMerge(t *testing.T) {
	f, merged := sharedFleet(t)
	var want trace.MessageCounts
	for _, nt := range f.NodeTraces() {
		want.Ping += nt.Counts.Ping
		want.Pong += nt.Counts.Pong
		want.Query += nt.Counts.Query
		want.QueryHit += nt.Counts.QueryHit
		want.Push += nt.Counts.Push
		want.Bye += nt.Counts.Bye
		want.QueryHop1 += nt.Counts.QueryHop1
	}
	if merged.Counts != want {
		t.Errorf("merged counts %+v != per-node sum %+v", merged.Counts, want)
	}
	if uint64(len(merged.Queries)) != merged.Counts.QueryHop1 {
		t.Errorf("recorded queries %d != hop-1 count %d", len(merged.Queries), merged.Counts.QueryHop1)
	}
}

func TestFleetDeterminism(t *testing.T) {
	cfg := DefaultConfig(11, 0.01)
	cfg.Workload.Days = 1
	run := func() *trace.Trace {
		return NewFleet(FleetConfig{Node: cfg, Nodes: 3}).Run()
	}
	var a, b bytes.Buffer
	if err := run().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := run().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical fleet runs produced different merged traces")
	}
}

func TestFleetSingleNodeMatchesSim(t *testing.T) {
	// A one-node fleet IS the paper's deployment: it must reproduce the
	// single-vantage Sim trace byte for byte.
	cfg := DefaultConfig(21, 0.01)
	cfg.Workload.Days = 1
	var a, b bytes.Buffer
	if err := New(cfg).Run().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := NewFleet(FleetConfig{Node: cfg, Nodes: 1}).Run().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("one-node fleet differs from Sim")
	}
}

// TestMergedReportInvariantToOrderingAndWorkers is the acceptance pin of
// the measurement fabric: the characterization report of the merged trace
// must be byte-identical no matter the order the per-node traces are
// merged in and no matter the characterization worker count.
func TestMergedReportInvariantToOrderingAndWorkers(t *testing.T) {
	f, _ := sharedFleet(t)
	nodeTraces := f.NodeTraces()
	orderings := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
	}
	var ref []byte
	for _, ord := range orderings {
		perm := make([]*trace.Trace, len(ord))
		for i, j := range ord {
			perm[i] = nodeTraces[j]
		}
		merged := trace.Merge(perm...)
		for _, workers := range []int{1, 4} {
			var buf bytes.Buffer
			c := core.CharacterizeOpts(merged, core.Options{Workers: workers})
			if err := report.RenderAll(&buf, c); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf.Bytes()
				continue
			}
			if !bytes.Equal(ref, buf.Bytes()) {
				t.Fatalf("report differs for ordering %v workers %d", ord, workers)
			}
		}
	}
	if len(ref) == 0 {
		t.Fatal("no report rendered")
	}
}

func TestFleetShardingIsByGUIDNotArrivalOrder(t *testing.T) {
	// Growing the fleet must keep the assignment consistent: the sessions
	// recorded by a 2-node fleet's node 0 are largely the same sessions
	// node 0 records in a 3-node fleet (jump-hash moves only ≈1/3).
	cfg := DefaultConfig(5, 0.01)
	cfg.Workload.Days = 1
	key := func(c *trace.Conn) [2]int64 {
		return [2]int64{int64(c.Start), int64(c.Addr.As4()[3])<<32 | int64(c.Addr.As4()[2])}
	}
	node0 := func(nodes int) map[[2]int64]bool {
		f := NewFleet(FleetConfig{Node: cfg, Nodes: nodes})
		f.Run()
		out := map[[2]int64]bool{}
		for i := range f.NodeTraces()[0].Conns {
			out[key(&f.NodeTraces()[0].Conns[i])] = true
		}
		return out
	}
	two, three := node0(2), node0(3)
	if len(two) == 0 || len(three) == 0 {
		t.Fatal("node 0 recorded nothing")
	}
	stayed := 0
	for k := range three {
		if two[k] {
			stayed++
		}
	}
	// Jump-hash consistency: everything node 0 holds at N=3 it already
	// held at N=2 (keys only ever move *to* the new node), minus noise
	// from cap/probe timing interactions.
	frac := float64(stayed) / float64(len(three))
	if frac < 0.95 {
		t.Errorf("only %.2f of node 0's N=3 sessions were on node 0 at N=2; sharding is not consistent", frac)
	}
}
