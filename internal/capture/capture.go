// Package capture simulates the paper's measurement deployment: a passive
// ultrapeer (the modified mutella client) holding up to 200 simultaneous
// overlay connections for 40 days, recording every message it receives.
//
// The simulation reproduces the measurement *methodology*, not just the
// data: sessions end either with an observed TCP close or by falling
// silent, in which case the node applies the paper's liveness rule — after
// 15 seconds of idleness it sends a single PING, and if nothing arrives
// for another 15 seconds it closes the connection, overestimating the
// session end by up to ~30 seconds exactly as the paper reports.
//
// Traffic has three sources:
//
//   - the synthetic peer population (internal/behavior): handshakes,
//     hop-1 queries with client automation, keepalive pings, pong
//     responses to probes;
//   - the wider network: forwarded queries (hops 2–7) on ultrapeer
//     connections, remote pongs and query hits, at per-connection rates
//     calibrated so full-scale totals land near Table 1;
//   - the node itself: probe pings and pong replies (sent, therefore not
//     part of the received-message counts).
//
// Beyond the paper's single vantage, the package grows the deployment the
// way the distributed-measurement literature does (Allali et al.'s
// distributed honeypots): a Fleet of N cooperating ultrapeer vantage
// points sharding the arrival stream, whose per-node traces merge into
// one full-volume trace (see fleet.go and trace.Merge).
package capture

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"time"

	"repro/internal/behavior"
	"repro/internal/geo"
	"repro/internal/guid"
	"repro/internal/model"
	"repro/internal/overlay"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/vocab"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Config parameterizes a measurement run.
type Config struct {
	// Workload configures the peer population (seed, scale, days).
	Workload workload.Config
	// MaxConns caps simultaneous connections (the paper's node held 200).
	// In a Fleet the cap applies to each vantage node independently.
	MaxConns int
	// ProbeIdle is the idle time before the node sends its single probe
	// PING (15 s in the paper).
	ProbeIdle time.Duration
	// ProbeTimeout is how long the node waits for a probe response before
	// closing (another 15 s).
	ProbeTimeout time.Duration
	// ProbeRearmIdle is the idle window applied after a probe was already
	// answered, so alive-but-quiet peers are not probed every 15 seconds.
	// It bounds how late a truly silent death is detected (probe cadence
	// + 15 s timeout), so it trades pong volume against the accuracy of
	// recorded durations for silently closed sessions.
	ProbeRearmIdle time.Duration
	// KeepaliveMean is the mean gap between a client's own keepalive
	// PINGs.
	KeepaliveMean time.Duration
	// SilentCloseFraction is the share of user sessions that end without
	// an observed TCP close. The paper notes most clients skip the BYE
	// message, but a BYE-less exit still produces a TCP FIN the node
	// observes immediately; only crashes, NAT timeouts and network drops
	// are truly silent and pay the ~30 s probe overestimate.
	SilentCloseFraction float64
	// RemoteQueryEvery is the mean gap between forwarded wider-network
	// queries per ultrapeer connection.
	RemoteQueryEvery time.Duration
	// RemotePongEvery is the mean gap between forwarded pongs per
	// connection.
	RemotePongEvery time.Duration
	// RemoteHitEvery is the mean gap between observed query hits per
	// connection.
	RemoteHitEvery time.Duration
	// PongSampleRate and HitSampleRate subsample remote pong/hit records
	// in the trace (all are counted; only a sample is stored).
	PongSampleRate float64
	HitSampleRate  float64
}

// DefaultConfig returns the paper-calibrated configuration at the given
// seed and scale.
//
// Calibration note: the real node capped concurrency at 200, which bounds
// its connection-seconds; with the paper's own session-duration
// distributions the simulated population accumulates roughly an order of
// magnitude more connection-time than that cap admits (the paper's
// Table 1 volume and Figure 5 tails are not mutually consistent). The
// rates below are therefore calibrated so the *composition* of Table 1 —
// QUERY : PING : PONG : QUERYHIT ≈ 26 : 20 : 13 : 1, with hop-1 queries
// ≈5% of QUERY — holds for a 40-day run at scales where the 200-slot cap
// is not binding (the heavy-tailed session durations take a few days to
// reach steady-state concurrency, so shorter runs see lower background
// ratios). A Fleet with enough nodes that no per-node cap binds records
// the entire arrival stream (see fleet.go).
func DefaultConfig(seed uint64, scale float64) Config {
	return Config{
		Workload:            workload.DefaultConfig(seed, scale),
		MaxConns:            200,
		ProbeIdle:           15 * time.Second,
		ProbeTimeout:        15 * time.Second,
		ProbeRearmIdle:      140 * time.Second,
		KeepaliveMean:       168 * time.Second,
		SilentCloseFraction: 0.05,
		RemoteQueryEvery:    52 * time.Second,
		RemotePongEvery:     2000 * time.Second,
		RemoteHitEvery:      7000 * time.Second,
		PongSampleRate:      0.1,
		HitSampleRate:       0.1,
	}
}

// quickSilentFraction is the share of quick system disconnects that end
// silently; system-initiated disconnects are normally proper TCP closes.
const quickSilentFraction = 0.05

// byeFraction is the share of actively closed sessions that announce
// departure with a BYE message (most 2004 clients did not).
const byeFraction = 0.05

type simConn struct {
	id       int
	sess     *behavior.Session
	end      simtime.Time // client's true end (trace time)
	silent   bool
	lastRecv simtime.Time
	probeH   simtime.Handle
	probed   bool
	closed   bool
	// rec and queries accumulate the connection's record in streaming-sink
	// mode, where completed sessions are emitted and released instead of
	// retained in the vantage's trace (see vantage.sink).
	rec     trace.Conn
	queries []trace.Query
}

// Sim is one single-vantage measurement run — the paper's literal
// deployment. Create with New, execute with Run. It is a Fleet of one
// node; use NewFleet directly for the multi-vantage fabric.
type Sim struct {
	f *Fleet
	// Rejected counts arrivals refused because all MaxConns slots were
	// busy; populated by Run.
	Rejected uint64
	// DroppedQueryEvents counts client query events that found their
	// connection already closed (diagnostic); populated by Run.
	DroppedQueryEvents uint64
}

// New builds a single-vantage simulation.
func New(cfg Config) *Sim {
	return &Sim{f: NewFleet(FleetConfig{Node: cfg, Nodes: 1})}
}

// Run executes the full measurement period and returns the trace. The
// measurement stops at the configured horizon: sessions still connected
// are right-censored there, exactly as a real trace collection ends with
// connections still open.
func (s *Sim) Run() *trace.Trace {
	tr := s.f.Run()
	st := s.f.Stats()
	s.Rejected = st.Rejected
	s.DroppedQueryEvents = st.DroppedQueryEvents
	return tr
}

// vantage is one measurement node of a Fleet: its own overlay node,
// connection slots, random streams and output trace, driven by the
// fleet's shared clock and arrival stream. The zero-indexed node's random
// streams coincide with the historical single-node simulator, so a
// one-node fleet reproduces the original Sim trace.
type vantage struct {
	cfg     Config
	nodeIdx int
	sched   simtime.Scheduler
	node    *overlay.Node
	rng     *rand.Rand
	guids   *guid.Source
	params  *model.Params
	geoReg  *geo.Registry
	vocab   *vocab.Vocabulary
	out     *trace.Trace
	conns   map[int]*simConn
	nextID  int
	// peak tracks the maximum simultaneous connection count, the
	// cap-sizing diagnostic of FleetStats.
	peak int
	// rejected counts arrivals refused because all MaxConns slots were
	// busy.
	rejected uint64
	// droppedQueryEvents counts client query events that found their
	// connection already closed (diagnostic).
	droppedQueryEvents uint64
	// pongSeen marks connections whose hop-1 self-pong was recorded.
	pongSeen map[int]bool
	// sink, when non-nil, switches the vantage into streaming mode: every
	// record is emitted into the event stream the moment it is final —
	// session records at close, pong/hit records at receipt — and nothing
	// accumulates in out except the aggregate counters (shipped in the
	// stream trailer). The simulation itself is identical bit for bit:
	// sink mode changes where records go, never what the vantage does, so
	// the drained merged stream equals the batch merged trace (pinned by
	// internal/engine's equivalence tests).
	sink *stream.Producer
	// dayKeyCount tracks how often each keyword set was queried today at
	// this vantage, the popularity proxy of the hit-response model (each
	// monitor estimates popularity from its own shard, as a real
	// distributed deployment would).
	dayKeyCount map[string]int
	dayOfCount  int
}

// newVantage builds node idx of a fleet-style deployment around the given
// scheduler — the fleet's shared event loop, or a node-private one when
// internal/engine runs each vantage on its own goroutine. Per-node random
// streams are salted by the node index; index 0 reproduces the historical
// single-node streams exactly.
func newVantage(cfg Config, idx int, sched simtime.Scheduler, sh *SharedModel) *vantage {
	salt := uint64(idx) * 0x9e3779b97f4a7c15
	s := &vantage{
		cfg:         cfg,
		nodeIdx:     idx,
		sched:       sched,
		rng:         rand.New(rand.NewPCG(cfg.Workload.Seed, 0xca9107e^salt)),
		guids:       guid.NewSource(cfg.Workload.Seed, 0x600d^salt),
		params:      sh.params,
		geoReg:      sh.geoReg,
		vocab:       sh.vocab,
		conns:       make(map[int]*simConn),
		pongSeen:    make(map[int]bool),
		dayKeyCount: make(map[string]int),
		out: &trace.Trace{
			Seed:           cfg.Workload.Seed,
			Scale:          cfg.Workload.Scale,
			Days:           cfg.Workload.Days,
			Nodes:          1,
			PongSampleRate: cfg.PongSampleRate,
			HitSampleRate:  cfg.HitSampleRate,
		},
	}
	s.node = overlay.New(overlay.Config{
		Self:      s.guids.Next(),
		Ultrapeer: true,
		// University of Dortmund space; each fleet node gets its own host
		// address.
		Addr:      netip.AddrFrom4([4]byte{129, 217, 0, byte(1 + idx%254)}),
		Port:      6346,
		Now:       func() time.Duration { return s.sched.Now() },
		Send:      func(int, wire.Envelope) {}, // passive: forwards vanish into the ether
		OnMessage: s.record,
		GUIDs:     s.guids,
		Rand:      func() float64 { return s.rng.Float64() },
		// Forwarding to the no-op Send would cost O(connections) per
		// received query — quadratic in scale — for zero recorded effect.
		Passive: true,
	})
	return s
}

// arrive handles one session arrival assigned to this vantage.
func (s *vantage) arrive(now simtime.Time, sess *behavior.Session) {
	if s.node.ConnCount() >= s.cfg.MaxConns {
		s.rejected++
		return
	}
	id := s.nextID
	s.nextID++
	c := &simConn{
		id:       id,
		sess:     sess,
		end:      sess.End(),
		lastRecv: now,
	}
	if sess.Quick {
		c.silent = s.rng.Float64() < quickSilentFraction
	} else {
		c.silent = s.rng.Float64() < s.cfg.SilentCloseFraction
	}
	s.conns[id] = c
	rec := trace.Conn{
		ID:        uint64(id),
		Start:     now,
		Addr:      sess.Addr(),
		Ultrapeer: sess.Ultrapeer,
		UserAgent: sess.UserAgent,
	}
	if s.sink != nil {
		c.rec = rec
		s.sink.Open(uint64(id), now)
	} else {
		s.out.Conns = append(s.out.Conns, rec)
	}
	s.node.AddConn(id, sess.Ultrapeer)
	if cc := s.node.ConnCount(); cc > s.peak {
		s.peak = cc
	}

	// The client announces itself with a pong shortly after the
	// handshake.
	s.sched.After(300*time.Millisecond, simtime.EventFunc(func(at simtime.Time) {
		s.clientMessage(c, at, s.selfPong(c))
	}))

	// Schedule the client's query stream.
	for i := range sess.Queries {
		q := sess.Queries[i]
		s.sched.Schedule(c.sess.Start+q.Offset, simtime.EventFunc(func(at simtime.Time) {
			s.clientMessage(c, at, s.queryEnvelope(&q))
		}))
	}

	// Keepalive pings.
	s.scheduleKeepalive(c)

	// Wider-network traffic through this connection.
	s.scheduleRemote(c, s.cfg.RemotePongEvery, s.remotePong)
	s.scheduleRemote(c, s.cfg.RemoteHitEvery, s.remoteHit)
	if sess.Ultrapeer {
		s.scheduleRemote(c, s.cfg.RemoteQueryEvery, s.remoteQuery)
	}

	// Session end: an observed close, or silence for the probe machinery
	// to detect.
	if !c.silent {
		s.sched.Schedule(c.end, simtime.EventFunc(func(at simtime.Time) {
			if c.closed {
				return
			}
			if s.rng.Float64() < byeFraction {
				s.deliver(c, at, wire.NewEnvelope(s.guids.Next(), 1, &wire.Bye{Code: 200, Reason: "bye"}))
			}
			s.finalize(c, at, false)
		}))
	}
	s.rearmProbe(c, s.cfg.ProbeIdle)
}

// clientMessage delivers a client-initiated message and rearms the probe
// with the short idle window.
func (s *vantage) clientMessage(c *simConn, at simtime.Time, env wire.Envelope) {
	if c.closed {
		if env.Header.Type == wire.TypeQuery {
			s.droppedQueryEvents++
		}
		return
	}
	s.deliver(c, at, env)
	s.rearmProbe(c, s.cfg.ProbeIdle)
}

// deliver hands a message to the node (which records it via the OnMessage
// tap) and updates idle bookkeeping.
func (s *vantage) deliver(c *simConn, at simtime.Time, env wire.Envelope) {
	c.lastRecv = at
	c.probed = false
	s.node.Receive(c.id, env)
}

func (s *vantage) selfPong(c *simConn) wire.Envelope {
	return wire.Envelope{
		Header: wire.Header{GUID: s.guids.Next(), Type: wire.TypePong, TTL: 1, Hops: 1},
		Payload: &wire.Pong{
			Port:        6346,
			Addr:        c.sess.Addr(),
			SharedFiles: uint32(c.sess.SharedFiles),
		},
	}
}

func (s *vantage) queryEnvelope(q *behavior.TimedQuery) wire.Envelope {
	wq := &wire.Query{SearchText: q.Text}
	if q.SHA1 {
		wq.Extensions = []string{"urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB"}
	}
	return wire.Envelope{
		Header:  wire.Header{GUID: s.guids.Next(), Type: wire.TypeQuery, TTL: 6, Hops: 1},
		Payload: wq,
	}
}

// scheduleKeepalive chains the client's own periodic PINGs.
func (s *vantage) scheduleKeepalive(c *simConn) {
	gap := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.KeepaliveMean))
	at := s.sched.Now() + gap
	if at >= c.end {
		return
	}
	s.sched.Schedule(at, simtime.EventFunc(func(now simtime.Time) {
		if c.closed {
			return
		}
		// A keepalive is liveness evidence, so the probe is rearmed with
		// the long window: probing 15 s after every keepalive would
		// double the pong volume for no information.
		s.deliver(c, now, wire.Envelope{
			Header:  wire.Header{GUID: s.guids.Next(), Type: wire.TypePing, TTL: 1, Hops: 1},
			Payload: &wire.Ping{},
		})
		s.rearmProbe(c, s.cfg.ProbeRearmIdle)
		s.scheduleKeepalive(c)
	}))
}

// scheduleRemote chains wider-network traffic on a connection. Inbound
// forwarded traffic arrives through the peer, so it stops at the peer's
// true end — this is precisely why a silently dead connection goes idle
// and the probe machinery can detect it.
func (s *vantage) scheduleRemote(c *simConn, every time.Duration, emit func(c *simConn, at simtime.Time)) {
	gap := time.Duration(s.rng.ExpFloat64() * float64(every))
	s.sched.After(gap, simtime.EventFunc(func(now simtime.Time) {
		if c.closed || now >= c.end {
			return
		}
		emit(c, now)
		s.scheduleRemote(c, every, emit)
	}))
}

// remoteRegionAddr samples an address for a wider-network peer following
// the hour's geographic mix (this is what makes the "all peers" series of
// Figure 1 track the region curves).
func (s *vantage) remoteRegionAddr(at simtime.Time) (geo.Region, [4]byte) {
	region := s.params.PickRegion(s.rng, simtime.HourOfDay(at))
	addr := s.geoReg.Sample(region, s.rng)
	return region, addr.As4()
}

// remoteHops draws a plausible overlay distance for forwarded traffic:
// flooding fan-out makes higher hop counts more common.
func (s *vantage) remoteHops() uint8 {
	u := s.rng.Float64()
	switch {
	case u < 0.05:
		return 2
	case u < 0.15:
		return 3
	case u < 0.35:
		return 4
	case u < 0.65:
		return 5
	case u < 0.90:
		return 6
	default:
		return 7
	}
}

func (s *vantage) remotePong(c *simConn, at simtime.Time) {
	_, a4 := s.remoteRegionAddr(at)
	hops := s.remoteHops()
	s.deliver(c, at, wire.Envelope{
		Header: wire.Header{GUID: s.guids.Next(), Type: wire.TypePong, TTL: 7 - hops, Hops: hops},
		Payload: &wire.Pong{
			Port:        6346,
			Addr:        netip.AddrFrom4(a4),
			SharedFiles: uint32(s.params.SampleSharedFiles(s.rng)),
		},
	})
	s.rearmProbe(c, s.cfg.ProbeRearmIdle)
}

func (s *vantage) remoteHit(c *simConn, at simtime.Time) {
	_, a4 := s.remoteRegionAddr(at)
	hops := s.remoteHops()
	s.deliver(c, at, wire.Envelope{
		Header: wire.Header{GUID: s.guids.Next(), Type: wire.TypeQueryHit, TTL: 7 - hops, Hops: hops},
		Payload: &wire.QueryHit{
			Port:    6346,
			Addr:    netip.AddrFrom4(a4),
			Speed:   350,
			Results: []wire.HitResult{{FileIndex: 1, FileSize: 3800, FileName: "remote.mp3"}},
			Servent: s.guids.Next(),
		},
	})
	s.rearmProbe(c, s.cfg.ProbeRearmIdle)
}

func (s *vantage) remoteQuery(c *simConn, at simtime.Time) {
	region, _ := s.remoteRegionAddr(at)
	day := simtime.DayIndex(at)
	if day >= s.cfg.Workload.Days {
		day = s.cfg.Workload.Days - 1
	}
	hops := s.remoteHops()
	s.deliver(c, at, wire.Envelope{
		Header:  wire.Header{GUID: s.guids.Next(), Type: wire.TypeQuery, TTL: 7 - hops, Hops: hops},
		Payload: &wire.Query{SearchText: s.vocab.Sample(s.rng, region, day)},
	})
	s.rearmProbe(c, s.cfg.ProbeRearmIdle)
}

// scheduleResponses models the wider network answering a direct peer's
// query: QUERYHIT messages routed back through the node over the next few
// seconds. The hit count follows the query's popularity — each repetition
// of a keyword set observed on the same day raises the expected number of
// sources — so the hit-rate extension analysis can recover the
// hit-rate/popularity correlation. Responses are received messages and
// count toward Table 1's QUERYHIT row.
func (s *vantage) scheduleResponses(conn int, queryIdx int, q *wire.Query, at simtime.Time) {
	if q.HasSHA1() {
		// Source hunts answer rarely; the sources are already known.
		if s.rng.Float64() > 0.10 {
			return
		}
	}
	key := wire.KeywordKey(q.SearchText)
	if key == "" {
		return
	}
	// Reset the popularity proxy at day boundaries (hot sets drift).
	if day := simtime.DayIndex(at); day != s.dayOfCount {
		s.dayOfCount = day
		s.dayKeyCount = make(map[string]int)
	}
	s.dayKeyCount[key]++
	c := float64(s.dayKeyCount[key])

	// P(no hit) shrinks and the expected source count grows with the
	// day's repetition count of the keyword set.
	pMiss := 0.60 / (1 + 0.20*math.Log2(1+c))
	if s.rng.Float64() < pMiss {
		return
	}
	mean := 0.30 + 0.22*math.Log2(1+c)
	n := 1 + int(s.rng.ExpFloat64()*mean)
	if n > 15 {
		n = 15
	}
	cs := s.conns[conn]
	for i := 0; i < n; i++ {
		delay := 500*time.Millisecond + time.Duration(s.rng.Float64()*float64(8*time.Second))
		s.sched.After(delay, simtime.EventFunc(func(now simtime.Time) {
			if cs == nil || cs.closed || now >= cs.end {
				return
			}
			_, a4 := s.remoteRegionAddr(now)
			hops := s.remoteHops()
			// The query record is still in flight (its session has not
			// closed — checked above), so the hit counter can be bumped in
			// place in either storage mode.
			if s.sink != nil {
				cs.queries[queryIdx].Hits++
			} else {
				s.out.Queries[queryIdx].Hits++
			}
			s.deliver(cs, now, wire.Envelope{
				Header: wire.Header{GUID: s.guids.Next(), Type: wire.TypeQueryHit, TTL: 7 - hops, Hops: hops},
				Payload: &wire.QueryHit{
					Port:    6346,
					Addr:    netip.AddrFrom4(a4),
					Speed:   350,
					Results: []wire.HitResult{{FileIndex: 1, FileSize: 3700, FileName: q.SearchText + ".mp3"}},
					Servent: s.guids.Next(),
				},
			})
			s.rearmProbe(cs, s.cfg.ProbeRearmIdle)
		}))
	}
}

// rearmProbe (re)schedules the idle probe at now+idle.
func (s *vantage) rearmProbe(c *simConn, idle time.Duration) {
	if c.closed {
		return
	}
	s.sched.Cancel(c.probeH)
	c.probeH = s.sched.After(idle, simtime.EventFunc(func(now simtime.Time) {
		s.probeFire(c, now)
	}))
}

// probeFire implements the paper's liveness rule.
func (s *vantage) probeFire(c *simConn, now simtime.Time) {
	if c.closed {
		return
	}
	c.probed = true
	s.node.Probe(c.id) // sent by the node; not a received message
	if now < c.end {
		// Client is alive: it answers with a pong after a network RTT.
		rtt := 100*time.Millisecond + time.Duration(s.rng.Float64()*float64(300*time.Millisecond))
		s.sched.After(rtt, simtime.EventFunc(func(at simtime.Time) {
			if c.closed || at >= c.end {
				return // died between probe and response
			}
			s.deliver(c, at, s.selfPong(c))
			s.rearmProbe(c, s.cfg.ProbeRearmIdle)
		}))
		// If the client dies right after the probe, the deadline below
		// still closes the connection.
	}
	deadline := now + s.cfg.ProbeTimeout
	s.sched.Schedule(deadline, simtime.EventFunc(func(at simtime.Time) {
		if c.closed {
			return
		}
		if c.lastRecv >= now {
			return // something arrived since the probe; still alive
		}
		s.finalize(c, at, true)
	}))
}

// finalize closes a connection and completes its trace record.
func (s *vantage) finalize(c *simConn, end simtime.Time, silent bool) {
	if c.closed {
		return
	}
	c.closed = true
	s.sched.Cancel(c.probeH)
	s.node.RemoveConn(c.id)
	delete(s.conns, c.id)
	if s.sink != nil {
		// The record is final: no response event bumps a hit counter after
		// close (they check closed first). Emit and release.
		c.rec.End = end
		c.rec.SilentClose = silent
		s.sink.Close(uint64(c.id), end, &stream.SessionRecord{Conn: c.rec, Queries: c.queries})
		c.queries = nil
		return
	}
	rec := &s.out.Conns[c.id]
	rec.End = end
	rec.SilentClose = silent
}

// record is the node's OnMessage tap: it observes every received message
// exactly as the modified mutella logged its traffic.
func (s *vantage) record(conn int, env wire.Envelope) {
	at := s.sched.Now()
	switch m := env.Payload.(type) {
	case *wire.Ping:
		s.out.Counts.Ping++
	case *wire.Bye:
		s.out.Counts.Bye++
	case *wire.Push:
		s.out.Counts.Push++
	case *wire.Query:
		s.out.Counts.Query++
		if env.Header.Hops == 1 {
			s.out.Counts.QueryHop1++
			q := trace.Query{
				ConnID: uint64(conn),
				At:     at,
				Text:   m.SearchText,
				SHA1:   m.HasSHA1(),
				TTL:    env.Header.TTL,
				Hops:   env.Header.Hops,
			}
			if s.sink != nil {
				cs := s.conns[conn]
				cs.queries = append(cs.queries, q)
				s.scheduleResponses(conn, len(cs.queries)-1, m, at)
			} else {
				s.out.Queries = append(s.out.Queries, q)
				s.scheduleResponses(conn, len(s.out.Queries)-1, m, at)
			}
		}
	case *wire.Pong:
		s.out.Counts.Pong++
		if env.Header.Hops == 1 {
			// Record the first self-pong per connection; repeats carry
			// no new information (same peer, same library).
			if !s.pongSeen[conn] {
				s.pongSeen[conn] = true
				s.recordPong(trace.Pong{At: at, Addr: m.Addr, SharedFiles: m.SharedFiles, Hops: 1})
			}
		} else if s.rng.Float64() < s.cfg.PongSampleRate {
			s.recordPong(trace.Pong{At: at, Addr: m.Addr, SharedFiles: m.SharedFiles, Hops: env.Header.Hops})
		}
	case *wire.QueryHit:
		s.out.Counts.QueryHit++
		if s.rng.Float64() < s.cfg.HitSampleRate {
			rec := trace.Hit{At: at, Addr: m.Addr, Hops: env.Header.Hops}
			if s.sink != nil {
				s.sink.Hit(rec)
			} else {
				s.out.Hits = append(s.out.Hits, rec)
			}
		}
	}
}

// recordPong stores or emits one pong record depending on the vantage's
// mode.
func (s *vantage) recordPong(rec trace.Pong) {
	if s.sink != nil {
		s.sink.Pong(rec)
		return
	}
	s.out.Pongs = append(s.out.Pongs, rec)
}
