package capture

import (
	"repro/internal/behavior"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/vocab"
)

// SessionGUIDSalt seeds the fleet's session-GUID stream — the identity
// every arriving session is tagged with before guid.Shard assigns it to a
// vantage. It is exported so internal/engine's arrival pre-partitioning
// draws the exact GUID sequence the sequential Fleet draws.
const SessionGUIDSalt = 0x5e5510b

// SharedModel bundles the immutable model state every vantage of one
// deployment shares: the conditional session model, the geographic address
// registry, and the query vocabulary. All three are safe for concurrent
// readers (the vocabulary's lazy per-(class, day) rankings are built behind
// sync.Once), which is what lets internal/engine run vantage event loops
// on separate goroutines against one SharedModel.
type SharedModel struct {
	params *model.Params
	geoReg *geo.Registry
	vocab  *vocab.Vocabulary
}

// NewSharedModel extracts the shared state from the arrival generator, the
// same instances the sequential Fleet hands its vantages — required for
// byte-identity, since vocabulary draws depend on the ranking state's seed.
func NewSharedModel(gen *behavior.Generator) *SharedModel {
	return &SharedModel{
		params: gen.Workload().Params(),
		geoReg: geo.Default(),
		vocab:  gen.Workload().Vocabulary(),
	}
}

// Node is one exported measurement vantage, the unit internal/engine
// drives: the same vantage type the Fleet runs, constructed around a
// caller-owned scheduler so its event loop can live on its own goroutine
// with its own clock. All methods must be called from that one goroutine
// (the vantage shares no mutable state with other nodes — only the
// SharedModel, which is read-only).
type Node struct {
	v *vantage
}

// NewNode builds vantage idx of an N-node deployment around the given
// scheduler. The node's random streams are salted exactly as the Fleet
// salts them, so a Node-driven simulation reproduces the Fleet's per-node
// traces byte for byte (pinned by internal/engine's equivalence tests).
func NewNode(cfg Config, idx int, sched simtime.Scheduler, sh *SharedModel) *Node {
	return &Node{v: newVantage(cfg, idx, sched, sh)}
}

// NewNodeStream builds the same vantage in streaming-sink mode: records
// are emitted into the producer as they finalize — session records at
// close, pong/hit records at receipt — and released, instead of
// accumulating in the node's trace. The simulation's event and random
// streams are bit-identical to the retained mode; only record storage
// differs, so draining the emitted stream reproduces the batch trace
// (pinned by internal/engine's streaming equivalence tests). Trace() on a
// streaming node returns an empty record set (aggregate counters only).
func NewNodeStream(cfg Config, idx int, sched simtime.Scheduler, sh *SharedModel, sink *stream.Producer) *Node {
	n := &Node{v: newVantage(cfg, idx, sched, sh)}
	n.v.sink = sink
	return n
}

// Arrive delivers one session arrival assigned to this vantage, exactly as
// the Fleet's dispatcher does: the node accepts it subject to its MaxConns
// cap and schedules the session's message events on its scheduler.
func (n *Node) Arrive(now simtime.Time, sess *behavior.Session) {
	n.v.arrive(now, sess)
}

// FinalizeOpen right-censors every still-open connection at the horizon —
// the collection end of a measurement run, identical to the Fleet's
// end-of-run pass. Call it after the scheduler has run to the horizon.
func (n *Node) FinalizeOpen(horizon simtime.Time) {
	for _, c := range n.v.conns {
		if !c.closed {
			n.v.finalize(c, horizon, false)
		}
	}
}

// FinishStream emits the streaming trailer — the aggregate message
// counters plus the trace metadata the merge folds into the merged trace
// — and flushes the producer. Call it once, after FinalizeOpen, on a node
// built with NewNodeStream.
func (n *Node) FinishStream(horizon simtime.Time) {
	v := n.v
	v.sink.Done(horizon, &stream.End{
		Counts:         v.out.Counts,
		Seed:           v.out.Seed,
		Scale:          v.out.Scale,
		Days:           v.out.Days,
		Nodes:          1,
		PongSampleRate: v.out.PongSampleRate,
		HitSampleRate:  v.out.HitSampleRate,
	})
}

// Trace returns the node's own recorded trace.
func (n *Node) Trace() *trace.Trace { return n.v.out }

// Stats returns the node's accounting row, shaped exactly like the
// Fleet's per-node stats. nextID counts accepted arrivals, so the row is
// identical in retained and streaming modes.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Node:               n.v.nodeIdx,
		Conns:              n.v.nextID,
		Rejected:           n.v.rejected,
		PeakConns:          n.v.peak,
		DroppedQueryEvents: n.v.droppedQueryEvents,
	}
}
