package behavior

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/workload"
)

func testGen(seed uint64, scale float64, days int) *Generator {
	cfg := workload.DefaultConfig(seed, scale)
	cfg.Days = days
	return NewGenerator(cfg)
}

func TestGeneratorDeterminism(t *testing.T) {
	a := testGen(9, 0.002, 2)
	b := testGen(9, 0.002, 2)
	for i := 0; i < 100; i++ {
		sa, sb := a.Next(), b.Next()
		if (sa == nil) != (sb == nil) {
			t.Fatal("stream lengths differ")
		}
		if sa == nil {
			break
		}
		if sa.Start != sb.Start || sa.UserAgent != sb.UserAgent ||
			len(sa.Queries) != len(sb.Queries) || sa.Quick != sb.Quick {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestQuickFraction(t *testing.T) {
	g := testGen(1, 0.01, 3)
	total, quick := 0, 0
	for s := g.Next(); s != nil; s = g.Next() {
		total++
		if s.Quick {
			quick++
			if s.Duration >= 64*time.Second {
				t.Fatalf("quick session lasted %v", s.Duration)
			}
		}
	}
	frac := float64(quick) / float64(total)
	if math.Abs(frac-model.QuickDisconnectFraction) > 0.02 {
		t.Errorf("quick fraction = %v over %d sessions, want ≈0.70", frac, total)
	}
}

func TestQueriesSortedAndInSession(t *testing.T) {
	g := testGen(3, 0.005, 2)
	for s := g.Next(); s != nil; s = g.Next() {
		for i, q := range s.Queries {
			if q.Offset < 0 || q.Offset > s.Duration {
				t.Fatalf("query at %v outside session duration %v (kind %v)", q.Offset, s.Duration, q.Kind)
			}
			if i > 0 && q.Offset < s.Queries[i-1].Offset {
				t.Fatal("queries not sorted")
			}
		}
	}
}

func TestAutomationRatios(t *testing.T) {
	// Table 2 proportions: re-queries ≈ 4–5× and SHA1 ≈ 2–2.5× the user
	// queries (for retained, non-quick sessions).
	g := testGen(5, 0.02, 4)
	counts := map[QueryKind]int{}
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Quick {
			continue
		}
		for _, q := range s.Queries {
			counts[q.Kind]++
		}
	}
	user := float64(counts[KindUser] + counts[KindBurst]) // both are user intent
	if user == 0 {
		t.Fatal("no user queries generated")
	}
	requeryRatio := float64(counts[KindRequery]) / user
	sha1Ratio := float64(counts[KindSHA1]) / user
	if requeryRatio < 2.5 || requeryRatio > 6.5 {
		t.Errorf("requery ratio = %v, want ≈4–5", requeryRatio)
	}
	if sha1Ratio < 1.5 || sha1Ratio > 3.5 {
		t.Errorf("sha1 ratio = %v, want ≈2–2.5", sha1Ratio)
	}
}

func TestSHA1QueriesMarked(t *testing.T) {
	g := testGen(7, 0.01, 2)
	for s := g.Next(); s != nil; s = g.Next() {
		for _, q := range s.Queries {
			if (q.Kind == KindSHA1) != q.SHA1 {
				t.Fatalf("kind %v with SHA1=%v", q.Kind, q.SHA1)
			}
			if q.SHA1 && q.Text != "" {
				t.Fatal("SHA1 hunt should carry no keywords")
			}
		}
	}
}

func TestBurstTiming(t *testing.T) {
	// Rule-4 bursts: sub-second interarrivals right after connect.
	g := testGen(11, 0.02, 3)
	bursts := 0
	for s := g.Next(); s != nil; s = g.Next() {
		var prev time.Duration
		first := true
		for _, q := range s.Queries {
			if q.Kind != KindBurst {
				continue
			}
			if q.Offset > 5*time.Second {
				t.Fatalf("burst query at %v", q.Offset)
			}
			if !first {
				iat := q.Offset - prev
				if iat <= 0 || iat >= time.Second {
					t.Fatalf("burst interarrival %v, want < 1 s", iat)
				}
			}
			prev, first = q.Offset, false
			bursts++
		}
	}
	if bursts == 0 {
		t.Fatal("no burst queries generated")
	}
}

func TestIntervalRunsExactPeriod(t *testing.T) {
	g := testGen(13, 0.03, 3)
	runs := 0
	for s := g.Next(); s != nil; s = g.Next() {
		var offs []time.Duration
		for _, q := range s.Queries {
			if q.Kind == KindInterval {
				offs = append(offs, q.Offset)
			}
		}
		if len(offs) < 3 {
			continue
		}
		runs++
		iat := offs[1] - offs[0]
		for i := 2; i < len(offs); i++ {
			if offs[i]-offs[i-1] != iat {
				t.Fatalf("interval run not periodic: %v vs %v", offs[i]-offs[i-1], iat)
			}
		}
		if iat < time.Second {
			t.Fatalf("interval period %v would collide with rule 4", iat)
		}
	}
	if runs == 0 {
		t.Fatal("no interval runs generated")
	}
}

func TestAsiaHeavyUnfilteredTail(t *testing.T) {
	// Figure 6(c) counts queries after rules 1–3 but without rules 4–5:
	// distinct non-SHA1 strings per session. Under that metric ≈4% of
	// Asian sessions exceed 100 queries — far more than North American
	// ones (whose unfiltered tail stays near 1%).
	g := testGen(17, 0.15, 6)
	over100 := map[geo.Region]int{}
	active := map[geo.Region]int{}
	for s := g.Next(); s != nil; s = g.Next() {
		if s.Quick || len(s.Queries) == 0 {
			continue
		}
		distinct := map[string]bool{}
		for _, q := range s.Queries {
			if !q.SHA1 {
				distinct[q.Text] = true
			}
		}
		if len(distinct) == 0 {
			continue
		}
		active[s.Region]++
		if len(distinct) > 100 {
			over100[s.Region]++
		}
	}
	asFrac := float64(over100[geo.Asia]) / float64(active[geo.Asia])
	naFrac := float64(over100[geo.NorthAmerica]) / float64(active[geo.NorthAmerica])
	if asFrac < 0.015 || asFrac > 0.09 {
		t.Errorf("Asia >100-query fraction = %v, want ≈0.04", asFrac)
	}
	if naFrac >= asFrac {
		t.Errorf("NA fraction %v should be below Asia %v", naFrac, asFrac)
	}
}

func TestUserAgentAssigned(t *testing.T) {
	g := testGen(19, 0.005, 2)
	seen := map[string]bool{}
	for s := g.Next(); s != nil; s = g.Next() {
		if s.UserAgent == "" {
			t.Fatal("session without user agent")
		}
		seen[s.UserAgent] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct user agents seen", len(seen))
	}
}

func TestQuickSessionQueryRate(t *testing.T) {
	g := testGen(23, 0.02, 4)
	quick, withQueries := 0, 0
	for s := g.Next(); s != nil; s = g.Next() {
		if !s.Quick {
			continue
		}
		quick++
		if len(s.Queries) > 0 {
			withQueries++
		}
	}
	frac := float64(withQueries) / float64(quick)
	if math.Abs(frac-model.QuickSessionQueryFraction) > 0.02 {
		t.Errorf("quick sessions with queries = %v, want ≈%v", frac, model.QuickSessionQueryFraction)
	}
}

func TestGeomMean(t *testing.T) {
	sh := NewShaper(1, nil, model.Default())
	for _, mean := range []float64{0.5, 2, 5} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(sh.geom(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("geom(%v) mean = %v", mean, got)
		}
	}
	if sh.geom(0) != 0 || sh.geom(-1) != 0 {
		t.Error("non-positive mean must yield 0")
	}
}

func TestAddrAndEnd(t *testing.T) {
	g := testGen(29, 0.002, 1)
	s := g.Next()
	if s == nil {
		t.Fatal("no session")
	}
	if !s.Addr().Is4() {
		t.Error("address not IPv4")
	}
	if s.End() != s.Start+s.Duration {
		t.Error("End mismatch")
	}
}
