// Package behavior models the Gnutella client software that sits between
// the user and the network — the layer whose automation the paper's filter
// rules exist to remove. It wraps the pure user sessions produced by
// internal/workload into raw client sessions containing:
//
//   - automatic re-queries of previously issued query strings, sent to
//     improve search results (filter rule 2 removes these — they are
//     nearly half of all observed hop-1 queries, Table 2);
//   - SHA1 source-hunting queries for files already being downloaded
//     (rule 1);
//   - system-terminated quick sessions under 64 seconds — about 70% of
//     all connections (rule 3);
//   - a burst of re-issued pre-connection queries right after connecting,
//     with sub-second interarrival times (rule 4);
//   - fixed-interval automated query runs, most prevalent in Asian-market
//     clients — these produce Figure 6(c)'s heavy unfiltered tail
//     (rule 5).
//
// The Kind of each query is ground truth for ablation and calibration
// only: the filter pipeline never sees it.
package behavior

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/vocab"
	"repro/internal/workload"
)

// QueryKind labels why the client sent a query (ground truth).
type QueryKind uint8

// Query kinds, in filter-rule order.
const (
	KindUser     QueryKind = iota // genuine user query, first in-session occurrence
	KindSHA1                      // rule 1: source-hunting re-query
	KindRequery                   // rule 2: automatic re-send of an earlier string
	KindBurst                     // rule 4: pre-connection query re-issued at connect
	KindInterval                  // rule 5: fixed-interval automated query
)

func (k QueryKind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindSHA1:
		return "sha1"
	case KindRequery:
		return "requery"
	case KindBurst:
		return "burst"
	case KindInterval:
		return "interval"
	default:
		return "unknown"
	}
}

// TimedQuery is one QUERY message the client will emit.
type TimedQuery struct {
	Offset time.Duration // since session start
	Text   string        // keyword search text ("" for SHA1 hunts)
	SHA1   bool          // carries a urn:sha1 extension
	Kind   QueryKind     // ground truth, invisible to the filter
}

// Session is a raw client session as the measurement node will see it:
// the user session plus everything the client software adds.
type Session struct {
	Start       time.Duration // simulated trace time
	Region      geo.Region
	Ultrapeer   bool
	SharedFiles int
	UserAgent   string
	// Quick marks a system-terminated connection (< 64 s).
	Quick bool
	// Duration is the connected-session duration after automation (an
	// interval run can keep the client online slightly longer than the
	// user session it wraps).
	Duration time.Duration
	// Queries is the full time-ordered query stream.
	Queries []TimedQuery
	// User points to the arrival skeleton: the full user session for
	// wrapped sessions, or the unused would-be session for quick ones
	// (quick disconnects preempt whatever the user might have done).
	User *workload.Session
}

// Addr returns the peer's address, carried on the arrival skeleton.
func (s *Session) Addr() netip.Addr { return s.User.Addr }

// End returns the session end in trace time.
func (s *Session) End() time.Duration { return s.Start + s.Duration }

// Profile describes one client implementation's automation behavior.
type Profile struct {
	// UserAgent is the handshake identification string.
	UserAgent string
	// RequeryPeriod is the client's automatic re-send interval: an
	// unsatisfied search is re-issued every period for as long as the
	// session lasts (rule 2 traffic). Long sessions therefore produce
	// hundreds of duplicates of a single string — which is exactly why
	// unfiltered popularity looks so much more cacheable than user
	// behavior (the paper's headline argument).
	RequeryPeriod time.Duration
	// SHA1PerQuery is the mean number of SHA1 source hunts per user query
	// (rule 1 traffic).
	SHA1PerQuery float64
	// IntervalProb is the chance an active session runs fixed-interval
	// automation (rule 5 traffic).
	IntervalProb float64
	// IntervalEvery is the fixed automation period.
	IntervalEvery time.Duration
	// IntervalCountMean is the mean length of an interval run.
	IntervalCountMean float64
}

// profiles approximates the 2004 client population. User-agent strings
// match deployed versions of the era; shares are rough market estimates.
// The automation rates are calibrated so that the filter-rule hit counts
// stand in Table 2's proportions: re-queries ≈ 4–5× and SHA1 hunts ≈
// 2–2.5× the surviving user queries.
var profiles = []struct {
	Profile
	share float64
}{
	{Profile{"LimeWire/3.8.10", 9 * time.Minute, 2.7, 0.01, 10 * time.Second, 30}, 0.38},
	{Profile{"BearShare/4.3.1", 10 * time.Minute, 2.6, 0.01, 15 * time.Second, 25}, 0.24},
	{Profile{"Shareaza/1.8.8.0", 8 * time.Minute, 3.1, 0.02, 10 * time.Second, 40}, 0.10},
	{Profile{"Morpheus/3.0.3", 15 * time.Minute, 1.9, 0.02, 20 * time.Second, 25}, 0.08},
	{Profile{"Gnucleus/1.8.6.0", 12 * time.Minute, 2.0, 0.01, 30 * time.Second, 20}, 0.06},
	{Profile{"Mutella/0.4.5", 20 * time.Minute, 0.9, 0.00, 10 * time.Second, 0}, 0.04},
	{Profile{"gtk-gnutella/0.93.4", 18 * time.Minute, 0.9, 0.00, 10 * time.Second, 0}, 0.05},
	{Profile{"XoloX/1.8", 10 * time.Minute, 2.2, 0.30, 10 * time.Second, 90}, 0.05},
}

// asiaIntervalBoost raises the chance of fixed-interval automation for
// Asian peers, and asiaIntervalCountMean lengthens their runs: Figure 6(c)
// shows ≈4% of unfiltered Asian sessions exceed 100 queries, which only
// interval automation produces.
const (
	asiaIntervalBoost     = 0.055
	asiaIntervalCountMean = 130.0
)

// Shaper wraps user sessions into client sessions. Not safe for
// concurrent use.
type Shaper struct {
	rng   *rand.Rand
	vocab *vocab.Vocabulary
	model *model.Params
	// cumulative profile shares for sampling
	cum []float64
}

// NewShaper builds a shaper drawing automation randomness from the seed.
func NewShaper(seed uint64, v *vocab.Vocabulary, p *model.Params) *Shaper {
	sh := &Shaper{
		rng:   rand.New(rand.NewPCG(seed, 0xb10c5eed)),
		vocab: v,
		model: p,
	}
	var acc float64
	for _, pr := range profiles {
		acc += pr.share
		sh.cum = append(sh.cum, acc)
	}
	return sh
}

// PickProfile samples a client implementation.
func (sh *Shaper) PickProfile() Profile {
	u := sh.rng.Float64() * sh.cum[len(sh.cum)-1]
	for i, c := range sh.cum {
		if u <= c {
			return profiles[i].Profile
		}
	}
	return profiles[0].Profile
}

// Quick converts an arrival skeleton into a system-terminated quick
// session (< 64 s): the connection the measurement node sees when client
// software decides to disconnect for its own reasons (rule 3).
func (sh *Shaper) Quick(s *workload.Session) *Session {
	prof := sh.PickProfile()
	cs := &Session{
		Start:       time.Duration(s.Start),
		Region:      s.Region,
		Ultrapeer:   s.Ultrapeer,
		SharedFiles: s.SharedFiles,
		UserAgent:   prof.UserAgent,
		Quick:       true,
		Duration:    sh.model.SampleQuickDisconnect(sh.rng),
		User:        s,
	}
	// A small fraction of quick sessions carries a query or two (Table 2,
	// rule 3: ≈0.1 queries per discarded session).
	if sh.rng.Float64() < model.QuickSessionQueryFraction {
		day := dayOf(cs.Start)
		off := time.Duration(sh.rng.Float64() * float64(cs.Duration))
		cs.Queries = append(cs.Queries, TimedQuery{
			Offset: off,
			Text:   sh.vocab.Sample(sh.rng, s.Region, day),
			Kind:   KindUser,
		})
		if sh.rng.Float64() < 0.5 && cs.Duration-off > 2*time.Second {
			// An immediate automated re-send inside the short window.
			cs.Queries = append(cs.Queries, TimedQuery{
				Offset: off + time.Second + time.Duration(sh.rng.Float64()*float64(time.Second)),
				Text:   cs.Queries[0].Text,
				Kind:   KindRequery,
			})
		}
	}
	return cs
}

// Wrap converts a user session into the raw client session the overlay
// will observe.
func (sh *Shaper) Wrap(s *workload.Session) *Session {
	prof := sh.PickProfile()
	cs := &Session{
		Start:       time.Duration(s.Start),
		Region:      s.Region,
		Ultrapeer:   s.Ultrapeer,
		SharedFiles: s.SharedFiles,
		UserAgent:   prof.UserAgent,
		Duration:    s.Duration,
		User:        s,
	}
	if s.Passive {
		return cs
	}

	// User queries, with the pre-connect ones forming the rule-4 burst:
	// the client re-issues them back to back right after connecting.
	burstAt := 200 * time.Millisecond
	for _, q := range s.Queries {
		tq := TimedQuery{Offset: q.Offset, Text: q.Text, Kind: KindUser}
		if q.PreConnect {
			tq.Kind = KindBurst
			tq.Offset = burstAt
			burstAt += 300*time.Millisecond + time.Duration(sh.rng.Float64()*400)*time.Millisecond
		}
		cs.Queries = append(cs.Queries, tq)
	}

	// Automatic re-queries: the client re-issues each pending search every
	// RequeryPeriod (±10% timer jitter) until the session ends, so the
	// duplicate count scales with the remaining session time.
	for _, q := range s.Queries {
		window := s.Duration - q.Offset
		if window < 5*time.Second {
			continue
		}
		off := q.Offset
		for i := 0; i < 150; i++ {
			jitter := 0.9 + 0.2*sh.rng.Float64()
			off += time.Duration(float64(prof.RequeryPeriod) * jitter)
			if off >= s.Duration {
				break
			}
			cs.Queries = append(cs.Queries, TimedQuery{
				Offset: off,
				Text:   q.Text,
				Kind:   KindRequery,
			})
		}
	}

	// SHA1 source hunts: after a query leads to a download, the client
	// searches for further sources by hash.
	for _, q := range s.Queries {
		n := sh.geom(prof.SHA1PerQuery)
		window := s.Duration - q.Offset
		if window < 5*time.Second {
			continue
		}
		for i := 0; i < n && i < 40; i++ {
			off := q.Offset + time.Duration(sh.rng.Float64()*float64(window))
			cs.Queries = append(cs.Queries, TimedQuery{
				Offset: off,
				SHA1:   true,
				Kind:   KindSHA1,
			})
		}
	}

	// Fixed-interval automation: a run of distinct pending searches
	// replayed every IntervalEvery seconds exactly (rule 5). Asian-market
	// deployments run this far more often (Figure 6(c)).
	p := prof.IntervalProb
	countMean := prof.IntervalCountMean
	if s.Region == geo.Asia {
		p += asiaIntervalBoost
		// Asian deployments run much longer automation queues; this is
		// what puts ≈4% of unfiltered Asian sessions beyond 100 queries
		// in Figure 6(c).
		if countMean < asiaIntervalCountMean {
			countMean = asiaIntervalCountMean
		}
	}
	if p > 0 && sh.rng.Float64() < p && countMean > 0 {
		n := sh.geom(countMean)
		if n > 300 {
			n = 300
		}
		start := 2*time.Second + time.Duration(sh.rng.Float64()*float64(10*time.Second))
		for i := 0; i < n; i++ {
			off := start + time.Duration(i)*prof.IntervalEvery
			cs.Queries = append(cs.Queries, TimedQuery{
				Offset: off,
				// Interval automation replays a machine-held queue of
				// pending searches — filename-like strings outside the
				// user vocabulary. (This is also why Table 3's Asian
				// distinct-query counts stay tiny while Figure 6(c)'s
				// Asian tail reaches hundreds of queries: the paper
				// excludes rule-5 traffic from the popularity sets.)
				Text: sh.machineString(i),
				Kind: KindInterval,
			})
		}
		if end := start + time.Duration(n)*prof.IntervalEvery; end > cs.Duration {
			cs.Duration = end // automation keeps the client online
		}
	}

	sortQueries(cs.Queries)
	return cs
}

// machineString generates a filename-like query string for automated
// interval re-queries, distinct from the user vocabulary and from other
// entries of the same run.
func (sh *Shaper) machineString(i int) string {
	const hexdig = "0123456789abcdef"
	b := make([]byte, 0, 24)
	b = append(b, "file "...)
	for j := 0; j < 8; j++ {
		b = append(b, hexdig[sh.rng.IntN(16)])
	}
	b = append(b, ' ')
	b = appendInt(b, i)
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// geom draws a non-negative integer with the given mean (geometric on
// {0,1,2,…}).
func (sh *Shaper) geom(mean float64) int {
	if mean <= 0 {
		return 0
	}
	theta := mean / (1 + mean)
	u := sh.rng.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Log(u) / math.Log(theta))
}

func dayOf(t time.Duration) int { return int(t / (24 * time.Hour)) }

// sortQueries orders the stream by offset. The sort must be stable so
// that equal-offset queries keep their generation order (determinism),
// and O(n log n) so that automation-heavy sessions (thousands of
// periodic re-queries) stay cheap.
func sortQueries(qs []TimedQuery) {
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Offset < qs[j].Offset })
}

// Generator composes the workload arrival process with the client layer:
// each arriving connection is a quick system session with probability
// QuickDisconnectFraction, and a wrapped user session otherwise.
type Generator struct {
	users  *workload.Generator
	shaper *Shaper
	rng    *rand.Rand
	// scenario mirrors cfg.Scenario; nil for scenario-free runs, in which
	// case every scenario hook below is a no-op and the generated stream
	// is byte-identical to the historical generator's.
	scenario *workload.Scenario
	// churnRNG drives churn truncation draws, deliberately separate from
	// rng so attaching churn events leaves the quick/wrap decisions and
	// shaping draws of every session untouched.
	churnRNG *rand.Rand
}

// NewGenerator builds the composed generator.
func NewGenerator(cfg workload.Config) *Generator {
	ug := workload.NewGenerator(cfg)
	g := &Generator{
		users:    ug,
		shaper:   NewShaper(cfg.Seed^0x51e55ed, ug.Vocabulary(), ug.Params()),
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0xfeedface)),
		scenario: cfg.Scenario,
	}
	if cfg.Scenario != nil && len(cfg.Scenario.Churn) > 0 {
		g.churnRNG = rand.New(rand.NewPCG(cfg.Seed, 0xc4c41dead))
	}
	return g
}

// Workload exposes the inner user-session generator.
func (g *Generator) Workload() *workload.Generator { return g.users }

// Shaper exposes the client layer (for tests and ablations).
func (g *Generator) Shaper() *Shaper { return g.shaper }

// Next returns the next raw client session, or nil at the trace horizon.
func (g *Generator) Next() *Session {
	s := g.users.Next()
	if s == nil {
		return nil
	}
	// The quick draw happens for every arrival — automated scenario
	// classes merely ignore its outcome — so the rng stream stays
	// positional across scenarios.
	quick := g.rng.Float64() < model.QuickDisconnectFraction
	if quick && g.automated(s.Class) {
		quick = false
	}
	var cs *Session
	if quick {
		cs = g.shaper.Quick(s)
	} else {
		cs = g.shaper.Wrap(s)
	}
	g.applyChurn(cs)
	return cs
}

// automated reports whether the session's scenario class models automated
// clients (content injectors), which never take the user quick-disconnect
// path: a polluter that disconnects after 20 seconds pollutes nothing.
func (g *Generator) automated(class string) bool {
	cls := g.scenario.ClassByName(class)
	return cls != nil && cls.Automated()
}

// applyChurn truncates sessions caught by a scenario churn transient: a
// session spanning the mass-disconnect instant is, with the event's
// Fraction probability, cut off at that instant — its remaining queries
// never sent, exactly like a peer whose connection an intervention tore
// down. Draws come from the dedicated churn stream, one per spanning
// (session, event) pair, so the decision is positional and identical in
// every execution mode (sequential fleet, eager engine, bounded producer,
// per-vantage NodeStream regeneration).
func (g *Generator) applyChurn(cs *Session) {
	if g.churnRNG == nil {
		return
	}
	for i := range g.scenario.Churn {
		e := &g.scenario.Churn[i]
		if cs.Start >= e.At || cs.End() <= e.At {
			continue
		}
		if g.churnRNG.Float64() >= e.Fraction {
			continue
		}
		cs.Duration = e.At - cs.Start
		kept := cs.Queries[:0]
		for _, q := range cs.Queries {
			if q.Offset < cs.Duration {
				kept = append(kept, q)
			}
		}
		cs.Queries = kept
	}
}
