package dist

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToFloats decodes a fuzz payload into a float64 slice, keeping
// whatever bit patterns the fuzzer invents (including NaN and ±Inf).
func bytesToFloats(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}

// FuzzFitZipf asserts the fitter's contract on arbitrary input: it
// either returns an error or a finite fit — it never panics and never
// reports a non-finite exponent.
func FuzzFitZipf(f *testing.F) {
	f.Add([]byte{})         // empty
	f.Add(make([]byte, 8))  // single zero value
	f.Add(make([]byte, 64)) // all zeros
	seed := make([]byte, 0, 64)
	for _, v := range []float64{5, 5, 5, 5} { // constant
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	bad := make([]byte, 0, 32)
	for _, v := range []float64{1, math.NaN(), math.Inf(1), -2} {
		bad = binary.LittleEndian.AppendUint64(bad, math.Float64bits(v))
	}
	f.Add(bad)
	good := make([]byte, 0, 64)
	for _, v := range []float64{8, 4, 2, 1, 0.5, 0.25} {
		good = binary.LittleEndian.AppendUint64(good, math.Float64bits(v))
	}
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		freqs := bytesToFloats(data)
		fit, err := FitZipf(freqs)
		if err != nil {
			return
		}
		if math.IsNaN(fit.Alpha) || math.IsInf(fit.Alpha, 0) {
			t.Fatalf("accepted fit has α = %v", fit.Alpha)
		}
		if math.IsNaN(fit.R2) || fit.R2 < -1e-9 || fit.R2 > 1+1e-9 {
			t.Fatalf("accepted fit has R² = %v", fit.R2)
		}
	})
}

// FuzzKS asserts KS never panics and only ever returns NaN or a value in
// [0, 1] for arbitrary samples against a fixed model.
func FuzzKS(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	nan := binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))
	f.Add(nan)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := bytesToFloats(data)
		model := Lognormal{Sigma: 1.2, Mu: 1}
		ks := KS(xs, model)
		if !math.IsNaN(ks) && (ks < 0 || ks > 1) {
			t.Fatalf("KS = %v outside [0, 1]", ks)
		}
		// Two-sample variant against a fixed healthy sample.
		ref := []float64{1, 2, 3, 4, 5}
		ks2 := KS2(xs, ref)
		if !math.IsNaN(ks2) && (ks2 < 0 || ks2 > 1) {
			t.Fatalf("KS2 = %v outside [0, 1]", ks2)
		}
	})
}

// FuzzFitters drives the sample-based fitters with arbitrary inputs:
// errors are fine, panics and non-finite accepted parameters are not.
func FuzzFitters(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(make([]byte, 80), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		xs := bytesToFloats(data)
		check := func(name string, d Dist, err error) {
			if err != nil {
				return
			}
			if q := d.Quantile(0.5); math.IsNaN(q) {
				t.Fatalf("%s: accepted fit has NaN median", name)
			}
		}
		switch which % 5 {
		case 0:
			m, err := FitLognormal(xs)
			check("FitLognormal", m, err)
		case 1:
			m, err := FitLognormalCounts(xs)
			check("FitLognormalCounts", m, err)
		case 2:
			m, err := FitBimodalLognormal(xs, 64, 120)
			if err == nil {
				check("FitBimodalLognormal", m.Mixture(), nil)
			}
		case 3:
			m, err := FitWeibullLognormal(xs, 0, 45)
			if err == nil {
				check("FitWeibullLognormal", m.Mixture(), nil)
			}
		case 4:
			m, err := FitLognormalPareto(xs, 0, 103)
			if err == nil {
				check("FitLognormalPareto", m.Mixture(), nil)
			}
		}
	})
}
