// Package dist implements the statistical machinery of the paper's
// appendix: the continuous distribution families used by the conditional
// session models (lognormal, Weibull, Pareto), the body/tail composite
// that every Table A.1–A.4 model is expressed in, Zipf-like rank
// distributions for query popularity (Figure 11, including the
// two-segment intersection fit), maximum-likelihood fitters that recover
// each family's parameters from measured samples, and the
// Kolmogorov–Smirnov distance used to score fits.
//
// All sampling draws exclusively through the caller-supplied
// *rand/v2.Rand, so a given seed reproduces an identical stream from
// every distribution and ranker — a property the closed-loop tests and
// future parallelization depend on. Weibull, Pareto, the BodyTail
// composite, and the rankers additionally consume a fixed number of
// uniforms per draw (one, or two for BodyTail), keeping interleaved
// consumers of a shared generator aligned; plain Lognormal.Sample uses
// NormFloat64, whose ziggurat draws a variable amount.
package dist

import "math/rand/v2"

// Dist is a continuous univariate distribution over (a subset of) the
// positive reals. Implementations are small value types and safe for
// concurrent use.
type Dist interface {
	// Sample draws one variate using the supplied generator.
	Sample(rng *rand.Rand) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile (inverse CDF) for p in [0, 1].
	Quantile(p float64) float64
}
