package dist

import "math"

// minimize2 is a compact Nelder–Mead simplex minimizer in two
// dimensions, enough for every two-parameter likelihood in this package.
// Objective functions are expected to return large finite values (not
// NaN/Inf) on out-of-range parameters; minimize2 additionally treats
// non-finite values as worst-case.
func minimize2(f func(a, b float64) float64, a0, b0, stepA, stepB float64) (float64, float64) {
	type vertex struct {
		a, b, val float64
	}
	eval := func(a, b float64) float64 {
		v := f(a, b)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.MaxFloat64
		}
		return v
	}
	simplex := [3]vertex{
		{a0, b0, eval(a0, b0)},
		{a0 + stepA, b0, eval(a0+stepA, b0)},
		{a0, b0 + stepB, eval(a0, b0+stepB)},
	}
	order := func() {
		if simplex[1].val < simplex[0].val {
			simplex[0], simplex[1] = simplex[1], simplex[0]
		}
		if simplex[2].val < simplex[1].val {
			simplex[1], simplex[2] = simplex[2], simplex[1]
		}
		if simplex[1].val < simplex[0].val {
			simplex[0], simplex[1] = simplex[1], simplex[0]
		}
	}
	order()
	const (
		maxIter = 400
		tol     = 1e-10
	)
	for iter := 0; iter < maxIter; iter++ {
		best, worst := simplex[0], simplex[2]
		if math.Abs(worst.val-best.val) <= tol*(math.Abs(best.val)+tol) {
			break
		}
		// Centroid of the two best vertices.
		ca := (simplex[0].a + simplex[1].a) / 2
		cb := (simplex[0].b + simplex[1].b) / 2
		// Reflection.
		ra, rb := ca+(ca-worst.a), cb+(cb-worst.b)
		rv := eval(ra, rb)
		switch {
		case rv < best.val:
			// Expansion.
			ea, eb := ca+2*(ca-worst.a), cb+2*(cb-worst.b)
			if ev := eval(ea, eb); ev < rv {
				simplex[2] = vertex{ea, eb, ev}
			} else {
				simplex[2] = vertex{ra, rb, rv}
			}
		case rv < simplex[1].val:
			simplex[2] = vertex{ra, rb, rv}
		default:
			// Contraction toward the centroid.
			xa, xb := ca+(worst.a-ca)/2, cb+(worst.b-cb)/2
			if xv := eval(xa, xb); xv < worst.val {
				simplex[2] = vertex{xa, xb, xv}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i < 3; i++ {
					simplex[i].a = best.a + (simplex[i].a-best.a)/2
					simplex[i].b = best.b + (simplex[i].b-best.b)/2
					simplex[i].val = eval(simplex[i].a, simplex[i].b)
				}
			}
		}
		order()
	}
	return simplex[0].a, simplex[0].b
}
