package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Ranker is a discrete probability law over ranks 1..Ranks(), used for
// query popularity: SampleRank draws a rank, PMF reports the probability
// of one.
type Ranker interface {
	// SampleRank draws a rank in [1, Ranks()].
	SampleRank(rng *rand.Rand) int
	// PMF returns P(rank = r), 0 outside [1, Ranks()].
	PMF(r int) float64
	// Ranks returns the number of ranks.
	Ranks() int
}

// tableRanker samples any finite rank law by inverse transform over a
// precomputed cumulative table: one uniform per draw (deterministic
// streams), O(log n) per sample.
type tableRanker struct {
	pmf  []float64 // pmf[r-1] = P(rank r)
	cum  []float64 // cum[r-1] = P(rank <= r); cum[n-1] == 1
	name string
}

func newTableRanker(weights []float64, name string) tableRanker {
	var total float64
	for _, w := range weights {
		total += w
	}
	pmf := make([]float64, len(weights))
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		pmf[i] = w / total
		acc += pmf[i]
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return tableRanker{pmf: pmf, cum: cum, name: name}
}

func (t tableRanker) SampleRank(rng *rand.Rand) int {
	u := rng.Float64()
	return 1 + sort.SearchFloat64s(t.cum, u)
}

func (t tableRanker) PMF(r int) float64 {
	if r < 1 || r > len(t.pmf) {
		return 0
	}
	return t.pmf[r-1]
}

func (t tableRanker) Ranks() int { return len(t.pmf) }

func (t tableRanker) String() string { return t.name }

// NewZipf returns the generalized Zipf law over n ranks: P(r) ∝ r^−α.
// The paper's filtered query popularity has α well below 1 (0.223–0.453),
// so α is not restricted to the α > 1 regime of rejection samplers.
func NewZipf(alpha float64, n int) Ranker {
	if n < 1 {
		panic("dist: NewZipf needs at least one rank")
	}
	w := make([]float64, n)
	for r := 1; r <= n; r++ {
		w[r-1] = math.Exp(-alpha * math.Log(float64(r)))
	}
	return newTableRanker(w, fmt.Sprintf("Zipf(α=%.3f, n=%d)", alpha, n))
}

// NewTwoSegmentZipf returns the Figure 11(c) intersection law: P(r) ∝
// r^−α up to rank split, then continues continuously with the steeper
// exponent tailAlpha — P(r) ∝ split^−α · (r/split)^−tailAlpha beyond.
func NewTwoSegmentZipf(alpha, tailAlpha float64, split, n int) Ranker {
	if n < 1 {
		panic("dist: NewTwoSegmentZipf needs at least one rank")
	}
	if split > n {
		split = n
	}
	if split < 1 {
		split = 1
	}
	w := make([]float64, n)
	for r := 1; r <= split; r++ {
		w[r-1] = math.Exp(-alpha * math.Log(float64(r)))
	}
	knee := math.Exp(-alpha * math.Log(float64(split)))
	for r := split + 1; r <= n; r++ {
		w[r-1] = knee * math.Exp(-tailAlpha*math.Log(float64(r)/float64(split)))
	}
	return newTableRanker(w, fmt.Sprintf("TwoSegmentZipf(α=%.3f/%.2f, split=%d, n=%d)",
		alpha, tailAlpha, split, n))
}
