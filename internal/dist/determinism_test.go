package dist

import (
	"math/rand/v2"
	"testing"
)

// Every Dist and Ranker must produce an identical sample stream from an
// identically seeded generator, and consume a fixed number of variates
// per draw so interleaved consumers stay aligned. Future
// parallelization work (per-shard generators) relies on this.

func allDists() map[string]Dist {
	body := Lognormal{Sigma: 2.502, Mu: 2.108}
	return map[string]Dist{
		"lognormal": Lognormal{Sigma: 1.5, Mu: 2},
		"weibull":   Weibull{Alpha: 1.477, Lambda: 0.005252},
		"pareto":    Pareto{Alpha: 0.9041, Beta: 103},
		"bodytail-lognormal": BodyTail(body, 64, 120, 0.75,
			Lognormal{Sigma: 2.749, Mu: 6.397}),
		"bodytail-weibull": BodyTail(Weibull{Alpha: 1.261, Lambda: 0.01081},
			0, 45, 0.77, Lognormal{Sigma: 2.045, Mu: 6.303}),
		"bodytail-pareto": BodyTail(Lognormal{Sigma: 1.625, Mu: 3.353},
			0, 103, 0.705, Pareto{Alpha: 0.9041, Beta: 103}),
	}
}

func allRankers() map[string]Ranker {
	return map[string]Ranker{
		"zipf":            NewZipf(0.386, 1990),
		"two-segment":     NewTwoSegmentZipf(0.453, 4.67, 45, 56),
		"zipf-single":     NewZipf(0.4, 1),
		"two-segment-big": NewTwoSegmentZipf(0.3, 4.0, 45, 2000),
	}
}

func TestDistSeededDeterminism(t *testing.T) {
	for name, d := range allDists() {
		a := rand.New(rand.NewPCG(42, 7))
		b := rand.New(rand.NewPCG(42, 7))
		other := rand.New(rand.NewPCG(43, 7))
		differs := false
		for i := 0; i < 1000; i++ {
			x, y := d.Sample(a), d.Sample(b)
			if x != y {
				t.Fatalf("%s: sample %d differs under identical seeds: %v vs %v", name, i, x, y)
			}
			if x != d.Sample(other) {
				differs = true
			}
		}
		if !differs {
			t.Errorf("%s: different seeds produced an identical stream", name)
		}
	}
}

func TestRankerSeededDeterminism(t *testing.T) {
	for name, z := range allRankers() {
		a := rand.New(rand.NewPCG(42, 7))
		b := rand.New(rand.NewPCG(42, 7))
		for i := 0; i < 1000; i++ {
			x, y := z.SampleRank(a), z.SampleRank(b)
			if x != y {
				t.Fatalf("%s: rank %d differs under identical seeds: %d vs %d", name, i, x, y)
			}
		}
	}
}

func TestFixedVariateConsumption(t *testing.T) {
	// Weibull, Pareto, and every BodyTail composite promise a fixed
	// number of uniforms per draw (one, or two for BodyTail), so
	// consumers sharing a generator stay aligned no matter which values
	// are drawn. Verified by stepping a twin generator by the promised
	// count and checking both end in the same state. Plain Lognormal is
	// exempt: NormFloat64's ziggurat consumption varies (documented).
	perDraw := map[string]int{
		"weibull":            1,
		"pareto":             1,
		"bodytail-lognormal": 2,
		"bodytail-weibull":   2,
		"bodytail-pareto":    2,
	}
	for name, d := range allDists() {
		k, ok := perDraw[name]
		if !ok {
			continue
		}
		a := rand.New(rand.NewPCG(9, 9))
		b := rand.New(rand.NewPCG(9, 9))
		const draws = 500
		for i := 0; i < draws; i++ {
			d.Sample(a)
		}
		for i := 0; i < draws*k; i++ {
			b.Float64()
		}
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Errorf("%s: consumed a different number of variates than %d per draw (next uniforms %v vs %v)",
				name, k, x, y)
		}
	}
}
