package dist

import (
	"math"
	"sort"
)

// KS returns the one-sample Kolmogorov–Smirnov statistic: the supremum
// distance between the sample's empirical CDF and the model's CDF. It is
// what the fit tables report as goodness of fit. Degenerate input (empty
// sample, NaN values) yields NaN, never a panic.
func KS(xs []float64, d Dist) float64 {
	if len(xs) == 0 || d == nil {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		if math.IsNaN(f) || math.IsNaN(x) {
			return math.NaN()
		}
		if diff := math.Abs(f - float64(i)/n); diff > maxD {
			maxD = diff
		}
		if diff := math.Abs(f - float64(i+1)/n); diff > maxD {
			maxD = diff
		}
	}
	return maxD
}

// KSPValue returns the two-sided asymptotic p-value of a one-sample
// Kolmogorov–Smirnov distance d at sample size n: the probability that a
// sample truly drawn from the model shows a distance at least this large.
// It evaluates the Kolmogorov limiting distribution
//
//	Q(t) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²t²)
//
// at Stephens' finite-n effective statistic t = d·(√n + 0.12 + 0.11/√n),
// accurate to a few 10⁻³ for n ≥ 5. Degenerate input yields NaN.
//
// Caveat for the fit tables: the appendix models are fitted on the same
// sample the distance is then measured on, which biases d low (the
// Lilliefors effect) and therefore biases this p-value high — a rejection
// is trustworthy, an acceptance is only a necessary condition.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || math.IsNaN(d) || d < 0 {
		return math.NaN()
	}
	if d == 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	sn := math.Sqrt(float64(n))
	t := d * (sn + 0.12 + 0.11/sn)
	var p float64
	if t < 1.18 {
		// The alternating series converges badly for small t; use the
		// theta-dual representation of the Kolmogorov CDF there
		// (Marsaglia, Tsang & Wang 2003).
		sum := 0.0
		for k := 1; k <= 20; k++ {
			m := float64(2*k - 1)
			term := math.Exp(-m * m * math.Pi * math.Pi / (8 * t * t))
			sum += term
			if term < 1e-16 {
				break
			}
		}
		p = 1 - math.Sqrt(2*math.Pi)/t*sum
	} else {
		sum := 0.0
		sign := 1.0
		for k := 1; k <= 100; k++ {
			term := math.Exp(-2 * float64(k) * float64(k) * t * t)
			sum += sign * term
			sign = -sign
			if term < 1e-12 {
				break
			}
		}
		p = 2 * sum
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// KSReject reports whether the fit should be rejected at significance
// level alpha: the observed distance d at sample size n is too large to be
// sampling noise. Degenerate input never rejects.
func KSReject(d float64, n int, alpha float64) bool {
	p := KSPValue(d, n)
	return !math.IsNaN(p) && p < alpha
}

// KS2 returns the two-sample Kolmogorov–Smirnov statistic between two
// empirical samples: the supremum distance between their empirical CDFs.
// Degenerate input (either sample empty, NaN values) yields NaN.
func KS2(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	for _, v := range xs {
		if math.IsNaN(v) {
			return math.NaN()
		}
	}
	for _, v := range ys {
		if math.IsNaN(v) {
			return math.NaN()
		}
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	b := make([]float64, len(ys))
	copy(b, ys)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	i, j := 0, 0
	maxD := 0.0
	for i < len(a) && j < len(b) {
		// On a cross-sample tie both ECDFs step together: consume every
		// duplicate of the value from both sides before measuring the gap.
		switch v := math.Min(a[i], b[j]); {
		case a[i] == v && b[j] == v:
			for i < len(a) && a[i] == v {
				i++
			}
			for j < len(b) && b[j] == v {
				j++
			}
		case a[i] == v:
			i++
		default:
			j++
		}
		if d := math.Abs(float64(i)/na - float64(j)/nb); d > maxD {
			maxD = d
		}
	}
	return maxD
}
