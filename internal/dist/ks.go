package dist

import (
	"math"
	"sort"
)

// KS returns the one-sample Kolmogorov–Smirnov statistic: the supremum
// distance between the sample's empirical CDF and the model's CDF. It is
// what the fit tables report as goodness of fit. Degenerate input (empty
// sample, NaN values) yields NaN, never a panic.
func KS(xs []float64, d Dist) float64 {
	if len(xs) == 0 || d == nil {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		if math.IsNaN(f) || math.IsNaN(x) {
			return math.NaN()
		}
		if diff := math.Abs(f - float64(i)/n); diff > maxD {
			maxD = diff
		}
		if diff := math.Abs(f - float64(i+1)/n); diff > maxD {
			maxD = diff
		}
	}
	return maxD
}

// KS2 returns the two-sample Kolmogorov–Smirnov statistic between two
// empirical samples: the supremum distance between their empirical CDFs.
// Degenerate input (either sample empty, NaN values) yields NaN.
func KS2(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	for _, v := range xs {
		if math.IsNaN(v) {
			return math.NaN()
		}
	}
	for _, v := range ys {
		if math.IsNaN(v) {
			return math.NaN()
		}
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	b := make([]float64, len(ys))
	copy(b, ys)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	i, j := 0, 0
	maxD := 0.0
	for i < len(a) && j < len(b) {
		// On a cross-sample tie both ECDFs step together: consume every
		// duplicate of the value from both sides before measuring the gap.
		switch v := math.Min(a[i], b[j]); {
		case a[i] == v && b[j] == v:
			for i < len(a) && a[i] == v {
				i++
			}
			for j < len(b) && b[j] == v {
				j++
			}
		case a[i] == v:
			i++
		default:
			j++
		}
		if d := math.Abs(float64(i)/na - float64(j)/nb); d > maxD {
			maxD = d
		}
	}
	return maxD
}
