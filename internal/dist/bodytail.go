package dist

import (
	"fmt"
	"math/rand/v2"
)

// bodyTail is the two-component composite every appendix model uses: with
// probability frac the variate comes from body conditioned on [lo, hi],
// otherwise from tail conditioned on (hi, ∞). Its CDF is therefore 0 at
// lo and exactly frac at hi.
type bodyTail struct {
	body, tail Dist
	lo, hi     float64
	frac       float64
	// Cached conditioning constants.
	bLo, bHi float64 // body.CDF(lo), body.CDF(hi)
	tHi      float64 // tail.CDF(hi)
}

// BodyTail builds the composite distribution of the paper's appendix
// tables: body truncated to [lo, hi] carrying probability mass frac, and
// tail truncated to (hi, ∞) carrying 1−frac. A Pareto tail with β = hi
// is already supported on (hi, ∞), so its conditioning is the identity.
func BodyTail(body Dist, lo, hi, frac float64, tail Dist) Dist {
	return bodyTail{
		body: body, tail: tail,
		lo: lo, hi: hi, frac: frac,
		bLo: body.CDF(lo), bHi: body.CDF(hi), tHi: tail.CDF(hi),
	}
}

// Sample draws the branch and then one inverse-transform variate, always
// consuming exactly two uniforms so seeded streams stay aligned.
func (d bodyTail) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	v := rng.Float64()
	if u < d.frac {
		return d.body.Quantile(d.bLo + v*(d.bHi-d.bLo))
	}
	return d.tail.Quantile(d.tHi + v*(1-d.tHi))
}

// CDF returns the piecewise mixture CDF.
func (d bodyTail) CDF(x float64) float64 {
	switch {
	case x <= d.lo:
		return 0
	case x <= d.hi:
		if d.bHi == d.bLo {
			return d.frac
		}
		return d.frac * (d.body.CDF(x) - d.bLo) / (d.bHi - d.bLo)
	default:
		return d.frac + (1-d.frac)*(d.tail.CDF(x)-d.tHi)/(1-d.tHi)
	}
}

// Quantile inverts the piecewise CDF.
func (d bodyTail) Quantile(p float64) float64 {
	if p <= d.frac {
		if d.frac == 0 {
			return d.hi
		}
		return d.body.Quantile(d.bLo + (p/d.frac)*(d.bHi-d.bLo))
	}
	return d.tail.Quantile(d.tHi + (p-d.frac)/(1-d.frac)*(1-d.tHi))
}

func (d bodyTail) String() string {
	return fmt.Sprintf("body %.0f%% %v on [%g, %g] + tail %v",
		100*d.frac, d.body, d.lo, d.hi, d.tail)
}

// BodyTailFit is the result of fitting a body/tail composite: the two
// component distributions, the body window, and the body's probability
// mass. Tail holds the concrete fitted type (Lognormal or Pareto), so
// callers can type-assert on it.
type BodyTailFit struct {
	Body       Dist
	Tail       Dist
	Lo, Hi     float64
	BodyWeight float64
}

// Mixture assembles the fitted composite into a sampleable distribution.
func (f BodyTailFit) Mixture() Dist {
	return BodyTail(f.Body, f.Lo, f.Hi, f.BodyWeight, f.Tail)
}
