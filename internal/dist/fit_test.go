package dist

import (
	"math"
	"testing"
)

// The recovery tolerances below are documented contracts: each fitter,
// given a deterministic synthetic sample of the stated size from known
// parameters, must land within the stated distance of them.

func TestFitLognormalRecovery(t *testing.T) {
	rng := newRNG(11)
	want := Lognormal{Sigma: 1.5, Mu: 2}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = want.Sample(rng)
	}
	got, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "µ", got.Mu, want.Mu, 0.03)
	absErr(t, "σ", got.Sigma, want.Sigma, 0.03)
	if ks := KS(xs, got); ks > 0.02 {
		t.Errorf("KS of fit = %v", ks)
	}
}

func TestFitLognormalErrors(t *testing.T) {
	cases := map[string][]float64{
		"empty":        nil,
		"single":       {1},
		"non-positive": {1, 0, 2},
		"negative":     {1, -3, 2},
		"inf":          {1, math.Inf(1)},
		"nan":          {1, math.NaN(), 2},
		"constant":     {4, 4, 4, 4},
	}
	for name, xs := range cases {
		if _, err := FitLognormal(xs); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFitLognormalCountsRecovery(t *testing.T) {
	// The Table A.2 situation: a continuous lognormal observed only as
	// round(X) clamped to >= 1. The EU parameters make ~35% of counts
	// collapse to 1; the censored fitter must still see through that.
	rng := newRNG(13)
	want := Lognormal{Sigma: 1.306, Mu: 0.520}
	xs := make([]float64, 30000)
	for i := range xs {
		n := math.Round(want.Sample(rng))
		if n < 1 {
			n = 1
		}
		xs[i] = n
	}
	got, err := FitLognormalCounts(xs)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "µ", got.Mu, want.Mu, 0.08)
	absErr(t, "σ", got.Sigma, want.Sigma, 0.08)

	// The naive continuous fit on the same counts must be visibly worse
	// on µ or σ — otherwise the censored machinery is pointless.
	naive, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	naiveErr := math.Abs(naive.Mu-want.Mu) + math.Abs(naive.Sigma-want.Sigma)
	censErr := math.Abs(got.Mu-want.Mu) + math.Abs(got.Sigma-want.Sigma)
	if censErr >= naiveErr {
		t.Errorf("censored fit (err %v) should beat naive fit (err %v)", censErr, naiveErr)
	}
}

func TestFitLognormalCountsErrors(t *testing.T) {
	if _, err := FitLognormalCounts([]float64{1, 1, 1}); err == nil {
		t.Error("constant counts: expected error")
	}
	if _, err := FitLognormalCounts([]float64{0.2, 3}); err == nil {
		t.Error("sub-unit count: expected error")
	}
	if _, err := FitLognormalCounts(nil); err == nil {
		t.Error("empty: expected error")
	}
}

func TestFitBimodalLognormalRecovery(t *testing.T) {
	// Round trip through the Table A.1 NA peak model.
	body := Lognormal{Sigma: 2.502, Mu: 2.108}
	tail := Lognormal{Sigma: 2.749, Mu: 6.397}
	gen := BodyTail(body, 64, 120, 0.75, tail)
	rng := newRNG(17)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = gen.Sample(rng)
	}
	fit, err := FitBimodalLognormal(xs, 64, 120)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "body weight", fit.BodyWeight, 0.75, 0.01)
	// The tail is identifiable (its window is unbounded): µ/σ within 0.2.
	tl, ok := fit.Tail.(Lognormal)
	if !ok {
		t.Fatalf("tail type %T", fit.Tail)
	}
	absErr(t, "tail µ", tl.Mu, tail.Mu, 0.2)
	absErr(t, "tail σ", tl.Sigma, tail.Sigma, 0.2)
	// The body's (µ, σ) are only weakly identifiable on a window this
	// narrow; the mixture as a whole must still match the sample.
	if ks := KS(xs, fit.Mixture()); ks > 0.02 {
		t.Errorf("mixture KS = %v", ks)
	}
}

func TestFitWeibullLognormalRecovery(t *testing.T) {
	// A Table A.3-shaped model with a mild truncation so the Weibull body
	// parameters are identifiable: F(hi) ≈ 0.9 at the window edge.
	body := Weibull{Alpha: 1.2, Lambda: 0.02}
	tail := Lognormal{Sigma: 2.0, Mu: 6.0}
	gen := BodyTail(body, 0, 100, 0.8, tail)
	rng := newRNG(19)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = gen.Sample(rng)
	}
	fit, err := FitWeibullLognormal(xs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "body weight", fit.BodyWeight, 0.8, 0.01)
	wb, ok := fit.Body.(Weibull)
	if !ok {
		t.Fatalf("body type %T", fit.Body)
	}
	absErr(t, "body α", wb.Alpha, body.Alpha, 0.1)
	if rel := math.Abs(wb.Lambda-body.Lambda) / body.Lambda; rel > 0.15 {
		t.Errorf("body λ = %v, want %v (±15%%)", wb.Lambda, body.Lambda)
	}
	tl := fit.Tail.(Lognormal)
	absErr(t, "tail µ", tl.Mu, tail.Mu, 0.2)
	absErr(t, "tail σ", tl.Sigma, tail.Sigma, 0.2)
	if ks := KS(xs, fit.Mixture()); ks > 0.02 {
		t.Errorf("mixture KS = %v", ks)
	}
}

func TestFitLognormalParetoRecovery(t *testing.T) {
	// Round trip through the Table A.4 NA peak model. The Pareto shape
	// uses the exact Hill MLE, so its tolerance is tight.
	body := Lognormal{Sigma: 1.625, Mu: 3.353}
	tailWant := Pareto{Alpha: 0.9041, Beta: 103}
	gen := BodyTail(body, 0, 103, 0.705, tailWant)
	rng := newRNG(23)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = gen.Sample(rng)
	}
	fit, err := FitLognormalPareto(xs, 0, 103)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "body weight", fit.BodyWeight, 0.705, 0.01)
	pt, ok := fit.Tail.(Pareto)
	if !ok {
		t.Fatalf("tail type %T", fit.Tail)
	}
	absErr(t, "tail α", pt.Alpha, tailWant.Alpha, 0.03)
	if pt.Beta != 103 {
		t.Errorf("tail β = %v, want the split", pt.Beta)
	}
	// Body here is left-anchored at 0, so (µ, σ) are identifiable.
	bl := fit.Body.(Lognormal)
	absErr(t, "body µ", bl.Mu, body.Mu, 0.1)
	absErr(t, "body σ", bl.Sigma, body.Sigma, 0.1)
	if ks := KS(xs, fit.Mixture()); ks > 0.02 {
		t.Errorf("mixture KS = %v", ks)
	}
}

func TestBodyTailFitErrors(t *testing.T) {
	// All mass on one side of the split must error, not panic.
	rng := newRNG(29)
	low := make([]float64, 100)
	for i := range low {
		low[i] = 1 + rng.Float64()*50
	}
	if _, err := FitBimodalLognormal(low, 0, 1000); err == nil {
		t.Error("no tail samples: expected error")
	}
	if _, err := FitLognormalPareto(low, 0, 1000); err == nil {
		t.Error("no tail samples: expected error")
	}
	if _, err := FitWeibullLognormal(low, 0, 1000); err == nil {
		t.Error("no tail samples: expected error")
	}
	if _, err := FitBimodalLognormal([]float64{1, 2}, 0, 1.5); err == nil {
		t.Error("tiny sample: expected error")
	}
	if _, err := FitBimodalLognormal([]float64{1, -2, 3, 2000, 3000, 4000}, 0, 1000); err == nil {
		t.Error("negative sample: expected error")
	}
}

func TestFitZipfExact(t *testing.T) {
	// An exact power law must be recovered to numerical precision.
	freqs := make([]float64, 100)
	for r := 1; r <= 100; r++ {
		freqs[r-1] = 0.2 * math.Pow(float64(r), -0.453)
	}
	fit, err := FitZipf(freqs)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "α", fit.Alpha, 0.453, 1e-9)
	absErr(t, "C", fit.C, math.Log(0.2), 1e-9)
	absErr(t, "R²", fit.R2, 1, 1e-9)
	if fit.N != 100 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitZipfRangeTwoSegment(t *testing.T) {
	// The Figure 11(c) shape: a two-segment ranker's PMF, fitted per
	// segment, returns each segment's exponent exactly.
	z := NewTwoSegmentZipf(0.453, 4.67, 45, 100)
	freqs := make([]float64, 100)
	for r := 1; r <= 100; r++ {
		freqs[r-1] = z.PMF(r)
	}
	bodyFit, err := FitZipfRange(freqs, 1, 45)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "body α", bodyFit.Alpha, 0.453, 1e-9)
	tailFit, err := FitZipfRange(freqs, 46, 100)
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "tail α", tailFit.Alpha, 4.67, 1e-9)
}

func TestFitZipfSampledRecovery(t *testing.T) {
	// Sampled rank frequencies recover α within sampling noise.
	z := NewZipf(0.386, 500)
	rng := newRNG(31)
	counts := make([]float64, 500)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[z.SampleRank(rng)-1]++
	}
	fit, err := FitZipf(counts[:100])
	if err != nil {
		t.Fatal(err)
	}
	absErr(t, "α", fit.Alpha, 0.386, 0.05)
	if fit.R2 < 0.8 {
		t.Errorf("R² = %v", fit.R2)
	}
}

func TestFitZipfErrors(t *testing.T) {
	cases := map[string][]float64{
		"empty":      nil,
		"single":     {3},
		"two":        {3, 2},
		"constant":   {5, 5, 5, 5},
		"nan":        {3, math.NaN(), 1},
		"inf":        {3, math.Inf(1), 1},
		"negative":   {3, -1, 1},
		"all zeros":  {0, 0, 0, 0},
		"one usable": {0, 7, 0, 0},
	}
	for name, freqs := range cases {
		if _, err := FitZipf(freqs); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Zeros interleaved with enough positive points are fine.
	if _, err := FitZipf([]float64{8, 0, 4, 0, 2, 0, 1}); err != nil {
		t.Errorf("interleaved zeros: %v", err)
	}
}

func TestFitZipfRangeClamps(t *testing.T) {
	freqs := []float64{8, 4, 2, 1}
	if _, err := FitZipfRange(freqs, -5, 99); err != nil {
		t.Errorf("clamped range: %v", err)
	}
	if _, err := FitZipfRange(freqs, 3, 4); err == nil {
		t.Error("window with 2 points: expected error")
	}
}
