package dist

import (
	"errors"
	"fmt"
	"math"
)

// ZipfFit is a fitted Zipf law freq(r) ≈ exp(C)·r^−α over a rank window:
// the slope α and intercept C of the least-squares line in log-log
// space, the coefficient of determination R2, and the number of
// positive-frequency points N used.
type ZipfFit struct {
	Alpha float64
	C     float64
	R2    float64
	N     int
}

func (f ZipfFit) String() string {
	return fmt.Sprintf("Zipf α=%.3f (R²=%.2f, n=%d)", f.Alpha, f.R2, f.N)
}

var (
	errNoPoints = errors.New("dist: need at least 3 positive frequencies")
	errConstant = errors.New("dist: frequencies are constant")
)

// FitZipf fits a Zipf exponent to a rank-ordered frequency vector
// (freqs[r-1] is the frequency of rank r) by least squares on the
// log-log rank-frequency curve — exactly how Figure 11 reads α off the
// plots. Zero frequencies are skipped; non-finite or negative values,
// fewer than 3 positive points, or a constant curve are errors.
func FitZipf(freqs []float64) (ZipfFit, error) {
	return FitZipfRange(freqs, 1, len(freqs))
}

// FitZipfRange fits over the 1-based rank window [loRank, hiRank],
// clamped to the vector; Figure 11(c)'s two-segment intersection fit
// uses windows [1, 45] and [46, 100].
func FitZipfRange(freqs []float64, loRank, hiRank int) (ZipfFit, error) {
	if loRank < 1 {
		loRank = 1
	}
	if hiRank > len(freqs) {
		hiRank = len(freqs)
	}
	var lx, ly []float64
	for r := loRank; r <= hiRank; r++ {
		f := freqs[r-1]
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return ZipfFit{}, fmt.Errorf("dist: frequency at rank %d is %v", r, f)
		}
		if f == 0 {
			continue
		}
		lx = append(lx, math.Log(float64(r)))
		ly = append(ly, math.Log(f))
	}
	if len(lx) < 3 {
		return ZipfFit{}, errNoPoints
	}
	n := float64(len(lx))
	var mx, my float64
	for i := range lx {
		mx += lx[i]
		my += ly[i]
	}
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for i := range lx {
		dx, dy := lx[i]-mx, ly[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if syy == 0 {
		return ZipfFit{}, errConstant
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R² of the regression: squared correlation.
	r2 := (sxy * sxy) / (sxx * syy)
	return ZipfFit{Alpha: -slope, C: intercept, R2: r2, N: len(lx)}, nil
}
