package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Lognormal is the two-parameter lognormal distribution: ln X is normal
// with mean Mu and standard deviation Sigma. The field order (Sigma
// before Mu) mirrors the paper's tables, which print σ first.
type Lognormal struct {
	Sigma float64
	Mu    float64
}

// Sample draws exp(Mu + Sigma·Z) using one normal variate. Note that
// NormFloat64's ziggurat consumes a data-dependent number of underlying
// draws, so plain Lognormal sampling offers seed-determinism but not the
// fixed per-draw variate count of Weibull, Pareto, and BodyTail (which
// samples lognormal components by inverse transform instead).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// CDF returns P(X <= x).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return normCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns the p-quantile.
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*normQuantile(p))
}

// Mean returns E[X] = exp(µ + σ²/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Median returns exp(µ).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

func (l Lognormal) String() string {
	return fmt.Sprintf("LN(σ=%.3f, µ=%.3f)", l.Sigma, l.Mu)
}
