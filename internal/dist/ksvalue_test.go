package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestKSPValueKnownPoints(t *testing.T) {
	// The Kolmogorov distribution's classical quantiles: Q(1.358) ≈ 0.05,
	// Q(1.628) ≈ 0.01, Q(1.224) ≈ 0.10. At large n Stephens' correction
	// approaches √n, so d = t/√n should recover the textbook p-values.
	const n = 1_000_000
	sn := math.Sqrt(float64(n))
	cases := []struct{ t, p float64 }{
		{1.224, 0.10},
		{1.358, 0.05},
		{1.628, 0.01},
	}
	for _, c := range cases {
		got := KSPValue(c.t/sn, n)
		if math.Abs(got-c.p) > 0.005 {
			t.Errorf("KSPValue(%v/√n, n) = %v, want ≈%v", c.t, got, c.p)
		}
	}
}

func TestKSPValueMonotoneAndBounded(t *testing.T) {
	last := 1.1
	for d := 0.001; d < 0.9; d += 0.013 {
		p := KSPValue(d, 200)
		if p < 0 || p > 1 {
			t.Fatalf("p out of range: %v at d=%v", p, d)
		}
		if p > last {
			t.Fatalf("p not monotone at d=%v: %v > %v", d, p, last)
		}
		last = p
	}
}

func TestKSPValueDegenerate(t *testing.T) {
	if !math.IsNaN(KSPValue(math.NaN(), 10)) {
		t.Error("NaN distance should give NaN")
	}
	if !math.IsNaN(KSPValue(0.1, 0)) {
		t.Error("n=0 should give NaN")
	}
	if !math.IsNaN(KSPValue(-0.1, 10)) {
		t.Error("negative distance should give NaN")
	}
	if KSPValue(0, 10) != 1 {
		t.Error("zero distance should give p=1")
	}
	if KSPValue(1, 10) != 0 {
		t.Error("distance 1 should give p=0")
	}
	if KSReject(math.NaN(), 10, 0.05) {
		t.Error("degenerate input must never reject")
	}
}

func TestKSRejectSeparatesGoodAndBadFits(t *testing.T) {
	// A sample from the model itself must not be rejected; the same sample
	// tested against a far-off model must be.
	rng := rand.New(rand.NewPCG(11, 12))
	truth := Lognormal{Mu: 1.0, Sigma: 0.8}
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	if d := KS(xs, truth); KSReject(d, len(xs), 0.05) {
		t.Errorf("true model rejected: d=%v p=%v", d, KSPValue(d, len(xs)))
	}
	wrong := Lognormal{Mu: 2.0, Sigma: 0.8}
	if d := KS(xs, wrong); !KSReject(d, len(xs), 0.05) {
		t.Errorf("shifted model not rejected: d=%v p=%v", d, KSPValue(d, len(xs)))
	}
}

func TestKSRejectFalsePositiveRate(t *testing.T) {
	// Repeated true-model samples should be rejected at roughly the
	// nominal rate: with α = 0.05 and 200 trials, well under 10%.
	rng := rand.New(rand.NewPCG(21, 22))
	truth := Weibull{Alpha: 1.3, Lambda: 0.02}
	rejects := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		if KSReject(KS(xs, truth), len(xs), 0.05) {
			rejects++
		}
	}
	if rejects > trials/10 {
		t.Errorf("false positive rate %d/%d exceeds 10%%", rejects, trials)
	}
}
