package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func lognormalSample(seed uint64, n int, sigma, mu float64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	m := Lognormal{Sigma: sigma, Mu: mu}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = m.Sample(rng)
	}
	return xs
}

func lognormalBootSpec(n int, seed uint64, m Lognormal) BootstrapSpec {
	return BootstrapSpec{
		N:    n,
		B:    99,
		Seed: seed,
		Sample: func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = m.Sample(rng)
			}
			return xs
		},
		Distance: func(xs []float64) float64 {
			m2, err := FitLognormal(xs)
			if err != nil {
				return math.NaN()
			}
			return KS(xs, m2)
		},
	}
}

// TestBootstrapAcceptsTrueModel: data truly drawn from a lognormal,
// refitted, must get a comfortable bootstrap p-value — the acceptance that
// the Lilliefors-biased asymptotic p also gives, now trustworthy.
func TestBootstrapAcceptsTrueModel(t *testing.T) {
	xs := lognormalSample(42, 400, 1.2, 2.0)
	m, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	obs := KS(xs, m)
	p := KSPValueBootstrap(obs, lognormalBootSpec(len(xs), 7, m))
	if math.IsNaN(p) || p < 0.05 {
		t.Fatalf("bootstrap rejected the true model: p=%v", p)
	}
}

// TestBootstrapRejectsWrongModel: data far from lognormal (a uniform
// lattice) must get a tiny bootstrap p-value.
func TestBootstrapRejectsWrongModel(t *testing.T) {
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		// Uniform on [1, 2]: no lognormal fits this shape well.
		xs[i] = 1 + float64(i)/float64(n)
	}
	m, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	obs := KS(xs, m)
	p := KSPValueBootstrap(obs, lognormalBootSpec(n, 7, m))
	if !(p < 0.05) {
		t.Fatalf("bootstrap accepted a wrong model: p=%v", p)
	}
}

// TestBootstrapLessOptimisticThanAsymptotic quantifies the Lilliefors
// effect the bootstrap exists to fix: for true-model data the asymptotic
// p-value (which ignores that the model was fitted on the sample) is
// biased high; the bootstrap p must on average sit below it.
func TestBootstrapLessOptimisticThanAsymptotic(t *testing.T) {
	lowerCount, runs := 0, 20
	for r := 0; r < runs; r++ {
		xs := lognormalSample(uint64(100+r), 200, 0.9, 1.0)
		m, err := FitLognormal(xs)
		if err != nil {
			t.Fatal(err)
		}
		obs := KS(xs, m)
		asym := KSPValue(obs, len(xs))
		boot := KSPValueBootstrap(obs, lognormalBootSpec(len(xs), uint64(r), m))
		if boot < asym {
			lowerCount++
		}
	}
	if lowerCount < runs*3/4 {
		t.Fatalf("bootstrap p below asymptotic p in only %d/%d runs; expected the Lilliefors correction to dominate", lowerCount, runs)
	}
}

// TestBootstrapDeterministic: same spec, same p — the property the
// byte-identical report depends on.
func TestBootstrapDeterministic(t *testing.T) {
	xs := lognormalSample(9, 150, 1.0, 0.5)
	m, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	obs := KS(xs, m)
	a := KSPValueBootstrap(obs, lognormalBootSpec(len(xs), 3, m))
	b := KSPValueBootstrap(obs, lognormalBootSpec(len(xs), 3, m))
	if a != b {
		t.Fatalf("same seed produced %v and %v", a, b)
	}
	c := KSPValueBootstrap(obs, lognormalBootSpec(len(xs), 4, m))
	if a == c {
		t.Log("different seeds produced equal p-values (possible on the 1/100 grid, not an error)")
	}
}

// TestBootstrapTopsUpFailedRefits: B counts valid replicates — a refit
// that fails intermittently must be replaced by a fresh draw so the
// p-value keeps its 1/(B+1) resolution, while a refit that always fails
// (beyond the 2×B attempt budget) abandons the estimate as NaN instead of
// quietly coarsening the grid.
func TestBootstrapTopsUpFailedRefits(t *testing.T) {
	m := Lognormal{Sigma: 1, Mu: 0}
	calls := 0
	spec := lognormalBootSpec(100, 1, m)
	inner := spec.Distance
	spec.Distance = func(xs []float64) float64 {
		calls++
		if calls%2 == 0 { // every other refit "fails"
			return math.NaN()
		}
		return inner(xs)
	}
	// A huge observed distance: with the full B=99 valid replicates the
	// p-value must sit on the fine grid at its minimum, 1/(B+1) — failed
	// refits must not have coarsened it.
	p := KSPValueBootstrap(0.99, spec)
	if want := 1.0 / float64(spec.B+1); math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v with intermittent refit failures, want the full-resolution minimum %v", p, want)
	}
	if calls < 2*spec.B-2 {
		t.Errorf("only %d attempts recorded; top-up did not draw replacements", calls)
	}
}

// TestBootstrapDegenerate: bad inputs yield NaN, never panic, and the
// estimator never returns exactly zero.
func TestBootstrapDegenerate(t *testing.T) {
	m := Lognormal{Sigma: 1, Mu: 0}
	spec := lognormalBootSpec(100, 1, m)
	if !math.IsNaN(KSPValueBootstrap(math.NaN(), spec)) {
		t.Error("NaN observed distance must yield NaN")
	}
	bad := spec
	bad.B = 0
	if !math.IsNaN(KSPValueBootstrap(0.1, bad)) {
		t.Error("B=0 must yield NaN")
	}
	bad = spec
	bad.Sample = nil
	if !math.IsNaN(KSPValueBootstrap(0.1, bad)) {
		t.Error("nil Sample must yield NaN")
	}
	allFail := spec
	allFail.Distance = func([]float64) float64 { return math.NaN() }
	if !math.IsNaN(KSPValueBootstrap(0.1, allFail)) {
		t.Error("all-failed refits must yield NaN")
	}
	// An absurdly large observed distance: p bottoms out at 1/(1+B), not 0.
	if p := KSPValueBootstrap(0.99, spec); !(p > 0) || p > 1.0/50 {
		t.Errorf("huge distance: p=%v, want (0, 1/50]", p)
	}
}
