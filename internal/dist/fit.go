package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Fitting errors shared by the fitters.
var (
	errTooFew       = errors.New("dist: too few samples")
	errNonPositive  = errors.New("dist: samples must be positive and finite")
	errZeroVariance = errors.New("dist: samples have zero variance")
)

// checkSample validates a fitting sample: at least min values, all
// strictly positive and finite.
func checkSample(xs []float64, min int) error {
	if len(xs) < min {
		return fmt.Errorf("%w: %d < %d", errTooFew, len(xs), min)
	}
	for _, x := range xs {
		if !(x > 0) || math.IsInf(x, 0) {
			return errNonPositive
		}
	}
	return nil
}

// logMoments returns the mean and (MLE, population) standard deviation
// of the logs of xs.
func logMoments(xs []float64) (mu, sigma float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mu += math.Log(x)
	}
	mu /= n
	for _, x := range xs {
		d := math.Log(x) - mu
		sigma += d * d
	}
	return mu, math.Sqrt(sigma / n)
}

// FitLognormal fits a lognormal by maximum likelihood: µ and σ are the
// mean and standard deviation of the log-sample.
func FitLognormal(xs []float64) (Lognormal, error) {
	if err := checkSample(xs, 2); err != nil {
		return Lognormal{}, err
	}
	mu, sigma := logMoments(xs)
	if sigma == 0 {
		return Lognormal{}, errZeroVariance
	}
	return Lognormal{Sigma: sigma, Mu: mu}, nil
}

// FitLognormalCounts fits a continuous lognormal to rounded-and-floored
// integer counts (the Table A.2 variate: queries per session, generated
// as round(X) clamped to >= 1). Each count k >= 2 is treated as the
// censoring interval (k−0.5, k+0.5] and k = 1 as (0, 1.5], and the
// continuous (µ, σ) are recovered by maximizing the interval-censored
// likelihood — a plain log-moment fit would be biased by the
// discretization, most severely for the Asian table whose counts are
// mostly 1.
func FitLognormalCounts(xs []float64) (Lognormal, error) {
	if err := checkSample(xs, 2); err != nil {
		return Lognormal{}, err
	}
	hist := make(map[int]int)
	for _, x := range xs {
		k := int(math.Round(x))
		if k < 1 {
			return Lognormal{}, fmt.Errorf("dist: count %v is not a positive integer", x)
		}
		hist[k]++
	}
	if len(hist) < 2 {
		return Lognormal{}, errZeroVariance
	}
	// Flatten to sorted (count, multiplicity) cells: map iteration order
	// would vary the floating-point summation order run-to-run, which can
	// flip simplex comparisons and make the fit non-reproducible.
	type cell struct{ k, n int }
	cells := make([]cell, 0, len(hist))
	for k, n := range hist {
		cells = append(cells, cell{k, n})
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].k < cells[b].k })
	mu0, s0 := logMoments(xs)
	if s0 < 0.05 {
		s0 = 0.05
	}
	negLL := func(mu, t float64) float64 {
		if math.Abs(mu) > 60 || math.Abs(t) > 8 {
			return math.MaxFloat64
		}
		s := math.Exp(t)
		ll := 0.0
		for _, c := range cells {
			zHi := (math.Log(float64(c.k)+0.5) - mu) / s
			zLo := math.Inf(-1)
			if c.k > 1 {
				zLo = (math.Log(float64(c.k)-0.5) - mu) / s
			}
			p := normCDFDiff(zLo, zHi)
			if p < 1e-300 {
				return math.MaxFloat64
			}
			ll += float64(c.n) * math.Log(p)
		}
		return -ll
	}
	mu, t := minimize2(negLL, mu0, math.Log(s0), 0.2, 0.2)
	return Lognormal{Sigma: math.Exp(t), Mu: mu}, nil
}

// fitTruncatedLognormal fits a lognormal to samples known to be the
// lo/hi-conditioned part of the distribution, by maximizing the
// truncated likelihood. lo <= 0 means no left truncation; hi = +Inf
// means no right truncation.
func fitTruncatedLognormal(xs []float64, lo, hi float64) (Lognormal, error) {
	if err := checkSample(xs, 3); err != nil {
		return Lognormal{}, err
	}
	// The sample enters the likelihood only through n, Σ ln x, Σ (ln x)²,
	// so precompute the sufficient statistics and keep each of the few
	// hundred simplex evaluations O(1).
	var s1, s2 float64
	for _, x := range xs {
		lx := math.Log(x)
		s1 += lx
		s2 += lx * lx
	}
	mu0, s0 := logMoments(xs)
	if s0 == 0 {
		return Lognormal{}, errZeroVariance
	}
	n := float64(len(xs))
	t0 := math.Log(s0)
	negLL := func(mu, t float64) float64 {
		if math.Abs(mu) > 60 || math.Abs(t) > 8 {
			return math.MaxFloat64
		}
		s := math.Exp(t)
		za, zb := math.Inf(-1), math.Inf(1)
		if lo > 0 {
			za = (math.Log(lo) - mu) / s
		}
		if !math.IsInf(hi, 1) {
			zb = (math.Log(hi) - mu) / s
		}
		norm := normCDFDiff(za, zb)
		if norm < 1e-300 {
			return math.MaxFloat64
		}
		ll := -n * (math.Log(s) + math.Log(norm))
		// Σ((ln x − µ)/s)² expanded over the sufficient statistics.
		ll -= (s2 - 2*mu*s1 + n*mu*mu) / (2 * s * s)
		// A doubly-truncated window can leave (µ, σ) unidentifiable: whole
		// ridges of parameters give the same conditional law. The faint
		// pull toward the log-moment start is invisible wherever the
		// likelihood has gradient, but keeps ridge solutions at humane
		// values instead of the clamp boundary.
		ll -= 1e-3 * ((mu-mu0)*(mu-mu0) + (t-t0)*(t-t0))
		return -ll
	}
	mu, t := minimize2(negLL, mu0, math.Log(s0), 0.3, 0.3)
	return Lognormal{Sigma: math.Exp(t), Mu: mu}, nil
}

// fitTruncatedWeibull fits a Weibull (shape/rate) to samples known to be
// the lo/hi-conditioned part of the distribution.
func fitTruncatedWeibull(xs []float64, lo, hi float64) (Weibull, error) {
	if err := checkSample(xs, 3); err != nil {
		return Weibull{}, err
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	n := float64(len(xs))
	l0 := math.Log(1 / mean)
	negLL := func(la, ll2 float64) float64 {
		if math.Abs(la) > 4 || math.Abs(ll2) > 30 {
			return math.MaxFloat64
		}
		alpha, lambda := math.Exp(la), math.Exp(ll2)
		w := Weibull{Alpha: alpha, Lambda: lambda}
		norm := w.CDF(hi) - w.CDF(lo)
		if norm < 1e-300 {
			return math.MaxFloat64
		}
		ll := -n * math.Log(norm)
		for _, x := range xs {
			ll += math.Log(alpha) + alpha*math.Log(lambda) + (alpha-1)*math.Log(x) -
				math.Pow(lambda*x, alpha)
		}
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			return math.MaxFloat64
		}
		// Same ridge guard as the truncated lognormal fit.
		ll -= 1e-3 * (la*la + (ll2-l0)*(ll2-l0))
		return -ll
	}
	la, ll2 := minimize2(negLL, 0, l0, 0.3, 0.3)
	return Weibull{Alpha: math.Exp(la), Lambda: math.Exp(ll2)}, nil
}

// minComponent is the smallest body or tail sub-sample a composite fit
// will accept.
const minComponent = 3

// splitComposite validates a composite-fit sample and partitions it at
// the body/tail boundary, returning the empirical body weight.
func splitComposite(xs []float64, hi float64) (body, tail []float64, weight float64, err error) {
	if err := checkSample(xs, 2*minComponent); err != nil {
		return nil, nil, 0, err
	}
	for _, x := range xs {
		if x <= hi {
			body = append(body, x)
		} else {
			tail = append(tail, x)
		}
	}
	if len(body) < minComponent || len(tail) < minComponent {
		return nil, nil, 0, fmt.Errorf("%w: body %d / tail %d below %d",
			errTooFew, len(body), len(tail), minComponent)
	}
	return body, tail, float64(len(body)) / float64(len(xs)), nil
}

// FitBimodalLognormal fits the Table A.1 model — lognormal body on
// [lo, hi], lognormal tail beyond hi — to a duration sample. The body
// weight is the empirical body mass; each component is a truncated
// maximum-likelihood lognormal. Note that the narrow body window makes
// the body's (µ, σ) only weakly identifiable (many parameter pairs give
// nearly the same conditional law); the mixture, body weight, and tail
// parameters are the meaningful outputs.
func FitBimodalLognormal(xs []float64, lo, hi float64) (BodyTailFit, error) {
	body, tail, weight, err := splitComposite(xs, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	bLo := lo
	for _, x := range body {
		if x < bLo {
			bLo = 0 // samples below the nominal window: drop left truncation
			break
		}
	}
	bodyFit, err := fitTruncatedLognormal(body, bLo, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	tailFit, err := fitTruncatedLognormal(tail, hi, math.Inf(1))
	if err != nil {
		return BodyTailFit{}, err
	}
	// Lo is the bound the body was actually fitted under, so Mixture()
	// conditions the body exactly as the likelihood did.
	return BodyTailFit{
		Body: bodyFit, Tail: tailFit,
		Lo: bLo, Hi: hi,
		BodyWeight: weight,
	}, nil
}

// FitWeibullLognormal fits the Table A.3 model — Weibull body on
// [lo, hi], lognormal tail beyond hi.
func FitWeibullLognormal(xs []float64, lo, hi float64) (BodyTailFit, error) {
	body, tail, weight, err := splitComposite(xs, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	for _, x := range body {
		if x < lo {
			lo = 0 // samples below the nominal window: drop left truncation
			break
		}
	}
	bodyFit, err := fitTruncatedWeibull(body, lo, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	tailFit, err := fitTruncatedLognormal(tail, hi, math.Inf(1))
	if err != nil {
		return BodyTailFit{}, err
	}
	return BodyTailFit{
		Body: bodyFit, Tail: tailFit,
		Lo: lo, Hi: hi,
		BodyWeight: weight,
	}, nil
}

// FitLognormalPareto fits the Table A.4 model — lognormal body on
// [lo, hi], Pareto tail with β = hi. The Pareto shape is the exact
// maximum-likelihood (Hill) estimator α = m / Σ ln(xᵢ/β) over the tail.
func FitLognormalPareto(xs []float64, lo, hi float64) (BodyTailFit, error) {
	body, tail, weight, err := splitComposite(xs, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	for _, x := range body {
		if x < lo {
			lo = 0 // samples below the nominal window: drop left truncation
			break
		}
	}
	bodyFit, err := fitTruncatedLognormal(body, lo, hi)
	if err != nil {
		return BodyTailFit{}, err
	}
	var sumLog float64
	for _, x := range tail {
		sumLog += math.Log(x / hi)
	}
	if sumLog <= 0 {
		return BodyTailFit{}, errZeroVariance
	}
	alpha := float64(len(tail)) / sumLog
	return BodyTailFit{
		Body: bodyFit, Tail: Pareto{Alpha: alpha, Beta: hi},
		Lo: lo, Hi: hi,
		BodyWeight: weight,
	}, nil
}
