package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Pareto is the classical (type I) Pareto distribution with shape Alpha
// and scale (minimum) Beta: CDF(x) = 1 − (β/x)^α for x >= β. Table A.4
// uses it for the heavy interarrival tail with β fixed at the body/tail
// split.
type Pareto struct {
	Alpha float64
	Beta  float64
}

// Sample draws by inverse transform from one uniform variate.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// CDF returns P(X <= x).
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Beta {
		return 0
	}
	return -math.Expm1(p.Alpha * math.Log(p.Beta/x))
}

// Quantile returns β·(1−p)^{−1/α}.
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Beta
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Beta * math.Exp(-math.Log1p(-q)/p.Alpha)
}

// Mean returns αβ/(α−1) for α > 1 and +Inf otherwise (the paper's peak
// interarrival tail has α < 1: infinite mean is the point).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Beta / (p.Alpha - 1)
}

// Median returns β·2^{1/α}.
func (p Pareto) Median() float64 {
	return p.Beta * math.Exp(math.Ln2/p.Alpha)
}

func (p Pareto) String() string {
	return fmt.Sprintf("Pareto(α=%.3f, β=%.0f)", p.Alpha, p.Beta)
}
