package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// benchSample draws a lognormal(µ=4, σ=1.5) sample — the shape of the
// paper's duration and interarrival data — deterministic per size so
// every run fits the same bytes.
func benchSample(n int) []float64 {
	rng := rand.New(rand.NewPCG(2004, uint64(n)))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(4 + 1.5*rng.NormFloat64())
	}
	return xs
}

// The fitter benchmarks size the Nelder–Mead cost at the sample volumes
// the full-scale run actually feeds the appendix fits (the per-(region,
// period) slices of 4.36 M sessions reach the 10^5–10^6 range). Each
// simplex evaluation is a full pass over the sample, so ns/op scales
// linearly in n at a fixed iteration budget — the profile result recorded
// in ROADMAP.md: the budget, not the data pass, is the lever.

// BenchmarkFitLognormal is the closed-form (moment) fit — the baseline
// the iterative fitters are compared against.
func BenchmarkFitLognormal(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FitLognormal(xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitBimodalLognormal exercises the Table A.1 composite: two
// truncated-MLE Nelder–Mead optimizations per call.
func BenchmarkFitBimodalLognormal(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FitBimodalLognormal(xs, 64, 600); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitLognormalPareto exercises the Table A.4 composite: one
// Nelder–Mead body plus the closed-form Hill tail.
func BenchmarkFitLognormalPareto(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FitLognormalPareto(xs, 1, 300); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKSDistance isolates the verdict cost that follows every fit
// (sort + two-sided sup walk).
func BenchmarkKSDistance(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			d := Lognormal{Mu: 4, Sigma: 1.5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := KS(xs, d); v <= 0 || v >= 1 {
					b.Fatalf("implausible KS distance %v", v)
				}
			}
		})
	}
}
