package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Weibull is the Weibull distribution in the paper's shape/rate
// parameterization: CDF(x) = 1 − exp(−(λx)^α) with shape Alpha and rate
// Lambda (the appendix tables print λ around 0.005–0.03 s⁻¹, i.e. scales
// of tens to hundreds of seconds).
type Weibull struct {
	Alpha  float64
	Lambda float64
}

// Sample draws by inverse transform from one uniform variate.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	return w.Quantile(rng.Float64())
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(w.Lambda*x, w.Alpha))
}

// Quantile returns the p-quantile (1/λ)·(−ln(1−p))^{1/α}.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Pow(-math.Log1p(-p), 1/w.Alpha) / w.Lambda
}

// Mean returns E[X] = Γ(1 + 1/α)/λ.
func (w Weibull) Mean() float64 {
	return math.Gamma(1+1/w.Alpha) / w.Lambda
}

// Median returns (ln 2)^{1/α}/λ.
func (w Weibull) Median() float64 {
	return math.Pow(math.Ln2, 1/w.Alpha) / w.Lambda
}

func (w Weibull) String() string {
	return fmt.Sprintf("W(α=%.3f, λ=%.5f)", w.Alpha, w.Lambda)
}
