package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b9)) }

func absErr(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestLognormalClosedForm(t *testing.T) {
	l := Lognormal{Sigma: 1.5, Mu: 2}
	absErr(t, "mean", l.Mean(), math.Exp(2+1.5*1.5/2), 1e-12)
	absErr(t, "median", l.Median(), math.Exp(2.0), 1e-12)
	// CDF at the median is exactly 1/2; quantile inverts the CDF.
	absErr(t, "CDF(median)", l.CDF(l.Median()), 0.5, 1e-12)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		absErr(t, "CDF(Quantile(p))", l.CDF(l.Quantile(p)), p, 1e-9)
	}
	if l.CDF(0) != 0 || l.CDF(-1) != 0 {
		t.Error("lognormal CDF must vanish at non-positive x")
	}
}

func TestWeibullClosedForm(t *testing.T) {
	w := Weibull{Alpha: 1.477, Lambda: 0.005252}
	// Mean = Γ(1+1/α)/λ.
	absErr(t, "mean", w.Mean(), math.Gamma(1+1/1.477)/0.005252, 1e-9)
	absErr(t, "median", w.Median(), math.Pow(math.Ln2, 1/1.477)/0.005252, 1e-9)
	absErr(t, "CDF(median)", w.CDF(w.Median()), 0.5, 1e-12)
	for _, p := range []float64{0.01, 0.5, 0.99} {
		absErr(t, "CDF(Quantile(p))", w.CDF(w.Quantile(p)), p, 1e-9)
	}
	// α = 1 degenerates to the exponential law: CDF(1/λ) = 1 − 1/e.
	e := Weibull{Alpha: 1, Lambda: 0.25}
	absErr(t, "exponential CDF", e.CDF(4), 1-math.Exp(-1), 1e-12)
}

func TestParetoClosedForm(t *testing.T) {
	p := Pareto{Alpha: 1.143, Beta: 103}
	absErr(t, "mean", p.Mean(), 1.143*103/(1.143-1), 1e-9)
	if m := (Pareto{Alpha: 0.9041, Beta: 103}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("α<1 Pareto mean = %v, want +Inf", m)
	}
	absErr(t, "median", p.Median(), 103*math.Pow(2, 1/1.143), 1e-9)
	absErr(t, "CDF(median)", p.CDF(p.Median()), 0.5, 1e-12)
	if p.CDF(103) != 0 || p.CDF(50) != 0 {
		t.Error("Pareto CDF must vanish at or below β")
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		absErr(t, "CDF(Quantile(q))", p.CDF(p.Quantile(q)), q, 1e-9)
	}
}

func TestSampleMomentsMatch(t *testing.T) {
	// Monte-Carlo means within 3σ of the closed forms.
	rng := newRNG(1)
	const n = 200000
	check := func(name string, d Dist, want, tol float64) {
		t.Helper()
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		absErr(t, name+" sample mean", sum/n, want, tol)
	}
	ln := Lognormal{Sigma: 1.0, Mu: 2}
	check("lognormal", ln, ln.Mean(), 0.25)
	w := Weibull{Alpha: 1.3, Lambda: 0.02}
	check("weibull", w, w.Mean(), 0.5)
	p := Pareto{Alpha: 3, Beta: 10}
	check("pareto", p, p.Mean(), 0.1)
}

func TestBodyTailShape(t *testing.T) {
	// The NA peak passive-duration model of Table A.1.
	body := Lognormal{Sigma: 2.502, Mu: 2.108}
	tail := Lognormal{Sigma: 2.749, Mu: 6.397}
	d := BodyTail(body, 64, 120, 0.75, tail)
	if got := d.CDF(64); got != 0 {
		t.Errorf("CDF(lo) = %v, want 0", got)
	}
	absErr(t, "CDF(hi)", d.CDF(120), 0.75, 1e-12)
	if d.CDF(1) != 0 {
		t.Error("CDF below lo must be 0")
	}
	if got := d.CDF(math.Inf(1)); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(∞) = %v", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for x := 64.0; x < 1e6; x *= 1.5 {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		prev = c
	}
	// Quantile inverts the CDF on both segments.
	for _, p := range []float64{0.1, 0.5, 0.74, 0.76, 0.9, 0.99} {
		absErr(t, "CDF(Quantile(p))", d.CDF(d.Quantile(p)), p, 1e-9)
	}
	// Samples respect the support split.
	rng := newRNG(2)
	nBody := 0
	const n = 20000
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < 64 {
			t.Fatalf("sample %v below lo", x)
		}
		if x <= 120 {
			nBody++
		}
	}
	absErr(t, "body share of samples", float64(nBody)/n, 0.75, 0.01)
}

func TestBodyTailParetoTail(t *testing.T) {
	// Pareto tail with β = hi needs no conditioning: CDF just above hi
	// starts at frac and the tail exponent governs the decay.
	d := BodyTail(Lognormal{Sigma: 1.625, Mu: 3.353}, 0, 103, 0.705,
		Pareto{Alpha: 0.9041, Beta: 103})
	absErr(t, "CDF(103)", d.CDF(103), 0.705, 1e-12)
	absErr(t, "CDF(100)", d.CDF(100), 0.70, 0.01) // the Figure 8(a) anchor
	if d.CDF(0) != 0 {
		t.Error("CDF(0) must be 0")
	}
}

func TestKSAgainstOwnSamples(t *testing.T) {
	rng := newRNG(3)
	l := Lognormal{Sigma: 1.2, Mu: 1}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = l.Sample(rng)
	}
	if ks := KS(xs, l); ks > 0.03 {
		t.Errorf("KS against generating law = %v, want small", ks)
	}
	// A clearly wrong model scores a large distance.
	if ks := KS(xs, Lognormal{Sigma: 0.3, Mu: 4}); ks < 0.3 {
		t.Errorf("KS against wrong law = %v, want large", ks)
	}
}

func TestKSDegenerate(t *testing.T) {
	if !math.IsNaN(KS(nil, Lognormal{Sigma: 1, Mu: 0})) {
		t.Error("empty sample should give NaN")
	}
	if !math.IsNaN(KS([]float64{1, math.NaN()}, Lognormal{Sigma: 1, Mu: 0})) {
		t.Error("NaN sample should give NaN")
	}
	if !math.IsNaN(KS([]float64{1, 2}, nil)) {
		t.Error("nil dist should give NaN")
	}
	if ks := KS([]float64{5, 5, 5}, Lognormal{Sigma: 1, Mu: math.Log(5)}); math.IsNaN(ks) || ks > 0.51 {
		t.Errorf("constant sample KS = %v", ks)
	}
}

func TestKS2(t *testing.T) {
	rng := newRNG(4)
	l := Lognormal{Sigma: 1, Mu: 0}
	xs := make([]float64, 4000)
	ys := make([]float64, 4000)
	zs := make([]float64, 4000)
	for i := range xs {
		xs[i] = l.Sample(rng)
		ys[i] = l.Sample(rng)
		zs[i] = l.Sample(rng) * 3
	}
	if d := KS2(xs, ys); d > 0.05 {
		t.Errorf("same-law two-sample KS = %v", d)
	}
	if d := KS2(xs, zs); d < 0.2 {
		t.Errorf("shifted-law two-sample KS = %v, want large", d)
	}
	if !math.IsNaN(KS2(nil, xs)) || !math.IsNaN(KS2(xs, nil)) {
		t.Error("empty side should give NaN")
	}
	if !math.IsNaN(KS2([]float64{1, math.NaN()}, xs)) {
		t.Error("NaN should give NaN")
	}
	// Cross-sample ties must not inflate the distance: identical samples
	// are at distance exactly 0, and integer-valued samples with shared
	// support measure only the real ECDF gap.
	if d := KS2([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("identical samples KS2 = %v, want 0", d)
	}
	if d := KS2([]float64{1, 1, 2, 2}, []float64{1, 2, 2, 2}); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("tied samples KS2 = %v, want 0.25", d)
	}
}

func TestZipfRankerPMF(t *testing.T) {
	z := NewZipf(0.386, 100)
	if z.Ranks() != 100 {
		t.Fatalf("Ranks = %d", z.Ranks())
	}
	var total float64
	for r := 1; r <= 100; r++ {
		total += z.PMF(r)
	}
	absErr(t, "PMF total", total, 1, 1e-9)
	// P(r) ∝ r^−α: exact ratio check.
	absErr(t, "PMF ratio", z.PMF(1)/z.PMF(2), math.Pow(2, 0.386), 1e-9)
	if z.PMF(0) != 0 || z.PMF(101) != 0 {
		t.Error("PMF outside [1, n] must be 0")
	}
}

func TestTwoSegmentZipfKnee(t *testing.T) {
	z := NewTwoSegmentZipf(0.453, 4.67, 45, 100)
	// Continuous at the split: weight(46)/weight(45) follows the tail law.
	want := math.Pow(46.0/45.0, -4.67) * math.Pow(45.0/45.0, 0.453)
	absErr(t, "knee ratio", z.PMF(46)/z.PMF(45), want, 1e-9)
	// Body follows α, tail follows tailAlpha.
	absErr(t, "body ratio", z.PMF(10)/z.PMF(20), math.Pow(2, 0.453), 1e-9)
	absErr(t, "tail ratio", z.PMF(50)/z.PMF(100), math.Pow(2, 4.67), 1e-9)
	var total float64
	for r := 1; r <= z.Ranks(); r++ {
		total += z.PMF(r)
	}
	absErr(t, "PMF total", total, 1, 1e-9)
}

func TestRankerSamplesFollowPMF(t *testing.T) {
	z := NewZipf(1.0, 10)
	rng := newRNG(5)
	const n = 200000
	counts := make([]int, 11)
	for i := 0; i < n; i++ {
		r := z.SampleRank(rng)
		if r < 1 || r > 10 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	for r := 1; r <= 10; r++ {
		absErr(t, "rank freq", float64(counts[r])/n, z.PMF(r), 0.005)
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-9} {
		z := normQuantile(p)
		absErr(t, "Φ(Φ⁻¹(p))", normCDF(z), p, 1e-9*math.Max(1, math.Abs(z)))
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("endpoints must map to ±Inf")
	}
	if !math.IsNaN(normQuantile(-0.1)) || !math.IsNaN(normQuantile(1.1)) {
		t.Error("out-of-range p must be NaN")
	}
}
