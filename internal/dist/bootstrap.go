package dist

import (
	"math"
	"math/rand/v2"
)

// BootstrapSpec parameterizes a parametric-bootstrap estimate of a KS
// p-value for a composite hypothesis — the fix for the Lilliefors bias
// that makes KSPValue's acceptances optimistic when the model was fitted
// on the very sample the distance is measured on.
type BootstrapSpec struct {
	// N is the original sample size; every replicate draws N variates.
	N int
	// B is the number of bootstrap replicates. 99 gives a p-value grid of
	// 1/100; 199 or 999 sharpen it at linear cost.
	B int
	// Seed fixes the replicate stream, making the p-value deterministic —
	// the report must stay byte-identical across worker counts, so every
	// fit slot uses its own fixed seed.
	Seed uint64
	// Sample draws n variates from the *fitted* model (the null).
	Sample func(rng *rand.Rand, n int) []float64
	// Distance refits the model family to a replicate and returns the KS
	// distance of the refit on that replicate — the same
	// fit-then-measure-on-the-fitting-sample procedure the observed
	// distance came from, which is exactly what cancels the bias. NaN
	// marks a failed refit; such replicates are skipped.
	Distance func(xs []float64) float64
}

// KSPValueBootstrap returns the parametric-bootstrap p-value of an
// observed KS distance: the null distribution of the distance is estimated
// by drawing samples from the fitted model, refitting on each, and
// measuring each refit's distance on its own sample. The returned p-value
// uses the (1+k)/(1+B) estimator over B *valid* replicates, which can
// never report exactly zero — honest for a finite replicate count. Unlike
// KSPValue, acceptances are trustworthy too, because every replicate pays
// the same fitted-on-itself bias the observed distance paid.
//
// B counts valid replicates, not attempts: a failed refit (Distance
// returning NaN) is replaced by a fresh draw, within a 2×B attempt
// budget. This keeps the p-value's resolution — and therefore its ability
// to reject at a given significance level — independent of occasional
// fitter failures; were failures merely skipped, each one would coarsen
// the 1/(valid+1) grid and could silently push the minimum attainable
// p-value above the rejection threshold. If the family cannot be refit
// reliably enough to reach B valid replicates, the estimate is abandoned
// (NaN) rather than quietly degraded. Degenerate input (no replicates,
// NaN distance) also yields NaN.
func KSPValueBootstrap(observed float64, spec BootstrapSpec) float64 {
	if spec.B <= 0 || spec.N <= 0 || spec.Sample == nil || spec.Distance == nil ||
		math.IsNaN(observed) || observed < 0 {
		return math.NaN()
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0xb005_c4a9))
	asExtreme, valid := 0, 0
	for attempts := 0; valid < spec.B && attempts < 2*spec.B; attempts++ {
		xs := spec.Sample(rng, spec.N)
		d := spec.Distance(xs)
		if math.IsNaN(d) {
			continue
		}
		valid++
		if d >= observed {
			asExtreme++
		}
	}
	if valid < spec.B {
		return math.NaN()
	}
	return float64(1+asExtreme) / float64(1+valid)
}
