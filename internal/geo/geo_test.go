package geo

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRegionStrings(t *testing.T) {
	cases := []struct {
		r     Region
		long  string
		short string
	}{
		{NorthAmerica, "North America", "NA"},
		{Europe, "Europe", "EU"},
		{Asia, "Asia", "AS"},
		{Other, "Other", "OT"},
		{Unknown, "Unknown", "??"},
	}
	for _, c := range cases {
		if c.r.String() != c.long {
			t.Errorf("String(%d) = %q, want %q", c.r, c.r.String(), c.long)
		}
		if c.r.Short() != c.short {
			t.Errorf("Short(%d) = %q, want %q", c.r, c.r.Short(), c.short)
		}
	}
}

func TestLookupKnownBlocks(t *testing.T) {
	r := Default()
	cases := []struct {
		ip   string
		want Region
	}{
		{"64.12.45.7", NorthAmerica},
		{"208.255.255.255", NorthAmerica},
		{"80.128.1.1", Europe},
		{"217.0.0.1", Europe},
		{"193.99.144.80", Europe},
		{"61.5.5.5", Asia},
		{"220.181.0.1", Asia},
		{"200.1.2.3", Other},
		{"196.25.1.1", Other},
		{"127.0.0.1", Unknown},
		{"10.0.0.1", Unknown},
		{"255.255.255.255", Unknown},
		{"0.0.0.1", Unknown},
	}
	for _, c := range cases {
		got := r.Lookup(netip.MustParseAddr(c.ip))
		if got != c.want {
			t.Errorf("Lookup(%s) = %v, want %v", c.ip, got, c.want)
		}
	}
}

func TestLookupIPv6(t *testing.T) {
	r := Default()
	if got := r.Lookup(netip.MustParseAddr("2001:db8::1")); got != Unknown {
		t.Errorf("IPv6 lookup = %v, want Unknown", got)
	}
	// 4-in-6 mapped addresses must unmap and resolve.
	if got := r.Lookup(netip.MustParseAddr("::ffff:64.12.0.1")); got != NorthAmerica {
		t.Errorf("4-in-6 lookup = %v, want NorthAmerica", got)
	}
}

func TestSampleRoundTrips(t *testing.T) {
	r := Default()
	rng := rand.New(rand.NewPCG(1, 1))
	for _, region := range Regions {
		for i := 0; i < 500; i++ {
			a := r.Sample(region, rng)
			if got := r.Lookup(a); got != region {
				t.Fatalf("Sample(%v) produced %s which resolves to %v", region, a, got)
			}
		}
	}
}

func TestSampleUnknown(t *testing.T) {
	r := Default()
	rng := rand.New(rand.NewPCG(2, 2))
	a := r.Sample(Unknown, rng)
	if got := r.Lookup(a); got != Unknown {
		t.Fatalf("Sample(Unknown) = %s resolves to %v", a, got)
	}
}

func TestSampleDeterminism(t *testing.T) {
	r := Default()
	a := r.Sample(Europe, rand.New(rand.NewPCG(9, 9)))
	b := r.Sample(Europe, rand.New(rand.NewPCG(9, 9)))
	if a != b {
		t.Fatalf("same seed produced %s and %s", a, b)
	}
}

func TestRegionSizes(t *testing.T) {
	r := Default()
	per8 := uint64(1) << 24
	if got := r.Size(NorthAmerica); got != 32*per8 {
		t.Errorf("NA size = %d, want %d", got, 32*per8)
	}
	if got := r.Size(Europe); got != 19*per8 {
		t.Errorf("EU size = %d, want %d", got, 19*per8)
	}
	if got := r.Size(Asia); got != 24*per8 {
		t.Errorf("AS size = %d, want %d", got, 24*per8)
	}
	if got := r.Size(Unknown); got != 0 {
		t.Errorf("Unknown size = %d, want 0", got)
	}
}

func TestNewRegistryRejectsOverlap(t *testing.T) {
	_, err := NewRegistry([]cidr{
		{"10.0.0.0/8", Europe},
		{"10.1.0.0/16", Asia},
	})
	if err == nil {
		t.Fatal("overlapping blocks should be rejected")
	}
}

func TestNewRegistryRejectsBadPrefix(t *testing.T) {
	if _, err := NewRegistry([]cidr{{"not-a-prefix", Europe}}); err == nil {
		t.Fatal("bad prefix should be rejected")
	}
	if _, err := NewRegistry([]cidr{{"2001:db8::/32", Europe}}); err == nil {
		t.Fatal("IPv6 prefix should be rejected")
	}
}

func TestUTCOffsets(t *testing.T) {
	if NorthAmerica.UTCOffsetHours() >= 0 {
		t.Error("NA offset should be negative relative to Dortmund")
	}
	if Europe.UTCOffsetHours() != 0 {
		t.Error("EU offset should be zero (measurement node is in Europe)")
	}
	if Asia.UTCOffsetHours() <= 0 {
		t.Error("Asia offset should be positive")
	}
}

// Property: every sampled address from a continental region resolves back to
// that region, for arbitrary seeds.
func TestPropertySampleLookupConsistent(t *testing.T) {
	r := Default()
	f := func(seed1, seed2 uint64, pick uint8) bool {
		rng := rand.New(rand.NewPCG(seed1, seed2))
		region := Regions[int(pick)%NumRegions]
		return r.Lookup(r.Sample(region, rng)) == region
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookup of an arbitrary IPv4 address never panics and returns a
// valid region value.
func TestPropertyLookupTotal(t *testing.T) {
	r := Default()
	f := func(b [4]byte) bool {
		got := r.Lookup(netip.AddrFrom4(b))
		return got <= Unknown
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
