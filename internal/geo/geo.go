// Package geo provides the geographic resolution the measurement study
// depends on: mapping peer IP addresses to coarse regions (North America,
// Europe, Asia, Other) and sampling plausible addresses for synthetic peers
// in a given region.
//
// The paper resolved peers with the MaxMind GeoIP database; only
// continent-level resolution is ever used by the analysis, so this package
// substitutes a deterministic synthetic registry: a fixed set of IPv4 CIDR
// blocks assigned to each region, loosely following the historical RIR
// allocations (ARIN, RIPE, APNIC). Lookup is a binary search over sorted
// ranges; sampling draws a uniform address from the region's blocks.
package geo

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
)

// Region is a coarse geographic region, the unit at which the paper
// conditions its workload measures.
type Region uint8

// Regions in the order the paper discusses them. Unknown is used for
// addresses that fall outside the registry (the paper's "unknown origin"
// 5–10% bucket folds into Other for our purposes, but lookups of unassigned
// space still need a value).
const (
	NorthAmerica Region = iota
	Europe
	Asia
	Other
	Unknown
	numRegions
)

// NumRegions is the number of assignable regions (excluding Unknown).
const NumRegions = int(numRegions) - 1

// Regions lists the assignable regions in canonical order.
var Regions = [NumRegions]Region{NorthAmerica, Europe, Asia, Other}

// Continental lists the three regions the paper characterizes in depth.
var Continental = [3]Region{NorthAmerica, Europe, Asia}

func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "North America"
	case Europe:
		return "Europe"
	case Asia:
		return "Asia"
	case Other:
		return "Other"
	case Unknown:
		return "Unknown"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// Short returns a compact tag used in report column headers.
func (r Region) Short() string {
	switch r {
	case NorthAmerica:
		return "NA"
	case Europe:
		return "EU"
	case Asia:
		return "AS"
	case Other:
		return "OT"
	default:
		return "??"
	}
}

// UTCOffsetHours returns a representative offset from the measurement node's
// clock (Dortmund, CET) for the region's population center. The paper plots
// everything in measurement-node time; the offsets are only used by the
// behavior layer to shape diurnal activity, so a single representative value
// per region suffices (US Eastern/Central mix ≈ −6h, central Europe 0h,
// east Asia ≈ +7h).
func (r Region) UTCOffsetHours() int {
	switch r {
	case NorthAmerica:
		return -6
	case Europe:
		return 0
	case Asia:
		return +7
	default:
		return 0
	}
}

// block is a contiguous IPv4 range [lo, hi] assigned to a region.
type block struct {
	lo, hi uint32
	region Region
}

// Registry resolves IPv4 addresses to regions and samples addresses from
// regions. It is immutable after construction and safe for concurrent use.
type Registry struct {
	blocks   []block            // sorted by lo, non-overlapping
	byRegion [numRegions][]int  // indexes into blocks
	sizes    [numRegions]uint64 // total addresses per region
}

// cidr is a compact literal form for the default table.
type cidr struct {
	prefix string
	region Region
}

// defaultAllocations approximates early-2000s RIR allocations at /8
// granularity. The exact prefixes are irrelevant to the study — only that
// the mapping is deterministic, covers disjoint space per region, and gives
// each region enough addresses that millions of sessions draw mostly
// distinct peers.
var defaultAllocations = []cidr{
	// ARIN / North America.
	{"3.0.0.0/8", NorthAmerica}, {"4.0.0.0/8", NorthAmerica},
	{"6.0.0.0/8", NorthAmerica}, {"7.0.0.0/8", NorthAmerica},
	{"8.0.0.0/8", NorthAmerica}, {"9.0.0.0/8", NorthAmerica},
	{"12.0.0.0/8", NorthAmerica}, {"13.0.0.0/8", NorthAmerica},
	{"15.0.0.0/8", NorthAmerica}, {"16.0.0.0/8", NorthAmerica},
	{"17.0.0.0/8", NorthAmerica}, {"18.0.0.0/8", NorthAmerica},
	{"19.0.0.0/8", NorthAmerica}, {"20.0.0.0/8", NorthAmerica},
	{"63.0.0.0/8", NorthAmerica}, {"64.0.0.0/8", NorthAmerica},
	{"65.0.0.0/8", NorthAmerica}, {"66.0.0.0/8", NorthAmerica},
	{"67.0.0.0/8", NorthAmerica}, {"68.0.0.0/8", NorthAmerica},
	{"69.0.0.0/8", NorthAmerica}, {"70.0.0.0/8", NorthAmerica},
	{"71.0.0.0/8", NorthAmerica}, {"72.0.0.0/8", NorthAmerica},
	{"142.0.0.0/8", NorthAmerica}, {"198.0.0.0/8", NorthAmerica},
	{"204.0.0.0/8", NorthAmerica}, {"205.0.0.0/8", NorthAmerica},
	{"206.0.0.0/8", NorthAmerica}, {"207.0.0.0/8", NorthAmerica},
	{"208.0.0.0/8", NorthAmerica}, {"209.0.0.0/8", NorthAmerica},
	// RIPE / Europe.
	{"62.0.0.0/8", Europe}, {"77.0.0.0/8", Europe},
	{"78.0.0.0/8", Europe}, {"79.0.0.0/8", Europe},
	{"80.0.0.0/8", Europe}, {"81.0.0.0/8", Europe},
	{"82.0.0.0/8", Europe}, {"83.0.0.0/8", Europe},
	{"84.0.0.0/8", Europe}, {"85.0.0.0/8", Europe},
	{"86.0.0.0/8", Europe}, {"87.0.0.0/8", Europe},
	{"88.0.0.0/8", Europe}, {"193.0.0.0/8", Europe},
	{"194.0.0.0/8", Europe}, {"195.0.0.0/8", Europe},
	{"212.0.0.0/8", Europe}, {"213.0.0.0/8", Europe},
	{"217.0.0.0/8", Europe},
	// APNIC / Asia.
	{"58.0.0.0/8", Asia}, {"59.0.0.0/8", Asia},
	{"60.0.0.0/8", Asia}, {"61.0.0.0/8", Asia},
	{"110.0.0.0/8", Asia}, {"111.0.0.0/8", Asia},
	{"112.0.0.0/8", Asia}, {"113.0.0.0/8", Asia},
	{"114.0.0.0/8", Asia}, {"115.0.0.0/8", Asia},
	{"116.0.0.0/8", Asia}, {"117.0.0.0/8", Asia},
	{"118.0.0.0/8", Asia}, {"119.0.0.0/8", Asia},
	{"120.0.0.0/8", Asia}, {"121.0.0.0/8", Asia},
	{"202.0.0.0/8", Asia}, {"203.0.0.0/8", Asia},
	{"210.0.0.0/8", Asia}, {"211.0.0.0/8", Asia},
	{"218.0.0.0/8", Asia}, {"219.0.0.0/8", Asia},
	{"220.0.0.0/8", Asia}, {"221.0.0.0/8", Asia},
	// Other (LACNIC, AfriNIC, Oceania).
	{"139.0.0.0/8", Other}, {"143.0.0.0/8", Other},
	{"146.0.0.0/8", Other}, {"155.0.0.0/8", Other},
	{"163.0.0.0/8", Other}, {"186.0.0.0/8", Other},
	{"187.0.0.0/8", Other}, {"189.0.0.0/8", Other},
	{"190.0.0.0/8", Other}, {"196.0.0.0/8", Other},
	{"200.0.0.0/8", Other}, {"201.0.0.0/8", Other},
}

var std = mustRegistry(defaultAllocations)

// Default returns the shared built-in registry.
func Default() *Registry { return std }

func mustRegistry(allocs []cidr) *Registry {
	r, err := NewRegistry(allocs)
	if err != nil {
		panic(err)
	}
	return r
}

// NewRegistry builds a registry from CIDR allocations. Prefixes must be
// valid IPv4 CIDRs and must not overlap.
func NewRegistry(allocs []cidr) (*Registry, error) {
	r := &Registry{blocks: make([]block, 0, len(allocs))}
	for _, a := range allocs {
		p, err := netip.ParsePrefix(a.prefix)
		if err != nil {
			return nil, fmt.Errorf("geo: bad prefix %q: %w", a.prefix, err)
		}
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("geo: prefix %q is not IPv4", a.prefix)
		}
		lo := binary.BigEndian.Uint32(p.Masked().Addr().AsSlice())
		size := uint32(1) << (32 - p.Bits())
		r.blocks = append(r.blocks, block{lo: lo, hi: lo + size - 1, region: a.region})
	}
	sort.Slice(r.blocks, func(i, j int) bool { return r.blocks[i].lo < r.blocks[j].lo })
	for i := 1; i < len(r.blocks); i++ {
		if r.blocks[i].lo <= r.blocks[i-1].hi {
			return nil, fmt.Errorf("geo: overlapping blocks at %d", i)
		}
	}
	for i, b := range r.blocks {
		r.byRegion[b.region] = append(r.byRegion[b.region], i)
		r.sizes[b.region] += uint64(b.hi-b.lo) + 1
	}
	return r, nil
}

// Lookup resolves an IPv4 address to its region. Addresses outside the
// registry resolve to Unknown; non-IPv4 addresses resolve to Unknown.
func (r *Registry) Lookup(a netip.Addr) Region {
	if a.Is4In6() {
		a = a.Unmap()
	}
	if !a.Is4() {
		return Unknown
	}
	v := binary.BigEndian.Uint32(a.AsSlice())
	i := sort.Search(len(r.blocks), func(i int) bool { return r.blocks[i].hi >= v })
	if i < len(r.blocks) && r.blocks[i].lo <= v && v <= r.blocks[i].hi {
		return r.blocks[i].region
	}
	return Unknown
}

// Sample draws a uniform random address from the region's allocated space.
// Sampling from Unknown returns an address from reserved space (240/8) that
// the registry will resolve back to Unknown.
func (r *Registry) Sample(region Region, rng *rand.Rand) netip.Addr {
	if region >= numRegions || region == Unknown || r.sizes[region] == 0 {
		return u32ToAddr(0xF0000000 + uint32(rng.Uint64N(1<<24)))
	}
	n := rng.Uint64N(r.sizes[region])
	for _, bi := range r.byRegion[region] {
		b := r.blocks[bi]
		size := uint64(b.hi-b.lo) + 1
		if n < size {
			return u32ToAddr(b.lo + uint32(n))
		}
		n -= size
	}
	// Unreachable: n < sizes[region] guarantees a block is found.
	panic("geo: sample fell off the end of the region's blocks")
}

func u32ToAddr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// Size returns the number of addresses allocated to the region.
func (r *Registry) Size(region Region) uint64 {
	if region >= numRegions {
		return 0
	}
	return r.sizes[region]
}
