// Package report renders the analysis results as text: aligned tables,
// log-scale ASCII charts for the paper's CCDF/PMF figures, and CSV export
// for external plotting. Every renderer emits the same rows or series the
// corresponding paper artifact shows, so a run of cmd/repro can be read
// side by side with the paper.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes an aligned text table. Cells are printed verbatim; column
// widths adapt to content.
func Table(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - displayWidth(c); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// displayWidth approximates the printed width of a cell: one column per
// rune (the tables only use narrow characters).
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Series is one named curve of a chart.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart renders series on an ASCII grid with optional log axes — the
// shape-comparison stand-in for the paper's gnuplot figures.
type Chart struct {
	Title        string
	Width        int
	Height       int
	LogX, LogY   bool
	XLabel       string
	YLabel       string
	MinY         float64 // optional y floor (e.g. 0.01 for the paper's CCDFs)
	serieses     []Series
	defaultMarks string
}

// NewChart builds a chart with sane terminal defaults.
func NewChart(title string) *Chart {
	return &Chart{
		Title:        title,
		Width:        68,
		Height:       16,
		defaultMarks: "*+ox#@%&",
	}
}

// Add appends a series; a zero Marker picks the next default.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		s.Marker = c.defaultMarks[len(c.serieses)%len(c.defaultMarks)]
	}
	c.serieses = append(c.serieses, s)
}

func (c *Chart) tx(x float64) float64 {
	if c.LogX {
		return math.Log10(x)
	}
	return x
}

func (c *Chart) ty(y float64) float64 {
	if c.LogY {
		return math.Log10(y)
	}
	return y
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.serieses {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX && x <= 0 || c.LogY && y <= 0 {
				continue
			}
			if c.MinY > 0 && y < c.MinY {
				continue
			}
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			tx, ty := c.tx(x), c.ty(y)
			minX, maxX = math.Min(minX, tx), math.Max(maxX, tx)
			minY, maxY = math.Min(minY, ty), math.Max(maxY, ty)
		}
	}
	if minX > maxX || minY > maxY {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.serieses {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX && x <= 0 || c.LogY && y <= 0 || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			if c.MinY > 0 && y < c.MinY {
				continue
			}
			cx := int((c.tx(x) - minX) / (maxX - minX) * float64(c.Width-1))
			cy := int((c.ty(y) - minY) / (maxY - minY) * float64(c.Height-1))
			row := c.Height - 1 - cy
			if row >= 0 && row < c.Height && cx >= 0 && cx < c.Width {
				grid[row][cx] = s.Marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	axisFmt := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	topLabel := axisFmt(maxY, c.LogY)
	botLabel := axisFmt(minY, c.LogY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		if i == 0 {
			label = fmt.Sprintf("%*s", labelW, topLabel)
		}
		if i == c.Height-1 {
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  %-10s%s%10s\n", strings.Repeat(" ", labelW),
		axisFmt(minX, c.LogX), strings.Repeat(" ", max(0, c.Width-20)), axisFmt(maxX, c.LogX))
	var legend []string
	for _, s := range c.serieses {
		legend = append(legend, fmt.Sprintf("%c %s", s.Marker, s.Name))
	}
	if c.XLabel != "" || len(legend) > 0 {
		fmt.Fprintf(&b, "  x: %s   %s\n", c.XLabel, strings.Join(legend, "   "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes series as long-format CSV: series,x,y.
func CSV(w io.Writer, serieses []Series) error {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range serieses {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
