package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/core"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, "Title", []string{"A", "Long header"}, [][]string{
		{"x", "1"},
		{"longer cell", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// All data rows should have the separator-aligned columns.
	if !strings.HasPrefix(lines[1], "A ") {
		t.Errorf("header row = %q", lines[1])
	}
	if !strings.Contains(lines[4], "longer cell") {
		t.Errorf("row = %q", lines[4])
	}
}

func TestChartRendersSeries(t *testing.T) {
	ch := NewChart("test chart")
	ch.Add(Series{Name: "up", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}})
	ch.Add(Series{Name: "down", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}})
	var buf bytes.Buffer
	if err := ch.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Error("missing legend")
	}
}

func TestChartLogAxes(t *testing.T) {
	ch := NewChart("log chart")
	ch.LogX, ch.LogY = true, true
	ch.Add(Series{Name: "curve", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 0.1, 0.01, 0.001}})
	var buf bytes.Buffer
	if err := ch.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Log axis labels print the delogged values.
	if !strings.Contains(buf.String(), "1e+03") && !strings.Contains(buf.String(), "1000") {
		t.Errorf("missing axis label: %q", buf.String())
	}
}

func TestChartEmptyData(t *testing.T) {
	ch := NewChart("empty")
	ch.Add(Series{Name: "none", X: nil, Y: nil})
	var buf bytes.Buffer
	if err := ch.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("expected no-data notice: %q", buf.String())
	}
}

func TestChartSkipsNonPositiveOnLogAxes(t *testing.T) {
	ch := NewChart("guarded")
	ch.LogX, ch.LogY = true, true
	ch.Add(Series{Name: "mixed", X: []float64{0, -1, 10}, Y: []float64{0.5, 1, 0.25}})
	var buf bytes.Buffer
	if err := ch.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []Series{
		{Name: "a,b", X: []float64{1}, Y: []float64{2}},
		{Name: "plain", X: []float64{3}, Y: []float64{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `"a,b",1,2`) {
		t.Errorf("escaping failed: %q", out)
	}
	if !strings.Contains(out, "plain,3,4") {
		t.Errorf("missing row: %q", out)
	}
}

var (
	renderOnce sync.Once
	renderChar *core.Characterization
)

func renderFixture(t *testing.T) *core.Characterization {
	t.Helper()
	renderOnce.Do(func() {
		cfg := capture.DefaultConfig(5, 0.01)
		cfg.Workload.Days = 2
		renderChar = core.Characterize(capture.New(cfg).Run())
	})
	return renderChar
}

func TestRenderAllProducesEverySection(t *testing.T) {
	c := renderFixture(t)
	var buf bytes.Buffer
	if err := RenderAll(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Appendix fits", "Headline measures",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestRenderTable2Accounting(t *testing.T) {
	c := renderFixture(t)
	var buf bytes.Buffer
	if err := RenderTable2(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rule 2") || !strings.Contains(buf.String(), "rule 5") {
		t.Error("table 2 rows missing")
	}
}

func TestRenderAnchors(t *testing.T) {
	c := renderFixture(t)
	var buf bytes.Buffer
	if err := RenderAnchors(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"passive peers", "interarrival < 100 s", "Fig 5a"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing anchor row %q", want)
		}
	}
}
